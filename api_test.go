package zaatar

import (
	"context"
	"math/big"
	"net"
	"strings"
	"testing"
	"time"

	"zaatar/internal/obs"
	"zaatar/internal/transport"
)

// TestServeAndDial exercises the whole public split deployment: Serve on a
// TCP listener, Dial a client, push two batches over the kept-alive
// session, close, cancel.
func TestServeAndDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln,
			WithServerWorkers(2),
			WithMaxSessions(4),
			WithServerMetrics(reg),
		)
	}()

	src := `input x : int32; output y : int32; y = x - 3;`
	client, err := Dial(context.Background(), ln.Addr().String(), src,
		WithParams(2, 2), WithoutCommitment(), WithSeed([]byte("dial")))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := client.WireVersion(); got != transport.MaxProtocolVersion {
		t.Fatalf("wire version %d, want %d", got, transport.MaxProtocolVersion)
	}
	if client.Program().NumInputs() != 1 {
		t.Fatalf("program shape: %d inputs", client.Program().NumInputs())
	}
	for b, want := range []int64{7, -3} {
		res, err := client.RunBatch(context.Background(), [][]*big.Int{{big.NewInt(want + 3)}})
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if !res.AllAccepted() {
			t.Fatalf("batch %d rejected: %v", b, res.Reasons)
		}
		if got := res.Outputs[0][0].Int64(); got != want {
			t.Fatalf("batch %d output %d, want %d", b, got, want)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if got := reg.Counter(transport.MetricServedBatches).Value(); got != 2 {
		t.Fatalf("server batches = %d, want 2", got)
	}
}

// TestServeWithStoreWarmRestart drives the public artifact-store surface:
// a server started with WithStore compiles once and persists the bundle;
// a second server over the same directory (a "restart") serves a returning
// client off disk — one store hit, no compile cache miss beyond the load,
// and the v3 client never uploads its source.
func TestServeWithStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	src := `input x : int32; output y : int32; y = x - 3;`

	serve := func(reg *obs.Registry) (addr string, stop func(*testing.T)) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- Serve(ctx, ln, WithServerWorkers(2), WithStore(dir), WithServerMetrics(reg))
		}()
		return ln.Addr().String(), func(t *testing.T) {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("Serve: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Serve did not return after cancel")
			}
		}
	}

	runOnce := func(addr string, seed string) {
		client, err := Dial(context.Background(), addr, src,
			WithParams(2, 2), WithoutCommitment(), WithSeed([]byte(seed)))
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		res, err := client.RunBatch(context.Background(), [][]*big.Int{{big.NewInt(8)}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllAccepted() {
			t.Fatalf("rejected: %v", res.Reasons)
		}
	}

	reg1 := obs.NewRegistry()
	addr, stop := serve(reg1)
	runOnce(addr, "cold")
	stop(t) // Serve's return waits for the async bundle write-back
	if got := reg1.Counter(transport.MetricStoreMisses).Value(); got != 1 {
		t.Fatalf("cold run store misses = %d, want 1", got)
	}

	reg2 := obs.NewRegistry()
	addr, stop = serve(reg2)
	runOnce(addr, "warm")
	stop(t)
	if got := reg2.Counter(transport.MetricStoreHits).Value(); got != 1 {
		t.Fatalf("restart store hits = %d, want 1", got)
	}
	if got := reg2.Counter(transport.MetricHelloSourceSkipped).Value(); got != 1 {
		t.Fatalf("restart source uploads skipped = %d, want 1", got)
	}
	if got := reg2.Counter(transport.MetricStoreBytesSaved).Value(); got != int64(len(src)) {
		t.Fatalf("restart bytes saved = %d, want %d", got, len(src))
	}
}

// TestDialBadAddress covers the error paths reachable without a server.
func TestDialBadAddress(t *testing.T) {
	if _, err := Dial(context.Background(), " , ", "input x : int32; output y : int32; y = x;"); err == nil {
		t.Fatal("empty address list accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1", `input x : int32; output y : int32; y = x;`); err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
}

// TestFieldMismatchRuntimeError is the documented runtime half of the
// CompileOption/RunOption split: a field option passed to Run but not to
// Compile fails loudly instead of being silently ignored.
func TestFieldMismatchRuntimeError(t *testing.T) {
	prog, err := Compile(`input x : int32; output y : int32; y = x + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, [][]*big.Int{{big.NewInt(1)}},
		WithField220(), WithParams(1, 1), WithoutCommitment())
	if err == nil {
		t.Fatal("field mismatch between Compile and Run went undetected")
	}
	if !strings.Contains(err.Error(), "F220") || !strings.Contains(err.Error(), "F128") {
		t.Fatalf("mismatch error should name both fields: %v", err)
	}
	if _, err := NewVerifier(prog, WithField220()); err == nil {
		t.Fatal("NewVerifier accepted a mismatched field option")
	}
	if _, err := NewProver(prog, WithField220()); err == nil {
		t.Fatal("NewProver accepted a mismatched field option")
	}
	// Passed consistently, the same option is fine.
	prog220, err := Compile(`input x : int32; output y : int32; y = x + 1;`, WithField220())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog220, [][]*big.Int{{big.NewInt(1)}},
		WithField220(), WithParams(1, 1), WithoutCommitment(), WithSeed([]byte("fm")))
	if err != nil || !res.AllAccepted() {
		t.Fatalf("matched field run failed: %v", err)
	}
}

// TestDialBackendNegotiation covers the public backend surface end to end:
// an auto-mode client negotiates the sum-check lane with a full server, a
// restricted server degrades the same offer to zaatar, and an explicit
// unavailable backend fails loudly.
func TestDialBackendNegotiation(t *testing.T) {
	// Pure arithmetic, so the cost model recommends sumcheck and every
	// backend accepts it.
	src := `input x : int32; output y : int32; output sq : int64; y = x - 3; sq = x * x;`
	serve := func(t *testing.T, opts ...ServerOption) (addr string, stop func()) {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- Serve(ctx, ln, opts...) }()
		return ln.Addr().String(), func() {
			cancel()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("Serve did not return after cancel")
			}
		}
	}

	checkBatch := func(t *testing.T, client *Client) {
		t.Helper()
		res, err := client.RunBatch(context.Background(), [][]*big.Int{{big.NewInt(10)}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllAccepted() {
			t.Fatalf("rejected: %v", res.Reasons)
		}
		if res.Outputs[0][0].Int64() != 7 || res.Outputs[0][1].Int64() != 100 {
			t.Fatalf("outputs: %v", res.Outputs[0])
		}
	}

	t.Run("auto negotiates sumcheck", func(t *testing.T) {
		addr, stop := serve(t, WithServerWorkers(2))
		defer stop()
		client, err := Dial(context.Background(), addr, src,
			WithParams(2, 2), WithBackend(BackendAuto), WithSeed([]byte("auto")))
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		if got := client.Backend(); got != BackendSumcheck {
			t.Fatalf("negotiated %q, want sumcheck", got)
		}
		checkBatch(t, client)
	})

	t.Run("auto degrades to zaatar", func(t *testing.T) {
		addr, stop := serve(t, WithServerWorkers(2), WithServerBackends(BackendZaatar, BackendGinger))
		defer stop()
		client, err := Dial(context.Background(), addr, src,
			WithParams(2, 2), WithBackend(BackendAuto), WithoutCommitment(), WithSeed([]byte("deg")))
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		if got := client.Backend(); got != BackendZaatar {
			t.Fatalf("negotiated %q, want zaatar", got)
		}
		checkBatch(t, client)
	})

	t.Run("explicit backend unavailable", func(t *testing.T) {
		addr, stop := serve(t, WithServerWorkers(2), WithServerBackends(BackendZaatar))
		defer stop()
		_, err := Dial(context.Background(), addr, src,
			WithParams(2, 2), WithBackend(BackendSumcheck))
		if err == nil {
			t.Fatal("dial succeeded against a server without the requested backend")
		}
		if !strings.Contains(err.Error(), "no common proof backend") {
			t.Fatalf("err = %v, want no-common-backend", err)
		}
	})
}

// TestBackendsListed checks the build's backend registry surface.
func TestBackendsListed(t *testing.T) {
	names := Backends()
	want := map[string]bool{BackendZaatar: false, BackendGinger: false, BackendSumcheck: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Backends() = %v missing %q", names, n)
		}
	}
}
