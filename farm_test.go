package zaatar_test

import (
	"context"
	"errors"
	"math/big"
	"net"
	"sync/atomic"
	"testing"

	"zaatar"
	"zaatar/internal/obs"
)

const farmTestSrc = `
input x : int32;
output y : int32;
output sq : int64;
y = x - 3;
sq = x * x;
`

// startWorker serves one farm worker on a loopback listener (optionally
// wrapped for fault injection) and returns its address.
func startWorker(t *testing.T, wrap func(net.Listener) net.Listener, opts ...zaatar.ServerOption) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		ln = wrap(ln)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = zaatar.ServeWorker(ctx, ln, opts...)
	}()
	t.Cleanup(func() {
		cancel()
		ln.Close()
		<-done
	})
	return ln.Addr().String()
}

func farmBatch(n int) [][]*big.Int {
	batch := make([][]*big.Int, n)
	for i := range batch {
		batch[i] = []*big.Int{big.NewInt(int64(i + 2))}
	}
	return batch
}

func checkFarmOutputs(t *testing.T, batch [][]*big.Int, res *zaatar.SessionResult) {
	t.Helper()
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	for i := range batch {
		x := batch[i][0].Int64()
		if res.Outputs[i][0].Int64() != x-3 || res.Outputs[i][1].Int64() != x*x {
			t.Fatalf("instance %d outputs: %v", i, res.Outputs[i])
		}
	}
}

// TestDialFarmShardsBatch runs a batch through a two-worker farm over real
// TCP and checks the public client behaves exactly like a Dial'ed one.
func TestDialFarmShardsBatch(t *testing.T) {
	sreg := obs.NewRegistry()
	addrs := []string{
		startWorker(t, nil, zaatar.WithServerMetrics(sreg)),
		startWorker(t, nil, zaatar.WithServerMetrics(sreg)),
	}
	creg := obs.NewRegistry()
	client, err := zaatar.DialFarm(context.Background(), addrs, farmTestSrc,
		zaatar.WithParams(2, 2), zaatar.WithoutCommitment(),
		zaatar.WithSeed([]byte("farm-pub")), zaatar.WithMetrics(creg))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.WireVersion() < 2 {
		t.Fatalf("farm negotiated wire v%d", client.WireVersion())
	}
	if client.Backend() != zaatar.BackendZaatar {
		t.Fatalf("backend %q", client.Backend())
	}
	batch := farmBatch(8)
	res, err := client.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	checkFarmOutputs(t, batch, res)
	if up, ok := sreg.GaugeValue("farm.worker.up"); !ok || up != 1 {
		t.Fatalf("farm.worker.up = %v (registered %v), want 1", up, ok)
	}
}

// killSwitch arms mid-session worker death: once armed, the worker's next
// read fails and the connection closes — the in-process stand-in for
// kill -9 mid-batch. Arming after DialFarm returns guarantees the
// handshake (including any v3 source upload) completed first; the worker
// then dies partway through its next shard (between the commit and
// respond phases — a blocked read still delivers its in-flight message).
type killSwitch struct{ armed atomic.Bool }

type dyingConn struct {
	net.Conn
	ks *killSwitch
}

func (c *dyingConn) Read(p []byte) (int, error) {
	if c.ks.armed.Load() {
		c.Conn.Close()
		return 0, errors.New("worker killed")
	}
	return c.Conn.Read(p)
}

type dyingListener struct {
	net.Listener
	ks *killSwitch
}

func (l *dyingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &dyingConn{Conn: conn, ks: l.ks}, nil
}

// TestDialFarmSurvivesWorkerDeath kills one of two workers right after the
// handshake; the farm must requeue its shards onto the survivor and the
// batch must verify.
func TestDialFarmSurvivesWorkerDeath(t *testing.T) {
	ks := &killSwitch{}
	addrs := []string{
		startWorker(t, nil),
		startWorker(t, func(ln net.Listener) net.Listener { return &dyingListener{Listener: ln, ks: ks} }),
	}
	creg := obs.NewRegistry()
	client, err := zaatar.DialFarm(context.Background(), addrs, farmTestSrc,
		zaatar.WithParams(2, 2), zaatar.WithoutCommitment(),
		zaatar.WithSeed([]byte("farm-kill")), zaatar.WithMetrics(creg),
		zaatar.WithShardRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ks.armed.Store(true)
	batch := farmBatch(6)
	res, err := client.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatalf("batch should survive one worker death: %v", err)
	}
	checkFarmOutputs(t, batch, res)
	if got := creg.Counter("farm.shard.requeued").Value(); got < 1 {
		t.Fatalf("farm.shard.requeued = %d, want ≥ 1", got)
	}
}

// TestDialFarmReportsDeadWorker: with every worker dead the error is a
// *zaatar.FarmError naming a worker address.
func TestDialFarmReportsDeadWorker(t *testing.T) {
	ks := &killSwitch{}
	kill := func(ln net.Listener) net.Listener { return &dyingListener{Listener: ln, ks: ks} }
	addrs := []string{startWorker(t, kill), startWorker(t, kill)}
	client, err := zaatar.DialFarm(context.Background(), addrs, farmTestSrc,
		zaatar.WithParams(2, 2), zaatar.WithoutCommitment(),
		zaatar.WithMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ks.armed.Store(true)
	_, err = client.RunBatch(context.Background(), farmBatch(4))
	if err == nil {
		t.Fatal("batch succeeded with every worker dead")
	}
	var fe *zaatar.FarmError
	if !errors.As(err, &fe) {
		t.Fatalf("want *zaatar.FarmError, got %T: %v", err, err)
	}
	if fe.Addr != addrs[0] && fe.Addr != addrs[1] {
		t.Fatalf("FarmError names %q, want one of %v", fe.Addr, addrs)
	}
}
