// Command zaatar-bench regenerates the paper's evaluation tables and
// figures (§5.1–§5.3): the microbenchmark table, the Figure 3 cost-model
// validation, and Figures 4–9.
//
// Usage:
//
//	zaatar-bench -exp all                 # everything at the default scale
//	zaatar-bench -exp fig4 -scale small   # quick look at the prover gap
//	zaatar-bench -exp fig8 -nocrypto      # scaling shape without ElGamal
//	zaatar-bench -exp fig6 -beta 16 -workers 1,2,4,8
//
// The bench-regression gate diffs two -exp baseline -json snapshots with
// per-metric noise thresholds and exits nonzero if anything degraded beyond
// them (the CI mode; see docs/PROTOCOL.md §7.1 for reading the report):
//
//	zaatar-bench -compare BENCH_old.json bench-new.json
//	zaatar-bench -threshold 2.0 -compare BENCH_old.json bench-new.json
//
// Scales: small (seconds), default (minutes), paper (the paper's §5.2
// input sizes; hours for the prover, as it was for the authors' C++
// prover).
package main

import (
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"zaatar/internal/experiments"
	"zaatar/internal/pcp"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: micro, model, fig4, fig5, fig6, fig7, fig8, fig9, cache, backend, scaling, store, farm, baseline, all")
		scale   = flag.String("scale", "default", "instance sizes: small, default, paper")
		rhoLin  = flag.Int("rholin", 0, "linearity test iterations (0 = paper's 20)")
		rho     = flag.Int("rho", 0, "PCP repetitions (0 = paper's 8)")
		quick   = flag.Bool("quick", false, "shortcut for -rholin 2 -rho 2 -calreps 200")
		noCrypt = flag.Bool("nocrypto", false, "disable the ElGamal commitment (PCP only)")
		workers = flag.String("workers", "", "comma-separated worker counts for fig6 (default 1,2,4,8)")
		beta    = flag.Int("beta", 8, "batch size for fig6")
		seed    = flag.Int64("seed", 1, "randomness seed for reproducible runs")
		calReps = flag.Int("calreps", 1000, "microbenchmark calibration repetitions")
		jsonOut = flag.String("json", "", "with -exp baseline: also write the machine-readable baseline to this file ('-' for stdout)")
		compare = flag.Bool("compare", false, "compare two baseline snapshots (old.json new.json as positional args) and exit nonzero on regression")
		thresh  = flag.Float64("threshold", 1.0, "with -compare: scale every per-metric noise allowance (e.g. 2.0 for loose CI gating)")
		pprofOn = flag.String("pprof", "", "address to serve net/http/pprof on for the run's lifetime (empty disables)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare wants exactly two baseline files, got %d args", flag.NArg())
		}
		oldB, err := experiments.LoadBaseline(flag.Arg(0))
		check(err)
		newB, err := experiments.LoadBaseline(flag.Arg(1))
		check(err)
		r := experiments.CompareBaselines(oldB, newB, experiments.CompareOptions{Threshold: *thresh})
		experiments.RenderCompare(os.Stdout, r)
		if r.Regressions > 0 {
			fatalf("%d metric(s) regressed beyond threshold vs %s", r.Regressions, flag.Arg(0))
		}
		return
	}

	if *pprofOn != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofOn, mux); err != nil {
				fmt.Fprintln(os.Stderr, "zaatar-bench: pprof endpoint:", err)
			}
		}()
	}

	o := experiments.DefaultOptions()
	o.Scale = experiments.Scale(*scale)
	o.Crypto = !*noCrypt
	o.Seed = *seed
	o.CalibrationReps = *calReps
	if *quick {
		o.Params = pcp.TestParams()
		o.CalibrationReps = 200
	}
	if *rhoLin > 0 {
		o.Params.RhoLin = *rhoLin
	}
	if *rho > 0 {
		o.Params.Rho = *rho
	}

	workerCounts := []int{1, 2, 4, 8}
	if *workers != "" {
		workerCounts = nil
		for _, s := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatalf("bad -workers value %q", s)
			}
			workerCounts = append(workerCounts, n)
		}
	}

	run := func(name string) {
		switch name {
		case "baseline":
			bo := o
			bo.Workers = workerCounts[0]
			b, err := experiments.RunBaseline(bo, *beta)
			check(err)
			experiments.RenderBaseline(os.Stdout, b)
			if *jsonOut != "" {
				w := os.Stdout
				if *jsonOut != "-" {
					f, err := os.Create(*jsonOut)
					check(err)
					defer f.Close()
					w = f
				}
				check(b.WriteJSON(w))
			}
		case "cache":
			co := o
			co.Workers = workerCounts[0]
			r, err := experiments.RunCache(co, *beta)
			check(err)
			experiments.RenderCache(os.Stdout, r)
		case "backend":
			bo := o
			bo.Workers = workerCounts[0]
			r, err := experiments.RunBackend(bo, *beta)
			check(err)
			experiments.RenderBackend(os.Stdout, r)
		case "store":
			so := o
			so.Workers = workerCounts[0]
			r, err := experiments.RunStore(so, *beta)
			check(err)
			experiments.RenderStore(os.Stdout, r)
		case "farm":
			fo := o
			fo.Workers = workerCounts[0]
			r, err := experiments.RunFarm(fo, *beta)
			check(err)
			experiments.RenderFarm(os.Stdout, r)
		case "scaling":
			r, err := experiments.RunScaling(o, workerCounts)
			check(err)
			experiments.RenderScaling(os.Stdout, r)
		case "micro":
			experiments.RenderMicro(os.Stdout, experiments.RunMicro(o))
		case "model":
			rows, err := experiments.RunModel(o)
			check(err)
			experiments.RenderModel(os.Stdout, rows)
		case "fig4":
			rows, err := experiments.RunFig4(o)
			check(err)
			experiments.RenderFig4(os.Stdout, rows)
		case "fig5":
			rows, err := experiments.RunFig5(o)
			check(err)
			experiments.RenderFig5(os.Stdout, rows)
		case "fig6":
			rows, err := experiments.RunFig6(o, *beta, workerCounts)
			check(err)
			experiments.RenderFig6(os.Stdout, rows, *beta)
		case "fig7":
			rows, err := experiments.RunFig7(o)
			check(err)
			experiments.RenderFig7(os.Stdout, rows)
		case "fig8":
			res, err := experiments.RunFig8(o)
			check(err)
			experiments.RenderFig8(os.Stdout, res)
		case "fig9":
			rows, err := experiments.RunFig9(o)
			check(err)
			experiments.RenderFig9(os.Stdout, rows)
		default:
			fatalf("unknown experiment %q", name)
		}
		fmt.Println()
	}

	fmt.Printf("zaatar-bench: scale=%s params=(ρ_lin=%d, ρ=%d) crypto=%v seed=%d\n\n",
		o.Scale, o.Params.RhoLin, o.Params.Rho, o.Crypto, o.Seed)
	if *exp == "all" {
		for _, name := range []string{"micro", "fig9", "fig4", "fig5", "fig6", "fig7", "fig8", "model"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "zaatar-bench: "+format+"\n", args...)
	os.Exit(1)
}
