// Command zaatar-client is the verifier end of the TCP deployment: it ships
// a computation and a batch of inputs to a zaatar-server prover, runs the
// argument protocol, and reports which instances verified.
//
// Usage:
//
//	zaatar-client -connect localhost:7001 -src prog.zr -inputs "10; 20"
//
// Several provers can share one batch (the paper's distributed prover):
//
//	zaatar-client -connect host1:7001,host2:7001 -src prog.zr -inputs "10; 20; 30; 40"
//
// With -batches N the same connection carries the batch N times (wire
// protocol v2 keep-alive), printing the per-batch wall time — the first
// batch pays the session setup, the rest amortize it away.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"zaatar"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
)

func main() {
	var (
		addr     = flag.String("connect", "localhost:7001", "prover address(es), comma-separated for a distributed batch")
		srcPath  = flag.String("src", "", "path to the mini-SFDL source file")
		inputs   = flag.String("inputs", "", "instance inputs: comma-separated ints; ';' separates instances")
		rhoLin   = flag.Int("rholin", 20, "linearity test iterations")
		rho      = flag.Int("rho", 8, "PCP repetitions")
		f220     = flag.Bool("f220", false, "use the 220-bit field")
		ginger   = flag.Bool("ginger", false, "use the Ginger baseline encoding")
		backend  = flag.String("backend", "", "proof backend to offer: auto|zaatar|ginger|sumcheck (overrides -ginger)")
		noCrypto = flag.Bool("nocrypto", false, "skip the ElGamal commitment")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-message read/write deadline (0 disables)")
		workers  = flag.Int("workers", 1, "verifier parallelism over per-instance checks")
		batches  = flag.Int("batches", 1, "how many times to run the batch over the kept-alive session")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file covering both sides of the session")
		pprofOn  = flag.String("pprof", "", "address to serve net/http/pprof on for the session's lifetime (empty disables)")
		metrics  = flag.String("metrics", "", "address for the HTTP metrics endpoint for the session's lifetime: /metrics and /metrics/prometheus (empty disables)")
		logFmt   = flag.String("log-format", "", "emit structured session logs to stderr: text or json (empty disables)")

		farmOn      = flag.Bool("farm", false, "treat the -connect list as a prover farm: shard each batch across the workers with requeue on worker death (DialFarm)")
		shardSize   = flag.Int("shard-size", 0, "farm: instances per shard (0 = auto-size to about two shards per worker)")
		shardRetry  = flag.Int("shard-retries", 0, "farm: max requeues per shard after a worker death (0 = default 2, negative disables)")
		farmRouting = flag.String("farm-routing", "affinity", "farm: worker ordering for shard placement: affinity|static")
		farmWide    = flag.Int("farm-wide", 0, "farm: split each instance's commitment across up to k workers when the batch is narrower than the farm (<2 disables)")
	)
	flag.Parse()
	if *srcPath == "" || *inputs == "" {
		fmt.Fprintln(os.Stderr, "usage: zaatar-client -connect host:port -src prog.zr -inputs \"1,2; 3,4\"")
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	check(err)
	batch, err := parseBatch(*inputs)
	check(err)

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", zaatar.Metrics().Handler())
		mux.Handle("/metrics/prometheus", zaatar.Metrics().PrometheusHandler())
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "zaatar-client: metrics endpoint:", err)
			}
		}()
	}
	if *pprofOn != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofOn, mux); err != nil {
				fmt.Fprintln(os.Stderr, "zaatar-client: pprof endpoint:", err)
			}
		}()
	}

	// Ctrl-C cancels the session, closing the prover connections.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// With -trace, the session's trace context rides the hello to every
	// prover, whose spans come back with the responses — one trace covers
	// both sides of the wire.
	var tc *trace.Ctx
	if *traceOut != "" {
		tc = trace.New(trace.NewRecorder(trace.DefaultCapacity), "verifier")
		ctx = trace.NewContext(ctx, tc)
	}

	opts := []zaatar.RunOption{
		zaatar.WithParams(*rhoLin, *rho),
		zaatar.WithWorkers(*workers),
		zaatar.WithIOTimeout(*timeout),
	}
	if *logFmt != "" {
		opts = append(opts, zaatar.WithLogger(obs.NewLogger(os.Stderr, *logFmt)))
	}
	if *f220 {
		opts = append(opts, zaatar.WithField220())
	}
	if *ginger {
		opts = append(opts, zaatar.WithGingerProtocol())
	}
	if *backend != "" {
		opts = append(opts, zaatar.WithBackend(*backend))
	}
	if *noCrypto {
		opts = append(opts, zaatar.WithoutCommitment())
	}
	var client *zaatar.Client
	if *farmOn {
		routing := zaatar.FarmAffinity
		switch *farmRouting {
		case "affinity":
		case "static":
			routing = zaatar.FarmStatic
		default:
			check(fmt.Errorf("unknown -farm-routing %q (want affinity or static)", *farmRouting))
		}
		opts = append(opts,
			zaatar.WithFarmRouting(routing),
			zaatar.WithShardRetries(*shardRetry),
			zaatar.WithFarmShardSize(*shardSize),
			zaatar.WithFarmWideCommit(*farmWide))
		var workers []string
		for _, a := range strings.Split(*addr, ",") {
			if a = strings.TrimSpace(a); a != "" {
				workers = append(workers, a)
			}
		}
		client, err = zaatar.DialFarm(ctx, workers, string(src), opts...)
	} else {
		client, err = zaatar.Dial(ctx, *addr, string(src), opts...)
	}
	check(err)
	defer client.Close()
	fmt.Fprintf(os.Stderr, "zaatar-client: wire protocol v%d, backend %s, session setup %v\n",
		client.WireVersion(), client.Backend(), client.SetupDuration().Round(time.Microsecond))

	allOK := true
	var res *zaatar.SessionResult
	for b := 0; b < *batches; b++ {
		start := time.Now()
		res, err = client.RunBatch(ctx, batch)
		check(err)
		if *batches > 1 {
			fmt.Fprintf(os.Stderr, "zaatar-client: batch %d/%d in %v\n",
				b+1, *batches, time.Since(start).Round(time.Microsecond))
		}
		if !res.AllAccepted() {
			allOK = false
		}
	}
	check(client.Close())
	if tc != nil {
		check(writeTrace(*traceOut, tc))
		fmt.Fprintf(os.Stderr, "zaatar-client: trace written to %s (%d spans, %d dropped)\n",
			*traceOut, tc.Recorder().Len(), tc.Recorder().Dropped())
	}

	for i := range batch {
		if res.Accepted[i] {
			fmt.Printf("instance %d: ACCEPTED, outputs %v\n", i, res.Outputs[i])
		} else {
			fmt.Printf("instance %d: REJECTED (%s)\n", i, res.Reasons[i])
		}
	}
	if !allOK {
		os.Exit(1)
	}
}

// writeTrace exports the stitched verifier+prover span tree in Chrome
// trace-event form.
func writeTrace(path string, tc *trace.Ctx) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sum := map[string]any{"dropped_spans": tc.Recorder().Dropped()}
	if err := trace.WriteChrome(f, tc.Recorder().Snapshot(), sum); err != nil {
		return err
	}
	return f.Close()
}

func parseBatch(s string) ([][]*big.Int, error) {
	var batch [][]*big.Int
	for _, inst := range strings.Split(s, ";") {
		var in []*big.Int
		for _, tok := range strings.Split(inst, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, ok := new(big.Int).SetString(tok, 10)
			if !ok {
				return nil, fmt.Errorf("bad input %q", tok)
			}
			in = append(in, v)
		}
		batch = append(batch, in)
	}
	return batch, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "zaatar-client:", err)
		os.Exit(1)
	}
}
