// Command zaatar-server runs a long-lived multi-tenant prover service that
// accepts verifier sessions over TCP: each session receives a computation
// and batches of inputs, executes them, and produces the
// verified-computation argument. Compiled programs are cached across
// sessions (-cache) and, with -store, persisted to disk as content-addressed
// bundles that survive restarts; concurrent sessions share the kernel pool
// under a bounded admission semaphore (-maxsessions), wire protocol v2 lets
// one connection carry many batches, and v3 lets a returning client name its
// program by hash instead of re-uploading the source.
//
// The server installs a per-message I/O deadline on every connection
// (-timeout), drains in-flight sessions on SIGINT/SIGTERM before exiting,
// and can expose its metrics registry over HTTP (-metrics): /metrics is the
// expvar-style text form, /metrics/prometheus the Prometheus exposition
// format (including the per-tenant labeled series and the transport.slo.*
// gauges), /healthz liveness, /readyz readiness (-slo-p99 flips it to 503
// while the rolling p99 batch latency is over budget), and -pprof
// additionally mounts net/http/pprof under /debug/pprof/ on the same
// address. With -log-format text|json the server emits one structured
// session record per negotiation/batch/close to stderr, carrying the
// session id, backend, program hash, and trace correlation ids.
//
// Usage:
//
//	zaatar-server -listen :7001 -workers 8 -maxsessions 16 -timeout 2m -metrics :7002 -pprof
//	zaatar-server -listen :7001 -log-format json -metrics :7002 -slo-p99 500ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"zaatar"
	"zaatar/internal/obs"
	"zaatar/internal/transport"
)

func main() {
	var (
		listen      = flag.String("listen", ":7001", "address to listen on")
		workers     = flag.Int("workers", runtime.NumCPU(), "service-wide prover worker pool, shared by admitted sessions")
		maxSessions = flag.Int("maxsessions", 16, "how many sessions may compute concurrently")
		maxBatch    = flag.Int("maxbatch", 4096, "maximum batch size per session")
		maxConns    = flag.Int("maxconns", 0, "open connections kept at once, idle included (0 = 16*maxsessions, <0 unlimited)")
		cacheSize   = flag.Int("cache", 32, "compiled programs kept in the cross-session LRU")
		storeDir    = flag.String("store", "", "directory for the persistent artifact store: compiled programs survive restarts as content-addressed bundles (empty disables)")
		maxSource   = flag.Int("maxsource", 0, "largest program source accepted, in bytes (0 = 1 MiB)")
		backends    = flag.String("backends", "", "comma-separated proof backends to serve (empty = all compiled in)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-message read/write deadline (0 disables)")
		idleTimeout = flag.Duration("idletimeout", 0, "reap keep-alive connections idle this long between batches (0 = 2m, <0 disables)")
		metrics     = flag.String("metrics", "", "address for the HTTP metrics endpoint (empty disables)")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -metrics address")
		logFormat   = flag.String("log-format", "", "emit structured session logs to stderr: text or json (empty disables)")
		sloP99      = flag.Duration("slo-p99", 0, "readiness SLO: /readyz reports 503 while the rolling p99 batch latency exceeds this (0 disables)")
		drain       = flag.Duration("drain", 30*time.Second, "how long to wait for in-flight sessions on shutdown")
		workerMode  = flag.Bool("worker", false, "run as a prover-farm worker: identical service, plus the farm.worker.up gauge for farm monitoring (see zaatar-client -farm)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file (covers the whole server lifetime)")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on shutdown")
	)
	flag.Parse()

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("zaatar-server: %v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatalf("zaatar-server: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			pf, err := os.Create(*memProf)
			if err != nil {
				log.Printf("zaatar-server: heap profile: %v", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				log.Printf("zaatar-server: heap profile: %v", err)
			}
		}()
	}

	reg := obs.Default()
	if *pprofOn && *metrics == "" {
		log.Fatalf("zaatar-server: -pprof needs -metrics to name the HTTP address")
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/metrics/prometheus", reg.PrometheusHandler())
		mux.Handle("/healthz", obs.HealthHandler())
		mux.Handle("/readyz", obs.ReadyHandler(func() error {
			if *sloP99 <= 0 {
				return nil
			}
			p99, ok := reg.GaugeValue(transport.MetricSLOPrefix + obs.SLOGaugeP99)
			if ok && p99 > sloP99.Seconds() {
				return fmt.Errorf("rolling p99 %.0fms exceeds SLO %v", p99*1e3, *sloP99)
			}
			return nil
		}))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", httppprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		}
		msrv := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("zaatar-server: metrics endpoint: %v", err)
			}
		}()
		log.Printf("zaatar-server: metrics on http://%s/metrics (Prometheus form at /metrics/prometheus)", *metrics)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("zaatar-server: %v", err)
	}
	fmt.Printf("zaatar-server: proving on %s (%d workers, %d sessions, cache %d)\n",
		ln.Addr(), *workers, *maxSessions, *cacheSize)

	// SIGINT/SIGTERM: stop accepting, cancel the session context after the
	// drain window; Serve returns once every in-flight session has drained.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("zaatar-server: %v: draining sessions (up to %v)", sig, *drain)
		ln.Close()
		time.AfterFunc(*drain, cancel)
	}()

	srvOpts := []zaatar.ServerOption{
		zaatar.WithServerWorkers(*workers),
		zaatar.WithMaxSessions(*maxSessions),
		zaatar.WithMaxBatch(*maxBatch),
		zaatar.WithMaxConns(*maxConns),
		zaatar.WithProgramCacheSize(*cacheSize),
		zaatar.WithServerIOTimeout(*timeout),
		zaatar.WithIdleTimeout(*idleTimeout),
		zaatar.WithServerMetrics(reg),
		zaatar.WithServerLogf(log.Printf),
	}
	if *logFormat != "" {
		srvOpts = append(srvOpts, zaatar.WithServerLogger(obs.NewLogger(os.Stderr, *logFormat)))
	}
	if *storeDir != "" {
		srvOpts = append(srvOpts, zaatar.WithStore(*storeDir))
		log.Printf("zaatar-server: artifact store at %s", *storeDir)
	}
	if *maxSource != 0 {
		srvOpts = append(srvOpts, zaatar.WithMaxSourceBytes(*maxSource))
	}
	if *backends != "" {
		var names []string
		for _, n := range strings.Split(*backends, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		srvOpts = append(srvOpts, zaatar.WithServerBackends(names...))
	}
	serve := zaatar.Serve
	if *workerMode {
		serve = zaatar.ServeWorker
		log.Printf("zaatar-server: farm worker mode")
	}
	if err := serve(ctx, ln, srvOpts...); err != nil {
		log.Fatalf("zaatar-server: %v", err)
	}
	log.Printf("zaatar-server: drained, exiting")
}
