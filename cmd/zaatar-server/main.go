// Command zaatar-server runs a prover that accepts verifier sessions over
// TCP: each session receives a computation and a batch of inputs, executes
// them, and produces the verified-computation argument.
//
// Usage:
//
//	zaatar-server -listen :7001 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"runtime"

	"zaatar/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", ":7001", "address to listen on")
		workers  = flag.Int("workers", runtime.NumCPU(), "prover worker pool size per session")
		maxBatch = flag.Int("maxbatch", 4096, "maximum batch size per session")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("zaatar-server: %v", err)
	}
	fmt.Printf("zaatar-server: proving on %s (%d workers)\n", ln.Addr(), *workers)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("zaatar-server: accept: %v", err)
			continue
		}
		go func(c net.Conn) {
			log.Printf("zaatar-server: session from %s", c.RemoteAddr())
			if err := transport.ServeConn(c, transport.ServerOptions{Workers: *workers, MaxBatch: *maxBatch}); err != nil {
				log.Printf("zaatar-server: session from %s failed: %v", c.RemoteAddr(), err)
				return
			}
			log.Printf("zaatar-server: session from %s complete", c.RemoteAddr())
		}(conn)
	}
}
