// Command zaatar-compile translates a mini-SFDL program to constraints and
// prints the encoding statistics of Figure 9 — the |Z|, |C|, K, K₂ and
// proof-vector sizes that drive the Zaatar-vs-Ginger comparison — without
// running the protocol.
//
// With -bundle (or -store) it additionally runs the prover-side
// preprocessing and persists the compiled program as a content-addressed
// bundle, ready for a zaatar-server artifact store: a server started with
// -store over a pre-seeded directory serves its first session for that
// program without compiling anything.
//
// Usage:
//
//	zaatar-compile -src prog.zr
//	zaatar-compile -src prog.zr -dump      # also print the constraints
//	zaatar-compile -src prog.zr -bundle prog.zb
//	zaatar-compile -src prog.zr -store /var/lib/zaatar/store
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"zaatar"
	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/store"
	"zaatar/internal/vc"
)

func main() {
	var (
		srcPath = flag.String("src", "", "path to the mini-SFDL source file")
		f220    = flag.Bool("f220", false, "use the 220-bit field")
		dump    = flag.Bool("dump", false, "dump the quadratic-form constraints")
		bundle  = flag.String("bundle", "", "write the compiled program and its preprocessing to this bundle file")
		stDir   = flag.String("store", "", "save the bundle into this artifact store directory under its canonical name")
		backend = flag.String("backend", zaatar.BackendZaatar, "proof backend to preprocess the bundle for")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the compilation to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *srcPath == "" {
		fmt.Fprintln(os.Stderr, "usage: zaatar-compile -src prog.zr")
		os.Exit(2)
	}
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(pf))
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			pf, err := os.Create(*memProf)
			check(err)
			defer pf.Close()
			runtime.GC()
			check(pprof.WriteHeapProfile(pf))
		}()
	}
	src, err := os.ReadFile(*srcPath)
	check(err)
	var opts []zaatar.CompileOption
	if *f220 {
		opts = append(opts, zaatar.WithField220())
	}
	prog, err := zaatar.Compile(string(src), opts...)
	check(err)

	st := prog.Stats()
	fmt.Printf("inputs: %d, outputs: %d\n", prog.NumInputs(), prog.NumOutputs())
	fmt.Printf("Ginger encoding:  |Z| = %d  |C| = %d  K = %d  K2 = %d\n",
		st.GingerVars, st.GingerConstraints, st.K, st.K2)
	fmt.Printf("Zaatar encoding:  |Z| = %d  |C| = %d\n", st.ZaatarVars, st.ZaatarConstraints)
	fmt.Printf("proof vectors:    |u_ginger| = %d  |u_zaatar| = %d  (ratio %.1f×)\n",
		st.UGinger, st.UZaatar, float64(st.UGinger)/float64(st.UZaatar))
	k2star := (st.GingerVars*st.GingerVars - st.GingerVars) / 2
	fmt.Printf("degeneracy check: K2 = %d vs K2* = %d (Zaatar wins while K2 < K2*; §4)\n", st.K2, k2star)

	if *dump {
		fmt.Println("\nquadratic-form constraints (pA · pB = pC):")
		for j, c := range prog.Quad.Cons {
			fmt.Printf("%6d: (%s) * (%s) = (%s)\n", j, lcString(prog, c.A), lcString(prog, c.B), lcString(prog, c.C))
		}
	}

	if *bundle != "" || *stDir != "" {
		pre, err := vc.PreprocessBackend(prog, *backend)
		check(err)
		if *bundle != "" {
			key, n, err := store.WriteBundle(*bundle, prog, pre)
			check(err)
			fmt.Printf("bundle: %s (%d bytes, key %s)\n", *bundle, n, key)
		}
		if *stDir != "" {
			st, err := store.Open(*stDir)
			check(err)
			key := store.KeyFor(prog.Source, prog.Field.Name(), *backend)
			n, err := st.Save(key, prog, pre)
			check(err)
			fmt.Printf("stored: %s (%d bytes)\n", st.Path(key), n)
		}
	}
}

func lcString(prog *zaatar.Program, lc constraint.LinComb) string {
	f := prog.Field
	if len(lc) == 0 {
		return "0"
	}
	s := ""
	for i, t := range lc {
		if i > 0 {
			s += " + "
		}
		s += termString(f, t)
	}
	return s
}

func termString(f *field.Field, t constraint.LinTerm) string {
	v := f.SignedBig(t.Coeff)
	switch {
	case t.Var == 0:
		return v.String()
	case v.IsInt64() && v.Int64() == 1:
		return fmt.Sprintf("w%d", t.Var)
	default:
		return fmt.Sprintf("%v·w%d", v, t.Var)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "zaatar-compile:", err)
		os.Exit(1)
	}
}
