// Command zaatar-run compiles a mini-SFDL program and drives the full
// verified-computation protocol end to end in one process: the verifier
// outsources each instance to the prover, checks the argument, and prints
// the verified outputs.
//
// Usage:
//
//	zaatar-run -src prog.zr -inputs "10"            # one instance
//	zaatar-run -src prog.zr -inputs "10; 20; 30"    # a batch of three
//	zaatar-run -src prog.zr -inputs "1,2,3" -quick  # reduced PCP repetitions
//
// Inputs are comma-separated integers, one group per instance separated by
// semicolons, in the order the program declares them (arrays flattened
// row-major).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"zaatar"
	"zaatar/internal/constraint"
	"zaatar/internal/costmodel"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
)

func main() { os.Exit(run()) }

// run holds main's body so deferred profile writers flush before the
// process exits with a status code.
func run() int {
	var (
		srcPath  = flag.String("src", "", "path to the mini-SFDL source file")
		inputs   = flag.String("inputs", "", "instance inputs: comma-separated ints; ';' separates instances")
		quick    = flag.Bool("quick", false, "use reduced PCP repetitions (2, 2) instead of the paper's (20, 8)")
		f220     = flag.Bool("f220", false, "use the 220-bit field")
		noCrypto = flag.Bool("nocrypto", false, "skip the ElGamal commitment (PCP only)")
		workers  = flag.Int("workers", 1, "prover worker pool size")
		ginger   = flag.Bool("ginger", false, "use the Ginger baseline encoding (small computations only)")
		backend  = flag.String("backend", "", "proof backend: auto|zaatar|ginger|sumcheck (overrides -ginger; auto lets the cost model pick)")
		stats    = flag.Bool("stats", false, "print encoding statistics and timing decomposition")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto / chrome://tracing)")
		metrOut  = flag.String("metrics-out", "", "write the run's metrics in Prometheus exposition form to this file on exit ('-' for stdout)")
	)
	flag.Parse()
	if *srcPath == "" || *inputs == "" {
		fmt.Fprintln(os.Stderr, "usage: zaatar-run -src prog.zr -inputs \"1,2,3; 4,5,6\"")
		return 2
	}
	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		check(err)
		check(pprof.StartCPUProfile(pf))
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			pf, err := os.Create(*memProf)
			check(err)
			defer pf.Close()
			runtime.GC()
			check(pprof.WriteHeapProfile(pf))
		}()
	}
	src, err := os.ReadFile(*srcPath)
	check(err)

	// The field option shapes compilation and the run; the rest only the run.
	var copts []zaatar.CompileOption
	var opts []zaatar.RunOption
	if *f220 {
		copts = append(copts, zaatar.WithField220())
		opts = append(opts, zaatar.WithField220())
	}
	if *quick {
		opts = append(opts, zaatar.WithParams(2, 2))
	}
	if *noCrypto {
		opts = append(opts, zaatar.WithoutCommitment())
	}
	if *ginger {
		opts = append(opts, zaatar.WithGingerProtocol())
	}
	if *backend != "" {
		opts = append(opts, zaatar.WithBackend(*backend))
	}
	opts = append(opts, zaatar.WithWorkers(*workers))

	prog, err := zaatar.Compile(string(src), copts...)
	check(err)

	// Resolve the name the run will actually use, for the stats line and
	// the trace summary's cost-model pick.
	backendName := zaatar.BackendZaatar
	if *ginger {
		backendName = zaatar.BackendGinger
	}
	if *backend != "" {
		backendName = *backend
		if backendName == zaatar.BackendAuto {
			backendName = zaatar.RecommendBackend(prog)
		}
	}

	batch, err := parseBatch(*inputs, prog.NumInputs())
	check(err)

	// With -trace, every protocol phase, per-instance step, and kernel call
	// of the run records a span; without it tc is nil and the context adds
	// nothing.
	var tc *trace.Ctx
	ctx := context.Background()
	if *traceOut != "" {
		tc = trace.New(trace.NewRecorder(trace.DefaultCapacity), "zaatar-run")
		ctx = trace.NewContext(ctx, tc)
	}
	res, err := zaatar.RunContext(ctx, prog, batch, opts...)
	check(err)
	if *metrOut != "" {
		check(writeMetrics(*metrOut))
	}
	if tc != nil {
		params := zaatar.DefaultParams()
		if *quick {
			params = pcp.Params{RhoLin: 2, Rho: 2}
		}
		check(writeTrace(*traceOut, tc, prog, res, params, backendName))
		fmt.Fprintf(os.Stderr, "zaatar-run: trace written to %s (%d spans, %d dropped)\n",
			*traceOut, tc.Recorder().Len(), tc.Recorder().Dropped())
	}

	for i := range batch {
		status := "ACCEPTED"
		if !res.Accepted[i] {
			status = "REJECTED: " + res.Reasons[i]
		}
		fmt.Printf("instance %d: %s\n", i, status)
		for j, name := range prog.OutputNames {
			fmt.Printf("  %s = %v\n", name, res.Outputs[i][j])
		}
	}
	if *stats {
		st := prog.Stats()
		fmt.Printf("\nbackend: %s\n", backendName)
		fmt.Printf("encoding: |Z_ginger|=%d |C_ginger|=%d |Z_zaatar|=%d |C_zaatar|=%d K=%d K2=%d |u_ginger|=%d |u_zaatar|=%d\n",
			st.GingerVars, st.GingerConstraints, st.ZaatarVars, st.ZaatarConstraints,
			st.K, st.K2, st.UGinger, st.UZaatar)
		m := res.Metrics
		fmt.Printf("verifier: setup %v, verification %v\n", m.Setup, m.VerifyTotal)
		fmt.Printf("pipeline: commit %v, decommit %v, respond %v, respond+verify %v, total %v (%d workers)\n",
			m.Commit, m.Decommit, m.Respond, m.RespondVerify, m.Total, m.Workers)
		for i, pt := range res.ProverTimes {
			fmt.Printf("prover instance %d: solve %v, construct u %v, crypto %v, answer %v (e2e %v)\n",
				i, pt.Solve, pt.ConstructU, pt.Crypto, pt.Answer, pt.E2E())
		}
	}
	if !res.AllAccepted() {
		return 1
	}
	return 0
}

// writeMetrics dumps the default registry — where the run's counters,
// labeled series, and phase histograms accumulated — in Prometheus
// exposition form, for scraping into CI artifacts.
func writeMetrics(path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return zaatar.Metrics().WritePrometheus(w)
}

// phaseComparison is one row of the trace summary: a measured phase next to
// the cost model's prediction for it (Figure 3, scaled to the batch).
type phaseComparison struct {
	Phase      string  `json:"phase"`
	ObservedMs float64 `json:"observed_ms"`
	ModelMs    float64 `json:"model_ms"`
}

// runSummary is embedded into the trace file under the "zaatarSummary" key.
type runSummary struct {
	Protocol  string            `json:"protocol"`
	Instances int               `json:"instances"`
	Workers   int               `json:"workers"`
	Phases    []phaseComparison `json:"phases"`
	// ModelNote qualifies the predictions: the model is serial CPU cost with
	// field-op parameters calibrated on this machine and crypto parameters
	// (e, d, h) left zero, so commitment-heavy runs will overshoot it.
	ModelNote string `json:"model_note"`
	Dropped   int64  `json:"dropped_spans"`
}

// writeTrace exports the run's spans in Chrome trace-event form, with a
// model-vs-observed per-phase comparison as the summary payload.
func writeTrace(path string, tc *trace.Ctx, prog *zaatar.Program, res *zaatar.Result, params pcp.Params, backend string) error {
	st := prog.Stats()
	q := costmodel.Quantities{
		ZGinger: st.GingerVars, CGinger: st.GingerConstraints,
		ZZaatar: st.ZaatarVars, CZaatar: st.ZaatarConstraints,
		K: st.K, K2: st.K2,
		NX: prog.NumInputs(), NY: prog.NumOutputs(),
		Params: params,
	}
	p := costmodel.Calibrate(prog.Field, nil, 200)
	est := costmodel.EstimateZaatar(p, q)
	switch backend {
	case "ginger":
		est = costmodel.EstimateGinger(p, q)
	case "sumcheck":
		// The run already succeeded on this lane, so the circuit layers.
		if lc, err := constraint.Layer(prog.Field, prog.Ginger); err == nil {
			est = costmodel.EstimateSumcheck(p, costmodel.SumcheckQuantities{Stats: lc.Stats()})
		}
	}
	m := res.Metrics
	beta := float64(m.Instances)
	ms := func(s float64) float64 { return s * 1e3 }
	sum := runSummary{
		Protocol:  backend,
		Instances: m.Instances,
		Workers:   m.Workers,
		Phases: []phaseComparison{
			{Phase: "vc.setup", ObservedMs: float64(m.Setup.Microseconds()) / 1e3, ModelMs: ms(est.VerifierSetup)},
			{Phase: "vc.commit", ObservedMs: float64(m.Commit.Microseconds()) / 1e3, ModelMs: ms(beta * est.ProverTotal())},
			{Phase: "vc.decommit", ObservedMs: float64(m.Decommit.Microseconds()) / 1e3, ModelMs: 0},
			{Phase: "vc.respond", ObservedMs: float64(m.Respond.Microseconds()) / 1e3, ModelMs: 0},
			{Phase: "vc.verify", ObservedMs: float64(m.VerifyTotal.Microseconds()) / 1e3, ModelMs: ms(beta * est.VerifierPerInstance)},
		},
		ModelNote: "model is serial CPU seconds from Figure 3 with crypto op costs uncalibrated (e=d=h=0)",
		Dropped:   tc.Recorder().Dropped(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteChrome(f, tc.Recorder().Snapshot(), sum); err != nil {
		return err
	}
	return f.Close()
}

func parseBatch(s string, want int) ([][]*big.Int, error) {
	var batch [][]*big.Int
	for _, inst := range strings.Split(s, ";") {
		var in []*big.Int
		for _, tok := range strings.Split(inst, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, ok := new(big.Int).SetString(tok, 10)
			if !ok {
				return nil, fmt.Errorf("bad input %q", tok)
			}
			in = append(in, v)
		}
		if len(in) != want {
			return nil, fmt.Errorf("instance has %d inputs, program wants %d", len(in), want)
		}
		batch = append(batch, in)
	}
	return batch, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "zaatar-run:", err)
		os.Exit(1)
	}
}
