// Package zaatar is a verified-computation library reproducing the system
// of "Resolving the conflict between generality and plausibility in
// verified computation" (Setty, Braun, Vu, Blumberg, Parno, Walfish —
// EuroSys 2013).
//
// A verifier outsources a computation Ψ, written in a small C-like language,
// to an untrusted prover. The prover returns the output y together with an
// interactive argument that y = Ψ(x); the argument composes a linear PCP
// with a homomorphic-encryption-based linear commitment. Two proof encodings
// are provided:
//
//   - Zaatar (the paper's contribution): a QAP-based linear PCP whose proof
//     vector is linear (|Z| + |C|) in the computation size; and
//   - Ginger (the baseline): the classical PCP with a quadratic
//     (|Z| + |Z|²) proof vector.
//
// Quick start:
//
//	prog, err := zaatar.Compile(`
//	    input x : int32;
//	    output y : int32;
//	    y = x - 3;
//	`)
//	res, err := zaatar.Run(prog, [][]*big.Int{{big.NewInt(10)}})
//	// res.Accepted[0] == true, res.Outputs[0][0].Int64() == 7
//
// Run drives a whole batch in-process. For a real deployment split the two
// ends over the network: Serve runs a long-lived multi-tenant prover
// service on a listener, and Dial connects a verifier-side Client that can
// push many batches over one kept-alive connection (wire protocol v2, with
// automatic fallback for v1 peers). cmd/zaatar-server and cmd/zaatar-client
// are thin wrappers over exactly these two calls. Lower still, NewVerifier
// and NewProver expose the raw phases, moving the exported message types
// (CommitRequest, Commitment, DecommitRequest, Response) across any
// transport of your own.
package zaatar

import (
	"context"
	"fmt"
	"log/slog"
	"math/big"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/costmodel"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// Program is a compiled computation. See Compile.
type Program = compiler.Program

// Protocol message types, for callers that run the phases over a transport.
type (
	// CommitRequest opens a batch (verifier → prover).
	CommitRequest = vc.CommitRequest
	// Commitment is the per-instance commit reply (prover → verifier).
	Commitment = vc.Commitment
	// DecommitRequest reveals the query seed and consistency points.
	DecommitRequest = vc.DecommitRequest
	// Response carries per-instance query answers (prover → verifier).
	Response = vc.Response
	// InstanceState is the prover's per-instance state between phases.
	InstanceState = vc.InstanceState
	// Result aggregates a batch's outcomes and timings.
	Result = vc.BatchResult
	// Verifier is one batch's verifier; see NewVerifier.
	Verifier = vc.Verifier
	// Prover is one computation's prover; see NewProver.
	Prover = vc.Prover
)

// CompileOption configures compilation (Compile). Options that only affect
// protocol runs do not satisfy it, so passing, say, WithParams to Compile
// is a compile-time error.
type CompileOption interface{ applyCompile(*options) }

// RunOption configures protocol runs (Run, RunContext, NewVerifier,
// NewProver, Dial). Every Option (such as WithField220) also satisfies
// RunOption.
type RunOption interface{ applyRun(*options) }

// Option configures both compilation and protocol runs; it satisfies
// CompileOption and RunOption. Options that affect both phases — today only
// the field choice — must be passed to Compile and Run alike: a program
// compiled over one field cannot be run over another, and Run reports a
// mismatch as an error.
type Option interface {
	CompileOption
	RunOption
}

type options struct {
	field    *field.Field
	fieldSet bool
	cfg      vc.Config
	ioTo     time.Duration
	logger   *slog.Logger

	// farm scheduling (DialFarm only)
	farmRouting  FarmRouting
	shardRetries int
	shardSize    int
	wideCommit   int
}

// bothOption implements Option; runOption implements only RunOption.
type bothOption func(*options)

func (f bothOption) applyCompile(o *options) { f(o) }
func (f bothOption) applyRun(o *options)     { f(o) }

type runOption func(*options)

func (f runOption) applyRun(o *options) { f(o) }

func buildCompileOptions(opts []CompileOption) options {
	o := options{field: field.F128()}
	for _, fn := range opts {
		fn.applyCompile(&o)
	}
	return o
}

func buildRunOptions(opts []RunOption) options {
	o := options{field: field.F128()}
	for _, fn := range opts {
		fn.applyRun(&o)
	}
	return o
}

// checkField catches a field option passed to a run but not to Compile:
// the program's arithmetic lives in the field it was compiled for, so the
// run must agree. (In earlier releases the run-side field was silently
// ignored, surfacing later as confusing constraint failures.)
func checkField(prog *Program, o options) error {
	if o.fieldSet && prog.Field != o.field {
		return fmt.Errorf("zaatar: program compiled for field %s but run options select %s; pass the same field option to Compile",
			prog.Field.Name(), o.field.Name())
	}
	return nil
}

// WithField220 selects the 220-bit field of §5.1 (larger integer capacity,
// slower arithmetic) instead of the default 128-bit field. It affects both
// compilation and runs; pass it to Compile and to Run (or Dial) alike.
func WithField220() Option {
	return bothOption(func(o *options) { o.field = field.F220(); o.fieldSet = true })
}

// WithGingerProtocol selects the baseline quadratic proof encoding instead
// of the QAP-based one — useful only for comparison; it is restricted to
// small computations because the proof vector is |Z|².
//
// Deprecated: use WithBackend(BackendGinger). Retained for compatibility;
// WithBackend takes precedence when both are given.
func WithGingerProtocol() RunOption {
	return runOption(func(o *options) { o.cfg.Protocol = vc.Ginger })
}

// Backend names accepted by WithBackend (besides BackendAuto).
const (
	// BackendZaatar is the QAP-based linear proof encoding (the default).
	BackendZaatar = pcp.BackendZaatar
	// BackendGinger is the quadratic baseline encoding.
	BackendGinger = pcp.BackendGinger
	// BackendSumcheck is the sum-check/GKR lane for layered circuits: no
	// commitment cryptography, so the prover runs orders of magnitude
	// faster, but only programs that stratify (pure add/mul arithmetic,
	// no comparisons or division advice) are accepted.
	BackendSumcheck = pcp.BackendSumcheck
	// BackendAuto defers the choice to the cost model at run (or dial)
	// time; see RecommendBackend.
	BackendAuto = "auto"
)

// WithBackend selects the proof backend by name: BackendZaatar,
// BackendGinger, BackendSumcheck, or BackendAuto to let the cost model pick
// per program. On a Dial'ed client the chosen backend leads the offer sent
// to the server; BackendAuto additionally appends BackendZaatar as a
// fallback so a server built without the recommended lane can still serve
// the session.
func WithBackend(name string) RunOption {
	return runOption(func(o *options) { o.cfg.Backend = name })
}

// Backends lists the proof backends compiled into this build, sorted by
// name.
func Backends() []string { return pcp.Names() }

// WithParams overrides the PCP repetition counts (ρ_lin, ρ). The default is
// the paper's production setting (20, 8) with soundness error below
// 9.6×10⁻⁷; tests use smaller values for speed.
func WithParams(rhoLin, rho int) RunOption {
	return runOption(func(o *options) { o.cfg.Params = pcp.Params{RhoLin: rhoLin, Rho: rho} })
}

// WithWorkers sets the prover's parallelism over a batch (the paper's
// distributed/GPU prover, Figure 6). On a Dial'ed client it sets the
// verifier-side parallelism over per-instance checks.
func WithWorkers(n int) RunOption {
	return runOption(func(o *options) { o.cfg.Workers = n })
}

// WithSeed fixes the verifier's randomness for reproducible runs. Do not
// use a fixed seed when soundness matters.
func WithSeed(seed []byte) RunOption {
	return runOption(func(o *options) { o.cfg.Seed = append([]byte(nil), seed...) })
}

// WithoutCommitment disables the cryptographic commitment, leaving the bare
// PCP. Orders of magnitude faster, but sound only against provers that
// honestly fix a linear proof function; intended for experiments.
func WithoutCommitment() RunOption {
	return runOption(func(o *options) { o.cfg.NoCommitment = true })
}

// WithGroup overrides the ElGamal group (e.g. a test group over a small
// field).
func WithGroup(g *elgamal.Group) RunOption {
	return runOption(func(o *options) { o.cfg.Group = g })
}

// WithMetrics directs the run's counters and per-phase latency histograms
// into r instead of the process-wide default registry. See Metrics for the
// default registry and the exported metric names in the vc package.
func WithMetrics(r *obs.Registry) RunOption {
	return runOption(func(o *options) { o.cfg.Obs = r })
}

// WithIOTimeout sets the per-message read/write deadline on a Dial'ed
// client's connections; in-process runs ignore it.
func WithIOTimeout(d time.Duration) RunOption {
	return runOption(func(o *options) { o.ioTo = d })
}

// WithLogger installs a structured logger on a Dial'ed client: one record
// per session event (negotiation, each batch) carrying the negotiated
// backend, the program hash, and — when the context carries a trace (see
// zaatar-client -trace) — trace_id/span_id fields that join the exported
// Perfetto trace. In-process runs ignore it. By default the client is
// silent.
func WithLogger(l *slog.Logger) RunOption {
	return runOption(func(o *options) { o.logger = l })
}

// Metrics returns the process-wide metrics registry that protocol runs
// record into unless WithMetrics overrides it. Its WriteText/Handler render
// the counters and histograms in an expvar-style text form.
func Metrics() *obs.Registry { return obs.Default() }

// DefaultParams returns the production PCP parameters (ρ_lin = 20, ρ = 8).
func DefaultParams() pcp.Params { return pcp.DefaultParams() }

// Compile translates a mini-SFDL program (see the language reference in the
// README) into constraint systems and a witness solver.
func Compile(src string, opts ...CompileOption) (*Program, error) {
	o := buildCompileOptions(opts)
	return compiler.Compile(o.field, src)
}

// Run drives the full batched protocol in-process: one verifier, one prover
// (with the configured worker parallelism), len(batch) instances. It
// returns per-instance acceptance, outputs, and timing decompositions.
func Run(prog *Program, batch [][]*big.Int, opts ...RunOption) (*Result, error) {
	return RunContext(context.Background(), prog, batch, opts...)
}

// RunContext is Run with cancellation: the staged pipeline checks ctx
// between per-instance steps and aborts promptly with ctx.Err() when it is
// cancelled.
func RunContext(ctx context.Context, prog *Program, batch [][]*big.Int, opts ...RunOption) (*Result, error) {
	o := buildRunOptions(opts)
	if err := checkField(prog, o); err != nil {
		return nil, err
	}
	resolveBackend(prog, &o)
	return vc.RunBatch(ctx, prog, o.cfg, batch)
}

// NewVerifier creates one batch's verifier for a compiled program.
func NewVerifier(prog *Program, opts ...RunOption) (*Verifier, error) {
	o := buildRunOptions(opts)
	if err := checkField(prog, o); err != nil {
		return nil, err
	}
	resolveBackend(prog, &o)
	return vc.NewVerifier(prog, o.cfg)
}

// NewProver creates a prover for a compiled program.
func NewProver(prog *Program, opts ...RunOption) (*Prover, error) {
	o := buildRunOptions(opts)
	if err := checkField(prog, o); err != nil {
		return nil, err
	}
	resolveBackend(prog, &o)
	return vc.NewProver(prog, o.cfg)
}

// resolveBackend replaces the BackendAuto placeholder with the cost model's
// pick for this program; concrete names (and the legacy Protocol field) pass
// through untouched for vc to validate.
func resolveBackend(prog *Program, o *options) {
	if o.cfg.Backend == BackendAuto {
		o.cfg.Backend = RecommendBackend(prog)
	}
}

// Protocol identifies a proof encoding; see the vc package constants
// re-exported here.
type Protocol = vc.Protocol

// Protocol values.
const (
	// ProtocolZaatar is the QAP-based linear encoding (the default).
	ProtocolZaatar = vc.Zaatar
	// ProtocolGinger is the quadratic baseline encoding.
	ProtocolGinger = vc.Ginger
)

// RecommendProtocol picks the encoding with the smaller proof vector for a
// compiled program — §4's observation that the (rare, degenerate) cases
// where Ginger wins are detectable at compile time. Compiler-produced
// programs always recommend Zaatar; the degenerate cases arise only for
// hand-written constraint systems with dense degree-2 forms.
//
// Deprecated: use RecommendBackend, which additionally considers the
// sum-check lane and returns a backend name WithBackend accepts directly.
// Behavior is unchanged for the two legacy encodings.
func RecommendProtocol(prog *Program) Protocol {
	return vc.RecommendProtocol(prog.Ginger, prog.Quad)
}

// RecommendBackend picks the cheapest proof backend for a compiled program:
// the sum-check lane when the circuit stratifies and its field-only prover
// undercuts the cryptographic lanes at the §5.1 cost ratios, otherwise
// whichever of Zaatar and Ginger has the smaller proof vector. This is what
// BackendAuto resolves to.
func RecommendBackend(prog *Program) string {
	return costmodel.RecommendBackend(prog.Field, prog.Ginger, prog.Quad)
}
