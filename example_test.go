package zaatar_test

import (
	"fmt"
	"math/big"

	"zaatar"
)

// The §2.1 running example, decrement-by-3, through the whole protocol.
// Reduced PCP repetitions keep the example fast; drop WithParams for the
// paper's production soundness (error < 9.6×10⁻⁷).
func Example() {
	prog, err := zaatar.Compile(`
		input x : int32;
		output y : int32;
		y = x - 3;
	`)
	if err != nil {
		panic(err)
	}
	res, err := zaatar.Run(prog,
		[][]*big.Int{{big.NewInt(10)}},
		zaatar.WithParams(2, 2), zaatar.WithSeed([]byte("example")))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Outputs[0][0], res.Accepted[0])
	// Output: 7 true
}

// Batching amortizes the verifier's query setup over many instances of the
// same computation — the regime the paper targets (§2.2).
func Example_batch() {
	prog, err := zaatar.Compile(`
		const N = 4;
		input x[N] : int16;
		output s : int64;
		s = 0;
		for i = 0 to N-1 { s = s + x[i] * x[i]; }
	`)
	if err != nil {
		panic(err)
	}
	batch := [][]*big.Int{
		{big.NewInt(1), big.NewInt(2), big.NewInt(3), big.NewInt(4)},
		{big.NewInt(-5), big.NewInt(0), big.NewInt(5), big.NewInt(10)},
	}
	res, err := zaatar.Run(prog, batch,
		zaatar.WithParams(2, 2), zaatar.WithoutCommitment(), zaatar.WithSeed([]byte("b")))
	if err != nil {
		panic(err)
	}
	for i := range batch {
		fmt.Println(res.Outputs[i][0], res.Accepted[i])
	}
	// Output:
	// 30 true
	// 150 true
}

// RecommendProtocol picks the proof encoding; compiled programs always
// favor the QAP-based one.
func ExampleRecommendProtocol() {
	prog, err := zaatar.Compile(`
		input a, b : int32;
		output p : int64;
		p = a * b;
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(zaatar.RecommendProtocol(prog))
	// Output: zaatar
}

// Stats exposes the Figure 9 encoding quantities that drive the paper's
// cost comparison.
func ExampleProgram_stats() {
	prog, err := zaatar.Compile(`
		input a, b : int32;
		output p : int64;
		p = a * b;
	`)
	if err != nil {
		panic(err)
	}
	st := prog.Stats()
	fmt.Println(st.UZaatar < st.UGinger)
	// Output: true
}
