package zaatar

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"time"

	"zaatar/internal/obs"
	"zaatar/internal/store"
	"zaatar/internal/transport"
)

// serverOptions wraps the service configuration so ServerOption's
// signature stays free of internal types.
type serverOptions struct {
	svc      transport.ServiceOptions
	storeDir string
}

// ServerOption configures Serve.
type ServerOption func(*serverOptions)

// WithServerWorkers sets the service-wide kernel pool: the total prover
// parallelism shared by every admitted session (each session gets an equal
// share). Defaults to runtime.NumCPU().
func WithServerWorkers(n int) ServerOption {
	return func(o *serverOptions) { o.svc.Workers = n }
}

// WithMaxSessions bounds how many sessions may compute concurrently; the
// rest wait in admission. An idle keep-alive connection does not hold a
// slot. Defaults to 16.
func WithMaxSessions(n int) ServerOption {
	return func(o *serverOptions) { o.svc.MaxSessions = n }
}

// WithMaxBatch bounds the number of instances a client may submit per
// batch. Defaults to 1<<16.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) { o.svc.MaxBatch = n }
}

// WithServerIOTimeout sets the per-message read/write deadline on every
// connection; a peer stalling longer mid-protocol fails the session.
func WithServerIOTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.svc.IOTimeout = d }
}

// WithMaxConns bounds how many connections the server keeps open at once,
// including idle keep-alive connections (which hold no admission slot but
// still pin a goroutine and their program); excess connections are refused
// at accept. Defaults to 16× the MaxSessions value; negative means
// unlimited.
func WithMaxConns(n int) ServerOption {
	return func(o *serverOptions) { o.svc.MaxConns = n }
}

// WithIdleTimeout bounds how long a kept-alive connection may sit idle
// between batches before the server closes it (a clean end, not a session
// error). Defaults to 2 minutes; negative disables the bound.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.svc.IdleTimeout = d }
}

// WithProgramCacheSize sets how many compiled programs (with their
// prover-side precomputations) the service keeps in its cross-session LRU.
// Defaults to 32.
func WithProgramCacheSize(n int) ServerOption {
	return func(o *serverOptions) { o.svc.CacheSize = n }
}

// WithServerBackends restricts which proof backends the service negotiates
// (a client's offer is matched against this list; see ErrNoCommonBackend in
// the wire protocol). By default every backend compiled into the build is
// available.
func WithServerBackends(names ...string) ServerOption {
	return func(o *serverOptions) { o.svc.Backends = names }
}

// WithServerMetrics directs the service's counters and spans (the
// transport.*, including transport.cache.* and transport.admission.*
// series) into r instead of the process-wide default registry.
func WithServerMetrics(r *obs.Registry) ServerOption {
	return func(o *serverOptions) { o.svc.Obs = r }
}

// WithServerLogf installs a logger receiving one line per failed session
// from the accept loop (e.g. log.Printf). By default failures are silent.
//
// Deprecated: use WithServerLogger, whose structured records carry the
// session id, backend, program hash, and trace correlation. WithServerLogf
// keeps working (the two compose) but receives only the accept-loop lines.
func WithServerLogf(logf func(format string, args ...any)) ServerOption {
	return func(o *serverOptions) { o.svc.Logf = logf }
}

// WithServerLogger installs a structured logger on the service: one record
// per session event (negotiation, each batch served, session close)
// carrying the session id, negotiated backend, program hash, and — when the
// client's hello carries a trace — trace_id/span_id fields joinable against
// the exported Perfetto trace. Composes with WithServerLogf, which keeps
// receiving the accept-loop failure lines. By default the service emits no
// structured records.
func WithServerLogger(l *slog.Logger) ServerOption {
	return func(o *serverOptions) { o.svc.Logger = l }
}

// WithStore persists compiled programs (with their prover-side
// precomputations) as content-addressed bundles under dir, keyed by
// source, field, and backend. A restarted server reloads a known program
// from disk instead of recompiling it, so a warm restart serves its first
// session without paying compilation or preprocessing; together with the
// v3 hash-first hello, repeat clients then also skip uploading the
// source. The directory is created if missing; a corrupt or
// version-skewed bundle is treated as a cache miss (the program is
// recompiled and the bundle rewritten), never a failure. Disk traffic is
// reported under the transport.store.* metric series.
func WithStore(dir string) ServerOption {
	return func(o *serverOptions) { o.storeDir = dir }
}

// WithMaxSourceBytes bounds the program source a client may submit, in
// bytes, whether it arrives inline in the hello or as a v3 upload.
// Oversized sessions fail with a hello-phase error the client sees as a
// RemoteError. Defaults to 1 MiB.
func WithMaxSourceBytes(n int) ServerOption {
	return func(o *serverOptions) { o.svc.MaxSourceBytes = n }
}

// WithSLOWindow sets the rolling window over which the service aggregates
// its SLO gauges (transport.slo.requests, .error_rate, .p99_seconds).
// Defaults to one minute.
func WithSLOWindow(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.svc.SLOWindow = d }
}

// Serve runs a long-lived multi-tenant prover service on ln until ctx is
// cancelled (or ln fails), then drains in-flight sessions and returns.
// Compiled programs are cached across sessions in an LRU keyed by source,
// field, and protocol — a repeat session for the same program skips
// compilation — and a bounded admission semaphore shares the kernel pool
// fairly among concurrent sessions. The service speaks wire protocol v3
// (hash-first hellos: a client names its program by digest and uploads the
// source only when the server holds neither a cached nor a stored copy) on
// top of v2 session keep-alive (many batches per connection, reusing the
// program; each batch carries its own commitment key, which soundness
// keeps per-batch), and transparently falls back to v2 or v1 for old
// peers. With WithStore, compiled programs additionally persist across
// server restarts.
func Serve(ctx context.Context, ln net.Listener, opts ...ServerOption) error {
	var o serverOptions
	for _, fn := range opts {
		fn(&o)
	}
	if o.storeDir != "" {
		st, err := store.Open(o.storeDir)
		if err != nil {
			return fmt.Errorf("zaatar: opening artifact store: %w", err)
		}
		o.svc.Store = st
	}
	return transport.NewService(o.svc).Serve(ctx, ln)
}
