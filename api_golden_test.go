package zaatar

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite api/zaatar.txt from the current exported surface")

const apiGoldenPath = "api/zaatar.txt"

// exportedAPI renders the package's exported surface — every exported
// type, func, method, const, and var declaration, bodies and comments
// stripped — as a sorted, deterministic text form.
func exportedAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	var decls []string
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// One decl per line: the golden diffs line-by-line.
		return strings.Join(strings.Fields(buf.String()), " ")
	}

	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		file, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ast.FileExports(file) // prune everything unexported, including struct fields
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				d.Doc, d.Body = nil, nil
				decls = append(decls, render(d))
			case *ast.GenDecl:
				if len(d.Specs) == 0 || d.Tok == token.IMPORT {
					continue
				}
				d.Doc = nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						s.Doc, s.Comment = nil, nil
						decls = append(decls, "type "+render(s))
					case *ast.ValueSpec:
						s.Doc, s.Comment = nil, nil
						decls = append(decls, d.Tok.String()+" "+render(s))
					}
				}
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n"
}

// TestAPIGolden diffs the exported surface of package zaatar against the
// checked-in golden file, so API changes are deliberate: regenerate with
//
//	go test -run TestAPIGolden -update .
func TestAPIGolden(t *testing.T) {
	got := exportedAPI(t)
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d declarations)", apiGoldenPath, strings.Count(got, "\n"))
		return
	}
	wantBytes, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update): %v", apiGoldenPath, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSuffix(want, "\n"), "\n") {
		wantSet[l] = true
	}
	var diff []string
	for l := range wantSet {
		if !gotSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	sort.Strings(diff)
	t.Fatalf("exported API differs from %s (run `go test -run TestAPIGolden -update .` if intentional):\n%s",
		apiGoldenPath, strings.Join(diff, "\n"))
}

// TestAPIGoldenCoversNewSurface spot-checks that the renderer sees the v2
// surface, guarding against the golden silently going empty.
func TestAPIGoldenCoversNewSurface(t *testing.T) {
	api := exportedAPI(t)
	for _, want := range []string{
		"func Serve(",
		"func Dial(",
		"func (c *Client) RunBatch(",
		"type SessionResult =",
		"type CompileOption interface",
		"type RunOption interface",
	} {
		if !strings.Contains(api, want) {
			t.Errorf("exported API render is missing %q:\n%s", want, api)
		}
	}
	if fmt.Sprintf("%c", api[0]) == " " {
		t.Error("API render starts with whitespace")
	}
}
