package benchprogs

import (
	"math/big"
	"math/rand"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/pcp"
	"zaatar/internal/prg"
	"zaatar/internal/qap"
)

// TestBenchmarksMatchReference compiles each benchmark and checks the
// compiled semantics against the native Go reference on random inputs, and
// that the produced witnesses satisfy both constraint systems.
func TestBenchmarksMatchReference(t *testing.T) {
	for _, b := range Small() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := compiler.Compile(b.Field, b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 5; trial++ {
				in := b.GenInputs(rng)
				want := b.Reference(in)
				got, wq, err := p.SolveQuad(in)
				if err != nil {
					t.Fatalf("solve: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("output count %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i].Cmp(want[i]) != 0 {
						t.Fatalf("trial %d output %d (%s): got %v, want %v",
							trial, i, p.OutputNames[i], got[i], want[i])
					}
				}
				if err := p.Quad.Check(b.Field, wq); err != nil {
					t.Fatalf("quad witness: %v", err)
				}
				if trial == 0 {
					_, wg, err := p.SolveGinger(in)
					if err != nil {
						t.Fatal(err)
					}
					if err := p.Ginger.Check(b.Field, wg); err != nil {
						t.Fatalf("ginger witness: %v", err)
					}
				}
			}
		})
	}
}

// TestBenchmarksEndToEndPCP runs the full Zaatar PCP for each benchmark at
// small size: compile → solve → prove → query → verify.
func TestBenchmarksEndToEndPCP(t *testing.T) {
	for _, b := range Small() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := compiler.Compile(b.Field, b.Source)
			if err != nil {
				t.Fatal(err)
			}
			q, err := qap.New(b.Field, p.Quad)
			if err != nil {
				t.Fatal(err)
			}
			v, err := pcp.NewZaatar(q, pcp.TestParams(), prg.NewFromSeed([]byte(b.Name), 0))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			in := b.GenInputs(rng)
			outs, w, err := p.SolveQuad(in)
			if err != nil {
				t.Fatal(err)
			}
			z, h, err := pcp.BuildProof(q, w)
			if err != nil {
				t.Fatal(err)
			}
			io, err := p.IOValues(in, outs)
			if err != nil {
				t.Fatal(err)
			}
			res := v.Check(pcp.Answer(b.Field, z, v.ZQueries), pcp.Answer(b.Field, h, v.HQueries), io)
			if !res.OK {
				t.Fatalf("honest prover rejected: %s", res.Reason)
			}

			// A lying prover that perturbs one output is caught.
			badOuts := b.Reference(in)
			badOuts[0].Add(badOuts[0], big.NewInt(1))
			badIO, err := p.IOValues(in, badOuts)
			if err != nil {
				t.Fatal(err)
			}
			res = v.Check(pcp.Answer(b.Field, z, v.ZQueries), pcp.Answer(b.Field, h, v.HQueries), badIO)
			if res.OK {
				t.Fatal("lying prover accepted")
			}
		})
	}
}

// TestEncodingShapes sanity-checks the Figure 9 shape: doubling the input
// size scales constraint counts by the expected asymptotic factor.
func TestEncodingShapes(t *testing.T) {
	cases := []struct {
		name     string
		small    *Benchmark
		dbl      *Benchmark
		loFactor float64
		hiFactor float64
	}{
		// LCS is O(m²): 4× within slack.
		{"lcs", LCS(8), LCS(16), 3.0, 5.0},
		// Floyd-Warshall is O(m³): 8× within slack.
		{"apsp", FloydWarshall(4), FloydWarshall(8), 5.5, 10.5},
		// Bisection is O(mL): 2× in m.
		{"bisect", Bisection(8, 5), Bisection(16, 5), 1.8, 2.2},
		// Fannkuch is O(m) in the number of permutations.
		{"fannkuch", Fannkuch(2, 5, 6), Fannkuch(4, 5, 6), 1.8, 2.2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p1, err := compiler.Compile(c.small.Field, c.small.Source)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := compiler.Compile(c.dbl.Field, c.dbl.Source)
			if err != nil {
				t.Fatal(err)
			}
			r := float64(p2.Quad.NumConstraints()) / float64(p1.Quad.NumConstraints())
			if r < c.loFactor || r > c.hiFactor {
				t.Errorf("constraint growth %.2f outside [%v, %v] (%d → %d)",
					r, c.loFactor, c.hiFactor, p1.Quad.NumConstraints(), p2.Quad.NumConstraints())
			}
		})
	}
}

// TestProofVectorShrink checks the headline claim at benchmark scale:
// |u_zaatar| ≪ |u_ginger| for every benchmark (Figure 9's rightmost
// columns).
func TestProofVectorShrink(t *testing.T) {
	for _, b := range Small() {
		p, err := compiler.Compile(b.Field, b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := p.Stats()
		if st.UZaatar >= st.UGinger {
			t.Errorf("%s: |u_zaatar| = %d not smaller than |u_ginger| = %d",
				b.Name, st.UZaatar, st.UGinger)
		}
		// K2 far from the degenerate threshold K2* = (|Z|²-|Z|)/2 (§4).
		k2Star := (st.GingerVars*st.GingerVars - st.GingerVars) / 2
		if st.K2*10 > k2Star {
			t.Errorf("%s: K2 = %d is within 10%% of the degenerate threshold %d",
				b.Name, st.K2, k2Star)
		}
	}
}

// TestMatMulChain checks the backend-experiment workload: compiled
// semantics match the native reference, and the constraint system
// stratifies into a layered circuit (the property the sum-check lane
// needs, which the five paper benchmarks lack — they all branch).
func TestMatMulChain(t *testing.T) {
	b := MatMulChain(3, 3)
	p, err := compiler.Compile(b.Field, b.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		in := b.GenInputs(rng)
		want := b.Reference(in)
		got, err := p.Execute(in)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		for i := range want {
			if got[i].Cmp(want[i]) != 0 {
				t.Fatalf("trial %d output %d: got %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
	if _, err := constraint.Layer(b.Field, p.Ginger); err != nil {
		t.Fatalf("matmul chain does not stratify: %v", err)
	}
}
