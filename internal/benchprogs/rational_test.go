package benchprogs

import (
	"math/big"
	"math/rand"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/pcp"
	"zaatar/internal/prg"
	"zaatar/internal/qap"
)

// TestBisectionRationalMatchesReference compares the compiled rational
// bisection against a big.Rat reference. Outputs are compared as rationals
// because the circuit produces exact-but-unreduced fractions.
func TestBisectionRationalMatchesReference(t *testing.T) {
	b := BisectionRational(4, 6)
	p, err := compiler.Compile(b.Field, b.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if b.Field.Name() != "F220" {
		t.Fatal("rational bisection must run at the 220-bit modulus (§5.1)")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		in := b.GenInputs(rng)
		want := b.Reference(in)
		got, w, err := p.SolveQuad(in)
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		if err := p.Quad.Check(b.Field, w); err != nil {
			t.Fatalf("witness: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("output count %d, want %d", len(got), len(want))
		}
		for i := 0; i < len(got); i += 2 {
			gotRat := new(big.Rat).SetFrac(got[i], got[i+1])
			wantRat := new(big.Rat).SetFrac(want[i], want[i+1])
			if gotRat.Cmp(wantRat) != 0 {
				t.Fatalf("trial %d root %d: got %v, want %v", trial, i/2, gotRat, wantRat)
			}
		}
	}
}

// TestBisectionRationalEndToEndPCP proves and verifies one rational
// instance with the Zaatar PCP.
func TestBisectionRationalEndToEndPCP(t *testing.T) {
	b := BisectionRational(2, 5)
	p, err := compiler.Compile(b.Field, b.Source)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qap.New(b.Field, p.Quad)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pcp.NewZaatar(q, pcp.TestParams(), prg.NewFromSeed([]byte("rat"), 0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	in := b.GenInputs(rng)
	outs, w, err := p.SolveQuad(in)
	if err != nil {
		t.Fatal(err)
	}
	z, h, err := pcp.BuildProof(q, w)
	if err != nil {
		t.Fatal(err)
	}
	io, err := p.IOValues(in, outs)
	if err != nil {
		t.Fatal(err)
	}
	res := v.Check(pcp.Answer(b.Field, z, v.ZQueries), pcp.Answer(b.Field, h, v.HQueries), io)
	if !res.OK {
		t.Fatalf("honest rational prover rejected: %s", res.Reason)
	}
	// A lying prover perturbing a root numerator is caught.
	badOuts := append([]*big.Int(nil), outs...)
	badOuts[0] = new(big.Int).Add(badOuts[0], big.NewInt(1))
	badIO, err := p.IOValues(in, badOuts)
	if err != nil {
		t.Fatal(err)
	}
	res = v.Check(pcp.Answer(b.Field, z, v.ZQueries), pcp.Answer(b.Field, h, v.HQueries), badIO)
	if res.OK {
		t.Fatal("lying rational prover accepted")
	}
}
