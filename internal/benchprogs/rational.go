package benchprogs

import (
	"fmt"
	"math/big"
	"math/rand"

	"zaatar/internal/field"
)

// BisectionRational is the paper-faithful variant of benchmark (b): root
// finding via bisection over *rational* inputs (§5.1: "computation (b) uses
// rational number inputs ... and a field modulus of 220 bits"). Each of the
// m quadratics has rational coefficients; the interval midpoint is computed
// exactly as (l + w·(1/2)), so denominators grow with every iteration —
// the reason this configuration needs the 220-bit modulus (the compiler's
// range analysis enforces it).
//
// Inputs per instance: a[i], b[i], c[i] as (num, den) pairs, then lo[i]
// pairs, then the constant width0 = w and half = 1/2 pairs. Outputs: one
// (num, den) pair per root.
func BisectionRational(m, l int) *Benchmark {
	src := fmt.Sprintf(`
const M = %d;
const L = %d;
input a[M], b[M], c[M] : rat16x2;
input lo[M] : rat8x1;
input width0 : rat8x1;
input half : rat8x2;
output root[M] : rat64x64;
var lcur, w, mid, pm : rat64x64;
for i = 0 to M-1 {
	lcur = lo[i];
	w = width0;
	for t = 1 to L {
		w = w * half;
		mid = lcur + w;
		pm = a[i]*mid*mid + b[i]*mid + c[i];
		if (pm < 0) { lcur = mid; }
	}
	root[i] = lcur;
}
`, m, l)

	type ratPair struct{ n, d int64 }
	genPairs := func(rng *rand.Rand) []ratPair {
		// 3m coefficients + m left endpoints + width + half.
		out := make([]ratPair, 0, 4*m+2)
		for i := 0; i < m; i++ {
			out = append(out, ratPair{int64(rng.Intn(5)), 1})                           // a ∈ [0,4]
			out = append(out, ratPair{int64(1 + rng.Intn(30)), int64(1 + rng.Intn(2))}) // b > 0
			out = append(out, ratPair{int64(rng.Intn(100) - 120), 1})                   // c < 0 mostly
		}
		for i := 0; i < m; i++ {
			out = append(out, ratPair{int64(rng.Intn(16) - 8), 1})
		}
		out = append(out, ratPair{64, 1}) // width0
		out = append(out, ratPair{1, 2})  // half
		return out
	}
	flatten := func(pairs []ratPair) []*big.Int {
		out := make([]*big.Int, 0, 2*len(pairs))
		for _, p := range pairs {
			out = append(out, big.NewInt(p.n), big.NewInt(p.d))
		}
		return out
	}

	return &Benchmark{
		Name:   "root-finding-rational",
		Label:  "root finding by bisection (rational)",
		Params: map[string]int{"m": m, "L": l},
		Field:  field.F220(),
		Source: src,
		OClass: "O(mL)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			return flatten(genPairs(rng))
		},
		Reference: func(in []*big.Int) []*big.Int {
			// Inputs arrive flattened as (num, den) pairs in declaration
			// order: a[0..m), b interleaved... — note the declaration
			// `input a[M], b[M], c[M]` lays out all of a, then b, then c.
			rat := func(k int) *big.Rat {
				return new(big.Rat).SetFrac(in[2*k], in[2*k+1])
			}
			// Wire order: a[0..m), b[0..m), c[0..m), lo[0..m), width0, half.
			a := make([]*big.Rat, m)
			b := make([]*big.Rat, m)
			c := make([]*big.Rat, m)
			lo := make([]*big.Rat, m)
			for i := 0; i < m; i++ {
				a[i] = rat(i)
				b[i] = rat(m + i)
				c[i] = rat(2*m + i)
				lo[i] = rat(3*m + i)
			}
			width0 := rat(4 * m)
			half := rat(4*m + 1)

			out := make([]*big.Int, 0, 2*m)
			for i := 0; i < m; i++ {
				lcur := new(big.Rat).Set(lo[i])
				w := new(big.Rat).Set(width0)
				for t := 0; t < l; t++ {
					w = new(big.Rat).Mul(w, half)
					mid := new(big.Rat).Add(lcur, w)
					pm := new(big.Rat).Mul(a[i], new(big.Rat).Mul(mid, mid))
					pm.Add(pm, new(big.Rat).Mul(b[i], mid))
					pm.Add(pm, c[i])
					if pm.Sign() < 0 {
						lcur = mid
					}
				}
				// Outputs are exact rationals; the reference normalizes,
				// the circuit does not — compare as rationals.
				out = append(out, new(big.Int).Set(lcur.Num()), new(big.Int).Set(lcur.Denom()))
			}
			return out
		},
	}
}
