// Package benchprogs provides the paper's five benchmark computations
// (§5.1) as mini-SFDL source generators, together with input generators and
// native Go reference implementations used to cross-check the compiler and
// to measure the "local computation" baseline of Figures 5 and 7:
//
//	(a) PAM clustering (Partitioning Around Medoids, 2 clusters)
//	(b) root finding via bisection
//	(c) Floyd-Warshall all-pairs shortest paths
//	(d) the Fannkuch benchmark (pancake flipping)
//	(e) longest common subsequence (LCS)
//
// The paper runs (b) and (c) on rational inputs; this reproduction uses
// integer variants (see DESIGN.md's substitution table): the constraint
// counts — the quantity every experiment depends on — have the same shape.
// Sizes default to scaled-down values so experiments finish on one machine;
// the paper's sizes are reachable through the same constructors.
package benchprogs

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"zaatar/internal/field"
)

// Benchmark bundles a generated program with its workload.
type Benchmark struct {
	// Name identifies the computation, e.g. "pam-clustering".
	Name string
	// Label is the display name used in figures, e.g. "PAM clustering".
	Label string
	// Params records the instance size (m, d, L, ...).
	Params map[string]int
	// Field is the modulus the paper uses for this computation (§5.1).
	Field *field.Field
	// Source is the mini-SFDL program text.
	Source string
	// OClass is the asymptotic running time reported in Figure 9.
	OClass string
	// GenInputs draws one instance's inputs.
	GenInputs func(rng *rand.Rand) []*big.Int
	// Reference computes the expected outputs natively.
	Reference func(in []*big.Int) []*big.Int
}

func ints(vs ...int64) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = big.NewInt(v)
	}
	return out
}

func toI64(in []*big.Int) []int64 {
	out := make([]int64, len(in))
	for i, v := range in {
		out[i] = v.Int64()
	}
	return out
}

// PAM builds Partitioning Around Medoids clustering of m points with d
// dimensions into two groups, with iters refinement iterations (the paper
// runs m=20, d=128). Points are int16; distances are squared Euclidean.
func PAM(m, d, iters int) *Benchmark {
	if m < 2 {
		panic("benchprogs: PAM needs m >= 2")
	}
	big0 := int64(1) << 50
	src := fmt.Sprintf(`
const M = %d;
const D = %d;
const BIG = %d;
input x[M][D] : int16;
output med0[D] : int64;
output med1[D] : int64;
var m0[D], m1[D], b0[D], b1[D] : int64;
var c[M] : bool;
var d0, d1, dist, best0, best1, cost0, cost1 : int64;
for k = 0 to D-1 { m0[k] = x[0][k]; m1[k] = x[1][k]; }
for it = 1 to %d {
	for i = 0 to M-1 {
		d0 = 0; d1 = 0;
		for k = 0 to D-1 {
			d0 = d0 + (x[i][k] - m0[k]) * (x[i][k] - m0[k]);
			d1 = d1 + (x[i][k] - m1[k]) * (x[i][k] - m1[k]);
		}
		c[i] = d1 < d0;
	}
	best0 = BIG; best1 = BIG;
	for j = 0 to M-1 {
		cost0 = 0; cost1 = 0;
		for i = 0 to M-1 {
			dist = 0;
			for k = 0 to D-1 {
				dist = dist + (x[j][k] - x[i][k]) * (x[j][k] - x[i][k]);
			}
			if (c[i]) { cost1 = cost1 + dist; } else { cost0 = cost0 + dist; }
		}
		if (!c[j]) {
			if (cost0 < best0) {
				best0 = cost0;
				for k = 0 to D-1 { b0[k] = x[j][k]; }
			}
		}
		if (c[j]) {
			if (cost1 < best1) {
				best1 = cost1;
				for k = 0 to D-1 { b1[k] = x[j][k]; }
			}
		}
	}
	for k = 0 to D-1 { m0[k] = b0[k]; m1[k] = b1[k]; }
}
for k = 0 to D-1 { med0[k] = m0[k]; med1[k] = m1[k]; }
`, m, d, big0, iters)

	return &Benchmark{
		Name:   "pam-clustering",
		Label:  "PAM clustering",
		Params: map[string]int{"m": m, "d": d, "L": iters},
		Field:  field.F128(),
		Source: src,
		OClass: "O(m²d)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			in := make([]*big.Int, m*d)
			for i := range in {
				// Two gaussian-ish blobs so the clustering is non-trivial.
				center := int64(-500)
				if i/d >= m/2 {
					center = 500
				}
				in[i] = big.NewInt(center + int64(rng.Intn(400)) - 200)
			}
			return in
		},
		Reference: func(in []*big.Int) []*big.Int {
			x := toI64(in)
			pt := func(i, k int) int64 { return x[i*d+k] }
			m0 := make([]int64, d)
			m1 := make([]int64, d)
			for k := 0; k < d; k++ {
				m0[k], m1[k] = pt(0, k), pt(1, k)
			}
			c := make([]bool, m)
			distTo := func(i int, med []int64) int64 {
				var s int64
				for k := 0; k < d; k++ {
					df := pt(i, k) - med[k]
					s += df * df
				}
				return s
			}
			distPts := func(j, i int) int64 {
				var s int64
				for k := 0; k < d; k++ {
					df := pt(j, k) - pt(i, k)
					s += df * df
				}
				return s
			}
			for it := 0; it < iters; it++ {
				for i := 0; i < m; i++ {
					c[i] = distTo(i, m1) < distTo(i, m0)
				}
				best0, best1 := big0, big0
				b0 := make([]int64, d)
				b1 := make([]int64, d)
				for j := 0; j < m; j++ {
					var cost0, cost1 int64
					for i := 0; i < m; i++ {
						dd := distPts(j, i)
						if c[i] {
							cost1 += dd
						} else {
							cost0 += dd
						}
					}
					if !c[j] && cost0 < best0 {
						best0 = cost0
						for k := 0; k < d; k++ {
							b0[k] = pt(j, k)
						}
					}
					if c[j] && cost1 < best1 {
						best1 = cost1
						for k := 0; k < d; k++ {
							b1[k] = pt(j, k)
						}
					}
				}
				copy(m0, b0)
				copy(m1, b1)
			}
			out := make([]*big.Int, 0, 2*d)
			for k := 0; k < d; k++ {
				out = append(out, big.NewInt(m0[k]))
			}
			for k := 0; k < d; k++ {
				out = append(out, big.NewInt(m1[k]))
			}
			return out
		},
	}
}

// Bisection builds root finding via bisection for m quadratics over L
// iterations (the paper runs m=256, L=8 on rationals at a 220-bit modulus;
// the integer variant works in units of 1/2^L over [lo, lo+2^L]). The inner
// loop is unrolled by the generator because the halving step size 2^(L-1-t)
// must be a compile-time constant.
func Bisection(m, l int) *Benchmark {
	width := int64(1) << uint(l)
	var steps strings.Builder
	for t := 0; t < l; t++ {
		half := width >> uint(t+1)
		fmt.Fprintf(&steps, `
	mid = lo2 + %d;
	pm = a[i]*mid*mid + b[i]*mid + c[i];
	if (pm < 0) { lo2 = mid; }`, half)
	}
	src := fmt.Sprintf(`
const M = %d;
input a[M], b[M], c[M] : int16;
input lo[M] : int16;
output root[M] : int64;
var lo2, mid, pm : int64;
for i = 0 to M-1 {
	lo2 = lo[i];
%s
	root[i] = lo2;
}
`, m, steps.String())

	return &Benchmark{
		Name:   "root-finding",
		Label:  "root finding by bisection",
		Params: map[string]int{"m": m, "L": l},
		Field:  field.F220(),
		Source: src,
		OClass: "O(mL)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			in := make([]*big.Int, 4*m)
			for i := 0; i < m; i++ {
				// p(x) = a x² + b x + c with p(lo) < 0 < p(lo + 2^L):
				// a=0, b>0 guarantees monotone increasing with a root inside
				// when c is chosen so p(lo) < 0; quadratics with small a keep
				// the sign change.
				a := int64(rng.Intn(3)) // 0..2
				bb := int64(1 + rng.Intn(20))
				lo := int64(rng.Intn(100)) - 50
				// choose c so that p(lo) < 0 and p(lo+width) > 0
				plo := a*lo*lo + bb*lo
				cc := -plo - int64(1+rng.Intn(int(bb*width/2)))
				in[i] = big.NewInt(a)
				in[m+i] = big.NewInt(bb)
				in[2*m+i] = big.NewInt(cc)
				in[3*m+i] = big.NewInt(lo)
			}
			return in
		},
		Reference: func(in []*big.Int) []*big.Int {
			v := toI64(in)
			out := make([]*big.Int, m)
			for i := 0; i < m; i++ {
				a, bb, cc, lo := v[i], v[m+i], v[2*m+i], v[3*m+i]
				lo2 := lo
				for t := 0; t < l; t++ {
					mid := lo2 + (width >> uint(t+1))
					if a*mid*mid+bb*mid+cc < 0 {
						lo2 = mid
					}
				}
				out[i] = big.NewInt(lo2)
			}
			return out
		},
	}
}

// FloydWarshall builds all-pairs shortest paths on m nodes (the paper runs
// m=25 on rational edge weights; this variant uses integer weights with a
// large sentinel for missing edges).
func FloydWarshall(m int) *Benchmark {
	const inf = 1 << 20
	src := fmt.Sprintf(`
const M = %d;
const INF = %d;
input e[M][M] : int32;
output dist[M][M] : int32;
var d[M][M] : int32;
var alt : int32;
for i = 0 to M-1 {
	for j = 0 to M-1 { d[i][j] = e[i][j]; }
}
for k = 0 to M-1 {
	for i = 0 to M-1 {
		for j = 0 to M-1 {
			alt = d[i][k] + d[k][j];
			if (alt < d[i][j]) { d[i][j] = alt; }
		}
	}
}
for i = 0 to M-1 {
	for j = 0 to M-1 { dist[i][j] = d[i][j]; }
}
`, m, inf)

	return &Benchmark{
		Name:   "all-pairs-shortest-path",
		Label:  "all-pairs shortest path",
		Params: map[string]int{"m": m},
		Field:  field.F128(),
		Source: src,
		OClass: "O(m³)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			in := make([]*big.Int, m*m)
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					switch {
					case i == j:
						in[i*m+j] = big.NewInt(0)
					case rng.Intn(3) == 0: // sparse-ish graph
						in[i*m+j] = big.NewInt(int64(1 + rng.Intn(100)))
					default:
						in[i*m+j] = big.NewInt(inf)
					}
				}
			}
			return in
		},
		Reference: func(in []*big.Int) []*big.Int {
			d := toI64(in)
			for k := 0; k < m; k++ {
				for i := 0; i < m; i++ {
					for j := 0; j < m; j++ {
						if alt := d[i*m+k] + d[k*m+j]; alt < d[i*m+j] {
							d[i*m+j] = alt
						}
					}
				}
			}
			out := make([]*big.Int, m*m)
			for i := range d {
				out[i] = big.NewInt(d[i])
			}
			return out
		},
	}
}

// Fannkuch builds the pancake-flipping benchmark: m permutations of
// {1..n}, each flipped until the first element is 1, bounded by maxFlips
// iterations (the paper runs m=100 permutations of {1..13}). The prefix
// reversal uses data-dependent indices, exercising the compiler's
// mux-expansion of indirect memory access (§5.4).
func Fannkuch(m, n, maxFlips int) *Benchmark {
	src := fmt.Sprintf(`
const M = %d;
const N = %d;
const MAXF = %d;
input perm[M][N] : int8;
output flips[M] : int32;
var a[N], b[N] : int32;
var cnt, k : int32;
for i = 0 to M-1 {
	for j = 0 to N-1 { a[j] = perm[i][j]; }
	cnt = 0;
	for it = 1 to MAXF {
		k = a[0];
		if (k != 1) {
			for j = 0 to N-1 { b[j] = a[j]; }
			for j = 0 to N-1 {
				if (j < k) { a[j] = b[k - 1 - j]; }
			}
			cnt = cnt + 1;
		}
	}
	flips[i] = cnt;
}
`, m, n, maxFlips)

	return &Benchmark{
		Name:   "fannkuch",
		Label:  "Fannkuch benchmark",
		Params: map[string]int{"m": m, "n": n, "maxFlips": maxFlips},
		Field:  field.F128(),
		Source: src,
		OClass: "O(m)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			in := make([]*big.Int, m*n)
			for i := 0; i < m; i++ {
				p := rng.Perm(n)
				for j := 0; j < n; j++ {
					in[i*n+j] = big.NewInt(int64(p[j] + 1))
				}
			}
			return in
		},
		Reference: func(in []*big.Int) []*big.Int {
			v := toI64(in)
			out := make([]*big.Int, m)
			for i := 0; i < m; i++ {
				a := make([]int64, n)
				copy(a, v[i*n:(i+1)*n])
				cnt := int64(0)
				for it := 0; it < maxFlips; it++ {
					k := a[0]
					if k == 1 {
						continue
					}
					for l, r := int64(0), k-1; l < r; l, r = l+1, r-1 {
						a[l], a[r] = a[r], a[l]
					}
					cnt++
				}
				out[i] = big.NewInt(cnt)
			}
			return out
		},
	}
}

// LCS builds the longest-common-subsequence length of two strings of
// length m over a 4-symbol alphabet (the paper runs m=300).
func LCS(m int) *Benchmark {
	src := fmt.Sprintf(`
const M = %d;
input s[M] : int8;
input t[M] : int8;
output len : int32;
var dp[M][M] : int32;
var up, left, diag : int32;
for i = 0 to M-1 {
	for j = 0 to M-1 {
		if (i == 0) { diag = 0; } else { if (j == 0) { diag = 0; } else { diag = dp[i-1][j-1]; } }
		if (i == 0) { up = 0; } else { up = dp[i-1][j]; }
		if (j == 0) { left = 0; } else { left = dp[i][j-1]; }
		if (s[i] == t[j]) {
			dp[i][j] = diag + 1;
		} else {
			if (up < left) { dp[i][j] = left; } else { dp[i][j] = up; }
		}
	}
}
len = dp[M-1][M-1];
`, m)

	return &Benchmark{
		Name:   "longest-common-subsequence",
		Label:  "longest common subsequence",
		Params: map[string]int{"m": m},
		Field:  field.F128(),
		Source: src,
		OClass: "O(m²)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			in := make([]*big.Int, 2*m)
			for i := range in {
				in[i] = big.NewInt(int64(rng.Intn(4)))
			}
			return in
		},
		Reference: func(in []*big.Int) []*big.Int {
			v := toI64(in)
			s, t := v[:m], v[m:]
			dp := make([][]int64, m+1)
			for i := range dp {
				dp[i] = make([]int64, m+1)
			}
			for i := 1; i <= m; i++ {
				for j := 1; j <= m; j++ {
					if s[i-1] == t[j-1] {
						dp[i][j] = dp[i-1][j-1] + 1
					} else if dp[i-1][j] >= dp[i][j-1] {
						dp[i][j] = dp[i-1][j]
					} else {
						dp[i][j] = dp[i][j-1]
					}
				}
			}
			return ints(dp[m][m])
		},
	}
}

// MatMulChain builds a chain of depth n×n matrix multiplications,
// T₁ = A·B, Tₗ = Tₗ₋₁·A: pure additions and multiplications with no
// comparisons, so the constraint system stratifies into a layered circuit
// and every proof backend — including the sum-check lane — accepts it.
// This is the workload of the backend-comparison experiment; entries are
// kept small (< 8) so the chain stays far from the field capacity.
func MatMulChain(n, depth int) *Benchmark {
	if n < 2 || depth < 1 {
		panic("benchprogs: MatMulChain needs n >= 2, depth >= 1")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `
const N = %d;
input a[N][N] : int16;
input b[N][N] : int16;
output c[N][N] : int64;
var t[N][N], u[N][N] : int64;
var acc : int64;
for i = 0 to N-1 {
	for j = 0 to N-1 {
		acc = 0;
		for k = 0 to N-1 { acc = acc + a[i][k] * b[k][j]; }
		t[i][j] = acc;
	}
}
`, n)
	if depth >= 2 {
		fmt.Fprintf(&sb, `
for l = 2 to %d {
	for i = 0 to N-1 {
		for j = 0 to N-1 {
			acc = 0;
			for k = 0 to N-1 { acc = acc + t[i][k] * a[k][j]; }
			u[i][j] = acc;
		}
	}
	for i = 0 to N-1 { for j = 0 to N-1 { t[i][j] = u[i][j]; } }
}
`, depth)
	}
	sb.WriteString(`
for i = 0 to N-1 { for j = 0 to N-1 { c[i][j] = t[i][j]; } }
`)

	return &Benchmark{
		Name:   "matmul-chain",
		Label:  "matrix multiplication chain",
		Params: map[string]int{"n": n, "depth": depth},
		Field:  field.F128(),
		Source: sb.String(),
		OClass: "O(L·n³)",
		GenInputs: func(rng *rand.Rand) []*big.Int {
			in := make([]*big.Int, 2*n*n)
			for i := range in {
				in[i] = big.NewInt(int64(rng.Intn(8)))
			}
			return in
		},
		Reference: func(in []*big.Int) []*big.Int {
			v := toI64(in)
			a := make([][]int64, n)
			b := make([][]int64, n)
			for i := 0; i < n; i++ {
				a[i] = v[i*n : (i+1)*n]
				b[i] = v[n*n+i*n : n*n+(i+1)*n]
			}
			res := matmul(a, b, n)
			for l := 2; l <= depth; l++ {
				res = matmul(res, a, n)
			}
			out := make([]*big.Int, 0, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					out = append(out, big.NewInt(res[i][j]))
				}
			}
			return out
		},
	}
}

func matmul(x, y [][]int64, n int) [][]int64 {
	out := make([][]int64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += x[i][k] * y[k][j]
			}
			out[i][j] = acc
		}
	}
	return out
}

// Small returns the five benchmarks at test-friendly sizes.
func Small() []*Benchmark {
	return []*Benchmark{
		PAM(6, 4, 1),
		Bisection(8, 6),
		FloydWarshall(6),
		Fannkuch(3, 5, 8),
		LCS(10),
	}
}

// Default returns the five benchmarks at the harness's default (scaled-down)
// evaluation sizes; the paper's sizes are PAM(20,128,1), Bisection(256,8),
// FloydWarshall(25), Fannkuch(100,13,·), LCS(300).
func Default() []*Benchmark {
	return []*Benchmark{
		PAM(10, 16, 1),
		Bisection(64, 8),
		FloydWarshall(10),
		Fannkuch(8, 6, 10),
		LCS(40),
	}
}
