package obs

import (
	"math"
	"net/http"
	"sync"
	"time"
)

// SLO tracking: error rate and latency quantiles over a rolling time
// window, the substrate behind the server's /readyz endpoint and the
// transport.slo.* gauges. Unlike the cumulative Histogram, the SLO window
// forgets: a latency spike ages out after the window passes, so readiness
// recovers without a process restart.
//
// The window is a ring of fixed-duration slots; observing stamps the
// current slot (lazily resetting slots whose epoch has passed), and a
// snapshot aggregates only slots still inside the window. Everything is
// guarded by one mutex — observation rate here is per-request, not
// per-instruction, so a lock is cheap relative to the work being measured.

// sloSlots is the ring size; the window is divided evenly across slots, so
// aging granularity is window/sloSlots.
const sloSlots = 16

// sloSlot aggregates one time slice. Latency fields cover successful
// requests only; errors are counted but not timed, so a burst of instant
// failures cannot drag p99 toward zero.
type sloSlot struct {
	epoch   int64 // slot index since the unix epoch; stale slots reset lazily
	ok      int64
	errs    int64
	sum     int64
	min     int64 // math.MaxInt64 when the slot holds no successes
	max     int64
	buckets [numBuckets]int64
}

// SLO is a rolling-window error-rate and latency tracker. Create with
// NewSLO; all methods are safe for concurrent use.
type SLO struct {
	mu      sync.Mutex
	slotDur time.Duration
	slots   [sloSlots]sloSlot
	now     func() time.Time // test seam
}

// NewSLO returns a tracker whose snapshot covers approximately the given
// window (minimum one slot of 1ms granularity).
func NewSLO(window time.Duration) *SLO {
	slotDur := window / sloSlots
	if slotDur < time.Millisecond {
		slotDur = time.Millisecond
	}
	return &SLO{slotDur: slotDur, now: time.Now}
}

// DefaultSLOWindow is the rolling window the transport service uses when
// not configured otherwise.
const DefaultSLOWindow = time.Minute

// slot returns the live slot for epoch e, resetting it if it still holds
// an older epoch's data. Callers hold s.mu.
func (s *SLO) slot(e int64) *sloSlot {
	sl := &s.slots[((e%sloSlots)+sloSlots)%sloSlots]
	if sl.epoch != e {
		*sl = sloSlot{epoch: e, min: math.MaxInt64}
	}
	return sl
}

// Observe records one request outcome: its latency when it succeeded, or
// an error (untimed) when it failed.
func (s *SLO) Observe(d time.Duration, isErr bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slot(s.now().UnixNano() / int64(s.slotDur))
	if isErr {
		sl.errs++
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	sl.ok++
	sl.sum += ns
	sl.buckets[bucketOf(ns)]++
	if ns < sl.min {
		sl.min = ns
	}
	if ns > sl.max {
		sl.max = ns
	}
}

// SLOSnapshot aggregates the window's current contents.
type SLOSnapshot struct {
	Requests  int64 // successes + errors inside the window
	Errors    int64
	ErrorRate float64 // Errors / Requests; 0 when the window is empty
	P50       time.Duration
	P99       time.Duration
	Window    time.Duration
}

// Snapshot aggregates the slots still inside the window.
func (s *SLO) Snapshot() SLOSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.now().UnixNano() / int64(s.slotDur)
	var hs HistogramSnapshot
	mn := int64(math.MaxInt64)
	var mx, errs int64
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.epoch <= cur-sloSlots || sl.epoch > cur {
			continue // aged out (or clock skew); lazily reset on next write
		}
		hs.Count += sl.ok
		hs.Sum += time.Duration(sl.sum)
		errs += sl.errs
		if sl.ok > 0 {
			if sl.min < mn {
				mn = sl.min
			}
			if sl.max > mx {
				mx = sl.max
			}
		}
		for b := range hs.Buckets {
			hs.Buckets[b] += sl.buckets[b]
		}
	}
	if mn != math.MaxInt64 {
		hs.Min = time.Duration(mn)
	}
	hs.Max = time.Duration(mx)
	out := SLOSnapshot{
		Requests: hs.Count + errs,
		Errors:   errs,
		Window:   s.slotDur * sloSlots,
	}
	if out.Requests > 0 {
		out.ErrorRate = float64(errs) / float64(out.Requests)
	}
	if hs.Count > 0 {
		out.P50 = hs.Quantile(0.50)
		out.P99 = hs.Quantile(0.99)
	}
	return out
}

// SLO gauge metric names, registered by ExposeSLO under a component prefix
// (the transport service uses "transport.slo").
const (
	SLOGaugeRequests  = ".requests"
	SLOGaugeErrorRate = ".error_rate"
	SLOGaugeP99       = ".p99_seconds"
)

// ExposeSLO registers the tracker's aggregates as scrape-time gauges named
// prefix+".requests", prefix+".error_rate", and prefix+".p99_seconds".
// Readiness checks read them back via Registry.GaugeValue.
func ExposeSLO(r *Registry, prefix string, s *SLO) {
	r.RegisterGauge(prefix+SLOGaugeRequests, func() float64 {
		return float64(s.Snapshot().Requests)
	})
	r.RegisterGauge(prefix+SLOGaugeErrorRate, func() float64 {
		return s.Snapshot().ErrorRate
	})
	r.RegisterGauge(prefix+SLOGaugeP99, func() float64 {
		return s.Snapshot().P99.Seconds()
	})
}

// HealthHandler answers liveness probes: 200 as long as the process can
// serve HTTP at all.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ReadyHandler answers readiness probes: 200 when check returns nil, 503
// with the error text otherwise. A nil check is always ready.
func ReadyHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				_, _ = w.Write([]byte("not ready: " + err.Error() + "\n"))
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
}
