package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exact exposition-format output for a
// deterministic registry. Regenerate with: go test ./internal/obs -run
// Golden -update
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("vc.batches").Add(3)
	r.Counter("transport.sessions").Add(1)
	h := r.Histogram("vc.verify")
	for _, d := range []time.Duration{0, time.Nanosecond, time.Microsecond, 2 * time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	// A plain counter and a vector sharing one name must merge under a
	// single # TYPE block: the unlabeled aggregate then the labeled series.
	r.Counter("transport.batches").Add(5)
	bv := r.CounterVec("transport.batches", "backend", "program_hash")
	bv.With("zaatar", "a1b2c3d4e5f6").Add(3)
	bv.With("ginger", "ffeeddccbbaa").Add(2)
	// Label values with exposition-format metacharacters must escape.
	r.CounterVec("transport.errors", "kind").With("say \"no\"\\\n").Inc()
	pv := r.HistogramVec("vc.phase", "phase", "backend")
	pv.With("commit", "zaatar").Observe(2 * time.Microsecond)
	r.RegisterGauge("transport.slo.p99_seconds", func() float64 { return 0.125 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus output drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusSemantics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("vc.verify").Observe(3 * time.Microsecond) // bucket 12 (bit length of 3000)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative buckets: everything below 2.047µs is 0, everything from
	// 4.095µs up (and +Inf) is 1.
	for _, want := range []string{
		`zaatar_vc_verify_seconds_bucket{le="2.047e-06"} 0`,
		`zaatar_vc_verify_seconds_bucket{le="4.095e-06"} 1`,
		`zaatar_vc_verify_seconds_bucket{le="+Inf"} 1`,
		`zaatar_vc_verify_seconds_sum 3e-06`,
		`zaatar_vc_verify_seconds_count 1`,
		`# TYPE zaatar_vc_verify_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	rec := httptest.NewRecorder()
	r.PrometheusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prometheus", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "zaatar_vc_verify_seconds_count 1") {
		t.Fatalf("handler response %d %q", rec.Code, rec.Body.String())
	}
}

func TestWriteTextPercentiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("vc.verify").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vc.verify.p50_ns", "vc.verify.p90_ns", "vc.verify.p99_ns"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("WriteText missing %q:\n%s", want, buf.String())
		}
	}
}

// TestHotPathAllocs enforces the zero-allocation contract on the
// instruments that sit inside the prover's worker pool.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v allocs/op, want 0", n)
	}
	h := r.Histogram("hot")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { r.StartSpan("hot").End() }); n != 0 {
		t.Fatalf("StartSpan/End allocates %v allocs/op, want 0", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("hot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkSpanEnd(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("hot").End()
	}
}
