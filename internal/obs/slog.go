package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"

	"zaatar/internal/obs/trace"
)

// Structured logging for the binaries and the transport layer: a
// log/slog logger whose handler stamps every record with the trace_id and
// span_id carried by the context (internal/obs/trace), rendered in the
// same %016x form the Perfetto export uses — so a JSON log line joins
// against the exported trace by string equality. Components accept a
// *slog.Logger and fall back to NopLogger when given nil, keeping logging
// optional exactly like tracing.

// LogFormats lists the accepted -log-format flag values.
const LogFormats = "text|json"

// NewLogger returns a logger writing to w. format selects the handler:
// "json" emits one JSON object per record; anything else emits the slog
// text form. Records logged with a context carrying a trace position gain
// trace_id and span_id attributes.
func NewLogger(w io.Writer, format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(traceHandler{h})
}

// NopLogger returns a logger that discards everything — the nil-safe
// default for components whose caller did not configure logging.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// OrNop returns l, or the discard logger when l is nil, so components can
// normalize an optional logger once at construction.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}

// TraceIDString renders a trace or span identifier the way the Perfetto
// export does, so log records and trace JSON join on equal strings.
func TraceIDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// traceHandler decorates an inner handler, adding trace correlation
// attributes from the context at Handle time.
type traceHandler struct {
	inner slog.Handler
}

func (h traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h traceHandler) Handle(ctx context.Context, rec slog.Record) error {
	if tc := trace.FromContext(ctx); tc != nil {
		rec.AddAttrs(
			slog.String("trace_id", TraceIDString(uint64(tc.TraceID()))),
			slog.String("span_id", TraceIDString(uint64(tc.SpanID()))),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{h.inner.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{h.inner.WithGroup(name)}
}

// discardHandler is slog.DiscardHandler for toolchains predating it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
