package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter did not return the existing instance")
	}
}

func TestHistogramAggregates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 10 * time.Microsecond} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != time.Microsecond || s.Max != 10*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if want := 13 * time.Microsecond / 3; s.Mean() != want {
		t.Fatalf("Mean = %v, want %v", s.Mean(), want)
	}
	// The p100 upper bound is clamped to the observed max.
	if q := s.Quantile(1.0); q != 10*time.Microsecond {
		t.Fatalf("Quantile(1.0) = %v", q)
	}
	if q := s.Quantile(0.5); q < 2*time.Microsecond || q > 4*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want within bucket of 2µs", q)
	}
}

// TestQuantileInterpolation pins p50/p90/p99 for known distributions. The
// power-of-two buckets interpolate within the bucket holding the rank, so
// a uniform 1..1000ns distribution lands its median exactly on 500ns
// (the pre-interpolation behavior returned the bucket's upper edge, 511ns),
// and identical observations report every quantile exactly.
func TestQuantileInterpolation(t *testing.T) {
	uniform := newHistogram()
	for i := 1; i <= 1000; i++ {
		uniform.Observe(time.Duration(i))
	}
	constant := newHistogram()
	for i := 0; i < 100; i++ {
		constant.Observe(700 * time.Nanosecond)
	}
	single := newHistogram()
	single.Observe(5 * time.Nanosecond)

	cases := []struct {
		name          string
		h             *Histogram
		p50, p90, p99 time.Duration
	}{
		// rank 500 falls in bucket [256,511] at position 245/256 → 500ns.
		// rank 900 falls in bucket [512,1023] at 389/489 → 918ns (the
		// bucket spans past the observed range; Max clamps p99 to 1000ns).
		{"uniform-1..1000ns", uniform, 500, 918, 1000},
		{"constant-700ns", constant, 700, 700, 700},
		{"single-5ns", single, 5, 5, 5},
	}
	for _, tc := range cases {
		s := tc.h.Snapshot()
		if got := s.Quantile(0.50); got != tc.p50 {
			t.Errorf("%s: p50 = %v, want %v", tc.name, got, tc.p50)
		}
		if got := s.Quantile(0.90); got != tc.p90 {
			t.Errorf("%s: p90 = %v, want %v", tc.name, got, tc.p90)
		}
		if got := s.Quantile(0.99); got != tc.p99 {
			t.Errorf("%s: p99 = %v, want %v", tc.name, got, tc.p99)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := newHistogram().Snapshot()
	if s.Min != 0 || s.Max != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram snapshot not zeroed: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	const per = 1000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8*per {
		t.Fatalf("Count = %d, want %d", s.Count, 8*per)
	}
	if s.Min != 0 || s.Max != time.Duration(8*per-1) {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSpanAndSink(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var events []string
	r.SetSink(SinkFunc(func(name string, d time.Duration) {
		mu.Lock()
		events = append(events, name)
		mu.Unlock()
	}))
	sp := r.StartSpan("phase.commit")
	if d := sp.End(); d < 0 {
		t.Fatalf("span duration %v", d)
	}
	if s := r.Histogram("phase.commit").Snapshot(); s.Count != 1 {
		t.Fatalf("span not recorded: %+v", s)
	}
	if len(events) != 1 || events[0] != "phase.commit" {
		t.Fatalf("sink events = %v", events)
	}
	r.SetSink(nil) // must not panic on the next span
	r.StartSpan("x").End()
}

func TestWriteTextAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("vc.batches").Add(2)
	r.Histogram("vc.verify").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vc.batches 2", "vc.verify.count 1", "vc.verify.p99_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Lines are sorted for diff-friendly scraping.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("output not sorted: %q > %q", lines[i-1], lines[i])
		}
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "vc.batches 2") {
		t.Fatalf("handler response %d %q", rec.Code, rec.Body.String())
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default registry not a singleton")
	}
}
