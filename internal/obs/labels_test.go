package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("transport.batches", "backend", "program_hash")
	if r.CounterVec("transport.batches") != v {
		t.Fatal("CounterVec did not return the existing vector")
	}
	c := v.With("zaatar", "abc123")
	c.Add(2)
	if v.With("zaatar", "abc123") != c {
		t.Fatal("With did not return the existing series")
	}
	v.With("ginger", "abc123").Inc()
	if got := v.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	if got := v.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if keys := v.Keys(); len(keys) != 2 || keys[0] != "backend" {
		t.Fatalf("Keys = %v", keys)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"transport.batches{backend=zaatar,program_hash=abc123} 2",
		"transport.batches{backend=ginger,program_hash=abc123} 1",
		"transport.batches 3", // synthesized unlabeled total
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("vc.phase", "phase", "backend")
	v.With("commit", "zaatar").Observe(time.Millisecond)
	v.With("commit", "zaatar").Observe(3 * time.Millisecond)
	if s := v.With("commit", "zaatar").Snapshot(); s.Count != 2 {
		t.Fatalf("series snapshot count = %d, want 2", s.Count)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vc.phase.count{phase=commit,backend=zaatar} 2") {
		t.Fatalf("WriteText missing labeled histogram lines:\n%s", buf.String())
	}
}

// TestSeriesCap pins the cardinality-safety contract: past the per-vector
// cap, new label sets fold into a shared overflow series and the
// registry-wide obs.series.dropped counter ticks — a client cycling
// program hashes cannot grow the registry without bound.
func TestSeriesCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(4)
	v := r.CounterVec("transport.batches", "backend", "program_hash")
	for i := 0; i < 7; i++ {
		v.With("zaatar", fmt.Sprintf("hash%02d", i)).Inc()
	}
	if got := v.Len(); got != 4 {
		t.Fatalf("Len = %d, want cap of 4", got)
	}
	if got := r.Counter(MetricSeriesDropped).Value(); got != 3 {
		t.Fatalf("%s = %d, want 3", MetricSeriesDropped, got)
	}
	// The refused observations land in the overflow series, so the total
	// still accounts for every increment.
	if got := v.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	// Re-observing an over-cap label set keeps returning the shared
	// overflow series rather than dropping again silently growing the map.
	before := r.Counter(MetricSeriesDropped).Value()
	v.With("zaatar", "hash06").Inc()
	if got := r.Counter(MetricSeriesDropped).Value(); got != before+1 {
		t.Fatalf("dropped = %d, want %d", got, before+1)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "transport.batches{backend=_overflow,program_hash=_overflow}") {
		t.Fatalf("WriteText missing overflow series:\n%s", buf.String())
	}
}

func TestSeriesCapHistogramVec(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(2)
	v := r.HistogramVec("vc.phase", "phase")
	for _, p := range []string{"commit", "decommit", "verify", "respond"} {
		v.With(p).Observe(time.Microsecond)
	}
	if got, want := v.Len(), 2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := r.Counter(MetricSeriesDropped).Value(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

// TestLabeledLookupAllocs enforces the hot-path contract: bumping a series
// whose label set already exists allocates nothing, so labeled counters
// can sit inside the prover's batch loop.
func TestLabeledLookupAllocs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("hot.counter", "backend", "program_hash")
	cv.With("zaatar", "abc123").Inc()
	if n := testing.AllocsPerRun(1000, func() { cv.With("zaatar", "abc123").Inc() }); n != 0 {
		t.Fatalf("CounterVec.With on existing series allocates %v allocs/op, want 0", n)
	}
	hv := r.HistogramVec("hot.hist", "phase")
	hv.With("commit").Observe(time.Microsecond)
	if n := testing.AllocsPerRun(1000, func() { hv.With("commit").Observe(time.Microsecond) }); n != 0 {
		t.Fatalf("HistogramVec.With on existing series allocates %v allocs/op, want 0", n)
	}
}

// TestRegistryConcurrentStress hammers creation and observation of every
// instrument kind from 8 goroutines; run under -race it verifies the
// registry's synchronization end to end.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(16) // force the overflow path under contention too
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter(fmt.Sprintf("c%d", i%4)).Inc()
				r.Histogram(fmt.Sprintf("h%d", i%4)).Observe(time.Duration(i))
				r.CounterVec("vec.c", "k").With(fmt.Sprintf("v%d", i%32)).Inc()
				r.HistogramVec("vec.h", "k").With(fmt.Sprintf("v%d", i%32)).Observe(time.Duration(i))
				r.RegisterGauge("g", func() float64 { return float64(w) })
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Error(err)
						return
					}
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c0").Value(); got != workers*iters/4 {
		t.Fatalf("c0 = %d, want %d", got, workers*iters/4)
	}
	if got := r.CounterVec("vec.c", "k").Total(); got != workers*iters {
		t.Fatalf("vec.c total = %d, want %d", got, workers*iters)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.GaugeValue("missing"); ok {
		t.Fatal("GaugeValue reported a gauge that was never registered")
	}
	r.RegisterGauge("transport.slo.error_rate", func() float64 { return 0.25 })
	if v, ok := r.GaugeValue("transport.slo.error_rate"); !ok || v != 0.25 {
		t.Fatalf("GaugeValue = %v, %v", v, ok)
	}
	// Re-registering replaces the function (idempotent wiring).
	r.RegisterGauge("transport.slo.error_rate", func() float64 { return 0.5 })
	if v, _ := r.GaugeValue("transport.slo.error_rate"); v != 0.5 {
		t.Fatalf("GaugeValue after re-register = %v", v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "transport.slo.error_rate 0.5") {
		t.Fatalf("WriteText missing gauge:\n%s", buf.String())
	}
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE zaatar_transport_slo_error_rate gauge") ||
		!strings.Contains(out, "zaatar_transport_slo_error_rate 0.5") {
		t.Fatalf("WritePrometheus missing gauge:\n%s", out)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "k").With("a\\b\"c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `zaatar_m_total{k="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped series %q missing:\n%s", want, buf.String())
	}
}

func TestPrometheusMergedTypeBlock(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport.batches").Add(5)
	r.CounterVec("transport.batches", "backend").With("zaatar").Add(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE zaatar_transport_batches_total counter") != 1 {
		t.Fatalf("want exactly one TYPE header for the shared name:\n%s", out)
	}
	for _, want := range []string{
		"zaatar_transport_batches_total 5",
		`zaatar_transport_batches_total{backend="zaatar"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
