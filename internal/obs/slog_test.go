package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"zaatar/internal/obs/trace"
)

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "json")
	tc := trace.New(trace.NewRecorder(64), "verifier")
	ctx := trace.NewContext(context.Background(), tc)

	logger.InfoContext(ctx, "batch done", "backend", "zaatar", "session", 7)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	want := TraceIDString(uint64(tc.TraceID()))
	if rec["trace_id"] != want {
		t.Fatalf("trace_id = %v, want %v", rec["trace_id"], want)
	}
	if _, ok := rec["span_id"]; !ok {
		t.Fatalf("span_id missing: %v", rec)
	}
	if rec["backend"] != "zaatar" || rec["msg"] != "batch done" {
		t.Fatalf("record fields wrong: %v", rec)
	}
	if len(want) != 16 {
		t.Fatalf("trace id render %q not 16 hex chars (must match the Perfetto export form)", want)
	}
}

func TestLoggerTextFormatAndNoTrace(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "text")
	// No trace in the context: no correlation attrs, no panic.
	logger.Info("hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "msg=hello") || strings.Contains(out, "trace_id") {
		t.Fatalf("text record wrong: %q", out)
	}
	// WithAttrs/WithGroup must preserve the trace decoration.
	buf.Reset()
	child := logger.With("session", 3).WithGroup("vc")
	tc := trace.New(trace.NewRecorder(64), "prover")
	child.InfoContext(trace.NewContext(context.Background(), tc), "x", "phase", "commit")
	if !strings.Contains(buf.String(), "trace_id="+TraceIDString(uint64(tc.TraceID()))) {
		t.Fatalf("derived logger lost trace decoration: %q", buf.String())
	}
}

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	l.Info("dropped", "k", "v") // must not panic or write anywhere
	l.With("a", 1).WithGroup("g").Error("also dropped")
	if OrNop(nil) == nil {
		t.Fatal("OrNop(nil) returned nil")
	}
	if got := OrNop(l); got != l {
		t.Fatal("OrNop did not pass through a non-nil logger")
	}
}
