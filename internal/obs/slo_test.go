package obs

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock drives an SLO deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLO(window time.Duration) (*SLO, *fakeClock) {
	s := NewSLO(window)
	c := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s.now = c.now
	return s, c
}

func TestSLOWindow(t *testing.T) {
	s, clk := newTestSLO(16 * time.Second) // 1s slots
	for i := 0; i < 99; i++ {
		s.Observe(10*time.Millisecond, false)
	}
	s.Observe(time.Second, false) // the tail latency
	s.Observe(0, true)            // one error

	snap := s.Snapshot()
	if snap.Requests != 101 || snap.Errors != 1 {
		t.Fatalf("Requests/Errors = %d/%d, want 101/1", snap.Requests, snap.Errors)
	}
	if want := 1.0 / 101.0; snap.ErrorRate != want {
		t.Fatalf("ErrorRate = %v, want %v", snap.ErrorRate, want)
	}
	// p99 of 100 successes: rank 99 is the last 10ms observation; p50 well
	// below the 1s outlier. Errors are untimed so they cannot skew either.
	if snap.P99 < 8*time.Millisecond || snap.P99 > 20*time.Millisecond {
		t.Fatalf("P99 = %v, want ~10ms", snap.P99)
	}
	if snap.P50 > snap.P99 {
		t.Fatalf("P50 %v > P99 %v", snap.P50, snap.P99)
	}

	// Half a window later the observations are still visible...
	clk.advance(8 * time.Second)
	if snap := s.Snapshot(); snap.Requests != 101 {
		t.Fatalf("mid-window Requests = %d, want 101", snap.Requests)
	}
	// ...a full window later they have aged out entirely.
	clk.advance(17 * time.Second)
	if snap := s.Snapshot(); snap.Requests != 0 || snap.ErrorRate != 0 || snap.P99 != 0 {
		t.Fatalf("aged-out snapshot not empty: %+v", snap)
	}

	// New observations land in recycled slots without inheriting old data.
	s.Observe(5*time.Millisecond, false)
	if snap := s.Snapshot(); snap.Requests != 1 || snap.Errors != 0 {
		t.Fatalf("post-recycle snapshot wrong: %+v", snap)
	}
}

func TestSLOTailLatencyDominatesP99(t *testing.T) {
	s, _ := newTestSLO(16 * time.Second)
	for i := 0; i < 9; i++ {
		s.Observe(time.Millisecond, false)
	}
	s.Observe(time.Second, false)
	if p99 := s.Snapshot().P99; p99 < 500*time.Millisecond {
		t.Fatalf("P99 = %v, want the 1s tail to dominate", p99)
	}
}

func TestExposeSLO(t *testing.T) {
	r := NewRegistry()
	s, _ := newTestSLO(16 * time.Second)
	ExposeSLO(r, "transport.slo", s)
	s.Observe(100*time.Millisecond, false)
	s.Observe(0, true)

	if v, ok := r.GaugeValue("transport.slo.requests"); !ok || v != 2 {
		t.Fatalf("requests gauge = %v, %v", v, ok)
	}
	if v, ok := r.GaugeValue("transport.slo.error_rate"); !ok || v != 0.5 {
		t.Fatalf("error_rate gauge = %v, %v", v, ok)
	}
	if v, ok := r.GaugeValue("transport.slo.p99_seconds"); !ok || v <= 0 || v > 1 {
		t.Fatalf("p99 gauge = %v, %v", v, ok)
	}
}

func TestHealthAndReadyHandlers(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	ReadyHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("readyz(nil check) = %d", rec.Code)
	}

	fail := errors.New("p99 over threshold")
	var err error
	h := ReadyHandler(func() error { return err })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("readyz(ok) = %d", rec.Code)
	}
	err = fail
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "p99 over threshold") {
		t.Fatalf("readyz(fail) = %d %q", rec.Code, rec.Body.String())
	}
	// Readiness recovers when the condition clears — no restart needed.
	err = nil
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("readyz(recovered) = %d", rec.Code)
	}
}
