package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Ctx
	if c.TraceID() != 0 || c.SpanID() != 0 || c.Recorder() != nil {
		t.Fatal("nil Ctx accessors not zero")
	}
	sp := c.Start("x").WithArg("k", 1)
	if sp != nil {
		t.Fatal("nil Ctx.Start returned a span")
	}
	sp.End()     // must not panic
	_ = sp.Ctx() // must not panic
	if c.Import(nil) != 0 {
		t.Fatal("nil Ctx.Import imported")
	}
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil Ctx attached to context")
	}
	Start(ctx, "y").End()
	if s, c2 := Child(ctx, "z"); s != nil || c2 != ctx {
		t.Fatal("Child on untraced context not inert")
	}
}

// TestDisabledTracingAllocs enforces the "free when disabled" contract: a
// context without a trace makes Start/End allocation-free.
func TestDisabledTracingAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		Start(ctx, "vc.commit").End()
	}); n != 0 {
		t.Fatalf("disabled Start/End allocates %v allocs/op, want 0", n)
	}
	var c *Ctx
	if n := testing.AllocsPerRun(1000, func() {
		c.Start("vc.commit").WithArg("i", 1).End()
	}); n != 0 {
		t.Fatalf("nil-Ctx Start/End allocates %v allocs/op, want 0", n)
	}
}

func TestSpanTreeAndContext(t *testing.T) {
	rec := NewRecorder(64)
	tc := New(rec, "verifier")
	if tc.TraceID() == 0 {
		t.Fatal("zero trace id")
	}
	ctx := NewContext(context.Background(), tc)

	root, ctx2 := Child(ctx, "vc.batch")
	child := Start(ctx2, "vc.setup")
	child.WithArg("n", 7).End()
	root.End()

	recs := rec.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	rb, ok1 := byName["vc.batch"]
	rs, ok2 := byName["vc.setup"]
	if !ok1 || !ok2 {
		t.Fatalf("missing spans: %+v", recs)
	}
	if rb.Parent != 0 {
		t.Fatalf("root parent = %d", rb.Parent)
	}
	if rs.Parent != rb.Span {
		t.Fatalf("child parent = %x, want %x", rs.Parent, rb.Span)
	}
	if rb.Trace != tc.TraceID() || rs.Trace != tc.TraceID() {
		t.Fatal("trace id not inherited")
	}
	if rb.Proc != "verifier" {
		t.Fatalf("proc = %q", rb.Proc)
	}
	if len(rs.Args) != 1 || rs.Args[0] != (Arg{"n", 7}) {
		t.Fatalf("args = %v", rs.Args)
	}
}

func TestJoinAndImport(t *testing.T) {
	vrec := NewRecorder(64)
	tc := New(vrec, "verifier")
	root := tc.Start("transport.session")
	root.End()

	// Peer side: joins with the wire-propagated ids, records, ships back.
	prec := NewRecorder(64)
	pc := Join(prec, tc.TraceID(), root.id, "prover")
	psp := pc.Start("prover.commit")
	psp.End()
	shipped := prec.Snapshot()

	// A record from a different trace must be dropped on import.
	shipped = append(shipped, Record{Trace: tc.TraceID() + 1, Span: 99, Name: "rogue"})
	if n := tc.Import(shipped); n != 1 {
		t.Fatalf("imported %d, want 1", n)
	}
	recs := vrec.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Name == "rogue" {
			t.Fatal("rogue record imported")
		}
		if r.Name == "prover.commit" && r.Parent != recs[0].Span && r.Parent == 0 {
			t.Fatal("imported span lost its parent")
		}
	}
	if Join(prec, 0, 0, "prover") != nil {
		t.Fatal("Join with zero trace id must disable tracing")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	rec := NewRecorder(16)
	tc := New(rec, "p")
	for i := 0; i < 40; i++ {
		tc.Start("s").End()
	}
	if got := rec.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	if got := rec.Dropped(); got != 24 {
		t.Fatalf("Dropped = %d, want 24", got)
	}
	if got := len(rec.Snapshot()); got != 16 {
		t.Fatalf("Snapshot len = %d, want 16", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(256)
	tc := New(rec, "p")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tc.Start("s").WithArg("i", int64(i)).End()
				if i%16 == 0 {
					_ = rec.Snapshot() // concurrent reader
				}
			}
		}()
	}
	wg.Wait()
	if rec.Dropped() != 8*200-256 {
		t.Fatalf("Dropped = %d", rec.Dropped())
	}
	seen := map[SpanID]bool{}
	for _, r := range rec.Snapshot() {
		if seen[r.Span] {
			t.Fatalf("duplicate span id %x", r.Span)
		}
		seen[r.Span] = true
	}
}

func TestWriteChrome(t *testing.T) {
	rec := NewRecorder(64)
	tc := New(rec, "verifier")
	root, ctx := Child(NewContext(context.Background(), tc), "vc.batch")
	a := Start(ctx, "vc.commit")
	time.Sleep(time.Millisecond)
	a.End()
	b := Start(ctx, "vc.respond")
	b.End()
	root.End()
	// A prover-side record under the same trace.
	rec.Import(tc.TraceID(), []Record{{
		Trace: tc.TraceID(), Span: 42, Parent: root.id,
		Name: "prover.commit", Proc: "prover",
		Start: time.Now().UnixNano(), Dur: 1000,
	}})

	var sb strings.Builder
	if err := WriteChrome(&sb, rec.Snapshot(), map[string]any{"beta": 1}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Summary     map[string]any   `json:"zaatarSummary"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.Summary["beta"] != float64(1) {
		t.Fatalf("summary not embedded: %v", file.Summary)
	}
	names := map[string]int{}
	pids := map[string]float64{}
	for _, ev := range file.TraceEvents {
		names[ev["name"].(string)]++
		if ev["ph"] == "X" {
			pids[ev["name"].(string)] = ev["pid"].(float64)
		}
	}
	for _, want := range []string{"process_name", "vc.batch", "vc.commit", "vc.respond", "prover.commit"} {
		if names[want] == 0 {
			t.Fatalf("export missing event %q; have %v", want, names)
		}
	}
	if pids["vc.batch"] == pids["prover.commit"] {
		t.Fatal("verifier and prover share a pid")
	}
}

func TestAssignLanesNesting(t *testing.T) {
	// parent [0,100]; serial children [10,20], [30,40] share its lane;
	// overlapping sibling [15,25] spills to a second lane.
	recs := []Record{
		{Span: 1, Parent: 0, Name: "p", Start: 0, Dur: 100},
		{Span: 2, Parent: 1, Name: "a", Start: 10, Dur: 10},
		{Span: 3, Parent: 1, Name: "b", Start: 15, Dur: 10},
		{Span: 4, Parent: 1, Name: "c", Start: 30, Dur: 10},
	}
	lanes := assignLanes(recs)
	if lanes[0] != 0 || lanes[1] != 0 {
		t.Fatalf("parent/first child lanes = %v", lanes)
	}
	if lanes[2] == 0 {
		t.Fatalf("overlapping sibling not spilled: %v", lanes)
	}
	if lanes[3] != 0 {
		t.Fatalf("serial child did not rejoin parent lane: %v", lanes)
	}
}
