// Package trace is the request-scoped half of the observability layer:
// where internal/obs aggregates (counters, histograms), trace records — a
// named, parent-linked span per unit of protocol work, grouped under one
// TraceID per batch, so a single run can be decomposed into its four
// protocol phases, per-instance steps, and kernel calls on both sides of
// the wire.
//
// The design center is "free when disabled": every method is nil-safe, and
// a nil *Ctx (no trace attached to the context.Context) makes Start/End a
// pair of pointer checks with zero allocations — enforced by
// TestDisabledTracingAllocs. When enabled, completed spans go into a
// fixed-size lock-free ring (Recorder); an unfinished span is simply never
// recorded, so a failed session cannot leave half-written records behind.
//
// Wire propagation: the verifier sends its TraceID and the parent SpanID
// in the transport hello; the prover records into its own per-session
// Recorder under that TraceID (Join) and returns its records with the
// final protocol message, where the verifier imports them (Ctx.Import) to
// stitch both timelines into one tree. Export to the Chrome trace-event
// format is in export.go.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sort"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace (one batch run). Zero means "no
// trace": it is the wire value sent by peers without tracing enabled.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// NewTraceID draws a random non-zero trace identifier.
func NewTraceID() TraceID {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic("trace: randomness unavailable: " + err.Error())
		}
		if id := TraceID(binary.LittleEndian.Uint64(b[:])); id != 0 {
			return id
		}
	}
}

// Arg is a small integer-valued span annotation (instance index, vector
// length, batch size). Strings are deliberately excluded: the hot-path
// record must not retain arbitrary payloads.
type Arg struct {
	Key string
	Val int64
}

// Record is one completed span, the unit stored in the Recorder and moved
// across the wire. All times are nanoseconds; Start is wall-clock unix
// time so two processes on one machine line up in the exported view.
type Record struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	Name   string
	Proc   string // process role: "verifier", "prover", "zaatar-run", ...
	Start  int64  // unix nanoseconds
	Dur    int64  // nanoseconds
	Args   []Arg
}

// Recorder is a fixed-size lock-free ring of completed span records. When
// the ring wraps, the oldest records are overwritten and counted as
// dropped. All methods are safe for concurrent use.
type Recorder struct {
	slots    []atomic.Pointer[Record]
	cursor   atomic.Uint64
	spanSeq  atomic.Uint64
	spanBase uint64 // random offset so two processes' span IDs do not collide
}

// DefaultCapacity is the ring size used by the cmd/ binaries: enough for a
// few thousand instances' worth of spans.
const DefaultCapacity = 1 << 15

// NewRecorder returns a ring holding up to capacity records (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	r := &Recorder{slots: make([]atomic.Pointer[Record], capacity)}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("trace: randomness unavailable: " + err.Error())
	}
	r.spanBase = binary.LittleEndian.Uint64(b[:])
	return r
}

// nextSpanID mints a process-unique span identifier.
func (r *Recorder) nextSpanID() SpanID {
	for {
		if id := SpanID(r.spanSeq.Add(1) + r.spanBase); id != 0 {
			return id
		}
	}
}

// put stores one completed record, overwriting the oldest when full.
func (r *Recorder) put(rec *Record) {
	i := r.cursor.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rec)
}

// Len reports how many records the ring currently holds.
func (r *Recorder) Len() int {
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dropped reports how many records were overwritten by ring wrap-around.
func (r *Recorder) Dropped() int64 {
	n := r.cursor.Load()
	if n <= uint64(len(r.slots)) {
		return 0
	}
	return int64(n - uint64(len(r.slots)))
}

// Snapshot copies the ring's current records, sorted by start time. It is
// safe to call while spans are still being recorded; records are immutable
// once stored.
func (r *Recorder) Snapshot() []Record {
	out := make([]Record, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// Import stores externally produced records (a peer's spans returned over
// the wire) that belong to the given trace; records from other traces are
// ignored. It returns how many records were imported.
func (r *Recorder) Import(id TraceID, recs []Record) int {
	n := 0
	for i := range recs {
		if recs[i].Trace != id || recs[i].Span == 0 {
			continue
		}
		rec := recs[i]
		r.put(&rec)
		n++
	}
	return n
}

// Ctx is a position in a trace: a recorder, a trace identifier, and the
// span that new children attach under. A nil *Ctx disables tracing — every
// method on it is a no-op, and Start returns a nil *Span whose End is also
// a no-op.
type Ctx struct {
	rec   *Recorder
	trace TraceID
	span  SpanID // parent for spans started from this context
	proc  string
}

// New starts a fresh trace recording into rec, tagged with the process
// role proc. The returned context is the root: spans started from it have
// no parent.
func New(rec *Recorder, proc string) *Ctx {
	return &Ctx{rec: rec, trace: NewTraceID(), proc: proc}
}

// Join continues a trace begun elsewhere (the wire-propagated case): spans
// started from the returned context attach under the remote parent span.
// A zero id returns nil — the peer did not enable tracing.
func Join(rec *Recorder, id TraceID, parent SpanID, proc string) *Ctx {
	if id == 0 || rec == nil {
		return nil
	}
	return &Ctx{rec: rec, trace: id, span: parent, proc: proc}
}

// TraceID returns the trace identifier, or zero on a nil context.
func (c *Ctx) TraceID() TraceID {
	if c == nil {
		return 0
	}
	return c.trace
}

// SpanID returns the current span identifier, or zero on a nil context.
func (c *Ctx) SpanID() SpanID {
	if c == nil {
		return 0
	}
	return c.span
}

// Recorder returns the backing recorder, or nil on a nil context.
func (c *Ctx) Recorder() *Recorder {
	if c == nil {
		return nil
	}
	return c.rec
}

// Import stitches a peer's records into this trace; nil-safe. Returns the
// number of records imported.
func (c *Ctx) Import(recs []Record) int {
	if c == nil {
		return 0
	}
	return c.rec.Import(c.trace, recs)
}

// Span is one started, not-yet-completed unit of work. A nil *Span (from a
// nil *Ctx) is inert. End must be called at most once.
type Span struct {
	rec    *Recorder
	trace  TraceID
	id     SpanID
	parent SpanID
	proc   string
	name   string
	start  time.Time
	done   bool
	nargs  int
	args   [2]Arg
}

// Start begins a child span. On a nil context it returns nil and performs
// no allocations.
func (c *Ctx) Start(name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{
		rec:    c.rec,
		trace:  c.trace,
		id:     c.rec.nextSpanID(),
		parent: c.span,
		proc:   c.proc,
		name:   name,
		start:  time.Now(),
	}
}

// WithArg attaches a small integer annotation (up to two per span; extras
// are dropped). Nil-safe; returns the span for chaining.
func (s *Span) WithArg(key string, val int64) *Span {
	if s == nil {
		return nil
	}
	if s.nargs < len(s.args) {
		s.args[s.nargs] = Arg{Key: key, Val: val}
		s.nargs++
	}
	return s
}

// End completes the span and stores its record. Nil-safe and idempotent,
// so instrumentation can pair a deferred End (the error path) with an
// explicit End on the success path.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	rec := &Record{
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Proc:   s.proc,
		Start:  s.start.UnixNano(),
		Dur:    int64(time.Since(s.start)),
	}
	if s.nargs > 0 {
		rec.Args = append([]Arg(nil), s.args[:s.nargs]...)
	}
	s.rec.put(rec)
}

// Ctx returns a trace position rooted at this span, for starting children.
// Nil-safe: a nil span yields a nil (disabled) context.
func (s *Span) Ctx() *Ctx {
	if s == nil {
		return nil
	}
	return &Ctx{rec: s.rec, trace: s.trace, span: s.id, proc: s.proc}
}

// ctxKey carries a *Ctx inside a context.Context.
type ctxKey struct{}

// NewContext attaches tc to ctx; a nil tc returns ctx unchanged, so the
// disabled path adds no context layers.
func NewContext(ctx context.Context, tc *Ctx) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace position, or nil when tracing is off.
func FromContext(ctx context.Context) *Ctx {
	tc, _ := ctx.Value(ctxKey{}).(*Ctx)
	return tc
}

// Start begins a span under the context's trace position; nil (inert) when
// the context carries no trace. This is the one-liner instrumentation
// entry point: defer trace.Start(ctx, "phase").End().
func Start(ctx context.Context, name string) *Span {
	return FromContext(ctx).Start(name)
}

// Child starts a span and returns both the span and a derived context
// under which further spans nest inside it.
func Child(ctx context.Context, name string) (*Span, context.Context) {
	sp := FromContext(ctx).Start(name)
	if sp == nil {
		return nil, ctx
	}
	return sp, context.WithValue(ctx, ctxKey{}, sp.Ctx())
}
