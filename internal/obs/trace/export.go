// Chrome trace-event export: the recorder's span records rendered as the
// JSON object format understood by Perfetto (https://ui.perfetto.dev) and
// Chrome's about://tracing. Each process role ("verifier", "prover") maps
// to a pid; within a pid, spans are packed onto synthetic tid lanes so
// that nesting in the viewer mirrors the parent links — a child is placed
// on its parent's lane when the lane's stack allows it, and overlapping
// siblings (parallel instances) spill to fresh lanes.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace-event JSON object. Only the "X" (complete) and
// "M" (metadata) phases are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON object format: a traceEvents array plus optional
// metadata keys (Perfetto preserves unknown keys).
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Summary         any           `json:"zaatarSummary,omitempty"`
}

// WriteChrome renders records as Chrome trace-event JSON. summary, when
// non-nil, is embedded under the top-level "zaatarSummary" key (ignored by
// viewers, machine-readable for tooling).
func WriteChrome(w io.Writer, recs []Record, summary any) error {
	file := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(recs)+4),
		DisplayTimeUnit: "ms",
		Summary:         summary,
	}

	// Stable pid per process role, in order of first appearance.
	pids := map[string]int{}
	procs := []string{}
	for i := range recs {
		if _, ok := pids[recs[i].Proc]; !ok {
			pids[recs[i].Proc] = len(pids) + 1
			procs = append(procs, recs[i].Proc)
		}
	}
	for _, proc := range procs {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[proc],
			Args: map[string]any{"name": proc},
		})
	}

	for _, proc := range procs {
		group := make([]Record, 0, len(recs))
		for i := range recs {
			if recs[i].Proc == proc {
				group = append(group, recs[i])
			}
		}
		lanes := assignLanes(group)
		for i := range group {
			r := &group[i]
			args := map[string]any{
				"trace":  fmt.Sprintf("%016x", uint64(r.Trace)),
				"span":   fmt.Sprintf("%016x", uint64(r.Span)),
				"parent": fmt.Sprintf("%016x", uint64(r.Parent)),
			}
			for _, a := range r.Args {
				args[a.Key] = a.Val
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: r.Name,
				Cat:  "zaatar",
				Ph:   "X",
				Ts:   float64(r.Start) / 1e3,
				Dur:  float64(r.Dur) / 1e3,
				Pid:  pids[proc],
				Tid:  lanes[i],
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// assignLanes packs one process's spans onto tid lanes preserving stack
// discipline: lanes[i] is the lane of group[i]. Spans are processed in
// (start, -dur) order so parents come before their children; each span
// goes onto its parent's lane when the lane's currently open interval
// contains it, else onto the first lane it nests into, else a new lane.
func assignLanes(group []Record) []int {
	order := make([]int, len(group))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &group[order[a]], &group[order[b]]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		if ra.Dur != rb.Dur {
			return ra.Dur > rb.Dur // longer first: parents before children
		}
		return ra.Span < rb.Span
	})

	type lane struct {
		openEnds []int64 // stack of currently open interval end times
	}
	lanes := []*lane{}
	spanLane := map[SpanID]int{}
	out := make([]int, len(group))

	fits := func(l *lane, start, end int64) bool {
		for len(l.openEnds) > 0 && l.openEnds[len(l.openEnds)-1] <= start {
			l.openEnds = l.openEnds[:len(l.openEnds)-1]
		}
		return len(l.openEnds) == 0 || l.openEnds[len(l.openEnds)-1] >= end
	}

	for _, idx := range order {
		r := &group[idx]
		start, end := r.Start, r.Start+r.Dur
		placed := -1
		if pl, ok := spanLane[r.Parent]; ok && fits(lanes[pl], start, end) {
			placed = pl
		} else {
			for li, l := range lanes {
				if fits(l, start, end) {
					placed = li
					break
				}
			}
		}
		if placed < 0 {
			lanes = append(lanes, &lane{})
			placed = len(lanes) - 1
		}
		lanes[placed].openEnds = append(lanes[placed].openEnds, end)
		spanLane[r.Span] = placed
		out[idx] = placed
	}
	return out
}
