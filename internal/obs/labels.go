package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metrics: counter and histogram *vectors* keyed by small bounded
// label sets, so one metric name ("transport.batches") breaks out into one
// series per {backend, program_hash, ...} combination. The design mirrors
// the unlabeled instruments' contract: the hot path — looking up a series
// whose label set already exists and bumping it — takes a read lock and
// zero allocations (enforced by TestLabeledLookupAllocs), so a labeled
// counter can sit inside the prover's batch loop.
//
// Cardinality is a denial-of-service surface: a client cycling program
// hashes must not be able to grow the registry without bound. Every vector
// caps its series count (Registry.SetMaxSeries, default 1024); insertions
// beyond the cap are folded into a shared overflow series and counted in
// the registry-wide "obs.series.dropped" counter, so the overflow is
// itself observable.

// MaxLabels is the most label keys a vector may declare. Label sets are
// deliberately tiny: labels multiply series, and every key must have a
// bounded value domain (see docs/PROTOCOL.md §7.1 for the schema).
const MaxLabels = 3

// MetricSeriesDropped counts label-set insertions refused by the per-vector
// series cap, registry-wide. The refused observations are not lost — they
// land in the vector's shared overflow series — but their labels are.
const MetricSeriesDropped = "obs.series.dropped"

// DefaultMaxSeries is the per-vector series cap until SetMaxSeries
// overrides it.
const DefaultMaxSeries = 1024

// labelKey is a comparable fixed-arity label value tuple — the map key for
// a vector's series. Unused positions stay "".
type labelKey [MaxLabels]string

// LabelValue is one key=value pair of a series, in the vector's declared
// key order.
type LabelValue struct {
	Key   string
	Value string
}

// labelString renders `{k1=v1,k2=v2}` for the expvar-style text form (no
// quoting; the text form is line-oriented and local). An empty set renders
// as "".
func labelString(keys []string, vals labelKey) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(vals[i])
	}
	b.WriteByte('}')
	return b.String()
}

// vecCore is the shared series table behind CounterVec and HistogramVec.
type vecCore[T any] struct {
	name    string
	keys    []string
	limit   int
	dropped *Counter // the registry's obs.series.dropped
	newT    func() *T

	mu       sync.RWMutex
	m        map[labelKey]*T
	overflow *T // lazily created when the cap is first hit
}

// with returns the series for the given label values, creating it on first
// use. Lookup of an existing series is allocation-free; values beyond the
// vector's key arity are ignored, missing ones read as "".
func (v *vecCore[T]) with(values ...string) *T {
	var k labelKey
	copy(k[:], values)
	v.mu.RLock()
	t, ok := v.m[k]
	v.mu.RUnlock()
	if ok {
		return t
	}
	return v.grow(k)
}

func (v *vecCore[T]) grow(k labelKey) *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t, ok := v.m[k]; ok {
		return t
	}
	if v.limit > 0 && len(v.m) >= v.limit {
		// Past the cap: fold into the shared overflow series so the caller
		// still gets a live instrument, and make the drop itself visible.
		v.dropped.Inc()
		if v.overflow == nil {
			v.overflow = v.newT()
		}
		return v.overflow
	}
	t := v.newT()
	v.m[k] = t
	return t
}

// vecSeries is one rendered series: the label values plus the instrument.
type vecSeries[T any] struct {
	vals labelKey
	t    *T
}

// snapshot returns the live series sorted by label values (stable render
// order), with the overflow series (empty label set semantics do not apply
// to it; it renders with the reserved value "_overflow") appended last when
// present.
func (v *vecCore[T]) snapshot() []vecSeries[T] {
	v.mu.RLock()
	out := make([]vecSeries[T], 0, len(v.m)+1)
	for k, t := range v.m {
		out = append(out, vecSeries[T]{vals: k, t: t})
	}
	overflow := v.overflow
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return lessKey(out[i].vals, out[j].vals) })
	if overflow != nil {
		var k labelKey
		for i := range v.keys {
			k[i] = "_overflow"
		}
		out = append(out, vecSeries[T]{vals: k, t: overflow})
	}
	return out
}

func lessKey(a, b labelKey) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Len reports how many distinct label sets the vector holds (excluding the
// overflow series).
func (v *vecCore[T]) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.m)
}

// Keys returns the vector's declared label keys.
func (v *vecCore[T]) Keys() []string { return v.keys }

// CounterVec is a family of counters sharing one name, keyed by label
// values. Obtain one from Registry.CounterVec; obtain series with With.
type CounterVec struct {
	vecCore[Counter]
}

// With returns the counter for the given label values (in the vector's
// declared key order), creating the series on first use. Looking up an
// existing series allocates nothing.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values...) }

// Total sums the vector's series, overflow included — the unlabeled view.
func (v *CounterVec) Total() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var sum int64
	for _, c := range v.m {
		sum += c.Value()
	}
	if v.overflow != nil {
		sum += v.overflow.Value()
	}
	return sum
}

// HistogramVec is a family of histograms sharing one name, keyed by label
// values. Obtain one from Registry.HistogramVec; obtain series with With.
type HistogramVec struct {
	vecCore[Histogram]
}

// With returns the histogram for the given label values (in the vector's
// declared key order), creating the series on first use. Looking up an
// existing series allocates nothing.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values...) }

// clampKeys bounds and copies a vector's declared label keys.
func clampKeys(keys []string) []string {
	if len(keys) > MaxLabels {
		keys = keys[:MaxLabels]
	}
	return append([]string(nil), keys...)
}

// CounterVec returns the named counter vector with the given label keys
// (at most MaxLabels), creating it on first use. A later call with the
// same name returns the existing vector regardless of the keys passed.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	r.mu.RLock()
	v, ok := r.cvecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	dropped := r.Counter(MetricSeriesDropped)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.cvecs[name]; !ok {
		v = &CounterVec{vecCore[Counter]{
			name:    name,
			keys:    clampKeys(keys),
			limit:   r.maxSeries,
			dropped: dropped,
			newT:    func() *Counter { return &Counter{} },
			m:       make(map[labelKey]*Counter),
		}}
		r.cvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram vector with the given label
// keys (at most MaxLabels), creating it on first use. A later call with
// the same name returns the existing vector regardless of the keys passed.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	r.mu.RLock()
	v, ok := r.hvecs[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	dropped := r.Counter(MetricSeriesDropped)
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok = r.hvecs[name]; !ok {
		v = &HistogramVec{vecCore[Histogram]{
			name:    name,
			keys:    clampKeys(keys),
			limit:   r.maxSeries,
			dropped: dropped,
			newT:    newHistogram,
			m:       make(map[labelKey]*Histogram),
		}}
		r.hvecs[name] = v
	}
	return v
}

// SetMaxSeries caps how many distinct label sets each *subsequently
// created* vector may hold (existing vectors keep their cap). n ≤ 0
// removes the bound. The default is DefaultMaxSeries.
func (r *Registry) SetMaxSeries(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxSeries = n
}

// RegisterGauge installs a named gauge computed at scrape time (rendered
// by WriteText and WritePrometheus). Re-registering a name replaces the
// function — idempotent wiring for components constructed repeatedly
// against the default registry.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// GaugeValue evaluates the named registered gauge, reporting whether it
// exists. Health checks use this to read SLO gauges by name without
// holding a reference to the component that computes them.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	r.mu.RLock()
	fn, ok := r.gauges[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return fn(), true
}
