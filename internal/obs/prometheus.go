package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition rendering for the registry: counters map to
// prometheus counters (name_total), histograms map to prometheus
// histograms in seconds with cumulative `le` buckets derived from the
// power-of-two nanosecond buckets. Metric names are prefixed with
// "zaatar_" and dots become underscores, so `vc.verify` renders as
// `zaatar_vc_verify_seconds_bucket{le="..."}` lines plus _sum and _count.

// promName sanitizes a registry metric name into a prometheus one.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("zaatar_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way prometheus clients do.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the prometheus text exposition
// format (version 0.0.4), sorted by name for stable scrapes and golden
// tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := hists[name].Snapshot()
		pn := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Bucket i of the snapshot counts observations with nanosecond bit
		// length i, so the cumulative count through bucket i covers
		// durations ≤ 2^i − 1 ns. The last bucket is a catch-all and folds
		// into +Inf.
		var cum int64
		for i := 0; i < numBuckets-1; i++ {
			cum += s.Buckets[i]
			le := float64(int64(1)<<uint(i)-1) / 1e9
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(s.Sum.Seconds()), pn, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves the registry in the prometheus text exposition
// format — the body behind zaatar-server's /metrics/prometheus endpoint.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
