package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition rendering for the registry: counters map to
// prometheus counters (name_total), histograms map to prometheus
// histograms in seconds with cumulative `le` buckets derived from the
// power-of-two nanosecond buckets, labeled vectors render one series per
// label set with escaped label values, and registered gauges render as
// prometheus gauges. Metric names are prefixed with "zaatar_" and dots
// become underscores, so `vc.verify` renders as
// `zaatar_vc_verify_seconds_bucket{le="..."}` lines plus _sum and _count.

// promName sanitizes a registry metric name into a prometheus one.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("zaatar_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way prometheus clients do.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscaper escapes a label value per the text exposition format:
// backslash, double quote, and line feed.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabels renders `k1="v1",k2="v2"` (no braces) for a series' label
// values, escaped. Empty key set renders as "".
func promLabels(keys []string, vals labelKey) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k)[len("zaatar_"):]) // sanitize key, drop prefix
		b.WriteString(`="`)
		b.WriteString(promEscaper.Replace(vals[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// writePromHist renders one histogram's bucket/sum/count lines. labels is
// the pre-rendered, escaped `k="v",...` pair list (or "") shared by every
// line of the series.
func writePromHist(w io.Writer, pn, labels string, s HistogramSnapshot) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	// Bucket i of the snapshot counts observations with nanosecond bit
	// length i, so the cumulative count through bucket i covers durations
	// ≤ 2^i − 1 ns. The last bucket is a catch-all and folds into +Inf.
	var cum int64
	for i := 0; i < numBuckets-1; i++ {
		cum += s.Buckets[i]
		le := float64(int64(1)<<uint(i)-1) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", pn, labels, sep, promFloat(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", pn, labels, sep, s.Count); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", pn, suffix, promFloat(s.Sum.Seconds()), pn, suffix, s.Count)
	return err
}

// WritePrometheus renders every metric in the prometheus text exposition
// format (version 0.0.4), sorted by name for stable scrapes and golden
// tests. When a plain metric and a labeled vector share a name, the two
// render under a single # TYPE header: the unlabeled aggregate first, then
// the labeled series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	cvecs := make(map[string]*CounterVec, len(r.cvecs))
	for k, v := range r.cvecs {
		cvecs[k] = v
	}
	hvecs := make(map[string]*HistogramVec, len(r.hvecs))
	for k, v := range r.hvecs {
		hvecs[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.RUnlock()

	names := make([]string, 0, len(counters)+len(cvecs))
	for name := range counters {
		names = append(names, name)
	}
	for name := range cvecs {
		if _, dup := counters[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		if c, ok := counters[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", pn, c.Value()); err != nil {
				return err
			}
		}
		if v, ok := cvecs[name]; ok {
			for _, s := range v.snapshot() {
				if _, err := fmt.Fprintf(w, "%s{%s} %d\n", pn, promLabels(v.keys, s.vals), s.t.Value()); err != nil {
					return err
				}
			}
		}
	}

	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	for name := range hvecs {
		if _, dup := hists[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		if h, ok := hists[name]; ok {
			if err := writePromHist(w, pn, "", h.Snapshot()); err != nil {
				return err
			}
		}
		if v, ok := hvecs[name]; ok {
			for _, s := range v.snapshot() {
				if err := writePromHist(w, pn, promLabels(v.keys, s.vals), s.t.Snapshot()); err != nil {
					return err
				}
			}
		}
	}

	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gauges[name]())); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves the registry in the prometheus text exposition
// format — the body behind zaatar-server's /metrics/prometheus endpoint.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
