// Package obs is the system's observability substrate: atomic counters,
// log-scale latency histograms, and named span timers, collected in a
// Registry and rendered as expvar-style text (one "name value" pair per
// line). The protocol driver (internal/vc), the wire layer
// (internal/transport), and the cmd/ binaries all record into a registry;
// cmd/zaatar-server optionally serves its registry over HTTP.
//
// Everything is safe for concurrent use and allocation-free on the hot
// paths (Counter.Add, Histogram.Observe, Span.End), so instruments can sit
// inside the prover's worker pool without distorting what they measure. A
// pluggable Sink receives every completed span for callers that want to
// stream events (logs, traces) instead of polling aggregates.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic (or gauge-style, with negative deltas) atomic
// 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// numBuckets covers 1ns..2^47ns (~1.6 days) in power-of-two buckets —
// bucket i counts observations whose nanosecond value has bit length i.
const numBuckets = 48

// Histogram aggregates durations into power-of-two latency buckets with
// exact count, sum, min, and max. All methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's aggregates.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [numBuckets]int64 // Buckets[i] counts observations with 2^(i-1) ≤ ns < 2^i
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the field loads, so the snapshot is consistent only in the
// quiescent case; aggregate monitoring does not need more.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if mn := h.min.Load(); mn != math.MaxInt64 {
		s.Min = time.Duration(mn)
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed duration, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) from the
// power-of-two buckets: the top of the bucket holding the q-th observation,
// so the true quantile is within a factor of two below the returned value.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			ub := time.Duration(int64(1)<<uint(i)) - 1
			if ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// Sink receives every completed span. Implementations must be safe for
// concurrent use; a nil sink (the default) drops events.
type Sink interface {
	// Span is called once per Span.End with the span's name and duration.
	Span(name string, d time.Duration)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(name string, d time.Duration)

// Span calls f.
func (f SinkFunc) Span(name string, d time.Duration) { f(name, d) }

// Registry is a named collection of counters and histograms with an
// optional event sink. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	sink     atomic.Value // sinkHolder
}

type sinkHolder struct{ s Sink }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used when a component is not
// given an explicit one.
func Default() *Registry { return defaultRegistry }

// SetSink installs s as the registry's span sink (nil disables).
func (r *Registry) SetSink(s Sink) { r.sink.Store(sinkHolder{s}) }

func (r *Registry) emit(name string, d time.Duration) {
	if h, ok := r.sink.Load().(sinkHolder); ok && h.s != nil {
		h.s.Span(name, d)
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Span is a started named timer. End it exactly once.
type Span struct {
	r     *Registry
	h     *Histogram
	name  string
	start time.Time
}

// StartSpan starts a timer whose End records into the histogram of the
// same name and notifies the registry's sink.
func (r *Registry) StartSpan(name string) Span {
	return Span{r: r, h: r.Histogram(name), name: name, start: time.Now()}
}

// End stops the span, records its duration, and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.Observe(d)
	s.r.emit(s.name, d)
	return d
}

// WriteText renders every metric as expvar-style "name value" lines,
// sorted by name. Counters render as a single line; each histogram renders
// count, sum, min, max, avg, and approximate p50/p90/p99 (nanoseconds).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	lines := make([]string, 0, len(counters)+8*len(hists))
	for name, c := range counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, h := range hists {
		s := h.Snapshot()
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, s.Count),
			fmt.Sprintf("%s.sum_ns %d", name, int64(s.Sum)),
			fmt.Sprintf("%s.min_ns %d", name, int64(s.Min)),
			fmt.Sprintf("%s.max_ns %d", name, int64(s.Max)),
			fmt.Sprintf("%s.avg_ns %d", name, int64(s.Mean())),
			fmt.Sprintf("%s.p50_ns %d", name, int64(s.Quantile(0.50))),
			fmt.Sprintf("%s.p90_ns %d", name, int64(s.Quantile(0.90))),
			fmt.Sprintf("%s.p99_ns %d", name, int64(s.Quantile(0.99))),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as text/plain — the body behind
// zaatar-server's -metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
}
