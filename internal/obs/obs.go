// Package obs is the system's observability substrate: atomic counters,
// log-scale latency histograms, and named span timers, collected in a
// Registry and rendered as expvar-style text (one "name value" pair per
// line). The protocol driver (internal/vc), the wire layer
// (internal/transport), and the cmd/ binaries all record into a registry;
// cmd/zaatar-server optionally serves its registry over HTTP.
//
// Everything is safe for concurrent use and allocation-free on the hot
// paths (Counter.Add, Histogram.Observe, Span.End), so instruments can sit
// inside the prover's worker pool without distorting what they measure. A
// pluggable Sink receives every completed span for callers that want to
// stream events (logs, traces) instead of polling aggregates.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic (or gauge-style, with negative deltas) atomic
// 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add adds delta to the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// numBuckets covers 1ns..2^47ns (~1.6 days) in power-of-two buckets —
// bucket i counts observations whose nanosecond value has bit length i.
const numBuckets = 48

// Histogram aggregates durations into power-of-two latency buckets with
// exact count, sum, min, and max. All methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's aggregates.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [numBuckets]int64 // Buckets[i] counts observations with 2^(i-1) ≤ ns < 2^i
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the field loads, so the snapshot is consistent only in the
// quiescent case; aggregate monitoring does not need more.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if mn := h.min.Load(); mn != math.MaxInt64 {
		s.Min = time.Duration(mn)
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed duration, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the power-of-two
// buckets by linear interpolation within the bucket holding the q-th
// observation: bucket i spans [2^(i−1), 2^i−1], and the rank's position
// among the bucket's observations places the estimate inside that span
// (assuming a uniform spread), clamped to the observed [Min, Max]. A
// histogram of identical observations therefore reports every quantile
// exactly; mixed distributions are off by at most the bucket width —
// strictly tighter than the pre-interpolation behavior of returning the
// bucket's upper edge.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		if seen+n < rank {
			seen += n
			continue
		}
		if i == 0 {
			return 0 // bucket 0 holds only zero-valued observations
		}
		lo := int64(1) << uint(i-1)
		hi := int64(1)<<uint(i) - 1
		// Interpolate at the rank's midpoint-free position within the
		// bucket: rank-seen of n observations → fraction in (0, 1].
		v := lo + int64(float64(hi-lo)*float64(rank-seen)/float64(n))
		if mx := int64(s.Max); v > mx {
			v = mx
		}
		if mn := int64(s.Min); v < mn {
			v = mn
		}
		return time.Duration(v)
	}
	return s.Max
}

// Sink receives every completed span. Implementations must be safe for
// concurrent use; a nil sink (the default) drops events.
type Sink interface {
	// Span is called once per Span.End with the span's name and duration.
	Span(name string, d time.Duration)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(name string, d time.Duration)

// Span calls f.
func (f SinkFunc) Span(name string, d time.Duration) { f(name, d) }

// Registry is a named collection of counters, histograms, labeled metric
// vectors (labels.go), and scrape-time gauges, with an optional event
// sink. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	hists     map[string]*Histogram
	cvecs     map[string]*CounterVec
	hvecs     map[string]*HistogramVec
	gauges    map[string]func() float64
	maxSeries int
	sink      atomic.Value // sinkHolder
}

type sinkHolder struct{ s Sink }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		hists:     make(map[string]*Histogram),
		cvecs:     make(map[string]*CounterVec),
		hvecs:     make(map[string]*HistogramVec),
		gauges:    make(map[string]func() float64),
		maxSeries: DefaultMaxSeries,
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used when a component is not
// given an explicit one.
func Default() *Registry { return defaultRegistry }

// SetSink installs s as the registry's span sink (nil disables).
func (r *Registry) SetSink(s Sink) { r.sink.Store(sinkHolder{s}) }

func (r *Registry) emit(name string, d time.Duration) {
	if h, ok := r.sink.Load().(sinkHolder); ok && h.s != nil {
		h.s.Span(name, d)
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Span is a started named timer. End it exactly once.
type Span struct {
	r     *Registry
	h     *Histogram
	name  string
	start time.Time
}

// StartSpan starts a timer whose End records into the histogram of the
// same name and notifies the registry's sink.
func (r *Registry) StartSpan(name string) Span {
	return Span{r: r, h: r.Histogram(name), name: name, start: time.Now()}
}

// End stops the span, records its duration, and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.h.Observe(d)
	s.r.emit(s.name, d)
	return d
}

// histLines renders one histogram snapshot's expvar-style lines; suffix
// (the text-form label set, or "") follows each sub-metric name.
func histLines(lines []string, name, suffix string, s HistogramSnapshot) []string {
	return append(lines,
		fmt.Sprintf("%s.count%s %d", name, suffix, s.Count),
		fmt.Sprintf("%s.sum_ns%s %d", name, suffix, int64(s.Sum)),
		fmt.Sprintf("%s.min_ns%s %d", name, suffix, int64(s.Min)),
		fmt.Sprintf("%s.max_ns%s %d", name, suffix, int64(s.Max)),
		fmt.Sprintf("%s.avg_ns%s %d", name, suffix, int64(s.Mean())),
		fmt.Sprintf("%s.p50_ns%s %d", name, suffix, int64(s.Quantile(0.50))),
		fmt.Sprintf("%s.p90_ns%s %d", name, suffix, int64(s.Quantile(0.90))),
		fmt.Sprintf("%s.p99_ns%s %d", name, suffix, int64(s.Quantile(0.99))),
	)
}

// WriteText renders every metric as expvar-style "name value" lines,
// sorted by name. Counters render as a single line; each histogram renders
// count, sum, min, max, avg, and approximate p50/p90/p99 (nanoseconds).
// Labeled vectors render one line (or histogram block) per series with a
// `{k=v,...}` suffix plus an unlabeled total line for counter vectors;
// registered gauges render as "name value" with a float value.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	cvecs := make(map[string]*CounterVec, len(r.cvecs))
	for k, v := range r.cvecs {
		cvecs[k] = v
	}
	hvecs := make(map[string]*HistogramVec, len(r.hvecs))
	for k, v := range r.hvecs {
		hvecs[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.RUnlock()

	lines := make([]string, 0, len(counters)+8*len(hists))
	for name, c := range counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, h := range hists {
		lines = histLines(lines, name, "", h.Snapshot())
	}
	for name, v := range cvecs {
		for _, s := range v.snapshot() {
			lines = append(lines, fmt.Sprintf("%s%s %d", name, labelString(v.keys, s.vals), s.t.Value()))
		}
		if _, dup := counters[name]; !dup && v.Len() > 0 {
			lines = append(lines, fmt.Sprintf("%s %d", name, v.Total()))
		}
	}
	for name, v := range hvecs {
		for _, s := range v.snapshot() {
			lines = histLines(lines, name, labelString(v.keys, s.vals), s.t.Snapshot())
		}
	}
	for name, fn := range gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, fn()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as text/plain — the body behind
// zaatar-server's -metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
}
