// Package prg provides a ChaCha20-based pseudorandom generator.
//
// The paper (§5.1) uses the ChaCha stream cipher as the verifier's
// pseudorandom generator: PCP queries are long vectors of field elements, and
// deriving them from a short seed both speeds up the verifier (the parameter
// c in Figure 3) and collapses network cost — V ships a seed instead of full
// query vectors ([53], Apdx A.3), so the prover regenerates
// computation-oblivious queries locally.
//
// This is a from-scratch implementation of the ChaCha20 core (D. J.
// Bernstein, "ChaCha, a variant of Salsa20") exposing an io.Reader. It is
// used as a PRG, not as an encryption primitive.
package prg

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
)

const (
	// KeySize is the ChaCha20 key size in bytes.
	KeySize = 32
	// NonceSize is the ChaCha20 nonce size in bytes (the original 64-bit
	// nonce variant, leaving a 64-bit block counter).
	NonceSize = 8
	blockSize = 64
	rounds    = 20
)

// ChaCha is a deterministic pseudorandom byte stream. It implements
// io.Reader and never returns an error. A ChaCha value is not safe for
// concurrent use; derive independent streams with Fork instead.
type ChaCha struct {
	state [16]uint32 // input block: constants, key, counter, nonce
	buf   [blockSize]byte
	used  int // bytes of buf already consumed
}

var sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574} // "expand 32-byte k"

// New returns a ChaCha20 stream for the given 32-byte key and 8-byte nonce.
func New(key [KeySize]byte, nonce [NonceSize]byte) *ChaCha {
	c := &ChaCha{used: blockSize}
	copy(c.state[:4], sigma[:])
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c.state[12] = 0 // block counter low
	c.state[13] = 0 // block counter high
	c.state[14] = binary.LittleEndian.Uint32(nonce[0:])
	c.state[15] = binary.LittleEndian.Uint32(nonce[4:])
	return c
}

// NewFromSeed derives a stream from an arbitrary-length seed by hashing it
// into a key. The nonce distinguishes independent streams from one seed.
func NewFromSeed(seed []byte, nonce uint64) *ChaCha {
	var key [KeySize]byte
	sum := sha256.Sum256(seed)
	copy(key[:], sum[:])
	var n [NonceSize]byte
	binary.LittleEndian.PutUint64(n[:], nonce)
	return New(key, n)
}

// Fork returns an independent stream derived from this stream's key material
// and the given label; the receiver is not advanced.
func (c *ChaCha) Fork(label uint64) *ChaCha {
	var key [KeySize]byte
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(key[4*i:], c.state[4+i])
	}
	h := sha256.New()
	h.Write(key[:])
	var lb [8]byte
	binary.LittleEndian.PutUint64(lb[:], label)
	h.Write(lb[:])
	sum := h.Sum(nil)
	copy(key[:], sum)
	var n [NonceSize]byte
	binary.LittleEndian.PutUint64(n[:], label)
	return New(key, n)
}

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

func (c *ChaCha) block() {
	x := c.state
	for i := 0; i < rounds; i += 2 {
		// column rounds
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// diagonal rounds
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(c.buf[4*i:], x[i]+c.state[i])
	}
	// 64-bit block counter in words 12..13.
	c.state[12]++
	if c.state[12] == 0 {
		c.state[13]++
	}
	c.used = 0
}

// Read fills p with pseudorandom bytes. It never fails.
func (c *ChaCha) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if c.used == blockSize {
			c.block()
		}
		k := copy(p, c.buf[c.used:])
		c.used += k
		p = p[k:]
	}
	return n, nil
}

// Uint64 returns the next 8 bytes of the stream as a little-endian uint64.
func (c *ChaCha) Uint64() uint64 {
	var b [8]byte
	_, _ = c.Read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

var _ io.Reader = (*ChaCha)(nil)
