package prg

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// TestRFCVector checks the ChaCha20 block function against the keystream in
// the original ChaCha/djb test vectors (all-zero key and nonce, 20 rounds),
// as also reproduced in RFC 7539 appendix material for the djb variant.
func TestRFCVector(t *testing.T) {
	var key [KeySize]byte
	var nonce [NonceSize]byte
	c := New(key, nonce)
	got := make([]byte, 64)
	_, _ = c.Read(got)
	want, _ := hex.DecodeString(
		"76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7" +
			"da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586")
	if !bytes.Equal(got, want) {
		t.Fatalf("keystream block 0 mismatch:\n got %x\nwant %x", got, want)
	}
}

// TestSecondBlockVector pins the second keystream block (counter = 1).
func TestSecondBlockVector(t *testing.T) {
	var key [KeySize]byte
	var nonce [NonceSize]byte
	c := New(key, nonce)
	buf := make([]byte, 128)
	_, _ = c.Read(buf)
	want, _ := hex.DecodeString(
		"9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed" +
			"29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f")
	if !bytes.Equal(buf[64:], want) {
		t.Fatalf("keystream block 1 mismatch:\n got %x\nwant %x", buf[64:], want)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewFromSeed([]byte("seed"), 7)
	b := NewFromSeed([]byte("seed"), 7)
	ba := make([]byte, 1000)
	bb := make([]byte, 1000)
	_, _ = a.Read(ba)
	_, _ = b.Read(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed+nonce produced different streams")
	}
}

func TestSeedSeparation(t *testing.T) {
	a := NewFromSeed([]byte("seed"), 0)
	b := NewFromSeed([]byte("seed"), 1)
	c := NewFromSeed([]byte("other"), 0)
	ba := make([]byte, 64)
	bb := make([]byte, 64)
	bc := make([]byte, 64)
	_, _ = a.Read(ba)
	_, _ = b.Read(bb)
	_, _ = c.Read(bc)
	if bytes.Equal(ba, bb) || bytes.Equal(ba, bc) || bytes.Equal(bb, bc) {
		t.Fatal("distinct seeds/nonces produced equal streams")
	}
}

func TestUnevenReads(t *testing.T) {
	a := NewFromSeed([]byte("x"), 0)
	b := NewFromSeed([]byte("x"), 0)
	whole := make([]byte, 300)
	_, _ = a.Read(whole)
	var parts []byte
	for _, n := range []int{1, 2, 61, 64, 65, 107} {
		chunk := make([]byte, n)
		_, _ = b.Read(chunk)
		parts = append(parts, chunk...)
	}
	if !bytes.Equal(whole, parts) {
		t.Fatal("chunked reads diverge from a single read")
	}
}

func TestFork(t *testing.T) {
	base := NewFromSeed([]byte("base"), 0)
	f1 := base.Fork(1)
	f2 := base.Fork(2)
	f1b := base.Fork(1) // forking again with the same label reproduces
	b1 := make([]byte, 64)
	b2 := make([]byte, 64)
	b1b := make([]byte, 64)
	_, _ = f1.Read(b1)
	_, _ = f2.Read(b2)
	_, _ = f1b.Read(b1b)
	if bytes.Equal(b1, b2) {
		t.Fatal("forks with different labels are equal")
	}
	if !bytes.Equal(b1, b1b) {
		t.Fatal("fork with the same label is not reproducible")
	}
}

func TestUint64(t *testing.T) {
	a := NewFromSeed([]byte("u"), 0)
	b := NewFromSeed([]byte("u"), 0)
	var raw [8]byte
	_, _ = b.Read(raw[:])
	want := uint64(raw[0]) | uint64(raw[1])<<8 | uint64(raw[2])<<16 | uint64(raw[3])<<24 |
		uint64(raw[4])<<32 | uint64(raw[5])<<40 | uint64(raw[6])<<48 | uint64(raw[7])<<56
	if got := a.Uint64(); got != want {
		t.Fatalf("Uint64 = %x, want %x", got, want)
	}
}

func BenchmarkStream(b *testing.B) {
	c := NewFromSeed([]byte("bench"), 0)
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		_, _ = c.Read(buf)
	}
}
