package constraint

import (
	"errors"
	"testing"

	"zaatar/internal/field"
)

// layerTestSystem builds, in canonical wire order (unbound 1..2, input 3,
// output 4):
//
//	w1 = x·x
//	w2 = w1 + 2
//	y  = w2·x
func layerTestSystem(f *field.Field) *GingerSystem {
	one := f.One()
	neg := f.Neg(one)
	two := f.Double(one)
	return &GingerSystem{
		NumVars: 4,
		In:      []int{3},
		Out:     []int{4},
		Cons: []GingerConstraint{
			{{Coeff: one, A: 3, B: 3}, {Coeff: neg, A: 1, B: 0}},
			{{Coeff: one, A: 1, B: 0}, {Coeff: two, A: 0, B: 0}, {Coeff: neg, A: 2, B: 0}},
			{{Coeff: one, A: 2, B: 3}, {Coeff: neg, A: 4, B: 0}},
		},
	}
}

func TestLayerStratifies(t *testing.T) {
	f := field.F128()
	lc, err := Layer(f, layerTestSystem(f))
	if err != nil {
		t.Fatalf("Layer: %v", err)
	}
	// Depths: w1 at 1, w2 at 2, y at 3, plus the output copy layer at 4.
	if got := lc.Depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
	if lc.NumInputs != 1 || lc.NumOutputs != 1 {
		t.Fatalf("io = (%d, %d), want (1, 1)", lc.NumInputs, lc.NumOutputs)
	}

	vals, err := lc.Eval(f, []field.Element{f.FromInt64(3)})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	out := vals[len(vals)-1]
	if len(out) != 1 || !f.Equal(out[0], f.FromInt64(33)) {
		t.Fatalf("y = %s, want 33 (w1=9, w2=11, y=33)", f.String(out[0]))
	}
	// Every non-output layer keeps the constant in slot 0.
	for i := 0; i < len(vals)-1; i++ {
		if !f.IsOne(vals[i][0]) {
			t.Fatalf("layer %d slot 0 = %s, want 1", i, f.String(vals[i][0]))
		}
	}
	if lc.WitnessLen() != 2+2+3+3+1 {
		// input [1,x]; L1 [1,w1]; L2 [1,w2,x]; L3 [1,y,?]... widths are
		// implementation detail; just cross-check against Widths.
		total := 0
		for _, w := range lc.Widths() {
			total += w
		}
		if total != lc.WitnessLen() {
			t.Fatalf("WitnessLen %d != Σ widths %d", lc.WitnessLen(), total)
		}
	}
}

func TestLayerRejectsAdvice(t *testing.T) {
	f := field.F128()
	one := f.One()
	neg := f.Neg(one)
	// b·b − b = 0 constrains b ∈ {0,1} but defines nothing.
	gs := &GingerSystem{
		NumVars: 2,
		In:      []int{1},
		Out:     []int{2},
		Cons: []GingerConstraint{
			{{Coeff: one, A: 2, B: 2}, {Coeff: neg, A: 2, B: 0}},
		},
	}
	if _, err := Layer(f, gs); !errors.Is(err, ErrNotLayered) {
		t.Fatalf("Layer = %v, want ErrNotLayered", err)
	}
}

func TestLayerRejectsPureCheck(t *testing.T) {
	f := field.F128()
	one := f.One()
	neg := f.Neg(one)
	// w1 defined twice over: second constraint is a redundant check.
	gs := &GingerSystem{
		NumVars: 2,
		In:      []int{1},
		Out:     []int{2},
		Cons: []GingerConstraint{
			{{Coeff: one, A: 1, B: 0}, {Coeff: neg, A: 2, B: 0}},
			{{Coeff: one, A: 1, B: 0}, {Coeff: neg, A: 2, B: 0}},
		},
	}
	if _, err := Layer(f, gs); !errors.Is(err, ErrNotLayered) {
		t.Fatalf("Layer = %v, want ErrNotLayered", err)
	}
}
