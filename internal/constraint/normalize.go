package constraint

import "zaatar/internal/field"

// Permutation maps old wire indices to new ones; perm[0] == 0 always (the
// constant wire never moves).
type Permutation []int

// Apply re-indexes a wire through the permutation.
func (p Permutation) Apply(wire int) int { return p[wire] }

// ApplyToAssignment re-orders an assignment vector (indexed by wire) into
// the permuted wire space.
func (p Permutation) ApplyToAssignment(w []field.Element) []field.Element {
	out := make([]field.Element, len(w))
	for old, v := range w {
		out[p[old]] = v
	}
	return out
}

// buildPerm computes the canonical wire order used by the PCPs (§A.1): the
// unbound variables Z occupy wires 1..n′, then inputs, then outputs.
func buildPerm(numVars int, in, out []int) Permutation {
	bound := make([]bool, numVars+1)
	for _, w := range in {
		bound[w] = true
	}
	for _, w := range out {
		bound[w] = true
	}
	perm := make(Permutation, numVars+1)
	next := 1
	for w := 1; w <= numVars; w++ {
		if !bound[w] {
			perm[w] = next
			next++
		}
	}
	for _, w := range in {
		perm[w] = next
		next++
	}
	for _, w := range out {
		perm[w] = next
		next++
	}
	return perm
}

func permLinComb(p Permutation, lc LinComb) LinComb {
	out := make(LinComb, len(lc))
	for i, t := range lc {
		out[i] = LinTerm{Coeff: t.Coeff, Var: p[t.Var]}
	}
	return out
}

// Normalize returns an equivalent system in canonical wire order (unbound
// variables first, then inputs, then outputs) together with the permutation
// that carries assignments into the new order.
func (s *QuadSystem) Normalize() (*QuadSystem, Permutation) {
	p := buildPerm(s.NumVars, s.In, s.Out)
	ns := &QuadSystem{
		NumVars: s.NumVars,
		In:      make([]int, len(s.In)),
		Out:     make([]int, len(s.Out)),
		Cons:    make([]QuadConstraint, len(s.Cons)),
	}
	for i, w := range s.In {
		ns.In[i] = p[w]
	}
	for i, w := range s.Out {
		ns.Out[i] = p[w]
	}
	for i, c := range s.Cons {
		ns.Cons[i] = QuadConstraint{
			A: permLinComb(p, c.A),
			B: permLinComb(p, c.B),
			C: permLinComb(p, c.C),
		}
	}
	return ns, p
}

// Normalize returns an equivalent Ginger system in canonical wire order.
func (s *GingerSystem) Normalize() (*GingerSystem, Permutation) {
	p := buildPerm(s.NumVars, s.In, s.Out)
	ns := &GingerSystem{
		NumVars: s.NumVars,
		In:      make([]int, len(s.In)),
		Out:     make([]int, len(s.Out)),
		Cons:    make([]GingerConstraint, len(s.Cons)),
	}
	for i, w := range s.In {
		ns.In[i] = p[w]
	}
	for i, w := range s.Out {
		ns.Out[i] = p[w]
	}
	for i, c := range s.Cons {
		nc := make(GingerConstraint, len(c))
		for j, t := range c {
			nc[j] = Term{Coeff: t.Coeff, A: p[t.A], B: p[t.B]}
		}
		ns.Cons[i] = nc
	}
	return ns, p
}

// IsCanonical reports whether the system's wires already follow the
// canonical order: unbound 1..n′, inputs n′+1.., outputs last.
func (s *QuadSystem) IsCanonical() bool {
	n := s.NumVars
	nz := s.NumUnbound()
	for i, w := range s.In {
		if w != nz+1+i {
			return false
		}
	}
	for i, w := range s.Out {
		if w != nz+len(s.In)+1+i {
			return false
		}
	}
	_ = n
	return true
}
