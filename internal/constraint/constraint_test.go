package constraint

import (
	"math/rand"
	"testing"

	"zaatar/internal/field"
)

// decrementBy3 builds the §2.1 example {X − Z = 0, Y − (Z − 3) = 0}:
// wire 1 = X (input), wire 2 = Y (output), wire 3 = Z.
func decrementBy3(f *field.Field) *GingerSystem {
	one := f.One()
	return &GingerSystem{
		NumVars: 3,
		In:      []int{1},
		Out:     []int{2},
		Cons: []GingerConstraint{
			{{Coeff: one, A: 1}, {Coeff: f.Neg(one), A: 3}},
			{{Coeff: one, A: 2}, {Coeff: f.Neg(one), A: 3}, {Coeff: f.FromUint64(3), A: 0}},
		},
	}
}

// mulAddSystem builds {w3 = w1·w2, w4 = w3 + w1, 2·w1·w2 + w2·w2 − w5 = 0}
// with w1, w2 inputs and w4, w5 outputs — it has repeated and distinct
// degree-2 terms for the K2 accounting.
func mulAddSystem(f *field.Field) *GingerSystem {
	one := f.One()
	neg := f.Neg(one)
	return &GingerSystem{
		NumVars: 5,
		In:      []int{1, 2},
		Out:     []int{4, 5},
		Cons: []GingerConstraint{
			{{Coeff: one, A: 1, B: 2}, {Coeff: neg, A: 3}},
			{{Coeff: one, A: 3}, {Coeff: one, A: 1}, {Coeff: neg, A: 4}},
			{{Coeff: f.FromUint64(2), A: 1, B: 2}, {Coeff: one, A: 2, B: 2}, {Coeff: neg, A: 5}},
		},
	}
}

func mulAddWitness(f *field.Field, x1, x2 uint64) []field.Element {
	w := make([]field.Element, 6)
	w[0] = f.One()
	w[1] = f.FromUint64(x1)
	w[2] = f.FromUint64(x2)
	w[3] = f.FromUint64(x1 * x2)
	w[4] = f.FromUint64(x1*x2 + x1)
	w[5] = f.FromUint64(2*x1*x2 + x2*x2)
	return w
}

func TestDecrementBy3(t *testing.T) {
	f := field.F128()
	s := decrementBy3(f)
	// y = x - 3 with x = 10: z = 10, y = 7.
	w := []field.Element{f.One(), f.FromUint64(10), f.FromUint64(7), f.FromUint64(10)}
	if err := s.Check(f, w); err != nil {
		t.Fatalf("valid witness rejected: %v", err)
	}
	// y = 8 is wrong.
	w[2] = f.FromUint64(8)
	if err := s.Check(f, w); err == nil {
		t.Fatal("invalid witness accepted")
	}
}

func TestCheckRejectsMalformedAssignment(t *testing.T) {
	f := field.F128()
	s := decrementBy3(f)
	if err := s.Check(f, make([]field.Element, 2)); err == nil {
		t.Error("short assignment accepted")
	}
	w := make([]field.Element, 4)
	w[0] = f.FromUint64(2) // not 1
	if err := s.Check(f, w); err == nil {
		t.Error("assignment with w[0] != 1 accepted")
	}
}

func TestStats(t *testing.T) {
	f := field.F128()
	s := mulAddSystem(f)
	st := s.Stats()
	if st.NumVars != 5 || st.NumConstraints != 3 {
		t.Fatalf("sizes: %+v", st)
	}
	if st.NumUnbound != 1 {
		t.Fatalf("NumUnbound = %d, want 1", st.NumUnbound)
	}
	if st.K != 2+3+3 {
		t.Errorf("K = %d, want 8", st.K)
	}
	// Distinct degree-2 terms: (1,2) and (2,2).
	if st.K2 != 2 {
		t.Errorf("K2 = %d, want 2", st.K2)
	}
}

func TestToQuadSizes(t *testing.T) {
	f := field.F128()
	gs := mulAddSystem(f)
	st := gs.Stats()
	qs := ToQuad(f, gs)
	if got, want := qs.NumVars, gs.NumVars+st.K2; got != want {
		t.Errorf("|Z_zaatar| relation: vars = %d, want %d", got, want)
	}
	if got, want := qs.NumConstraints(), gs.NumConstraints()+st.K2; got != want {
		t.Errorf("|C_zaatar| relation: cons = %d, want %d", got, want)
	}
}

func TestToQuadPreservesSatisfiability(t *testing.T) {
	f := field.F128()
	gs := mulAddSystem(f)
	qs := ToQuad(f, gs)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		x1, x2 := uint64(rng.Intn(1000)), uint64(rng.Intn(1000))
		w := mulAddWitness(f, x1, x2)
		if err := gs.Check(f, w); err != nil {
			t.Fatalf("ginger witness: %v", err)
		}
		qw := ExtendAssignment(f, gs, qs, w)
		if err := qs.Check(f, qw); err != nil {
			t.Fatalf("quad witness: %v", err)
		}
	}
}

func TestToQuadRejectsBadWitness(t *testing.T) {
	f := field.F128()
	gs := mulAddSystem(f)
	qs := ToQuad(f, gs)
	w := mulAddWitness(f, 3, 4)
	w[4] = f.Add(w[4], f.One()) // corrupt an output
	qw := ExtendAssignment(f, gs, qs, w)
	if err := qs.Check(f, qw); err == nil {
		t.Fatal("quad system accepted corrupted witness")
	}
}

func TestPaperTransformExample(t *testing.T) {
	// §4's example: {3·Z1Z2 + 2·Z3Z4 + Z5 − Z6 = 0} becomes three
	// quadratic-form constraints with two new variables.
	f := field.F128()
	one := f.One()
	gs := &GingerSystem{
		NumVars: 6,
		Cons: []GingerConstraint{{
			{Coeff: f.FromUint64(3), A: 1, B: 2},
			{Coeff: f.FromUint64(2), A: 3, B: 4},
			{Coeff: one, A: 5},
			{Coeff: f.Neg(one), A: 6},
		}},
	}
	qs := ToQuad(f, gs)
	if qs.NumVars != 8 || len(qs.Cons) != 3 {
		t.Fatalf("transform shape: vars=%d cons=%d, want 8, 3", qs.NumVars, len(qs.Cons))
	}
	// Witness: z1..z6 with z5 = z6 - 3z1z2 - 2z3z4.
	w := make([]field.Element, 7)
	w[0] = one
	for i := 1; i <= 4; i++ {
		w[i] = f.FromUint64(uint64(i + 1))
	}
	w[6] = f.FromUint64(100)
	z1z2 := f.Mul(w[1], w[2])
	z3z4 := f.Mul(w[3], w[4])
	w[5] = f.Sub(w[6], f.Add(f.Mul(f.FromUint64(3), z1z2), f.Mul(f.FromUint64(2), z3z4)))
	if err := gs.Check(f, w); err != nil {
		t.Fatal(err)
	}
	qw := ExtendAssignment(f, gs, qs, w)
	if err := qs.Check(f, qw); err != nil {
		t.Fatal(err)
	}
}

func TestProofVectorSizes(t *testing.T) {
	f := field.F128()
	gs := mulAddSystem(f)
	qs := ToQuad(f, gs)
	ug, uz := ProofVectorSizes(gs, qs)
	nz := gs.NumUnbound()
	if ug != nz+nz*nz {
		t.Errorf("|u_ginger| = %d, want %d", ug, nz+nz*nz)
	}
	if uz != qs.NumUnbound()+qs.NumConstraints() {
		t.Errorf("|u_zaatar| = %d", uz)
	}
}

func TestNormalizeQuad(t *testing.T) {
	f := field.F128()
	gs := mulAddSystem(f)
	qs := ToQuad(f, gs)
	ns, p := qs.Normalize()
	if !ns.IsCanonical() {
		t.Fatal("normalized system is not canonical")
	}
	if qs.IsCanonical() {
		t.Log("original system happened to be canonical") // not an error
	}
	w := mulAddWitness(f, 6, 7)
	qw := ExtendAssignment(f, gs, qs, w)
	nw := p.ApplyToAssignment(qw)
	if err := ns.Check(f, nw); err != nil {
		t.Fatalf("normalized witness rejected: %v", err)
	}
	// Permutation must be a bijection fixing 0.
	if p[0] != 0 {
		t.Error("perm moved the constant wire")
	}
	seen := make(map[int]bool)
	for _, v := range p {
		if seen[v] {
			t.Fatal("permutation is not injective")
		}
		seen[v] = true
	}
}

func TestNormalizeGinger(t *testing.T) {
	f := field.F128()
	gs := mulAddSystem(f)
	ns, p := gs.Normalize()
	w := mulAddWitness(f, 2, 9)
	nw := p.ApplyToAssignment(w)
	if err := ns.Check(f, nw); err != nil {
		t.Fatalf("normalized ginger witness rejected: %v", err)
	}
	// Unbound wire (old 3) must now be wire 1.
	if p[3] != 1 {
		t.Errorf("unbound wire mapped to %d, want 1", p[3])
	}
}

func TestTermDegree(t *testing.T) {
	f := field.F128()
	one := f.One()
	cases := []struct {
		t    Term
		want int
	}{
		{Term{one, 0, 0}, 0},
		{Term{one, 1, 0}, 1},
		{Term{one, 0, 2}, 1},
		{Term{one, 1, 2}, 2},
	}
	for i, c := range cases {
		if got := c.t.Degree(); got != c.want {
			t.Errorf("case %d: degree = %d, want %d", i, got, c.want)
		}
	}
}
