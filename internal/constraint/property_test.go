package constraint

import (
	"math/rand"
	"testing"

	"zaatar/internal/field"
)

// randSatisfiableSystem generates a random Ginger system together with a
// satisfying assignment, by drawing a random assignment first and then
// constructing constraints that hold on it (each random constraint gets a
// constant correction term).
func randSatisfiableSystem(f *field.Field, rng *rand.Rand, nVars, nCons int) (*GingerSystem, []field.Element) {
	w := make([]field.Element, nVars+1)
	w[0] = f.One()
	for i := 1; i <= nVars; i++ {
		w[i] = f.FromInt64(int64(rng.Intn(2000) - 1000))
	}
	nIn := 1 + rng.Intn(2)
	nOut := 1 + rng.Intn(2)
	gs := &GingerSystem{NumVars: nVars}
	for i := 0; i < nIn; i++ {
		gs.In = append(gs.In, i+1)
	}
	for i := 0; i < nOut; i++ {
		gs.Out = append(gs.Out, nIn+i+1)
	}
	nz := nVars - nIn - nOut // unbound wires are nIn+nOut+1..nVars

	for j := 0; j < nCons; j++ {
		var c GingerConstraint
		residual := f.Zero()
		nTerms := 1 + rng.Intn(4)
		for t := 0; t < nTerms; t++ {
			coeff := f.FromInt64(int64(rng.Intn(19) - 9))
			var a, b int
			if rng.Intn(2) == 0 && nz > 0 {
				// degree-2 term over unbound wires only (the PCP batching
				// invariant the compiler maintains).
				a = nIn + nOut + 1 + rng.Intn(nz)
				b = nIn + nOut + 1 + rng.Intn(nz)
			} else {
				a = rng.Intn(nVars + 1)
				b = 0
			}
			c = append(c, Term{Coeff: coeff, A: a, B: b})
			residual = f.Add(residual, f.Mul(coeff, f.Mul(w[a], w[b])))
		}
		// Constant correction makes the constraint hold at w.
		c = append(c, Term{Coeff: f.Neg(residual), A: 0, B: 0})
		gs.Cons = append(gs.Cons, c)
	}
	return gs, w
}

// TestToQuadPreservesSatisfiabilityRandom is the §4 transform's core
// property over random systems: satisfying assignments extend, and
// corrupted ones are still rejected.
func TestToQuadPreservesSatisfiabilityRandom(t *testing.T) {
	f := field.F128()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		nVars := 5 + rng.Intn(15)
		nCons := 1 + rng.Intn(10)
		gs, w := randSatisfiableSystem(f, rng, nVars, nCons)
		if err := gs.Check(f, w); err != nil {
			t.Fatalf("trial %d: generator produced unsatisfied system: %v", trial, err)
		}
		qs := ToQuad(f, gs)
		qw := ExtendAssignment(f, gs, qs, w)
		if err := qs.Check(f, qw); err != nil {
			t.Fatalf("trial %d: transform broke satisfiability: %v", trial, err)
		}
		// Size relations.
		st := gs.Stats()
		if qs.NumVars != gs.NumVars+st.K2 || qs.NumConstraints() != gs.NumConstraints()+st.K2 {
			t.Fatalf("trial %d: §4 size relations violated", trial)
		}
		// Corrupt a random wire; at least one of the systems must notice
		// (both should unless the wire is unused).
		bad := append([]field.Element(nil), qw...)
		wire := 1 + rng.Intn(gs.NumVars)
		bad[wire] = f.Add(bad[wire], f.One())
		usedSomewhere := false
		for _, c := range gs.Cons {
			for _, term := range c {
				if f.IsZero(term.Coeff) {
					continue // a zero-coefficient term doesn't constrain the wire
				}
				if term.A == wire || term.B == wire {
					usedSomewhere = true
				}
			}
		}
		if usedSomewhere && qs.Check(f, bad) == nil {
			// The corruption might cancel in every constraint only with
			// negligible probability for random systems; treat as failure.
			t.Fatalf("trial %d: corrupted wire %d accepted by quad system", trial, wire)
		}
	}
}

// TestNormalizeRoundTripRandom: normalization is a satisfiability-preserving
// bijection on wires for random systems.
func TestNormalizeRoundTripRandom(t *testing.T) {
	f := field.F128()
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 40; trial++ {
		gs, w := randSatisfiableSystem(f, rng, 6+rng.Intn(10), 1+rng.Intn(8))
		ns, perm := gs.Normalize()
		nw := perm.ApplyToAssignment(w)
		if err := ns.Check(f, nw); err != nil {
			t.Fatalf("trial %d: normalized system unsatisfied: %v", trial, err)
		}
		if ns.NumUnbound() != gs.NumUnbound() || ns.NumConstraints() != gs.NumConstraints() {
			t.Fatalf("trial %d: normalization changed sizes", trial)
		}
		qs := ToQuad(f, gs)
		nqs, qperm := qs.Normalize()
		if !nqs.IsCanonical() {
			t.Fatalf("trial %d: normalized quad not canonical", trial)
		}
		qw := ExtendAssignment(f, gs, qs, w)
		if err := nqs.Check(f, qperm.ApplyToAssignment(qw)); err != nil {
			t.Fatalf("trial %d: normalized quad unsatisfied: %v", trial, err)
		}
	}
}
