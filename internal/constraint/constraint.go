// Package constraint represents computations as algebraic constraint
// systems over a prime field, in the two dialects the paper uses:
//
//   - Ginger constraints (§2.2): each constraint is a sum of degree ≤ 2
//     terms that must equal zero, e.g. {3·Z1Z2 + 2·Z3Z4 + Z5 − Z6 = 0}.
//   - Zaatar constraints (§4, "quadratic form"): each constraint is
//     pA(W)·pB(W) = pC(W) with degree-1 polynomials pA, pB, pC — the shape
//     QAPs encode.
//
// The package also implements the §4 transform from Ginger to Zaatar
// constraints (replace every distinct degree-2 term with a fresh variable
// plus a product constraint) and the K/K₂ accounting that drives the
// cost-benefit analysis of Figure 3.
//
// Wire numbering: wire 0 is the constant 1; wires 1..NumVars are the
// computation's variables. An Assignment w assigns a field element to every
// wire with w[0] = 1. Inputs (X) and outputs (Y) are distinguished wire
// sets; all remaining wires are the unbound variables Z of §2.1.
package constraint

import (
	"fmt"

	"zaatar/internal/field"
)

// Term is coeff·w_A·w_B. A or B may be 0, in which case the corresponding
// factor is the constant 1: (A=0, B=0) is a constant term, exactly one of
// them 0 is a degree-1 term, both non-zero is a degree-2 term.
type Term struct {
	Coeff field.Element
	A, B  int
}

// Degree returns 0, 1, or 2.
func (t Term) Degree() int {
	switch {
	case t.A != 0 && t.B != 0:
		return 2
	case t.A != 0 || t.B != 0:
		return 1
	default:
		return 0
	}
}

// GingerConstraint is Σ terms = 0.
type GingerConstraint []Term

// LinTerm is coeff·w_Var (Var may be 0 for the constant slot).
type LinTerm struct {
	Coeff field.Element
	Var   int
}

// LinComb is a degree-1 polynomial Σ coeff·w_var.
type LinComb []LinTerm

// Eval evaluates the linear combination on an assignment.
func (lc LinComb) Eval(f *field.Field, w []field.Element) field.Element {
	acc := f.Zero()
	for _, t := range lc {
		acc = f.Add(acc, f.Mul(t.Coeff, w[t.Var]))
	}
	return acc
}

// QuadConstraint is pA·pB = pC in quadratic form.
type QuadConstraint struct {
	A, B, C LinComb
}

// GingerSystem is a set of Ginger (degree-2) constraints.
type GingerSystem struct {
	NumVars int   // wires 1..NumVars
	In      []int // input wire indices (the X variables)
	Out     []int // output wire indices (the Y variables)
	Cons    []GingerConstraint
}

// QuadSystem is a set of quadratic-form constraints (Zaatar's dialect).
type QuadSystem struct {
	NumVars int
	In      []int
	Out     []int
	Cons    []QuadConstraint
}

// NumConstraints returns |C|.
func (s *GingerSystem) NumConstraints() int { return len(s.Cons) }

// NumConstraints returns |C|.
func (s *QuadSystem) NumConstraints() int { return len(s.Cons) }

// NumUnbound returns |Z|: the variables that are neither inputs nor outputs.
func (s *GingerSystem) NumUnbound() int { return s.NumVars - len(s.In) - len(s.Out) }

// NumUnbound returns |Z|.
func (s *QuadSystem) NumUnbound() int { return s.NumVars - len(s.In) - len(s.Out) }

// Check verifies that w (indexed by wire, w[0] must be 1) satisfies every
// constraint; it returns an error naming the first violated constraint.
func (s *GingerSystem) Check(f *field.Field, w []field.Element) error {
	if err := checkAssignment(f, w, s.NumVars); err != nil {
		return err
	}
	for j, c := range s.Cons {
		acc := f.Zero()
		for _, t := range c {
			acc = f.Add(acc, f.Mul(t.Coeff, f.Mul(w[t.A], w[t.B])))
		}
		if !f.IsZero(acc) {
			return fmt.Errorf("constraint: ginger constraint %d violated (residual %v)", j, f.ToBig(acc))
		}
	}
	return nil
}

// Check verifies that w satisfies every quadratic-form constraint.
func (s *QuadSystem) Check(f *field.Field, w []field.Element) error {
	if err := checkAssignment(f, w, s.NumVars); err != nil {
		return err
	}
	for j, c := range s.Cons {
		lhs := f.Mul(c.A.Eval(f, w), c.B.Eval(f, w))
		rhs := c.C.Eval(f, w)
		if !f.Equal(lhs, rhs) {
			return fmt.Errorf("constraint: quadratic constraint %d violated", j)
		}
	}
	return nil
}

func checkAssignment(f *field.Field, w []field.Element, numVars int) error {
	if len(w) != numVars+1 {
		return fmt.Errorf("constraint: assignment has %d entries, want %d", len(w), numVars+1)
	}
	if !f.IsOne(w[0]) {
		return fmt.Errorf("constraint: w[0] must be the constant 1")
	}
	return nil
}

// Stats summarizes the size quantities of §4 / Figure 9 for a Ginger
// system: K is the total number of additive terms across all constraints
// and K2 is the number of distinct degree-2 terms.
type Stats struct {
	NumVars        int // |Z_ginger| + |x| + |y|
	NumUnbound     int // |Z_ginger|
	NumConstraints int // |C_ginger|
	K              int
	K2             int
}

// Stats computes the K/K₂ accounting for the system.
func (s *GingerSystem) Stats() Stats {
	seen := make(map[[2]int]bool)
	k := 0
	for _, c := range s.Cons {
		k += len(c)
		for _, t := range c {
			if t.Degree() == 2 {
				key := [2]int{t.A, t.B}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				seen[key] = true
			}
		}
	}
	return Stats{
		NumVars:        s.NumVars,
		NumUnbound:     s.NumUnbound(),
		NumConstraints: len(s.Cons),
		K:              k,
		K2:             len(seen),
	}
}

// ProofVectorSizes returns (|u_ginger|, |u_zaatar|) for the computation:
// Ginger's proof vector is |Z|+|Z|² over the unbound variables, Zaatar's is
// |Z_zaatar| + |C_zaatar| (§3, §4).
func ProofVectorSizes(gs *GingerSystem, qs *QuadSystem) (uGinger, uZaatar int) {
	nz := gs.NumUnbound()
	return nz + nz*nz, qs.NumUnbound() + qs.NumConstraints()
}

// ToQuad converts a Ginger system into quadratic form using the §4
// transform: every distinct degree-2 term z_i·z_j across the whole system is
// replaced by a fresh variable z', defined once by a product constraint
// z_i·z_j = z'; each original constraint, now degree-1, becomes the
// quadratic-form constraint (linear)·(1) = 0.
//
// The resulting system satisfies |Z_zaatar| = |Z_ginger| + K2 and
// |C_zaatar| = |C_ginger| + K2 as in §4.
func ToQuad(f *field.Field, gs *GingerSystem) *QuadSystem {
	qs := &QuadSystem{
		NumVars: gs.NumVars,
		In:      append([]int(nil), gs.In...),
		Out:     append([]int(nil), gs.Out...),
	}
	prodVar := make(map[[2]int]int)
	var prodCons []QuadConstraint
	one := LinComb{{Coeff: f.One(), Var: 0}}

	for _, c := range gs.Cons {
		var lin LinComb
		for _, t := range c {
			switch t.Degree() {
			case 2:
				key := [2]int{t.A, t.B}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				v, ok := prodVar[key]
				if !ok {
					qs.NumVars++
					v = qs.NumVars
					prodVar[key] = v
					prodCons = append(prodCons, QuadConstraint{
						A: LinComb{{Coeff: f.One(), Var: key[0]}},
						B: LinComb{{Coeff: f.One(), Var: key[1]}},
						C: LinComb{{Coeff: f.One(), Var: v}},
					})
				}
				lin = append(lin, LinTerm{Coeff: t.Coeff, Var: v})
			case 1:
				v := t.A
				if v == 0 {
					v = t.B
				}
				lin = append(lin, LinTerm{Coeff: t.Coeff, Var: v})
			default:
				lin = append(lin, LinTerm{Coeff: t.Coeff, Var: 0})
			}
		}
		qs.Cons = append(qs.Cons, QuadConstraint{A: lin, B: one, C: nil})
	}
	qs.Cons = append(qs.Cons, prodCons...)
	return qs
}

// ExtendAssignment completes a satisfying assignment of the original Ginger
// system to the quadratic system produced by ToQuad by computing the product
// variables. The input w must have gs.NumVars+1 entries; the result has
// qs.NumVars+1.
func ExtendAssignment(f *field.Field, gs *GingerSystem, qs *QuadSystem, w []field.Element) []field.Element {
	out := make([]field.Element, qs.NumVars+1)
	copy(out, w)
	// Product constraints are emitted after the linearized originals, in
	// creation order, and each defines exactly the next fresh variable.
	next := gs.NumVars + 1
	for _, c := range qs.Cons[len(gs.Cons):] {
		a := c.A.Eval(f, out)
		b := c.B.Eval(f, out)
		out[next] = f.Mul(a, b)
		next++
	}
	return out
}
