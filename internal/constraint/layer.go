package constraint

import (
	"errors"
	"fmt"

	"zaatar/internal/field"
)

// This file implements the circuit-layering pass behind the sum-check/GKR
// backend (Thaler, "Time-Optimal Interactive Proofs for Circuit
// Evaluation"): it recognizes when a Ginger constraint system stratifies
// into a layered arithmetic circuit — every wire uniquely defined, from
// already-defined wires, by exactly one constraint — and materializes that
// circuit with explicit pass-through (copy) gates so every gate reads only
// from the layer directly below it.
//
// The pass succeeds precisely for deterministic straight-line arithmetic
// (the compiler's add/mul/affine constraint shapes: dense matmul chains and
// the polynomial benchprogs). It fails — deliberately — for programs whose
// constraint systems carry nondeterministic advice, e.g. the bit
// decompositions behind comparisons (b² − b = 0 does not define b), since
// those wires have no gate semantics. Callers treat ErrNotLayered as "this
// program has no cheap sum-check lane" and fall back to a linear PCP.

// ErrNotLayered reports a constraint system that does not stratify into a
// layered arithmetic circuit.
var ErrNotLayered = errors.New("constraint: system does not stratify into a layered circuit")

// Circuit size guards: beyond these the materialized circuit (with its copy
// gates) stops being the cheap lane, mirroring MaxGingerProofVars.
const (
	maxCircuitEntries = 1 << 22
	maxLayerWidth     = 1 << 20
)

// GateTerm is one addend of a gate's value in a layered circuit:
//
//	value[G] += C · prev[U] · prev[V]
//
// with U, V indexing the previous layer's slots. Slot 0 of every layer
// except the output layer holds the constant 1, so affine terms are
// expressed as products against slot 0 (U·const or const·const).
type GateTerm struct {
	G, U, V int
	C       field.Element
}

// CircuitLayer is one computed layer: Width gates, each the sum of its
// Terms (a gate with no terms is zero).
type CircuitLayer struct {
	Width int
	Terms []GateTerm
}

// LayeredCircuit is a layered arithmetic circuit equivalent to a
// (stratifiable) Ginger constraint system. The input layer is implicit:
// slot 0 holds the constant 1 and slots 1..NumInputs the program inputs in
// canonical io order. Layers[0] reads from the input layer, each later
// layer from its predecessor, and the final layer holds exactly the
// program's outputs (in io order) — so a verifier can evaluate the boundary
// layers' multilinear extensions from the io values alone.
type LayeredCircuit struct {
	NumInputs  int
	NumOutputs int
	Layers     []CircuitLayer
}

// InputWidth is the implicit input layer's width (constant + inputs).
func (lc *LayeredCircuit) InputWidth() int { return lc.NumInputs + 1 }

// Depth is the number of computed layers (the output layer included).
func (lc *LayeredCircuit) Depth() int { return len(lc.Layers) }

// Widths returns every layer's width, input layer first.
func (lc *LayeredCircuit) Widths() []int {
	out := make([]int, 0, len(lc.Layers)+1)
	out = append(out, lc.InputWidth())
	for _, ly := range lc.Layers {
		out = append(out, ly.Width)
	}
	return out
}

// WitnessLen is the total number of wire values across all layers — the
// length of the flattened evaluation the sum-check prover works from.
func (lc *LayeredCircuit) WitnessLen() int {
	n := lc.InputWidth()
	for _, ly := range lc.Layers {
		n += ly.Width
	}
	return n
}

// Stats summarizes the circuit for the cost model.
type LayerStats struct {
	Depth      int // computed layers
	MaxWidth   int
	TotalGates int // Σ widths (incl. input layer)
	TotalTerms int // Σ gate terms
}

// Stats computes the circuit's size summary.
func (lc *LayeredCircuit) Stats() LayerStats {
	st := LayerStats{Depth: len(lc.Layers), MaxWidth: lc.InputWidth(), TotalGates: lc.InputWidth()}
	for _, ly := range lc.Layers {
		st.TotalGates += ly.Width
		st.TotalTerms += len(ly.Terms)
		if ly.Width > st.MaxWidth {
			st.MaxWidth = ly.Width
		}
	}
	return st
}

// Eval evaluates the circuit on field-encoded inputs, returning every
// layer's values (input layer first; the last slice is the outputs in io
// order). This is the sum-check prover's entire "solve" step: field
// arithmetic only, no constraint solving and no cryptography.
func (lc *LayeredCircuit) Eval(f *field.Field, inputs []field.Element) ([][]field.Element, error) {
	if len(inputs) != lc.NumInputs {
		return nil, fmt.Errorf("constraint: circuit wants %d inputs, got %d", lc.NumInputs, len(inputs))
	}
	vals := make([][]field.Element, len(lc.Layers)+1)
	in := make([]field.Element, lc.InputWidth())
	in[0] = f.One()
	copy(in[1:], inputs)
	vals[0] = in
	for i, ly := range lc.Layers {
		prev := vals[i]
		out := make([]field.Element, ly.Width)
		for _, t := range ly.Terms {
			out[t.G] = f.Add(out[t.G], f.Mul(t.C, f.Mul(prev[t.U], prev[t.V])))
		}
		vals[i+1] = out
	}
	return vals, nil
}

// wireDef records how a wire is computed: the constraint that defines it
// and the index of the defining (degree-1) term within that constraint.
type wireDef struct {
	cons int
	term int
}

// Layer stratifies gs into a layered circuit, or returns ErrNotLayered.
//
// A constraint defines wire w when w is its only not-yet-defined wire,
// appears exactly once, in a degree-1 term with a non-zero coefficient:
// the constraint c_w·w + Σ c_t·a_t·b_t = 0 then reads as the gate
// w = −(1/c_w)·Σ c_t·a_t·b_t. Every constraint must serve as exactly one
// wire's definition — a leftover constraint would be a consistency check
// the circuit evaluation does not enforce, so the circuit would no longer
// be semantically equivalent to the system.
func Layer(f *field.Field, gs *GingerSystem) (*LayeredCircuit, error) {
	depth := make([]int, gs.NumVars+1)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	for _, w := range gs.In {
		depth[w] = 0
	}
	defs := make([]wireDef, gs.NumVars+1)
	used := make([]bool, len(gs.Cons))

	for changed := true; changed; {
		changed = false
		for ci, c := range gs.Cons {
			if used[ci] {
				continue
			}
			// Find the constraint's unknown wires.
			w, occ, defTerm, multi := -1, 0, -1, false
			for ti, t := range c {
				for _, a := range [2]int{t.A, t.B} {
					if a == 0 || depth[a] >= 0 {
						continue
					}
					if w == -1 {
						w = a
					} else if a != w {
						multi = true
					}
					occ++
					if t.Degree() == 1 {
						defTerm = ti
					}
				}
			}
			if multi || w == -1 || occ != 1 || defTerm == -1 || f.IsZero(c[defTerm].Coeff) {
				continue
			}
			d := 1
			for ti, t := range c {
				if ti == defTerm {
					continue
				}
				if nd := depth[t.A] + 1; nd > d {
					d = nd
				}
				if nd := depth[t.B] + 1; nd > d {
					d = nd
				}
			}
			depth[w] = d
			defs[w] = wireDef{cons: ci, term: defTerm}
			used[ci] = true
			changed = true
		}
	}

	for w := 1; w <= gs.NumVars; w++ {
		if depth[w] < 0 {
			return nil, fmt.Errorf("%w: wire %d has no defining constraint (nondeterministic advice?)", ErrNotLayered, w)
		}
	}
	for ci, u := range used {
		if !u {
			return nil, fmt.Errorf("%w: constraint %d is a pure check, not a definition", ErrNotLayered, ci)
		}
	}

	// D is the deepest defined wire; the explicit output-copy layer sits at
	// depth D+1 so the final layer holds exactly the outputs.
	maxD := 0
	for w := 1; w <= gs.NumVars; w++ {
		if depth[w] > maxD {
			maxD = depth[w]
		}
	}

	// need[w] is the last layer index at which w's value must be present:
	// one below every gate that reads it, and layer D for the outputs.
	need := append([]int(nil), depth...)
	for w := 1; w <= gs.NumVars; w++ {
		if depth[w] == 0 {
			continue
		}
		c := gs.Cons[defs[w].cons]
		for ti, t := range c {
			if ti == defs[w].term {
				continue
			}
			for _, a := range [2]int{t.A, t.B} {
				if a != 0 && depth[w]-1 > need[a] {
					need[a] = depth[w] - 1
				}
			}
		}
	}
	for _, ow := range gs.Out {
		if maxD > need[ow] {
			need[ow] = maxD
		}
	}

	// Layer membership and slot assignment. Layer 0 is fixed to
	// [1, inputs...] in io order; deeper layers get slot 0 = constant, then
	// member wires in ascending id order.
	if len(gs.In)+1 > maxLayerWidth {
		return nil, fmt.Errorf("%w: input layer width %d exceeds cap", ErrNotLayered, len(gs.In)+1)
	}
	posPrev := make(map[int]int, len(gs.In)+1)
	posPrev[0] = 0
	for i, w := range gs.In {
		posPrev[w] = i + 1
	}

	members := make([][]int, maxD+1)
	entries := len(gs.In) + 1
	for w := 1; w <= gs.NumVars; w++ {
		if depth[w] == 0 {
			continue
		}
		for d := depth[w]; d <= need[w]; d++ {
			members[d] = append(members[d], w)
			if entries++; entries > maxCircuitEntries {
				return nil, fmt.Errorf("%w: circuit exceeds %d entries", ErrNotLayered, maxCircuitEntries)
			}
		}
	}
	// Input wires needed above layer 0 ride the same copy mechanism.
	for _, w := range gs.In {
		for d := 1; d <= need[w]; d++ {
			members[d] = append(members[d], w)
			if entries++; entries > maxCircuitEntries {
				return nil, fmt.Errorf("%w: circuit exceeds %d entries", ErrNotLayered, maxCircuitEntries)
			}
		}
	}

	lc := &LayeredCircuit{NumInputs: len(gs.In), NumOutputs: len(gs.Out)}
	one := f.One()
	for d := 1; d <= maxD; d++ {
		ws := members[d]
		sortInts(ws)
		if len(ws)+1 > maxLayerWidth {
			return nil, fmt.Errorf("%w: layer %d width %d exceeds cap", ErrNotLayered, d, len(ws)+1)
		}
		pos := make(map[int]int, len(ws)+1)
		pos[0] = 0
		layer := CircuitLayer{Width: len(ws) + 1}
		layer.Terms = append(layer.Terms, GateTerm{G: 0, U: 0, V: 0, C: one}) // constant slot
		for i, w := range ws {
			g := i + 1
			pos[w] = g
			if depth[w] != d {
				// Pass-through: copy w's value up from the layer below.
				u, ok := posPrev[w]
				if !ok {
					return nil, fmt.Errorf("constraint: internal: wire %d missing from layer %d", w, d-1)
				}
				layer.Terms = append(layer.Terms, GateTerm{G: g, U: u, V: 0, C: one})
				continue
			}
			c := gs.Cons[defs[w].cons]
			scale := f.Neg(f.Inv(c[defs[w].term].Coeff))
			for ti, t := range c {
				if ti == defs[w].term {
					continue
				}
				u, okU := posPrev[t.A]
				v, okV := posPrev[t.B]
				if !okU || !okV {
					return nil, fmt.Errorf("constraint: internal: operand of wire %d missing from layer %d", w, d-1)
				}
				layer.Terms = append(layer.Terms, GateTerm{G: g, U: u, V: v, C: f.Mul(scale, t.Coeff)})
			}
		}
		lc.Layers = append(lc.Layers, layer)
		posPrev = pos
	}

	// Output layer: exactly the outputs, in io order, copied from below.
	out := CircuitLayer{Width: len(gs.Out)}
	for k, ow := range gs.Out {
		u, ok := posPrev[ow]
		if !ok {
			return nil, fmt.Errorf("constraint: internal: output wire %d missing from layer %d", ow, maxD)
		}
		out.Terms = append(out.Terms, GateTerm{G: k, U: u, V: 0, C: one})
	}
	lc.Layers = append(lc.Layers, out)
	return lc, nil
}

func sortInts(s []int) {
	// insertion sort keeps the dependency surface small; member lists are
	// built in ascending passes so they are nearly sorted already.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
