// Package pcp implements the two linear PCPs of the paper:
//
//   - the QAP-based Zaatar PCP of Figure 10 / Appendix A — linearity tests
//     plus a divisibility-correction test against proof oracles
//     π_z(·) = ⟨·, z⟩ and π_h(·) = ⟨·, h⟩; and
//   - the classical linear PCP of Arora et al. used by Ginger (§2.2) —
//     linearity tests, quadratic-correction tests and a circuit test against
//     proof oracles π₁(·) = ⟨·, z⟩ and π₂(·) = ⟨·, z⊗z⟩.
//
// Both produce concrete query vectors that the argument layer (internal/vc)
// routes through the linear commitment protocol; this package itself never
// talks to a prover, it only builds queries and checks responses, so it can
// be tested directly against in-memory oracles.
package pcp

import (
	"math"
)

// Params sets the repetition counts controlling soundness (§A.2).
type Params struct {
	// RhoLin is the number of linearity-test iterations per PCP repetition
	// (ρ_lin in the paper; 20 in production).
	RhoLin int
	// Rho is the number of outer PCP repetitions (ρ; 8 in production).
	Rho int
}

// DefaultParams returns the production parameters of §A.2: ρ_lin = 20,
// ρ = 8, giving soundness error κ^ρ < 9.6×10⁻⁷ with κ = 0.177.
func DefaultParams() Params { return Params{RhoLin: 20, Rho: 8} }

// TestParams returns small parameters for fast tests; the soundness error
// is larger but still comfortably catches the deterministic cheats tests
// exercise.
func TestParams() Params { return Params{RhoLin: 2, Rho: 2} }

// Delta is the soundness-analysis parameter δ chosen in §A.2 to minimize
// break-even batch sizes.
const Delta = 0.0294

// Kappa returns the per-repetition soundness bound κ for the Zaatar PCP:
// κ = max{(1 − 3δ + 6δ²)^ρ_lin, 6δ + 2|C|/|F|} (§A.2). The 2|C|/|F| term is
// negligible for production fields and is ignored here, as in the paper.
func (p Params) Kappa() float64 {
	lin := math.Pow(1-3*Delta+6*Delta*Delta, float64(p.RhoLin))
	div := 6 * Delta
	return math.Max(lin, div)
}

// SoundnessError bounds the probability that the verifier accepts a false
// claim: κ^ρ.
func (p Params) SoundnessError() float64 {
	return math.Pow(p.Kappa(), float64(p.Rho))
}

// ZaatarQueriesPerRepetition returns ℓ′ = 6ρ_lin + 4, the total number of
// PCP queries per repetition in the Zaatar protocol (§A.1, Figure 3).
func (p Params) ZaatarQueriesPerRepetition() int { return 6*p.RhoLin + 4 }

// GingerHighOrderQueries returns ℓ = 3ρ_lin + 2, the number of high-order
// PCP queries per repetition in Ginger's protocol (Figure 3).
func (p Params) GingerHighOrderQueries() int { return 3*p.RhoLin + 2 }
