package pcp

import (
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
)

// Registered backend names. These identifiers travel on the wire
// (Hello.Backends / HelloAck.Backend), key the transport program cache and
// vc.Precomputation, and name the pcp.backend.* metric series, so they are
// stable protocol constants rather than display strings.
const (
	// BackendZaatar is the QAP-based linear PCP (§3); commitment-based.
	BackendZaatar = "zaatar"
	// BackendGinger is the classical quadratic linear PCP (§2.2);
	// commitment-based.
	BackendGinger = "ginger"
	// BackendSumcheck is the sum-check/GKR lane for layered circuits
	// (Thaler, "Time-Optimal Interactive Proofs for Circuit Evaluation");
	// interactive, no commitments.
	BackendSumcheck = "sumcheck"
)

// Precomputed is a backend's program-dependent state: everything derivable
// from the compiled program alone, before any batch randomness exists (for
// Zaatar the QAP encoding, for Sumcheck the layered circuit). Values are
// immutable after Precompute and safe to share between concurrent provers
// and verifiers; the transport layer caches them across sessions.
type Precomputed interface{}

// Proof is one instance's proof material as built at commit time. For the
// commitment-based backends U1/U2 are the two linear proof oracles (fed to
// the homomorphic commitment and answered per query); for interactive
// backends U1 holds the flattened witness the respond phase proves from,
// and U2 is nil.
type Proof struct {
	U1, U2 []field.Element
}

// Queries is one batch's query state, derived deterministically from the
// verifier's seed so both ends can regenerate it ([53] Apdx A.3). A Queries
// value is immutable and safe for concurrent Answer/Decide calls.
type Queries interface {
	// Vectors returns the per-oracle query vectors that the linear
	// commitment protocol consumes verbatim. Interactive backends return
	// (nil, nil): there is nothing to commit to and no phase-1/2 crypto.
	Vectors() (q1, q2 [][]field.Element)
	// Answer computes one instance's responses from its proof — the
	// honest prover's work in the respond phase.
	Answer(proof *Proof) (r1, r2 []field.Element, err error)
	// Decide runs every per-instance check against the responses; io holds
	// the instance's input and output field values in canonical order
	// (inputs first). Decide must tolerate responses of any shape without
	// panicking: they arrive from an untrusted prover.
	Decide(r1, r2 []field.Element, io []field.Element) CheckResult
}

// Backend is one proof encoding behind the argument layer: the pluggable
// seam between the vc driver (phases, batching, commitments) and the
// protocol mathematics. Implementations are stateless values; all state
// lives in the Precomputed and Queries objects they hand out.
type Backend interface {
	// Name returns the stable protocol identifier (see the Backend*
	// constants).
	Name() string
	// NeedsCommitment reports whether the backend's soundness rests on the
	// linear commitment primitive. When false the driver skips key
	// generation, the commit/decommit crypto, and the consistency tests
	// entirely — the decommit message then carries only the query seed.
	NeedsCommitment() bool
	// Precompute builds the program-dependent state shared by every batch.
	Precompute(prog *compiler.Program) (Precomputed, error)
	// Queries draws one batch's query state from rnd (a PRG seeded with the
	// verifier's per-batch seed).
	Queries(pre Precomputed, params Params, rnd io.Reader) (Queries, error)
	// Solve executes the computation on one instance's inputs, returning
	// the claimed outputs and the satisfying assignment (witness) the proof
	// is built from.
	Solve(pre Precomputed, prog *compiler.Program, inputs []*big.Int) (outputs []*big.Int, witness []field.Element, err error)
	// BuildProof turns a witness into the instance's proof material — the
	// "construct proof vector" phase of Figure 5.
	BuildProof(pre Precomputed, witness []field.Element) (*Proof, error)
	// OracleLens returns the two committed-oracle lengths |u₁|, |u₂| (the
	// commitment key sizes). Interactive backends return (0, 0).
	OracleLens(pre Precomputed) (n1, n2 int)
	// ConstructKernel names the dominant kernel of BuildProof for trace
	// spans (e.g. "kernel.ntt.divide").
	ConstructKernel() string
}

// The registry maps backend names to implementations. All three built-in
// backends register at init time; Register is exported so experiments can
// plug in additional encodings.
var (
	registryMu sync.RWMutex
	registry   = map[string]Backend{}
)

// Register adds a backend under its Name. Registering a duplicate name
// panics: names are wire-visible identifiers and must be unambiguous.
func Register(b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := b.Name()
	if name == "" {
		panic("pcp: Register with empty backend name")
	}
	if _, dup := registry[name]; dup {
		panic("pcp: duplicate backend " + name)
	}
	registry[name] = b
}

// Lookup resolves a backend by name.
func Lookup(name string) (Backend, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("pcp: unknown backend %q (have %v)", name, namesLocked())
}

// Names lists the registered backends in deterministic (sorted) order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
