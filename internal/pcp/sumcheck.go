package pcp

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

func init() { Register(sumcheckBackend{}) }

// sumcheckBackend is the GKR/sum-check lane for layered arithmetic circuits
// (Thaler, "Time-Optimal Interactive Proofs for Circuit Evaluation"),
// adapted to this repository's 4-message batched flow. It needs no
// homomorphic commitments: the prover's phase-2 message carries only the
// claimed outputs, and the whole proof rides the phase-4 response as one
// flat element stream.
//
// Soundness story. The interactive GKR rounds are collapsed into a
// transcript argument: every challenge is derived by hashing the batch salt
// (revealed, like the query seed, only after all outputs are in — the same
// barrier the commitment lanes rely on), the instance's claimed outputs,
// and every prover message so far. Binding of the outputs comes from
// message ordering; per-round soundness comes from the field size (the
// round polynomials have degree ≤ 2 over a ≥128-bit field) in the
// random-oracle model. The verifier's work is field arithmetic only — no
// ciphertexts anywhere on this lane.
//
// Per layer d (output layer downward), with the previous layer's values Ṽ
// over b boolean variables, the prover proves
//
//	claim = Σ_{u,v∈{0,1}^b} W̃_d(ĝ,u,v)·Ṽ(u)·Ṽ(v)
//
// where W̃_d is the multilinear extension of the layer's sparse gate terms
// (value[g] = Σ c·prev[u]·prev[v]) and ĝ is the random point carried in
// from the layer above (the output layer uses a transcript-drawn point z
// against the outputs' MLE). The 2b sum-check rounds each ship the round
// polynomial's evaluations at 0, 1, 2; the layer ends with the two claimed
// evaluations Ṽ(u*), Ṽ(v*), merged into the next layer's claim by a random
// linear combination α·Ṽ(u*) + β·Ṽ(v*). At the bottom the verifier
// evaluates the input layer's MLE itself from the instance's inputs.
type sumcheckBackend struct{}

type sumcheckPre struct {
	f    *field.Field
	circ *constraint.LayeredCircuit
}

func (sumcheckBackend) Name() string            { return BackendSumcheck }
func (sumcheckBackend) NeedsCommitment() bool   { return false }
func (sumcheckBackend) ConstructKernel() string { return "kernel.layered.witness" }

func (sumcheckBackend) Precompute(prog *compiler.Program) (Precomputed, error) {
	circ, err := constraint.Layer(prog.Field, prog.Ginger)
	if err != nil {
		return nil, fmt.Errorf("pcp: sumcheck backend unavailable: %w", err)
	}
	return &sumcheckPre{f: prog.Field, circ: circ}, nil
}

// saltLen is the per-batch transcript salt drawn from the query seed's PRG.
const saltLen = 32

func (sumcheckBackend) Queries(pre Precomputed, params Params, rnd io.Reader) (Queries, error) {
	p := pre.(*sumcheckPre)
	var salt [saltLen]byte
	if _, err := io.ReadFull(rnd, salt[:]); err != nil {
		return nil, err
	}
	return &sumcheckQueries{pre: p, salt: salt}, nil
}

// Solve evaluates the layered circuit directly — field multiplications and
// additions only. The witness is the flattened per-layer evaluation; the
// outputs are decoded from the final (output) layer.
func (sumcheckBackend) Solve(pre Precomputed, prog *compiler.Program, inputs []*big.Int) ([]*big.Int, []field.Element, error) {
	p := pre.(*sumcheckPre)
	if len(inputs) != p.circ.NumInputs {
		return nil, nil, fmt.Errorf("pcp: want %d inputs, got %d", p.circ.NumInputs, len(inputs))
	}
	ins := make([]field.Element, len(inputs))
	for i, v := range inputs {
		ins[i] = p.f.FromBig(v)
	}
	vals, err := p.circ.Eval(p.f, ins)
	if err != nil {
		return nil, nil, err
	}
	witness := make([]field.Element, 0, p.circ.WitnessLen())
	for _, layer := range vals {
		witness = append(witness, layer...)
	}
	return prog.DecodeOutputs(vals[len(vals)-1]), witness, nil
}

// BuildProof is pass-through: the real proof is transcript-dependent, so it
// is generated in Answer, after the salt is revealed — mirroring how the
// commitment lanes answer queries only after the seed reveal.
func (sumcheckBackend) BuildProof(pre Precomputed, witness []field.Element) (*Proof, error) {
	p := pre.(*sumcheckPre)
	if len(witness) != p.circ.WitnessLen() {
		return nil, fmt.Errorf("pcp: witness has %d values, circuit wants %d", len(witness), p.circ.WitnessLen())
	}
	return &Proof{U1: witness}, nil
}

func (sumcheckBackend) OracleLens(pre Precomputed) (int, int) { return 0, 0 }

// sumcheckQueries is one batch's transcript salt plus the shared circuit.
type sumcheckQueries struct {
	pre  *sumcheckPre
	salt [saltLen]byte
}

// Vectors is nil: nothing is committed on this lane.
func (q *sumcheckQueries) Vectors() ([][]field.Element, [][]field.Element) { return nil, nil }

// SumcheckProofLen is the exact element count of one instance's proof
// stream: per layer, three evaluations per round (2b rounds against the
// previous layer's b variables) plus the two claimed endpoint evaluations.
func SumcheckProofLen(circ *constraint.LayeredCircuit) int {
	widths := circ.Widths()
	n := 0
	for d := range circ.Layers {
		n += 6*bitsFor(widths[d]) + 2
	}
	return n
}

// bitsFor returns ⌈log₂ n⌉ (0 for n ≤ 1): the number of boolean variables
// indexing a layer of n slots.
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Answer runs the GKR prover for one instance. proof.U1 is the flattened
// layer evaluation from Solve/BuildProof.
func (q *sumcheckQueries) Answer(proof *Proof) ([]field.Element, []field.Element, error) {
	circ, f := q.pre.circ, q.pre.f
	if len(proof.U1) != circ.WitnessLen() {
		return nil, nil, fmt.Errorf("pcp: witness has %d values, circuit wants %d", len(proof.U1), circ.WitnessLen())
	}
	// Unflatten the per-layer values.
	widths := circ.Widths()
	layers := make([][]field.Element, len(widths))
	off := 0
	for i, w := range widths {
		layers[i] = proof.U1[off : off+w]
		off += w
	}
	outputs := layers[len(layers)-1]

	tr := newTranscript(f, q.salt)
	tr.absorb(outputs...)
	z := tr.challenges(bitsFor(circ.NumOutputs))

	stream := make([]field.Element, 0, SumcheckProofLen(circ))
	point := [][]field.Element{z} // eq points against the current layer's gate index
	coeff := []field.Element{f.One()}
	for d := len(circ.Layers) - 1; d >= 0; d-- {
		terms := circ.Layers[d].Terms
		prev := layers[d] // layer below (input layer when d == 0)
		b := bitsFor(widths[d])

		// κ_t folds the gate-index MLE into a per-term scalar.
		kappa := make([]field.Element, len(terms))
		for t, gt := range terms {
			s := f.Zero()
			for i, pt := range point {
				s = f.Add(s, f.Mul(coeff[i], eqAt(f, pt, gt.G)))
			}
			kappa[t] = f.Mul(s, gt.C)
		}

		u, vu := proveHalf(f, tr, terms, kappa, prev, b, &stream, false)
		// After the u-phase each κ carries eq(u*, u_t); scale by Ṽ(u*) once
		// and run the v-phase.
		for t := range kappa {
			kappa[t] = f.Mul(kappa[t], vu)
		}
		v, vv := proveHalf(f, tr, terms, kappa, prev, b, &stream, true)
		stream = append(stream, vu, vv)
		tr.absorb(vu, vv)
		if d > 0 {
			alpha, beta := tr.challenge(), tr.challenge()
			point = [][]field.Element{u, v}
			coeff = []field.Element{alpha, beta}
		}
	}
	return stream, nil, nil
}

// proveHalf runs b sum-check rounds binding one operand's variables (the
// u-phase when vPhase is false, the v-phase otherwise). kappa carries each
// term's accumulated scalar and is updated in place with the eq factors of
// the drawn challenges. Returns the bound point and the restricted table's
// final value Ṽ(point).
//
// During the u-phase each term's untouched operand contributes the plain
// value prev[v_t] (the boolean sum over v collapses against eq(v, v_t));
// during the v-phase that role is played by Ṽ(u*), already folded into
// kappa by the caller — so the per-term companion factor is 1.
func proveHalf(f *field.Field, tr *transcript, terms []constraint.GateTerm, kappa []field.Element, prev []field.Element, b int, stream *[]field.Element, vPhase bool) ([]field.Element, field.Element) {
	// Restricted table over the previous layer's values, padded to 2^b.
	R := make([]field.Element, 1<<b)
	copy(R, prev)

	// opIdx[t] is the operand index this phase binds; fv[t] the companion
	// factor (prev[v_t] in the u-phase, 1 in the v-phase since Ṽ(u*) is in
	// kappa already).
	opIdx := make([]int, len(terms))
	fv := make([]field.Element, len(terms))
	one := f.One()
	for t, gt := range terms {
		if vPhase {
			opIdx[t] = gt.V
			fv[t] = one
		} else {
			opIdx[t] = gt.U
			fv[t] = prev[gt.V]
		}
	}

	bound := make([]field.Element, 0, b)
	for j := 0; j < b; j++ {
		var p0, p1, p2 field.Element
		for t := range terms {
			s := opIdx[t] >> j
			base := f.Mul(kappa[t], fv[t])
			if f.IsZero(base) {
				continue
			}
			k := (s >> 1) << 1
			a0, a1 := R[k], R[k|1]
			if s&1 == 0 {
				// eq(X,0) = 1−X: contributes at X=0 and X=2.
				p0 = f.Add(p0, f.Mul(base, a0))
				// (1−2)·((1−2)a0 + 2a1) = a0 − 2a1
				p2 = f.Add(p2, f.Mul(base, f.Sub(a0, f.Double(a1))))
			} else {
				// eq(X,1) = X: contributes at X=1 and X=2.
				p1 = f.Add(p1, f.Mul(base, a1))
				// 2·((1−2)a0 + 2a1) = 4a1 − 2a0
				p2 = f.Add(p2, f.Mul(base, f.Sub(f.Double(f.Double(a1)), f.Double(a0))))
			}
		}
		*stream = append(*stream, p0, p1, p2)
		tr.absorb(p0, p1, p2)
		r := tr.challenge()
		bound = append(bound, r)
		// Fold the table on the current (lowest) variable.
		R = FoldMLE(f, R, r)
		oneMinusR := f.Sub(one, r)
		// Accumulate the eq factor on each term.
		for t := range terms {
			if (opIdx[t]>>j)&1 == 1 {
				kappa[t] = f.Mul(kappa[t], r)
			} else {
				kappa[t] = f.Mul(kappa[t], oneMinusR)
			}
		}
	}
	return bound, R[0]
}

// Decide runs the GKR verifier for one instance: replay the transcript,
// check every round polynomial against the running claim, finish each layer
// against the wiring MLE, and ground the recursion in the io values. It is
// robust against arbitrary (adversarial) streams: the length is validated
// up front and every read is in bounds.
func (q *sumcheckQueries) Decide(r1, r2 []field.Element, io []field.Element) CheckResult {
	circ, f := q.pre.circ, q.pre.f
	if len(io) != circ.NumInputs+circ.NumOutputs {
		return CheckResult{Reason: "io length mismatch"}
	}
	if len(r2) != 0 {
		return CheckResult{Reason: "unexpected second oracle response"}
	}
	if len(r1) != SumcheckProofLen(circ) {
		return CheckResult{Reason: fmt.Sprintf("proof stream has %d elements, want %d", len(r1), SumcheckProofLen(circ))}
	}
	inputs := io[:circ.NumInputs]
	outputs := io[circ.NumInputs:]

	tr := newTranscript(f, q.salt)
	tr.absorb(outputs...)
	z := tr.challenges(bitsFor(circ.NumOutputs))
	claim := evalMLE(f, outputs, z)

	widths := circ.Widths()
	next := r1
	point := [][]field.Element{z}
	coeff := []field.Element{f.One()}
	for d := len(circ.Layers) - 1; d >= 0; d-- {
		terms := circ.Layers[d].Terms
		b := bitsFor(widths[d])

		cur := claim
		u := make([]field.Element, 0, b)
		var v []field.Element
		for j := 0; j < 2*b; j++ {
			p0, p1, p2 := next[0], next[1], next[2]
			next = next[3:]
			if !f.Equal(f.Add(p0, p1), cur) {
				return CheckResult{Reason: fmt.Sprintf("sum-check round claim mismatch (layer %d, round %d)", d, j)}
			}
			tr.absorb(p0, p1, p2)
			r := tr.challenge()
			if j < b {
				u = append(u, r)
			} else {
				v = append(v, r)
			}
			cur = evalDeg2(f, p0, p1, p2, r)
		}
		vu, vv := next[0], next[1]
		next = next[2:]

		// Final layer check: cur must equal W̃(ĝ,u*,v*)·Ṽ(u*)·Ṽ(v*), with
		// the wiring MLE evaluated directly from the sparse gate terms.
		var w field.Element
		for _, gt := range terms {
			s := f.Zero()
			for i, pt := range point {
				s = f.Add(s, f.Mul(coeff[i], eqAt(f, pt, gt.G)))
			}
			s = f.Mul(s, f.Mul(gt.C, f.Mul(eqAt(f, u, gt.U), eqAt(f, v, gt.V))))
			w = f.Add(w, s)
		}
		if !f.Equal(cur, f.Mul(w, f.Mul(vu, vv))) {
			return CheckResult{Reason: fmt.Sprintf("wiring check failed (layer %d)", d)}
		}
		tr.absorb(vu, vv)

		if d == 0 {
			// Ground in the input layer the verifier knows: [1, inputs...].
			in := make([]field.Element, circ.NumInputs+1)
			in[0] = f.One()
			copy(in[1:], inputs)
			if !f.Equal(vu, evalMLE(f, in, u)) || !f.Equal(vv, evalMLE(f, in, v)) {
				return CheckResult{Reason: "input layer evaluation mismatch"}
			}
			break
		}
		alpha, beta := tr.challenge(), tr.challenge()
		point = [][]field.Element{u, v}
		coeff = []field.Element{alpha, beta}
		claim = f.Add(f.Mul(alpha, vu), f.Mul(beta, vv))
	}
	return CheckResult{OK: true}
}

// evalDeg2 interpolates the degree-≤2 polynomial through (0,p0), (1,p1),
// (2,p2) at r:
//
//	p(r) = p0·(r−1)(r−2)/2 − p1·r(r−2) + p2·r(r−1)/2
func evalDeg2(f *field.Field, p0, p1, p2, r field.Element) field.Element {
	one := f.One()
	two := f.Double(one)
	rm1 := f.Sub(r, one)
	rm2 := f.Sub(r, two)
	inv2 := f.Inv(two)
	t0 := f.Mul(p0, f.Mul(f.Mul(rm1, rm2), inv2))
	t1 := f.Neg(f.Mul(p1, f.Mul(r, rm2)))
	t2 := f.Mul(p2, f.Mul(f.Mul(r, rm1), inv2))
	return f.Add(t0, f.Add(t1, t2))
}

// FoldMLE binds the lowest variable of a restricted MLE table to r in
// place and returns the halved slice: R'[k] = (1−r)·R[2k] + r·R[2k+1].
// The table is always padded to a power of two, so the pair loop covers it
// exactly with no tail — which unlocks the single-multiplication form
// R[2k] + r·(R[2k+1]−R[2k]), halving the field multiplications in the
// round-fold inner loop (the sum-check prover's hottest path after the
// round-polynomial sums).
func FoldMLE(f *field.Field, R []field.Element, r field.Element) []field.Element {
	half := len(R) >> 1
	for k := 0; k < half; k++ {
		a0 := R[2*k]
		R[k] = f.Add(a0, f.Mul(r, f.Sub(R[2*k+1], a0)))
	}
	return R[:half]
}

// FoldMLETwoMul is the textbook two-multiplication fold, kept as the
// equivalence and ablation reference for FoldMLE
// (BenchmarkAblationMLEFold measures the gap).
func FoldMLETwoMul(f *field.Field, R []field.Element, r field.Element) []field.Element {
	half := len(R) >> 1
	oneMinusR := f.Sub(f.One(), r)
	for k := 0; k < half; k++ {
		R[k] = f.Add(f.Mul(oneMinusR, R[2*k]), f.Mul(r, R[2*k+1]))
	}
	return R[:half]
}

// eqAt evaluates the multilinear equality polynomial eq(point, idx) with
// idx's bits read least-significant-first — the same variable order the
// round folds use.
func eqAt(f *field.Field, point []field.Element, idx int) field.Element {
	out := f.One()
	for j, pj := range point {
		if (idx>>j)&1 == 1 {
			out = f.Mul(out, pj)
		} else {
			out = f.Mul(out, f.Sub(f.One(), pj))
		}
	}
	return out
}

// evalMLE evaluates the multilinear extension of vals (padded with zeros to
// 2^len(point)) at point, in O(2^b) via the eq weight table.
func evalMLE(f *field.Field, vals []field.Element, point []field.Element) field.Element {
	tbl := []field.Element{f.One()}
	for j := len(point) - 1; j >= 0; j-- {
		pj := point[j]
		next := make([]field.Element, 2*len(tbl))
		for k, t := range tbl {
			// t·(1−pj) = t − t·pj: one multiplication per split, like FoldMLE.
			hi := f.Mul(t, pj)
			next[2*k+1] = hi
			next[2*k] = f.Sub(t, hi)
		}
		tbl = next
	}
	// tbl is indexed with point[0] as the lowest bit (LSB-first), matching
	// eqAt: entry i = Π_j (i_j ? p_j : 1−p_j).
	out := f.Zero()
	for i, v := range vals {
		if !f.IsZero(v) {
			out = f.Add(out, f.Mul(v, tbl[i]))
		}
	}
	return out
}

// transcript is the deterministic challenge chain shared by prover and
// verifier: a SHA-256 running state absorbing every message, with
// challenges drawn from a ChaCha PRG keyed by the current state.
type transcript struct {
	f     *field.Field
	state [32]byte
	ctr   uint64
}

func newTranscript(f *field.Field, salt [saltLen]byte) *transcript {
	t := &transcript{f: f}
	h := sha256.New()
	h.Write([]byte("zaatar/sumcheck/v1"))
	h.Write(salt[:])
	h.Sum(t.state[:0])
	return t
}

func (t *transcript) absorb(els ...field.Element) {
	h := sha256.New()
	h.Write(t.state[:])
	var buf [8]byte
	for _, e := range els {
		for _, limb := range e {
			binary.LittleEndian.PutUint64(buf[:], limb)
			h.Write(buf[:])
		}
	}
	h.Sum(t.state[:0])
}

func (t *transcript) challenge() field.Element {
	src := prg.NewFromSeed(t.state[:], t.ctr)
	t.ctr++
	return t.f.Rand(src)
}

func (t *transcript) challenges(n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = t.challenge()
	}
	return out
}
