package pcp

import (
	"io"
	"math/big"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

func init() { Register(gingerBackend{}) }

// gingerBackend adapts the classical quadratic linear PCP (§2.2). There is
// no per-program precomputation beyond validating the batching
// precondition and the materialization cap — failing at Precompute time
// (rather than on the first batch) lets a service reject an oversized
// program in the hello phase.
type gingerBackend struct{}

type gingerPre struct {
	f  *field.Field
	gs *constraint.GingerSystem
}

func (gingerBackend) Name() string            { return BackendGinger }
func (gingerBackend) NeedsCommitment() bool   { return true }
func (gingerBackend) ConstructKernel() string { return "kernel.tensor" }

func (gingerBackend) Precompute(prog *compiler.Program) (Precomputed, error) {
	if err := ValidateGingerForPCP(prog.Ginger); err != nil {
		return nil, err
	}
	return &gingerPre{f: prog.Field, gs: prog.Ginger}, nil
}

func (gingerBackend) Queries(pre Precomputed, params Params, rnd io.Reader) (Queries, error) {
	p := pre.(*gingerPre)
	g, err := NewGinger(p.f, p.gs, params, rnd)
	if err != nil {
		return nil, err
	}
	return gingerQueries{g}, nil
}

func (gingerBackend) Solve(pre Precomputed, prog *compiler.Program, inputs []*big.Int) ([]*big.Int, []field.Element, error) {
	return prog.SolveGinger(inputs)
}

func (gingerBackend) BuildProof(pre Precomputed, witness []field.Element) (*Proof, error) {
	p := pre.(*gingerPre)
	z, zz, err := BuildGingerProof(p.f, p.gs, witness)
	if err != nil {
		return nil, err
	}
	return &Proof{U1: z, U2: zz}, nil
}

func (gingerBackend) OracleLens(pre Precomputed) (int, int) {
	nz := pre.(*gingerPre).gs.NumUnbound()
	return nz, nz * nz
}

type gingerQueries struct {
	g *GingerPCP
}

func (q gingerQueries) Vectors() ([][]field.Element, [][]field.Element) {
	return q.g.Z1Queries, q.g.Z2Queries
}

func (q gingerQueries) Answer(proof *Proof) ([]field.Element, []field.Element, error) {
	f := q.g.F
	return Answer(f, proof.U1, q.g.Z1Queries), Answer(f, proof.U2, q.g.Z2Queries), nil
}

func (q gingerQueries) Decide(r1, r2 []field.Element, io []field.Element) CheckResult {
	return q.g.Check(r1, r2, io)
}
