package pcp

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/qap"
)

// PrecomputedCodec is the optional serialization seam a Backend implements
// so its precomputation can persist inside program bundles (internal/store)
// and warm-restart a server without re-running Precompute. Decode always
// receives the program the payload was encoded against — backends whose
// precomputation is cheap to rebuild may encode an empty payload and
// reconstruct from the program alone.
type PrecomputedCodec interface {
	// EncodePrecomputed serializes a value previously returned by this
	// backend's Precompute.
	EncodePrecomputed(pre Precomputed) ([]byte, error)
	// DecodePrecomputed restores a precomputation for prog from data.
	// Implementations must treat data as untrusted (it comes off disk) and
	// return an error — never panic — on anything malformed.
	DecodePrecomputed(prog *compiler.Program, data []byte) (Precomputed, error)
}

// EncodePrecomputed serializes a backend's precomputation, failing with a
// descriptive error when the backend does not implement PrecomputedCodec.
func EncodePrecomputed(bk Backend, pre Precomputed) ([]byte, error) {
	c, ok := bk.(PrecomputedCodec)
	if !ok {
		return nil, fmt.Errorf("pcp: backend %s does not support precomputation serialization", bk.Name())
	}
	return c.EncodePrecomputed(pre)
}

// DecodePrecomputed restores a backend's precomputation from bundle data.
func DecodePrecomputed(bk Backend, prog *compiler.Program, data []byte) (Precomputed, error) {
	c, ok := bk.(PrecomputedCodec)
	if !ok {
		return nil, fmt.Errorf("pcp: backend %s does not support precomputation serialization", bk.Name())
	}
	return c.DecodePrecomputed(prog, data)
}

// --- zaatar: the QAP encoding is the expensive part; serialize all of it.

func (zaatarBackend) EncodePrecomputed(pre Precomputed) ([]byte, error) {
	p, ok := pre.(*zaatarPre)
	if !ok {
		return nil, fmt.Errorf("pcp: zaatar codec got %T", pre)
	}
	return p.q.MarshalBinary()
}

func (zaatarBackend) DecodePrecomputed(prog *compiler.Program, data []byte) (Precomputed, error) {
	q, err := qap.UnmarshalQAP(prog.Field, data)
	if err != nil {
		return nil, err
	}
	if q.N != prog.Quad.NumVars || q.NC != prog.Quad.NumConstraints() {
		return nil, fmt.Errorf("pcp: decoded QAP (N=%d, NC=%d) does not match program (N=%d, NC=%d)",
			q.N, q.NC, prog.Quad.NumVars, prog.Quad.NumConstraints())
	}
	return &zaatarPre{q: q}, nil
}

// --- ginger: the precomputation is just a validated view of the program;
// nothing worth persisting, so the payload is empty and decode re-runs the
// (cheap) validation.

func (b gingerBackend) EncodePrecomputed(pre Precomputed) ([]byte, error) {
	if _, ok := pre.(*gingerPre); !ok {
		return nil, fmt.Errorf("pcp: ginger codec got %T", pre)
	}
	return nil, nil
}

func (b gingerBackend) DecodePrecomputed(prog *compiler.Program, data []byte) (Precomputed, error) {
	if len(data) != 0 {
		return nil, fmt.Errorf("pcp: ginger precomputation payload should be empty, got %d bytes", len(data))
	}
	return b.Precompute(prog)
}

// --- sumcheck: the layered circuit is a plain exported struct; gob it.

func (sumcheckBackend) EncodePrecomputed(pre Precomputed) ([]byte, error) {
	p, ok := pre.(*sumcheckPre)
	if !ok {
		return nil, fmt.Errorf("pcp: sumcheck codec got %T", pre)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.circ); err != nil {
		return nil, fmt.Errorf("pcp: encode layered circuit: %w", err)
	}
	return buf.Bytes(), nil
}

func (sumcheckBackend) DecodePrecomputed(prog *compiler.Program, data []byte) (Precomputed, error) {
	var circ constraint.LayeredCircuit
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&circ); err != nil {
		return nil, fmt.Errorf("pcp: decode layered circuit: %w", err)
	}
	if len(circ.Layers) == 0 {
		return nil, fmt.Errorf("pcp: decoded layered circuit has no layers")
	}
	return &sumcheckPre{f: prog.Field, circ: &circ}, nil
}
