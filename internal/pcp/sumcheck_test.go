package pcp

import (
	"math/big"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

// sumcheckSrc is pure arithmetic — no comparisons, so no advice wires — and
// stratifies into a few layers with both mul and add gates.
const sumcheckSrc = `
input x, y : int32;
output a, b : int64;
a = (x + y) * (x - y);
b = x * x * y + 3 * y;
`

func sumcheckFixture(t *testing.T) (Backend, *compiler.Program, Precomputed) {
	t.Helper()
	prog, err := compiler.Compile(field.F128(), sumcheckSrc)
	if err != nil {
		t.Fatal(err)
	}
	bk, err := Lookup(BackendSumcheck)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := bk.Precompute(prog)
	if err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	return bk, prog, pre
}

// proveOnce runs the full backend flow for one instance and returns the
// queries, io vector, and proof stream.
func proveOnce(t *testing.T, seed int64, inputs []int64) (Queries, []field.Element, []field.Element) {
	t.Helper()
	bk, prog, pre := sumcheckFixture(t)
	if bk.NeedsCommitment() {
		t.Fatal("sumcheck backend should not need commitment")
	}
	if n1, n2 := bk.OracleLens(pre); n1 != 0 || n2 != 0 {
		t.Fatalf("OracleLens = (%d, %d), want (0, 0)", n1, n2)
	}

	in := make([]*big.Int, len(inputs))
	for i, v := range inputs {
		in[i] = big.NewInt(v)
	}
	outs, witness, err := bk.Solve(pre, prog, in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Cross-check against the straight-line interpreter.
	want, err := prog.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if outs[i].Cmp(want[i]) != 0 {
			t.Fatalf("output[%d] = %v, want %v", i, outs[i], want[i])
		}
	}

	proof, err := bk.BuildProof(pre, witness)
	if err != nil {
		t.Fatalf("BuildProof: %v", err)
	}
	q, err := bk.Queries(pre, TestParams(), prg.NewFromSeed([]byte("sumcheck-test-seed"), uint64(seed)))
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	if q1, q2 := q.Vectors(); q1 != nil || q2 != nil {
		t.Fatal("interactive backend should publish no query vectors")
	}
	r1, r2, err := q.Answer(proof)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(r2) != 0 {
		t.Fatalf("r2 has %d elements, want 0", len(r2))
	}
	io, err := prog.IOValues(in, outs)
	if err != nil {
		t.Fatal(err)
	}
	return q, io, r1
}

func TestSumcheckRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		q, io, r1 := proveOnce(t, seed, []int64{7, 5})
		if res := q.Decide(r1, nil, io); !res.OK {
			t.Fatalf("seed %d: honest proof rejected: %s", seed, res.Reason)
		}
	}
	q, io, r1 := proveOnce(t, 9, []int64{-12, 31})
	if res := q.Decide(r1, nil, io); !res.OK {
		t.Fatalf("negative inputs: honest proof rejected: %s", res.Reason)
	}
}

// TestSumcheckRejectsTamper flips every single element of the honest stream
// in turn; the verifier must reject each mutation.
func TestSumcheckRejectsTamper(t *testing.T) {
	q, io, r1 := proveOnce(t, 1, []int64{7, 5})
	f := field.F128()
	for i := range r1 {
		mutated := make([]field.Element, len(r1))
		copy(mutated, r1)
		mutated[i] = f.Add(mutated[i], f.One())
		if res := q.Decide(mutated, nil, io); res.OK {
			t.Fatalf("accepted stream with element %d/%d mutated", i, len(r1))
		}
	}
}

func TestSumcheckRejectsWrongIO(t *testing.T) {
	q, io, r1 := proveOnce(t, 2, []int64{7, 5})
	f := field.F128()

	// Wrong output claim.
	bad := make([]field.Element, len(io))
	copy(bad, io)
	bad[len(bad)-1] = f.Add(bad[len(bad)-1], f.One())
	if res := q.Decide(r1, nil, bad); res.OK {
		t.Fatal("accepted proof against a falsified output")
	}

	// Wrong input claim.
	copy(bad, io)
	bad[0] = f.Add(bad[0], f.One())
	if res := q.Decide(r1, nil, bad); res.OK {
		t.Fatal("accepted proof against a falsified input")
	}

	// Malformed lengths.
	if res := q.Decide(r1[:len(r1)-1], nil, io); res.OK {
		t.Fatal("accepted truncated stream")
	}
	if res := q.Decide(r1, []field.Element{f.One()}, io); res.OK {
		t.Fatal("accepted unexpected second oracle response")
	}
	if res := q.Decide(r1, nil, io[:len(io)-1]); res.OK {
		t.Fatal("accepted truncated io")
	}
}

// TestSumcheckSaltBinds checks that a proof generated under one salt does
// not verify under another: the transcript challenges must depend on the
// batch randomness, not only on the messages.
func TestSumcheckSaltBinds(t *testing.T) {
	_, io, r1 := proveOnce(t, 3, []int64{7, 5})
	bk, _, pre := sumcheckFixture(t)
	other, err := bk.Queries(pre, TestParams(), prg.NewFromSeed([]byte("a-different-seed"), 0))
	if err != nil {
		t.Fatal(err)
	}
	if res := other.Decide(r1, nil, io); res.OK {
		t.Fatal("proof verified under a different salt")
	}
}

func TestSumcheckProofLen(t *testing.T) {
	_, prog, pre := sumcheckFixture(t)
	circ, err := constraint.Layer(prog.Field, prog.Ginger)
	if err != nil {
		t.Fatal(err)
	}
	_, io, r1 := proveOnce(t, 4, []int64{1, 2})
	if len(r1) != SumcheckProofLen(circ) {
		t.Fatalf("stream has %d elements, SumcheckProofLen says %d", len(r1), SumcheckProofLen(circ))
	}
	_ = io
	_ = pre
}

// FuzzSumcheckRound feeds mutated proof streams to the verifier: it must
// never panic and never accept a stream that differs from the honest one.
func FuzzSumcheckRound(f *testing.F) {
	prog, err := compiler.Compile(field.F128(), sumcheckSrc)
	if err != nil {
		f.Fatal(err)
	}
	bk, err := Lookup(BackendSumcheck)
	if err != nil {
		f.Fatal(err)
	}
	pre, err := bk.Precompute(prog)
	if err != nil {
		f.Fatal(err)
	}
	fld := prog.Field

	in := []*big.Int{big.NewInt(7), big.NewInt(5)}
	outs, witness, err := bk.Solve(pre, prog, in)
	if err != nil {
		f.Fatal(err)
	}
	proof, err := bk.BuildProof(pre, witness)
	if err != nil {
		f.Fatal(err)
	}
	q, err := bk.Queries(pre, TestParams(), prg.NewFromSeed([]byte("fuzz-seed"), 0))
	if err != nil {
		f.Fatal(err)
	}
	honest, _, err := q.Answer(proof)
	if err != nil {
		f.Fatal(err)
	}
	io, err := prog.IOValues(in, outs)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint16(0), uint64(1))
	f.Add(uint16(5), uint64(1<<40))
	f.Add(uint16(len(honest)-1), uint64(0))
	f.Fuzz(func(t *testing.T, pos uint16, delta uint64) {
		mutated := make([]field.Element, len(honest))
		copy(mutated, honest)
		i := int(pos) % len(mutated)
		mutated[i] = fld.Add(mutated[i], fld.FromUint64(delta))
		res := q.Decide(mutated, nil, io)
		if fld.IsZero(fld.FromUint64(delta)) {
			if !res.OK {
				t.Fatalf("honest stream rejected: %s", res.Reason)
			}
			return
		}
		if res.OK {
			t.Fatalf("accepted stream with element %d shifted by %d", i, delta)
		}
	})
}

// TestFoldMLEEquivalence pins the single-multiplication fold to the
// textbook two-multiplication form on random power-of-two tables, across
// sizes and challenge values (including the 0/1 endpoints).
func TestFoldMLEEquivalence(t *testing.T) {
	f := field.F128()
	rnd := prg.NewFromSeed([]byte("fold-equiv"), 1)
	for _, size := range []int{2, 4, 64, 1 << 10} {
		for i, r := range []field.Element{f.Zero(), f.One(), f.Rand(rnd), f.Rand(rnd)} {
			tbl := f.RandVector(size, rnd)
			a := make([]field.Element, size)
			b := make([]field.Element, size)
			copy(a, tbl)
			copy(b, tbl)
			got := FoldMLE(f, a, r)
			want := FoldMLETwoMul(f, b, r)
			if len(got) != size/2 || len(want) != size/2 {
				t.Fatalf("size %d: fold lengths %d/%d, want %d", size, len(got), len(want), size/2)
			}
			for k := range got {
				if !f.Equal(got[k], want[k]) {
					t.Fatalf("size %d, challenge %d: entry %d differs", size, i, k)
				}
			}
		}
	}
}
