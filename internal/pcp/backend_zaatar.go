package pcp

import (
	"io"
	"math/big"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
	"zaatar/internal/qap"
)

func init() { Register(zaatarBackend{}) }

// zaatarBackend adapts the QAP-based linear PCP (Figure 10) to the Backend
// seam. The precomputation is the QAP encoding — divisor polynomial, Newton
// inverse series, NTT subproduct tree — shared by prover and verifier.
type zaatarBackend struct{}

type zaatarPre struct {
	q *qap.QAP
}

func (zaatarBackend) Name() string            { return BackendZaatar }
func (zaatarBackend) NeedsCommitment() bool   { return true }
func (zaatarBackend) ConstructKernel() string { return "kernel.ntt.divide" }

func (zaatarBackend) Precompute(prog *compiler.Program) (Precomputed, error) {
	q, err := qap.New(prog.Field, prog.Quad)
	if err != nil {
		return nil, err
	}
	return &zaatarPre{q: q}, nil
}

func (zaatarBackend) Queries(pre Precomputed, params Params, rnd io.Reader) (Queries, error) {
	z, err := NewZaatar(pre.(*zaatarPre).q, params, rnd)
	if err != nil {
		return nil, err
	}
	return zaatarQueries{z}, nil
}

func (zaatarBackend) Solve(pre Precomputed, prog *compiler.Program, inputs []*big.Int) ([]*big.Int, []field.Element, error) {
	return prog.SolveQuad(inputs)
}

func (zaatarBackend) BuildProof(pre Precomputed, witness []field.Element) (*Proof, error) {
	z, h, err := BuildProof(pre.(*zaatarPre).q, witness)
	if err != nil {
		return nil, err
	}
	return &Proof{U1: z, U2: h}, nil
}

func (zaatarBackend) OracleLens(pre Precomputed) (int, int) {
	q := pre.(*zaatarPre).q
	return q.NZ, q.NC + 1
}

type zaatarQueries struct {
	z *ZaatarPCP
}

func (q zaatarQueries) Vectors() ([][]field.Element, [][]field.Element) {
	return q.z.ZQueries, q.z.HQueries
}

func (q zaatarQueries) Answer(proof *Proof) ([]field.Element, []field.Element, error) {
	f := q.z.Q.F
	return Answer(f, proof.U1, q.z.ZQueries), Answer(f, proof.U2, q.z.HQueries), nil
}

func (q zaatarQueries) Decide(r1, r2 []field.Element, io []field.Element) CheckResult {
	return q.z.Check(r1, r2, io)
}
