package pcp

import (
	"strings"
	"testing"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/prg"
	"zaatar/internal/qap"
)

// squareChainQuad builds a canonical quadratic system computing
// y = x^(2^k), plus a witness builder.
func squareChainQuad(f *field.Field, k int) (*constraint.QuadSystem, func(x uint64) []field.Element) {
	one := f.One()
	qs := &constraint.QuadSystem{NumVars: k + 1, In: []int{1}, Out: []int{k + 1}}
	for i := 1; i <= k; i++ {
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{
			A: constraint.LinComb{{Coeff: one, Var: i}},
			B: constraint.LinComb{{Coeff: one, Var: i}},
			C: constraint.LinComb{{Coeff: one, Var: i + 1}},
		})
	}
	ns, perm := qs.Normalize()
	return ns, func(x uint64) []field.Element {
		w := make([]field.Element, k+2)
		w[0] = f.One()
		cur := f.FromUint64(x)
		w[1] = cur
		for i := 2; i <= k+1; i++ {
			cur = f.Mul(cur, cur)
			w[i] = cur
		}
		return perm.ApplyToAssignment(w)
	}
}

// xSquarePlusX builds a canonical Ginger system computing y = x² + x with
// the input isolated behind a copy wire, as the compiler guarantees.
func xSquarePlusX(f *field.Field) (*constraint.GingerSystem, func(x uint64) []field.Element) {
	one := f.One()
	neg := f.Neg(one)
	// wire 1 = x (in), wire 2 = zx (copy), wire 3 = zx², wire 4 = y (out)
	gs := &constraint.GingerSystem{
		NumVars: 4,
		In:      []int{1},
		Out:     []int{4},
		Cons: []constraint.GingerConstraint{
			{{Coeff: one, A: 2}, {Coeff: neg, A: 1}},
			{{Coeff: one, A: 2, B: 2}, {Coeff: neg, A: 3}},
			{{Coeff: one, A: 3}, {Coeff: one, A: 2}, {Coeff: neg, A: 4}},
		},
	}
	ns, perm := gs.Normalize()
	return ns, func(x uint64) []field.Element {
		w := make([]field.Element, 5)
		w[0] = f.One()
		w[1] = f.FromUint64(x)
		w[2] = f.FromUint64(x)
		w[3] = f.FromUint64(x * x)
		w[4] = f.FromUint64(x*x + x)
		return perm.ApplyToAssignment(w)
	}
}

func TestSoundnessParameters(t *testing.T) {
	// §A.2: δ = 0.0294, ρ_lin = 20 gives κ ≤ 0.177, and ρ = 8 gives
	// soundness error κ^ρ < 9.6×10⁻⁷.
	p := DefaultParams()
	if k := p.Kappa(); k > 0.177 {
		t.Errorf("κ = %v, want ≤ 0.177", k)
	}
	if e := p.SoundnessError(); e >= 9.6e-7 {
		t.Errorf("soundness error = %v, want < 9.6e-7", e)
	}
	if got := p.ZaatarQueriesPerRepetition(); got != 124 {
		t.Errorf("ℓ′ = %d, want 124", got)
	}
	if got := p.GingerHighOrderQueries(); got != 62 {
		t.Errorf("ℓ = %d, want 62", got)
	}
}

func TestZaatarHonestProver(t *testing.T) {
	for _, f := range []*field.Field{field.F128(), field.F220()} {
		qs, witness := squareChainQuad(f, 6)
		q, err := qap.New(f, qs)
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewZaatar(q, TestParams(), prg.NewFromSeed([]byte("zaatar"), 0))
		if err != nil {
			t.Fatal(err)
		}
		w := witness(3)
		z, h, err := BuildProof(q, w)
		if err != nil {
			t.Fatal(err)
		}
		res := v.Check(Answer(f, z, v.ZQueries), Answer(f, h, v.HQueries), w[q.NZ+1:])
		if !res.OK {
			t.Fatalf("%s: honest prover rejected: %s", f.Name(), res.Reason)
		}
	}
}

func TestZaatarQueryCounts(t *testing.T) {
	f := field.F128()
	qs, _ := squareChainQuad(f, 4)
	q, _ := qap.New(f, qs)
	p := Params{RhoLin: 3, Rho: 2}
	v, err := NewZaatar(q, p, prg.NewFromSeed([]byte("counts"), 0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(v.ZQueries), p.Rho*(3*p.RhoLin+3); got != want {
		t.Errorf("z queries = %d, want %d", got, want)
	}
	if got, want := len(v.HQueries), p.Rho*(3*p.RhoLin+1); got != want {
		t.Errorf("h queries = %d, want %d", got, want)
	}
	// Total per repetition must be ℓ′.
	if got := 3*p.RhoLin + 3 + 3*p.RhoLin + 1; got != p.ZaatarQueriesPerRepetition() {
		t.Errorf("per-rep total %d != ℓ′ %d", got, p.ZaatarQueriesPerRepetition())
	}
}

func TestZaatarCatchesWrongOutput(t *testing.T) {
	f := field.F128()
	qs, witness := squareChainQuad(f, 6)
	q, _ := qap.New(f, qs)
	v, _ := NewZaatar(q, TestParams(), prg.NewFromSeed([]byte("wrong-output"), 0))
	w := witness(3)
	z, h, _ := BuildProof(q, w)
	io := append([]field.Element(nil), w[q.NZ+1:]...)
	io[len(io)-1] = f.Add(io[len(io)-1], f.One())
	res := v.Check(Answer(f, z, v.ZQueries), Answer(f, h, v.HQueries), io)
	if res.OK {
		t.Fatal("wrong output accepted")
	}
	if !strings.Contains(res.Reason, "divisibility") {
		t.Errorf("unexpected failure reason: %s", res.Reason)
	}
}

func TestZaatarCatchesCorruptWitness(t *testing.T) {
	f := field.F128()
	qs, witness := squareChainQuad(f, 6)
	q, _ := qap.New(f, qs)
	v, _ := NewZaatar(q, TestParams(), prg.NewFromSeed([]byte("corrupt-z"), 0))
	w := witness(3)
	w[1] = f.Add(w[1], f.One()) // break an unbound wire
	z := append([]field.Element(nil), w[1:q.NZ+1]...)
	// The prover cannot build a consistent h for a bad witness, so a cheat
	// reuses the h of a *different* (valid) witness.
	wGood := witness(3)
	_, h, _ := BuildProof(q, wGood)
	res := v.Check(Answer(f, z, v.ZQueries), Answer(f, h, v.HQueries), w[q.NZ+1:])
	if res.OK {
		t.Fatal("corrupt witness accepted")
	}
}

func TestZaatarCatchesTamperedLinearity(t *testing.T) {
	f := field.F128()
	qs, witness := squareChainQuad(f, 5)
	q, _ := qap.New(f, qs)
	v, _ := NewZaatar(q, TestParams(), prg.NewFromSeed([]byte("nonlinear"), 0))
	w := witness(2)
	z, h, _ := BuildProof(q, w)
	zr := Answer(f, z, v.ZQueries)
	zr[2] = f.Add(zr[2], f.One()) // corrupt a q7 response
	res := v.Check(zr, Answer(f, h, v.HQueries), w[q.NZ+1:])
	if res.OK {
		t.Fatal("non-linear responses accepted")
	}
	if !strings.Contains(res.Reason, "linearity") {
		t.Errorf("unexpected failure reason: %s", res.Reason)
	}
}

func TestZaatarResponseCountMismatch(t *testing.T) {
	f := field.F128()
	qs, witness := squareChainQuad(f, 4)
	q, _ := qap.New(f, qs)
	v, _ := NewZaatar(q, TestParams(), prg.NewFromSeed([]byte("counts2"), 0))
	w := witness(2)
	z, h, _ := BuildProof(q, w)
	if v.Check(Answer(f, z, v.ZQueries)[:1], Answer(f, h, v.HQueries), w[q.NZ+1:]).OK {
		t.Fatal("short responses accepted")
	}
}

func TestGingerHonestProver(t *testing.T) {
	f := field.F128()
	gs, witness := xSquarePlusX(f)
	v, err := NewGinger(f, gs, TestParams(), prg.NewFromSeed([]byte("ginger"), 0))
	if err != nil {
		t.Fatal(err)
	}
	w := witness(7)
	if err := gs.Check(f, w); err != nil {
		t.Fatal(err)
	}
	z, zz, err := BuildGingerProof(f, gs, w)
	if err != nil {
		t.Fatal(err)
	}
	nio := len(gs.In) + len(gs.Out)
	io := w[len(w)-nio:]
	res := v.Check(Answer(f, z, v.Z1Queries), Answer(f, zz, v.Z2Queries), io)
	if !res.OK {
		t.Fatalf("honest ginger prover rejected: %s", res.Reason)
	}
}

func TestGingerCatchesWrongOutput(t *testing.T) {
	f := field.F128()
	gs, witness := xSquarePlusX(f)
	v, _ := NewGinger(f, gs, TestParams(), prg.NewFromSeed([]byte("ginger2"), 0))
	w := witness(7)
	z, zz, _ := BuildGingerProof(f, gs, w)
	nio := len(gs.In) + len(gs.Out)
	io := append([]field.Element(nil), w[len(w)-nio:]...)
	io[len(io)-1] = f.Add(io[len(io)-1], f.One())
	res := v.Check(Answer(f, z, v.Z1Queries), Answer(f, zz, v.Z2Queries), io)
	if res.OK {
		t.Fatal("wrong ginger output accepted")
	}
	if !strings.Contains(res.Reason, "circuit") {
		t.Errorf("unexpected failure reason: %s", res.Reason)
	}
}

func TestGingerCatchesNonOuterProduct(t *testing.T) {
	f := field.F128()
	gs, witness := xSquarePlusX(f)
	v, _ := NewGinger(f, gs, TestParams(), prg.NewFromSeed([]byte("ginger3"), 0))
	w := witness(7)
	z, zz, _ := BuildGingerProof(f, gs, w)
	zz[0] = f.Add(zz[0], f.One()) // π₂ no longer encodes z⊗z
	nio := len(gs.In) + len(gs.Out)
	res := v.Check(Answer(f, z, v.Z1Queries), Answer(f, zz, v.Z2Queries), w[len(w)-nio:])
	if res.OK {
		t.Fatal("tampered outer product accepted")
	}
}

func TestGingerRejectsUnisolatedIO(t *testing.T) {
	f := field.F128()
	one := f.One()
	// y = x·x directly: the input wire appears in a degree-2 term.
	gs := &constraint.GingerSystem{
		NumVars: 2,
		In:      []int{1},
		Out:     []int{2},
		Cons: []constraint.GingerConstraint{
			{{Coeff: one, A: 1, B: 1}, {Coeff: f.Neg(one), A: 2}},
		},
	}
	ns, _ := gs.Normalize()
	if _, err := NewGinger(f, ns, TestParams(), prg.NewFromSeed([]byte("bad"), 0)); err == nil {
		t.Fatal("NewGinger accepted a system with IO in degree-2 terms")
	}
}

func TestGingerProofSizeCap(t *testing.T) {
	f := field.F128()
	gs := &constraint.GingerSystem{NumVars: MaxGingerProofVars + 10}
	w := make([]field.Element, gs.NumVars+1)
	w[0] = f.One()
	if _, _, err := BuildGingerProof(f, gs, w); err == nil {
		t.Fatal("oversized ginger proof not rejected")
	}
}

func TestBuildProofRejectsBadWitness(t *testing.T) {
	f := field.F128()
	qs, witness := squareChainQuad(f, 4)
	q, _ := qap.New(f, qs)
	w := witness(2)
	w[1] = f.Add(w[1], f.One())
	if _, _, err := BuildProof(q, w); err == nil {
		t.Fatal("BuildProof accepted a bad witness")
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	f := field.F128()
	qs, _ := squareChainQuad(f, 4)
	q, _ := qap.New(f, qs)
	if _, err := NewZaatar(q, Params{RhoLin: 0, Rho: 1}, prg.NewFromSeed([]byte("p"), 0)); err == nil {
		t.Error("zero RhoLin accepted")
	}
	gs, _ := xSquarePlusX(f)
	if _, err := NewGinger(f, gs, Params{RhoLin: 1, Rho: 0}, prg.NewFromSeed([]byte("p"), 0)); err == nil {
		t.Error("zero Rho accepted")
	}
}
