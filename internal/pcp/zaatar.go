package pcp

import (
	"fmt"
	"io"

	"zaatar/internal/field"
	"zaatar/internal/qap"
)

// ZaatarPCP holds one batch's worth of verifier state for the QAP-based
// linear PCP of Figure 10: the query vectors (shared by every instance in
// the batch) and the per-repetition τ state needed to finish each check.
//
// Query layout, per repetition r:
//
//	π_z queries: ρ_lin triples (q5, q6, q7=q5+q6), then the three
//	             divisibility-correction queries q1=q_a+q5⁰, q2=q_b+q5⁰,
//	             q3=q_c+q5⁰ (self-corrected with the repetition's first
//	             linearity query q5⁰, exactly as in Figure 10);
//	π_h queries: ρ_lin triples (q8, q9, q10=q8+q9), then q4=q_d+q8⁰.
type ZaatarPCP struct {
	Q      *qap.QAP
	Params Params

	// ZQueries and HQueries are the full query lists for the two oracles,
	// in the layout above; the argument layer feeds them to the commitment
	// protocol verbatim.
	ZQueries [][]field.Element
	HQueries [][]field.Element

	reps []*qap.Queries // per-repetition τ-derived state
}

// zPerRep and hPerRep give the number of queries per repetition for each
// oracle; their sum is ℓ′ = 6ρ_lin + 4.
func (p Params) zPerRep() int { return 3*p.RhoLin + 3 }
func (p Params) hPerRep() int { return 3*p.RhoLin + 1 }

// NewZaatar draws a batch's queries using randomness from rnd. Figure 3's
// cost accounting for this step: the linearity queries are
// computation-oblivious (cost proportional to |u|), while the τ-derived
// q_a..q_d queries are computation-specific (cost (f_div+5f)|C| + f·K + 3f·K₂).
func NewZaatar(q *qap.QAP, params Params, rnd io.Reader) (*ZaatarPCP, error) {
	if params.RhoLin < 1 || params.Rho < 1 {
		return nil, fmt.Errorf("pcp: invalid params %+v", params)
	}
	f := q.F
	z := &ZaatarPCP{Q: q, Params: params}
	nz := q.NZ
	nh := q.NC + 1

	for r := 0; r < params.Rho; r++ {
		// Linearity queries.
		var firstZ, firstH []field.Element
		for l := 0; l < params.RhoLin; l++ {
			q5 := f.RandVector(nz, rnd)
			q6 := f.RandVector(nz, rnd)
			q7 := f.AddVec(q5, q6)
			z.ZQueries = append(z.ZQueries, q5, q6, q7)
			q8 := f.RandVector(nh, rnd)
			q9 := f.RandVector(nh, rnd)
			q10 := f.AddVec(q8, q9)
			z.HQueries = append(z.HQueries, q8, q9, q10)
			if l == 0 {
				firstZ, firstH = q5, q8
			}
		}
		// Divisibility-correction queries from a fresh τ (redrawn on the
		// negligible-probability collision with an interpolation point).
		var qr *qap.Queries
		for {
			var err error
			qr, err = q.BuildQueries(f.Rand(rnd))
			if err == nil {
				break
			}
			if err != qap.ErrTauCollision {
				return nil, err
			}
		}
		z.reps = append(z.reps, qr)
		z.ZQueries = append(z.ZQueries,
			f.AddVec(qr.QA, firstZ),
			f.AddVec(qr.QB, firstZ),
			f.AddVec(qr.QC, firstZ))
		z.HQueries = append(z.HQueries, f.AddVec(qr.QD, firstH))
	}
	return z, nil
}

// BuildProof computes the proof vectors (z, h) for a satisfying assignment
// w of the QAP's constraint system: z is the unbound part of w, h the
// coefficients of H(t) (§3, "The proof vector"). Together they define the
// prover's linear functions π_z and π_h.
func BuildProof(q *qap.QAP, w []field.Element) (z, h []field.Element, err error) {
	h, err = q.BuildH(w)
	if err != nil {
		return nil, nil, err
	}
	z = append([]field.Element(nil), w[1:q.NZ+1]...)
	return z, h, nil
}

// Answer evaluates a linear proof function ⟨·, u⟩ on every query; this is
// what an honest prover does with its proof vector (the argument layer
// additionally runs the answers through the commitment protocol).
func Answer(f *field.Field, u []field.Element, queries [][]field.Element) []field.Element {
	out := make([]field.Element, len(queries))
	for i, q := range queries {
		out[i] = f.InnerProduct(q, u)
	}
	return out
}

// CheckResult reports the outcome of the PCP checks for one instance.
type CheckResult struct {
	OK     bool
	Reason string // human-readable failure reason, empty when OK
}

// Check runs all of Figure 10's tests against the responses for one
// instance. zResp and hResp must line up with ZQueries and HQueries; io
// holds the instance's input and output values in wire order.
func (z *ZaatarPCP) Check(zResp, hResp []field.Element, io []field.Element) CheckResult {
	f := z.Q.F
	if len(zResp) != len(z.ZQueries) || len(hResp) != len(z.HQueries) {
		return CheckResult{Reason: "response count mismatch"}
	}
	zp, hp := z.Params.zPerRep(), z.Params.hPerRep()
	for r := 0; r < z.Params.Rho; r++ {
		zr := zResp[r*zp : (r+1)*zp]
		hr := hResp[r*hp : (r+1)*hp]
		// Linearity tests.
		for l := 0; l < z.Params.RhoLin; l++ {
			if !f.Equal(f.Add(zr[3*l], zr[3*l+1]), zr[3*l+2]) {
				return CheckResult{Reason: fmt.Sprintf("π_z linearity test failed (rep %d, iter %d)", r, l)}
			}
			if !f.Equal(f.Add(hr[3*l], hr[3*l+1]), hr[3*l+2]) {
				return CheckResult{Reason: fmt.Sprintf("π_h linearity test failed (rep %d, iter %d)", r, l)}
			}
		}
		// Divisibility correction test. The self-corrected answers are
		// π(q1)−π(q5⁰) etc.; V adds the bound-variable terms itself.
		qr := z.reps[r]
		la, lb, lc := qr.IOTerms(f, io)
		base := 3 * z.Params.RhoLin
		aTau := f.Add(f.Sub(zr[base], zr[0]), la)
		bTau := f.Add(f.Sub(zr[base+1], zr[0]), lb)
		cTau := f.Add(f.Sub(zr[base+2], zr[0]), lc)
		hTau := f.Sub(hr[3*z.Params.RhoLin], hr[0])
		lhs := f.Mul(qr.DTau, hTau)
		rhs := f.Sub(f.Mul(aTau, bTau), cTau)
		if !f.Equal(lhs, rhs) {
			return CheckResult{Reason: fmt.Sprintf("divisibility correction test failed (rep %d)", r)}
		}
	}
	return CheckResult{OK: true}
}
