package pcp

import (
	"fmt"
	"io"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

// GingerPCP is the classical linear PCP of Arora et al. as used by Ginger
// (§2.2): the proof is the pair of linear functions π₁(·) = ⟨·, z⟩ and
// π₂(·) = ⟨·, z⊗z⟩, so the proof vector has length |Z| + |Z|² — the
// quadratic blow-up that Zaatar's QAP encoding removes.
//
// Query layout, per repetition r:
//
//	π₁ queries: ρ_lin triples (q5, q6, q7=q5+q6), two raw vectors
//	            (qq_a, qq_b) for the quadratic-correction test, then the
//	            self-corrected circuit query γ₁+q5⁰;
//	π₂ queries: ρ_lin triples over F^{|Z|²}, then qq_a⊗qq_b+q8⁰ and γ₂+q8⁰.
//
// Batching requires the γ queries to be instance-independent, so the
// constraint system must never multiply a bound (input/output) wire into a
// degree-2 term; the compiler guarantees this by isolating IO wires behind
// copy constraints. Bound-wire contributions then fold into the per-instance
// constant γ₀(x, y), which the verifier computes itself (the |x|+|y| term in
// Figure 3's "Process responses" row).
type GingerPCP struct {
	F      *field.Field
	Sys    *constraint.GingerSystem
	Params Params
	NZ     int

	Z1Queries [][]field.Element // queries to π₁, length NZ each
	Z2Queries [][]field.Element // queries to π₂, length NZ² each

	reps []*gingerRep
}

type gingerRep struct {
	// γ₀(x, y) = gammaConst + ⟨ioCoeffs, io⟩, computed per instance.
	gammaConst field.Element
	ioCoeffs   []field.Element
}

// MaxGingerProofVars caps |Z| for a materialized Ginger proof; beyond this
// the π₂ query vectors (|Z|² elements each) stop fitting in memory, which
// is precisely Ginger's practicality problem — larger configurations are
// handled by the cost model, as in the paper's own evaluation (§5.1).
const MaxGingerProofVars = 2048

// NewGinger draws a batch's queries for the Ginger PCP. The system must be
// in canonical wire order with no degree-2 term touching a bound wire.
func NewGinger(f *field.Field, gs *constraint.GingerSystem, params Params, rnd io.Reader) (*GingerPCP, error) {
	if params.RhoLin < 1 || params.Rho < 1 {
		return nil, fmt.Errorf("pcp: invalid params %+v", params)
	}
	if err := ValidateGingerForPCP(gs); err != nil {
		return nil, err
	}
	nz := gs.NumUnbound()
	if nz > MaxGingerProofVars {
		return nil, fmt.Errorf("pcp: ginger proof needs |Z|² = %d² elements; |Z| capped at %d (use the cost model beyond that)", nz, MaxGingerProofVars)
	}
	g := &GingerPCP{F: f, Sys: gs, Params: params, NZ: nz}
	nio := len(gs.In) + len(gs.Out)

	for r := 0; r < params.Rho; r++ {
		var firstZ1, firstZ2 []field.Element
		for l := 0; l < params.RhoLin; l++ {
			q5 := f.RandVector(nz, rnd)
			q6 := f.RandVector(nz, rnd)
			g.Z1Queries = append(g.Z1Queries, q5, q6, f.AddVec(q5, q6))
			q8 := f.RandVector(nz*nz, rnd)
			q9 := f.RandVector(nz*nz, rnd)
			g.Z2Queries = append(g.Z2Queries, q8, q9, f.AddVec(q8, q9))
			if l == 0 {
				firstZ1, firstZ2 = q5, q8
			}
		}
		// Quadratic-correction queries.
		qqa := f.RandVector(nz, rnd)
		qqb := f.RandVector(nz, rnd)
		g.Z1Queries = append(g.Z1Queries, qqa, qqb)
		outer := make([]field.Element, nz*nz)
		for i := 0; i < nz; i++ {
			for k := 0; k < nz; k++ {
				outer[i*nz+k] = f.Add(f.Mul(qqa[i], qqb[k]), firstZ2[i*nz+k])
			}
		}
		g.Z2Queries = append(g.Z2Queries, outer)

		// Circuit queries: γ₁, γ₂ from per-constraint randomness v_j
		// (the ρ·(c·|C| + f·K)/β cost of Figure 3).
		rep := &gingerRep{gammaConst: f.Zero(), ioCoeffs: make([]field.Element, nio)}
		gamma1 := make([]field.Element, nz)
		gamma2 := make([]field.Element, nz*nz)
		for _, c := range gs.Cons {
			vj := f.Rand(rnd)
			for _, t := range c {
				cv := f.Mul(vj, t.Coeff)
				switch t.Degree() {
				case 2:
					gamma2[(t.A-1)*nz+(t.B-1)] = f.Add(gamma2[(t.A-1)*nz+(t.B-1)], cv)
				case 1:
					v := t.A
					if v == 0 {
						v = t.B
					}
					if v <= nz {
						gamma1[v-1] = f.Add(gamma1[v-1], cv)
					} else {
						rep.ioCoeffs[v-nz-1] = f.Add(rep.ioCoeffs[v-nz-1], cv)
					}
				default:
					rep.gammaConst = f.Add(rep.gammaConst, cv)
				}
			}
		}
		g.Z1Queries = append(g.Z1Queries, f.AddVec(gamma1, firstZ1))
		g.Z2Queries = append(g.Z2Queries, f.AddVec(gamma2, firstZ2))
		g.reps = append(g.reps, rep)
	}
	return g, nil
}

// z1PerRep and z2PerRep give per-repetition query counts for the two
// oracles.
func (p Params) z1PerRep() int { return 3*p.RhoLin + 3 }
func (p Params) z2PerRep() int { return 3*p.RhoLin + 2 }

// BuildGingerProof materializes the Ginger proof vector (z, z⊗z) from a
// satisfying assignment of the canonical system.
func BuildGingerProof(f *field.Field, gs *constraint.GingerSystem, w []field.Element) (z, zz []field.Element, err error) {
	if len(w) != gs.NumVars+1 {
		return nil, nil, fmt.Errorf("pcp: assignment has %d entries, want %d", len(w), gs.NumVars+1)
	}
	nz := gs.NumUnbound()
	if nz > MaxGingerProofVars {
		return nil, nil, fmt.Errorf("pcp: |Z| = %d exceeds the materialization cap %d", nz, MaxGingerProofVars)
	}
	z = append([]field.Element(nil), w[1:nz+1]...)
	zz = make([]field.Element, nz*nz)
	for i := 0; i < nz; i++ {
		for k := 0; k < nz; k++ {
			zz[i*nz+k] = f.Mul(z[i], z[k])
		}
	}
	return z, zz, nil
}

// Check runs Ginger's linearity, quadratic-correction and circuit tests for
// one instance. io holds the instance's bound values in wire order.
func (g *GingerPCP) Check(z1Resp, z2Resp []field.Element, io []field.Element) CheckResult {
	f := g.F
	if len(z1Resp) != len(g.Z1Queries) || len(z2Resp) != len(g.Z2Queries) {
		return CheckResult{Reason: "response count mismatch"}
	}
	if len(io) != len(g.Sys.In)+len(g.Sys.Out) {
		return CheckResult{Reason: "io length mismatch"}
	}
	p1, p2 := g.Params.z1PerRep(), g.Params.z2PerRep()
	for r := 0; r < g.Params.Rho; r++ {
		r1 := z1Resp[r*p1 : (r+1)*p1]
		r2 := z2Resp[r*p2 : (r+1)*p2]
		for l := 0; l < g.Params.RhoLin; l++ {
			if !f.Equal(f.Add(r1[3*l], r1[3*l+1]), r1[3*l+2]) {
				return CheckResult{Reason: fmt.Sprintf("π₁ linearity test failed (rep %d, iter %d)", r, l)}
			}
			if !f.Equal(f.Add(r2[3*l], r2[3*l+1]), r2[3*l+2]) {
				return CheckResult{Reason: fmt.Sprintf("π₂ linearity test failed (rep %d, iter %d)", r, l)}
			}
		}
		base1 := 3 * g.Params.RhoLin
		base2 := 3 * g.Params.RhoLin
		// Quadratic correction: π₂(qq_a⊗qq_b + q8⁰) − π₂(q8⁰) == π₁(qq_a)·π₁(qq_b).
		lhs := f.Sub(r2[base2], r2[0])
		rhs := f.Mul(r1[base1], r1[base1+1])
		if !f.Equal(lhs, rhs) {
			return CheckResult{Reason: fmt.Sprintf("quadratic correction test failed (rep %d)", r)}
		}
		// Circuit test: (π₁(γ₁+q5⁰)−π₁(q5⁰)) + (π₂(γ₂+q8⁰)−π₂(q8⁰)) + γ₀(x,y) == 0.
		rep := g.reps[r]
		gamma0 := rep.gammaConst
		for k := range io {
			gamma0 = f.Add(gamma0, f.Mul(rep.ioCoeffs[k], io[k]))
		}
		total := f.Add(f.Sub(r1[base1+2], r1[0]), f.Add(f.Sub(r2[base2+1], r2[0]), gamma0))
		if !f.IsZero(total) {
			return CheckResult{Reason: fmt.Sprintf("circuit test failed (rep %d)", r)}
		}
	}
	return CheckResult{OK: true}
}

// ValidateGingerForPCP checks the batching precondition: no degree-2 term
// may touch a bound (input/output) wire.
func ValidateGingerForPCP(gs *constraint.GingerSystem) error {
	nz := gs.NumUnbound()
	for j, c := range gs.Cons {
		for _, t := range c {
			if t.Degree() == 2 && (t.A > nz || t.B > nz) {
				return fmt.Errorf("pcp: constraint %d has a degree-2 term touching a bound wire; isolate IO first", j)
			}
		}
	}
	return nil
}
