package field

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

// edgeBytes is the boundary corpus of TestMulExhaustiveEdges in byte form:
// 0, 1, p-1, p-2, and all-ones limbs, the values where carry handling in the
// CIOS loops matters most. It seeds FuzzFieldMul.
func edgeBytes(f *Field) [][]byte {
	p := f.Modulus()
	vals := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Rsh(p, 1),
	}
	out := make([][]byte, 0, len(vals)+1)
	for _, v := range vals {
		buf := make([]byte, Limbs*8)
		v.FillBytes(buf)
		out = append(out, buf)
	}
	out = append(out, bytes.Repeat([]byte{0xff}, Limbs*8))
	return out
}

// elementFromBytes interprets 32 big-endian bytes as an integer, reduces it
// mod p, and converts to Montgomery form via the generic path only (so the
// fixed-limb lane under test is not used to build its own inputs).
func elementFromBytes(f *Field, b []byte) (Element, *big.Int) {
	v := new(big.Int).SetBytes(b)
	v.Mod(v, f.pBig)
	var raw Element
	copyLimbs((*[Limbs]uint64)(&raw), v)
	return f.mulGeneric(raw, f.r2), v
}

// FuzzFieldMul differentially fuzzes the three multiplication lanes: the
// dispatched Mul (unrolled fixed-limb unless built with -tags purego), the
// generic CIOS loop, and a big.Int reference — plus the lazy-domain product,
// which must agree after one exact reduction. Any divergence is a soundness
// bug in the specialized kernels.
func FuzzFieldMul(fz *testing.F) {
	fields := allFields()
	for _, f := range fields {
		for _, e := range edgeBytes(f) {
			fz.Add(e, e)
			fz.Add(e, []byte{1})
		}
	}
	fz.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) > Limbs*8 || len(bb) > Limbs*8 {
			return
		}
		for _, f := range fields {
			a, av := elementFromBytes(f, ab)
			b, bv := elementFromBytes(f, bb)

			want := new(big.Int).Mul(av, bv)
			want.Mod(want, f.pBig)

			got := f.Mul(a, b)
			if f.ToBig(got).Cmp(want) != 0 {
				t.Fatalf("%s: dispatched Mul diverges from big.Int: %v·%v got %v want %v",
					f.Name(), av, bv, f.ToBig(got), want)
			}
			gen := f.mulGeneric(a, b)
			if gen != got {
				t.Fatalf("%s: generic CIOS diverges from dispatched Mul: %v·%v", f.Name(), av, bv)
			}
			lazy := f.Reduce(f.MulLazy(a, b))
			if lazy != got {
				t.Fatalf("%s: lazy product diverges after reduction: %v·%v", f.Name(), av, bv)
			}
		}
	})
}

// TestLazyDomainOps checks the lazy-domain contract directly: operands in
// [0, 2p) stay in [0, 2p) through MulLazy/AddLazy/SubLazy, and Reduce maps
// every result to the canonical representative.
func TestLazyDomainOps(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(7))}
	for _, f := range allFields() {
		p := f.Modulus()
		p2 := new(big.Int).Lsh(p, 1)
		inLazy := func(e Element) bool {
			// Lift the raw limbs (Montgomery form is irrelevant to the
			// range check — the domain bound is on the representation).
			v := new(big.Int)
			buf := make([]byte, Limbs*8)
			for i := 0; i < Limbs; i++ {
				putBE(buf[(Limbs-1-i)*8:], e[i])
			}
			return v.SetBytes(buf).Cmp(p2) < 0
		}
		for i := 0; i < 300; i++ {
			a, b := f.Rand(rng), f.Rand(rng)
			// Push operands into the upper lazy range [p, 2p) half the time.
			if i%2 == 1 {
				a = f.AddLazy(a, rawP(f))
			}
			la := f.MulLazy(a, b)
			if !inLazy(la) {
				t.Fatalf("%s: MulLazy left the lazy domain", f.Name())
			}
			if f.Reduce(la) != f.Mul(f.Reduce(a), b) {
				t.Fatalf("%s: MulLazy ≠ Mul after reduction", f.Name())
			}
			s := f.AddLazy(a, b)
			if !inLazy(s) {
				t.Fatalf("%s: AddLazy left the lazy domain", f.Name())
			}
			if f.Reduce(s) != f.Add(f.Reduce(a), b) {
				t.Fatalf("%s: AddLazy ≠ Add after reduction", f.Name())
			}
			d := f.SubLazy(a, b)
			if !inLazy(d) {
				t.Fatalf("%s: SubLazy left the lazy domain", f.Name())
			}
			if f.Reduce(d) != f.Sub(f.Reduce(a), b) {
				t.Fatalf("%s: SubLazy ≠ Sub after reduction", f.Name())
			}
		}
	}
}

// rawP returns the modulus itself as raw limbs: AddLazy-ing it onto a
// canonical element shifts the representation into [p, 2p) without changing
// the residue, exercising the upper half of the lazy domain.
func rawP(f *Field) Element {
	return Element{f.p[0], f.p[1], f.p[2], f.p[3]}
}

// TestMulPathDispatch pins the construction-time dispatch: in a default
// build every Field selects the fixed-limb path, under -tags purego none do.
func TestMulPathDispatch(t *testing.T) {
	for _, f := range allFields() {
		if f.fixed != hasFixedLimb {
			t.Fatalf("%s: fixed=%v, want %v", f.Name(), f.fixed, hasFixedLimb)
		}
	}
}
