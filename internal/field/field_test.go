package field

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// testReader adapts math/rand to io.Reader for deterministic element
// sampling in tests.
type testReader struct{ r *rand.Rand }

func (t testReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(t.r.Intn(256))
	}
	return len(p), nil
}

func allFields() []*Field {
	return []*Field{F128(), F220(), FTiny(), FTest()}
}

func TestProductionModuliArePrime(t *testing.T) {
	for _, f := range allFields() {
		if !f.Modulus().ProbablyPrime(64) {
			t.Errorf("%s: modulus %v is not prime", f.Name(), f.Modulus())
		}
	}
}

func TestProductionModuliBitLengths(t *testing.T) {
	if got := F128().Bits(); got != 128 {
		t.Errorf("F128 bit length = %d, want 128", got)
	}
	if got := F220().Bits(); got != 220 {
		t.Errorf("F220 bit length = %d, want 220", got)
	}
}

func TestTwoAdicity(t *testing.T) {
	if got := F128().TwoAdicity(); got < 32 {
		t.Errorf("F128 2-adicity = %d, want >= 32", got)
	}
	if got := F220().TwoAdicity(); got < 32 {
		t.Errorf("F220 2-adicity = %d, want >= 32", got)
	}
	if got := FTiny().TwoAdicity(); got != 12 {
		t.Errorf("FTiny 2-adicity = %d, want 12", got)
	}
	if got := FTest().TwoAdicity(); got != 56 {
		t.Errorf("FTest 2-adicity = %d, want 56", got)
	}
}

func TestRootOfUnityOrders(t *testing.T) {
	for _, f := range allFields() {
		s := f.TwoAdicity()
		for _, k := range []uint{1, 2, 8, s} {
			if k > s {
				continue
			}
			u := f.RootOfUnity(k)
			// u^(2^k) must be 1 and u^(2^(k-1)) must not be.
			v := u
			for i := uint(0); i < k-1; i++ {
				v = f.Mul(v, v)
			}
			if f.IsOne(v) {
				t.Errorf("%s: 2^%d-th root of unity has smaller order", f.Name(), k)
			}
			v = f.Mul(v, v)
			if !f.IsOne(v) {
				t.Errorf("%s: 2^%d-th root of unity has larger order", f.Name(), k)
			}
		}
	}
}

func TestBigRoundTrip(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(1))}
	for _, f := range allFields() {
		for i := 0; i < 200; i++ {
			a := f.Rand(rng)
			got := f.FromBig(f.ToBig(a))
			if !f.Equal(got, a) {
				t.Fatalf("%s: FromBig(ToBig(a)) != a", f.Name())
			}
		}
	}
}

func TestSignedRoundTrip(t *testing.T) {
	for _, f := range []*Field{F128(), F220()} {
		for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), 1<<62 - 1, -(1<<62 - 1)} {
			e := f.FromInt64(v)
			if got := f.SignedBig(e).Int64(); got != v {
				t.Errorf("%s: SignedBig(FromInt64(%d)) = %d", f.Name(), v, got)
			}
		}
	}
}

// TestArithmeticAgainstBig cross-checks limb arithmetic against math/big.
func TestArithmeticAgainstBig(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(2))}
	for _, f := range allFields() {
		p := f.Modulus()
		for i := 0; i < 500; i++ {
			a, b := f.Rand(rng), f.Rand(rng)
			ab, bb := f.ToBig(a), f.ToBig(b)

			checks := []struct {
				name string
				got  Element
				want *big.Int
			}{
				{"add", f.Add(a, b), new(big.Int).Add(ab, bb)},
				{"sub", f.Sub(a, b), new(big.Int).Sub(ab, bb)},
				{"mul", f.Mul(a, b), new(big.Int).Mul(ab, bb)},
				{"neg", f.Neg(a), new(big.Int).Neg(ab)},
				{"square", f.Square(a), new(big.Int).Mul(ab, ab)},
				{"double", f.Double(a), new(big.Int).Lsh(ab, 1)},
			}
			for _, c := range checks {
				want := new(big.Int).Mod(c.want, p)
				if f.ToBig(c.got).Cmp(want) != 0 {
					t.Fatalf("%s: %s mismatch: a=%v b=%v got=%v want=%v",
						f.Name(), c.name, ab, bb, f.ToBig(c.got), want)
				}
			}
		}
	}
}

// TestMulExhaustiveEdges drives Mul through boundary values where carry
// handling matters: 0, 1, p-1, p-2, and values with all-ones limbs reduced
// mod p.
func TestMulExhaustiveEdges(t *testing.T) {
	for _, f := range allFields() {
		p := f.Modulus()
		edges := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(2),
			new(big.Int).Sub(p, big.NewInt(1)),
			new(big.Int).Sub(p, big.NewInt(2)),
			new(big.Int).Rsh(p, 1),
		}
		for _, x := range edges {
			for _, y := range edges {
				got := f.ToBig(f.Mul(f.FromBig(x), f.FromBig(y)))
				want := new(big.Int).Mul(x, y)
				want.Mod(want, p)
				if got.Cmp(want) != 0 {
					t.Fatalf("%s: %v * %v = %v, want %v", f.Name(), x, y, got, want)
				}
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, f := range allFields() {
		f := f
		rng := testReader{rand.New(rand.NewSource(3))}
		gen := func() Element { return f.Rand(rng) }

		commutAdd := func() bool {
			a, b := gen(), gen()
			return f.Equal(f.Add(a, b), f.Add(b, a))
		}
		commutMul := func() bool {
			a, b := gen(), gen()
			return f.Equal(f.Mul(a, b), f.Mul(b, a))
		}
		assocMul := func() bool {
			a, b, c := gen(), gen(), gen()
			return f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c)))
		}
		distrib := func() bool {
			a, b, c := gen(), gen(), gen()
			return f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c)))
		}
		addInverse := func() bool {
			a := gen()
			return f.IsZero(f.Add(a, f.Neg(a)))
		}
		mulInverse := func() bool {
			a := gen()
			if f.IsZero(a) {
				return true
			}
			return f.IsOne(f.Mul(a, f.Inv(a)))
		}
		for name, prop := range map[string]func() bool{
			"a+b=b+a": commutAdd, "ab=ba": commutMul, "(ab)c=a(bc)": assocMul,
			"a(b+c)=ab+ac": distrib, "a+(-a)=0": addInverse, "a·a⁻¹=1": mulInverse,
		} {
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Errorf("%s: axiom %s failed: %v", f.Name(), name, err)
			}
		}
	}
}

func TestExp(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(4))}
	for _, f := range allFields() {
		a := f.Rand(rng)
		if !f.IsOne(f.Exp(a, big.NewInt(0))) {
			t.Errorf("%s: a^0 != 1", f.Name())
		}
		if !f.Equal(f.Exp(a, big.NewInt(1)), a) {
			t.Errorf("%s: a^1 != a", f.Name())
		}
		if !f.Equal(f.Exp(a, big.NewInt(5)), f.ExpUint(a, 5)) {
			t.Errorf("%s: Exp and ExpUint disagree", f.Name())
		}
		// Fermat: a^(p-1) = 1 for a != 0.
		if !f.IsZero(a) {
			pm1 := new(big.Int).Sub(f.Modulus(), big.NewInt(1))
			if !f.IsOne(f.Exp(a, pm1)) {
				t.Errorf("%s: a^(p-1) != 1", f.Name())
			}
		}
	}
}

func TestDiv(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(5))}
	f := F128()
	for i := 0; i < 50; i++ {
		a, b := f.Rand(rng), f.RandNonZero(rng)
		q := f.Div(a, b)
		if !f.Equal(f.Mul(q, b), a) {
			t.Fatal("Div: (a/b)*b != a")
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	F128().Inv(F128().Zero())
}

func TestBatchInv(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(6))}
	for _, f := range allFields() {
		for _, n := range []int{0, 1, 2, 7, 64} {
			src := make([]Element, n)
			for i := range src {
				src[i] = f.RandNonZero(rng)
			}
			dst := make([]Element, n)
			f.BatchInv(dst, src)
			for i := range src {
				if !f.Equal(dst[i], f.Inv(src[i])) {
					t.Fatalf("%s: BatchInv[%d] mismatch (n=%d)", f.Name(), i, n)
				}
			}
		}
	}
}

func TestBatchInvInPlace(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(7))}
	f := F128()
	src := make([]Element, 16)
	want := make([]Element, 16)
	for i := range src {
		src[i] = f.RandNonZero(rng)
		want[i] = f.Inv(src[i])
	}
	f.BatchInv(src, src)
	for i := range src {
		if !f.Equal(src[i], want[i]) {
			t.Fatalf("in-place BatchInv[%d] mismatch", i)
		}
	}
}

func TestInnerProduct(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(8))}
	for _, f := range allFields() {
		for _, n := range []int{0, 1, 3, 100, 1000} {
			a := f.RandVector(n, rng)
			b := f.RandVector(n, rng)
			want := f.Zero()
			for i := range a {
				want = f.Add(want, f.Mul(a[i], b[i]))
			}
			if got := f.InnerProduct(a, b); !f.Equal(got, want) {
				t.Fatalf("%s: InnerProduct(n=%d) = %v, want %v", f.Name(), n, f.ToBig(got), f.ToBig(want))
			}
		}
	}
}

func TestInnerProductExtremes(t *testing.T) {
	// All elements p-1 maximizes the accumulated magnitude.
	for _, f := range allFields() {
		n := 4096
		pm1 := f.Neg(f.One())
		a := make([]Element, n)
		for i := range a {
			a[i] = pm1
		}
		got := f.InnerProduct(a, a)
		// (p-1)² · n mod p = n mod p
		want := f.FromUint64(uint64(n))
		if !f.Equal(got, want) {
			t.Errorf("%s: extreme InnerProduct = %v, want %v", f.Name(), f.ToBig(got), f.ToBig(want))
		}
	}
}

func TestAddScaledAndAddVec(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(9))}
	f := F128()
	a := f.RandVector(32, rng)
	b := f.RandVector(32, rng)
	s := f.Rand(rng)
	sum := f.AddVec(a, b)
	for i := range sum {
		if !f.Equal(sum[i], f.Add(a[i], b[i])) {
			t.Fatal("AddVec mismatch")
		}
	}
	dst := append([]Element(nil), a...)
	f.AddScaled(dst, s, b)
	for i := range dst {
		if !f.Equal(dst[i], f.Add(a[i], f.Mul(s, b[i]))) {
			t.Fatal("AddScaled mismatch")
		}
	}
}

func TestRandInRange(t *testing.T) {
	rng := testReader{rand.New(rand.NewSource(10))}
	for _, f := range allFields() {
		seen := map[string]bool{}
		for i := 0; i < 64; i++ {
			e := f.Rand(rng)
			v := f.ToBig(e)
			if v.Sign() < 0 || v.Cmp(f.Modulus()) >= 0 {
				t.Fatalf("%s: Rand out of range: %v", f.Name(), v)
			}
			seen[v.String()] = true
		}
		if len(seen) < 32 {
			t.Errorf("%s: Rand looks non-uniform: only %d distinct of 64", f.Name(), len(seen))
		}
	}
}

func TestPow2(t *testing.T) {
	f := F128()
	for k := uint(0); k < 130; k++ {
		want := new(big.Int).Lsh(big.NewInt(1), k)
		want.Mod(want, f.Modulus())
		if f.ToBig(f.Pow2(k)).Cmp(want) != 0 {
			t.Fatalf("Pow2(%d) mismatch", k)
		}
	}
}

func TestNewRejectsBadModuli(t *testing.T) {
	cases := []*big.Int{
		big.NewInt(0), big.NewInt(-7), big.NewInt(4), big.NewInt(1),
		new(big.Int).Lsh(big.NewInt(1), 255), // too large
	}
	for _, p := range cases {
		if _, err := New("bad", p); err == nil {
			t.Errorf("New accepted bad modulus %v", p)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	for _, f := range []*Field{F128(), F220()} {
		b.Run(f.Name(), func(b *testing.B) {
			rng := testReader{rand.New(rand.NewSource(11))}
			x, y := f.Rand(rng), f.Rand(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x = f.Mul(x, y)
			}
		})
	}
}

func BenchmarkAdd(b *testing.B) {
	f := F128()
	rng := testReader{rand.New(rand.NewSource(12))}
	x, y := f.Rand(rng), f.Rand(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Add(x, y)
	}
}

func BenchmarkInv(b *testing.B) {
	for _, f := range []*Field{F128(), F220()} {
		b.Run(f.Name(), func(b *testing.B) {
			rng := testReader{rand.New(rand.NewSource(13))}
			x := f.RandNonZero(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x = f.Inv(f.Add(x, f.One()))
			}
		})
	}
}

func BenchmarkBatchInv(b *testing.B) {
	// Montgomery's trick vs. one Fermat inversion per element — the delta
	// the poly layer banks on for Lagrange denominators and NTT scalings.
	f := F128()
	rng := testReader{rand.New(rand.NewSource(21))}
	src := make([]Element, 1024)
	for i := range src {
		src[i] = f.RandNonZero(rng)
	}
	dst := make([]Element, len(src))
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.BatchInv(dst, src)
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range src {
				dst[j] = f.Inv(src[j])
			}
		}
	})
}

func BenchmarkInnerProduct(b *testing.B) {
	f := F128()
	rng := testReader{rand.New(rand.NewSource(14))}
	x := f.RandVector(1024, rng)
	y := f.RandVector(1024, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.InnerProduct(x, y)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1024), "ns/term")
}
