package field

import (
	"io"
	"math/big"
	"math/bits"
)

// Rand returns a uniformly random field element drawn from r using rejection
// sampling over the modulus' bit length.
func (f *Field) Rand(r io.Reader) Element {
	nbytes := (f.bits + 7) / 8
	topMask := byte(0xff >> (uint(nbytes*8-f.bits) & 7))
	buf := make([]byte, nbytes)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			panic("field: randomness source failed: " + err.Error())
		}
		buf[0] &= topMask
		var raw Element
		for i := 0; i < nbytes; i++ {
			raw[i/8] |= uint64(buf[nbytes-1-i]) << (uint(i%8) * 8)
		}
		if f.lessThanP(raw) {
			// raw is a canonical residue; convert to Montgomery form.
			return f.Mul(raw, f.r2)
		}
	}
}

// RandVector fills a new length-n vector with uniformly random elements.
func (f *Field) RandVector(n int, r io.Reader) []Element {
	v := make([]Element, n)
	for i := range v {
		v[i] = f.Rand(r)
	}
	return v
}

// RandNonZero returns a uniformly random non-zero field element.
func (f *Field) RandNonZero(r io.Reader) Element {
	for {
		e := f.Rand(r)
		if !f.IsZero(e) {
			return e
		}
	}
}

func (f *Field) lessThanP(a Element) bool {
	var bw uint64
	_, bw = bits.Sub64(a[0], f.p[0], 0)
	_, bw = bits.Sub64(a[1], f.p[1], bw)
	_, bw = bits.Sub64(a[2], f.p[2], bw)
	_, bw = bits.Sub64(a[3], f.p[3], bw)
	return bw != 0
}

// InnerProduct returns Σ a[i]·b[i] using lazy reduction: the 512-bit partial
// products accumulate into a 576-bit accumulator and a single Montgomery
// reduction happens at the end. This is the f_lazy optimization of §5.1: the
// prover's query responses are inner products over vectors of length |u|,
// and skipping the per-term reduction saves roughly 3× (see the field
// benchmarks).
func (f *Field) InnerProduct(a, b []Element) Element {
	if len(a) != len(b) {
		panic("field: InnerProduct length mismatch")
	}
	var acc [9]uint64
	for i := range a {
		mulAcc(&acc, a[i], b[i])
	}
	return f.reduceWide(acc)
}

// AddScaled returns dst[i] += s·src[i] for all i, in place.
func (f *Field) AddScaled(dst []Element, s Element, src []Element) {
	if len(dst) != len(src) {
		panic("field: AddScaled length mismatch")
	}
	for i := range dst {
		dst[i] = f.Add(dst[i], f.Mul(s, src[i]))
	}
}

// AddVec returns the element-wise sum of a and b as a fresh vector.
func (f *Field) AddVec(a, b []Element) []Element {
	if len(a) != len(b) {
		panic("field: AddVec length mismatch")
	}
	out := make([]Element, len(a))
	for i := range a {
		out[i] = f.Add(a[i], b[i])
	}
	return out
}

// mulAcc accumulates the full 512-bit product a·b into acc.
func mulAcc(acc *[9]uint64, a, b Element) {
	var prod [8]uint64
	for i := 0; i < Limbs; i++ {
		var c uint64
		for j := 0; j < Limbs; j++ {
			c, prod[i+j] = madd2(a[j], b[i], prod[i+j], c)
		}
		prod[i+Limbs] = c
	}
	var carry uint64
	for i := 0; i < 8; i++ {
		acc[i], carry = bits.Add64(acc[i], prod[i], carry)
	}
	acc[8] += carry
}

// reduceWide reduces a 9-limb accumulator of Montgomery-form products.
// If a, b are Montgomery forms aR, bR then acc holds Σ a_i b_i R²; reducing
// modulo p and applying one Montgomery reduction yields (Σ a_i b_i)·R — the
// Montgomery form of the true inner product.
func (f *Field) reduceWide(acc [9]uint64) Element {
	// big.Int reduction of the 576-bit value: one allocation per inner
	// product, negligible next to the O(n) multiply work.
	buf := make([]byte, 9*8)
	for i := 0; i < 9; i++ {
		putBE(buf[(9-1-i)*8:], acc[i])
	}
	v := new(big.Int).SetBytes(buf)
	v.Mod(v, f.pBig)
	var raw Element
	copyLimbs((*[Limbs]uint64)(&raw), v)
	// raw = (Σ a_i b_i)R² mod p; one REDC (multiply by 1) gives (Σ a_i b_i)R.
	return f.Mul(raw, Element{1})
}

// Pow2 returns 2^k as a field element.
func (f *Field) Pow2(k uint) Element {
	return f.Exp(f.FromUint64(2), new(big.Int).SetUint64(uint64(k)))
}
