package field

import (
	"math/rand"
	"testing"
)

func TestElementCodecRoundTrip(t *testing.T) {
	f := F128()
	r := rand.New(rand.NewSource(7))
	els := make([]Element, 33)
	for i := range els {
		els[i] = f.FromUint64(r.Uint64())
	}
	els[0] = f.Zero()
	els[1] = f.One()

	buf := AppendElements([]byte{0xAA}, els)
	if buf[0] != 0xAA {
		t.Fatal("AppendElements clobbered the prefix")
	}
	got, rest, err := DecodeElements(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got) != len(els) {
		t.Fatalf("got %d elements, want %d", len(got), len(els))
	}
	for i := range els {
		if got[i] != els[i] {
			t.Fatalf("element %d: got %v, want %v", i, got[i], els[i])
		}
	}
}

func TestElementCodecEmpty(t *testing.T) {
	buf := AppendElements(nil, nil)
	got, rest, err := DecodeElements(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || len(rest) != 0 {
		t.Fatalf("empty slice decoded to %v, rest %d", got, len(rest))
	}
}

func TestElementCodecTruncation(t *testing.T) {
	f := FTest()
	buf := AppendElements(nil, []Element{f.One(), f.FromUint64(42)})
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeElements(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	// A declared length far beyond the buffer must fail fast, not allocate.
	huge := AppendElements(nil, nil)
	huge[0] = 0xFF // uvarint continuation byte making the prefix bogus/huge
	if _, _, err := DecodeElements(huge); err == nil {
		t.Fatal("bogus length prefix decoded without error")
	}
}

func TestValidateRejectsNonCanonical(t *testing.T) {
	f := FTiny() // p = 12289, single limb in use
	if !f.Validate(f.Zero()) || !f.Validate(f.One()) {
		t.Fatal("canonical elements rejected")
	}
	var p Element
	copyLimbs((*[Limbs]uint64)(&p), f.Modulus())
	if f.Validate(p) {
		t.Fatal("modulus itself accepted as canonical")
	}
	p[Limbs-1] = ^uint64(0)
	if f.Validate(p) {
		t.Fatal("huge limb accepted as canonical")
	}
}
