package field

import (
	"fmt"
	"math/big"
	"sync"
)

// Production moduli mirroring §5.1 of the paper: computations over 32-bit
// integers use a 128-bit prime modulus; the rational-input configuration of
// root finding uses a 220-bit modulus. Both primes were generated of the form
// c·2^32 + 1 (c odd) so that radix-2 NTTs of size up to 2^32 exist; the
// params test verifies primality and 2-adicity.
const (
	// P128Hex is a 128-bit prime with p ≡ 1 (mod 2^32).
	P128Hex = "ef004a8b4f45042940939d5f00000001"
	// P220Hex is a 220-bit prime with p ≡ 1 (mod 2^32).
	P220Hex = "e79d63087b9a690276191b380dc76648037e26acdc9426f00000001"
	// PTinyHex is a small NTT-friendly prime (12289 = 3·2^12 + 1) used by
	// exhaustive tests; soundness error at this size is large, so it is
	// never used by the protocol itself.
	PTinyHex = "3001"
	// PTestHex is a medium NTT-friendly prime (27·2^56 + 1, 61 bits) for
	// fast full-protocol tests: big enough for realistic integer ranges,
	// small enough that test ElGamal groups generate quickly.
	PTestHex = "1b00000000000001"
)

var (
	f128Once sync.Once
	f128     *Field
	f220Once sync.Once
	f220     *Field
	ftinOnce sync.Once
	ftin     *Field
	ftstOnce sync.Once
	ftst     *Field
)

func mustHex(h string) *big.Int {
	v, ok := new(big.Int).SetString(h, 16)
	if !ok {
		panic("field: bad built-in modulus " + h)
	}
	return v
}

// F128 returns the shared 128-bit production field.
func F128() *Field {
	f128Once.Do(func() { f128 = MustNew("F128", mustHex(P128Hex)) })
	return f128
}

// F220 returns the shared 220-bit production field.
func F220() *Field {
	f220Once.Do(func() { f220 = MustNew("F220", mustHex(P220Hex)) })
	return f220
}

// FTiny returns the shared 14-bit test field (p = 12289).
func FTiny() *Field {
	ftinOnce.Do(func() { ftin = MustNew("FTiny", mustHex(PTinyHex)) })
	return ftin
}

// FTest returns the shared 61-bit test field (p = 27·2^56 + 1).
func FTest() *Field {
	ftstOnce.Do(func() { ftst = MustNew("FTest", mustHex(PTestHex)) })
	return ftst
}

// Resolve returns the field named by (name, modulusHex), reusing the shared
// built-in instances when both match so deserialized programs share NTT and
// Montgomery constants with everything else in the process. Unknown
// name/modulus pairs construct a fresh Field.
func Resolve(name, modulusHex string) (*Field, error) {
	switch {
	case name == "F128" && modulusHex == P128Hex:
		return F128(), nil
	case name == "F220" && modulusHex == P220Hex:
		return F220(), nil
	case name == "FTiny" && modulusHex == PTinyHex:
		return FTiny(), nil
	case name == "FTest" && modulusHex == PTestHex:
		return FTest(), nil
	}
	v, ok := new(big.Int).SetString(modulusHex, 16)
	if !ok {
		return nil, fmt.Errorf("field: bad modulus hex %q for field %q", modulusHex, name)
	}
	return New(name, v)
}
