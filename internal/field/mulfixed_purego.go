//go:build purego

package field

// hasFixedLimb is false under the purego tag: every Field constructed in
// this build dispatches to the generic CIOS loop, proving the fallback lane
// stays complete (CI runs the package tests this way).
const hasFixedLimb = false

// mulUnrolled4 is never reached when hasFixedLimb is false; the stub keeps
// the call site in Mul compiling without a build-tag fork there.
func mulUnrolled4(p *[Limbs]uint64, inv uint64, a, b Element) Element {
	panic("field: fixed-limb path called in purego build")
}
