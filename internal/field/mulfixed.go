//go:build !purego

package field

import "math/bits"

// hasFixedLimb reports whether this build carries the unrolled fixed-limb
// Montgomery multiplication path. New() consults it exactly once per Field,
// so a `-tags purego` build exercises the generic CIOS loop everywhere (the
// CI fallback job builds and tests with that tag).
const hasFixedLimb = true

// madd1 returns a·b + c as (hi, lo); it cannot overflow 128 bits.
func madd1(a, b, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// mulUnrolled4 is the fully unrolled 4-limb CIOS Montgomery product with the
// final conditional subtraction left to the caller: the result is < 2p.
//
// Correctness of the truncated return relies on the construction-time bound
// p < 2^254: for operands a, b < 2p the CIOS accumulator ends below
// (4p² + p·2^256)/2^256 < 2p < 2^255, so the fifth working word is always
// zero and the product fits the four returned limbs. This is also what makes
// the value a legal input to another lazy multiplication — the NTT
// butterflies (internal/poly) stay in the [0, 2p) domain across whole
// transform levels and reduce once at the end.
func mulUnrolled4(p *[Limbs]uint64, inv uint64, a, b Element) Element {
	var t0, t1, t2, t3, t4 uint64
	var c, cr uint64

	// --- i = 0: t = a·b[0] (accumulator starts at zero) ---
	b0 := b[0]
	c, t0 = bits.Mul64(a[0], b0)
	c, t1 = madd1(a[1], b0, c)
	c, t2 = madd1(a[2], b0, c)
	t4, t3 = madd1(a[3], b0, c)
	m := t0 * inv
	c, _ = madd2(m, p[0], t0, 0)
	c, t0 = madd2(m, p[1], t1, c)
	c, t1 = madd2(m, p[2], t2, c)
	c, t2 = madd2(m, p[3], t3, c)
	t3, cr = bits.Add64(t4, c, 0)
	t4 = cr

	// --- i = 1..3: t += a·b[i], then one Montgomery reduction step ---
	b1 := b[1]
	c, t0 = madd2(a[0], b1, t0, 0)
	c, t1 = madd2(a[1], b1, t1, c)
	c, t2 = madd2(a[2], b1, t2, c)
	c, t3 = madd2(a[3], b1, t3, c)
	t4, _ = bits.Add64(t4, c, 0)
	m = t0 * inv
	c, _ = madd2(m, p[0], t0, 0)
	c, t0 = madd2(m, p[1], t1, c)
	c, t1 = madd2(m, p[2], t2, c)
	c, t2 = madd2(m, p[3], t3, c)
	t3, cr = bits.Add64(t4, c, 0)
	t4 = cr

	b2 := b[2]
	c, t0 = madd2(a[0], b2, t0, 0)
	c, t1 = madd2(a[1], b2, t1, c)
	c, t2 = madd2(a[2], b2, t2, c)
	c, t3 = madd2(a[3], b2, t3, c)
	t4, _ = bits.Add64(t4, c, 0)
	m = t0 * inv
	c, _ = madd2(m, p[0], t0, 0)
	c, t0 = madd2(m, p[1], t1, c)
	c, t1 = madd2(m, p[2], t2, c)
	c, t2 = madd2(m, p[3], t3, c)
	t3, cr = bits.Add64(t4, c, 0)
	t4 = cr

	b3 := b[3]
	c, t0 = madd2(a[0], b3, t0, 0)
	c, t1 = madd2(a[1], b3, t1, c)
	c, t2 = madd2(a[2], b3, t2, c)
	c, t3 = madd2(a[3], b3, t3, c)
	t4, _ = bits.Add64(t4, c, 0)
	m = t0 * inv
	c, _ = madd2(m, p[0], t0, 0)
	c, t0 = madd2(m, p[1], t1, c)
	c, t1 = madd2(m, p[2], t2, c)
	c, t2 = madd2(m, p[3], t3, c)
	t3, _ = bits.Add64(t4, c, 0)

	return Element{t0, t1, t2, t3}
}
