// Package field implements arithmetic in prime fields F_p for odd moduli of
// up to 254 bits, using 4×64-bit Montgomery representation.
//
// Every protocol in this repository — the QAP construction, both linear PCPs,
// the linear commitment, and the cost model of Figure 3 — computes over one
// of two production fields mirroring §5.1 of the paper: a 128-bit field and a
// 220-bit field. Both moduli are NTT-friendly (p ≡ 1 mod 2^32) so the prover
// can use radix-2 number-theoretic transforms when computing the coefficients
// of H(t) = P_w(t)/D(t).
//
// A Field value owns the modulus and all precomputed Montgomery and NTT
// constants; Element values are meaningless without the Field that produced
// them. Elements are always kept in Montgomery form.
package field

import (
	"fmt"
	"math/big"
	"math/bits"

	"zaatar/internal/obs"
)

// Limbs is the number of 64-bit limbs in an Element.
const Limbs = 4

// Field constructions record which multiplication path they selected into
// the process-wide registry ("field.mul.*" in docs/PROTOCOL.md §5.1), so a
// deployment can tell at a glance whether it is running the specialized
// kernels or the purego fallback.
const (
	// MetricMulFixed counts Fields dispatched to the unrolled fixed-limb
	// Montgomery multiply.
	MetricMulFixed = "field.mul.fixed"
	// MetricMulGeneric counts Fields dispatched to the generic CIOS loop.
	MetricMulGeneric = "field.mul.generic"
)

func metricMulPath() string {
	if hasFixedLimb {
		return MetricMulFixed
	}
	return MetricMulGeneric
}

// Element is a field element in Montgomery form: the value it represents is
// (e[0] + e[1]·2^64 + e[2]·2^128 + e[3]·2^192) · R⁻¹ mod p, with R = 2^256.
// Limbs are little-endian. The zero value represents the field element 0.
type Element [Limbs]uint64

// Field holds a prime modulus and the constants needed for Montgomery and
// NTT arithmetic. Construct with New; a Field is immutable after creation
// and safe for concurrent use.
type Field struct {
	name string
	p    [Limbs]uint64 // modulus, little-endian limbs
	pBig *big.Int
	bits int // bit length of p

	inv uint64        // -p⁻¹ mod 2^64, for Montgomery reduction
	r   Element       // R mod p: the Montgomery form of 1
	r2  Element       // R² mod p: used to convert into Montgomery form
	p2  [Limbs]uint64 // 2p, the lazy-domain modulus (p < 2^254, so it fits)

	// fixed selects the unrolled fixed-limb Montgomery multiply. It is
	// decided exactly once, at construction, so builds without the
	// specialization (-tags purego) and future generic widths keep working
	// through the loop CIOS with no per-call feature probing.
	fixed bool

	twoAdicity  uint    // s where p-1 = odd·2^s
	rootOfUnity Element // a primitive 2^s-th root of unity (Montgomery form)

	halfP *big.Int // (p-1)/2, used by SignedBig
}

// New constructs the field F_p for the given odd prime modulus. It verifies
// only that p is odd and ≥ 3 and fits in 254 bits; callers are responsible
// for primality (the production parameters carry tests that check it).
func New(name string, p *big.Int) (*Field, error) {
	if p.Sign() <= 0 || p.Bit(0) == 0 || p.BitLen() < 2 {
		return nil, fmt.Errorf("field: modulus must be an odd prime ≥ 3, got %v", p)
	}
	if p.BitLen() > 254 {
		return nil, fmt.Errorf("field: modulus too large (%d bits, max 254)", p.BitLen())
	}
	f := &Field{
		name: name,
		pBig: new(big.Int).Set(p),
		bits: p.BitLen(),
	}
	copyLimbs(&f.p, p)

	// inv = -p⁻¹ mod 2^64 by Newton iteration: x_{k+1} = x_k(2 - p·x_k).
	x := f.p[0] // p is odd so p ≡ p⁻¹ mod 2
	for i := 0; i < 5; i++ {
		x *= 2 - f.p[0]*x
	}
	f.inv = -x

	r := new(big.Int).Lsh(big.NewInt(1), 64*Limbs)
	r.Mod(r, p)
	copyLimbs((*[Limbs]uint64)(&f.r), r)
	r2 := new(big.Int).Lsh(big.NewInt(1), 2*64*Limbs)
	r2.Mod(r2, p)
	copyLimbs((*[Limbs]uint64)(&f.r2), r2)
	copyLimbs(&f.p2, new(big.Int).Lsh(p, 1))
	f.fixed = hasFixedLimb
	obs.Default().Counter(metricMulPath()).Inc()

	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	f.halfP = new(big.Int).Rsh(pm1, 1)
	f.twoAdicity = uint(trailingZeros(pm1))
	f.rootOfUnity = f.findRootOfUnity()
	return f, nil
}

// MustNew is New for compiled-in parameters; it panics on error.
func MustNew(name string, p *big.Int) *Field {
	f, err := New(name, p)
	if err != nil {
		panic(err)
	}
	return f
}

func copyLimbs(dst *[Limbs]uint64, v *big.Int) {
	var buf [Limbs * 8]byte
	v.FillBytes(buf[:])
	for i := 0; i < Limbs; i++ {
		dst[i] = beUint64(buf[(Limbs-1-i)*8:])
	}
}

func beUint64(b []byte) uint64 {
	return uint64(b[7]) | uint64(b[6])<<8 | uint64(b[5])<<16 | uint64(b[4])<<24 |
		uint64(b[3])<<32 | uint64(b[2])<<40 | uint64(b[1])<<48 | uint64(b[0])<<56
}

func trailingZeros(v *big.Int) int {
	n := 0
	for v.Bit(n) == 0 {
		n++
	}
	return n
}

// findRootOfUnity returns a primitive 2^s-th root of unity where s is the
// field's 2-adicity. For any x, u = x^odd has order dividing 2^s; u is
// primitive iff u^(2^(s-1)) ≠ 1, which holds for half of all x.
func (f *Field) findRootOfUnity() Element {
	if f.twoAdicity == 0 {
		return f.One()
	}
	odd := new(big.Int).Rsh(new(big.Int).Sub(f.pBig, big.NewInt(1)), f.twoAdicity)
	for x := uint64(2); ; x++ {
		u := f.Exp(f.FromUint64(x), odd)
		// v = u^(2^(s-1))
		v := u
		for i := uint(0); i < f.twoAdicity-1; i++ {
			v = f.Mul(v, v)
		}
		if !f.IsOne(v) {
			return u
		}
	}
}

// Name returns the field's human-readable name (e.g. "F128").
func (f *Field) Name() string { return f.name }

// Bits returns the bit length of the modulus.
func (f *Field) Bits() int { return f.bits }

// Modulus returns a copy of the prime modulus.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.pBig) }

// TwoAdicity returns s where p-1 = odd·2^s; radix-2 NTTs exist for all sizes
// up to 2^s.
func (f *Field) TwoAdicity() uint { return f.twoAdicity }

// Zero returns the field element 0.
func (f *Field) Zero() Element { return Element{} }

// One returns the field element 1.
func (f *Field) One() Element { return f.r }

// IsZero reports whether a is 0.
func (f *Field) IsZero(a Element) bool {
	return a[0]|a[1]|a[2]|a[3] == 0
}

// IsOne reports whether a is 1.
func (f *Field) IsOne(a Element) bool {
	return a == f.r
}

// Equal reports whether a and b represent the same field element.
func (f *Field) Equal(a, b Element) bool { return a == b }

// FromUint64 returns the field element v mod p.
func (f *Field) FromUint64(v uint64) Element {
	return f.Mul(Element{v}, f.r2)
}

// FromInt64 returns the field element v mod p, mapping negative v to p-|v|.
func (f *Field) FromInt64(v int64) Element {
	if v >= 0 {
		return f.FromUint64(uint64(v))
	}
	return f.Neg(f.FromUint64(uint64(-v)))
}

// FromBig returns the field element v mod p. v may be negative or larger
// than p.
func (f *Field) FromBig(v *big.Int) Element {
	t := new(big.Int).Mod(v, f.pBig) // Mod result is always in [0, p)
	var raw Element
	copyLimbs((*[Limbs]uint64)(&raw), t)
	return f.Mul(raw, f.r2)
}

// ToBig returns the canonical representative of a in [0, p).
func (f *Field) ToBig(a Element) *big.Int {
	s := f.fromMont(a)
	buf := make([]byte, Limbs*8)
	for i := 0; i < Limbs; i++ {
		putBE(buf[(Limbs-1-i)*8:], s[i])
	}
	return new(big.Int).SetBytes(buf)
}

// SignedBig returns the representative of a in (-p/2, p/2], which recovers
// signed integers that were embedded with FromInt64.
func (f *Field) SignedBig(a Element) *big.Int {
	v := f.ToBig(a)
	if v.Cmp(f.halfP) > 0 {
		v.Sub(v, f.pBig)
	}
	return v
}

func putBE(b []byte, v uint64) {
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// Add returns a + b.
func (f *Field) Add(a, b Element) Element {
	var c uint64
	var out Element
	out[0], c = bits.Add64(a[0], b[0], 0)
	out[1], c = bits.Add64(a[1], b[1], c)
	out[2], c = bits.Add64(a[2], b[2], c)
	out[3], c = bits.Add64(a[3], b[3], c)
	// p < 2^254 so the sum cannot overflow 2^256; reduce once if ≥ p.
	_ = c
	return f.reduceOnce(out)
}

// Double returns 2a.
func (f *Field) Double(a Element) Element { return f.Add(a, a) }

// Sub returns a - b.
func (f *Field) Sub(a, b Element) Element {
	var bw uint64
	var out Element
	out[0], bw = bits.Sub64(a[0], b[0], 0)
	out[1], bw = bits.Sub64(a[1], b[1], bw)
	out[2], bw = bits.Sub64(a[2], b[2], bw)
	out[3], bw = bits.Sub64(a[3], b[3], bw)
	if bw != 0 {
		var c uint64
		out[0], c = bits.Add64(out[0], f.p[0], 0)
		out[1], c = bits.Add64(out[1], f.p[1], c)
		out[2], c = bits.Add64(out[2], f.p[2], c)
		out[3], _ = bits.Add64(out[3], f.p[3], c)
	}
	return out
}

// Neg returns -a.
func (f *Field) Neg(a Element) Element {
	if f.IsZero(a) {
		return a
	}
	return f.Sub(Element{}, a)
}

func (f *Field) reduceOnce(a Element) Element {
	var bw uint64
	var t Element
	t[0], bw = bits.Sub64(a[0], f.p[0], 0)
	t[1], bw = bits.Sub64(a[1], f.p[1], bw)
	t[2], bw = bits.Sub64(a[2], f.p[2], bw)
	t[3], bw = bits.Sub64(a[3], f.p[3], bw)
	if bw != 0 {
		return a
	}
	return t
}

// madd2 returns the 128-bit value a·b + t + c as (hi, lo). The result cannot
// overflow: (2^64-1)² + 2(2^64-1) = 2^128 - 1.
func madd2(a, b, t, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, t, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// Mul returns a·b using CIOS Montgomery multiplication. The unrolled
// fixed-limb path (mulfixed.go) is selected once at construction; builds
// without it (-tags purego) run the generic loop below.
func (f *Field) Mul(a, b Element) Element {
	if f.fixed {
		return f.reduceOnce(mulUnrolled4(&f.p, f.inv, a, b))
	}
	return f.mulGeneric(a, b)
}

// MulLazy returns a·b in the lazy domain: for operands in [0, 2p) the result
// is in [0, 2p) (this needs p < 2^254, which New enforces). The NTT
// butterflies run whole transform levels in this domain and pay the final
// conditional subtraction once per element, not once per multiply.
func (f *Field) MulLazy(a, b Element) Element {
	if f.fixed {
		return mulUnrolled4(&f.p, f.inv, a, b)
	}
	return f.mulGenericRaw(a, b)
}

// AddLazy returns a + b in the lazy domain [0, 2p): the sum is reduced by
// 2p, not p, saving the exact-reduction compare on the NTT hot path.
func (f *Field) AddLazy(a, b Element) Element {
	var c uint64
	var out Element
	out[0], c = bits.Add64(a[0], b[0], 0)
	out[1], c = bits.Add64(a[1], b[1], c)
	out[2], c = bits.Add64(a[2], b[2], c)
	out[3], _ = bits.Add64(a[3], b[3], c)
	var bw uint64
	var t Element
	t[0], bw = bits.Sub64(out[0], f.p2[0], 0)
	t[1], bw = bits.Sub64(out[1], f.p2[1], bw)
	t[2], bw = bits.Sub64(out[2], f.p2[2], bw)
	t[3], bw = bits.Sub64(out[3], f.p2[3], bw)
	if bw != 0 {
		return out
	}
	return t
}

// SubLazy returns a - b in the lazy domain [0, 2p).
func (f *Field) SubLazy(a, b Element) Element {
	var bw uint64
	var out Element
	out[0], bw = bits.Sub64(a[0], b[0], 0)
	out[1], bw = bits.Sub64(a[1], b[1], bw)
	out[2], bw = bits.Sub64(a[2], b[2], bw)
	out[3], bw = bits.Sub64(a[3], b[3], bw)
	if bw != 0 {
		var c uint64
		out[0], c = bits.Add64(out[0], f.p2[0], 0)
		out[1], c = bits.Add64(out[1], f.p2[1], c)
		out[2], c = bits.Add64(out[2], f.p2[2], c)
		out[3], _ = bits.Add64(out[3], f.p2[3], c)
	}
	return out
}

// Reduce maps a lazy-domain value in [0, 2p) back to the canonical range
// [0, p). It is the identity on already-canonical elements.
func (f *Field) Reduce(a Element) Element {
	return f.reduceOnce(a)
}

// mulGeneric is the generic-path full product: the CIOS loop plus the exact
// final reduction. It is the purego fallback and the reference lane of the
// differential fuzz target.
func (f *Field) mulGeneric(a, b Element) Element {
	return f.reduceOnce(f.mulGenericRaw(a, b))
}

// mulGenericRaw is the variable-bound CIOS loop (Acar's algorithm with s+2
// working words, correct for any odd modulus < 2^254), without the final
// exact reduction: for operands in [0, 2p) the result is in [0, 2p).
func (f *Field) mulGenericRaw(a, b Element) Element {
	var t [Limbs + 2]uint64
	for i := 0; i < Limbs; i++ {
		// t += a * b[i]
		var c uint64
		for j := 0; j < Limbs; j++ {
			c, t[j] = madd2(a[j], b[i], t[j], c)
		}
		var cr uint64
		t[Limbs], cr = bits.Add64(t[Limbs], c, 0)
		t[Limbs+1] = cr

		// Montgomery step: add m·p so that t ≡ 0 mod 2^64, then shift right
		// by one word.
		m := t[0] * f.inv
		c, _ = madd2(m, f.p[0], t[0], 0)
		for j := 1; j < Limbs; j++ {
			c, t[j-1] = madd2(m, f.p[j], t[j], c)
		}
		t[Limbs-1], cr = bits.Add64(t[Limbs], c, 0)
		t[Limbs] = t[Limbs+1] + cr
		t[Limbs+1] = 0
	}
	// With p < 2^254 the CIOS accumulator never reaches 2^256 (the result
	// is < 2p < 2^255 even for lazy-domain operands), so t[Limbs] is zero
	// here and the four low words carry the whole product.
	return Element{t[0], t[1], t[2], t[3]}
}

// Square returns a².
func (f *Field) Square(a Element) Element { return f.Mul(a, a) }

// fromMont converts out of Montgomery form (multiplies by R⁻¹).
func (f *Field) fromMont(a Element) Element {
	return f.Mul(a, Element{1})
}

// Exp returns a^e for a non-negative exponent e.
func (f *Field) Exp(a Element, e *big.Int) Element {
	if e.Sign() < 0 {
		panic("field: negative exponent")
	}
	out := f.One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		out = f.Mul(out, out)
		if e.Bit(i) == 1 {
			out = f.Mul(out, a)
		}
	}
	return out
}

// ExpUint returns a^e.
func (f *Field) ExpUint(a Element, e uint64) Element {
	out := f.One()
	for i := 63 - bits.LeadingZeros64(e|1); i >= 0; i-- {
		out = f.Mul(out, out)
		if e&(1<<uint(i)) != 0 {
			out = f.Mul(out, a)
		}
	}
	return out
}

// Inv returns a⁻¹; it panics if a is zero (fields have no zero inverse, and
// a zero here always indicates a protocol bug, not bad input).
func (f *Field) Inv(a Element) Element {
	if f.IsZero(a) {
		panic("field: inverse of zero")
	}
	// a is aR in Montgomery form; ModInverse gives (aR)⁻¹; multiplying by
	// R³ (i.e. Mul by r2 twice) yields a⁻¹R, the Montgomery form of a⁻¹.
	v := new(big.Int)
	s := f.fromMont(a) // canonical a
	buf := make([]byte, Limbs*8)
	for i := 0; i < Limbs; i++ {
		putBE(buf[(Limbs-1-i)*8:], s[i])
	}
	v.SetBytes(buf)
	v.ModInverse(v, f.pBig)
	return f.FromBig(v)
}

// Div returns a/b.
func (f *Field) Div(a, b Element) Element {
	return f.Mul(a, f.Inv(b))
}

// BatchInv inverts every element of src into dst using Montgomery's trick:
// one field inversion plus 3(n-1) multiplications. Zero inputs panic as in
// Inv. dst and src may alias.
func (f *Field) BatchInv(dst, src []Element) {
	if len(dst) != len(src) {
		panic("field: BatchInv length mismatch")
	}
	if len(src) == 0 {
		return
	}
	prefix := make([]Element, len(src))
	acc := f.One()
	for i, v := range src {
		prefix[i] = acc
		acc = f.Mul(acc, v)
	}
	inv := f.Inv(acc)
	for i := len(src) - 1; i >= 0; i-- {
		v := src[i]
		dst[i] = f.Mul(inv, prefix[i])
		inv = f.Mul(inv, v)
	}
}

// RootOfUnity returns a primitive 2^k-th root of unity; it panics if
// k exceeds the field's 2-adicity.
func (f *Field) RootOfUnity(k uint) Element {
	if k > f.twoAdicity {
		panic(fmt.Sprintf("field: no 2^%d-th root of unity in %s (2-adicity %d)", k, f.name, f.twoAdicity))
	}
	u := f.rootOfUnity
	for i := f.twoAdicity; i > k; i-- {
		u = f.Mul(u, u)
	}
	return u
}

// String formats the canonical value of a in f, for debugging.
func (f *Field) String(a Element) string {
	return f.ToBig(a).String()
}
