package field

import (
	"encoding/binary"
	"fmt"
)

// ElementBytes is the fixed wire size of one Element: Limbs little-endian
// 64-bit words. Elements are serialized in Montgomery form verbatim — the
// representation is canonical (always reduced into [0, p)), so raw limbs
// round-trip exactly and decoding performs no conversion work. A serialized
// element is only meaningful next to the Field that produced it; bundle
// formats record the field name and modulus alongside (see internal/store).
const ElementBytes = Limbs * 8

// AppendElement appends the raw little-endian limbs of e to dst.
func AppendElement(dst []byte, e Element) []byte {
	for i := 0; i < Limbs; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, e[i])
	}
	return dst
}

// DecodeElement reads one Element from the front of b.
func DecodeElement(b []byte) (Element, []byte, error) {
	if len(b) < ElementBytes {
		return Element{}, nil, fmt.Errorf("field: truncated element (%d of %d bytes)", len(b), ElementBytes)
	}
	var e Element
	for i := 0; i < Limbs; i++ {
		e[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return e, b[ElementBytes:], nil
}

// AppendElements appends a uvarint length prefix followed by the raw limbs
// of every element.
func AppendElements(dst []byte, els []Element) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(els)))
	for _, e := range els {
		dst = AppendElement(dst, e)
	}
	return dst
}

// DecodeElements reads a length-prefixed element slice from the front of b,
// returning the slice and the remaining bytes. A zero-length prefix decodes
// to a nil slice.
func DecodeElements(b []byte) ([]Element, []byte, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, nil, fmt.Errorf("field: bad element-slice length prefix")
	}
	b = b[used:]
	if n == 0 {
		return nil, b, nil
	}
	if n > uint64(len(b)/ElementBytes) {
		return nil, nil, fmt.Errorf("field: truncated element slice (%d declared, %d bytes left)", n, len(b))
	}
	out := make([]Element, n)
	for i := range out {
		var err error
		out[i], b, err = DecodeElement(b)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, b, nil
}

// Validate reports whether e is a canonical Montgomery representative, i.e.
// its limbs are below the modulus. Deserialization paths use this to reject
// corrupt bundle data before it reaches arithmetic.
func (f *Field) Validate(e Element) bool {
	for i := Limbs - 1; i >= 0; i-- {
		switch {
		case e[i] < f.p[i]:
			return true
		case e[i] > f.p[i]:
			return false
		}
	}
	return false // e == p
}
