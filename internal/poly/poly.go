// Package poly implements dense univariate polynomial algebra over the prime
// fields of internal/field: NTT-based multiplication, fast division via
// Newton inversion, and subproduct-tree multipoint evaluation and
// interpolation at arbitrary points.
//
// These are exactly the "operations based on the FFT (interpolation,
// polynomial multiplication, and polynomial division)" that §4 and §A.3 of
// the paper charge to the prover at ≈ 3·f·|C|·log²|C|: the prover
// interpolates A(t), B(t), C(t) from their evaluations at σ_0..σ_|C|,
// multiplies A·B, and divides P_w(t) by D(t) to obtain H(t).
//
// A polynomial is a []field.Element of coefficients, lowest degree first.
// The zero polynomial is represented by an empty (or all-zero) slice.
package poly

import (
	"fmt"
	"sync"

	"zaatar/internal/field"
)

// Trim returns p without trailing zero coefficients.
func Trim(f *field.Field, p []field.Element) []field.Element {
	n := len(p)
	for n > 0 && f.IsZero(p[n-1]) {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func Degree(f *field.Field, p []field.Element) int {
	return len(Trim(f, p)) - 1
}

// Equal reports whether a and b represent the same polynomial.
func Equal(f *field.Field, a, b []field.Element) bool {
	a, b = Trim(f, a), Trim(f, b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !f.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Add returns a + b.
func Add(f *field.Field, a, b []field.Element) []field.Element {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make([]field.Element, len(a))
	copy(out, a)
	for i := range b {
		out[i] = f.Add(out[i], b[i])
	}
	return out
}

// Sub returns a - b.
func Sub(f *field.Field, a, b []field.Element) []field.Element {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]field.Element, n)
	copy(out, a)
	for i := range b {
		out[i] = f.Sub(out[i], b[i])
	}
	return out
}

// Scale returns s·a.
func Scale(f *field.Field, s field.Element, a []field.Element) []field.Element {
	out := make([]field.Element, len(a))
	for i := range a {
		out[i] = f.Mul(s, a[i])
	}
	return out
}

// Eval evaluates p at x by Horner's rule.
func Eval(f *field.Field, p []field.Element, x field.Element) field.Element {
	acc := f.Zero()
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// MulNaive returns a·b by the schoolbook algorithm; used for small operands
// and as the correctness oracle for the NTT path (and as the ablation
// baseline in the benchmarks).
func MulNaive(f *field.Field, a, b []field.Element) []field.Element {
	a, b = Trim(f, a), Trim(f, b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]field.Element, len(a)+len(b)-1)
	for i := range a {
		if f.IsZero(a[i]) {
			continue
		}
		for j := range b {
			out[i+j] = f.Add(out[i+j], f.Mul(a[i], b[j]))
		}
	}
	return out
}

// mulThreshold is the operand size below which schoolbook multiplication
// beats the NTT.
const mulThreshold = 64

// Mul returns a·b, choosing between schoolbook and NTT multiplication.
func Mul(f *field.Field, a, b []field.Element) []field.Element {
	a, b = Trim(f, a), Trim(f, b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if len(a) < mulThreshold || len(b) < mulThreshold {
		return MulNaive(f, a, b)
	}
	return MulNTT(f, a, b)
}

// MulNTT returns a·b via three number-theoretic transforms.
func MulNTT(f *field.Field, a, b []field.Element) []field.Element {
	a, b = Trim(f, a), Trim(f, b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := nextPow2(outLen)
	fa := make([]field.Element, n)
	fb := make([]field.Element, n)
	copy(fa, a)
	copy(fb, b)
	NTT(f, fa, false)
	NTT(f, fb, false)
	for i := range fa {
		fa[i] = f.Mul(fa[i], fb[i])
	}
	NTT(f, fa, true)
	return fa[:outLen]
}

func nextPow2(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k
}

// nttPlan holds the precomputed twiddle factors for one (field, size,
// direction) transform: the per-level power rows w^0..w^(half-1), flattened
// level after level (n-1 elements total), plus the 1/n scaling for the
// inverse direction. Plans are cached process-wide — the prover runs many
// same-size transforms per proof (interpolate A, B, C; multiply; divide by
// D(t)) — which removes both the per-call f.Inv of the root and the serial
// wj-update multiply that used to run once per butterfly (half the NTT's
// multiplication count).
type nttPlan struct {
	tw   []field.Element // concatenated twiddle rows, canonical form
	nInv field.Element   // 1/n (inverse transforms only)
}

type nttPlanKey struct {
	f      *field.Field
	logn   uint
	invert bool
}

// nttPlanCache caches plans up to nttPlanCacheMax points; larger transforms
// build their rows per call (still amortized across that call's butterflies).
var nttPlanCache sync.Map // nttPlanKey → *nttPlan

// nttPlanCacheMax bounds cached plan memory: 2^18 points is 8 MB of
// twiddles per (field, direction) pair.
const nttPlanCacheMax = 1 << 18

func newNTTPlan(f *field.Field, logn uint, n int, invert bool) *nttPlan {
	root := f.RootOfUnity(logn)
	if invert {
		root = f.Inv(root)
	}
	p := &nttPlan{tw: make([]field.Element, 0, n-1)}
	for length := 2; length <= n; length <<= 1 {
		// w is a primitive length-th root of unity.
		w := root
		for l := n; l > length; l >>= 1 {
			w = f.Mul(w, w)
		}
		wj := f.One()
		for j := 0; j < length>>1; j++ {
			p.tw = append(p.tw, wj)
			wj = f.Mul(wj, w)
		}
	}
	if invert {
		p.nInv = f.Inv(f.FromUint64(uint64(n)))
	}
	return p
}

func nttPlanFor(f *field.Field, logn uint, n int, invert bool) *nttPlan {
	if n > nttPlanCacheMax {
		return newNTTPlan(f, logn, n, invert)
	}
	key := nttPlanKey{f: f, logn: logn, invert: invert}
	if p, ok := nttPlanCache.Load(key); ok {
		return p.(*nttPlan)
	}
	p, _ := nttPlanCache.LoadOrStore(key, newNTTPlan(f, logn, n, invert))
	return p.(*nttPlan)
}

// NTT computes the in-place radix-2 number-theoretic transform of a, whose
// length must be a power of two not exceeding 2^(field 2-adicity). With
// invert set it computes the inverse transform (including the 1/n scaling).
//
// The butterflies run in the field's lazy domain [0, 2p): one multiply and
// one 2p-reduction each, with the exact reduction deferred to a single final
// pass (folded into the 1/n scaling for inverse transforms).
func NTT(f *field.Field, a []field.Element, invert bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("poly: NTT size %d is not a power of two", n))
	}
	if n <= 1 {
		return
	}
	logn := uint(0)
	for 1<<logn < n {
		logn++
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	plan := nttPlanFor(f, logn, n, invert)
	tw := plan.tw
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		row := tw[:half]
		tw = tw[half:]
		for start := 0; start < n; start += length {
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := f.MulLazy(a[start+j+half], row[j])
				a[start+j] = f.AddLazy(u, v)
				a[start+j+half] = f.SubLazy(u, v)
			}
		}
	}
	if invert {
		// The strict multiply accepts lazy-domain inputs and returns the
		// canonical representative, so the scaling pass doubles as the
		// final exact reduction.
		for i := range a {
			a[i] = f.Mul(a[i], plan.nInv)
		}
		return
	}
	for i := range a {
		a[i] = f.Reduce(a[i])
	}
}

// reverse returns the coefficient-reversed polynomial of the exact length n
// (padding with zeros if deg < n-1).
func reverse(p []field.Element, n int) []field.Element {
	out := make([]field.Element, n)
	for i := 0; i < len(p) && i < n; i++ {
		out[n-1-i] = p[i]
	}
	return out
}

// InvSeries returns the power-series inverse of p modulo x^n by Newton
// iteration: g ← g(2 - pg). p[0] must be non-zero.
func InvSeries(f *field.Field, p []field.Element, n int) []field.Element {
	if len(p) == 0 || f.IsZero(p[0]) {
		panic("poly: invSeries of series with zero constant term")
	}
	g := []field.Element{f.Inv(p[0])}
	for k := 1; k < n; k <<= 1 {
		m := k << 1
		if m > n {
			m = n
		}
		pm := p
		if len(pm) > m {
			pm = pm[:m]
		}
		pg := Mul(f, pm, g)
		if len(pg) > m {
			pg = pg[:m]
		}
		// t = 2 - p·g
		t := make([]field.Element, m)
		copy(t, pg)
		for i := range t {
			t[i] = f.Neg(t[i])
		}
		t[0] = f.Add(t[0], f.FromUint64(2))
		g = Mul(f, g, t)
		if len(g) > m {
			g = g[:m]
		}
	}
	return g[:min(len(g), n)]
}

// Divisor is a fixed divisor polynomial with its reversed power-series
// inverse precomputed to a given precision, letting repeated divisions by
// the same polynomial skip the Newton iteration. The QAP divisor D(t) and
// every subproduct-tree node use this.
type Divisor struct {
	b      []field.Element
	invRev []field.Element
}

// NewDivisor precomputes the inverse of b's reversal to precision maxPrec,
// enough to divide any dividend of degree ≤ deg b + maxPrec - 1.
func NewDivisor(f *field.Field, b []field.Element, maxPrec int) *Divisor {
	b = Trim(f, b)
	if len(b) == 0 {
		panic("poly: division by zero polynomial")
	}
	if maxPrec < 1 {
		maxPrec = 1
	}
	return &Divisor{b: b, invRev: InvSeries(f, reverse(b, len(b)), maxPrec)}
}

// DivRem divides a by the fixed divisor. The dividend degree must stay
// within the precomputed precision.
func (d *Divisor) DivRem(f *field.Field, a []field.Element) (q, r []field.Element) {
	a = Trim(f, a)
	if len(a) < len(d.b) {
		return nil, a
	}
	da, db := len(a)-1, len(d.b)-1
	n := da - db + 1
	if n > len(d.invRev) {
		panic("poly: Divisor precision exceeded")
	}
	return divCore(f, a, d.b, d.invRev[:n], n)
}

// DivRem returns (q, r) with a = q·b + r and deg r < deg b, using Newton
// inversion of the reversed divisor (O(n log n) with NTT multiplication).
// It panics if b is zero.
func DivRem(f *field.Field, a, b []field.Element) (q, r []field.Element) {
	a, b = Trim(f, a), Trim(f, b)
	if len(b) == 0 {
		panic("poly: division by zero polynomial")
	}
	if len(a) < len(b) {
		return nil, a
	}
	da, db := len(a)-1, len(b)-1
	n := da - db + 1
	rb := reverse(b, db+1)
	inv := InvSeries(f, rb, n)
	return divCore(f, a, b, inv, n)
}

func divCore(f *field.Field, a, b, inv []field.Element, n int) (q, r []field.Element) {
	da := len(a) - 1
	ra := reverse(a, da+1)
	if len(ra) > n {
		ra = ra[:n] // rq is only needed mod x^n
	}
	rq := Mul(f, ra, inv)
	if len(rq) > n {
		rq = rq[:n]
	} else {
		for len(rq) < n {
			rq = append(rq, f.Zero())
		}
	}
	q = reverse(rq, n)
	qb := Mul(f, q, b)
	r = Trim(f, Sub(f, a, qb))
	return q, r
}

// DivRemNaive is schoolbook long division, used as the correctness oracle
// for DivRem.
func DivRemNaive(f *field.Field, a, b []field.Element) (q, r []field.Element) {
	a, b = Trim(f, a), Trim(f, b)
	if len(b) == 0 {
		panic("poly: division by zero polynomial")
	}
	r = append([]field.Element(nil), a...)
	if len(a) < len(b) {
		return nil, r
	}
	db := len(b) - 1
	lcInv := f.Inv(b[db])
	q = make([]field.Element, len(a)-db)
	for i := len(r) - 1; i >= db; i-- {
		c := f.Mul(r[i], lcInv)
		q[i-db] = c
		if f.IsZero(c) {
			continue
		}
		for j := 0; j <= db; j++ {
			r[i-db+j] = f.Sub(r[i-db+j], f.Mul(c, b[j]))
		}
	}
	return q, Trim(f, r)
}

// Derivative returns p'.
func Derivative(f *field.Field, p []field.Element) []field.Element {
	if len(p) <= 1 {
		return nil
	}
	out := make([]field.Element, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = f.Mul(p[i], f.FromUint64(uint64(i)))
	}
	return out
}
