package poly

import (
	"sync"

	"zaatar/internal/field"
)

// SubproductTree supports multipoint evaluation and interpolation at an
// arbitrary set of points in O(M(n) log n) field operations, where M is the
// polynomial multiplication cost. The prover uses it to interpolate the
// aggregate polynomials A(t), B(t), C(t) from their evaluations at the QAP's
// interpolation points σ_0..σ_|C| (§A.3).
//
// The tree is layered bottom-up: layer 0 holds the monic linear factors
// (x - u_i); each higher layer holds products of adjacent pairs; the top
// layer holds M(x) = ∏(x - u_i).
type SubproductTree struct {
	f      *field.Field
	points []field.Element
	layers [][][]field.Element // layers[0][i] = (x - u_i)

	mu      sync.Mutex      // guards the lazy caches below
	divs    [][]*Divisor    // lazily built per-node fixed divisors, parallel to layers
	weights []field.Element // lazily built 1/M'(u_i) interpolation weights
}

// NewSubproductTree builds the tree for the given points.
func NewSubproductTree(f *field.Field, points []field.Element) *SubproductTree {
	t := &SubproductTree{f: f, points: append([]field.Element(nil), points...)}
	if len(points) == 0 {
		return t
	}
	layer := make([][]field.Element, len(points))
	for i, u := range points {
		layer[i] = []field.Element{f.Neg(u), f.One()}
	}
	t.layers = append(t.layers, layer)
	for len(layer) > 1 {
		next := make([][]field.Element, (len(layer)+1)/2)
		for i := 0; i < len(layer)/2; i++ {
			next[i] = Mul(f, layer[2*i], layer[2*i+1])
		}
		if len(layer)%2 == 1 {
			next[len(next)-1] = layer[len(layer)-1]
		}
		t.layers = append(t.layers, next)
		layer = next
	}
	return t
}

// Len returns the number of points.
func (t *SubproductTree) Len() int { return len(t.points) }

// Root returns M(x) = ∏ (x - u_i).
func (t *SubproductTree) Root() []field.Element {
	if len(t.layers) == 0 {
		return []field.Element{t.f.One()}
	}
	top := t.layers[len(t.layers)-1]
	return top[0]
}

// EvalMulti evaluates p at every point using a remainder tree.
func (t *SubproductTree) EvalMulti(p []field.Element) []field.Element {
	f := t.f
	n := len(t.points)
	out := make([]field.Element, n)
	if n == 0 {
		return out
	}
	// If deg p is small, Horner at each point is cheaper and simpler.
	if len(Trim(f, p)) <= 8 {
		for i, u := range t.points {
			out[i] = Eval(f, p, u)
		}
		return out
	}
	t.goDown(p, len(t.layers)-1, 0, out)
	return out
}

// nodeDiv returns the cached fixed divisor for a tree node. In a remainder
// tree the dividend degree never exceeds twice the node degree, so the
// node's own degree bounds the precision needed.
func (t *SubproductTree) nodeDiv(layer, idx int) *Divisor {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.divs == nil {
		t.divs = make([][]*Divisor, len(t.layers))
		for i := range t.layers {
			t.divs[i] = make([]*Divisor, len(t.layers[i]))
		}
	}
	if d := t.divs[layer][idx]; d != nil {
		return d
	}
	node := t.layers[layer][idx]
	d := NewDivisor(t.f, node, len(node))
	t.divs[layer][idx] = d
	return d
}

// goDown pushes the remainder of p modulo the node at (layer, idx) toward
// the leaves under that node.
func (t *SubproductTree) goDown(p []field.Element, layer, idx int, out []field.Element) {
	f := t.f
	var r []field.Element
	if len(p) >= 2*len(t.layers[layer][idx]) {
		// Dividend too large for the cached precision (only possible at the
		// root); fall back to a one-off division.
		_, r = DivRem(f, p, t.layers[layer][idx])
	} else {
		_, r = t.nodeDiv(layer, idx).DivRem(f, p)
	}
	if layer == 0 {
		// r is a constant: p mod (x - u_idx) = p(u_idx).
		if len(r) == 0 {
			out[idx] = f.Zero()
		} else {
			out[idx] = r[0]
		}
		return
	}
	childLayer := t.layers[layer-1]
	left := 2 * idx
	right := 2*idx + 1
	if right >= len(childLayer) {
		// Odd node carried up unchanged; descend straight through.
		t.goDown(r, layer-1, left, out)
		return
	}
	t.goDown(r, layer-1, left, out)
	t.goDown(r, layer-1, right, out)
}

// SetWeights installs precomputed barycentric weights 1/M'(u_i), skipping
// the generic remainder-tree computation. Callers with structured points
// (e.g. the QAP's arithmetic progression, whose weights are factorial
// products — §A.3) use this to avoid the most expensive part of
// interpolation setup.
func (t *SubproductTree) SetWeights(w []field.Element) {
	if len(w) != len(t.points) {
		panic("poly: SetWeights length mismatch")
	}
	t.mu.Lock()
	t.weights = w
	t.mu.Unlock()
}

// Interpolate returns the unique polynomial of degree < n passing through
// (u_i, values[i]). The points must be distinct.
func (t *SubproductTree) Interpolate(values []field.Element) []field.Element {
	f := t.f
	n := len(t.points)
	if len(values) != n {
		panic("poly: Interpolate values/points length mismatch")
	}
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []field.Element{values[0]}
	}
	// s_i = M'(u_i); weights c_i = v_i / s_i. The 1/s_i are value-independent
	// and cached across Interpolate calls (the prover interpolates three
	// polynomials per proof over the same points).
	t.mu.Lock()
	if t.weights == nil {
		mPrime := Derivative(f, t.Root())
		t.mu.Unlock() // EvalMulti takes the lock for its node caches
		s := t.EvalMulti(mPrime)
		f.BatchInv(s, s)
		t.mu.Lock()
		t.weights = s
	}
	w := t.weights
	t.mu.Unlock()
	weights := make([]field.Element, n)
	for i := range weights {
		weights[i] = f.Mul(values[i], w[i])
	}
	// Combine up the tree: node poly = left·M_right + right·M_left.
	polys := make([][]field.Element, n)
	for i := range polys {
		polys[i] = []field.Element{weights[i]}
	}
	for layer := 0; layer < len(t.layers)-1; layer++ {
		mods := t.layers[layer]
		next := make([][]field.Element, (len(polys)+1)/2)
		for i := 0; i < len(polys)/2; i++ {
			l := Mul(f, polys[2*i], mods[2*i+1])
			r := Mul(f, polys[2*i+1], mods[2*i])
			next[i] = Add(f, l, r)
		}
		if len(polys)%2 == 1 {
			next[len(next)-1] = polys[len(polys)-1]
		}
		polys = next
	}
	return Trim(f, polys[0])
}

// ZeroPoly returns ∏ (x - u_i) for the given points — the divisor polynomial
// D(t) when the points are the QAP's σ_1..σ_|C|.
func ZeroPoly(f *field.Field, points []field.Element) []field.Element {
	return NewSubproductTree(f, points).Root()
}

// InterpolateNaive is Lagrange interpolation in O(n²), the correctness
// oracle for Interpolate.
func InterpolateNaive(f *field.Field, points, values []field.Element) []field.Element {
	n := len(points)
	if len(values) != n {
		panic("poly: InterpolateNaive length mismatch")
	}
	// All n Lagrange denominators ∏_{j≠i}(u_i - u_j) first, inverted in one
	// BatchInv pass (3(n-1)+1 mults + one inversion instead of n inversions).
	denoms := make([]field.Element, n)
	for i := 0; i < n; i++ {
		d := f.One()
		for j := 0; j < n; j++ {
			if j != i {
				d = f.Mul(d, f.Sub(points[i], points[j]))
			}
		}
		denoms[i] = d
	}
	f.BatchInv(denoms, denoms)
	out := make([]field.Element, n)
	for i := 0; i < n; i++ {
		// basis_i(x) = ∏_{j≠i} (x - u_j)/(u_i - u_j)
		basis := []field.Element{f.One()}
		for j := 0; j < n; j++ {
			if j != i {
				basis = MulNaive(f, basis, []field.Element{f.Neg(points[j]), f.One()})
			}
		}
		c := f.Mul(values[i], denoms[i])
		for k := range basis {
			out[k] = f.Add(out[k], f.Mul(c, basis[k]))
		}
	}
	return Trim(f, out)
}
