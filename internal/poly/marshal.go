package poly

import (
	"fmt"

	"zaatar/internal/field"
)

// Binary serialization for the two preprocessed polynomial structures a
// program bundle persists: the subproduct tree (whose NTT-built layers are
// the dominant cost of qap.New) and fixed divisors (whose Newton inverse
// series is the other). Lazy caches — per-node divisors, barycentric
// weights — are intentionally not serialized: they are cheap to rebuild and
// keeping them out makes the format independent of access patterns.

// AppendBinary appends the tree's points and layers to dst. The layer
// structure is fully determined by the point count, but node coefficient
// slices are written with explicit length prefixes so corruption is caught
// as a decode error rather than a misaligned read.
func (t *SubproductTree) AppendBinary(dst []byte) []byte {
	dst = field.AppendElements(dst, t.points)
	for _, layer := range t.layers {
		for _, node := range layer {
			dst = field.AppendElements(dst, node)
		}
	}
	return dst
}

// UnmarshalSubproductTree reads a tree serialized by AppendBinary from the
// front of b. The layer shape is recomputed from the point count and every
// node slice checked against it.
func UnmarshalSubproductTree(f *field.Field, b []byte) (*SubproductTree, []byte, error) {
	points, b, err := field.DecodeElements(b)
	if err != nil {
		return nil, nil, fmt.Errorf("poly: tree points: %w", err)
	}
	t := &SubproductTree{f: f, points: points}
	if len(points) == 0 {
		return t, b, nil
	}
	for width := len(points); ; width = (width + 1) / 2 {
		layer := make([][]field.Element, width)
		for i := range layer {
			layer[i], b, err = field.DecodeElements(b)
			if err != nil {
				return nil, nil, fmt.Errorf("poly: tree layer node: %w", err)
			}
		}
		t.layers = append(t.layers, layer)
		if width == 1 {
			break
		}
	}
	// Sanity: leaves must be the monic linear factors of the points.
	for i, u := range t.points {
		leaf := t.layers[0][i]
		if len(leaf) != 2 || !f.IsOne(leaf[1]) || leaf[0] != f.Neg(u) {
			return nil, nil, fmt.Errorf("poly: tree leaf %d does not match its point", i)
		}
	}
	return t, b, nil
}

// AppendBinary appends the divisor polynomial and its precomputed reversed
// inverse series to dst.
func (d *Divisor) AppendBinary(dst []byte) []byte {
	dst = field.AppendElements(dst, d.b)
	dst = field.AppendElements(dst, d.invRev)
	return dst
}

// UnmarshalDivisor reads a Divisor serialized by AppendBinary from the
// front of b.
func UnmarshalDivisor(f *field.Field, b []byte) (*Divisor, []byte, error) {
	bp, b, err := field.DecodeElements(b)
	if err != nil {
		return nil, nil, fmt.Errorf("poly: divisor poly: %w", err)
	}
	inv, b, err := field.DecodeElements(b)
	if err != nil {
		return nil, nil, fmt.Errorf("poly: divisor inverse series: %w", err)
	}
	if len(Trim(f, bp)) == 0 {
		return nil, nil, fmt.Errorf("poly: divisor decodes to the zero polynomial")
	}
	return &Divisor{b: bp, invRev: inv}, b, nil
}
