package poly

import (
	"math/rand"
	"testing"

	"zaatar/internal/field"
)

type testReader struct{ r *rand.Rand }

func (t testReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(t.r.Intn(256))
	}
	return len(p), nil
}

func randPoly(f *field.Field, rng testReader, deg int) []field.Element {
	if deg < 0 {
		return nil
	}
	p := f.RandVector(deg+1, rng)
	// Force the leading coefficient non-zero so degrees are exact.
	for f.IsZero(p[deg]) {
		p[deg] = f.Rand(rng)
	}
	return p
}

func TestTrimAndDegree(t *testing.T) {
	f := field.F128()
	z := f.Zero()
	one := f.One()
	cases := []struct {
		p    []field.Element
		want int
	}{
		{nil, -1},
		{[]field.Element{z}, -1},
		{[]field.Element{z, z, z}, -1},
		{[]field.Element{one}, 0},
		{[]field.Element{z, one, z}, 1},
	}
	for i, c := range cases {
		if got := Degree(f, c.p); got != c.want {
			t.Errorf("case %d: Degree = %d, want %d", i, got, c.want)
		}
	}
}

func TestAddSubScaleEval(t *testing.T) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(1))}
	for i := 0; i < 30; i++ {
		a := randPoly(f, rng, rng.r.Intn(20))
		b := randPoly(f, rng, rng.r.Intn(20))
		x := f.Rand(rng)
		sum := Add(f, a, b)
		if got, want := Eval(f, sum, x), f.Add(Eval(f, a, x), Eval(f, b, x)); !f.Equal(got, want) {
			t.Fatal("(a+b)(x) != a(x)+b(x)")
		}
		diff := Sub(f, a, b)
		if got, want := Eval(f, diff, x), f.Sub(Eval(f, a, x), Eval(f, b, x)); !f.Equal(got, want) {
			t.Fatal("(a-b)(x) != a(x)-b(x)")
		}
		s := f.Rand(rng)
		if got, want := Eval(f, Scale(f, s, a), x), f.Mul(s, Eval(f, a, x)); !f.Equal(got, want) {
			t.Fatal("(s·a)(x) != s·a(x)")
		}
	}
}

func TestNTTRoundTrip(t *testing.T) {
	for _, f := range []*field.Field{field.F128(), field.F220(), field.FTiny()} {
		rng := testReader{rand.New(rand.NewSource(2))}
		for _, n := range []int{1, 2, 4, 64, 512} {
			a := f.RandVector(n, rng)
			b := append([]field.Element(nil), a...)
			NTT(f, b, false)
			NTT(f, b, true)
			for i := range a {
				if !f.Equal(a[i], b[i]) {
					t.Fatalf("%s: NTT round trip failed at n=%d i=%d", f.Name(), n, i)
				}
			}
		}
	}
}

func TestNTTMatchesDFT(t *testing.T) {
	// Direct DFT definition check at small size.
	f := field.FTiny()
	rng := testReader{rand.New(rand.NewSource(3))}
	n := 8
	a := f.RandVector(n, rng)
	w := f.RootOfUnity(3) // 8th root
	want := make([]field.Element, n)
	for k := 0; k < n; k++ {
		acc := f.Zero()
		for j := 0; j < n; j++ {
			acc = f.Add(acc, f.Mul(a[j], f.ExpUint(w, uint64(j*k))))
		}
		want[k] = acc
	}
	got := append([]field.Element(nil), a...)
	NTT(f, got, false)
	for k := 0; k < n; k++ {
		if !f.Equal(got[k], want[k]) {
			t.Fatalf("NTT[%d] = %v, want %v", k, f.ToBig(got[k]), f.ToBig(want[k]))
		}
	}
}

func TestMulAgainstNaive(t *testing.T) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(4))}
	for _, da := range []int{-1, 0, 1, 5, 63, 64, 100, 257} {
		for _, db := range []int{-1, 0, 3, 64, 129} {
			a := randPoly(f, rng, da)
			b := randPoly(f, rng, db)
			if !Equal(f, Mul(f, a, b), MulNaive(f, a, b)) {
				t.Fatalf("Mul mismatch at deg %d×%d", da, db)
			}
			if !Equal(f, MulNTT(f, a, b), MulNaive(f, a, b)) {
				t.Fatalf("MulNTT mismatch at deg %d×%d", da, db)
			}
		}
	}
}

func TestMulEvalProperty(t *testing.T) {
	f := field.F220()
	rng := testReader{rand.New(rand.NewSource(5))}
	for i := 0; i < 20; i++ {
		a := randPoly(f, rng, 40+rng.r.Intn(100))
		b := randPoly(f, rng, 40+rng.r.Intn(100))
		x := f.Rand(rng)
		if got, want := Eval(f, Mul(f, a, b), x), f.Mul(Eval(f, a, x), Eval(f, b, x)); !f.Equal(got, want) {
			t.Fatal("(ab)(x) != a(x)b(x)")
		}
	}
}

func TestDivRem(t *testing.T) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(6))}
	for _, da := range []int{0, 1, 10, 100, 255} {
		for _, db := range []int{1, 2, 17, 100} {
			a := randPoly(f, rng, da)
			b := randPoly(f, rng, db)
			q, r := DivRem(f, a, b)
			qn, rn := DivRemNaive(f, a, b)
			if !Equal(f, q, qn) || !Equal(f, r, rn) {
				t.Fatalf("DivRem disagrees with naive at deg %d/%d", da, db)
			}
			// a = qb + r and deg r < deg b
			recon := Add(f, Mul(f, q, b), r)
			if !Equal(f, recon, a) {
				t.Fatalf("DivRem reconstruction failed at deg %d/%d", da, db)
			}
			if Degree(f, r) >= Degree(f, b) {
				t.Fatalf("remainder degree %d >= divisor degree %d", Degree(f, r), Degree(f, b))
			}
		}
	}
}

func TestDivRemExact(t *testing.T) {
	// Exact divisibility: (x-1)(x-2)...(x-n) / ∏ subsets.
	f := field.F128()
	pts := make([]field.Element, 33)
	for i := range pts {
		pts[i] = f.FromUint64(uint64(i + 1))
	}
	full := ZeroPoly(f, pts)
	half := ZeroPoly(f, pts[:16])
	q, r := DivRem(f, full, half)
	if Degree(f, r) != -1 {
		t.Fatal("exact division left a remainder")
	}
	if !Equal(f, Mul(f, q, half), full) {
		t.Fatal("quotient reconstruction failed")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DivRem by zero did not panic")
		}
	}()
	f := field.F128()
	DivRem(f, []field.Element{f.One()}, nil)
}

func TestZeroPolyRoots(t *testing.T) {
	f := field.F128()
	pts := make([]field.Element, 20)
	for i := range pts {
		pts[i] = f.FromUint64(uint64(3*i + 1))
	}
	z := ZeroPoly(f, pts)
	if Degree(f, z) != len(pts) {
		t.Fatalf("ZeroPoly degree = %d, want %d", Degree(f, z), len(pts))
	}
	for _, u := range pts {
		if !f.IsZero(Eval(f, z, u)) {
			t.Fatalf("ZeroPoly does not vanish at %v", f.ToBig(u))
		}
	}
	// Monic.
	if !f.IsOne(z[len(z)-1]) {
		t.Fatal("ZeroPoly is not monic")
	}
}

func TestEvalMulti(t *testing.T) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(7))}
	for _, n := range []int{1, 2, 3, 7, 8, 33, 100} {
		pts := make([]field.Element, n)
		for i := range pts {
			pts[i] = f.FromUint64(uint64(i))
		}
		tree := NewSubproductTree(f, pts)
		p := randPoly(f, rng, n+5)
		got := tree.EvalMulti(p)
		for i, u := range pts {
			want := Eval(f, p, u)
			if !f.Equal(got[i], want) {
				t.Fatalf("n=%d: EvalMulti[%d] mismatch", n, i)
			}
		}
	}
}

func TestInterpolate(t *testing.T) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(8))}
	for _, n := range []int{1, 2, 3, 5, 8, 17, 64, 100} {
		pts := make([]field.Element, n)
		for i := range pts {
			pts[i] = f.FromUint64(uint64(i)) // arithmetic progression incl. 0, like the QAP
		}
		vals := f.RandVector(n, rng)
		tree := NewSubproductTree(f, pts)
		p := tree.Interpolate(vals)
		if Degree(f, p) >= n {
			t.Fatalf("n=%d: interpolant degree %d too high", n, Degree(f, p))
		}
		for i := range pts {
			if !f.Equal(Eval(f, p, pts[i]), vals[i]) {
				t.Fatalf("n=%d: interpolant misses point %d", n, i)
			}
		}
		if n <= 17 {
			if !Equal(f, p, InterpolateNaive(f, pts, vals)) {
				t.Fatalf("n=%d: Interpolate disagrees with naive Lagrange", n)
			}
		}
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	// Interpolating the evaluations of a known polynomial recovers it.
	f := field.F220()
	rng := testReader{rand.New(rand.NewSource(9))}
	n := 50
	p := randPoly(f, rng, n-1)
	pts := make([]field.Element, n)
	for i := range pts {
		pts[i] = f.FromUint64(uint64(i))
	}
	tree := NewSubproductTree(f, pts)
	vals := tree.EvalMulti(p)
	q := tree.Interpolate(vals)
	if !Equal(f, p, q) {
		t.Fatal("interpolation round trip failed")
	}
}

func TestDerivative(t *testing.T) {
	f := field.F128()
	// d/dx (3 + 2x + 5x³) = 2 + 15x²
	p := []field.Element{f.FromUint64(3), f.FromUint64(2), f.Zero(), f.FromUint64(5)}
	want := []field.Element{f.FromUint64(2), f.Zero(), f.FromUint64(15)}
	if !Equal(f, Derivative(f, p), want) {
		t.Fatal("Derivative mismatch")
	}
	if Derivative(f, []field.Element{f.One()}) != nil {
		t.Fatal("derivative of constant should be nil")
	}
}

func BenchmarkMulNTT(b *testing.B) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(10))}
	for _, n := range []int{256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			x := f.RandVector(n, rng)
			y := f.RandVector(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulNTT(f, x, y)
			}
		})
	}
}

func BenchmarkMulNaive(b *testing.B) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(11))}
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			x := f.RandVector(n, rng)
			y := f.RandVector(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulNaive(f, x, y)
			}
		})
	}
}

func BenchmarkInterpolate(b *testing.B) {
	f := field.F128()
	rng := testReader{rand.New(rand.NewSource(12))}
	for _, n := range []int{256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := make([]field.Element, n)
			for i := range pts {
				pts[i] = f.FromUint64(uint64(i))
			}
			tree := NewSubproductTree(f, pts)
			vals := f.RandVector(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.Interpolate(vals)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return string(rune('0'+n/1024)) + "k"
	default:
		return "n" + string(rune('0'+n/100)) + "xx"
	}
}
