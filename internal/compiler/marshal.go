package compiler

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/big"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

// Gob serialization of a compiled Program, so program bundles (internal/
// store) and pre-baked artifacts (zaatar-compile -bundle) can restore one
// without re-running the compiler. The unexported solver state is mirrored
// into exported wire structs; the field is recorded by name and modulus and
// resolved back to the process-wide instance on decode.

type wireRef struct {
	IsConst bool
	C       *big.Int
	Wire    int
}

type wireInstr struct {
	Op     int
	Dst    int
	Aux    []int
	A, B   wireRef
	C2     wireRef
	N      int
	Srcs   []wireRef
	Coeffs []*big.Int
}

type wireRange struct{ Lo, Hi *big.Int }

type wireProgram struct {
	FieldName   string
	ModulusHex  string
	Source      string
	Ginger      *constraint.GingerSystem
	Quad        *constraint.QuadSystem
	InputNames  []string
	OutputNames []string

	NumWires    int
	Instrs      []wireInstr
	InWires     []int
	OutWires    []int
	InputRanges []wireRange

	RawGinger  *constraint.GingerSystem
	RawQuad    *constraint.QuadSystem
	GingerPerm constraint.Permutation
	QuadPerm   constraint.Permutation
}

func refOut(r ref) wireRef { return wireRef{IsConst: r.isConst, C: r.c, Wire: r.wire} }
func refIn(r wireRef) ref  { return ref{isConst: r.IsConst, c: r.C, wire: r.Wire} }

// MarshalBinary serializes the program, including the solver's straight-line
// instruction stream and both raw constraint systems, so the decoded value
// is behaviorally identical (Execute/SolveGinger/SolveQuad all work).
func (p *Program) MarshalBinary() ([]byte, error) {
	wp := wireProgram{
		FieldName:   p.Field.Name(),
		ModulusHex:  p.Field.Modulus().Text(16),
		Source:      p.Source,
		Ginger:      p.Ginger,
		Quad:        p.Quad,
		InputNames:  p.InputNames,
		OutputNames: p.OutputNames,
		NumWires:    p.numWires,
		InWires:     p.inWires,
		OutWires:    p.outWires,
		RawGinger:   p.rawGinger,
		RawQuad:     p.rawQuad,
		GingerPerm:  p.gingerPerm,
		QuadPerm:    p.quadPerm,
	}
	wp.Instrs = make([]wireInstr, len(p.instrs))
	for i, in := range p.instrs {
		wi := wireInstr{
			Op: int(in.op), Dst: in.dst, Aux: in.aux,
			A: refOut(in.a), B: refOut(in.b), C2: refOut(in.c2),
			N: in.n, Coeffs: in.coeffs,
		}
		if in.srcs != nil {
			wi.Srcs = make([]wireRef, len(in.srcs))
			for k, s := range in.srcs {
				wi.Srcs[k] = refOut(s)
			}
		}
		wp.Instrs[i] = wi
	}
	wp.InputRanges = make([]wireRange, len(p.inputRanges))
	for i, d := range p.inputRanges {
		wp.InputRanges[i] = wireRange{Lo: d.lo, Hi: d.hi}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wp); err != nil {
		return nil, fmt.Errorf("compiler: encode program: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalProgram restores a program serialized by MarshalBinary. The
// field is resolved through field.Resolve, so programs over the built-in
// parameters share the process-wide Field instances.
func UnmarshalProgram(data []byte) (*Program, error) {
	var wp wireProgram
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wp); err != nil {
		return nil, fmt.Errorf("compiler: decode program: %w", err)
	}
	f, err := field.Resolve(wp.FieldName, wp.ModulusHex)
	if err != nil {
		return nil, fmt.Errorf("compiler: decode program: %w", err)
	}
	if wp.Ginger == nil || wp.Quad == nil || wp.RawGinger == nil || wp.RawQuad == nil {
		return nil, fmt.Errorf("compiler: decode program: missing constraint systems")
	}
	p := &Program{
		Field:       f,
		Source:      wp.Source,
		Ginger:      wp.Ginger,
		Quad:        wp.Quad,
		InputNames:  wp.InputNames,
		OutputNames: wp.OutputNames,
		numWires:    wp.NumWires,
		inWires:     wp.InWires,
		outWires:    wp.OutWires,
		rawGinger:   wp.RawGinger,
		rawQuad:     wp.RawQuad,
		gingerPerm:  wp.GingerPerm,
		quadPerm:    wp.QuadPerm,
	}
	p.instrs = make([]instr, len(wp.Instrs))
	for i, wi := range wp.Instrs {
		in := instr{
			op: opcode(wi.Op), dst: wi.Dst, aux: wi.Aux,
			a: refIn(wi.A), b: refIn(wi.B), c2: refIn(wi.C2),
			n: wi.N, coeffs: wi.Coeffs,
		}
		if wi.Srcs != nil {
			in.srcs = make([]ref, len(wi.Srcs))
			for k, s := range wi.Srcs {
				in.srcs[k] = refIn(s)
			}
		}
		p.instrs[i] = in
	}
	p.inputRanges = make([]inputRange, len(wp.InputRanges))
	for i, d := range wp.InputRanges {
		if d.Lo == nil || d.Hi == nil {
			return nil, fmt.Errorf("compiler: decode program: input range %d missing bounds", i)
		}
		p.inputRanges[i] = inputRange{lo: d.Lo, hi: d.Hi}
	}
	return p, nil
}
