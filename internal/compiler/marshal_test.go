package compiler

import (
	"math/big"
	"testing"

	"zaatar/internal/field"
)

const marshalSrc = `
input x, y : int32;
output q, m, d : int64;
var a : int64;
a = x * x;
q = a / 7;
m = a % 7;
if (x != y) { d = x - y; } else { d = x + y; }
`

func TestProgramMarshalRoundTrip(t *testing.T) {
	orig, err := Compile(field.F128(), marshalSrc)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalProgram(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Field != orig.Field {
		t.Fatal("field did not resolve to the shared instance")
	}
	if got.Source != orig.Source {
		t.Fatal("source changed")
	}
	if got.NumInputs() != orig.NumInputs() || got.NumOutputs() != orig.NumOutputs() {
		t.Fatalf("io arity changed: (%d,%d) vs (%d,%d)",
			got.NumInputs(), got.NumOutputs(), orig.NumInputs(), orig.NumOutputs())
	}
	if got.Stats() != orig.Stats() {
		t.Fatalf("encoding stats changed: %+v vs %+v", got.Stats(), orig.Stats())
	}

	// The decoded program must execute and solve identically, including the
	// solver-only opcodes (divmod, neq) and input range checks.
	cases := [][]*big.Int{
		{big.NewInt(100), big.NewInt(3)},
		{big.NewInt(5), big.NewInt(5)},
		{big.NewInt(-20), big.NewInt(7)},
	}
	for _, in := range cases {
		wantOut, err := orig.Execute(in)
		if err != nil {
			t.Fatal(err)
		}
		gotOut, err := got.Execute(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantOut {
			if wantOut[j].Cmp(gotOut[j]) != 0 {
				t.Fatalf("inputs %v output %d: got %v want %v", in, j, gotOut[j], wantOut[j])
			}
		}
		_, w0, err := orig.SolveQuad(in)
		if err != nil {
			t.Fatal(err)
		}
		_, w1, err := got.SolveQuad(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(w0) != len(w1) {
			t.Fatalf("witness length %d vs %d", len(w1), len(w0))
		}
		for j := range w0 {
			if w0[j] != w1[j] {
				t.Fatalf("witness wire %d differs after round trip", j)
			}
		}
	}
	// Range enforcement must survive: int32 input out of range still errors.
	if _, err := got.Execute([]*big.Int{new(big.Int).Lsh(big.NewInt(1), 40), big.NewInt(0)}); err == nil {
		t.Fatal("decoded program accepted an out-of-range input")
	}
}

func TestUnmarshalProgramRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalProgram(nil); err == nil {
		t.Fatal("nil blob decoded")
	}
	if _, err := UnmarshalProgram([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage decoded")
	}
}
