package compiler

import (
	"strings"
	"unicode"
)

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos+1 >= len(l.src) {
					return &Error{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
				}
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharOps lists the operators that must be matched greedily.
var twoCharOps = []string{"<=", ">=", "==", "!=", "&&", "||", "<<", ">>"}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				l.advance()
			} else {
				break
			}
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peekByte())) ||
			l.peekByte() == 'x' || l.peekByte() == 'X' ||
			(l.peekByte() >= 'a' && l.peekByte() <= 'f') ||
			(l.peekByte() >= 'A' && l.peekByte() <= 'F')) {
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case strings.ContainsRune(";,(){}[]:", rune(c)):
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	default:
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			for _, op := range twoCharOps {
				if two == op {
					l.advance()
					l.advance()
					return token{kind: tokOp, text: op, line: line, col: col}, nil
				}
			}
		}
		if strings.ContainsRune("+-*/%<>=!&|^", rune(c)) {
			l.advance()
			return token{kind: tokOp, text: string(c), line: line, col: col}, nil
		}
		return token{}, &Error{Line: line, Col: col, Msg: "unexpected character " + string(c)}
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
