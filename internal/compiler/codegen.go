package compiler

import (
	"fmt"
	"math/big"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

// operand is the compile-time value of an expression: either a compile-time
// constant or a wire, together with a conservative signed value range used
// to size comparisons (the compiler refuses programs whose intermediate
// values could exceed the field's integer capacity, mirroring Ginger's
// bounded-width rules).
type operand struct {
	isConst bool
	c       *big.Int // constant value (signed)
	wire    int
	lo, hi  *big.Int // inclusive range
	isBool  bool     // value known to be 0 or 1

	// den, when non-nil, makes this a rational value num/den (see
	// rational.go); den itself is always an integer operand with a
	// provably positive range.
	den *operand
}

func constOp(v *big.Int) operand {
	return operand{isConst: true, c: v, lo: v, hi: v, isBool: v.Sign() == 0 || v.Cmp(big.NewInt(1)) == 0}
}

func boolConst(b bool) operand {
	if b {
		return constOp(big.NewInt(1))
	}
	return constOp(big.NewInt(0))
}

// binding is a named program variable: a flattened array of element
// operands (scalars have one element).
type binding struct {
	decl     *Decl
	dims     []int
	elems    []operand
	isConst  bool     // compile-time constant (const decl or loop variable)
	constVal *big.Int // when isConst
}

type cseKey struct {
	op     string
	a, b   string
	extra  string
	bucket int
}

type inputRange struct{ lo, hi *big.Int }

type codegen struct {
	f    *field.Field
	file *File

	numWires int
	cons     []constraint.GingerConstraint
	instrs   []instr

	inWires     []int
	outWires    []int
	inNames     []string
	outNames    []string
	inputRanges []inputRange

	env     map[string]*binding
	cse     map[cseKey]operand
	journal map[string]map[int]operand // active if/else copy-on-write journal (name → element → original)

	maxMagBits int // values must stay within ±2^maxMagBits
}

func opKey(o operand) string {
	if o.isConst {
		return "c" + o.c.String()
	}
	return fmt.Sprintf("w%d", o.wire)
}

func (g *codegen) newWire() int {
	g.numWires++
	return g.numWires
}

func (g *codegen) elem(v *big.Int) field.Element { return g.f.FromBig(v) }

// term builds the Ginger term coeff·(operand): for a constant operand the
// coefficient absorbs the value; for a wire it is a linear term.
func (g *codegen) term(coeff *big.Int, o operand) constraint.Term {
	if o.isConst {
		return constraint.Term{Coeff: g.elem(new(big.Int).Mul(coeff, o.c)), A: 0, B: 0}
	}
	return constraint.Term{Coeff: g.elem(coeff), A: o.wire, B: 0}
}

// termMul builds coeff·(a·b) where at least one of a, b is a wire.
func (g *codegen) termMul(coeff *big.Int, a, b operand) constraint.Term {
	switch {
	case a.isConst && b.isConst:
		v := new(big.Int).Mul(a.c, b.c)
		return constraint.Term{Coeff: g.elem(new(big.Int).Mul(coeff, v))}
	case a.isConst:
		return constraint.Term{Coeff: g.elem(new(big.Int).Mul(coeff, a.c)), A: b.wire}
	case b.isConst:
		return constraint.Term{Coeff: g.elem(new(big.Int).Mul(coeff, b.c)), A: a.wire}
	default:
		return constraint.Term{Coeff: g.elem(coeff), A: a.wire, B: b.wire}
	}
}

func (g *codegen) addCons(c constraint.GingerConstraint) {
	g.cons = append(g.cons, c)
}

var (
	bigOne    = big.NewInt(1)
	bigNegOne = big.NewInt(-1)
)

func rangeAdd(a, b operand) (*big.Int, *big.Int) {
	return new(big.Int).Add(a.lo, b.lo), new(big.Int).Add(a.hi, b.hi)
}

func rangeSub(a, b operand) (*big.Int, *big.Int) {
	return new(big.Int).Sub(a.lo, b.hi), new(big.Int).Sub(a.hi, b.lo)
}

func rangeMul(a, b operand) (*big.Int, *big.Int) {
	c1 := new(big.Int).Mul(a.lo, b.lo)
	c2 := new(big.Int).Mul(a.lo, b.hi)
	c3 := new(big.Int).Mul(a.hi, b.lo)
	c4 := new(big.Int).Mul(a.hi, b.hi)
	lo, hi := c1, c1
	for _, c := range []*big.Int{c2, c3, c4} {
		if c.Cmp(lo) < 0 {
			lo = c
		}
		if c.Cmp(hi) > 0 {
			hi = c
		}
	}
	return lo, hi
}

func (g *codegen) checkRange(tok token, lo, hi *big.Int) error {
	limit := new(big.Int).Lsh(bigOne, uint(g.maxMagBits))
	neg := new(big.Int).Neg(limit)
	if lo.Cmp(neg) < 0 || hi.Cmp(limit) > 0 {
		return errAt(tok, "value range [%v, %v] exceeds the field's integer capacity (±2^%d); use a larger field or rein in intermediate values", lo, hi, g.maxMagBits)
	}
	return nil
}

// opAdd emits w = a + b (or folds constants).
func (g *codegen) opAdd(tok token, a, b operand) (operand, error) {
	if a.isConst && b.isConst {
		return constOp(new(big.Int).Add(a.c, b.c)), nil
	}
	ka, kb := opKey(a), opKey(b)
	if ka > kb {
		a, b = b, a
		ka, kb = kb, ka
	}
	key := cseKey{op: "+", a: ka, b: kb}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	lo, hi := rangeAdd(a, b)
	if err := g.checkRange(tok, lo, hi); err != nil {
		return operand{}, err
	}
	w := g.newWire()
	g.addCons(constraint.GingerConstraint{
		g.term(bigOne, a), g.term(bigOne, b),
		{Coeff: g.f.Neg(g.f.One()), A: w},
	})
	g.instrs = append(g.instrs, instr{op: iAdd, dst: w, a: refOf(a), b: refOf(b)})
	r := operand{wire: w, lo: lo, hi: hi}
	g.cse[key] = r
	return r, nil
}

// opSub emits w = a - b.
func (g *codegen) opSub(tok token, a, b operand) (operand, error) {
	if a.isConst && b.isConst {
		return constOp(new(big.Int).Sub(a.c, b.c)), nil
	}
	key := cseKey{op: "-", a: opKey(a), b: opKey(b)}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	lo, hi := rangeSub(a, b)
	if err := g.checkRange(tok, lo, hi); err != nil {
		return operand{}, err
	}
	w := g.newWire()
	g.addCons(constraint.GingerConstraint{
		g.term(bigOne, a), g.term(bigNegOne, b),
		{Coeff: g.f.Neg(g.f.One()), A: w},
	})
	g.instrs = append(g.instrs, instr{op: iSub, dst: w, a: refOf(a), b: refOf(b)})
	r := operand{wire: w, lo: lo, hi: hi}
	// 1 - bool is bool.
	if a.isConst && a.c.Cmp(bigOne) == 0 && b.isBool {
		r.isBool = true
	}
	g.cse[key] = r
	return r, nil
}

// opMul emits w = a·b.
func (g *codegen) opMul(tok token, a, b operand) (operand, error) {
	if a.isConst && b.isConst {
		return constOp(new(big.Int).Mul(a.c, b.c)), nil
	}
	if a.isConst && a.c.Sign() == 0 || b.isConst && b.c.Sign() == 0 {
		return constOp(big.NewInt(0)), nil
	}
	if a.isConst && a.c.Cmp(bigOne) == 0 {
		return b, nil
	}
	if b.isConst && b.c.Cmp(bigOne) == 0 {
		return a, nil
	}
	ka, kb := opKey(a), opKey(b)
	if ka > kb {
		a, b = b, a
		ka, kb = kb, ka
	}
	key := cseKey{op: "*", a: ka, b: kb}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	lo, hi := rangeMul(a, b)
	if !a.isConst && !b.isConst && a.wire == b.wire {
		// Squaring the same wire: the result is non-negative, which generic
		// interval multiplication cannot see.
		l2 := new(big.Int).Mul(a.lo, a.lo)
		h2 := new(big.Int).Mul(a.hi, a.hi)
		hi = l2
		if h2.Cmp(hi) > 0 {
			hi = h2
		}
		lo = big.NewInt(0)
		if a.lo.Sign() > 0 || a.hi.Sign() < 0 {
			lo = minBig(l2, h2)
		}
	}
	if err := g.checkRange(tok, lo, hi); err != nil {
		return operand{}, err
	}
	w := g.newWire()
	g.addCons(constraint.GingerConstraint{
		g.termMul(bigOne, a, b),
		{Coeff: g.f.Neg(g.f.One()), A: w},
	})
	g.instrs = append(g.instrs, instr{op: iMul, dst: w, a: refOf(a), b: refOf(b)})
	r := operand{wire: w, lo: lo, hi: hi, isBool: a.isBool && b.isBool}
	g.cse[key] = r
	return r, nil
}

// opNeq emits the §2.2 inverse trick producing a boolean r = (a != b):
//
//	(a-b)·M - r = 0      forces r = 1 when a != b (with M = (a-b)⁻¹)
//	(a-b)·(1-r) = 0      forces r = 1... and r = 0 when a == b
func (g *codegen) opNeq(tok token, a, b operand) (operand, error) {
	if a.isConst && b.isConst {
		return boolConst(a.c.Cmp(b.c) != 0), nil
	}
	ka, kb := opKey(a), opKey(b)
	if ka > kb {
		a, b = b, a
		ka, kb = kb, ka
	}
	key := cseKey{op: "!=", a: ka, b: kb}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	rw := g.newWire()
	mw := g.newWire()
	mOp := operand{wire: mw}
	// (a-b)·M - r = 0
	g.addCons(constraint.GingerConstraint{
		g.termMul(bigOne, a, mOp), g.termMul(bigNegOne, b, mOp),
		{Coeff: g.f.Neg(g.f.One()), A: rw},
	})
	// (a-b) - (a-b)·r = 0
	rOp := operand{wire: rw}
	g.addCons(constraint.GingerConstraint{
		g.term(bigOne, a), g.term(bigNegOne, b),
		g.termMul(bigNegOne, a, rOp), g.termMul(bigOne, b, rOp),
	})
	g.instrs = append(g.instrs, instr{op: iNeq, dst: rw, aux: []int{mw}, a: refOf(a), b: refOf(b)})
	r := operand{wire: rw, lo: big.NewInt(0), hi: big.NewInt(1), isBool: true}
	g.cse[key] = r
	return r, nil
}

func (g *codegen) opNot(tok token, a operand) (operand, error) {
	if !a.isBool {
		return operand{}, errAt(tok, "operand of ! must be boolean")
	}
	return g.opSub(tok, constOp(bigOne), a)
}

func (g *codegen) opEq(tok token, a, b operand) (operand, error) {
	neq, err := g.opNeq(tok, a, b)
	if err != nil {
		return operand{}, err
	}
	if neq.isConst {
		return boolConst(neq.c.Sign() == 0), nil
	}
	return g.opSub(tok, constOp(bigOne), neq)
}

// opLess emits the O(bit-width) comparison pseudoconstraint: a < b iff the
// top bit of (a - b) + 2^N is zero, where N bounds |a - b|. The bits are
// auxiliary unbound wires with b·b = b constraints plus one binding
// constraint Σ 2^i·b_i = (a - b) + 2^N.
func (g *codegen) opLess(tok token, a, b operand) (operand, error) {
	if a.isConst && b.isConst {
		return boolConst(a.c.Cmp(b.c) < 0), nil
	}
	key := cseKey{op: "<", a: opKey(a), b: opKey(b)}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	d, err := g.opSub(tok, a, b)
	if err != nil {
		return operand{}, err
	}
	// Smallest N with -2^N <= lo and hi < 2^N.
	n := 1
	for {
		bound := new(big.Int).Lsh(bigOne, uint(n))
		if new(big.Int).Neg(bound).Cmp(d.lo) <= 0 && d.hi.Cmp(bound) < 0 {
			break
		}
		n++
		if n > g.maxMagBits {
			return operand{}, errAt(tok, "comparison operands too wide for the field (need %d bits, have %d)", n, g.maxMagBits)
		}
	}
	bits := make([]int, n+1)
	var sumTerms constraint.GingerConstraint
	for i := range bits {
		bits[i] = g.newWire()
		bOp := operand{wire: bits[i]}
		// b·b - b = 0
		g.addCons(constraint.GingerConstraint{
			g.termMul(bigOne, bOp, bOp),
			{Coeff: g.f.Neg(g.f.One()), A: bits[i]},
		})
		sumTerms = append(sumTerms, constraint.Term{Coeff: g.elem(new(big.Int).Lsh(bigOne, uint(i))), A: bits[i]})
	}
	// Σ 2^i·b_i - d - 2^N = 0
	sumTerms = append(sumTerms,
		g.term(bigNegOne, d),
		constraint.Term{Coeff: g.elem(new(big.Int).Neg(new(big.Int).Lsh(bigOne, uint(n))))})
	g.addCons(sumTerms)
	g.instrs = append(g.instrs, instr{op: iDecompose, aux: bits, a: refOf(d), n: n})
	// a < b  ⟺  d < 0  ⟺  top bit of d + 2^N is 0.
	top := operand{wire: bits[n], lo: big.NewInt(0), hi: big.NewInt(1), isBool: true}
	lt, err := g.opSub(tok, constOp(bigOne), top)
	if err != nil {
		return operand{}, err
	}
	g.cse[key] = lt
	return lt, nil
}

// rangeProof emits bit-decomposition constraints forcing o ∈ [0, 2^n):
// one b·b = b constraint per bit plus the binding sum Σ 2^i·b_i = o.
// The solver decomposes the value directly (offset 0).
func (g *codegen) rangeProof(o operand, n int) {
	g.decomposeBits(o, n)
}

// opDivMod emits the integer division pseudoconstraint (floor semantics)
// q = a / b, r = a % b via
//
//	a = b·q + r,   0 ≤ r < b,   0 ≤ q < 2^M
//
// with the range conditions enforced by bit decompositions, so the triple
// (a, q, r) is uniquely determined and cannot wrap the field. The §5.4
// discussion lists division among the constructs the original compiler
// lacked; this is the natural constraint encoding for it. Requires a ≥ 0
// and b ≥ 1 provable from the operand ranges.
func (g *codegen) opDivMod(tok token, a, b operand) (q, r operand, err error) {
	if b.isConst && b.c.Sign() == 0 {
		return operand{}, operand{}, errAt(tok, "division by zero")
	}
	if a.isConst && b.isConst {
		return constOp(new(big.Int).Div(a.c, b.c)), constOp(new(big.Int).Mod(a.c, b.c)), nil
	}
	if a.lo.Sign() < 0 {
		return operand{}, operand{}, errAt(tok, "division requires a provably non-negative dividend (range starts at %v)", a.lo)
	}
	if b.lo.Sign() < 1 {
		return operand{}, operand{}, errAt(tok, "division requires a provably positive divisor (range starts at %v)", b.lo)
	}
	ka, kb := opKey(a), opKey(b)
	key := cseKey{op: "divmod", a: ka, b: kb}
	if cached, ok := g.cse[key]; ok {
		rkey := cseKey{op: "divmod-r", a: ka, b: kb}
		return cached, g.cse[rkey], nil
	}

	qw := g.newWire()
	rw := g.newWire()
	g.instrs = append(g.instrs, instr{op: iDivMod, dst: qw, aux: []int{rw}, a: refOf(a), b: refOf(b)})

	// Range proofs first: q ∈ [0, 2^M), r ∈ [0, 2^N). Until the
	// decompositions are in place, the wires' *proven* ranges are exactly
	// those intervals — the r < b comparison below must be built from the
	// proven range, not the range we are trying to establish, or it could
	// fold away unsoundly.
	mBits := a.hi.BitLen() + 1
	nBits := new(big.Int).Sub(b.hi, bigOne).BitLen() + 1
	if mBits > g.maxMagBits || nBits > g.maxMagBits {
		return operand{}, operand{}, errAt(tok, "division operands too wide for the field")
	}
	pow := func(n int) *big.Int {
		return new(big.Int).Sub(new(big.Int).Lsh(bigOne, uint(n)), bigOne)
	}
	qProven := operand{wire: qw, lo: big.NewInt(0), hi: pow(mBits)}
	rProven := operand{wire: rw, lo: big.NewInt(0), hi: pow(nBits)}
	g.rangeProof(qProven, mBits)
	g.rangeProof(rProven, nBits)

	// Link: a - b·q - r = 0. With q < 2^M, r < 2^N and b ≤ b.hi the sum
	// b·q + r stays below the field modulus (checked via maxMagBits), so
	// the equation holds over the integers, not just mod p.
	g.addCons(constraint.GingerConstraint{
		g.term(bigOne, a),
		g.termMul(bigNegOne, b, qProven),
		{Coeff: g.f.Neg(g.f.One()), A: rw},
	})
	linkLo, linkHi := rangeMul(qProven, b)
	if err := g.checkRange(tok, linkLo, new(big.Int).Add(linkHi, rProven.hi)); err != nil {
		return operand{}, operand{}, err
	}

	// r < b, forced to hold: lt = (r < b) and lt = 1.
	lt, err := g.opLess(tok, rProven, b)
	if err != nil {
		return operand{}, operand{}, err
	}
	g.addCons(constraint.GingerConstraint{
		g.term(bigOne, lt),
		{Coeff: g.f.Neg(g.f.One()), A: 0},
	})

	// Downstream ranges may now use both the proofs and the enforced
	// inequalities: q ≤ a (since b ≥ 1) and r ≤ b-1.
	qOut := operand{wire: qw, lo: big.NewInt(0), hi: minBig(new(big.Int).Set(a.hi), qProven.hi)}
	rOut := operand{wire: rw, lo: big.NewInt(0), hi: minBig(new(big.Int).Sub(b.hi, bigOne), rProven.hi)}
	g.cse[key] = qOut
	g.cse[cseKey{op: "divmod-r", a: ka, b: kb}] = rOut
	return qOut, rOut, nil
}

func minBig(a, b *big.Int) *big.Int {
	if a.Cmp(b) < 0 {
		return a
	}
	return b
}

// opMux emits w = cond ? x : y via the degree-2 identity
// w = cond·x - cond·y + y.
func (g *codegen) opMux(tok token, cond, x, y operand) (operand, error) {
	if !cond.isBool {
		return operand{}, errAt(tok, "mux condition must be boolean")
	}
	if cond.isConst {
		if cond.c.Sign() != 0 {
			return x, nil
		}
		return y, nil
	}
	if x.isConst && y.isConst && x.c.Cmp(y.c) == 0 {
		return x, nil
	}
	if !x.isConst && !y.isConst && x.wire == y.wire {
		return x, nil
	}
	key := cseKey{op: "mux", a: opKey(cond), b: opKey(x), extra: opKey(y)}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	lo, hi := x.lo, x.hi
	if y.lo.Cmp(lo) < 0 {
		lo = y.lo
	}
	if y.hi.Cmp(hi) > 0 {
		hi = y.hi
	}
	w := g.newWire()
	g.addCons(constraint.GingerConstraint{
		g.termMul(bigOne, cond, x),
		g.termMul(bigNegOne, cond, y),
		g.term(bigOne, y),
		{Coeff: g.f.Neg(g.f.One()), A: w},
	})
	g.instrs = append(g.instrs, instr{op: iMux, dst: w, a: refOf(cond), b: refOf(x), c2: refOf(y)})
	r := operand{wire: w, lo: lo, hi: hi, isBool: x.isBool && y.isBool}
	g.cse[key] = r
	return r, nil
}

func refOf(o operand) ref {
	if o.isConst {
		return ref{isConst: true, c: o.c}
	}
	return ref{wire: o.wire}
}
