package compiler

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"zaatar/internal/field"
)

// Rational support mirrors the paper's §5.1 configurations (b) and (c):
// rational inputs with bounded numerators/denominators, at the 220-bit
// modulus. Outputs come back as (num, den) pairs, exact but unreduced.

// runRat executes and compares outputs as rationals.
func runRat(t *testing.T, p *Program, inputs []int64, want []*big.Rat) {
	t.Helper()
	in := make([]*big.Int, len(inputs))
	for i, v := range inputs {
		in[i] = big.NewInt(v)
	}
	outs, w, err := p.SolveQuad(in)
	if err != nil {
		t.Fatalf("SolveQuad: %v", err)
	}
	if err := p.Quad.Check(p.Field, w); err != nil {
		t.Fatalf("witness: %v", err)
	}
	if len(outs) != 2*len(want) {
		t.Fatalf("got %d output values, want %d (num/den pairs)", len(outs), 2*len(want))
	}
	for i := range want {
		num, den := outs[2*i], outs[2*i+1]
		if den.Sign() <= 0 {
			t.Fatalf("output %d denominator %v not positive", i, den)
		}
		got := new(big.Rat).SetFrac(num, den)
		if got.Cmp(want[i]) != 0 {
			t.Fatalf("output %d (%s/%s) = %v, want %v", i, num, den, got, want[i])
		}
	}
}

func TestRationalArithmetic(t *testing.T) {
	p, err := Compile(field.F220(), `
		input a, b : rat16x5;
		output sum, diff, prod : rat16x5;
		sum = a + b;
		diff = a - b;
		prod = a * b;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// a = 3/4, b = -5/6
	a := big.NewRat(3, 4)
	b := big.NewRat(-5, 6)
	runRat(t, p, []int64{3, 4, -5, 6}, []*big.Rat{
		new(big.Rat).Add(a, b),
		new(big.Rat).Sub(a, b),
		new(big.Rat).Mul(a, b),
	})
}

func TestRationalComparisons(t *testing.T) {
	p, err := Compile(field.F220(), `
		input a, b : rat16x5;
		output lt, le, gt, ge, eq, ne : bool;
		lt = a < b;
		le = a <= b;
		gt = a > b;
		ge = a >= b;
		eq = a == b;
		ne = a != b;
	`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   []int64
		want []int64
	}{
		// 1/2 vs 2/3
		{[]int64{1, 2, 2, 3}, []int64{1, 1, 0, 0, 0, 1}},
		// 2/4 vs 1/2 (equal, different representations)
		{[]int64{2, 4, 1, 2}, []int64{0, 1, 0, 1, 1, 0}},
		// -1/3 vs -2/3
		{[]int64{-1, 3, -2, 3}, []int64{0, 0, 1, 1, 0, 1}},
	}
	for _, c := range cases {
		run(t, p, c.in, c.want)
	}
}

func TestRationalIfAndNegation(t *testing.T) {
	p, err := Compile(field.F220(), `
		input x : rat16x5;
		output y : rat16x5;
		if (x < 0) { y = -x; } else { y = x; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	runRat(t, p, []int64{-7, 3}, []*big.Rat{big.NewRat(7, 3)})
	runRat(t, p, []int64{7, 3}, []*big.Rat{big.NewRat(7, 3)})
}

func TestRationalIntMixing(t *testing.T) {
	p, err := Compile(field.F220(), `
		input x : rat16x5;
		input k : int8;
		output y : rat16x5;
		y = x * k + 1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// (5/2)·3 + 1 = 17/2
	runRat(t, p, []int64{5, 2, 3}, []*big.Rat{big.NewRat(17, 2)})
}

func TestRationalBisectionViaPairs(t *testing.T) {
	// Proper rational bisection: midpoint via (l+h) * (1/2) expressed as a
	// rational constant 1/2 input.
	p, err := Compile(field.F220(), `
		const L = 5;
		input a, b, c : rat8x2;
		input half : rat8x2;
		output root : rat64x40;
		var l, h, mid, pm : rat64x40;
		l = 0 - 8;
		h = 8;
		for t = 1 to L {
			mid = (l + h) * half;
			pm = a * mid * mid + b * mid + c;
			if (pm < 0) { l = mid; } else { h = mid; }
		}
		root = l;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = x - 3 (a=0, b=1, c=-3), root 3 in [-8, 8].
	outs, w, err := p.SolveQuad([]*big.Int{
		big.NewInt(0), big.NewInt(1), // a = 0/1
		big.NewInt(1), big.NewInt(1), // b = 1/1
		big.NewInt(-3), big.NewInt(1), // c = -3/1
		big.NewInt(1), big.NewInt(2), // half = 1/2
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Quad.Check(p.Field, w); err != nil {
		t.Fatal(err)
	}
	got := new(big.Rat).SetFrac(outs[0], outs[1])
	// After 5 bisections of [-8, 8], l is within 16/2^5 = 0.5 below the root.
	lo := big.NewRat(5, 2) // 2.5
	hi := big.NewRat(3, 1) // 3.0
	if got.Cmp(lo) < 0 || got.Cmp(hi) > 0 {
		t.Fatalf("bisection result %v outside [%v, %v]", got, lo, hi)
	}
}

func TestRationalRandomized(t *testing.T) {
	p, err := Compile(field.F220(), `
		input a, b, c : rat16x5;
		output m : rat16x5;
		m = a;
		if (b < m) { m = b; }
		if (c < m) { m = c; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		var ins []int64
		var rats []*big.Rat
		for j := 0; j < 3; j++ {
			n := int64(rng.Intn(2000) - 1000)
			d := int64(1 + rng.Intn(30))
			ins = append(ins, n, d)
			rats = append(rats, big.NewRat(n, d))
		}
		min := rats[0]
		for _, r := range rats[1:] {
			if r.Cmp(min) < 0 {
				min = r
			}
		}
		runRat(t, p, ins, []*big.Rat{min})
	}
}

func TestRationalInputValidation(t *testing.T) {
	p, err := Compile(field.F220(), `
		input x : rat8x3;
		output y : rat8x3;
		y = x;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Denominator 0 is out of the declared [1, 7] range.
	if _, err := p.Execute([]*big.Int{big.NewInt(1), big.NewInt(0)}); err == nil {
		t.Error("zero denominator accepted")
	}
	if _, err := p.Execute([]*big.Int{big.NewInt(1), big.NewInt(8)}); err == nil {
		t.Error("oversized denominator accepted")
	}
	if _, err := p.Execute([]*big.Int{big.NewInt(1), big.NewInt(3)}); err != nil {
		t.Errorf("valid rational input rejected: %v", err)
	}
}

func TestRationalErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"rat to int", `input x : rat8x2; output y : int32; y = x;`, "rational"},
		{"rat logical", `input x : rat8x2; output y : bool; y = x && (x > 0);`, "not defined for rational"},
		{"rat division", `input x, z : rat8x2; output y : rat8x2; y = x / z;`, "not defined for rational"},
		{"rat bitwise", `input x, z : rat8x2; output y : rat8x2; y = x & z;`, "not defined for rational"},
		{"rat dynamic index", `
			input a[3] : rat8x2;
			input i : int8;
			output y : rat8x2;
			y = a[i];`, "dynamic indexing of rational"},
		{"bad rat type", `input x : rat99x2; output y : int8; y = 0;`, "unknown type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(field.F220(), c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestRationalRangeGrowthNeedsBigField(t *testing.T) {
	// Repeated rational multiplication doubles num/den widths; the 128-bit
	// field runs out where the 220-bit field still fits — the reason §5.1
	// runs rational benchmarks at a 220-bit modulus.
	src := `
		input x : rat40x30;
		output y : rat64x64;
		var t : rat64x64;
		t = x * x;
		t = t * t;
		y = t;
	`
	if _, err := Compile(field.F128(), src); err == nil {
		t.Fatal("128-bit field accepted a range-overflowing rational program")
	}
	if _, err := Compile(field.F220(), src); err != nil {
		t.Fatalf("220-bit field rejected a fitting rational program: %v", err)
	}
}
