package compiler

import (
	"math/big"

	"zaatar/internal/constraint"
)

// Bitwise operators (&, |, ^, <<, >>) are a compiler extension covering
// another §5.4 gap ("bitwise operations are supported elsewhere [45]").
// Both operands are bit-decomposed — the same O(bit width) pseudoconstraint
// machinery comparisons use — and combined bit-wise with the boolean
// identities
//
//	a AND b = a·b,  a OR b = a+b-ab,  a XOR b = a+b-2ab,
//
// then recomposed with one linear constraint. Operands must be provably
// non-negative (two's-complement semantics for negative values would need a
// declared width to be meaningful; the range analysis works on values, not
// declarations). Shifts take constant shift amounts: << k multiplies by
// 2^k, >> k is floor division by 2^k.

// decomposeBits range-proves o ∈ [0, 2^n) and returns the n bit operands
// (little-endian), each a proven boolean wire.
func (g *codegen) decomposeBits(o operand, n int) []operand {
	bits := make([]int, n)
	out := make([]operand, n)
	var sum constraint.GingerConstraint
	for i := range bits {
		bits[i] = g.newWire()
		bOp := operand{wire: bits[i]}
		g.addCons(constraint.GingerConstraint{
			g.termMul(bigOne, bOp, bOp),
			{Coeff: g.f.Neg(g.f.One()), A: bits[i]},
		})
		sum = append(sum, constraint.Term{Coeff: g.elem(new(big.Int).Lsh(bigOne, uint(i))), A: bits[i]})
		out[i] = operand{wire: bits[i], lo: big.NewInt(0), hi: big.NewInt(1), isBool: true}
	}
	sum = append(sum, g.term(bigNegOne, o))
	g.addCons(sum)
	g.instrs = append(g.instrs, instr{op: iDecomposeRaw, aux: bits, a: refOf(o), n: n})
	return out
}

// linearCombine materializes w = Σ coeffs[i]·ops[i] with one constraint and
// one solver instruction. The caller supplies the value range.
func (g *codegen) linearCombine(coeffs []*big.Int, ops []operand, lo, hi *big.Int) operand {
	w := g.newWire()
	cons := make(constraint.GingerConstraint, 0, len(ops)+1)
	srcs := make([]ref, len(ops))
	for i := range ops {
		cons = append(cons, g.term(coeffs[i], ops[i]))
		srcs[i] = refOf(ops[i])
	}
	cons = append(cons, constraint.Term{Coeff: g.f.Neg(g.f.One()), A: w})
	g.addCons(cons)
	g.instrs = append(g.instrs, instr{op: iLinComb, dst: w, srcs: srcs, coeffs: coeffs})
	return operand{wire: w, lo: lo, hi: hi}
}

// opBitwise compiles a & b, a | b, a ^ b.
func (g *codegen) opBitwise(tok token, op string, a, b operand) (operand, error) {
	if a.isConst && b.isConst {
		switch op {
		case "&":
			return constOp(new(big.Int).And(a.c, b.c)), nil
		case "|":
			return constOp(new(big.Int).Or(a.c, b.c)), nil
		default:
			return constOp(new(big.Int).Xor(a.c, b.c)), nil
		}
	}
	if a.lo.Sign() < 0 || b.lo.Sign() < 0 {
		return operand{}, errAt(tok, "bitwise operators require provably non-negative operands")
	}
	// & and | and ^ are symmetric; canonicalize for CSE.
	ka, kb := opKey(a), opKey(b)
	if ka > kb {
		a, b = b, a
		ka, kb = kb, ka
	}
	key := cseKey{op: op, a: ka, b: kb}
	if r, ok := g.cse[key]; ok {
		return r, nil
	}
	n := a.hi.BitLen()
	if bn := b.hi.BitLen(); bn > n {
		n = bn
	}
	if n == 0 {
		n = 1
	}
	if n+1 > g.maxMagBits {
		return operand{}, errAt(tok, "bitwise operands too wide for the field")
	}
	abits := g.decomposeBits(a, n)
	bbits := g.decomposeBits(b, n)
	resBits := make([]operand, n)
	for i := 0; i < n; i++ {
		prod, err := g.opMul(tok, abits[i], bbits[i])
		if err != nil {
			return operand{}, err
		}
		switch op {
		case "&":
			resBits[i] = prod
		case "|":
			// a + b - ab
			s, err := g.opAdd(tok, abits[i], bbits[i])
			if err != nil {
				return operand{}, err
			}
			if resBits[i], err = g.opSub(tok, s, prod); err != nil {
				return operand{}, err
			}
			resBits[i].isBool = true
		default: // "^": a + b - 2ab
			s, err := g.opAdd(tok, abits[i], bbits[i])
			if err != nil {
				return operand{}, err
			}
			two, err := g.opMul(tok, constOp(big.NewInt(2)), prod)
			if err != nil {
				return operand{}, err
			}
			if resBits[i], err = g.opSub(tok, s, two); err != nil {
				return operand{}, err
			}
			resBits[i].isBool = true
		}
	}
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		coeffs[i] = new(big.Int).Lsh(bigOne, uint(i))
	}
	hi := new(big.Int).Sub(new(big.Int).Lsh(bigOne, uint(n)), bigOne)
	res := g.linearCombine(coeffs, resBits, big.NewInt(0), hi)
	g.cse[key] = res
	return res, nil
}

// opShift compiles a << k and a >> k for constant non-negative k.
func (g *codegen) opShift(tok token, op string, a, b operand) (operand, error) {
	if !b.isConst {
		return operand{}, errAt(tok, "shift amounts must be compile-time constants")
	}
	if b.c.Sign() < 0 || !b.c.IsInt64() || b.c.Int64() > int64(g.maxMagBits) {
		return operand{}, errAt(tok, "shift amount %v out of range", b.c)
	}
	k := uint(b.c.Int64())
	if op == "<<" {
		return g.opMul(tok, a, constOp(new(big.Int).Lsh(bigOne, k)))
	}
	// a >> k = a / 2^k for non-negative a.
	if a.isConst {
		if a.c.Sign() < 0 {
			return operand{}, errAt(tok, "right shift requires a non-negative operand")
		}
		return constOp(new(big.Int).Rsh(a.c, k)), nil
	}
	q, _, err := g.opDivMod(tok, a, constOp(new(big.Int).Lsh(bigOne, k)))
	return q, err
}
