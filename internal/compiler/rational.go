package compiler

import (
	"math/big"
)

// Rational numbers. The paper's benchmark configurations (b) and (c) use
// rational inputs — §5.1: "rational number inputs with 32-bit numerators,
// 5-bit denominators, and a field modulus of 220 bits". This implementation
// represents a rational as an explicit (numerator, denominator) wire pair
// with the denominator provably positive:
//
//	a/b + c/d = (ad + cb)/(bd)      a/b · c/d = (ac)/(bd)
//	a/b < c/d ⇔ ad < cb            (valid because b, d > 0)
//
// Numerator and denominator ranges grow multiplicatively with each
// operation, which is why rational computations need the larger 220-bit
// modulus — the compiler's range analysis enforces exactly that, mirroring
// the paper's field-size requirement.
//
// A rational type is written ratNxM: N-bit signed numerator, M-bit positive
// denominator, e.g. `input x[4] : rat32x5;`. Each rational input consumes
// two input values (numerator then denominator, with 1 ≤ den < 2^M); each
// rational output produces two output values. Outputs are exact but not
// reduced to lowest terms.

// isRat reports whether the operand carries a denominator.
func (o operand) isRat() bool { return o.den != nil }

// denOf returns the denominator operand, treating integers as den = 1.
func denOf(o operand) operand {
	if o.den != nil {
		return *o.den
	}
	return constOp(big.NewInt(1))
}

// numOf returns the numerator part.
func numOf(o operand) operand {
	n := o
	n.den = nil
	return n
}

func makeRat(num, den operand) operand {
	if den.isConst && den.c.Cmp(bigOne) == 0 {
		return num
	}
	num.den = &den
	return num
}

// ratCross computes the cross products (a.num·b.den, b.num·a.den) used by
// addition and every comparison.
func (g *codegen) ratCross(tok token, a, b operand) (ad, cb operand, err error) {
	ad, err = g.opMul(tok, numOf(a), denOf(b))
	if err != nil {
		return operand{}, operand{}, err
	}
	cb, err = g.opMul(tok, numOf(b), denOf(a))
	if err != nil {
		return operand{}, operand{}, err
	}
	return ad, cb, nil
}

func (g *codegen) ratAdd(tok token, a, b operand) (operand, error) {
	ad, cb, err := g.ratCross(tok, a, b)
	if err != nil {
		return operand{}, err
	}
	num, err := g.opAdd(tok, ad, cb)
	if err != nil {
		return operand{}, err
	}
	den, err := g.opMul(tok, denOf(a), denOf(b))
	if err != nil {
		return operand{}, err
	}
	return makeRat(num, den), nil
}

func (g *codegen) ratSub(tok token, a, b operand) (operand, error) {
	ad, cb, err := g.ratCross(tok, a, b)
	if err != nil {
		return operand{}, err
	}
	num, err := g.opSub(tok, ad, cb)
	if err != nil {
		return operand{}, err
	}
	den, err := g.opMul(tok, denOf(a), denOf(b))
	if err != nil {
		return operand{}, err
	}
	return makeRat(num, den), nil
}

func (g *codegen) ratMul(tok token, a, b operand) (operand, error) {
	num, err := g.opMul(tok, numOf(a), numOf(b))
	if err != nil {
		return operand{}, err
	}
	den, err := g.opMul(tok, denOf(a), denOf(b))
	if err != nil {
		return operand{}, err
	}
	return makeRat(num, den), nil
}

// ratCompare dispatches a comparison through cross-multiplication. The
// denominators' ranges guarantee positivity, so the order is preserved.
func (g *codegen) ratCompare(tok token, op string, a, b operand) (operand, error) {
	ad, cb, err := g.ratCross(tok, a, b)
	if err != nil {
		return operand{}, err
	}
	switch op {
	case "<":
		return g.opLess(tok, ad, cb)
	case ">":
		return g.opLess(tok, cb, ad)
	case "<=":
		gt, err := g.opLess(tok, cb, ad)
		if err != nil {
			return operand{}, err
		}
		return g.opNot(tok, gt)
	case ">=":
		lt, err := g.opLess(tok, ad, cb)
		if err != nil {
			return operand{}, err
		}
		return g.opNot(tok, lt)
	case "==":
		return g.opEq(tok, ad, cb)
	default: // "!="
		return g.opNeq(tok, ad, cb)
	}
}

// muxValue muxes full values, including denominators for rationals.
func (g *codegen) muxValue(tok token, cond, x, y operand) (operand, error) {
	if !x.isRat() && !y.isRat() {
		return g.opMux(tok, cond, x, y)
	}
	num, err := g.opMux(tok, cond, numOf(x), numOf(y))
	if err != nil {
		return operand{}, err
	}
	den, err := g.opMux(tok, cond, denOf(x), denOf(y))
	if err != nil {
		return operand{}, err
	}
	return makeRat(num, den), nil
}

// ratTypeRange returns numerator and denominator ranges for a declared
// rational type.
func ratTypeRange(t Type) (numLo, numHi, denLo, denHi *big.Int) {
	numHi = new(big.Int).Lsh(bigOne, uint(t.RatNum-1))
	numLo = new(big.Int).Neg(numHi)
	numHi = new(big.Int).Sub(numHi, bigOne)
	denLo = big.NewInt(1)
	denHi = new(big.Int).Sub(new(big.Int).Lsh(bigOne, uint(t.RatDen)), bigOne)
	return
}
