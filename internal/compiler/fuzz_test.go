package compiler

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"zaatar/internal/field"
)

// Differential fuzzing: generate random well-typed programs, compile them,
// and cross-check the compiled semantics (and witness validity) against a
// direct interpreter. This catches interactions between features that
// hand-written unit tests miss — constant folding vs wires, CSE, mux
// merging, comparison widths, dynamic indexing.

type fuzzGen struct {
	rng   *rand.Rand
	buf   strings.Builder
	nVars int
	nBool int
}

// intExpr emits a random integer-valued expression of bounded depth. Only
// inputs and constants may be multiplied (keeping value ranges in check);
// variables join through +, - and muxes.
func (g *fuzzGen) intExpr(depth int) string {
	if depth == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("in%d", g.rng.Intn(3))
		case 1:
			return fmt.Sprintf("%d", g.rng.Intn(21)-10)
		default:
			if g.nVars > 0 {
				return fmt.Sprintf("v%d", g.rng.Intn(g.nVars))
			}
			return fmt.Sprintf("in%d", g.rng.Intn(3))
		}
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		// Multiplication only of leaf inputs/constants.
		return fmt.Sprintf("(in%d * %d)", g.rng.Intn(3), g.rng.Intn(9)-4)
	case 3:
		return fmt.Sprintf("(-%s)", g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(in%d * in%d)", g.rng.Intn(3), g.rng.Intn(3))
	}
}

// boolExpr emits a random boolean expression.
func (g *fuzzGen) boolExpr(depth int) string {
	if depth == 0 || g.rng.Intn(3) == 0 {
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(1), op, g.intExpr(1))
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(!%s)", g.boolExpr(depth-1))
	}
}

// program emits a random program over three int8 inputs with a handful of
// int64 variables and statements, ending with outputs of every variable.
func (g *fuzzGen) program(stmts int) string {
	g.buf.Reset()
	g.nVars = 2 + g.rng.Intn(3)
	fmt.Fprintf(&g.buf, "input in0, in1, in2 : int8;\n")
	var outs []string
	for i := 0; i < g.nVars; i++ {
		outs = append(outs, fmt.Sprintf("o%d", i))
	}
	fmt.Fprintf(&g.buf, "output %s : int64;\n", strings.Join(outs, ", "))
	for i := 0; i < g.nVars; i++ {
		fmt.Fprintf(&g.buf, "var v%d : int64;\n", i)
	}
	for s := 0; s < stmts; s++ {
		v := g.rng.Intn(g.nVars)
		switch g.rng.Intn(3) {
		case 0, 1:
			fmt.Fprintf(&g.buf, "v%d = %s;\n", v, g.intExpr(1+g.rng.Intn(2)))
		default:
			w := g.rng.Intn(g.nVars)
			fmt.Fprintf(&g.buf, "if (%s) { v%d = %s; } else { v%d = %s; }\n",
				g.boolExpr(1), v, g.intExpr(1), w, g.intExpr(1))
		}
	}
	for i := 0; i < g.nVars; i++ {
		fmt.Fprintf(&g.buf, "o%d = v%d;\n", i, i)
	}
	return g.buf.String()
}

// interp is a tiny reference interpreter over the same AST.
type interp struct {
	vals map[string]*big.Int
}

func (it *interp) expr(e Expr) *big.Int {
	switch e := e.(type) {
	case *NumExpr:
		return e.Val
	case *BoolExpr:
		if e.Val {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	case *VarExpr:
		return it.vals[e.Name]
	case *UnExpr:
		x := it.expr(e.X)
		if e.Op == "-" {
			return new(big.Int).Neg(x)
		}
		return big.NewInt(1 - x.Int64())
	case *BinExpr:
		l, r := it.expr(e.L), it.expr(e.R)
		switch e.Op {
		case "+":
			return new(big.Int).Add(l, r)
		case "-":
			return new(big.Int).Sub(l, r)
		case "*":
			return new(big.Int).Mul(l, r)
		case "<":
			return boolInt(l.Cmp(r) < 0)
		case "<=":
			return boolInt(l.Cmp(r) <= 0)
		case ">":
			return boolInt(l.Cmp(r) > 0)
		case ">=":
			return boolInt(l.Cmp(r) >= 0)
		case "==":
			return boolInt(l.Cmp(r) == 0)
		case "!=":
			return boolInt(l.Cmp(r) != 0)
		case "&&":
			return boolInt(l.Sign() != 0 && r.Sign() != 0)
		case "||":
			return boolInt(l.Sign() != 0 || r.Sign() != 0)
		}
	}
	panic("fuzz interp: unsupported expression")
}

func boolInt(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return big.NewInt(0)
}

func (it *interp) stmts(ss []Stmt) {
	for _, s := range ss {
		switch s := s.(type) {
		case *AssignStmt:
			it.vals[s.Target.Name] = it.expr(s.Value)
		case *IfStmt:
			if it.expr(s.Cond).Sign() != 0 {
				it.stmts(s.Then)
			} else {
				it.stmts(s.Else)
			}
		}
	}
}

func TestFuzzDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := &fuzzGen{rng: rng}
	f := field.F128()
	compiled := 0
	for trial := 0; trial < 120; trial++ {
		src := g.program(3 + rng.Intn(6))
		prog, err := Compile(f, src)
		if err != nil {
			// Range overflows are expected occasionally; anything else is a
			// generator or compiler bug.
			if strings.Contains(err.Error(), "integer capacity") {
				continue
			}
			t.Fatalf("trial %d: unexpected compile error: %v\nprogram:\n%s", trial, err, src)
		}
		compiled++

		file, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			in := []*big.Int{
				big.NewInt(int64(rng.Intn(256) - 128)),
				big.NewInt(int64(rng.Intn(256) - 128)),
				big.NewInt(int64(rng.Intn(256) - 128)),
			}
			it := &interp{vals: map[string]*big.Int{
				"in0": in[0], "in1": in[1], "in2": in[2],
			}}
			for _, d := range file.Decls {
				if d.Kind == "var" || d.Kind == "output" {
					it.vals[d.Name] = big.NewInt(0)
				}
			}
			it.stmts(file.Stmts)

			outs, w, err := prog.SolveGinger(in)
			if err != nil {
				t.Fatalf("trial %d: solve: %v\nprogram:\n%s", trial, err, src)
			}
			if err := prog.Ginger.Check(f, w); err != nil {
				t.Fatalf("trial %d: witness: %v\nprogram:\n%s", trial, err, src)
			}
			for i, name := range prog.OutputNames {
				want := it.vals[strings.TrimPrefix(name, "o")]
				want = it.vals["v"+strings.TrimPrefix(name, "o")]
				if outs[i].Cmp(want) != 0 {
					t.Fatalf("trial %d rep %d: output %s = %v, interpreter says %v\ninputs %v\nprogram:\n%s",
						trial, rep, name, outs[i], want, in, src)
				}
			}
		}
		// Every tenth program, additionally check the quadratic system.
		if trial%10 == 0 {
			in := []*big.Int{big.NewInt(1), big.NewInt(-2), big.NewInt(3)}
			_, wq, err := prog.SolveQuad(in)
			if err != nil {
				t.Fatal(err)
			}
			if err := prog.Quad.Check(f, wq); err != nil {
				t.Fatalf("trial %d: quad witness: %v", trial, err)
			}
		}
	}
	if compiled < 80 {
		t.Errorf("only %d/120 random programs compiled; generator too aggressive", compiled)
	}
	t.Logf("fuzz: %d/120 programs compiled and matched the interpreter", compiled)
}
