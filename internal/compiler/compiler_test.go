package compiler

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"zaatar/internal/field"
)

func compileOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(field.F128(), src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// run executes and cross-checks: outputs match want, and the witnesses
// satisfy both constraint systems.
func run(t *testing.T, p *Program, inputs []int64, want []int64) {
	t.Helper()
	in := make([]*big.Int, len(inputs))
	for i, v := range inputs {
		in[i] = big.NewInt(v)
	}
	outs, wg, err := p.SolveGinger(in)
	if err != nil {
		t.Fatalf("SolveGinger: %v", err)
	}
	if len(outs) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(outs), len(want))
	}
	for i := range want {
		if outs[i].Int64() != want[i] {
			t.Fatalf("output[%d] (%s) = %v, want %d", i, p.OutputNames[i], outs[i], want[i])
		}
	}
	if err := p.Ginger.Check(p.Field, wg); err != nil {
		t.Fatalf("ginger witness: %v", err)
	}
	_, wq, err := p.SolveQuad(in)
	if err != nil {
		t.Fatalf("SolveQuad: %v", err)
	}
	if err := p.Quad.Check(p.Field, wq); err != nil {
		t.Fatalf("quad witness: %v", err)
	}
}

func TestDecrement(t *testing.T) {
	p := compileOK(t, `
		input x : int32;
		output y : int32;
		y = x - 3;
	`)
	run(t, p, []int64{10}, []int64{7})
	run(t, p, []int64{0}, []int64{-3})
}

func TestArithmetic(t *testing.T) {
	p := compileOK(t, `
		input a, b : int32;
		output s, d, m, n : int64;
		s = a + b;
		d = a - b;
		m = a * b;
		n = -a;
	`)
	run(t, p, []int64{7, 5}, []int64{12, 2, 35, -7})
	run(t, p, []int64{-3, 8}, []int64{5, -11, -24, 3})
}

func TestConstFolding(t *testing.T) {
	p := compileOK(t, `
		const N = 6;
		input x : int32;
		output y : int32;
		y = x * (N - 4) + 2 * 3;
	`)
	run(t, p, []int64{5}, []int64{16})
}

func TestComparisons(t *testing.T) {
	p := compileOK(t, `
		input a, b : int32;
		output lt, le, gt, ge, eq, ne : bool;
		lt = a < b;
		le = a <= b;
		gt = a > b;
		ge = a >= b;
		eq = a == b;
		ne = a != b;
	`)
	run(t, p, []int64{3, 5}, []int64{1, 1, 0, 0, 0, 1})
	run(t, p, []int64{5, 5}, []int64{0, 1, 0, 1, 1, 0})
	run(t, p, []int64{7, 5}, []int64{0, 0, 1, 1, 0, 1})
	run(t, p, []int64{-7, 5}, []int64{1, 1, 0, 0, 0, 1})
	run(t, p, []int64{-7, -9}, []int64{0, 0, 1, 1, 0, 1})
}

func TestLogicalOps(t *testing.T) {
	p := compileOK(t, `
		input a, b : int32;
		output both, either, nope : bool;
		both = (a > 0) && (b > 0);
		either = (a > 0) || (b > 0);
		nope = !(a > 0);
	`)
	run(t, p, []int64{1, 1}, []int64{1, 1, 0})
	run(t, p, []int64{1, -1}, []int64{0, 1, 0})
	run(t, p, []int64{-1, -1}, []int64{0, 0, 1})
}

func TestIfElse(t *testing.T) {
	p := compileOK(t, `
		input x : int32;
		output y : int32;
		if (x < 0) { y = -x; } else { y = x; }
	`)
	run(t, p, []int64{-9}, []int64{9})
	run(t, p, []int64{9}, []int64{9})
	run(t, p, []int64{0}, []int64{0})
}

func TestNestedIf(t *testing.T) {
	p := compileOK(t, `
		input x : int32;
		output y : int32;
		if (x < 0) {
			if (x < -10) { y = 1; } else { y = 2; }
		} else if (x > 10) { y = 3; } else { y = 4; }
	`)
	run(t, p, []int64{-20}, []int64{1})
	run(t, p, []int64{-5}, []int64{2})
	run(t, p, []int64{20}, []int64{3})
	run(t, p, []int64{5}, []int64{4})
}

func TestForLoop(t *testing.T) {
	p := compileOK(t, `
		const N = 10;
		input x[N] : int32;
		output sum : int64;
		sum = 0;
		for i = 0 to N-1 { sum = sum + x[i]; }
	`)
	in := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	run(t, p, in, []int64{55})
}

func TestConstantConditionFolds(t *testing.T) {
	p := compileOK(t, `
		const FLAG = 1;
		input x : int32;
		output y : int32;
		if (FLAG == 1) { y = x; } else { y = 0 - x; }
	`)
	run(t, p, []int64{42}, []int64{42})
}

func TestArrays2D(t *testing.T) {
	p := compileOK(t, `
		const R = 2;
		const C = 3;
		input m[R][C] : int32;
		output t : int64;
		var acc : int64;
		acc = 0;
		for i = 0 to R-1 {
			for j = 0 to C-1 { acc = acc + m[i][j] * (i + 1); }
		}
		t = acc;
	`)
	// m = [[1,2,3],[4,5,6]]: 1+2+3 + 2*(4+5+6) = 6 + 30 = 36
	run(t, p, []int64{1, 2, 3, 4, 5, 6}, []int64{36})
}

func TestDynamicRead(t *testing.T) {
	p := compileOK(t, `
		const N = 5;
		input a[N] : int32;
		input i : int32;
		output y : int32;
		y = a[i];
	`)
	run(t, p, []int64{10, 20, 30, 40, 50, 3}, []int64{40})
	run(t, p, []int64{10, 20, 30, 40, 50, 0}, []int64{10})
	// Out-of-range dynamic index reads as 0.
	run(t, p, []int64{10, 20, 30, 40, 50, 7}, []int64{0})
}

func TestDynamicWrite(t *testing.T) {
	p := compileOK(t, `
		const N = 4;
		input i : int32;
		output a[N] : int32;
		for k = 0 to N-1 { a[k] = k; }
		a[i] = 99;
	`)
	run(t, p, []int64{2}, []int64{0, 1, 99, 3})
	run(t, p, []int64{0}, []int64{99, 1, 2, 3})
}

func TestMinViaIf(t *testing.T) {
	p := compileOK(t, `
		const N = 6;
		input x[N] : int32;
		output m : int32;
		m = x[0];
		for i = 1 to N-1 {
			if (x[i] < m) { m = x[i]; }
		}
	`)
	run(t, p, []int64{5, 3, 8, -2, 9, 0}, []int64{-2})
	run(t, p, []int64{5, 5, 5, 5, 5, 5}, []int64{5})
}

func TestBoolInput(t *testing.T) {
	p := compileOK(t, `
		input c : bool;
		input a, b : int32;
		output y : int32;
		if (c) { y = a; } else { y = b; }
	`)
	run(t, p, []int64{1, 10, 20}, []int64{10})
	run(t, p, []int64{0, 10, 20}, []int64{20})
}

func TestInputMutation(t *testing.T) {
	// Mutating a variable bound to inputs must not disturb the input wires.
	p := compileOK(t, `
		const N = 3;
		input a[N] : int32;
		output s : int64;
		a[0] = a[0] + a[1];
		s = a[0] + a[2];
	`)
	run(t, p, []int64{1, 2, 3}, []int64{6})
}

func TestInputRangeEnforced(t *testing.T) {
	p := compileOK(t, `
		input x : int8;
		output y : int32;
		y = x + 1;
	`)
	if _, err := p.Execute([]*big.Int{big.NewInt(300)}); err == nil {
		t.Fatal("out-of-range input accepted")
	}
	if _, err := p.Execute([]*big.Int{big.NewInt(-129)}); err == nil {
		t.Fatal("out-of-range negative input accepted")
	}
}

func TestWrongInputCount(t *testing.T) {
	p := compileOK(t, `input x : int32; output y : int32; y = x;`)
	if _, err := p.Execute(nil); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined", `output y : int32; y = x;`, "undefined"},
		{"no outputs", `input x : int32; x = x;`, "no outputs"},
		{"redeclare", `input x : int32; var x : int32; output y : int32; y = 0;`, "redeclaration"},
		{"assign const", `const N = 3; output y : int32; N = 4;`, "constant"},
		{"bad type", `input x : float; output y : int32; y = x;`, "unknown type"},
		{"non-bool if", `input x : int32; output y : int32; if (x) { y = 1; } else { y = 0; }`, "boolean"},
		{"non-bool and", `input x : int32; output y : bool; y = x && (x > 0);`, "boolean"},
		{"bool assign", `input x : int32; output y : bool; y = x + 1;`, "non-boolean"},
		{"index count", `input a[3] : int32; output y : int32; y = a[0][1];`, "dimensions"},
		{"static oob", `input a[3] : int32; output y : int32; y = a[5];`, "out of bounds"},
		{"nonconst bound", `input n : int32; output y : int32; y = 0; for i = 0 to n { y = y + 1; }`, "constant"},
		{"unterminated", `input x : int32; output y : int32; y = (x;`, "expected"},
		{"bad char", `input x : int32; output y : int32; y = x $ 1;`, "unexpected character"},
		{"index const", `const N = 2; output y : int32; y = N[0];`, "cannot index"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(field.F128(), c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestRangeOverflowRejected(t *testing.T) {
	// Squaring an int64 yields a ±2^126 range, which exceeds the 128-bit
	// field's ±2^125 integer capacity but fits the 220-bit field — the same
	// reason §5.1 runs some benchmarks at a 220-bit modulus.
	src := `
		input x : int64;
		output y : int64;
		y = x * x;
	`
	if _, err := Compile(field.F128(), src); err == nil {
		t.Fatal("range overflow not rejected")
	}
	if _, err := Compile(field.F220(), src); err != nil {
		t.Fatalf("220-bit field rejected a fitting program: %v", err)
	}
}

func TestIOIsolation(t *testing.T) {
	// No degree-2 term may touch a bound wire (the PCP batching invariant).
	p := compileOK(t, `
		input x, y : int32;
		output z : int64;
		z = x * y;
	`)
	nz := p.Ginger.NumUnbound()
	for j, c := range p.Ginger.Cons {
		for _, term := range c {
			if term.Degree() == 2 && (term.A > nz || term.B > nz) {
				t.Fatalf("constraint %d has degree-2 term on bound wire", j)
			}
		}
	}
	run(t, p, []int64{6, 7}, []int64{42})
}

func TestCanonicalSystems(t *testing.T) {
	p := compileOK(t, `
		input x : int32;
		output y : int32;
		y = x * x + 1;
	`)
	if !p.Quad.IsCanonical() {
		t.Error("Quad system is not canonical")
	}
	if got, want := len(p.Ginger.In), 1; got != want {
		t.Errorf("inputs = %d, want %d", got, want)
	}
	st := p.Stats()
	if st.UZaatar != p.Quad.NumUnbound()+p.Quad.NumConstraints() {
		t.Error("UZaatar mismatch")
	}
	if st.ZaatarVars != st.GingerVars+st.K2 || st.ZaatarConstraints != st.GingerConstraints+st.K2 {
		t.Error("§4 size relations violated")
	}
}

func TestCSEDedupes(t *testing.T) {
	// The same subexpression appearing twice must not double the wires.
	p1 := compileOK(t, `
		input a, b : int32;
		output y : int64;
		y = (a + b) * (a + b);
	`)
	p2 := compileOK(t, `
		input a, b : int32;
		output y : int64;
		var t : int64;
		t = a + b;
		y = t * t;
	`)
	if p1.Ginger.NumVars != p2.Ginger.NumVars {
		t.Errorf("CSE failed: %d vars vs %d", p1.Ginger.NumVars, p2.Ginger.NumVars)
	}
	run(t, p1, []int64{3, 4}, []int64{49})
}

func TestIOValuesAndDecode(t *testing.T) {
	p := compileOK(t, `input x : int32; output y : int32; y = x - 100;`)
	in := []*big.Int{big.NewInt(1)}
	outs, _, err := p.SolveGinger(in)
	if err != nil {
		t.Fatal(err)
	}
	io, err := p.IOValues(in, outs)
	if err != nil {
		t.Fatal(err)
	}
	if len(io) != 2 {
		t.Fatalf("io length %d, want 2", len(io))
	}
	dec := p.DecodeOutputs([]field.Element{io[1]})
	if dec[0].Int64() != -99 {
		t.Errorf("decoded output %v, want -99", dec[0])
	}
	if _, err := p.IOValues(in, nil); err == nil {
		t.Error("io size mismatch accepted")
	}
}

func TestRandomizedAgainstInterpreter(t *testing.T) {
	// Fuzz a fixed program against a direct Go implementation.
	p := compileOK(t, `
		const N = 8;
		input x[N] : int16;
		output maxv, minv : int32;
		output sumpos : int64;
		maxv = x[0];
		minv = x[0];
		sumpos = 0;
		for i = 0 to N-1 {
			if (x[i] > maxv) { maxv = x[i]; }
			if (x[i] < minv) { minv = x[i]; }
			if (x[i] > 0) { sumpos = sumpos + x[i]; }
		}
	`)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		in := make([]int64, 8)
		maxv, minv, sum := int64(-40000), int64(40000), int64(0)
		for i := range in {
			in[i] = int64(rng.Intn(65536) - 32768)
			if in[i] > maxv {
				maxv = in[i]
			}
			if in[i] < minv {
				minv = in[i]
			}
			if in[i] > 0 {
				sum += in[i]
			}
		}
		run(t, p, in, []int64{maxv, minv, sum})
	}
}

func TestParserRecognizesComments(t *testing.T) {
	p := compileOK(t, `
		// line comment
		input x : int32; /* block
		comment */ output y : int32;
		y = x; // trailing
	`)
	run(t, p, []int64{5}, []int64{5})
}

func TestHexLiterals(t *testing.T) {
	p := compileOK(t, `input x : int32; output y : int64; y = x + 0x10;`)
	run(t, p, []int64{1}, []int64{17})
}
