package compiler

import (
	"fmt"
	"math/big"

	"zaatar/internal/field"
)

// The solver executes the compiled straight-line program over exact signed
// integers (big.Int), producing the outputs and a satisfying assignment of
// the constraint system. This is the prover's "solve constraints" phase of
// Figure 5: by construction, executing the computation and recording every
// intermediate value (plus the auxiliary values demanded by
// pseudoconstraints — inverse witnesses M and comparison bits) yields a
// witness for the equivalent constraints (§2.1 step Á).

type opcode int

const (
	iInput opcode = iota
	iAdd
	iSub
	iMul
	iNeq          // dst = (a != b), aux[0] = field inverse of (a-b) or 0
	iDecompose    // aux = bits of (a + 2^n), little-endian
	iDecomposeRaw // aux = bits of a (which must lie in [0, 2^n)), little-endian
	iMux          // dst = a(cond) != 0 ? b : c2
	iCopy         // dst = a
	iDivMod       // dst = a / b (floor), aux[0] = a % b; requires a ≥ 0, b ≥ 1
	iLinComb      // dst = Σ coeffs[i]·srcs[i]
)

// ref is an instruction operand: a wire or an immediate constant.
type ref struct {
	isConst bool
	c       *big.Int
	wire    int
}

type instr struct {
	op   opcode
	dst  int
	aux  []int
	a, b ref
	c2   ref
	n    int // input index for iInput; bit width for iDecompose

	// iLinComb operands.
	srcs   []ref
	coeffs []*big.Int
}

func (r ref) value(vals []*big.Int) *big.Int {
	if r.isConst {
		return r.c
	}
	return vals[r.wire]
}

// Execute runs the program on the given inputs (signed integers that must
// fit the declared input types) and returns the outputs plus the raw wire
// values.
func (p *Program) execute(inputs []*big.Int) ([]*big.Int, []*big.Int, error) {
	if len(inputs) != len(p.inWires) {
		return nil, nil, fmt.Errorf("compiler: program takes %d inputs, got %d", len(p.inWires), len(inputs))
	}
	for i, d := range p.inputRanges {
		if inputs[i].Cmp(d.lo) < 0 || inputs[i].Cmp(d.hi) > 0 {
			return nil, nil, fmt.Errorf("compiler: input %s = %v out of range [%v, %v]",
				p.InputNames[i], inputs[i], d.lo, d.hi)
		}
	}
	vals := make([]*big.Int, p.numWires+1)
	vals[0] = big.NewInt(1)
	f := p.Field
	for _, in := range p.instrs {
		switch in.op {
		case iInput:
			vals[in.aux[0]] = inputs[in.n]
			vals[in.dst] = inputs[in.n]
		case iAdd:
			vals[in.dst] = new(big.Int).Add(in.a.value(vals), in.b.value(vals))
		case iSub:
			vals[in.dst] = new(big.Int).Sub(in.a.value(vals), in.b.value(vals))
		case iMul:
			vals[in.dst] = new(big.Int).Mul(in.a.value(vals), in.b.value(vals))
		case iNeq:
			d := new(big.Int).Sub(in.a.value(vals), in.b.value(vals))
			if d.Sign() == 0 {
				vals[in.dst] = big.NewInt(0)
				vals[in.aux[0]] = big.NewInt(0)
			} else {
				vals[in.dst] = big.NewInt(1)
				// M = (a-b)⁻¹ exists only in the field.
				vals[in.aux[0]] = f.ToBig(f.Inv(f.FromBig(d)))
			}
		case iDecompose:
			shifted := new(big.Int).Add(in.a.value(vals), new(big.Int).Lsh(bigOne, uint(in.n)))
			if shifted.Sign() < 0 || shifted.BitLen() > in.n+1 {
				return nil, nil, fmt.Errorf("compiler: internal error: decompose value %v outside [0, 2^%d)", shifted, in.n+1)
			}
			for i, bw := range in.aux {
				vals[bw] = big.NewInt(int64(shifted.Bit(i)))
			}
		case iDecomposeRaw:
			v := in.a.value(vals)
			if v.Sign() < 0 || v.BitLen() > in.n {
				return nil, nil, fmt.Errorf("compiler: internal error: raw decompose value %v outside [0, 2^%d)", v, in.n)
			}
			for i, bw := range in.aux {
				vals[bw] = big.NewInt(int64(v.Bit(i)))
			}
		case iDivMod:
			av, bv := in.a.value(vals), in.b.value(vals)
			if bv.Sign() <= 0 || av.Sign() < 0 {
				return nil, nil, fmt.Errorf("compiler: internal error: divmod operands %v / %v out of range", av, bv)
			}
			q, r := new(big.Int).QuoRem(av, bv, new(big.Int))
			vals[in.dst] = q
			vals[in.aux[0]] = r
		case iLinComb:
			acc := new(big.Int)
			for i, src := range in.srcs {
				acc.Add(acc, new(big.Int).Mul(in.coeffs[i], src.value(vals)))
			}
			vals[in.dst] = acc
		case iMux:
			if in.a.value(vals).Sign() != 0 {
				vals[in.dst] = in.b.value(vals)
			} else {
				vals[in.dst] = in.c2.value(vals)
			}
		case iCopy:
			vals[in.dst] = in.a.value(vals)
		}
	}
	outs := make([]*big.Int, len(p.outWires))
	for i, w := range p.outWires {
		outs[i] = vals[w]
	}
	return outs, vals, nil
}

// assignmentFromVals converts raw wire values into a field assignment.
func (p *Program) assignmentFromVals(vals []*big.Int) []field.Element {
	w := make([]field.Element, len(vals))
	w[0] = p.Field.One()
	for i := 1; i < len(vals); i++ {
		if vals[i] == nil {
			w[i] = p.Field.Zero() // unreferenced wire (cannot happen for compiled wires)
			continue
		}
		w[i] = p.Field.FromBig(vals[i])
	}
	return w
}
