package compiler

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"zaatar/internal/field"
)

// Division and modulo are the compiler extension covering one of the §5.4
// gaps ("our compiler lacks support for certain program constructs, such as
// ... division"). These tests pin the floor semantics and the soundness of
// the range-proof encoding.

func TestDivMod(t *testing.T) {
	// Squaring makes the operand ranges provably non-negative/positive,
	// which the division gadget requires (range analysis does not learn
	// from branch conditions).
	p := compileOK(t, `
		input a : int16;
		input b : int8;
		output q, r : int32;
		var a2, b2 : int32;
		a2 = a * a;
		b2 = b * b + 1;
		q = a2 / b2;
		r = a2 % b2;
	`)
	cases := [][2]int64{{100, 7}, {0, 5}, {5, 5}, {4, 5}, {181, 1}, {181, 11}, {1, 2}}
	for _, c := range cases {
		a2, b2 := c[0]*c[0], c[1]*c[1]+1
		run(t, p, []int64{c[0], c[1]}, []int64{a2 / b2, a2 % b2})
	}
}

func TestDivModRandomized(t *testing.T) {
	p := compileOK(t, `
		input a : int16;
		input b : int8;
		output q, r : int32;
		var a2, b2 : int32;
		a2 = a * a;
		b2 = b * b + 1;
		q = a2 / b2;
		r = a2 % b2;
	`)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		a := int64(rng.Intn(65536) - 32768)
		b := int64(rng.Intn(256) - 128)
		a2, b2 := a*a, b*b+1
		run(t, p, []int64{a, b}, []int64{a2 / b2, a2 % b2})
	}
}

func TestDivByConstant(t *testing.T) {
	p := compileOK(t, `
		input a : int16;
		output h : int32;
		var a2 : int32;
		a2 = a * a;
		h = a2 / 2;
	`)
	run(t, p, []int64{9}, []int64{40})
	run(t, p, []int64{-3}, []int64{4})
}

func TestDivConstFolding(t *testing.T) {
	p := compileOK(t, `
		input x : int32;
		output y : int64;
		y = x + 17 / 5 + 17 % 5;
	`)
	// 17/5 = 3, 17%5 = 2.
	run(t, p, []int64{0}, []int64{5})
}

func TestDivisionErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div by zero const", `input a : int16; output y : int16; y = a / 0;`, "division by zero"},
		{"negative dividend", `input a : int16; output y : int16; y = a / 3;`, "non-negative dividend"},
		{"possibly zero divisor", `
			input a, b : int16;
			output y : int64;
			var a2 : int32;
			a2 = a * a;
			y = a2 / b;`, "positive divisor"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(field.F128(), c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.wantSub)
			}
		})
	}
}

// TestDivisionWitnessSoundness checks that a witness claiming a wrong
// quotient violates the constraints — the range proofs pin (q, r) uniquely.
func TestDivisionWitnessSoundness(t *testing.T) {
	f := field.F128()
	p := compileOK(t, `
		input a : int8;
		output q : int32;
		var a2 : int32;
		a2 = a * a;
		q = a2 / 3;
	`)
	in := []int64{10}
	_, w, err := p.SolveGinger(bigs(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ginger.Check(f, w); err != nil {
		t.Fatal(err)
	}
	// Perturb the quotient output wire: the linked constraints must break.
	out := p.Ginger.Out[0]
	w[out] = f.Add(w[out], f.One())
	if err := p.Ginger.Check(f, w); err == nil {
		t.Fatal("wrong quotient accepted by the constraint system")
	}
}

func TestDivModCSE(t *testing.T) {
	// a/b and a%b share one divmod gadget.
	p1 := compileOK(t, `
		input a : int16;
		output q, r : int32;
		var a2 : int32;
		a2 = a * a;
		q = a2 / 7;
		r = a2 % 7;
	`)
	p2 := compileOK(t, `
		input a : int16;
		output q, r : int32;
		var a2 : int32;
		a2 = a * a;
		q = a2 / 7;
		r = a2 - q * 7;
	`)
	// The explicit re-derivation costs at most a couple of extra wires.
	if p1.Ginger.NumVars > p2.Ginger.NumVars+4 {
		t.Errorf("divmod CSE ineffective: %d vs %d wires", p1.Ginger.NumVars, p2.Ginger.NumVars)
	}
	run(t, p1, []int64{100}, []int64{10000 / 7, 10000 % 7})
}

func bigs(vs []int64) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = big.NewInt(v)
	}
	return out
}
