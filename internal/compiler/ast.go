package compiler

import (
	"fmt"
	"math/big"
)

// Type describes a declared variable type.
type Type struct {
	Bool bool
	Bits int // for integer types: 8, 16, 32 or 64 (signed)
	// RatNum/RatDen, when non-zero, make this a rational type ratNxM with
	// an N-bit signed numerator and an M-bit positive denominator.
	RatNum, RatDen int
}

// IsRat reports whether this is a rational type.
func (t Type) IsRat() bool { return t.RatNum > 0 }

func (t Type) String() string {
	if t.Bool {
		return "bool"
	}
	if t.IsRat() {
		return fmt.Sprintf("rat%dx%d", t.RatNum, t.RatDen)
	}
	switch t.Bits {
	case 8:
		return "int8"
	case 16:
		return "int16"
	case 32:
		return "int32"
	case 64:
		return "int64"
	}
	return "int?"
}

// Decl is a const/input/output/var declaration.
type Decl struct {
	Kind string // "const", "input", "output", "var"
	Name string
	Dims []Expr // array dimensions (const expressions), empty for scalars
	Typ  Type
	Init Expr // for const declarations
	Tok  token
}

// Expr is an expression node.
type Expr interface{ exprTok() token }

// NumExpr is an integer literal.
type NumExpr struct {
	Val *big.Int
	Tok token
}

// BoolExpr is a true/false literal.
type BoolExpr struct {
	Val bool
	Tok token
}

// VarExpr references a scalar variable or an array element.
type VarExpr struct {
	Name  string
	Index []Expr // one expression per dimension; empty for scalars
	Tok   token
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // + - * < <= > >= == != && ||
	L, R Expr
	Tok  token
}

// UnExpr is unary negation or logical not.
type UnExpr struct {
	Op  string // - !
	X   Expr
	Tok token
}

func (e *NumExpr) exprTok() token  { return e.Tok }
func (e *BoolExpr) exprTok() token { return e.Tok }
func (e *VarExpr) exprTok() token  { return e.Tok }
func (e *BinExpr) exprTok() token  { return e.Tok }
func (e *UnExpr) exprTok() token   { return e.Tok }

// Stmt is a statement node.
type Stmt interface{ stmtTok() token }

// AssignStmt assigns expr to a (possibly indexed) variable.
type AssignStmt struct {
	Target *VarExpr
	Value  Expr
	Tok    token
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Tok  token
}

// ForStmt is a bounded loop: for i = lo to hi { body }, bounds inclusive
// and compile-time constant.
type ForStmt struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Tok    token
}

func (s *AssignStmt) stmtTok() token { return s.Tok }
func (s *IfStmt) stmtTok() token     { return s.Tok }
func (s *ForStmt) stmtTok() token    { return s.Tok }

// File is a parsed program.
type File struct {
	Decls []*Decl
	Stmts []Stmt
}
