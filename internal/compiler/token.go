// Package compiler translates programs written in a small C-like language
// ("mini-SFDL") into the degree-2 constraint systems of internal/constraint,
// and solves them: executing the compiled program on concrete inputs yields
// both the outputs and a satisfying assignment (the prover's witness).
//
// This reproduces the role of Zaatar's compiler (§2.2, §4, §5.4), which
// descends from Fairplay's SFDL compiler: programs with loops, conditionals,
// arrays, comparisons and logical operators are unrolled into a list of
// assignment statements, each becoming a constraint or pseudoconstraint:
//
//   - arithmetic (+, -, *) maps directly to constraint terms;
//   - x != y uses the inverse trick of §2.2: {(x−y)·M = r, (x−y)·(1−r) = 0};
//   - order comparisons expand to O(bit width) constraints via binary
//     decomposition (the O(log |F|) pseudoconstraints of §2.2);
//   - if/else compiles both branches and muxes the assigned variables;
//   - array indices that cannot be resolved at compile time expand into
//     equality-mux chains — the "excessive number of constraints" for
//     indirect memory access that §5.4 warns about.
//
// Input and output wires are isolated behind copy constraints so that no
// degree-2 term ever touches a bound wire; this is what lets both PCPs reuse
// one query set across a batch (see internal/pcp).
//
// The language:
//
//	const N = 4;
//	input x[N] : int32;
//	output y : int32;
//	var acc : int64;
//	acc = 0;
//	for i = 0 to N-1 {
//	    if (x[i] > 0) { acc = acc + x[i]; } else { acc = acc - x[i]; }
//	}
//	y = acc;
//
// Declarations (const/input/output/var) come first, then statements.
// Types are int8, int16, int32, int64 and bool. for-loop bounds and array
// dimensions must be compile-time constants; loops are inclusive of both
// bounds and iterate upward.
package compiler

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct   // ; , ( ) { } [ ] :
	tokOp      // + - * < <= > >= == != && || ! =
	tokKeyword // const input output var if else for to
)

var keywords = map[string]bool{
	"const": true, "input": true, "output": true, "var": true,
	"if": true, "else": true, "for": true, "to": true,
	"true": true, "false": true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a compile-time error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("compiler: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(t token, format string, args ...any) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}
