package compiler

import (
	"crypto/sha256"
	"encoding/gob"
	"testing"

	"zaatar/internal/field"
)

// Compilation must be a pure function of (field, source): the verifier, the
// farm workers, and the artifact store each compile the source independently
// and must land on the identical constraint system, or honest proofs fail
// the QAP divisibility test. The historic bug: compileIf merged branch
// journals by ranging Go maps, so mux wire numbering followed the runtime's
// random map order. This program leans on the trigger — nested if/else
// writing several variables and array elements per branch.
func TestCompileDeterministic(t *testing.T) {
	const src = `
const N = 4;
input x[N] : int16;
output best, worst, spread : int32;
var acc[N] : int32;
best = x[0]; worst = x[0]; spread = 0;
for i = 0 to N-1 {
	if (x[i] > best) {
		best = x[i];
		acc[i] = x[i] + 1;
		spread = best - worst;
	} else {
		if (x[i] < worst) {
			worst = x[i];
			acc[i] = x[i] - 1;
			spread = best - worst;
		} else {
			acc[i] = x[i];
		}
	}
}
`
	sig := func() string {
		p, err := Compile(field.F128(), src)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		enc := gob.NewEncoder(h)
		if err := enc.Encode(p.Ginger); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(p.Quad); err != nil {
			t.Fatal(err)
		}
		return string(h.Sum(nil))
	}
	want := sig()
	for i := 0; i < 9; i++ {
		if got := sig(); got != want {
			t.Fatalf("compile %d produced a different constraint system than compile 0", i+1)
		}
	}
}
