package compiler

import (
	"fmt"
	"math/big"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

// Program is a compiled computation: the equivalent constraint systems in
// both dialects (already in canonical wire order for the PCPs) plus the
// straight-line solver that generates witnesses.
type Program struct {
	Field  *field.Field
	Source string

	// Ginger is the canonical degree-2 constraint system (§2.2).
	Ginger *constraint.GingerSystem
	// Quad is the canonical quadratic-form system obtained by the §4
	// transform.
	Quad *constraint.QuadSystem

	InputNames  []string
	OutputNames []string

	// internal state
	numWires    int
	instrs      []instr
	inWires     []int // raw wire order
	outWires    []int
	inputRanges []inputRange

	rawGinger  *constraint.GingerSystem
	rawQuad    *constraint.QuadSystem
	gingerPerm constraint.Permutation
	quadPerm   constraint.Permutation
}

func (g *codegen) buildProgram(src string) (*Program, error) {
	raw := &constraint.GingerSystem{
		NumVars: g.numWires,
		In:      g.inWires,
		Out:     g.outWires,
		Cons:    g.cons,
	}
	rawQuad := constraint.ToQuad(g.f, raw)
	ginger, gperm := raw.Normalize()
	quad, qperm := rawQuad.Normalize()
	p := &Program{
		Field:       g.f,
		Source:      src,
		Ginger:      ginger,
		Quad:        quad,
		InputNames:  g.inNames,
		OutputNames: g.outNames,
		numWires:    g.numWires,
		instrs:      g.instrs,
		inWires:     g.inWires,
		outWires:    g.outWires,
		rawGinger:   raw,
		rawQuad:     rawQuad,
		gingerPerm:  gperm,
		quadPerm:    qperm,
		inputRanges: g.inputRanges,
	}
	return p, nil
}

// NumInputs returns the number of (flattened) input values.
func (p *Program) NumInputs() int { return len(p.inWires) }

// NumOutputs returns the number of (flattened) output values.
func (p *Program) NumOutputs() int { return len(p.outWires) }

// Execute runs the computation and returns only the outputs — the baseline
// "local computation" of §5.2.
func (p *Program) Execute(inputs []*big.Int) ([]*big.Int, error) {
	outs, _, err := p.execute(inputs)
	return outs, err
}

// SolveGinger executes the computation and returns the outputs plus a
// satisfying assignment of p.Ginger (canonical order).
func (p *Program) SolveGinger(inputs []*big.Int) ([]*big.Int, []field.Element, error) {
	outs, vals, err := p.execute(inputs)
	if err != nil {
		return nil, nil, err
	}
	w := p.gingerPerm.ApplyToAssignment(p.assignmentFromVals(vals))
	return outs, w, nil
}

// SolveQuad executes the computation and returns the outputs plus a
// satisfying assignment of p.Quad (canonical order). The §4 transform's
// product variables are computed on the way.
func (p *Program) SolveQuad(inputs []*big.Int) ([]*big.Int, []field.Element, error) {
	outs, vals, err := p.execute(inputs)
	if err != nil {
		return nil, nil, err
	}
	raw := p.assignmentFromVals(vals)
	extended := constraint.ExtendAssignment(p.Field, p.rawGinger, p.rawQuad, raw)
	return outs, p.quadPerm.ApplyToAssignment(extended), nil
}

// IOValues encodes concrete inputs and outputs as the bound-wire value
// vector the PCP verifier consumes (inputs first, then outputs — the
// canonical order both Normalize calls produce).
func (p *Program) IOValues(inputs, outputs []*big.Int) ([]field.Element, error) {
	if len(inputs) != len(p.inWires) || len(outputs) != len(p.outWires) {
		return nil, fmt.Errorf("compiler: io size mismatch (want %d inputs, %d outputs)", len(p.inWires), len(p.outWires))
	}
	out := make([]field.Element, 0, len(inputs)+len(outputs))
	for _, v := range inputs {
		out = append(out, p.Field.FromBig(v))
	}
	for _, v := range outputs {
		out = append(out, p.Field.FromBig(v))
	}
	return out, nil
}

// DecodeOutputs converts field-encoded outputs back to signed integers.
func (p *Program) DecodeOutputs(vals []field.Element) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = p.Field.SignedBig(v)
	}
	return out
}

// EncodingStats returns the Figure 9 quantities for this program.
type EncodingStats struct {
	GingerVars        int // |Z_ginger| (unbound)
	ZaatarVars        int // |Z_zaatar|
	GingerConstraints int // |C_ginger|
	ZaatarConstraints int // |C_zaatar|
	K                 int
	K2                int
	UGinger           int // |u_ginger| = |Z|+|Z|²
	UZaatar           int // |u_zaatar| = |Z|+|C|
}

// Stats computes the encoding statistics of Figure 9.
func (p *Program) Stats() EncodingStats {
	st := p.Ginger.Stats()
	ug, uz := constraint.ProofVectorSizes(p.Ginger, p.Quad)
	return EncodingStats{
		GingerVars:        st.NumUnbound,
		ZaatarVars:        p.Quad.NumUnbound(),
		GingerConstraints: st.NumConstraints,
		ZaatarConstraints: p.Quad.NumConstraints(),
		K:                 st.K,
		K2:                st.K2,
		UGinger:           ug,
		UZaatar:           uz,
	}
}
