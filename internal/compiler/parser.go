package compiler

import (
	"math/big"
	"regexp"
	"strconv"
	"strings"
)

type parser struct {
	toks []token
	pos  int
}

// Parse turns source text into an AST.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.atKeyword("const") || p.atKeyword("input") || p.atKeyword("output") || p.atKeyword("var") {
		decls, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, decls...)
	}
	for !p.atEOF() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Stmts = append(f.Stmts, s)
	}
	return f, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atOp(s string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == s
}

func (p *parser) take() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectPunct(s string) (token, error) {
	if !p.atPunct(s) {
		return p.cur(), errAt(p.cur(), "expected %q, found %s", s, p.cur())
	}
	return p.take(), nil
}

func (p *parser) expectOp(s string) (token, error) {
	if !p.atOp(s) {
		return p.cur(), errAt(p.cur(), "expected %q, found %s", s, p.cur())
	}
	return p.take(), nil
}

func (p *parser) expectIdent() (token, error) {
	if p.cur().kind != tokIdent {
		return p.cur(), errAt(p.cur(), "expected identifier, found %s", p.cur())
	}
	return p.take(), nil
}

var ratTypeRe = regexp.MustCompile(`^rat([0-9]+)x([0-9]+)$`)

func parseType(t token) (Type, bool) {
	if m := ratTypeRe.FindStringSubmatch(t.text); m != nil {
		n, _ := strconv.Atoi(m[1])
		d, _ := strconv.Atoi(m[2])
		if n >= 2 && n <= 64 && d >= 1 && d <= 64 {
			return Type{RatNum: n, RatDen: d}, true
		}
		return Type{}, false
	}
	switch t.text {
	case "bool":
		return Type{Bool: true}, true
	case "int8":
		return Type{Bits: 8}, true
	case "int16":
		return Type{Bits: 16}, true
	case "int32":
		return Type{Bits: 32}, true
	case "int64":
		return Type{Bits: 64}, true
	}
	return Type{}, false
}

// parseDecl parses one declaration line, which may declare several names:
//
//	const N = 4;
//	input x[N], y : int32;
func (p *parser) parseDecl() ([]*Decl, error) {
	kw := p.take() // const/input/output/var
	if kw.text == "const" {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectOp("="); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return []*Decl{{Kind: "const", Name: name.text, Init: init, Tok: name}}, nil
	}

	var decls []*Decl
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := &Decl{Kind: kw.text, Name: name.text, Tok: name}
		for p.atPunct("[") {
			p.take()
			dim, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
		}
		decls = append(decls, d)
		if p.atPunct(",") {
			p.take()
			continue
		}
		break
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	tt := p.take()
	typ, ok := parseType(tt)
	if !ok {
		return nil, errAt(tt, "unknown type %s (want int8/int16/int32/int64/bool/ratNxM)", tt)
	}
	for _, d := range decls {
		d.Typ = typ
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.atPunct("}") {
		if p.atEOF() {
			return nil, errAt(p.cur(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.take()
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("if"):
		tok := p.take()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.atKeyword("else") {
			p.take()
			if p.atKeyword("if") {
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Tok: tok}, nil

	case p.atKeyword("for"):
		tok := p.take()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectOp("="); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.atKeyword("to") {
			return nil, errAt(p.cur(), "expected 'to' in for loop, found %s", p.cur())
		}
		p.take()
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Var: name.text, Lo: lo, Hi: hi, Body: body, Tok: tok}, nil

	case p.cur().kind == tokIdent:
		target, err := p.parseVarRef()
		if err != nil {
			return nil, err
		}
		eq, err := p.expectOp("=")
		if err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: target, Value: val, Tok: eq}, nil

	default:
		return nil, errAt(p.cur(), "expected statement, found %s", p.cur())
	}
}

func (p *parser) parseVarRef() (*VarExpr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	v := &VarExpr{Name: name.text, Tok: name}
	for p.atPunct("[") {
		p.take()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		v.Index = append(v.Index, idx)
	}
	return v, nil
}

// Expression grammar, lowest precedence first:
// or → and → equality → relational → additive → multiplicative → unary → primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseBinLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.atOp(op) {
				tok := p.take()
				r, err := sub()
				if err != nil {
					return nil, err
				}
				l = &BinExpr{Op: op, L: l, R: r, Tok: tok}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.parseBinLevel([]string{"||"}, p.parseAnd)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.parseBinLevel([]string{"&&"}, p.parseBitOr)
}

func (p *parser) parseBitOr() (Expr, error) {
	return p.parseBinLevel([]string{"|"}, p.parseBitXor)
}

func (p *parser) parseBitXor() (Expr, error) {
	return p.parseBinLevel([]string{"^"}, p.parseBitAnd)
}

func (p *parser) parseBitAnd() (Expr, error) {
	return p.parseBinLevel([]string{"&"}, p.parseEquality)
}

func (p *parser) parseEquality() (Expr, error) {
	return p.parseBinLevel([]string{"==", "!="}, p.parseRelational)
}

func (p *parser) parseRelational() (Expr, error) {
	return p.parseBinLevel([]string{"<=", ">=", "<", ">"}, p.parseShift)
}

func (p *parser) parseShift() (Expr, error) {
	return p.parseBinLevel([]string{"<<", ">>"}, p.parseAdditive)
}

func (p *parser) parseAdditive() (Expr, error) {
	return p.parseBinLevel([]string{"+", "-"}, p.parseMultiplicative)
}

func (p *parser) parseMultiplicative() (Expr, error) {
	return p.parseBinLevel([]string{"*", "/", "%"}, p.parseUnary)
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atOp("-") || p.atOp("!") {
		tok := p.take()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: tok.text, X: x, Tok: tok}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.take()
		base := 10
		digits := t.text
		if strings.HasPrefix(digits, "0x") || strings.HasPrefix(digits, "0X") {
			base = 16
			digits = digits[2:]
		}
		v, ok := new(big.Int).SetString(digits, base)
		if !ok {
			return nil, errAt(t, "bad number literal %s", t)
		}
		return &NumExpr{Val: v, Tok: t}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.take()
		return &BoolExpr{Val: t.text == "true", Tok: t}, nil
	case t.kind == tokIdent:
		return p.parseVarRef()
	case p.atPunct("("):
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(t, "expected expression, found %s", t)
	}
}
