package compiler

import (
	"math/rand"
	"strings"
	"testing"

	"zaatar/internal/field"
)

// Bitwise operators are a compiler extension covering the §5.4 gap
// ("bitwise operations are supported elsewhere"). Operands become
// non-negative here by squaring or by masking with constants.

func TestBitwiseOps(t *testing.T) {
	p := compileOK(t, `
		input a, b : int8;
		output andv, orv, xorv : int32;
		var a2, b2 : int32;
		a2 = a * a;
		b2 = b * b;
		andv = a2 & b2;
		orv  = a2 | b2;
		xorv = a2 ^ b2;
	`)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 25; i++ {
		a := int64(rng.Intn(256) - 128)
		b := int64(rng.Intn(256) - 128)
		a2, b2 := a*a, b*b
		run(t, p, []int64{a, b}, []int64{a2 & b2, a2 | b2, a2 ^ b2})
	}
}

func TestBitwiseConstFolding(t *testing.T) {
	p := compileOK(t, `
		input x : int32;
		output y : int64;
		y = x + (0xF0 & 0x3C) + (0xF0 | 0x3C) + (0xF0 ^ 0x3C);
	`)
	want := int64(0xF0&0x3C) + int64(0xF0|0x3C) + int64(0xF0^0x3C)
	run(t, p, []int64{0}, []int64{want})
}

func TestBitwiseWithConstMask(t *testing.T) {
	p := compileOK(t, `
		input a : int8;
		output low : int32;
		var a2 : int32;
		a2 = a * a;
		low = a2 & 0xFF;
	`)
	run(t, p, []int64{100}, []int64{10000 & 0xFF})
	run(t, p, []int64{-3}, []int64{9})
}

func TestShifts(t *testing.T) {
	p := compileOK(t, `
		input a : int8;
		output up, down : int32;
		var a2 : int32;
		a2 = a * a;
		up = a2 << 3;
		down = a2 >> 2;
	`)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 15; i++ {
		a := int64(rng.Intn(256) - 128)
		a2 := a * a
		run(t, p, []int64{a}, []int64{a2 << 3, a2 >> 2})
	}
}

func TestShiftConstFolding(t *testing.T) {
	p := compileOK(t, `input x : int32; output y : int64; y = x + (6 << 4) + (100 >> 3);`)
	run(t, p, []int64{0}, []int64{96 + 12})
}

func TestLeftShiftNegativeOperandOK(t *testing.T) {
	// << is a multiplication, so signed operands are fine.
	p := compileOK(t, `input x : int16; output y : int64; y = x << 5;`)
	run(t, p, []int64{-7}, []int64{-224})
}

func TestBitwiseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"negative operand", `input a, b : int8; output y : int32; y = a & b;`, "non-negative"},
		{"dynamic shift", `
			input a, k : int8;
			output y : int64;
			var a2 : int32;
			a2 = a * a;
			y = a2 << k;`, "compile-time constant"},
		{"huge shift", `input x : int32; output y : int64; var x2 : int64; x2 = x * x; y = x2 << 300;`, "out of range"},
		{"negative right shift", `input x : int16; output y : int32; y = x >> 1;`, "non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(field.F128(), c.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.wantSub)
			}
		})
	}
}

// TestBitwiseWitnessSoundness: perturbing a bitwise output breaks the
// constraint system (the bit decompositions pin the result).
func TestBitwiseWitnessSoundness(t *testing.T) {
	f := field.F128()
	p := compileOK(t, `
		input a : int8;
		output y : int32;
		var a2 : int32;
		a2 = a * a;
		y = a2 & 0x55;
	`)
	_, w, err := p.SolveGinger(bigs([]int64{9}))
	if err != nil {
		t.Fatal(err)
	}
	out := p.Ginger.Out[0]
	w[out] = f.Add(w[out], f.One())
	if err := p.Ginger.Check(f, w); err == nil {
		t.Fatal("wrong bitwise result accepted by the constraint system")
	}
}

func TestBitwisePrecedence(t *testing.T) {
	// & binds tighter than |, shifts tighter than +... verify against Go.
	p := compileOK(t, `
		input a : int8;
		output y : int64;
		var a2 : int32;
		a2 = a * a;
		y = a2 | a2 & 0x0F ^ 0x03;
	`)
	a := int64(13)
	a2 := a * a
	want := a2 | (a2&0x0F ^ 0x03) // our grammar: | lowest, then ^, then &
	run(t, p, []int64{a}, []int64{want})
}
