package compiler

import (
	"fmt"
	"math/big"
	"sort"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

// Compile parses and compiles a mini-SFDL program over the given field.
func Compile(f *field.Field, src string) (*Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	g := &codegen{
		f:          f,
		file:       file,
		env:        map[string]*binding{},
		cse:        map[cseKey]operand{},
		maxMagBits: f.Bits() - 3,
	}
	if err := g.compileDecls(); err != nil {
		return nil, err
	}
	for _, s := range file.Stmts {
		if err := g.compileStmt(s); err != nil {
			return nil, err
		}
	}
	if err := g.finalizeOutputs(); err != nil {
		return nil, err
	}
	return g.buildProgram(src)
}

// evalConst evaluates a compile-time constant expression (numbers, consts,
// loop variables, + - *, unary -, parentheses).
func (g *codegen) evalConst(e Expr) (*big.Int, error) {
	switch e := e.(type) {
	case *NumExpr:
		return e.Val, nil
	case *VarExpr:
		if len(e.Index) != 0 {
			return nil, errAt(e.Tok, "array element is not a compile-time constant")
		}
		b, ok := g.env[e.Name]
		if !ok {
			return nil, errAt(e.Tok, "undefined name %s", e.Name)
		}
		if !b.isConst {
			return nil, errAt(e.Tok, "%s is not a compile-time constant", e.Name)
		}
		return b.constVal, nil
	case *BinExpr:
		l, err := g.evalConst(e.L)
		if err != nil {
			return nil, err
		}
		r, err := g.evalConst(e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+":
			return new(big.Int).Add(l, r), nil
		case "-":
			return new(big.Int).Sub(l, r), nil
		case "*":
			return new(big.Int).Mul(l, r), nil
		}
		return nil, errAt(e.Tok, "operator %s not allowed in constant expressions", e.Op)
	case *UnExpr:
		if e.Op == "-" {
			v, err := g.evalConst(e.X)
			if err != nil {
				return nil, err
			}
			return new(big.Int).Neg(v), nil
		}
		return nil, errAt(e.Tok, "operator %s not allowed in constant expressions", e.Op)
	default:
		return nil, errAt(e.exprTok(), "not a compile-time constant")
	}
}

// typeRange returns the value range of a declared type.
func typeRange(t Type) (*big.Int, *big.Int) {
	if t.Bool {
		return big.NewInt(0), big.NewInt(1)
	}
	hi := new(big.Int).Lsh(bigOne, uint(t.Bits-1))
	lo := new(big.Int).Neg(hi)
	hi = new(big.Int).Sub(hi, bigOne)
	return lo, hi
}

func (g *codegen) compileDecls() error {
	for _, d := range g.file.Decls {
		if _, exists := g.env[d.Name]; exists {
			return errAt(d.Tok, "redeclaration of %s", d.Name)
		}
		if d.Kind == "const" {
			v, err := g.evalConst(d.Init)
			if err != nil {
				return err
			}
			g.env[d.Name] = &binding{decl: d, isConst: true, constVal: v}
			continue
		}
		dims := make([]int, len(d.Dims))
		size := 1
		for i, de := range d.Dims {
			v, err := g.evalConst(de)
			if err != nil {
				return err
			}
			if !v.IsInt64() || v.Int64() < 1 || v.Int64() > 1<<20 {
				return errAt(d.Tok, "array dimension %v out of range", v)
			}
			dims[i] = int(v.Int64())
			size *= dims[i]
		}
		b := &binding{decl: d, dims: dims, elems: make([]operand, size)}
		switch d.Kind {
		case "input":
			if d.Typ.IsRat() {
				numLo, numHi, denLo, denHi := ratTypeRange(d.Typ)
				for k := 0; k < size; k++ {
					num := g.inputElem(d, dims, k, ".num", numLo, numHi, false)
					den := g.inputElem(d, dims, k, ".den", denLo, denHi, false)
					b.elems[k] = makeRat(num, den)
				}
				break
			}
			lo, hi := typeRange(d.Typ)
			for k := 0; k < size; k++ {
				b.elems[k] = g.inputElem(d, dims, k, "", lo, hi, d.Typ.Bool)
			}
		case "output", "var":
			init := constOp(big.NewInt(0))
			init.isBool = d.Typ.Bool
			for k := 0; k < size; k++ {
				b.elems[k] = init
			}
		}
		g.env[d.Name] = b
	}
	return nil
}

// inputElem allocates one bound input wire plus its isolated copy wire.
func (g *codegen) inputElem(d *Decl, dims []int, k int, suffix string, lo, hi *big.Int, isBool bool) operand {
	inWire := g.newWire()
	copyWire := g.newWire()
	g.inWires = append(g.inWires, inWire)
	g.inNames = append(g.inNames, indexedName(d.Name, dims, k)+suffix)
	// copy - input = 0 isolates the bound wire (see package doc).
	g.addCons(constraint.GingerConstraint{
		{Coeff: g.f.One(), A: copyWire},
		{Coeff: g.f.Neg(g.f.One()), A: inWire},
	})
	g.instrs = append(g.instrs, instr{op: iInput, dst: copyWire, aux: []int{inWire}, n: len(g.inWires) - 1})
	g.inputRanges = append(g.inputRanges, inputRange{lo: lo, hi: hi})
	return operand{wire: copyWire, lo: lo, hi: hi, isBool: isBool}
}

func indexedName(base string, dims []int, flat int) string {
	if len(dims) == 0 {
		return base
	}
	idx := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		idx[i] = flat % dims[i]
		flat /= dims[i]
	}
	s := base
	for _, v := range idx {
		s += fmt.Sprintf("[%d]", v)
	}
	return s
}

// finalizeOutputs materializes each output variable's final value into a
// dedicated bound output wire via a linear copy constraint.
func (g *codegen) finalizeOutputs() error {
	for _, d := range g.file.Decls {
		if d.Kind != "output" {
			continue
		}
		b := g.env[d.Name]
		for k, o := range b.elems {
			if d.Typ.IsRat() != o.isRat() && o.isRat() {
				return errAt(d.Tok, "output %s is declared %s but holds a rational value", d.Name, d.Typ)
			}
			parts := []struct {
				o      operand
				suffix string
			}{{numOf(o), ""}}
			if d.Typ.IsRat() {
				parts[0].suffix = ".num"
				parts = append(parts, struct {
					o      operand
					suffix string
				}{denOf(o), ".den"})
			}
			for _, part := range parts {
				// Outputs must decode as signed integers, so their range
				// must fit within ±p/2.
				if err := g.checkRange(d.Tok, part.o.lo, part.o.hi); err != nil {
					return err
				}
				w := g.newWire()
				g.outWires = append(g.outWires, w)
				g.outNames = append(g.outNames, indexedName(d.Name, b.dims, k)+part.suffix)
				g.addCons(constraint.GingerConstraint{
					{Coeff: g.f.One(), A: w},
					g.term(bigNegOne, part.o),
				})
				g.instrs = append(g.instrs, instr{op: iCopy, dst: w, a: refOf(part.o)})
			}
		}
	}
	if len(g.outWires) == 0 {
		return &Error{Line: 1, Col: 1, Msg: "program declares no outputs"}
	}
	return nil
}

func (g *codegen) compileStmt(s Stmt) error {
	switch s := s.(type) {
	case *AssignStmt:
		return g.compileAssign(s)
	case *IfStmt:
		return g.compileIf(s)
	case *ForStmt:
		return g.compileFor(s)
	default:
		return errAt(s.stmtTok(), "unsupported statement")
	}
}

func (g *codegen) compileFor(s *ForStmt) error {
	lo, err := g.evalConst(s.Lo)
	if err != nil {
		return err
	}
	hi, err := g.evalConst(s.Hi)
	if err != nil {
		return err
	}
	if !lo.IsInt64() || !hi.IsInt64() {
		return errAt(s.Tok, "loop bounds out of range")
	}
	if prev, exists := g.env[s.Var]; exists && !prev.isConst {
		return errAt(s.Tok, "loop variable %s shadows a runtime variable", s.Var)
	}
	saved, hadPrev := g.env[s.Var]
	iterations := hi.Int64() - lo.Int64() + 1
	if iterations > 1<<22 {
		return errAt(s.Tok, "loop unrolls to %d iterations; refusing", iterations)
	}
	for i := lo.Int64(); i <= hi.Int64(); i++ {
		g.env[s.Var] = &binding{isConst: true, constVal: big.NewInt(i)}
		for _, st := range s.Body {
			if err := g.compileStmt(st); err != nil {
				return err
			}
		}
	}
	if hadPrev {
		g.env[s.Var] = saved
	} else {
		delete(g.env, s.Var)
	}
	return nil
}

// journalElem records one element's pre-mutation value in the active
// branch journal (copy-on-first-write, element granularity). Journals make
// if/else compilation proportional to the elements a branch actually
// writes rather than to array or environment sizes — without them, DP-style
// programs (LCS at full size writes one cell of a 300×300 array per
// conditional) compile quadratically.
func (g *codegen) journalElem(name string, b *binding, k int) {
	if g.journal == nil {
		return
	}
	m := g.journal[name]
	if m == nil {
		m = map[int]operand{}
		g.journal[name] = m
	}
	if _, ok := m[k]; !ok {
		m[k] = b.elems[k]
	}
}

// journalBinding journals every element of a binding (used by dynamic
// writes, which touch the whole array).
func (g *codegen) journalBinding(name string, b *binding) {
	for k := range b.elems {
		g.journalElem(name, b, k)
	}
}

func (g *codegen) compileIf(s *IfStmt) error {
	cond, err := g.compileExpr(s.Cond)
	if err != nil {
		return err
	}
	if !cond.isBool {
		return errAt(s.Tok, "if condition must be boolean (use comparisons)")
	}
	if cond.isConst {
		body := s.Then
		if cond.c.Sign() == 0 {
			body = s.Else
		}
		for _, st := range body {
			if err := g.compileStmt(st); err != nil {
				return err
			}
		}
		return nil
	}

	parent := g.journal

	// Then-branch under a fresh journal.
	jThen := map[string]map[int]operand{}
	g.journal = jThen
	for _, st := range s.Then {
		if err := g.compileStmt(st); err != nil {
			return err
		}
	}
	// Capture then-results for the touched elements, then roll back to the
	// pre-if state.
	thenVals := make(map[string]map[int]operand, len(jThen))
	for name, m := range jThen {
		b := g.env[name]
		tv := make(map[int]operand, len(m))
		for k, orig := range m {
			tv[k] = b.elems[k]
			b.elems[k] = orig
		}
		thenVals[name] = tv
	}

	// Else-branch under its own journal.
	jElse := map[string]map[int]operand{}
	g.journal = jElse
	for _, st := range s.Else {
		if err := g.compileStmt(st); err != nil {
			return err
		}
	}
	g.journal = parent

	// Merge every element either branch touched. b.elems[k] currently holds
	// the else-side result; the then-side value is thenVals[name][k] when
	// the then-branch wrote it, and otherwise the pre-if original (recorded
	// in jElse, since only the else-branch wrote it).
	// Merge in sorted order: muxValue allocates wires, so iteration order
	// is wire numbering. Ranging the maps directly would compile the same
	// source to a different (if equivalent) constraint system each run,
	// which breaks anything that needs both ends of a wire to agree on the
	// QAP — the prover farm, the distributed prover, the artifact store.
	names := make(map[string]bool, len(jThen)+len(jElse))
	for name := range jThen {
		names[name] = true
	}
	for name := range jElse {
		names[name] = true
	}
	sortedNames := make([]string, 0, len(names))
	for name := range names {
		sortedNames = append(sortedNames, name)
	}
	sort.Strings(sortedNames)
	for _, name := range sortedNames {
		b := g.env[name]
		idx := map[int]bool{}
		for k := range jThen[name] {
			idx[k] = true
		}
		for k := range jElse[name] {
			idx[k] = true
		}
		sortedIdx := make([]int, 0, len(idx))
		for k := range idx {
			sortedIdx = append(sortedIdx, k)
		}
		sort.Ints(sortedIdx)
		for _, k := range sortedIdx {
			orig, inThen := jThen[name][k]
			if !inThen {
				orig = jElse[name][k]
			}
			// Propagate the pre-if original to the parent journal before
			// overwriting with the merged value.
			if parent != nil {
				pm := parent[name]
				if pm == nil {
					pm = map[int]operand{}
					parent[name] = pm
				}
				if _, ok := pm[k]; !ok {
					pm[k] = orig
				}
			}
			thenOp, ok := thenVals[name][k]
			if !ok {
				thenOp = orig // then-branch untouched ⇒ pre-if original
			}
			merged, err := g.muxValue(s.Tok, cond, thenOp, b.elems[k])
			if err != nil {
				return err
			}
			b.elems[k] = merged
		}
	}
	return nil
}

func (g *codegen) compileAssign(s *AssignStmt) error {
	b, ok := g.env[s.Target.Name]
	if !ok {
		return errAt(s.Target.Tok, "undefined variable %s", s.Target.Name)
	}
	if b.isConst {
		return errAt(s.Target.Tok, "cannot assign to constant %s", s.Target.Name)
	}
	val, err := g.compileExpr(s.Value)
	if err != nil {
		return err
	}
	if b.decl.Typ.Bool && !val.isBool {
		return errAt(s.Tok, "cannot assign non-boolean to bool variable %s", s.Target.Name)
	}
	if val.isRat() && !b.decl.Typ.IsRat() {
		return errAt(s.Tok, "cannot assign a rational value to %s variable %s", b.decl.Typ, s.Target.Name)
	}
	if len(s.Target.Index) != len(b.dims) {
		return errAt(s.Target.Tok, "%s has %d dimensions, %d indices given", s.Target.Name, len(b.dims), len(s.Target.Index))
	}
	if len(b.dims) == 0 {
		g.journalElem(s.Target.Name, b, 0)
		b.elems[0] = val
		return nil
	}
	flat, dynamic, err := g.flattenIndex(s.Target, b)
	if err != nil {
		return err
	}
	if !dynamic {
		g.journalElem(s.Target.Name, b, int(flat.c.Int64()))
		b.elems[flat.c.Int64()] = val
		return nil
	}
	g.journalBinding(s.Target.Name, b)
	// Dynamic write: every element becomes (idx == k) ? val : old — the
	// §5.4 cost of indirect memory access.
	for k := range b.elems {
		eq, err := g.opEq(s.Tok, flat, constOp(big.NewInt(int64(k))))
		if err != nil {
			return err
		}
		merged, err := g.muxValue(s.Tok, eq, val, b.elems[k])
		if err != nil {
			return err
		}
		b.elems[k] = merged
	}
	return nil
}

// flattenIndex folds a multi-dimensional index into a flat one. If every
// index is a compile-time constant the result is a constant (dynamic =
// false); otherwise it is a wire operand computed with Horner's rule.
func (g *codegen) flattenIndex(v *VarExpr, b *binding) (operand, bool, error) {
	flat := constOp(big.NewInt(0))
	dynamic := false
	for i, ie := range v.Index {
		idx, err := g.compileExpr(ie)
		if err != nil {
			return operand{}, false, err
		}
		if idx.isConst {
			if !idx.c.IsInt64() || idx.c.Int64() < 0 || idx.c.Int64() >= int64(b.dims[i]) {
				return operand{}, false, errAt(ie.exprTok(), "index %v out of bounds for dimension of size %d", idx.c, b.dims[i])
			}
		} else {
			dynamic = true
		}
		scaled, err := g.opMul(ie.exprTok(), flat, constOp(big.NewInt(int64(b.dims[i]))))
		if err != nil {
			return operand{}, false, err
		}
		flat, err = g.opAdd(ie.exprTok(), scaled, idx)
		if err != nil {
			return operand{}, false, err
		}
	}
	return flat, dynamic, nil
}

func (g *codegen) compileExpr(e Expr) (operand, error) {
	switch e := e.(type) {
	case *NumExpr:
		return constOp(e.Val), nil
	case *BoolExpr:
		return boolConst(e.Val), nil
	case *VarExpr:
		return g.compileVarExpr(e)
	case *UnExpr:
		x, err := g.compileExpr(e.X)
		if err != nil {
			return operand{}, err
		}
		if e.Op == "-" {
			if x.isRat() {
				num, err := g.opSub(e.Tok, constOp(big.NewInt(0)), numOf(x))
				if err != nil {
					return operand{}, err
				}
				return makeRat(num, denOf(x)), nil
			}
			return g.opSub(e.Tok, constOp(big.NewInt(0)), x)
		}
		return g.opNot(e.Tok, x)
	case *BinExpr:
		return g.compileBinExpr(e)
	default:
		return operand{}, errAt(e.exprTok(), "unsupported expression")
	}
}

func (g *codegen) compileVarExpr(e *VarExpr) (operand, error) {
	b, ok := g.env[e.Name]
	if !ok {
		return operand{}, errAt(e.Tok, "undefined name %s", e.Name)
	}
	if b.isConst {
		if len(e.Index) != 0 {
			return operand{}, errAt(e.Tok, "cannot index constant %s", e.Name)
		}
		return constOp(b.constVal), nil
	}
	if len(e.Index) != len(b.dims) {
		return operand{}, errAt(e.Tok, "%s has %d dimensions, %d indices given", e.Name, len(b.dims), len(e.Index))
	}
	if len(b.dims) == 0 {
		return b.elems[0], nil
	}
	flat, dynamic, err := g.flattenIndex(e, b)
	if err != nil {
		return operand{}, err
	}
	if !dynamic {
		return b.elems[flat.c.Int64()], nil
	}
	// Dynamic read: Σ_k (idx == k)·a[k].
	for _, el := range b.elems {
		if el.isRat() {
			return operand{}, errAt(e.Tok, "dynamic indexing of rational arrays is not supported")
		}
	}
	acc := constOp(big.NewInt(0))
	for k := range b.elems {
		eq, err := g.opEq(e.Tok, flat, constOp(big.NewInt(int64(k))))
		if err != nil {
			return operand{}, err
		}
		t, err := g.opMul(e.Tok, eq, b.elems[k])
		if err != nil {
			return operand{}, err
		}
		acc, err = g.opAdd(e.Tok, acc, t)
		if err != nil {
			return operand{}, err
		}
	}
	// The (idx == k) selectors are mutually exclusive — at most one can be
	// 1 for a fixed idx — so the read's true range is the union of the
	// element ranges plus 0 (the out-of-range case), not the sum the
	// per-operation analysis accumulated. Without this, arrays rewritten in
	// loops (e.g. Fannkuch's repeated prefix reversals) blow up their
	// apparent ranges exponentially.
	if !acc.isConst {
		lo, hi := big.NewInt(0), big.NewInt(0)
		allBool := true
		for _, el := range b.elems {
			if el.lo.Cmp(lo) < 0 {
				lo = el.lo
			}
			if el.hi.Cmp(hi) > 0 {
				hi = el.hi
			}
			allBool = allBool && el.isBool
		}
		acc.lo, acc.hi = lo, hi
		acc.isBool = allBool
	}
	return acc, nil
}

func (g *codegen) compileBinExpr(e *BinExpr) (operand, error) {
	l, err := g.compileExpr(e.L)
	if err != nil {
		return operand{}, err
	}
	r, err := g.compileExpr(e.R)
	if err != nil {
		return operand{}, err
	}
	if l.isRat() || r.isRat() {
		switch e.Op {
		case "+":
			return g.ratAdd(e.Tok, l, r)
		case "-":
			return g.ratSub(e.Tok, l, r)
		case "*":
			return g.ratMul(e.Tok, l, r)
		case "<", ">", "<=", ">=", "==", "!=":
			return g.ratCompare(e.Tok, e.Op, l, r)
		default:
			return operand{}, errAt(e.Tok, "operator %s is not defined for rational values", e.Op)
		}
	}
	switch e.Op {
	case "+":
		return g.opAdd(e.Tok, l, r)
	case "-":
		return g.opSub(e.Tok, l, r)
	case "*":
		return g.opMul(e.Tok, l, r)
	case "/":
		q, _, err := g.opDivMod(e.Tok, l, r)
		return q, err
	case "&", "|", "^":
		return g.opBitwise(e.Tok, e.Op, l, r)
	case "<<", ">>":
		return g.opShift(e.Tok, e.Op, l, r)
	case "%":
		_, rem, err := g.opDivMod(e.Tok, l, r)
		return rem, err
	case "==":
		return g.opEq(e.Tok, l, r)
	case "!=":
		return g.opNeq(e.Tok, l, r)
	case "<":
		return g.opLess(e.Tok, l, r)
	case ">":
		return g.opLess(e.Tok, r, l)
	case "<=":
		gt, err := g.opLess(e.Tok, r, l)
		if err != nil {
			return operand{}, err
		}
		return g.opNot(e.Tok, gt)
	case ">=":
		lt, err := g.opLess(e.Tok, l, r)
		if err != nil {
			return operand{}, err
		}
		return g.opNot(e.Tok, lt)
	case "&&":
		if !l.isBool || !r.isBool {
			return operand{}, errAt(e.Tok, "operands of && must be boolean")
		}
		return g.opMul(e.Tok, l, r)
	case "||":
		if !l.isBool || !r.isBool {
			return operand{}, errAt(e.Tok, "operands of || must be boolean")
		}
		sum, err := g.opAdd(e.Tok, l, r)
		if err != nil {
			return operand{}, err
		}
		prod, err := g.opMul(e.Tok, l, r)
		if err != nil {
			return operand{}, err
		}
		res, err := g.opSub(e.Tok, sum, prod)
		if err != nil {
			return operand{}, err
		}
		res.isBool = true
		return res, nil
	default:
		return operand{}, errAt(e.Tok, "unsupported operator %s", e.Op)
	}
}
