package vc

import (
	"bytes"
	"context"
	"math/big"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
	"zaatar/internal/prg"
)

// testProgram compiles a small computation over the tiny field with a
// generated ElGamal group, so full-crypto tests stay fast.
const testSrc = `
const N = 4;
input x[N] : int8;
output s : int32;
output m : int8;
s = 0;
m = x[0];
for i = 0 to N-1 {
	s = s + x[i] * x[i];
	if (x[i] > m) { m = x[i]; }
}
`

func testSetup(t *testing.T, protocol Protocol, noCommit bool) (*compiler.Program, Config) {
	t.Helper()
	f := field.FTest()
	prog, err := compiler.Compile(f, testSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Protocol:     protocol,
		Params:       pcp.TestParams(),
		NoCommitment: noCommit,
		Seed:         []byte("vc-test-seed"),
	}
	if !noCommit {
		g, err := elgamal.GenerateGroup(f.Modulus(), 256, prg.NewFromSeed([]byte("vc-group"), 0))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Group = g
	}
	return prog, cfg
}

func inputsFor(vals ...int64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = big.NewInt(v)
	}
	return out
}

func TestEndToEndZaatarWithCrypto(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	batch := [][]*big.Int{
		inputsFor(1, 2, 3, 4),
		inputsFor(-5, 0, 5, 2),
		inputsFor(7, 7, 7, 7),
	}
	res, err := RunBatch(context.Background(), prog, cfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("honest batch rejected: %v", res.Reasons)
	}
	// Outputs decode correctly: s = Σx², m = max.
	if res.Outputs[0][0].Int64() != 30 || res.Outputs[0][1].Int64() != 4 {
		t.Errorf("instance 0 outputs = %v", res.Outputs[0])
	}
	if res.Outputs[1][0].Int64() != 54 || res.Outputs[1][1].Int64() != 5 {
		t.Errorf("instance 1 outputs = %v", res.Outputs[1])
	}
}

func TestEndToEndGingerWithCrypto(t *testing.T) {
	prog, cfg := testSetup(t, Ginger, false)
	res, err := RunBatch(context.Background(), prog, cfg, [][]*big.Int{inputsFor(1, 2, 3, 4), inputsFor(0, -1, -2, -3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("honest ginger batch rejected: %v", res.Reasons)
	}
}

func TestEndToEndNoCommitment(t *testing.T) {
	for _, proto := range []Protocol{Zaatar, Ginger} {
		prog, cfg := testSetup(t, proto, true)
		res, err := RunBatch(context.Background(), prog, cfg, [][]*big.Int{inputsFor(3, 1, 4, 1)})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !res.AllAccepted() {
			t.Fatalf("%v: rejected: %v", proto, res.Reasons)
		}
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	batch := make([][]*big.Int, 8)
	for i := range batch {
		batch[i] = inputsFor(int64(i), int64(i+1), int64(-i), 3)
	}
	cfg.Workers = 4
	res, err := RunBatch(context.Background(), prog, cfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("parallel batch rejected: %v", res.Reasons)
	}
	for i := range batch {
		want := int64(0)
		for _, v := range batch[i] {
			want += v.Int64() * v.Int64()
		}
		if res.Outputs[i][0].Int64() != want {
			t.Errorf("instance %d: s = %v, want %d", i, res.Outputs[i][0], want)
		}
	}
}

// cheatingProver wraps Prover to corrupt the claimed output after proving a
// different instance.
func TestCheatingOutputRejected(t *testing.T) {
	for _, noCommit := range []bool{false, true} {
		prog, cfg := testSetup(t, Zaatar, noCommit)
		verifier, err := NewVerifier(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prover, err := NewProver(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prover.HandleCommitRequest(verifier.Setup())
		in := inputsFor(1, 2, 3, 4)
		cm, st, err := prover.Commit(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		cm.Output[0].Add(cm.Output[0], big.NewInt(1)) // lie about the sum
		dec, err := verifier.Decommit()
		if err != nil {
			t.Fatal(err)
		}
		if err := prover.HandleDecommit(dec); err != nil {
			t.Fatal(err)
		}
		resp, err := prover.Respond(context.Background(), st)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := verifier.VerifyInstance(context.Background(), in, cm, resp); ok {
			t.Fatalf("cheating output accepted (noCommit=%v)", noCommit)
		}
	}
}

func TestTamperedResponseRejectedByConsistency(t *testing.T) {
	// With commitment on, even a tampered response that would satisfy the
	// PCP tests (we tamper t answers) is caught by the consistency test.
	prog, cfg := testSetup(t, Zaatar, false)
	verifier, _ := NewVerifier(prog, cfg)
	prover, _ := NewProver(prog, cfg)
	prover.HandleCommitRequest(verifier.Setup())
	in := inputsFor(1, 1, 1, 1)
	cm, st, err := prover.Commit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := verifier.Decommit()
	_ = prover.HandleDecommit(dec)
	resp, _ := prover.Respond(context.Background(), st)
	resp.T1 = prog.Field.Add(resp.T1, prog.Field.One())
	if ok, reason := verifier.VerifyInstance(context.Background(), in, cm, resp); ok || reason == "" {
		t.Fatal("tampered consistency answer accepted")
	}
}

func TestPhaseViolations(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, true)
	prover, _ := NewProver(prog, cfg)
	if _, _, err := prover.Commit(context.Background(), inputsFor(1, 2, 3, 4)); err == nil {
		t.Error("Commit before HandleCommitRequest accepted")
	}
	if _, err := prover.Respond(context.Background(), &InstanceState{}); err == nil {
		t.Error("Respond before HandleDecommit accepted")
	}
	verifier, _ := NewVerifier(prog, cfg)
	if ok, _ := verifier.VerifyInstance(context.Background(), inputsFor(1, 2, 3, 4), &Commitment{}, &Response{}); ok {
		t.Error("VerifyInstance before Decommit accepted")
	}
}

// TestHandleCommitRequestRejectsMalformed feeds the prover the commit
// requests a malicious verifier could ship over the wire: ciphertext
// components ≡ 0 mod P (which used to panic the signed-digit batch
// inversion), out-of-range, negative, and nil components, a missing public
// key, and broken or mismatched group parameters. Each must surface as an
// error — never a panic — and leave the prover with no open batch.
func TestHandleCommitRequestRejectsMalformed(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := v.Setup()
	g := honest.PK.Group
	// Setup shares its slices with the verifier's key, so each case mutates
	// a fresh copy.
	clone := func() *CommitRequest {
		c := *honest
		c.EncR1 = append([]elgamal.Ciphertext(nil), honest.EncR1...)
		c.EncR2 = append([]elgamal.Ciphertext(nil), honest.EncR2...)
		return &c
	}
	cases := map[string]*CommitRequest{
		"zero component":       clone(),
		"multiple of P":        clone(),
		"component >= P":       clone(),
		"nil component":        clone(),
		"negative component":   clone(),
		"missing public key":   clone(),
		"nil group":            clone(),
		"even group modulus":   clone(),
		"group order mismatch": clone(),
	}
	cases["zero component"].EncR1[0].A = big.NewInt(0)
	cases["multiple of P"].EncR2[0].B = new(big.Int).Lsh(g.P, 1)
	cases["component >= P"].EncR1[1].B = new(big.Int).Add(g.P, big.NewInt(2))
	cases["nil component"].EncR1[0].B = nil
	cases["negative component"].EncR2[1].A = big.NewInt(-5)
	cases["missing public key"].PK = nil
	cases["nil group"].PK = &elgamal.PublicKey{H: honest.PK.H}
	cases["even group modulus"].PK = &elgamal.PublicKey{
		Group: &elgamal.Group{P: new(big.Int).Add(g.P, big.NewInt(1)), G: g.G, Q: g.Q},
		H:     honest.PK.H,
	}
	cases["group order mismatch"].PK = &elgamal.PublicKey{
		Group: &elgamal.Group{P: g.P, G: g.G, Q: big.NewInt(3)},
		H:     honest.PK.H,
	}
	for name, req := range cases {
		if err := p.HandleCommitRequest(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, _, err := p.Commit(context.Background(), inputsFor(1, 2, 3, 4)); err == nil {
			t.Errorf("%s: Commit succeeded after a rejected request", name)
		}
	}
	// The honest request still opens the batch.
	if err := p.HandleCommitRequest(v.Setup()); err != nil {
		t.Fatalf("honest request rejected: %v", err)
	}
	if _, _, err := p.Commit(context.Background(), inputsFor(1, 2, 3, 4)); err != nil {
		t.Fatalf("Commit after honest request: %v", err)
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, true)
	if _, err := RunBatch(context.Background(), prog, cfg, nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestMissingGroupError(t *testing.T) {
	f := field.FTest()
	prog, err := compiler.Compile(f, testSrc)
	if err != nil {
		t.Fatal(err)
	}
	// FTest has no production group and none is configured.
	cfg := Config{Params: pcp.TestParams(), Seed: []byte("s")}
	if _, err := NewVerifier(prog, cfg); err == nil {
		t.Error("missing group not reported")
	}
}

func TestProofVectorLen(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, true)
	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	if got := v.ProofVectorLen(); got != st.UZaatar+1 {
		// +1: the h oracle has |C|+1 coefficients while |u_zaatar| counts
		// |Z|+|C| elements.
		t.Errorf("ProofVectorLen = %d, want %d", got, st.UZaatar+1)
	}

	progG, cfgG := testSetup(t, Ginger, true)
	vg, err := NewVerifier(progG, cfgG)
	if err != nil {
		t.Fatal(err)
	}
	if got := vg.ProofVectorLen(); got != st.UGinger {
		t.Errorf("Ginger ProofVectorLen = %d, want %d", got, st.UGinger)
	}
}

func TestTimingInstrumentation(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	res, err := RunBatch(context.Background(), prog, cfg, [][]*big.Int{inputsFor(1, 2, 3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	pt := res.ProverTimes[0]
	if pt.E2E() <= 0 {
		t.Error("prover timing not recorded")
	}
	if pt.Crypto <= 0 {
		t.Error("crypto phase timing not recorded with commitment enabled")
	}
	if res.VerifierSetup() <= 0 || res.VerifierPerInstance() <= 0 {
		t.Error("verifier timings not recorded")
	}
	m := res.Metrics
	if m.Instances != 1 || m.Commit <= 0 || m.Respond <= 0 || m.RespondVerify <= 0 ||
		m.ProverWall <= 0 || m.Total <= 0 {
		t.Errorf("batch metrics not recorded: %+v", m)
	}
}

// TestSecretsIndependentOfSeed pins the fix for a soundness bug: the
// commitment-key secrets and the consistency α's used to be PRG-derived
// from the query seed, which the DecommitRequest reveals to the prover —
// making every "secret" computable by the adversary it was hiding from.
// Two verifiers built from the identical fixed-seed Config must agree on
// the queries but differ in key material and consistency points.
func TestSecretsIndependentOfSeed(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	va, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := va.Setup(), vb.Setup()
	if len(ra.EncR1) == 0 {
		t.Fatal("expected commitment keys")
	}
	if ra.PK.H.Cmp(rb.PK.H) == 0 {
		t.Fatal("two verifiers drew the same ElGamal key: key randomness is seed-derived")
	}
	if ra.EncR1[0].A.Cmp(rb.EncR1[0].A) == 0 {
		t.Fatal("Enc(r) repeats across verifiers: commitment randomness is seed-derived")
	}
	da, err := va.Decommit()
	if err != nil {
		t.Fatal(err)
	}
	db, err := vb.Decommit()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.Seed, db.Seed) {
		t.Fatal("a fixed Config.Seed must still pin the query seed")
	}
	if da.T1[0] == db.T1[0] {
		t.Fatal("consistency points repeat across verifiers: α/r secrets are seed-derived")
	}
}

// TestReseedRekeysAndVerifies drives two full protocol rounds on one
// verifier with a Reseed between them: the reseed must regenerate the
// commitment key — each decommit reveals t = r + Σ αᵢqᵢ, so a second
// decommit over the same r would let the prover solve for it — and the
// protocol must still verify end-to-end with the fresh key.
func TestReseedRekeysAndVerifies(t *testing.T) {
	ctx := context.Background()
	prog, cfg := testSetup(t, Zaatar, false)
	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := inputsFor(1, 2, 3, 4)
	round := func(tag string) {
		t.Helper()
		p.HandleCommitRequest(v.Setup())
		cm, st, err := p.Commit(ctx, in)
		if err != nil {
			t.Fatalf("%s commit: %v", tag, err)
		}
		dec, err := v.Decommit()
		if err != nil {
			t.Fatalf("%s decommit: %v", tag, err)
		}
		if err := p.HandleDecommit(dec); err != nil {
			t.Fatalf("%s handle decommit: %v", tag, err)
		}
		resp, err := p.Respond(ctx, st)
		if err != nil {
			t.Fatalf("%s respond: %v", tag, err)
		}
		if ok, reason := v.VerifyInstance(ctx, in, cm, resp); !ok {
			t.Fatalf("%s rejected: %s", tag, reason)
		}
	}
	round("batch 0")
	before := v.Setup().EncR1[0]
	if err := v.Reseed(ctx, nil); err != nil {
		t.Fatal(err)
	}
	after := v.Setup().EncR1[0]
	if before.A.Cmp(after.A) == 0 && before.B.Cmp(after.B) == 0 {
		t.Fatal("Reseed kept the commitment key across batches")
	}
	round("batch 1")
}
