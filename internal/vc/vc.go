// Package vc implements Zaatar's efficient argument system: the interactive
// protocol of Figures 1 and 2 that composes a linear PCP (internal/pcp) with
// the linear commitment primitive (internal/commit), batched over β
// instances of one computation.
//
// Message flow, per batch:
//
//	V → P  CommitRequest    Enc(r_z), Enc(r_h)           (amortized over β)
//	P → V  Commitment       y, Enc(π_z(r_z)), Enc(π_h(r_h))   (per instance)
//	V → P  DecommitRequest  query seed + consistency points t  (amortized)
//	P → V  Response         π(q_1)..π(q_µ), π(t)              (per instance)
//
// As in [53] Apdx A.3, the decommit message carries a short PRG seed rather
// than the query vectors; the prover regenerates the queries locally, so the
// per-batch network cost is one full-length vector (t) per oracle plus the
// seed. Binding holds because every instance's commitment is collected
// before the seed is revealed.
//
// The driver is backend-agnostic: every proof encoding — the QAP-based
// Zaatar PCP, Ginger's classical PCP, and the GKR/sum-check lane — plugs in
// behind the pcp.Backend interface, selected by name through one Config
// field. Backends that need no commitment (NeedsCommitment() == false) skip
// the cryptographic phases entirely: the commit request is empty, the
// commitment carries only the claimed outputs, and the response is the
// backend's transcript proof. The driver can spread a batch over a worker
// pool (the paper's GPU/cluster parallelism; Figure 6).
package vc

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"zaatar/internal/constraint"
	"zaatar/internal/costmodel"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/pcp"
	"zaatar/internal/prg"
)

// Protocol selects the proof encoding.
//
// Deprecated: Protocol survives for the v1 API surface; it is now only a
// shorthand for the backend names of internal/pcp. New code should set
// Config.Backend directly.
type Protocol int

const (
	// Zaatar is the QAP-based linear PCP (§3); proof vector |Z| + |C|.
	Zaatar Protocol = iota
	// Ginger is the classical linear PCP baseline (§2.2); proof vector
	// |Z| + |Z|².
	Ginger
)

// protocolNames maps the legacy enum onto pcp backend identifiers. Indexed
// lookup (not comparison) so the enum stays a pure naming shim.
var protocolNames = [...]string{pcp.BackendZaatar, pcp.BackendGinger}

func (p Protocol) String() string {
	if int(p) >= 0 && int(p) < len(protocolNames) {
		return protocolNames[p]
	}
	return pcp.BackendZaatar
}

// Config controls one verifier/prover pair.
type Config struct {
	// Backend names the proof backend (see pcp.Names). Empty falls back to
	// Protocol's name, preserving the legacy two-way switch.
	Backend string
	// Protocol picks Zaatar or Ginger when Backend is empty.
	//
	// Deprecated: set Backend.
	Protocol Protocol
	// Params are the PCP repetition counts. Zero value means
	// pcp.DefaultParams().
	Params pcp.Params
	// NoCommitment disables the cryptographic commitment, leaving only the
	// PCP (for ablations and fast tests); the protocol is then only sound
	// against provers that honestly fix a linear function.
	NoCommitment bool
	// Workers is the prover's parallelism over a batch; 0 means 1.
	Workers int
	// Seed fixes the verifier's query randomness (for reproducible
	// experiments); empty means fresh randomness from crypto/rand. It
	// covers only the PCP queries — which the protocol later reveals to
	// the prover — never the commitment-key secrets or the consistency
	// α's, which always come from crypto/rand.
	Seed []byte
	// Group overrides the ElGamal group (tests with small fields); nil
	// selects the production group for the program's field.
	Group *elgamal.Group
	// NoPipeline disables the respond→verify overlap in RunBatch, running
	// the two stages back-to-back with a serial verification loop — the
	// pre-pipeline engine, kept as an ablation and equivalence reference.
	NoPipeline bool
	// Obs receives the driver's counters and phase spans; nil uses
	// obs.Default().
	Obs *obs.Registry
}

func (c Config) registry() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

func (c Config) params() pcp.Params {
	if c.Params.Rho == 0 && c.Params.RhoLin == 0 {
		return pcp.DefaultParams()
	}
	return c.Params
}

// BackendName resolves the configured backend identifier: Backend if set,
// otherwise the legacy Protocol's name.
func (c Config) BackendName() string {
	if c.Backend != "" {
		return c.Backend
	}
	return c.Protocol.String()
}

func (c Config) backend() (pcp.Backend, error) {
	return pcp.Lookup(c.BackendName())
}

// CommitRequest opens a batch: the encrypted commitment vectors for the two
// proof oracles. Both vectors are empty for backends that need no
// commitment; the request still opens the batch (phase ordering is what
// binds the prover's outputs before the seed reveal).
type CommitRequest struct {
	EncR1 []elgamal.Ciphertext // for π_z (Zaatar) or π₁ (Ginger)
	EncR2 []elgamal.Ciphertext // for π_h (Zaatar) or π₂ (Ginger)
	// PK lets the prover verify ciphertext well-formedness if desired.
	PK *elgamal.PublicKey
}

// Commitment is the prover's per-instance reply to the commit phase.
type Commitment struct {
	Output []*big.Int
	C1, C2 elgamal.Ciphertext
}

// DecommitRequest reveals the queries (via seed) and consistency points.
type DecommitRequest struct {
	Seed []byte
	T1   []field.Element
	T2   []field.Element
}

// Response carries the prover's per-instance PCP and consistency answers.
type Response struct {
	R1, R2 []field.Element
	T1, T2 field.Element
}

const seedLen = 32

// queriesFromSeed deterministically regenerates the batch's query state.
// Both parties call this with the same seed: for commitment lanes that
// yields the PCP query vectors, for transcript lanes the batch salt.
func queriesFromSeed(bk pcp.Backend, pre pcp.Precomputed, params pcp.Params, seed []byte) (pcp.Queries, error) {
	return bk.Queries(pre, params, prg.NewFromSeed(seed, 1))
}

// group returns the ElGamal group for the configuration.
func (c Config) group(f *field.Field) (*elgamal.Group, error) {
	if c.Group != nil {
		return c.Group, nil
	}
	if g := elgamal.GroupFor(f); g != nil {
		return g, nil
	}
	return nil, fmt.Errorf("vc: no built-in ElGamal group for field %s; set Config.Group", f.Name())
}

func freshSeed(cfg Config) ([]byte, error) {
	if len(cfg.Seed) > 0 {
		return cfg.Seed, nil
	}
	s := make([]byte, seedLen)
	if _, err := io.ReadFull(rand.Reader, s); err != nil {
		return nil, err
	}
	return s, nil
}

var errPhase = errors.New("vc: protocol phase violation")

// RecommendProtocol picks the cheaper of the two commitment-lane encodings
// (footnote 5 of §4).
//
// Deprecated: the model moved to costmodel.RecommendProtocol (and its
// three-way generalization costmodel.RecommendBackend); this wrapper maps
// the backend name back onto the legacy enum.
func RecommendProtocol(gs *constraint.GingerSystem, qs *constraint.QuadSystem) Protocol {
	if costmodel.RecommendProtocol(gs, qs) == pcp.BackendGinger {
		return Ginger
	}
	return Zaatar
}
