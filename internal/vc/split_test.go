package vc

import (
	"context"
	"math/big"
	"testing"

	"zaatar/internal/compiler"
)

// commitInstance runs one prover over req and returns its commitment and
// instance state.
func commitInstance(t *testing.T, prog *programConfig, req *CommitRequest, inputs []*big.Int) (*Commitment, *InstanceState, *Prover) {
	t.Helper()
	p, err := NewProver(prog.prog, prog.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.HandleCommitRequest(req); err != nil {
		t.Fatal(err)
	}
	cm, st, err := p.Commit(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	return cm, st, p
}

type programConfig struct {
	prog *compiler.Program
	cfg  Config
}

// TestSplitCombineMatchesSingleProver proves one instance twice: once by a
// single prover over the full commit request, once by two cooperating
// provers over the masked shares. The combined commitment must equal the
// single prover's bit for bit, and verification must accept it against
// either prover's responses.
func TestSplitCombineMatchesSingleProver(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	pc := &programConfig{prog: prog, cfg: cfg}
	inputs := inputsFor(3, -1, 4, 2)

	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := v.Setup()
	if len(req.EncR1) < 2 || len(req.EncR2) < 2 {
		t.Fatalf("oracle too short to split: %d/%d", len(req.EncR1), len(req.EncR2))
	}

	full, _, _ := commitInstance(t, pc, req, inputs)

	parts := SplitCommitRequest(req, 2)
	if len(parts) != 2 {
		t.Fatalf("want 2 shares, got %d", len(parts))
	}
	cmA, stA, pA := commitInstance(t, pc, parts[0], inputs)
	cmB, _, _ := commitInstance(t, pc, parts[1], inputs)

	combined, err := v.CombineCommitments([]*Commitment{cmA, cmB})
	if err != nil {
		t.Fatal(err)
	}
	if combined.C1.A.Cmp(full.C1.A) != 0 || combined.C1.B.Cmp(full.C1.B) != 0 ||
		combined.C2.A.Cmp(full.C2.A) != 0 || combined.C2.B.Cmp(full.C2.B) != 0 {
		t.Fatal("combined commitment differs from the single-prover commitment")
	}

	dreq, err := v.Decommit()
	if err != nil {
		t.Fatal(err)
	}
	if err := pA.HandleDecommit(dreq); err != nil {
		t.Fatal(err)
	}
	resp, err := pA.Respond(context.Background(), stA)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := v.VerifyInstance(context.Background(), inputs, combined, resp); !ok {
		t.Fatalf("combined commitment rejected: %s", reason)
	}
	_ = cmB
}

// TestSplitSharesCoverEachIndexOnce checks the share geometry: every oracle
// position is live in exactly one share.
func TestSplitSharesCoverEachIndexOnce(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := v.Setup()
	for _, k := range []int{1, 2, 3} {
		parts := SplitCommitRequest(req, k)
		seen := make([]int, len(req.EncR1))
		for _, p := range parts {
			for i, ct := range p.EncR1 {
				if !isNeutral(ct) {
					seen[i]++
				}
			}
			if len(p.EncR1) != len(req.EncR1) || len(p.EncR2) != len(req.EncR2) {
				t.Fatalf("k=%d: share changed the oracle length", k)
			}
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("k=%d: position %d live in %d shares", k, i, n)
			}
		}
	}
}

// TestCombineRejectsDisagreeingOutputs: cooperating provers must claim the
// same outputs; a mismatch is a protocol failure, not a silent pick.
func TestCombineRejectsDisagreeingOutputs(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	pc := &programConfig{prog: prog, cfg: cfg}
	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := v.Setup()
	parts := SplitCommitRequest(req, 2)
	cmA, _, _ := commitInstance(t, pc, parts[0], inputsFor(3, -1, 4, 2))
	cmB, _, _ := commitInstance(t, pc, parts[1], inputsFor(1, 1, 1, 1))
	if _, err := v.CombineCommitments([]*Commitment{cmA, cmB}); err == nil {
		t.Fatal("combining commitments with different outputs should fail")
	}
}
