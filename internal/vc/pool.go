package vc

import (
	"context"

	"zaatar/internal/par"
)

// ForEach runs fn(0..n-1) over a pool of workers goroutines and returns the
// first error. It is a thin alias for par.ForEach (the implementation moved
// to internal/par so the group-arithmetic kernels in internal/elgamal can
// share the same pool without an import cycle); see that package for the
// cancellation semantics.
//
// This is the scheduling primitive of the pipeline engine: the prover's
// commit and respond phases in RunBatch, and the per-instance phases of
// transport.ServeConn, all run on it.
func ForEach(ctx context.Context, n, workers int, fn func(int) error) error {
	return par.ForEach(ctx, n, workers, fn)
}
