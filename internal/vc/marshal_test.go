package vc

import (
	"bytes"
	"math/rand"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
)

type codecRand struct{ r *rand.Rand }

func (c codecRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(c.r.Intn(256))
	}
	return len(p), nil
}

// TestPrecomputationRoundTrip serializes and restores the precomputation of
// every registered backend, then runs an honest instance end-to-end on the
// decoded state: queries drawn against it, witness solved with it, proof
// built from it, and the decision procedure must accept.
func TestPrecomputationRoundTrip(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), arithSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pcp.Names() {
		t.Run(name, func(t *testing.T) {
			orig, err := PreprocessBackend(prog, name)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := orig.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := UnmarshalPrecomputation(prog, name, blob)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Backend != name {
				t.Fatalf("backend %q after round trip", restored.Backend)
			}

			bk := restored.bk
			qs, err := bk.Queries(restored.pre, pcp.TestParams(), codecRand{rand.New(rand.NewSource(11))})
			if err != nil {
				t.Fatal(err)
			}
			inputs := inputsFor(9, 4)
			outs, w, err := bk.Solve(restored.pre, prog, inputs)
			if err != nil {
				t.Fatal(err)
			}
			proof, err := bk.BuildProof(restored.pre, w)
			if err != nil {
				t.Fatal(err)
			}
			r1, r2, err := qs.Answer(proof)
			if err != nil {
				t.Fatal(err)
			}
			io, err := prog.IOValues(inputs, outs)
			if err != nil {
				t.Fatal(err)
			}
			if res := qs.Decide(r1, r2, io); !res.OK {
				t.Fatalf("honest instance rejected on decoded precomputation: %s", res.Reason)
			}

			// Corrupt payloads must fail decode, not panic (the bundle
			// checksum catches bit rot, but version skew can produce valid
			// checksums over incompatible bytes).
			if len(blob) > 0 {
				bad := bytes.Clone(blob)
				bad[len(bad)/2] ^= 0xFF
				if dec, err := UnmarshalPrecomputation(prog, name, bad[:len(bad)-1]); err == nil && dec != nil {
					// Some single-byte corruptions survive structurally
					// (e.g. inside an element); that is the checksum's job.
					// But truncation of a non-empty payload must error for
					// the self-describing formats.
					if name == pcp.BackendZaatar {
						t.Fatal("truncated+corrupt zaatar payload decoded without error")
					}
				}
			}
		})
	}
}
