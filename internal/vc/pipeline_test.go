package vc

import (
	"context"
	"errors"
	"math/big"
	"sync/atomic"
	"testing"
	"time"

	"zaatar/internal/obs"
)

// Regression test for the old parallelFor, which kept dispatching every
// remaining index after the first error: the pool must stop feeding and
// drain promptly.
func TestForEachStopsAfterFirstError(t *testing.T) {
	const n, workers = 100, 4
	boom := errors.New("boom")
	var calls atomic.Int32
	err := ForEach(context.Background(), n, workers, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c := calls.Load(); int(c) > n/2 {
		t.Fatalf("pool ran %d of %d indices after the first error; feeder did not stop", c, n)
	}
}

func TestForEachSerialStopsAfterFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	err := ForEach(context.Background(), 10, 1, func(i int) error {
		calls++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("serial pool: err = %v, calls = %d (want boom after 4 calls)", err, calls)
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 50, 2, func(i int) error {
			if calls.Add(1) == 1 {
				close(started)
				<-release
			}
			return nil
		})
	}()
	<-started
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not drain after cancellation")
	}
	if c := calls.Load(); c > 10 {
		t.Fatalf("pool ran %d indices after cancellation", c)
	}
}

func TestForEachCompletesAll(t *testing.T) {
	var calls atomic.Int32
	seen := make([]atomic.Bool, 64)
	if err := ForEach(context.Background(), 64, 8, func(i int) error {
		calls.Add(1)
		seen[i].Store(true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 64 {
		t.Fatalf("ran %d of 64 indices", calls.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestRunBatchCancelMidBatch(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, true)
	cfg.Workers = 2
	const beta = 16
	batch := make([][]*big.Int, beta)
	for i := range batch {
		batch[i] = inputsFor(int64(i), 1, 2, 3)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var committed atomic.Int32
	testHookAfterCommit = func(int, *Commitment) {
		if committed.Add(1) == 1 {
			cancel()
		}
	}
	defer func() { testHookAfterCommit = nil }()

	_, err := RunBatch(ctx, prog, cfg, batch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := committed.Load(); int(c) >= beta {
		t.Fatalf("all %d instances committed despite mid-batch cancellation", c)
	}
}

func TestRunBatchPreCancelled(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, prog, cfg, [][]*big.Int{inputsFor(1, 2, 3, 4)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The pipelined engine (respond→verify overlap, parallel verification) must
// make exactly the decisions of the serial reference path — including
// rejections, injected here by tampering with some commitments.
func TestPipelineMatchesSerial(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	const beta = 8
	batch := make([][]*big.Int, beta)
	for i := range batch {
		batch[i] = inputsFor(int64(i), int64(-i), 3, 1)
	}
	tampered := map[int]bool{1: true, 5: true}
	testHookAfterCommit = func(i int, cm *Commitment) {
		if tampered[i] {
			cm.Output[0].Add(cm.Output[0], big.NewInt(1))
		}
	}
	defer func() { testHookAfterCommit = nil }()

	serialCfg := cfg
	serialCfg.NoPipeline = true
	serialCfg.Workers = 1
	serial, err := RunBatch(context.Background(), prog, serialCfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	pipeCfg := cfg
	pipeCfg.Workers = 4
	pipe, err := RunBatch(context.Background(), prog, pipeCfg, batch)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < beta; i++ {
		if serial.Accepted[i] != pipe.Accepted[i] || serial.Reasons[i] != pipe.Reasons[i] {
			t.Errorf("instance %d: serial (%v, %q) != pipelined (%v, %q)",
				i, serial.Accepted[i], serial.Reasons[i], pipe.Accepted[i], pipe.Reasons[i])
		}
		if serial.Accepted[i] == tampered[i] {
			t.Errorf("instance %d: accepted = %v, want %v", i, serial.Accepted[i], !tampered[i])
		}
		for j := range serial.Outputs[i] {
			if serial.Outputs[i][j].Cmp(pipe.Outputs[i][j]) != 0 {
				t.Errorf("instance %d output %d: serial %v != pipelined %v",
					i, j, serial.Outputs[i][j], pipe.Outputs[i][j])
			}
		}
	}
}

// The soundness barrier: the decommit (query seed reveal) must run only
// after every instance's commitment, at any worker count.
func TestDecommitBarrierAfterAllCommitments(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, false)
	cfg.Workers = 4
	const beta = 8
	batch := make([][]*big.Int, beta)
	for i := range batch {
		batch[i] = inputsFor(int64(i), 2, 3, 4)
	}
	var committed atomic.Int32
	var barrierChecks atomic.Int32
	testHookAfterCommit = func(int, *Commitment) { committed.Add(1) }
	testHookPreDecommit = func() {
		barrierChecks.Add(1)
		if c := committed.Load(); int(c) != beta {
			t.Errorf("decommit reached with %d of %d commitments", c, beta)
		}
	}
	defer func() {
		testHookAfterCommit = nil
		testHookPreDecommit = nil
	}()
	res, err := RunBatch(context.Background(), prog, cfg, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("honest batch rejected: %v", res.Reasons)
	}
	if barrierChecks.Load() != 1 {
		t.Fatalf("decommit barrier crossed %d times, want 1", barrierChecks.Load())
	}
}

// RunBatch must record its counters and phase spans into the configured
// registry.
func TestRunBatchObservability(t *testing.T) {
	prog, cfg := testSetup(t, Zaatar, true)
	cfg.Workers = 2
	cfg.Obs = obs.NewRegistry()
	tampered := map[int]bool{0: true}
	testHookAfterCommit = func(i int, cm *Commitment) {
		if tampered[i] {
			cm.Output[0].Add(cm.Output[0], big.NewInt(1))
		}
	}
	defer func() { testHookAfterCommit = nil }()

	batch := [][]*big.Int{inputsFor(1, 2, 3, 4), inputsFor(5, 6, 7, 8), inputsFor(0, 0, 0, 1)}
	if _, err := RunBatch(context.Background(), prog, cfg, batch); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Obs.Counter(MetricBatches).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricBatches, got)
	}
	if got := cfg.Obs.Counter(MetricInstances).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricInstances, got)
	}
	if got := cfg.Obs.Counter(MetricRejected).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricRejected, got)
	}
	if s := cfg.Obs.Histogram(MetricSpanVerify).Snapshot(); s.Count != 3 {
		t.Errorf("%s.count = %d, want 3", MetricSpanVerify, s.Count)
	}
	for _, name := range []string{MetricSpanSetup, MetricSpanCommit, MetricSpanDecommit, MetricSpanRespond, MetricSpanBatch} {
		if s := cfg.Obs.Histogram(name).Snapshot(); s.Count != 1 {
			t.Errorf("%s.count = %d, want 1", name, s.Count)
		}
	}
}
