package vc

import (
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
)

// The model itself is tested in internal/costmodel; here we only check the
// deprecated wrapper's name→enum mapping.
func TestRecommendProtocolWrapper(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), `
		const N = 6;
		input x[N] : int16;
		output y : int64;
		y = 0;
		for i = 0 to N-1 { y = y + x[i] * x[i]; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := RecommendProtocol(prog.Ginger, prog.Quad)
	if got != Zaatar {
		t.Errorf("RecommendProtocol = %v, want Zaatar", got)
	}
	if got.String() != "zaatar" {
		t.Errorf("String() = %q, want zaatar", got.String())
	}
	if Ginger.String() != "ginger" {
		t.Errorf("Ginger.String() = %q", Ginger.String())
	}
}
