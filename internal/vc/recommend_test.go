package vc

import (
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/field"
)

// TestRecommendProtocolCompiledPrograms: compiler output always keeps K₂
// small, so Zaatar wins.
func TestRecommendProtocolCompiledPrograms(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), `
		const N = 6;
		input x[N] : int16;
		output y : int64;
		y = 0;
		for i = 0 to N-1 { y = y + x[i] * x[i]; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := RecommendProtocol(prog.Ginger, prog.Quad); got != Zaatar {
		t.Errorf("compiled program recommended %v, want zaatar", got)
	}
}

// TestRecommendProtocolDegenerate reproduces §4's degenerate case: a single
// constraint evaluating a dense degree-2 polynomial (every pair of
// variables multiplied) makes Ginger's encoding the concise one.
func TestRecommendProtocolDegenerate(t *testing.T) {
	f := field.F128()
	one := f.One()
	n := 12
	// One constraint: Σ_{i≤j} z_i·z_j - out = 0 over unbound wires 1..n,
	// with out an output wire.
	var c constraint.GingerConstraint
	for i := 1; i <= n; i++ {
		for j := i; j <= n; j++ {
			c = append(c, constraint.Term{Coeff: one, A: i, B: j})
		}
	}
	c = append(c, constraint.Term{Coeff: f.Neg(one), A: n + 1})
	gs := &constraint.GingerSystem{
		NumVars: n + 1,
		Out:     []int{n + 1},
		Cons:    []constraint.GingerConstraint{c},
	}
	qs := constraint.ToQuad(f, gs)
	// Sanity: the quad system has K2 = n(n+1)/2 extra variables.
	if qs.NumVars != gs.NumVars+n*(n+1)/2 {
		t.Fatalf("unexpected K2 accounting: %d vars", qs.NumVars)
	}
	if got := RecommendProtocol(gs, qs); got != Ginger {
		ug, uz := constraint.ProofVectorSizes(gs, qs)
		t.Errorf("degenerate system recommended %v (|u_g|=%d |u_z|=%d), want ginger", got, ug, uz)
	}
}
