package vc

import (
	"context"
	"math/big"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
)

// arithSrc is pure arithmetic so every registered backend — including the
// sum-check lane, which needs the circuit to stratify — can run it.
const arithSrc = `
input x, y : int32;
output a, b : int64;
a = (x + y) * (x - y);
b = x * x * y + 3 * y;
`

// TestCrossBackendAgreement drives the same program and inputs through
// every registered backend and demands identical verdicts and outputs —
// the property that makes backend negotiation transparent to callers.
func TestCrossBackendAgreement(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), arithSrc)
	if err != nil {
		t.Fatal(err)
	}
	batch := [][]*big.Int{
		inputsFor(7, 5),
		inputsFor(-3, 11),
		inputsFor(0, 0),
		inputsFor(1<<14, -9),
	}
	want, err := prog.Execute(batch[0])
	if err != nil {
		t.Fatal(err)
	}

	names := pcp.Names()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered backends, got %v", names)
	}
	results := make(map[string]*BatchResult)
	for _, name := range names {
		cfg := Config{
			Backend:      name,
			Params:       pcp.TestParams(),
			NoCommitment: true, // crypto is orthogonal to agreement
			Seed:         []byte("cross-backend-seed"),
		}
		res, err := RunBatch(context.Background(), prog, cfg, batch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.AllAccepted() {
			t.Fatalf("%s: honest batch rejected: %v", name, res.Reasons)
		}
		results[name] = res
	}
	for _, name := range names {
		res := results[name]
		for i := range batch {
			for j := range want {
				ref := results[names[0]].Outputs[i][j]
				if res.Outputs[i][j].Cmp(ref) != 0 {
					t.Errorf("%s instance %d output %d = %v, %s says %v",
						name, i, j, res.Outputs[i][j], names[0], ref)
				}
			}
		}
	}
	// And against the straight-line interpreter.
	for j := range want {
		if results[names[0]].Outputs[0][j].Cmp(want[j]) != 0 {
			t.Errorf("output %d = %v, interpreter says %v", j, results[names[0]].Outputs[0][j], want[j])
		}
	}
}

// TestSumcheckEndToEndVC runs the sum-check lane through the full batch
// driver: no commit-phase crypto is configured, yet the flow (including
// Reseed for a second batch) must hold together.
func TestSumcheckEndToEndVC(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), arithSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Backend: pcp.BackendSumcheck,
		Params:  pcp.TestParams(),
		Seed:    []byte("sumcheck-vc-seed"),
	}
	res, err := RunBatch(context.Background(), prog, cfg, [][]*big.Int{inputsFor(7, 5), inputsFor(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}

	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Backend() != pcp.BackendSumcheck {
		t.Fatalf("Backend() = %q", v.Backend())
	}
	if got := v.ProofVectorLen(); got != 0 {
		t.Fatalf("ProofVectorLen = %d, want 0 (no linear oracle)", got)
	}
	// The commit request must carry no ciphertexts even though
	// NoCommitment was not set: the backend's capability drives it.
	if req := v.Setup(); len(req.EncR1) != 0 || len(req.EncR2) != 0 || req.PK != nil {
		t.Fatal("sum-check lane produced a cryptographic commit request")
	}
}

// TestSumcheckCheatingProverRejected tampers with the committed outputs
// between commit and respond; the transcript replay must reject.
func TestSumcheckCheatingProverRejected(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), arithSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Backend: pcp.BackendSumcheck,
		Params:  pcp.TestParams(),
		Seed:    []byte("sumcheck-cheat-seed"),
	}
	v, err := NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.HandleCommitRequest(v.Setup())
	in := inputsFor(7, 5)
	cm, st, err := p.Commit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the first output after solving honestly.
	cm.Output[0] = new(big.Int).Add(cm.Output[0], big.NewInt(1))
	dec, err := v.Decommit()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.HandleDecommit(dec); err != nil {
		t.Fatal(err)
	}
	resp, err := p.Respond(context.Background(), st)
	if err != nil {
		t.Fatal(err)
	}
	ok, reason := v.VerifyInstance(context.Background(), in, cm, resp)
	if ok {
		t.Fatal("verifier accepted a falsified output on the sum-check lane")
	}
	t.Logf("rejected with: %s", reason)
}

// TestBackendNameFallback: Config.Backend empty falls back to the legacy
// Protocol enum, and an unknown name errors cleanly.
func TestBackendNameFallback(t *testing.T) {
	if got := (Config{Protocol: Ginger}).BackendName(); got != pcp.BackendGinger {
		t.Errorf("BackendName = %q, want ginger", got)
	}
	if got := (Config{}).BackendName(); got != pcp.BackendZaatar {
		t.Errorf("BackendName = %q, want zaatar", got)
	}
	if got := (Config{Protocol: Ginger, Backend: pcp.BackendSumcheck}).BackendName(); got != pcp.BackendSumcheck {
		t.Errorf("BackendName = %q, want sumcheck", got)
	}
	prog, err := compiler.Compile(field.F128(), arithSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVerifier(prog, Config{Backend: "no-such-backend"}); err == nil {
		t.Fatal("NewVerifier accepted an unknown backend name")
	}
	if _, err := NewProver(prog, Config{Backend: "no-such-backend"}); err == nil {
		t.Fatal("NewProver accepted an unknown backend name")
	}
}

// TestPrecomputationReuse: a cached Precomputation is reused only when the
// backend matches.
func TestPrecomputationReuse(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), arithSrc)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := PreprocessBackend(prog, pcp.BackendSumcheck)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Backend != pcp.BackendSumcheck {
		t.Fatalf("Backend = %q", pre.Backend)
	}
	// Mismatched cache entry: the prover must rebuild for zaatar and work.
	cfg := Config{Backend: pcp.BackendZaatar, Params: pcp.TestParams(), NoCommitment: true, Seed: []byte("s")}
	p, err := NewProverPre(prog, cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	if p.bk.Name() != pcp.BackendZaatar {
		t.Fatalf("prover backend = %q, want zaatar rebuild", p.bk.Name())
	}
	// Matching entry is adopted as-is.
	cfg.Backend = pcp.BackendSumcheck
	p2, err := NewProverPre(prog, cfg, pre)
	if err != nil {
		t.Fatal(err)
	}
	if p2.pre != pre.pre {
		t.Fatal("matching precomputation was rebuilt instead of reused")
	}
}
