package vc

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"zaatar/internal/commit"
	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
)

// ProverTimes decomposes one instance's prover cost, mirroring the columns
// of Figure 5.
type ProverTimes struct {
	Solve      time.Duration // execute Ψ and solve the constraints
	ConstructU time.Duration // build the proof vector (H(t) for Zaatar, z⊗z for Ginger)
	Crypto     time.Duration // homomorphic commitment evaluation
	Answer     time.Duration // PCP + consistency query responses
}

// E2E is the total prover time for the instance.
func (t ProverTimes) E2E() time.Duration {
	return t.Solve + t.ConstructU + t.Crypto + t.Answer
}

// Prover holds a prover's batch state for one computation.
type Prover struct {
	Prog *compiler.Program
	Cfg  Config

	bk  pcp.Backend
	pre pcp.Precomputed
	req *CommitRequest

	// prepR1/prepR2 cache the Montgomery preparation of the batch's Enc(r)
	// vectors (commit.Prepare): built once per HandleCommitRequest, reused
	// by every instance's Commit. When the request is a masked share of a
	// split commit request (a farm coordinator splitting one instance's
	// commitment across cooperating provers), only the live positions are
	// prepared — liveR1/liveR2 record which — so the per-instance multiexp
	// runs over this prover's slice alone.
	prepR1, prepR2 *elgamal.PreparedVector
	liveR1, liveR2 []int // nil = dense request
	lenR1, lenR2   int

	// kernelWorkers shards the homomorphic inner product inside each
	// Commit call. It defaults to 1 because batch drivers already run one
	// Commit per instance concurrently; SetKernelWorkers raises it when
	// instance-level parallelism can't fill the machine (small batches).
	kernelWorkers int

	// query regeneration state after decommit
	queries pcp.Queries
	t1, t2  []field.Element
}

// SetKernelWorkers sets the number of goroutines used inside a single
// Commit's group-arithmetic kernel. Values below 1 are treated as 1.
func (p *Prover) SetKernelWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.kernelWorkers = n
}

// InstanceState carries a single instance's proof between the commit and
// respond phases.
type InstanceState struct {
	U1, U2 []field.Element // the two proof vectors
	Times  ProverTimes
}

// Precomputation holds the backend-dependent prover-side state that
// depends only on the compiled program, not on a batch: for Zaatar the QAP
// encoding (divisor polynomial, Newton inverse series, NTT subproduct
// tree), for sum-check the layered circuit. It is immutable and safe to
// share between concurrent provers, so a long-lived service can build it
// once per program and hand it to every session (transport.Service does
// exactly that). Keyed by backend name so a cache hit for one backend never
// leaks into a session negotiating another.
type Precomputation struct {
	Backend string

	bk  pcp.Backend
	pre pcp.Precomputed
}

// PreprocessBackend builds the prover-side precomputation for a program
// under the named backend.
func PreprocessBackend(prog *compiler.Program, backend string) (*Precomputation, error) {
	bk, err := pcp.Lookup(backend)
	if err != nil {
		return nil, err
	}
	pre, err := bk.Precompute(prog)
	if err != nil {
		return nil, err
	}
	return &Precomputation{Backend: bk.Name(), bk: bk, pre: pre}, nil
}

// Preprocess builds the prover-side precomputation for a program under the
// given protocol.
//
// Deprecated: use PreprocessBackend with a backend name.
func Preprocess(prog *compiler.Program, protocol Protocol) (*Precomputation, error) {
	return PreprocessBackend(prog, protocol.String())
}

// NewProver prepares the prover for a computation.
func NewProver(prog *compiler.Program, cfg Config) (*Prover, error) {
	return NewProverPre(prog, cfg, nil)
}

// NewProverPre is NewProver reusing a cached Precomputation; pre may be nil
// (or built for a different backend), in which case the precomputation is
// performed here.
func NewProverPre(prog *compiler.Program, cfg Config, pre *Precomputation) (*Prover, error) {
	if pre == nil || pre.Backend != cfg.BackendName() {
		var err error
		if pre, err = PreprocessBackend(prog, cfg.BackendName()); err != nil {
			return nil, err
		}
	}
	return &Prover{Prog: prog, Cfg: cfg, bk: pre.bk, pre: pre.pre}, nil
}

// HandleCommitRequest stores the batch's encrypted commitment vectors and
// prepares them for the per-instance commitments. The request may come from
// an untrusted verifier over the wire, so the group parameters and every
// ciphertext component are checked before they reach the Montgomery kernels
// (whose preconditions are enforced by panic); a malformed request is
// rejected with an error and leaves the prover with no open batch.
func (p *Prover) HandleCommitRequest(req *CommitRequest) error {
	p.req, p.prepR1, p.prepR2 = nil, nil, nil
	p.liveR1, p.liveR2, p.lenR1, p.lenR2 = nil, nil, 0, 0
	if req != nil && (len(req.EncR1) > 0 || len(req.EncR2) > 0) {
		if req.PK == nil {
			return errors.New("vc: commit request carries ciphertexts but no public key")
		}
		group := req.PK.Group
		if err := group.Validate(); err != nil {
			return fmt.Errorf("vc: commit request: %w", err)
		}
		if group.Q.Cmp(p.Prog.Field.Modulus()) != 0 {
			return errors.New("vc: commit request group order does not match the program field")
		}
		if err := group.CheckCiphertexts(req.EncR1); err != nil {
			return fmt.Errorf("vc: commit request Enc(r1): %w", err)
		}
		if err := group.CheckCiphertexts(req.EncR2); err != nil {
			return fmt.Errorf("vc: commit request Enc(r2): %w", err)
		}
		// A masked share (farm-split commit request) carries neutral (1,1)
		// ciphertexts outside this prover's slice; those positions
		// contribute the identity to the commitment whatever u holds, so
		// they are dropped before preparation and the multiexp runs over
		// the live slice alone.
		p.liveR1, p.liveR2 = liveIndices(req.EncR1), liveIndices(req.EncR2)
		p.lenR1, p.lenR2 = len(req.EncR1), len(req.EncR2)
		p.prepR1 = commit.Prepare(group, gatherCiphertexts(req.EncR1, p.liveR1))
		p.prepR2 = commit.Prepare(group, gatherCiphertexts(req.EncR2, p.liveR2))
	}
	p.req = req
	return nil
}

// gatherWeights compacts the proof vector u down to a masked request's live
// positions (nil live = dense, u unchanged). The request's full oracle
// length must match |u| — the same invariant the unmasked multiexp enforces.
func gatherWeights(u []field.Element, live []int, reqLen int) ([]field.Element, error) {
	if live == nil {
		return u, nil
	}
	if len(u) != reqLen {
		return nil, errors.New("vc: masked commit request length does not match the proof vector")
	}
	out := make([]field.Element, len(live))
	for j, i := range live {
		out[j] = u[i]
	}
	return out, nil
}

// Commit executes the computation on one instance's inputs and commits to
// the resulting proof. This performs the first three phases of Figure 5:
// solving the constraints, constructing the proof vector, and the
// cryptographic commitment. A cancelled ctx aborts before the work starts;
// the per-instance steps themselves are not interruptible.
func (p *Prover) Commit(ctx context.Context, inputs []*big.Int) (*Commitment, *InstanceState, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if p.req == nil {
		return nil, nil, errPhase
	}
	st := &InstanceState{}
	cm := &Commitment{}
	f := p.Prog.Field

	start := time.Now()
	solveTr := trace.Start(ctx, "prover.solve")
	var w []field.Element
	var err error
	cm.Output, w, err = p.bk.Solve(p.pre, p.Prog, inputs)
	solveTr.End()
	if err != nil {
		return nil, nil, err
	}
	st.Times.Solve = time.Since(start)

	// Construct the proof vector. For Zaatar the dominant work is the NTT
	// polynomial division computing H(t); for Ginger it is the z⊗z tensor;
	// for sum-check the witness is the layered evaluation itself and the
	// real proof is built at answer time (it depends on the batch salt).
	start = time.Now()
	buildTr := trace.Start(ctx, p.bk.ConstructKernel())
	proof, err := p.bk.BuildProof(p.pre, w)
	if err != nil {
		buildTr.End()
		return nil, nil, err
	}
	st.U1, st.U2 = proof.U1, proof.U2
	buildTr.WithArg("u1", int64(len(st.U1))).WithArg("u2", int64(len(st.U2))).End()
	st.Times.ConstructU = time.Since(start)

	start = time.Now()
	if len(p.req.EncR1) > 0 {
		cryptoTr, cctx := trace.Child(ctx, "prover.crypto")
		defer cryptoTr.End()
		group := p.req.PK.Group
		kw := p.kernelWorkers
		if kw < 1 {
			kw = 1
		}
		u1, err := gatherWeights(st.U1, p.liveR1, p.lenR1)
		if err != nil {
			return nil, nil, err
		}
		u2, err := gatherWeights(st.U2, p.liveR2, p.lenR2)
		if err != nil {
			return nil, nil, err
		}
		k1 := trace.Start(cctx, "kernel.multiexp").WithArg("n", int64(len(u1)))
		cm.C1, err = commit.CommitPrepared(group, f, p.prepR1, u1, kw)
		k1.End()
		if err != nil {
			return nil, nil, err
		}
		k2 := trace.Start(cctx, "kernel.multiexp").WithArg("n", int64(len(u2)))
		cm.C2, err = commit.CommitPrepared(group, f, p.prepR2, u2, kw)
		k2.End()
		if err != nil {
			return nil, nil, err
		}
		cryptoTr.End()
	}
	st.Times.Crypto = time.Since(start)
	return cm, st, nil
}

// HandleDecommit regenerates the batch query state from the revealed seed.
func (p *Prover) HandleDecommit(req *DecommitRequest) error {
	q, err := queriesFromSeed(p.bk, p.pre, p.Cfg.params(), req.Seed)
	if err != nil {
		return err
	}
	p.queries = q
	p.t1, p.t2 = req.T1, req.T2
	return nil
}

// Respond answers every query (and the consistency points) for one
// committed instance — the "answer queries" phase of Figure 5. A cancelled
// ctx aborts before the work starts.
func (p *Prover) Respond(ctx context.Context, st *InstanceState) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.queries == nil {
		return nil, errPhase
	}
	f := p.Prog.Field
	start := time.Now()
	r1, r2, err := p.queries.Answer(&pcp.Proof{U1: st.U1, U2: st.U2})
	if err != nil {
		return nil, err
	}
	resp := &Response{R1: r1, R2: r2}
	if p.t1 != nil {
		if len(p.t1) != len(st.U1) || len(p.t2) != len(st.U2) {
			return nil, errors.New("vc: consistency point length mismatch")
		}
		resp.T1 = f.InnerProduct(p.t1, st.U1)
		resp.T2 = f.InnerProduct(p.t2, st.U2)
	}
	st.Times.Answer = time.Since(start)
	return resp, nil
}
