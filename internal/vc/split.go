// Commit-request splitting: the farm's intra-instance parallelism. One
// verifier's commit request Enc(r) is fractured into k masked shares, one
// per cooperating prover: share j keeps the true ciphertexts on its
// contiguous slice of each oracle and replaces every other position with
// the neutral ciphertext (1,1) = Enc(0) under zero randomness. A prover
// committing against share j therefore produces Enc(Σ_{i∈slice_j} r_i·u_i),
// and the component-wise ciphertext product of all k partial commitments is
// Enc(⟨r, u⟩) — bit-identical to the commitment a single prover would have
// sent for the same u, so the verifier's consistency test runs unchanged
// against the combined value. Binding is unaffected: the shares jointly
// commit the provers (one adversary, however many machines) to a single
// linear function before the query seed is revealed.
package vc

import (
	"errors"
	"math/big"

	"zaatar/internal/elgamal"
)

// splitRange returns the half-open slice [lo, hi) that share j of k owns in
// a vector of length n; shares differ in size by at most one element.
func splitRange(n, k, j int) (int, int) {
	return j * n / k, (j + 1) * n / k
}

// SplitCommitRequest fractures req into k masked shares (see the package
// comment above). k is clamped to at least 1; a request without ciphertexts
// (no-commitment lanes) is returned as k aliases, since there is nothing to
// split. Shares keep the full oracle length — provers detect the masked
// positions and skip them in the multiexp, so share j pays roughly 1/k of
// the commitment crypto.
func SplitCommitRequest(req *CommitRequest, k int) []*CommitRequest {
	if k < 1 {
		k = 1
	}
	out := make([]*CommitRequest, k)
	if req == nil || (len(req.EncR1) == 0 && len(req.EncR2) == 0) {
		for j := range out {
			out[j] = req
		}
		return out
	}
	mask := func(src []elgamal.Ciphertext, j int) []elgamal.Ciphertext {
		lo, hi := splitRange(len(src), k, j)
		dst := make([]elgamal.Ciphertext, len(src))
		for i := range dst {
			if i >= lo && i < hi {
				dst[i] = src[i]
			} else {
				dst[i] = elgamal.Ciphertext{A: big.NewInt(1), B: big.NewInt(1)}
			}
		}
		return dst
	}
	for j := range out {
		out[j] = &CommitRequest{EncR1: mask(req.EncR1, j), EncR2: mask(req.EncR2, j), PK: req.PK}
	}
	return out
}

// CombineCommitments folds the partial commitments returned by k provers
// that each served one share of a split commit request back into the single
// commitment the instance's verification consumes: the claimed outputs must
// agree across all parts, and the ciphertexts multiply component-wise
// (homomorphic addition of the per-slice inner products). The result equals
// the single-prover commitment for the same proof vector bit for bit.
func (v *Verifier) CombineCommitments(parts []*Commitment) (*Commitment, error) {
	if len(parts) == 0 {
		return nil, errors.New("vc: no partial commitments to combine")
	}
	first := parts[0]
	for _, p := range parts[1:] {
		if len(p.Output) != len(first.Output) {
			return nil, errors.New("vc: cooperating provers disagree on the output shape")
		}
		for i := range p.Output {
			if p.Output[i] == nil || first.Output[i] == nil || p.Output[i].Cmp(first.Output[i]) != 0 {
				return nil, errors.New("vc: cooperating provers disagree on the claimed outputs")
			}
		}
	}
	out := &Commitment{Output: first.Output}
	if v.key1 == nil {
		// No-commitment lane: nothing cryptographic to fold.
		out.C1, out.C2 = first.C1, first.C2
		return out, nil
	}
	g := v.key1.Group
	c1, c2 := g.One(), g.One()
	for _, p := range parts {
		if p.C1.A == nil || p.C1.B == nil || p.C2.A == nil || p.C2.B == nil {
			return nil, errors.New("vc: partial commitment is missing its ciphertext")
		}
		c1 = g.Add(c1, p.C1)
		c2 = g.Add(c2, p.C2)
	}
	out.C1, out.C2 = c1, c2
	return out, nil
}

// liveIndices lists the positions of cts that are not the neutral masking
// ciphertext (1,1). It returns nil when every position is live — the dense
// case, where the caller should use the vector as-is — so that only masked
// share requests pay the gather.
func liveIndices(cts []elgamal.Ciphertext) []int {
	masked := false
	for i := range cts {
		if isNeutral(cts[i]) {
			masked = true
			break
		}
	}
	if !masked {
		return nil
	}
	live := make([]int, 0, len(cts))
	for i := range cts {
		if !isNeutral(cts[i]) {
			live = append(live, i)
		}
	}
	return live
}

func isNeutral(ct elgamal.Ciphertext) bool {
	return ct.A != nil && ct.B != nil && ct.A.BitLen() == 1 && ct.B.BitLen() == 1 &&
		ct.A.Bit(0) == 1 && ct.B.Bit(0) == 1
}

// gatherCiphertexts compacts src down to the live positions; a nil index
// list returns src unchanged.
func gatherCiphertexts(src []elgamal.Ciphertext, live []int) []elgamal.Ciphertext {
	if live == nil {
		return src
	}
	out := make([]elgamal.Ciphertext, len(live))
	for j, i := range live {
		out[j] = src[i]
	}
	return out
}
