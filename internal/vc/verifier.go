package vc

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"zaatar/internal/commit"
	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
)

// Verifier holds one batch's verifier state. Create with NewVerifier; then
// Setup → (collect commitments) → Decommit → VerifyInstance per instance.
type Verifier struct {
	Prog *compiler.Program
	Cfg  Config

	bk                 pcp.Backend
	pre                pcp.Precomputed
	queries            pcp.Queries
	seed               []byte
	queries1, queries2 [][]field.Element // flattened query lists; nil for transcript lanes

	sk       *elgamal.SecretKey
	key1     *commit.Key
	key2     *commit.Key
	dec1     commit.Decommit
	dec2     commit.Decommit
	sec1     commit.Secrets
	sec2     commit.Secrets
	setupDur time.Duration

	decommitBuilt bool
}

// NewVerifier compiles the verifier's batch state: the PCP queries (derived
// from a seed) and, unless disabled, the commitment keys (whose secrets are
// drawn from crypto/rand, independently of the seed). This is the
// verifier's amortized per-batch setup — the "construct queries" rows of
// Figure 3.
func NewVerifier(prog *compiler.Program, cfg Config) (*Verifier, error) {
	return NewVerifierCtx(context.Background(), prog, cfg)
}

// NewVerifierCtx is NewVerifier with a context, so a trace attached to ctx
// decomposes setup into query construction and commitment-key generation.
func NewVerifierCtx(ctx context.Context, prog *compiler.Program, cfg Config) (*Verifier, error) {
	start := time.Now()
	v := &Verifier{Prog: prog, Cfg: cfg}
	var err error
	if v.seed, err = freshSeed(cfg); err != nil {
		return nil, err
	}
	if v.bk, err = cfg.backend(); err != nil {
		return nil, err
	}
	qTr := trace.Start(ctx, "verifier.queries")
	if v.pre, err = v.bk.Precompute(prog); err != nil {
		return nil, err
	}
	if v.queries, err = queriesFromSeed(v.bk, v.pre, cfg.params(), v.seed); err != nil {
		return nil, err
	}
	v.queries1, v.queries2 = v.queries.Vectors()
	qTr.End()

	if v.bk.NeedsCommitment() && !cfg.NoCommitment {
		if err := v.genKeys(ctx); err != nil {
			return nil, err
		}
	}
	v.setupDur = time.Since(start)
	return v, nil
}

// genKeys draws a fresh ElGamal key pair and fresh secret commitment
// vectors for both oracles. The randomness comes from crypto/rand — never
// from the query seed, even when Config.Seed pins one: the seed is revealed
// to the prover at decommit time, so anything derived from it is public
// from the prover's perspective and could not hide r or the ElGamal secret
// key. The key is per-batch state; see Reseed for why it cannot be reused.
func (v *Verifier) genKeys(ctx context.Context) error {
	group, err := v.Cfg.group(v.Prog.Field)
	if err != nil {
		return err
	}
	if v.sk, err = group.GenerateKey(rand.Reader); err != nil {
		return err
	}
	n1, n2 := v.oracleLens()
	kw := v.Cfg.Workers
	if kw < 1 {
		kw = 1
	}
	k1 := trace.Start(ctx, "kernel.fixedbase.encrypt_r").WithArg("n", int64(n1))
	v.key1, err = commit.NewKeyParallel(v.Prog.Field, group, v.sk, n1, rand.Reader, kw)
	k1.End()
	if err != nil {
		return err
	}
	k2 := trace.Start(ctx, "kernel.fixedbase.encrypt_r").WithArg("n", int64(n2))
	v.key2, err = commit.NewKeyParallel(v.Prog.Field, group, v.sk, n2, rand.Reader, kw)
	k2.End()
	return err
}

// Reseed rolls the verifier's per-batch state forward for the next batch
// of a kept-alive session: fresh query randomness and — unless commitments
// are disabled — a fresh commitment key (new ElGamal key pair, new secret
// vectors r). Re-keying is not optional: each batch's Decommit reveals
// t = r + Σ αᵢqᵢ, and two such reveals over the same r form a linear
// system (the q's are public once both seeds are out) that a malicious
// prover can solve for the α's and r, after which the commitments no
// longer bind. The seed semantics match Config.Seed and affect only the
// queries: empty draws fresh query randomness from crypto/rand, and the
// key material always comes from crypto/rand. Binding then holds per batch
// because the new seed is revealed only after that batch's commitments
// have been collected. The caller must ship the new Setup() output to the
// prover: the previous batch's commit request is dead.
func (v *Verifier) Reseed(ctx context.Context, seed []byte) error {
	cfg := v.Cfg
	cfg.Seed = seed
	s, err := freshSeed(cfg)
	if err != nil {
		return err
	}
	v.seed = s
	if v.queries, err = queriesFromSeed(v.bk, v.pre, v.Cfg.params(), s); err != nil {
		return err
	}
	v.queries1, v.queries2 = v.queries.Vectors()
	v.decommitBuilt = false
	if v.bk.NeedsCommitment() && !v.Cfg.NoCommitment {
		if err := v.genKeys(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Fork creates an independent verifier sharing this one's compiled program,
// backend, and precomputation (the expensive, immutable part of setup) but
// with its own per-batch state: fresh queries from seed (empty = fresh
// randomness, matching Config.Seed semantics) and a fresh commitment key.
// Forks are how a farm coordinator keeps several shards in flight at once —
// each shard is its own batch, so each needs its own key and seed; sharing
// either across shards would break binding exactly like reusing a key
// across batches (see Reseed). The receiver is left untouched.
func (v *Verifier) Fork(ctx context.Context, seed []byte) (*Verifier, error) {
	start := time.Now()
	nv := &Verifier{Prog: v.Prog, Cfg: v.Cfg, bk: v.bk, pre: v.pre}
	if err := nv.Reseed(ctx, seed); err != nil {
		return nil, err
	}
	nv.setupDur = time.Since(start)
	return nv, nil
}

// oracleLens returns the two proof-vector lengths |u₁|, |u₂| (zero for
// transcript lanes, which commit to no linear oracle).
func (v *Verifier) oracleLens() (int, int) {
	return v.bk.OracleLens(v.pre)
}

// ProofVectorLen returns |u| = |u₁| + |u₂| for the configured backend.
func (v *Verifier) ProofVectorLen() int {
	a, b := v.oracleLens()
	return a + b
}

// Backend reports the resolved backend name.
func (v *Verifier) Backend() string { return v.bk.Name() }

// SetupDuration reports the time spent in NewVerifier (query + key setup),
// the amortized cost that determines break-even batch sizes.
func (v *Verifier) SetupDuration() time.Duration { return v.setupDur }

// Setup emits the commit request opening the batch.
func (v *Verifier) Setup() *CommitRequest {
	req := &CommitRequest{}
	if v.key1 != nil {
		req.EncR1 = v.key1.EncR
		req.EncR2 = v.key2.EncR
		req.PK = &v.sk.PublicKey
	}
	return req
}

// Decommit reveals the query seed and consistency points. It must be called
// only after every instance's Commitment has been received; the Verifier
// does not enforce reception ordering across the transport, but calling
// VerifyInstance before Decommit fails.
func (v *Verifier) Decommit() (*DecommitRequest, error) {
	req := &DecommitRequest{Seed: v.seed}
	if v.key1 != nil {
		// The consistency test is only binding if the α's are unpredictable
		// to the prover when it answers, so they are drawn from crypto/rand —
		// never derived from the seed this very request reveals.
		var err error
		if v.dec1, v.sec1, err = v.key1.BuildDecommit(v.queries1, rand.Reader); err != nil {
			return nil, err
		}
		if v.dec2, v.sec2, err = v.key2.BuildDecommit(v.queries2, rand.Reader); err != nil {
			return nil, err
		}
		req.T1 = v.dec1.T
		req.T2 = v.dec2.T
	}
	v.decommitBuilt = true
	return req, nil
}

// VerifyInstance runs all checks for one instance: the commitment
// consistency test and the PCP tests. inputs are the instance's inputs (the
// verifier knows them; §2.1), and the commitment carries the claimed
// outputs. After Decommit the verifier's state is read-only, so instances
// may be verified concurrently — the pipeline engine's stage 4 does. A
// cancelled ctx rejects without running the checks.
func (v *Verifier) VerifyInstance(ctx context.Context, inputs []*big.Int, cm *Commitment, resp *Response) (bool, string) {
	if err := ctx.Err(); err != nil {
		return false, err.Error()
	}
	if !v.decommitBuilt {
		return false, errPhase.Error()
	}
	if v.queries1 != nil && (len(resp.R1) != len(v.queries1) || len(resp.R2) != len(v.queries2)) {
		return false, "response count mismatch"
	}
	// Consistency tests bind the revealed answers to the committed linear
	// functions.
	if v.key1 != nil {
		ok1 := v.key1.VerifyConsistency(cm.C1, v.sec1, commit.Response{Answers: resp.R1, AT: resp.T1})
		if !ok1 {
			return false, "commitment consistency test failed for oracle 1"
		}
		ok2 := v.key2.VerifyConsistency(cm.C2, v.sec2, commit.Response{Answers: resp.R2, AT: resp.T2})
		if !ok2 {
			return false, "commitment consistency test failed for oracle 2"
		}
	}
	io, err := v.Prog.IOValues(inputs, cm.Output)
	if err != nil {
		return false, fmt.Sprintf("bad io: %v", err)
	}
	res := v.queries.Decide(resp.R1, resp.R2, io)
	if !res.OK {
		return false, res.Reason
	}
	return true, ""
}
