package vc

import (
	"zaatar/internal/compiler"
	"zaatar/internal/pcp"
)

// MarshalBinary serializes the backend-dependent precomputation payload
// through the backend's pcp.PrecomputedCodec. The backend name is not part
// of the payload — bundle headers carry it (internal/store keys bundles by
// source+field+backend, exactly like the transport cache).
func (p *Precomputation) MarshalBinary() ([]byte, error) {
	return pcp.EncodePrecomputed(p.bk, p.pre)
}

// UnmarshalPrecomputation restores a Precomputation for prog under the
// named backend from a payload written by MarshalBinary. Corrupt or
// mismatched payloads return an error; callers treat that as a cache miss
// and fall back to PreprocessBackend.
func UnmarshalPrecomputation(prog *compiler.Program, backend string, data []byte) (*Precomputation, error) {
	bk, err := pcp.Lookup(backend)
	if err != nil {
		return nil, err
	}
	pre, err := pcp.DecodePrecomputed(bk, prog, data)
	if err != nil {
		return nil, err
	}
	return &Precomputation{Backend: bk.Name(), bk: bk, pre: pre}, nil
}
