package vc

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"zaatar/internal/compiler"
)

// BatchResult aggregates one batch's outcomes and measurements.
type BatchResult struct {
	Accepted []bool
	Reasons  []string
	Outputs  [][]*big.Int

	ProverTimes []ProverTimes
	// ProverWall is the wall-clock time of the prover's parallel phases for
	// the whole batch — with enough workers, close to one instance's
	// latency (§5.2, Figure 6).
	ProverWall time.Duration
	// VerifierSetup is the amortized query/key construction time.
	VerifierSetup time.Duration
	// VerifierPerInstance is the total per-instance verification time
	// across the batch (consistency + PCP checks).
	VerifierPerInstance time.Duration
}

// AllAccepted reports whether every instance verified.
func (r *BatchResult) AllAccepted() bool {
	for _, ok := range r.Accepted {
		if !ok {
			return false
		}
	}
	return len(r.Accepted) > 0
}

// RunBatch drives the full protocol for a batch of instances of one
// computation, spreading the prover's work over cfg.Workers goroutines
// (the paper's distributed prover; Figure 6).
func RunBatch(prog *compiler.Program, cfg Config, inputs [][]*big.Int) (*BatchResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("vc: empty batch")
	}
	verifier, err := NewVerifier(prog, cfg)
	if err != nil {
		return nil, err
	}
	prover, err := NewProver(prog, cfg)
	if err != nil {
		return nil, err
	}
	prover.HandleCommitRequest(verifier.Setup())

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	beta := len(inputs)
	res := &BatchResult{
		Accepted:    make([]bool, beta),
		Reasons:     make([]string, beta),
		Outputs:     make([][]*big.Int, beta),
		ProverTimes: make([]ProverTimes, beta),
	}
	commitments := make([]*Commitment, beta)
	states := make([]*InstanceState, beta)
	responses := make([]*Response, beta)

	// Phase 1 (parallel): solve, build proofs, commit.
	proverStart := time.Now()
	if err := parallelFor(beta, workers, func(i int) error {
		cm, st, err := prover.Commit(inputs[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		commitments[i], states[i] = cm, st
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 2: the verifier reveals queries only after all commitments.
	dec, err := verifier.Decommit()
	if err != nil {
		return nil, err
	}
	if err := prover.HandleDecommit(dec); err != nil {
		return nil, err
	}

	// Phase 3 (parallel): answer queries.
	if err := parallelFor(beta, workers, func(i int) error {
		r, err := prover.Respond(states[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		responses[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	res.ProverWall = time.Since(proverStart)

	// Phase 4: verification.
	vStart := time.Now()
	for i := range inputs {
		ok, reason := verifier.VerifyInstance(inputs[i], commitments[i], responses[i])
		res.Accepted[i] = ok
		res.Reasons[i] = reason
		res.Outputs[i] = commitments[i].Output
		res.ProverTimes[i] = states[i].Times
	}
	res.VerifierPerInstance = time.Since(vStart)
	res.VerifierSetup = verifier.SetupDuration()
	return res, nil
}

// parallelFor runs fn(0..n-1) over the given number of workers, returning
// the first error.
func parallelFor(n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
