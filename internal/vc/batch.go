package vc

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/obs/trace"
)

// BatchMetrics is the structured per-phase measurement record for one
// batch. The same spans are aggregated across batches in the obs registry
// (see the metric name constants); this struct is the single-batch view
// that the figures and the -stats output consume.
type BatchMetrics struct {
	// Instances is the batch size β; Workers the pool size used.
	Instances int
	Workers   int

	// Setup is the verifier's amortized query/key construction time.
	Setup time.Duration
	// Commit is the wall-clock of pipeline stage 1: solve, build proofs,
	// commit — parallel across instances, barrier at the end.
	Commit time.Duration
	// Decommit is stage 2: building and exchanging the decommit message
	// (runs only after every commitment; the soundness barrier).
	Decommit time.Duration
	// Respond is the wall-clock of stage 3: answering queries, parallel,
	// streaming finished instances into stage 4.
	Respond time.Duration
	// RespondVerify is the combined wall-clock of the overlapped stages
	// 3+4 — with the pipeline this is less than Respond + VerifyTotal.
	RespondVerify time.Duration
	// VerifyTotal is the summed per-instance verification time
	// (consistency + PCP checks) across the batch.
	VerifyTotal time.Duration
	// ProverWall spans stages 1–3: commit start to the last response —
	// with enough workers, close to one instance's latency (§5.2,
	// Figure 6).
	ProverWall time.Duration
	// Total is the whole RunBatch wall-clock.
	Total time.Duration
}

// Metric names exported to the obs registry by RunBatch, documented in
// docs/PROTOCOL.md ("Pipeline stages").
const (
	MetricBatches      = "vc.batches"   // counter: batches driven
	MetricInstances    = "vc.instances" // counter: instances proved
	MetricRejected     = "vc.rejected"  // counter: instances rejected
	MetricSpanSetup    = "vc.setup"     // histogram: verifier setup per batch
	MetricSpanCommit   = "vc.commit"    // histogram: stage-1 wall per batch
	MetricSpanDecommit = "vc.decommit"  // histogram: stage-2 wall per batch
	MetricSpanRespond  = "vc.respond"   // histogram: stage-3 wall per batch
	MetricSpanVerify   = "vc.verify"    // histogram: per-instance verification
	MetricSpanBatch    = "vc.batch"     // histogram: whole batch wall
	// MetricPhase is the labeled per-phase histogram vector: one series per
	// {phase, backend} pair, phase ∈ {setup, commit, decommit, respond,
	// verify, batch}. The unlabeled vc.* histograms above remain the
	// aggregate views.
	MetricPhase = "vc.phase"
	// MetricBackendBatches prefixes a per-backend batch counter; the full
	// series name is the prefix plus the backend name, e.g.
	// "pcp.backend.batches.sumcheck".
	MetricBackendBatches = "pcp.backend.batches."
)

// Label keys of the MetricPhase vector (see docs/PROTOCOL.md §7.1).
const (
	LabelPhase   = "phase"
	LabelBackend = "backend"
)

// BatchResult aggregates one batch's outcomes and measurements.
type BatchResult struct {
	Accepted []bool
	Reasons  []string
	Outputs  [][]*big.Int

	// ProverTimes decomposes each instance's prover cost (Figure 5).
	ProverTimes []ProverTimes
	// Metrics holds the structured per-phase measurements.
	Metrics BatchMetrics
}

// AllAccepted reports whether every instance verified.
func (r *BatchResult) AllAccepted() bool {
	for _, ok := range r.Accepted {
		if !ok {
			return false
		}
	}
	return len(r.Accepted) > 0
}

// ProverWall is a compatibility accessor for Metrics.ProverWall, the
// wall-clock time of the prover's phases for the whole batch.
func (r *BatchResult) ProverWall() time.Duration { return r.Metrics.ProverWall }

// VerifierSetup is a compatibility accessor for Metrics.Setup, the
// amortized query/key construction time.
func (r *BatchResult) VerifierSetup() time.Duration { return r.Metrics.Setup }

// VerifierPerInstance is a compatibility accessor for Metrics.VerifyTotal,
// the total per-instance verification time across the batch.
func (r *BatchResult) VerifierPerInstance() time.Duration { return r.Metrics.VerifyTotal }

// Test hooks, nil outside tests. testHookAfterCommit runs after each
// instance's commitment is produced (and may tamper with it);
// testHookPreDecommit runs at the barrier, after every commitment and
// before the decommit is built.
var (
	testHookAfterCommit func(i int, cm *Commitment)
	testHookPreDecommit func()
)

// RunBatch drives the full protocol for a batch of instances of one
// computation as a staged pipeline, spreading the prover's work over
// cfg.Workers goroutines (the paper's distributed prover; Figure 6):
//
//	stage 1  Commit          parallel, barrier (soundness: all commitments
//	                         precede the query seed)
//	stage 2  Decommit        single exchange
//	stage 3  Respond         parallel, streams each finished instance ↓
//	stage 4  VerifyInstance  parallel, overlapped with stage 3
//
// Cancelling ctx aborts promptly between per-instance steps and surfaces
// ctx.Err().
func RunBatch(ctx context.Context, prog *compiler.Program, cfg Config, inputs [][]*big.Int) (*BatchResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("vc: empty batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reg := cfg.registry()
	batchSpan := reg.StartSpan(MetricSpanBatch)
	// If the caller's context carries a trace, every phase, per-instance
	// step, and kernel call below becomes a span under one batch root.
	// With no trace attached all of this is nil no-ops (zero allocations).
	batchTr, ctx := trace.Child(ctx, "vc.batch")
	batchTr.WithArg("instances", int64(len(inputs)))
	defer batchTr.End()

	setupSpan := reg.StartSpan(MetricSpanSetup)
	setupTr, setupCtx := trace.Child(ctx, "vc.setup")
	verifier, err := NewVerifierCtx(setupCtx, prog, cfg)
	if err != nil {
		return nil, err
	}
	prover, err := NewProver(prog, cfg)
	if err != nil {
		return nil, err
	}
	if err := prover.HandleCommitRequest(verifier.Setup()); err != nil {
		return nil, err
	}
	setupTr.End()
	// The labeled per-phase view: same wall-clock numbers as the vc.* span
	// histograms, broken out by {phase, backend} for per-tenant attribution.
	phases := reg.HistogramVec(MetricPhase, LabelPhase, LabelBackend)
	backend := verifier.Backend()
	phases.With("setup", backend).Observe(setupSpan.End())

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	beta := len(inputs)
	// Small batches can't fill the pool with instance-level parallelism
	// alone; give each Commit's inner kernel the leftover workers.
	prover.SetKernelWorkers(workers / beta)
	res := &BatchResult{
		Accepted:    make([]bool, beta),
		Reasons:     make([]string, beta),
		Outputs:     make([][]*big.Int, beta),
		ProverTimes: make([]ProverTimes, beta),
		Metrics:     BatchMetrics{Instances: beta, Workers: workers, Setup: verifier.SetupDuration()},
	}
	commitments := make([]*Commitment, beta)
	states := make([]*InstanceState, beta)
	responses := make([]*Response, beta)

	// Stage 1 (parallel, barrier): solve, build proofs, commit. The barrier
	// is soundness-critical — the query seed is revealed only after every
	// instance's commitment exists (binding; §2.2).
	proverStart := time.Now()
	commitSpan := reg.StartSpan(MetricSpanCommit)
	commitTr, commitCtx := trace.Child(ctx, "vc.commit")
	defer commitTr.End()
	if err := ForEach(ctx, beta, workers, func(i int) error {
		isp, ictx := trace.Child(commitCtx, "prover.commit")
		isp.WithArg("instance", int64(i))
		defer isp.End()
		cm, st, err := prover.Commit(ictx, inputs[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		if testHookAfterCommit != nil {
			testHookAfterCommit(i, cm)
		}
		commitments[i], states[i] = cm, st
		return nil
	}); err != nil {
		return nil, err
	}
	commitTr.End()
	res.Metrics.Commit = commitSpan.End()
	phases.With("commit", backend).Observe(res.Metrics.Commit)

	// Stage 2: the verifier reveals queries only after all commitments.
	if testHookPreDecommit != nil {
		testHookPreDecommit()
	}
	decommitSpan := reg.StartSpan(MetricSpanDecommit)
	decommitTr := trace.Start(ctx, "vc.decommit")
	defer decommitTr.End()
	dec, err := verifier.Decommit()
	if err != nil {
		return nil, err
	}
	if err := prover.HandleDecommit(dec); err != nil {
		return nil, err
	}
	decommitTr.End()
	res.Metrics.Decommit = decommitSpan.End()
	phases.With("decommit", backend).Observe(res.Metrics.Decommit)

	// Stages 3+4: answer queries and verify. The pipelined path streams
	// each responded instance through a bounded channel into a parallel
	// verification stage, overlapping prover answers with verifier checks;
	// the serial path (NoPipeline) preserves the pre-pipeline behavior —
	// respond everything, then verify in one loop — as an ablation and
	// equivalence reference.
	overlapStart := time.Now()
	respondTr, respondCtx := trace.Child(ctx, "vc.respond")
	defer respondTr.End()
	respond := func(i int) error {
		isp := trace.Start(respondCtx, "prover.respond").WithArg("instance", int64(i))
		defer isp.End()
		r, err := prover.Respond(ctx, states[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		responses[i] = r
		return nil
	}
	verifyOne := func(i int) {
		vsp := trace.Start(ctx, "vc.verify").WithArg("instance", int64(i))
		defer vsp.End()
		t0 := time.Now()
		ok, reason := verifier.VerifyInstance(ctx, inputs[i], commitments[i], responses[i])
		d := time.Since(t0)
		reg.Histogram(MetricSpanVerify).Observe(d)
		phases.With("verify", backend).Observe(d)
		atomic.AddInt64((*int64)(&res.Metrics.VerifyTotal), int64(d))
		res.Accepted[i] = ok
		res.Reasons[i] = reason
		res.Outputs[i] = commitments[i].Output
	}

	if cfg.NoPipeline {
		respondSpan := reg.StartSpan(MetricSpanRespond)
		if err := ForEach(ctx, beta, workers, respond); err != nil {
			return nil, err
		}
		respondTr.End()
		res.Metrics.Respond = respondSpan.End()
		phases.With("respond", backend).Observe(res.Metrics.Respond)
		res.Metrics.ProverWall = time.Since(proverStart)
		for i := range inputs {
			verifyOne(i)
		}
	} else {
		ready := make(chan int, 2*workers)
		var vwg sync.WaitGroup
		for w := 0; w < workers; w++ {
			vwg.Add(1)
			go func() {
				defer vwg.Done()
				for i := range ready {
					if ctx.Err() != nil {
						continue // drain without verifying; the batch errors out
					}
					verifyOne(i)
				}
			}()
		}
		respondSpan := reg.StartSpan(MetricSpanRespond)
		rerr := ForEach(ctx, beta, workers, func(i int) error {
			if err := respond(i); err != nil {
				return err
			}
			select {
			case ready <- i:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		respondTr.End()
		res.Metrics.Respond = respondSpan.End()
		phases.With("respond", backend).Observe(res.Metrics.Respond)
		res.Metrics.ProverWall = time.Since(proverStart)
		close(ready)
		vwg.Wait()
		if rerr != nil {
			return nil, rerr
		}
	}
	res.Metrics.RespondVerify = time.Since(overlapStart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for i := range inputs {
		res.ProverTimes[i] = states[i].Times
	}
	res.Metrics.Total = batchSpan.End()
	phases.With("batch", backend).Observe(res.Metrics.Total)
	reg.Counter(MetricBatches).Inc()
	reg.Counter(MetricBackendBatches + verifier.Backend()).Inc()
	reg.Counter(MetricInstances).Add(int64(beta))
	for _, ok := range res.Accepted {
		if !ok {
			reg.Counter(MetricRejected).Inc()
		}
	}
	return res, nil
}
