package costmodel

import (
	"time"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

// Calibrate measures the §5.1 microbenchmark parameters on the current
// machine by timing each operation reps times (the paper uses 1000). The
// group may be nil, in which case the cryptographic parameters (e, d, h)
// are left zero — enough for PCP-only estimates.
func Calibrate(f *field.Field, group *elgamal.Group, reps int) OpCosts {
	if reps < 1 {
		reps = 1
	}
	rnd := prg.NewFromSeed([]byte("calibrate"), 0)
	var p OpCosts

	a, b := f.Rand(rnd), f.RandNonZero(rnd)

	// f: field multiplication with reduction.
	start := time.Now()
	for i := 0; i < reps; i++ {
		a = f.Mul(a, b)
	}
	p.F = seconds(start, reps)

	// f_lazy: per-term cost of a lazily-reduced inner product.
	const ipLen = 512
	va := f.RandVector(ipLen, rnd)
	vb := f.RandVector(ipLen, rnd)
	start = time.Now()
	for i := 0; i < reps/ipLen+1; i++ {
		_ = f.InnerProduct(va, vb)
	}
	p.FLazy = seconds(start, (reps/ipLen+1)*ipLen)

	// f_div: field inversion.
	divReps := reps / 20
	if divReps < 8 {
		divReps = 8
	}
	start = time.Now()
	for i := 0; i < divReps; i++ {
		b = f.Inv(b)
	}
	p.FDiv = seconds(start, divReps)

	// c: pseudorandom field element.
	start = time.Now()
	for i := 0; i < reps; i++ {
		a = f.Rand(rnd)
	}
	p.C = seconds(start, reps)

	if group != nil {
		sk, err := group.GenerateKey(rnd)
		if err != nil {
			panic("costmodel: key generation failed: " + err.Error())
		}
		cryptoReps := reps / 50
		if cryptoReps < 4 {
			cryptoReps = 4
		}
		m := f.Rand(rnd)
		start = time.Now()
		var ct elgamal.Ciphertext
		for i := 0; i < cryptoReps; i++ {
			ct, _ = sk.Encrypt(f, m, rnd)
		}
		p.E = seconds(start, cryptoReps)

		start = time.Now()
		for i := 0; i < cryptoReps; i++ {
			_ = sk.DecryptExp(ct)
		}
		p.D = seconds(start, cryptoReps)

		s := f.Rand(rnd)
		acc := group.One()
		start = time.Now()
		for i := 0; i < cryptoReps; i++ {
			acc = group.Add(acc, group.ScalarMul(ct, f, s))
		}
		p.H = seconds(start, cryptoReps)
	}
	return p
}

func seconds(start time.Time, n int) float64 {
	return time.Since(start).Seconds() / float64(n)
}
