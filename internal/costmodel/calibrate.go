package costmodel

import (
	"time"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

// Calibrate measures the §5.1 microbenchmark parameters on the current
// machine by timing each operation reps times (the paper uses 1000). The
// group may be nil, in which case the cryptographic parameters (e, d, h)
// are left zero — enough for PCP-only estimates.
func Calibrate(f *field.Field, group *elgamal.Group, reps int) OpCosts {
	if reps < 1 {
		reps = 1
	}
	rnd := prg.NewFromSeed([]byte("calibrate"), 0)
	var p OpCosts

	a, b := f.Rand(rnd), f.RandNonZero(rnd)

	// f: field multiplication with reduction.
	start := time.Now()
	for i := 0; i < reps; i++ {
		a = f.Mul(a, b)
	}
	p.F = seconds(start, reps)

	// f_lazy: per-term cost of a lazily-reduced inner product.
	const ipLen = 512
	va := f.RandVector(ipLen, rnd)
	vb := f.RandVector(ipLen, rnd)
	start = time.Now()
	for i := 0; i < reps/ipLen+1; i++ {
		_ = f.InnerProduct(va, vb)
	}
	p.FLazy = seconds(start, (reps/ipLen+1)*ipLen)

	// f_div: field inversion.
	divReps := reps / 20
	if divReps < 8 {
		divReps = 8
	}
	start = time.Now()
	for i := 0; i < divReps; i++ {
		b = f.Inv(b)
	}
	p.FDiv = seconds(start, divReps)

	// c: pseudorandom field element.
	start = time.Now()
	for i := 0; i < reps; i++ {
		a = f.Rand(rnd)
	}
	p.C = seconds(start, reps)

	if group != nil {
		sk, err := group.GenerateKey(rnd)
		if err != nil {
			panic("costmodel: key generation failed: " + err.Error())
		}
		cryptoReps := reps / 50
		if cryptoReps < 4 {
			cryptoReps = 4
		}
		m := f.Rand(rnd)
		// Warm up the fixed-base tables for G and H so E measures the
		// steady-state (table-backed) cost the protocol actually pays, not
		// the one-time table build.
		ct, _ := sk.Encrypt(f, m, rnd)
		start = time.Now()
		for i := 0; i < cryptoReps; i++ {
			ct, _ = sk.Encrypt(f, m, rnd)
		}
		p.E = seconds(start, cryptoReps)

		start = time.Now()
		for i := 0; i < cryptoReps; i++ {
			_ = sk.DecryptExp(ct)
		}
		p.D = seconds(start, cryptoReps)

		// h: amortized per-term cost of the homomorphic inner product. The
		// prover pays this through the multi-exponentiation kernel over the
		// whole proof vector, so measure the kernel over a representative
		// length and divide — not one isolated Add+ScalarMul.
		const hLen = 128
		cts := make([]elgamal.Ciphertext, hLen)
		for i := range cts {
			cts[i] = ct
		}
		ws := f.RandVector(hLen, rnd)
		hReps := cryptoReps/hLen + 1
		start = time.Now()
		for i := 0; i < hReps; i++ {
			if _, err := group.InnerProduct(cts, f, ws); err != nil {
				panic("costmodel: inner product failed: " + err.Error())
			}
		}
		p.H = seconds(start, hReps*hLen)
	}
	return p
}

func seconds(start time.Time, n int) float64 {
	return time.Since(start).Seconds() / float64(n)
}
