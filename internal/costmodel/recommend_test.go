package costmodel

import (
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
)

// TestRecommendProtocolCompiledPrograms: compiler output always keeps K₂
// small, so Zaatar wins.
func TestRecommendProtocolCompiledPrograms(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), `
		const N = 6;
		input x[N] : int16;
		output y : int64;
		y = 0;
		for i = 0 to N-1 { y = y + x[i] * x[i]; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := RecommendProtocol(prog.Ginger, prog.Quad); got != pcp.BackendZaatar {
		t.Errorf("compiled program recommended %v, want zaatar", got)
	}
}

// degenerateSystem builds §4's degenerate case: a single constraint
// evaluating a dense degree-2 polynomial (every pair of variables
// multiplied) makes Ginger's encoding the concise one.
func degenerateSystem(t *testing.T, f *field.Field, n int) (*constraint.GingerSystem, *constraint.QuadSystem) {
	t.Helper()
	one := f.One()
	var c constraint.GingerConstraint
	for i := 1; i <= n; i++ {
		for j := i; j <= n; j++ {
			c = append(c, constraint.Term{Coeff: one, A: i, B: j})
		}
	}
	c = append(c, constraint.Term{Coeff: f.Neg(one), A: n + 1})
	gs := &constraint.GingerSystem{
		NumVars: n + 1,
		Out:     []int{n + 1},
		Cons:    []constraint.GingerConstraint{c},
	}
	qs := constraint.ToQuad(f, gs)
	if qs.NumVars != gs.NumVars+n*(n+1)/2 {
		t.Fatalf("unexpected K2 accounting: %d vars", qs.NumVars)
	}
	return gs, qs
}

func TestRecommendProtocolDegenerate(t *testing.T) {
	f := field.F128()
	gs, qs := degenerateSystem(t, f, 12)
	if got := RecommendProtocol(gs, qs); got != pcp.BackendGinger {
		ug, uz := constraint.ProofVectorSizes(gs, qs)
		t.Errorf("degenerate system recommended %v (|u_g|=%d |u_z|=%d), want ginger", got, ug, uz)
	}
}

// TestRecommendBackendLayered: a pure-arithmetic program stratifies, and
// the crypto-free sum-check prover wins the three-way breakeven.
func TestRecommendBackendLayered(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), `
		input x, y : int32;
		output a : int64;
		a = (x + y) * (x - y) + x * x * y;
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := RecommendBackend(prog.Field, prog.Ginger, prog.Quad)
	if got != pcp.BackendSumcheck {
		t.Errorf("layered program recommended %v, want sumcheck", got)
	}
}

// TestRecommendBackendAdvice: comparisons need nondeterministic advice
// wires, the circuit does not stratify, and the recommendation falls back
// to the two-way commitment-lane choice.
func TestRecommendBackendAdvice(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), `
		input x, y : int32;
		output m : int32;
		m = x;
		if (y > x) { m = y; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := RecommendBackend(prog.Field, prog.Ginger, prog.Quad)
	if got != pcp.BackendZaatar {
		t.Errorf("advice-bearing program recommended %v, want zaatar fallback", got)
	}
}

func TestRecommendBackendDegenerateFallsBackToGinger(t *testing.T) {
	f := field.F128()
	gs, qs := degenerateSystem(t, f, 12)
	// The dense constraint has many unknowns, so it does not stratify and
	// the degenerate recommendation survives the generalization.
	if got := RecommendBackend(f, gs, qs); got != pcp.BackendGinger {
		t.Errorf("degenerate system recommended %v, want ginger", got)
	}
}

func TestEstimateSumcheckShape(t *testing.T) {
	prog, err := compiler.Compile(field.F128(), `
		input x : int32;
		output y : int64;
		y = x * x + 3;
	`)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := constraint.Layer(prog.Field, prog.Ginger)
	if err != nil {
		t.Fatal(err)
	}
	p := OpCosts{E: 1e-4, D: 1e-4, H: 1e-5, F: 1e-9, FLazy: 5e-10, FDiv: 1e-8, C: 1e-8}
	est := EstimateSumcheck(p, SumcheckQuantities{Stats: lc.Stats()})
	if est.ProverConstruct <= 0 || est.ProverIssue < 0 || est.VerifierPerInstance <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	// The whole point of the lane: per-instance prover cost is orders of
	// magnitude below a single ciphertext operation.
	if est.ProverTotal() >= p.H {
		t.Fatalf("sum-check prover estimate %g not below one group op %g", est.ProverTotal(), p.H)
	}
}
