package costmodel

import (
	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
)

// RecommendProtocol implements footnote 5 of §4 (the hybrid idea later
// developed by Vu et al. [57]): the degenerate computations for which
// Ginger's encoding beats Zaatar's — dense degree-2 forms where K₂
// approaches (|Z|²−|Z|)/2 — are detectable from the compiled constraint
// statistics, so the system can simply pick the encoding with the smaller
// proof vector. Programs produced by this repository's compiler always
// recommend Zaatar (the compiler materializes every product into a fresh
// variable, keeping K₂ ≤ |C|); hand-written constraint systems can tip the
// other way. The result is a pcp backend name.
func RecommendProtocol(gs *constraint.GingerSystem, qs *constraint.QuadSystem) string {
	ug, uz := constraint.ProofVectorSizes(gs, qs)
	if ug < uz {
		return pcp.BackendGinger
	}
	return pcp.BackendZaatar
}

// SumcheckQuantities holds the size parameters of the GKR/sum-check lane:
// the layered-circuit statistics, in the shape constraint.LayeredCircuit's
// Stats reports them.
type SumcheckQuantities struct {
	Stats constraint.LayerStats
}

// sumcheckProverMults counts the field multiplications of the sum-check
// prover per instance: the circuit evaluation (two per gate term) plus the
// per-layer rounds — each of the ≈2·log₂(width) rounds touches every term a
// constant number of times and folds a table of at most MaxWidth entries.
func sumcheckProverMults(st constraint.LayerStats) float64 {
	rounds := 2 * log2ceil(st.MaxWidth)
	return float64(2*st.TotalTerms) + float64(rounds)*float64(4*st.TotalTerms+st.MaxWidth)
}

// sumcheckVerifierMults counts the verifier's replay: the round-polynomial
// checks plus the wiring-MLE evaluation per layer.
func sumcheckVerifierMults(st constraint.LayerStats) float64 {
	rounds := 2 * log2ceil(st.MaxWidth)
	return float64(rounds)*8 + float64(2*log2ceil(st.MaxWidth)*st.TotalTerms)
}

func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// ProverSumcheck is the sum-check lane's per-instance prover cost: pure
// field work — no ciphertext operation appears anywhere on this lane, which
// is the entire point of the cheap-prover lane.
func ProverSumcheck(p OpCosts, q SumcheckQuantities) float64 {
	return sumcheckProverMults(q.Stats) * p.F
}

// VerifierPerInstanceSumcheck is the sum-check verifier's per-instance
// replay cost (transcript challenges priced as pseudorandom generations).
func VerifierPerInstanceSumcheck(p OpCosts, q SumcheckQuantities) float64 {
	st := q.Stats
	challenges := float64(st.Depth * (2*log2ceil(st.MaxWidth) + 2))
	return sumcheckVerifierMults(st)*p.F + challenges*p.C
}

// EstimateSumcheck groups the sum-check lane's predictions in the Figure 3
// phase shape. Verifier setup is one PRG salt draw (effectively free);
// proof construction is the circuit evaluation; issuing is the transcript
// prover.
func EstimateSumcheck(p OpCosts, q SumcheckQuantities) PhaseEstimate {
	evalCost := float64(2*q.Stats.TotalTerms) * p.F
	return PhaseEstimate{
		VerifierSetup:       p.C,
		ProverConstruct:     evalCost,
		ProverIssue:         ProverSumcheck(p, q) - evalCost,
		VerifierPerInstance: VerifierPerInstanceSumcheck(p, q),
	}
}

// cryptoFieldRatio approximates h/f from the §5.1 microbenchmarks: one
// ciphertext add-and-scalar-multiply costs on the order of 10⁴ field
// multiplications. The breakeven below only needs the order of magnitude.
const cryptoFieldRatio = 10_000

// RecommendBackend generalizes RecommendProtocol to a three-way breakeven.
// If the constraint system stratifies into a layered circuit, the
// sum-check lane is compared against the cheaper commitment lane in
// field-multiplication equivalents: the commitment lanes pay at least one
// group operation (≈cryptoFieldRatio·f) per proof-vector element per
// instance, the sum-check prover pays pure field work. Programs that do
// not stratify (nondeterministic advice from comparisons, order tests)
// fall back to the two-way recommendation.
func RecommendBackend(f *field.Field, gs *constraint.GingerSystem, qs *constraint.QuadSystem) string {
	fallback := RecommendProtocol(gs, qs)
	lc, err := constraint.Layer(f, gs)
	if err != nil {
		return fallback
	}
	ug, uz := constraint.ProofVectorSizes(gs, qs)
	u := ug
	if uz < u {
		u = uz
	}
	if sumcheckProverMults(lc.Stats()) <= float64(u)*cryptoFieldRatio {
		return pcp.BackendSumcheck
	}
	return fallback
}
