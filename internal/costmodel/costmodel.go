// Package costmodel implements the analytical cost model of Figure 3: the
// per-instance CPU cost of the prover and verifier under Zaatar and Ginger,
// as closed-form functions of microbenchmark-calibrated cryptographic and
// field-operation costs.
//
// The paper itself relies on this model in two ways, which this
// reproduction mirrors exactly (§5.1):
//
//   - Ginger's end-to-end costs at realistic input sizes are *estimated*
//     from the model ("the computations would be too expensive under
//     Ginger") with parameters estimated by microbenchmarks; and
//   - the model is validated against Zaatar's measured costs (the paper
//     found empirical CPU costs 5–15% above the model's predictions).
//
// All costs are in seconds.
package costmodel

import (
	"math"

	"zaatar/internal/pcp"
)

// OpCosts holds the microbenchmark parameters of §5.1 (seconds per
// operation).
type OpCosts struct {
	E     float64 // encrypt a field element
	D     float64 // decrypt (to the exponent group)
	H     float64 // ciphertext add plus scalar multiply
	F     float64 // field multiplication (with reduction)
	FLazy float64 // field multiplication without per-term reduction
	FDiv  float64 // field division (inversion)
	C     float64 // pseudorandomly generate a field element
}

// Quantities holds the size parameters of one computation instance.
type Quantities struct {
	T float64 // local running time of Ψ in seconds

	ZGinger int // |Z_ginger|: unbound variables in the Ginger encoding
	CGinger int // |C_ginger|
	ZZaatar int // |Z_zaatar| = |Z_ginger| + K2
	CZaatar int // |C_zaatar| = |C_ginger| + K2
	K       int // additive terms in C_ginger
	K2      int // distinct degree-2 terms in C_ginger
	NX, NY  int // |x|, |y|

	Params pcp.Params
}

// UGinger returns |u_ginger| = |Z| + |Z|².
func (q Quantities) UGinger() float64 {
	z := float64(q.ZGinger)
	return z + z*z
}

// UZaatar returns |u_zaatar| = |Z_zaatar| + |C_zaatar|.
func (q Quantities) UZaatar() float64 {
	return float64(q.ZZaatar) + float64(q.CZaatar)
}

func (q Quantities) rho() float64    { return float64(q.Params.Rho) }
func (q Quantities) rhoLin() float64 { return float64(q.Params.RhoLin) }
func (q Quantities) ell() float64    { return float64(q.Params.GingerHighOrderQueries()) }
func (q Quantities) ellP() float64   { return float64(q.Params.ZaatarQueriesPerRepetition()) }

// log2 guards against log(0).
func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// ProverConstructGinger is Figure 3's "Construct proof vector" for Ginger:
// T + f·|Z|².
func ProverConstructGinger(p OpCosts, q Quantities) float64 {
	z := float64(q.ZGinger)
	return q.T + p.F*z*z
}

// ProverConstructZaatar is T + 3f·|C_zaatar|·log²|C_zaatar|.
func ProverConstructZaatar(p OpCosts, q Quantities) float64 {
	c := float64(q.CZaatar)
	l := log2(c)
	return q.T + 3*p.F*c*l*l
}

// ProverIssueGinger is (h + (ρℓ+1)·f_lazy)·|u_ginger|: the homomorphic
// commitment evaluation plus one inner-product term per query per proof
// element (footnote 8: the response multiplications use lazy reduction).
func ProverIssueGinger(p OpCosts, q Quantities) float64 {
	return (p.H + (q.rho()*q.ell()+1)*p.FLazy) * q.UGinger()
}

// ProverIssueZaatar is (h + (ρℓ′+1)·f_lazy)·|u_zaatar|.
func ProverIssueZaatar(p OpCosts, q Quantities) float64 {
	return (p.H + (q.rho()*q.ellP()+1)*p.FLazy) * q.UZaatar()
}

// ProverGinger is Ginger's total per-instance prover cost.
func ProverGinger(p OpCosts, q Quantities) float64 {
	return ProverConstructGinger(p, q) + ProverIssueGinger(p, q)
}

// ProverZaatar is Zaatar's total per-instance prover cost.
func ProverZaatar(p OpCosts, q Quantities) float64 {
	return ProverConstructZaatar(p, q) + ProverIssueZaatar(p, q)
}

// VerifierSetupGinger is the per-batch (un-amortized) verifier query
// construction cost for Ginger: ρ·(c·|C| + f·K) computation-specific plus
// (e + 2c + ρ(2ρ_lin·c + (ℓ+1)·f))·|u| computation-oblivious.
func VerifierSetupGinger(p OpCosts, q Quantities) float64 {
	specific := q.rho() * (p.C*float64(q.CGinger) + p.F*float64(q.K))
	oblivious := (p.E + 2*p.C + q.rho()*(2*q.rhoLin()*p.C+(q.ell()+1)*p.F)) * q.UGinger()
	return specific + oblivious
}

// VerifierSetupZaatar is ρ·(c + (f_div+5f)·|C| + f·K + 3f·K₂) plus
// (e + 2c + ρ(2ρ_lin·c + ℓ′·f))·|u_zaatar|.
func VerifierSetupZaatar(p OpCosts, q Quantities) float64 {
	specific := q.rho() * (p.C + (p.FDiv+5*p.F)*float64(q.CZaatar) + p.F*float64(q.K) + 3*p.F*float64(q.K2))
	oblivious := (p.E + 2*p.C + q.rho()*(2*q.rhoLin()*p.C+q.ellP()*p.F)) * q.UZaatar()
	return specific + oblivious
}

// VerifierPerInstanceGinger is "Process responses": d + ρ(2ℓ+|x|+|y|)·f.
func VerifierPerInstanceGinger(p OpCosts, q Quantities) float64 {
	return p.D + q.rho()*(2*q.ell()+float64(q.NX)+float64(q.NY))*p.F
}

// VerifierPerInstanceZaatar is d + ρ(ℓ′+3|x|+3|y|)·f.
func VerifierPerInstanceZaatar(p OpCosts, q Quantities) float64 {
	return p.D + q.rho()*(q.ellP()+3*float64(q.NX)+3*float64(q.NY))*p.F
}

// Breakeven returns the smallest batch size β at which outsourcing wins:
// the β with β·local ≥ setup + β·perInstance, i.e. setup/(local −
// perInstance) rounded up. It returns +Inf when verification per instance
// costs more than local execution (outsourcing never pays off).
func Breakeven(setup, perInstance, local float64) float64 {
	if local <= perInstance {
		return math.Inf(1)
	}
	b := setup / (local - perInstance)
	return math.Ceil(b)
}

// BreakevenGinger computes Ginger's break-even batch size.
func BreakevenGinger(p OpCosts, q Quantities) float64 {
	return Breakeven(VerifierSetupGinger(p, q), VerifierPerInstanceGinger(p, q), q.T)
}

// BreakevenZaatar computes Zaatar's break-even batch size.
func BreakevenZaatar(p OpCosts, q Quantities) float64 {
	return Breakeven(VerifierSetupZaatar(p, q), VerifierPerInstanceZaatar(p, q), q.T)
}
