package costmodel

// PhaseEstimate groups the model's closed-form predictions (Figure 3) by
// protocol phase, in seconds, in the shape the observability layer compares
// against measured spans: setup is per-batch and amortized, the prover
// entries and the verification entry are per-instance serial CPU cost.
type PhaseEstimate struct {
	VerifierSetup       float64 // construct queries + commitment keys (per batch)
	ProverConstruct     float64 // solve + build the proof vector (per instance)
	ProverIssue         float64 // commit + answer queries (per instance)
	VerifierPerInstance float64 // process responses (per instance)
}

// ProverTotal is the model's per-instance prover cost.
func (e PhaseEstimate) ProverTotal() float64 { return e.ProverConstruct + e.ProverIssue }

// EstimateZaatar evaluates the Zaatar column of Figure 3.
func EstimateZaatar(p OpCosts, q Quantities) PhaseEstimate {
	return PhaseEstimate{
		VerifierSetup:       VerifierSetupZaatar(p, q),
		ProverConstruct:     ProverConstructZaatar(p, q),
		ProverIssue:         ProverIssueZaatar(p, q),
		VerifierPerInstance: VerifierPerInstanceZaatar(p, q),
	}
}

// EstimateGinger evaluates the Ginger column of Figure 3.
func EstimateGinger(p OpCosts, q Quantities) PhaseEstimate {
	return PhaseEstimate{
		VerifierSetup:       VerifierSetupGinger(p, q),
		ProverConstruct:     ProverConstructGinger(p, q),
		ProverIssue:         ProverIssueGinger(p, q),
		VerifierPerInstance: VerifierPerInstanceGinger(p, q),
	}
}
