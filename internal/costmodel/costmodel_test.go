package costmodel

import (
	"math"
	"testing"

	"zaatar/internal/benchprogs"
	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
)

// paperParams approximates the paper's §5.1 microbenchmark table for the
// 128-bit field (seconds).
func paperParams() OpCosts {
	return OpCosts{
		E: 65e-6, D: 170e-6, H: 91e-6,
		F: 210e-9, FLazy: 68e-9, FDiv: 2e-6, C: 160e-9,
	}
}

func quantsFromProgram(t *testing.T, b *benchprogs.Benchmark, localTime float64) Quantities {
	t.Helper()
	prog, err := compiler.Compile(b.Field, b.Source)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	return Quantities{
		T:       localTime,
		ZGinger: st.GingerVars, CGinger: st.GingerConstraints,
		ZZaatar: st.ZaatarVars, CZaatar: st.ZaatarConstraints,
		K: st.K, K2: st.K2,
		NX: prog.NumInputs(), NY: prog.NumOutputs(),
		Params: pcp.DefaultParams(),
	}
}

// TestZaatarBeatsGingerOnBenchmarks reproduces the headline comparison:
// under the paper's own cost parameters, the model predicts orders of
// magnitude lower prover cost and break-even batch size for Zaatar on every
// benchmark computation.
func TestZaatarBeatsGingerOnBenchmarks(t *testing.T) {
	p := paperParams()
	for _, b := range benchprogs.Default() {
		q := quantsFromProgram(t, b, 1e-3)
		pg, pz := ProverGinger(p, q), ProverZaatar(p, q)
		if pz >= pg {
			t.Errorf("%s: prover model: zaatar %.3g >= ginger %.3g", b.Name, pz, pg)
		}
		// At these (scaled-down) sizes the gap should already exceed 10×.
		if pg/pz < 10 {
			t.Errorf("%s: prover gap only %.1f×", b.Name, pg/pz)
		}
		bg, bz := BreakevenGinger(p, q), BreakevenZaatar(p, q)
		if !math.IsInf(bg, 1) && !math.IsInf(bz, 1) && bz >= bg {
			t.Errorf("%s: breakeven model: zaatar %g >= ginger %g", b.Name, bz, bg)
		}
	}
}

// TestDegenerateCaseFavorsGinger reproduces §4's caveat: when K2 approaches
// its maximum (every pair of variables multiplied — dense degree-2
// polynomial evaluation), Zaatar's proof vector slightly exceeds Ginger's.
func TestDegenerateCaseFavorsGinger(t *testing.T) {
	z := 100
	k2max := z * (z + 1) / 2
	q := Quantities{
		T:       1e-3,
		ZGinger: z, CGinger: z,
		ZZaatar: z + k2max, CZaatar: z + k2max,
		K: 3 * z, K2: k2max,
		NX: 4, NY: 4,
		Params: pcp.DefaultParams(),
	}
	ug, uz := q.UGinger(), q.UZaatar()
	if uz <= ug {
		t.Fatalf("degenerate case: |u_zaatar| = %g should exceed |u_ginger| = %g", uz, ug)
	}
	// §4's bound: |u_zaatar| ≤ |u_ginger|·(1 + 2/(|Z|+1)).
	bound := ug * (1 + 2/float64(z+1))
	if uz > bound+1 {
		t.Fatalf("|u_zaatar| = %g exceeds the §4 worst-case bound %g", uz, bound)
	}
}

// TestModelScaling verifies the asymptotic shapes of Figure 8: doubling the
// constraint count roughly quadruples Ginger's prover cost (quadratic) but
// only slightly more than doubles Zaatar's (n log² n).
func TestModelScaling(t *testing.T) {
	p := paperParams()
	base := Quantities{
		T: 0, ZGinger: 1000, CGinger: 1000, ZZaatar: 1200, CZaatar: 1200,
		K: 3000, K2: 200, NX: 10, NY: 10, Params: pcp.DefaultParams(),
	}
	dbl := base
	dbl.ZGinger, dbl.CGinger = 2000, 2000
	dbl.ZZaatar, dbl.CZaatar = 2400, 2400
	dbl.K, dbl.K2 = 6000, 400

	gRatio := ProverGinger(p, dbl) / ProverGinger(p, base)
	zRatio := ProverZaatar(p, dbl) / ProverZaatar(p, base)
	if gRatio < 3.5 || gRatio > 4.5 {
		t.Errorf("ginger scaling ratio %.2f, want ≈4", gRatio)
	}
	if zRatio < 1.9 || zRatio > 2.6 {
		t.Errorf("zaatar scaling ratio %.2f, want ≈2–2.4", zRatio)
	}
}

func TestBreakeven(t *testing.T) {
	if got := Breakeven(100, 1, 2); got != 100 {
		t.Errorf("Breakeven = %v, want 100", got)
	}
	if got := Breakeven(100, 3, 2); !math.IsInf(got, 1) {
		t.Errorf("Breakeven should be +Inf when verification beats local, got %v", got)
	}
	if got := Breakeven(1000, 0.5, 1); got != 2000 {
		t.Errorf("Breakeven = %v, want 2000", got)
	}
}

func TestCalibrateFieldOnly(t *testing.T) {
	p := Calibrate(field.F128(), nil, 200)
	if p.F <= 0 || p.FLazy <= 0 || p.FDiv <= 0 || p.C <= 0 {
		t.Fatalf("calibration returned non-positive field params: %+v", p)
	}
	if p.E != 0 || p.D != 0 || p.H != 0 {
		t.Fatal("crypto params should be zero without a group")
	}
	// Lazy reduction must actually be cheaper than a full multiply, and
	// inversion far more expensive.
	if p.FLazy >= p.F {
		t.Errorf("f_lazy = %v not below f = %v", p.FLazy, p.F)
	}
	if p.FDiv < 5*p.F {
		t.Errorf("f_div = %v suspiciously close to f = %v", p.FDiv, p.F)
	}
}

func TestCalibrateWithCrypto(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-bit crypto calibration in -short mode")
	}
	p := Calibrate(field.F128(), elgamal.GroupF128(), 100)
	if p.E <= 0 || p.D <= 0 || p.H <= 0 {
		t.Fatalf("crypto calibration failed: %+v", p)
	}
	// The §5.1 ordering: e, d, h are microseconds-scale, far above f.
	if p.E < 100*p.F {
		t.Errorf("e = %v not far above f = %v", p.E, p.F)
	}
}
