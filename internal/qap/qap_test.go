package qap

import (
	"math/rand"
	"testing"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/poly"
)

type testReader struct{ r *rand.Rand }

func (t testReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(t.r.Intn(256))
	}
	return len(p), nil
}

// buildSquareChain constructs the canonical system computing
// y = x^(2^k) via k squarings: wires 1..k-1 are intermediates (unbound),
// wire k is x (input), wire k+1 is y (output) after normalization.
func buildSquareChain(t *testing.T, f *field.Field, k int) (*constraint.QuadSystem, func(x uint64) []field.Element) {
	t.Helper()
	one := f.One()
	// Before normalization: wire 1 = x, wires 2..k = squares, wire k+1 = y.
	qs := &constraint.QuadSystem{
		NumVars: k + 1,
		In:      []int{1},
		Out:     []int{k + 1},
	}
	for i := 1; i <= k; i++ {
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{
			A: constraint.LinComb{{Coeff: one, Var: i}},
			B: constraint.LinComb{{Coeff: one, Var: i}},
			C: constraint.LinComb{{Coeff: one, Var: i + 1}},
		})
	}
	ns, perm := qs.Normalize()
	witness := func(x uint64) []field.Element {
		w := make([]field.Element, k+2)
		w[0] = f.One()
		cur := f.FromUint64(x)
		w[1] = cur
		for i := 2; i <= k+1; i++ {
			cur = f.Mul(cur, cur)
			w[i] = cur
		}
		return perm.ApplyToAssignment(w)
	}
	return ns, witness
}

func TestNewRequiresCanonical(t *testing.T) {
	f := field.F128()
	one := f.One()
	qs := &constraint.QuadSystem{
		NumVars: 2,
		In:      []int{1}, // input at wire 1 with an unbound wire 2: not canonical
		Cons: []constraint.QuadConstraint{{
			A: constraint.LinComb{{Coeff: one, Var: 1}},
			B: constraint.LinComb{{Coeff: one, Var: 1}},
			C: constraint.LinComb{{Coeff: one, Var: 2}},
		}},
	}
	if _, err := New(f, qs); err == nil {
		t.Fatal("New accepted a non-canonical system")
	}
	if _, err := New(f, &constraint.QuadSystem{NumVars: 1}); err == nil {
		t.Fatal("New accepted an empty system")
	}
}

func TestDivisorVanishesExactlyOnSigma(t *testing.T) {
	f := field.F128()
	qs, _ := buildSquareChain(t, f, 5)
	q, err := New(f, qs)
	if err != nil {
		t.Fatal(err)
	}
	d := q.Divisor()
	if poly.Degree(f, d) != q.NC {
		t.Fatalf("deg D = %d, want %d", poly.Degree(f, d), q.NC)
	}
	for j := 1; j <= q.NC; j++ {
		if !f.IsZero(poly.Eval(f, d, f.FromUint64(uint64(j)))) {
			t.Errorf("D(σ_%d) != 0", j)
		}
	}
	if f.IsZero(poly.Eval(f, d, f.Zero())) {
		t.Error("D(0) = 0 but σ_0 = 0 must not be a root of D")
	}
}

func TestBuildHSatisfying(t *testing.T) {
	for _, fld := range []*field.Field{field.F128(), field.F220()} {
		qs, witness := buildSquareChain(t, fld, 8)
		q, err := New(fld, qs)
		if err != nil {
			t.Fatal(err)
		}
		w := witness(3)
		if err := qs.Check(fld, w); err != nil {
			t.Fatal(err)
		}
		h, err := q.BuildH(w)
		if err != nil {
			t.Fatalf("%s: BuildH: %v", fld.Name(), err)
		}
		if len(h) != q.NC+1 {
			t.Fatalf("h has %d coefficients, want %d", len(h), q.NC+1)
		}
		// D(τ)·H(τ) == P_w(τ) at random τ.
		rng := testReader{rand.New(rand.NewSource(1))}
		for i := 0; i < 5; i++ {
			tau := fld.Rand(rng)
			lhs := fld.Mul(q.EvalD(tau), poly.Eval(fld, h, tau))
			rhs := q.EvalPw(w, tau)
			if !fld.Equal(lhs, rhs) {
				t.Fatalf("%s: D(τ)H(τ) != P_w(τ)", fld.Name())
			}
		}
	}
}

func TestBuildHRejectsBadWitness(t *testing.T) {
	f := field.F128()
	qs, witness := buildSquareChain(t, f, 8)
	q, _ := New(f, qs)
	w := witness(3)
	// Corrupt an unbound intermediate value.
	w[2] = f.Add(w[2], f.One())
	if _, err := q.BuildH(w); err == nil {
		t.Fatal("BuildH accepted a non-satisfying assignment")
	}
}

func TestBuildHRejectsMalformedAssignment(t *testing.T) {
	f := field.F128()
	qs, witness := buildSquareChain(t, f, 4)
	q, _ := New(f, qs)
	if _, err := q.BuildH(witness(2)[:3]); err == nil {
		t.Error("short assignment accepted")
	}
	w := witness(2)
	w[0] = f.FromUint64(2)
	if _, err := q.BuildH(w); err == nil {
		t.Error("assignment with w[0] != 1 accepted")
	}
}

func TestBuildHNaiveMatches(t *testing.T) {
	f := field.F128()
	qs, witness := buildSquareChain(t, f, 6)
	q, _ := New(f, qs)
	w := witness(5)
	fast, err := q.BuildH(w)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := q.BuildHNaive(w)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.Equal(f, fast, naive) {
		t.Fatal("fast and naive H differ")
	}
}

func TestQueriesMatchPolynomials(t *testing.T) {
	// BuildQueries' barycentric evaluations must equal direct evaluation of
	// the interpolated row polynomials.
	f := field.F128()
	qs, _ := buildSquareChain(t, f, 7)
	q, _ := New(f, qs)
	rng := testReader{rand.New(rand.NewSource(2))}
	tau := f.Rand(rng)
	qr, err := q.BuildQueries(tau)
	if err != nil {
		t.Fatal(err)
	}

	pts := make([]field.Element, q.NC+1)
	for j := range pts {
		pts[j] = f.FromUint64(uint64(j))
	}
	rowPoly := func(rows [][]Entry, i int) []field.Element {
		vals := make([]field.Element, q.NC+1)
		for _, e := range rows[i] {
			vals[e.J] = e.V
		}
		return poly.InterpolateNaive(f, pts, vals)
	}
	for i := 1; i <= q.NZ; i++ {
		want := poly.Eval(f, rowPoly(q.A, i), tau)
		if !f.Equal(qr.QA[i-1], want) {
			t.Fatalf("QA[%d] mismatch", i-1)
		}
	}
	for k := 0; k < len(qr.IOB); k++ {
		want := poly.Eval(f, rowPoly(q.B, q.NZ+1+k), tau)
		if !f.Equal(qr.IOB[k], want) {
			t.Fatalf("IOB[%d] mismatch", k)
		}
	}
	if !f.Equal(qr.ConstC, poly.Eval(f, rowPoly(q.C, 0), tau)) {
		t.Fatal("ConstC mismatch")
	}
	if !f.Equal(qr.DTau, q.EvalD(tau)) {
		t.Fatal("DTau mismatch")
	}
	// q_d really is the power vector.
	for j := 0; j <= q.NC; j++ {
		if !f.Equal(qr.QD[j], f.ExpUint(tau, uint64(j))) {
			t.Fatalf("QD[%d] mismatch", j)
		}
	}
}

func TestTauCollisionDetected(t *testing.T) {
	f := field.F128()
	qs, _ := buildSquareChain(t, f, 4)
	q, _ := New(f, qs)
	for _, j := range []uint64{0, 1, 4} {
		if _, err := q.BuildQueries(f.FromUint64(j)); err != ErrTauCollision {
			t.Errorf("τ = σ_%d not rejected (err=%v)", j, err)
		}
	}
	// τ = NC+1 is fine.
	if _, err := q.BuildQueries(f.FromUint64(uint64(q.NC + 1))); err != nil {
		t.Errorf("τ just past the points rejected: %v", err)
	}
}

// TestDivisibilityCheckEndToEnd exercises the core identity the PCP
// verifies: D(τ)·⟨q_d, h⟩ = (⟨q_a, z⟩ + L_a)(⟨q_b, z⟩ + L_b) − (⟨q_c, z⟩ + L_c).
func TestDivisibilityCheckEndToEnd(t *testing.T) {
	f := field.F220()
	qs, witness := buildSquareChain(t, f, 9)
	q, _ := New(f, qs)
	w := witness(7)
	h, err := q.BuildH(w)
	if err != nil {
		t.Fatal(err)
	}
	z := w[1 : q.NZ+1]
	io := w[q.NZ+1:]
	rng := testReader{rand.New(rand.NewSource(3))}
	for i := 0; i < 10; i++ {
		qr, err := q.BuildQueries(f.Rand(rng))
		if err != nil {
			continue
		}
		la, lb, lc := qr.IOTerms(f, io)
		lhs := f.Mul(qr.DTau, f.InnerProduct(qr.QD, h))
		rhs := f.Sub(
			f.Mul(f.Add(f.InnerProduct(qr.QA, z), la), f.Add(f.InnerProduct(qr.QB, z), lb)),
			f.Add(f.InnerProduct(qr.QC, z), lc))
		if !f.Equal(lhs, rhs) {
			t.Fatal("divisibility identity failed for honest prover")
		}
	}
}

// TestDivisibilityCheckCatchesWrongOutput shows the identity fails w.h.p.
// when the claimed output is wrong even though z and h come from a real
// execution of a different instance.
func TestDivisibilityCheckCatchesWrongOutput(t *testing.T) {
	f := field.F128()
	qs, witness := buildSquareChain(t, f, 9)
	q, _ := New(f, qs)
	w := witness(7)
	h, _ := q.BuildH(w)
	z := w[1 : q.NZ+1]
	io := append([]field.Element(nil), w[q.NZ+1:]...)
	io[len(io)-1] = f.Add(io[len(io)-1], f.One()) // lie about y
	rng := testReader{rand.New(rand.NewSource(4))}
	rejected := 0
	for i := 0; i < 20; i++ {
		qr, err := q.BuildQueries(f.Rand(rng))
		if err != nil {
			continue
		}
		la, lb, lc := qr.IOTerms(f, io)
		lhs := f.Mul(qr.DTau, f.InnerProduct(qr.QD, h))
		rhs := f.Sub(
			f.Mul(f.Add(f.InnerProduct(qr.QA, z), la), f.Add(f.InnerProduct(qr.QB, z), lb)),
			f.Add(f.InnerProduct(qr.QC, z), lc))
		if !f.Equal(lhs, rhs) {
			rejected++
		}
	}
	if rejected < 20 {
		t.Fatalf("wrong output detected only %d/20 times", rejected)
	}
}

func TestNNZAccounting(t *testing.T) {
	f := field.F128()
	qs, _ := buildSquareChain(t, f, 5)
	q, _ := New(f, qs)
	// Each squaring constraint has one entry in each of A, B, C.
	if q.NNZ() != 3*q.NC {
		t.Errorf("NNZ = %d, want %d", q.NNZ(), 3*q.NC)
	}
}

func BenchmarkBuildH(b *testing.B) {
	f := field.F128()
	for _, k := range []int{128, 512, 2048} {
		b.Run(sizeLabel(k), func(b *testing.B) {
			qs, witness := buildSquareChainBench(f, k)
			q, err := New(f, qs)
			if err != nil {
				b.Fatal(err)
			}
			w := witness(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.BuildH(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildHNaive(b *testing.B) {
	f := field.F128()
	for _, k := range []int{128, 512} {
		b.Run(sizeLabel(k), func(b *testing.B) {
			qs, witness := buildSquareChainBench(f, k)
			q, _ := New(f, qs)
			w := witness(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.BuildHNaive(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func buildSquareChainBench(f *field.Field, k int) (*constraint.QuadSystem, func(x uint64) []field.Element) {
	one := f.One()
	qs := &constraint.QuadSystem{NumVars: k + 1, In: []int{1}, Out: []int{k + 1}}
	for i := 1; i <= k; i++ {
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{
			A: constraint.LinComb{{Coeff: one, Var: i}},
			B: constraint.LinComb{{Coeff: one, Var: i}},
			C: constraint.LinComb{{Coeff: one, Var: i + 1}},
		})
	}
	ns, perm := qs.Normalize()
	return ns, func(x uint64) []field.Element {
		w := make([]field.Element, k+2)
		w[0] = f.One()
		cur := f.FromUint64(x)
		w[1] = cur
		for i := 2; i <= k+1; i++ {
			cur = f.Mul(cur, cur)
			w[i] = cur
		}
		return perm.ApplyToAssignment(w)
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1000:
		return "big"
	case n >= 500:
		return "mid"
	default:
		return "small"
	}
}
