package qap

import (
	"bytes"
	"testing"

	"zaatar/internal/field"
	"zaatar/internal/poly"
)

func TestQAPMarshalRoundTrip(t *testing.T) {
	f := field.FTest()
	qs, witness := buildSquareChain(t, f, 6)
	orig, err := New(f, qs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQAP(f, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NC != orig.NC || got.N != orig.N || got.NZ != orig.NZ || got.NNZ() != orig.NNZ() {
		t.Fatalf("dimensions changed: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
			got.NC, got.N, got.NZ, got.NNZ(), orig.NC, orig.N, orig.NZ, orig.NNZ())
	}

	// The decoded QAP must be behaviorally identical: same H(t) for a
	// satisfying witness, same divisor evaluations, and the fast pipeline
	// (tree interpolation + precomputed divisor) must agree with the
	// original's on fresh inputs.
	w := witness(3)
	h0, err := orig.BuildH(w)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := got.BuildH(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(h0) != len(h1) {
		t.Fatalf("H length %d vs %d", len(h1), len(h0))
	}
	for i := range h0 {
		if h0[i] != h1[i] {
			t.Fatalf("H[%d] differs after round trip", i)
		}
	}
	tau := f.FromUint64(987654)
	if got.EvalD(tau) != orig.EvalD(tau) {
		t.Fatal("D(τ) differs after round trip")
	}
	// Interpolation through the restored tree must still invert EvalMulti.
	vals := make([]field.Element, got.NC+1)
	for i := range vals {
		vals[i] = f.FromUint64(uint64(i*i + 1))
	}
	vals[0] = f.Zero()
	p := got.tree.Interpolate(vals)
	for j := 1; j <= got.NC; j++ {
		if poly.Eval(f, p, f.FromUint64(uint64(j))) != vals[j] {
			t.Fatalf("restored tree interpolation wrong at σ_%d", j)
		}
	}

	// A non-witness must still be rejected.
	bad := append([]field.Element(nil), w...)
	bad[len(bad)-1] = f.Add(bad[len(bad)-1], f.One())
	if _, err := got.BuildH(bad); err == nil {
		t.Fatal("decoded QAP accepted a non-satisfying assignment")
	}
}

func TestUnmarshalQAPRejectsCorruption(t *testing.T) {
	f := field.FTest()
	qs, _ := buildSquareChain(t, f, 4)
	orig, err := New(f, qs)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalQAP(f, blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob decoded without error")
	}
	if _, err := UnmarshalQAP(f, append(bytes.Clone(blob), 0x01)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	if _, err := UnmarshalQAP(f, nil); err == nil {
		t.Fatal("empty blob decoded without error")
	}
}
