package qap

import (
	"encoding/binary"
	"fmt"

	"zaatar/internal/field"
	"zaatar/internal/poly"
)

// Binary serialization of the full QAP encoding, so a program bundle can
// restore a prover's precomputation without re-running qap.New (whose
// subproduct-tree NTT build and divisor Newton iteration dominate vc.setup).
// Everything expensive is serialized — sparse rows, divisor coefficients,
// inverse series, tree layers; the barycentric weights are recomputed on
// load (one inversion plus O(|C|) multiplications) and the per-node divisor
// cache stays lazy.

func appendRows(dst []byte, rows [][]Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for _, e := range row {
			dst = binary.AppendUvarint(dst, uint64(e.J))
			dst = field.AppendElement(dst, e.V)
		}
	}
	return dst
}

func decodeRows(b []byte, nc int) ([][]Entry, []byte, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, nil, fmt.Errorf("qap: bad row-count prefix")
	}
	b = b[used:]
	rows := make([][]Entry, n)
	for i := range rows {
		m, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, nil, fmt.Errorf("qap: bad row length prefix")
		}
		b = b[used:]
		if m == 0 {
			continue
		}
		row := make([]Entry, m)
		for k := range row {
			j, used := binary.Uvarint(b)
			if used <= 0 {
				return nil, nil, fmt.Errorf("qap: bad entry index")
			}
			if j < 1 || j > uint64(nc) {
				return nil, nil, fmt.Errorf("qap: entry point σ_%d outside 1..%d", j, nc)
			}
			b = b[used:]
			var err error
			var v field.Element
			v, b, err = field.DecodeElement(b)
			if err != nil {
				return nil, nil, err
			}
			row[k] = Entry{J: int(j), V: v}
		}
		rows[i] = row
	}
	return rows, b, nil
}

// MarshalBinary serializes the QAP. The field itself is not encoded — the
// bundle header names it — so UnmarshalQAP takes the Field explicitly.
func (q *QAP) MarshalBinary() ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(q.NC))
	dst = binary.AppendUvarint(dst, uint64(q.N))
	dst = binary.AppendUvarint(dst, uint64(q.NZ))
	dst = binary.AppendUvarint(dst, uint64(q.nnz))
	dst = appendRows(dst, q.A)
	dst = appendRows(dst, q.B)
	dst = appendRows(dst, q.C)
	dst = field.AppendElements(dst, q.div)
	dst = q.divPre.AppendBinary(dst)
	dst = q.tree.AppendBinary(dst)
	return dst, nil
}

// UnmarshalQAP restores a QAP serialized by MarshalBinary over the given
// field. Structural inconsistencies (row counts, tree shape, trailing
// garbage) return an error; callers treat any error as a cache miss.
func UnmarshalQAP(f *field.Field, b []byte) (*QAP, error) {
	var dims [4]uint64
	for i := range dims {
		v, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, fmt.Errorf("qap: truncated header")
		}
		dims[i] = v
		b = b[used:]
	}
	q := &QAP{F: f, NC: int(dims[0]), N: int(dims[1]), NZ: int(dims[2]), nnz: int(dims[3])}
	if q.NC < 1 || q.N < 0 || q.NZ < 0 || q.NZ > q.N {
		return nil, fmt.Errorf("qap: implausible dimensions NC=%d N=%d NZ=%d", q.NC, q.N, q.NZ)
	}
	var err error
	if q.A, b, err = decodeRows(b, q.NC); err != nil {
		return nil, err
	}
	if q.B, b, err = decodeRows(b, q.NC); err != nil {
		return nil, err
	}
	if q.C, b, err = decodeRows(b, q.NC); err != nil {
		return nil, err
	}
	if len(q.A) != q.N+1 || len(q.B) != q.N+1 || len(q.C) != q.N+1 {
		return nil, fmt.Errorf("qap: row count does not match N=%d", q.N)
	}
	if q.div, b, err = field.DecodeElements(b); err != nil {
		return nil, err
	}
	if len(q.div) != q.NC+1 {
		return nil, fmt.Errorf("qap: divisor degree %d, want %d", len(q.div)-1, q.NC)
	}
	if q.divPre, b, err = poly.UnmarshalDivisor(f, b); err != nil {
		return nil, err
	}
	if q.tree, b, err = poly.UnmarshalSubproductTree(f, b); err != nil {
		return nil, err
	}
	if q.tree.Len() != q.NC+1 {
		return nil, fmt.Errorf("qap: tree over %d points, want %d", q.tree.Len(), q.NC+1)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("qap: %d trailing bytes after decode", len(b))
	}
	q.tree.SetWeights(baryWeights(f, q.NC))
	return q, nil
}
