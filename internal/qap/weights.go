package qap

import "zaatar/internal/field"

// baryWeights returns the barycentric weights v_j = 1/∏_{k≠j}(σ_j - σ_k)
// for the arithmetic-progression points σ_j = j, j = 0..nc:
//
//	1/v_j = (-1)^(nc-j) · j! · (nc-j)!
//
// computed with running factorials and a single batched inversion — the
// (f_div + 3f)·|C| cost §A.3 attributes to this step.
func baryWeights(f *field.Field, nc int) []field.Element {
	fact := make([]field.Element, nc+1)
	fact[0] = f.One()
	for j := 1; j <= nc; j++ {
		fact[j] = f.Mul(fact[j-1], f.FromUint64(uint64(j)))
	}
	w := make([]field.Element, nc+1)
	for j := 0; j <= nc; j++ {
		v := f.Mul(fact[j], fact[nc-j])
		if (nc-j)%2 == 1 {
			v = f.Neg(v)
		}
		w[j] = v
	}
	f.BatchInv(w, w)
	return w
}
