// Package qap implements the Quadratic Arithmetic Program encoding of
// quadratic-form constraints, the core of Zaatar's linear PCP (§3 and
// Appendix A.1 of the paper; Gennaro et al. [27]).
//
// Given a constraint set C over variables W = (X, Y, Z) in canonical order
// (unbound variables Z at wires 1..n′, then inputs and outputs; wire 0 is
// the constant 1), the QAP assigns each constraint j a distinguished point
// σ_j and defines degree-|C| polynomials A_i, B_i, C_i per variable row by
// interpolation:
//
//	A_i(σ_j) = a_{i,j}   (coefficient of W_i in pA of constraint j)
//	A_i(0)   = 0
//
// and the divisor polynomial D(t) = ∏ (t - σ_j). Claim A.1: D(t) divides
//
//	P_w(t) = (Σ w_i·A_i(t)) · (Σ w_i·B_i(t)) - (Σ w_i·C_i(t))
//
// iff w satisfies the constraints. The prover materializes H(t) = P_w/D;
// the verifier checks the factorization at a random point τ.
//
// Following §A.3 the interpolation points are the arithmetic progression
// σ_j = j, which makes the barycentric weights computable with one field
// inversion plus O(|C|) multiplications.
package qap

import (
	"errors"
	"fmt"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/poly"
)

// Entry is a non-zero evaluation a_{i,j} of a row polynomial at σ_j.
type Entry struct {
	J int // constraint index, 1-based (σ_j = j)
	V field.Element
}

// QAP is the polynomial encoding of one constraint system. It is immutable
// after construction and safe for concurrent use by a batch of prover
// workers.
type QAP struct {
	F  *field.Field
	NC int // |C|, number of constraints
	N  int // number of variables (wires 1..N)
	NZ int // n′, number of unbound variables (wires 1..NZ)

	// Sparse rows: rows[i] lists the non-zero evaluations of row i's
	// polynomial, for i in 0..N (0 is the constant row).
	A, B, C [][]Entry

	nnz    int                  // total non-zero entries (≤ K + 3K2, §A.3)
	tree   *poly.SubproductTree // over points 0, 1, ..., NC
	div    []field.Element      // D(t) coefficients
	divPre *poly.Divisor        // D with precomputed inverse series
}

// New builds the QAP for a canonical quadratic-form system.
func New(f *field.Field, qs *constraint.QuadSystem) (*QAP, error) {
	if !qs.IsCanonical() {
		return nil, errors.New("qap: constraint system is not in canonical wire order (call Normalize)")
	}
	if qs.NumConstraints() == 0 {
		return nil, errors.New("qap: empty constraint system")
	}
	q := &QAP{
		F:  f,
		NC: qs.NumConstraints(),
		N:  qs.NumVars,
		NZ: qs.NumUnbound(),
		A:  make([][]Entry, qs.NumVars+1),
		B:  make([][]Entry, qs.NumVars+1),
		C:  make([][]Entry, qs.NumVars+1),
	}
	add := func(rows [][]Entry, lc constraint.LinComb, j int) {
		// Sum repeated variables within one linear combination.
		for _, t := range lc {
			if f.IsZero(t.Coeff) {
				continue
			}
			row := rows[t.Var]
			if n := len(row); n > 0 && row[n-1].J == j {
				row[n-1].V = f.Add(row[n-1].V, t.Coeff)
				if f.IsZero(row[n-1].V) {
					row = row[:n-1]
					q.nnz--
				}
				rows[t.Var] = row
				continue
			}
			rows[t.Var] = append(row, Entry{J: j, V: t.Coeff})
			q.nnz++
		}
	}
	for idx, c := range qs.Cons {
		j := idx + 1 // σ_j = j, non-zero as required by §A.1
		add(q.A, c.A, j)
		add(q.B, c.B, j)
		add(q.C, c.C, j)
	}

	// Interpolation points 0..NC (σ_0 = 0 carries the A_i(0) = 0 condition).
	pts := make([]field.Element, q.NC+1)
	for j := 0; j <= q.NC; j++ {
		pts[j] = f.FromUint64(uint64(j))
	}
	q.tree = poly.NewSubproductTree(f, pts)
	q.tree.SetWeights(baryWeights(f, q.NC))
	q.div = poly.ZeroPoly(f, pts[1:])
	q.divPre = poly.NewDivisor(f, q.div, q.NC+1)
	return q, nil
}

// NNZ returns the number of non-zero row-polynomial evaluations; the
// verifier's query construction performs one multiplication per entry
// (the K + 3K₂ term of Figure 3).
func (q *QAP) NNZ() int { return q.nnz }

// Divisor returns the coefficients of D(t).
func (q *QAP) Divisor() []field.Element { return q.div }

// EvalD evaluates D(τ).
func (q *QAP) EvalD(tau field.Element) field.Element {
	return poly.Eval(q.F, q.div, tau)
}

// aggregate computes the evaluations (Σ_i w_i·rows[i](σ_j)) for j = 0..NC.
// The value at σ_0 = 0 is zero by construction.
func (q *QAP) aggregate(rows [][]Entry, w []field.Element) []field.Element {
	f := q.F
	vals := make([]field.Element, q.NC+1)
	for i, row := range rows {
		wi := w[i]
		if f.IsZero(wi) {
			continue
		}
		for _, e := range row {
			vals[e.J] = f.Add(vals[e.J], f.Mul(wi, e.V))
		}
	}
	return vals
}

// BuildH computes the coefficient vector h = (h_0, ..., h_|C|) of
// H(t) = P_w(t)/D(t) for a full assignment w (indexed by wire, w[0] = 1).
// This is the prover's §A.3 pipeline: three interpolations, one product,
// one division — ≈ 3·f·|C|·log²|C|. It returns an error if D does not
// divide P_w, i.e. if w is not a satisfying assignment.
func (q *QAP) BuildH(w []field.Element) ([]field.Element, error) {
	f := q.F
	if len(w) != q.N+1 {
		return nil, fmt.Errorf("qap: assignment has %d entries, want %d", len(w), q.N+1)
	}
	if !f.IsOne(w[0]) {
		return nil, errors.New("qap: w[0] must be 1")
	}
	aw := q.tree.Interpolate(q.aggregate(q.A, w))
	bw := q.tree.Interpolate(q.aggregate(q.B, w))
	cw := q.tree.Interpolate(q.aggregate(q.C, w))
	pw := poly.Sub(f, poly.Mul(f, aw, bw), cw)
	h, r := q.divPre.DivRem(f, pw)
	if poly.Degree(f, r) != -1 {
		return nil, errors.New("qap: assignment does not satisfy the constraints (D ∤ P_w)")
	}
	out := make([]field.Element, q.NC+1)
	copy(out, h)
	return out, nil
}

// BuildHNaive is BuildH with O(n²) Lagrange interpolation and schoolbook
// multiplication/division — the ablation baseline showing why the prover
// needs the FFT-based pipeline.
func (q *QAP) BuildHNaive(w []field.Element) ([]field.Element, error) {
	f := q.F
	pts := make([]field.Element, q.NC+1)
	for j := 0; j <= q.NC; j++ {
		pts[j] = f.FromUint64(uint64(j))
	}
	aw := poly.InterpolateNaive(f, pts, q.aggregate(q.A, w))
	bw := poly.InterpolateNaive(f, pts, q.aggregate(q.B, w))
	cw := poly.InterpolateNaive(f, pts, q.aggregate(q.C, w))
	pw := poly.Sub(f, poly.MulNaive(f, aw, bw), cw)
	h, r := poly.DivRemNaive(f, pw, q.div)
	if poly.Degree(f, r) != -1 {
		return nil, errors.New("qap: assignment does not satisfy the constraints (D ∤ P_w)")
	}
	out := make([]field.Element, q.NC+1)
	copy(out, h)
	return out, nil
}

// EvalPw evaluates P_w(τ) directly from the definition; used by tests.
func (q *QAP) EvalPw(w []field.Element, tau field.Element) field.Element {
	f := q.F
	a := poly.Eval(f, q.tree.Interpolate(q.aggregate(q.A, w)), tau)
	b := poly.Eval(f, q.tree.Interpolate(q.aggregate(q.B, w)), tau)
	c := poly.Eval(f, q.tree.Interpolate(q.aggregate(q.C, w)), tau)
	return f.Sub(f.Mul(a, b), c)
}
