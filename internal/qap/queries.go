package qap

import (
	"errors"

	"zaatar/internal/field"
)

// Queries holds everything the verifier derives from one random point τ:
// the divisibility-correction query vectors over the unbound variables
// (q_a, q_b, q_c of Figure 10), the power query q_d for the H oracle, the
// per-input/output row evaluations used to form L_a, L_b, L_c, and D(τ).
type Queries struct {
	Tau field.Element

	// QA[i-1] = A_i(τ) for unbound wires i = 1..NZ; likewise QB, QC.
	QA, QB, QC []field.Element
	// IOA[k] = A_{NZ+1+k}(τ) for the bound (input/output) wires; V dots
	// these with the instance's x, y values — the 3·(|x|+|y|) per-instance
	// multiplications of Figure 3.
	IOA, IOB, IOC []field.Element
	// ConstA = A_0(τ), the constant row's contribution.
	ConstA, ConstB, ConstC field.Element
	// QD = (1, τ, τ², ..., τ^|C|), the query to the H oracle.
	QD []field.Element
	// DTau = D(τ).
	DTau field.Element
}

// ErrTauCollision is returned when τ coincides with an interpolation point
// σ_j, which would make the barycentric weights undefined. Callers draw a
// fresh τ; the probability is |C|/|F|.
var ErrTauCollision = errors.New("qap: τ collides with an interpolation point, redraw")

// BuildQueries evaluates every row polynomial at τ using barycentric
// Lagrange interpolation over the arithmetic-progression points (§A.3):
// one field inversion, O(|C|) multiplications for the weights, then one
// multiplication per non-zero matrix entry (≤ K + 3K₂ total).
func (q *QAP) BuildQueries(tau field.Element) (*Queries, error) {
	f := q.F
	nc := q.NC

	// diffs[j] = τ - σ_j for j = 0..NC; reject τ equal to any σ_j.
	diffs := make([]field.Element, nc+1)
	for j := 0; j <= nc; j++ {
		diffs[j] = f.Sub(tau, f.FromUint64(uint64(j)))
		if f.IsZero(diffs[j]) {
			return nil, ErrTauCollision
		}
	}

	// ℓ(τ) = ∏_j (τ - σ_j); D(τ) = ℓ(τ)/ (τ - σ_0) = ℓ(τ)/τ.
	ell := f.One()
	for _, d := range diffs {
		ell = f.Mul(ell, d)
	}

	// Barycentric weights v_j for σ_j = 0..NC (factorial closed form plus
	// one batched inversion — the (f_div + …)·|C| term of Figure 3), then
	// λ_j = ℓ(τ)·v_j/(τ - σ_j) with the (τ - σ_j) inverted in one batch too.
	v := baryWeights(f, nc)
	invDiff := make([]field.Element, nc+1)
	copy(invDiff, diffs)
	f.BatchInv(invDiff, invDiff)
	lambda := make([]field.Element, nc+1)
	for j := range lambda {
		lambda[j] = f.Mul(ell, f.Mul(v[j], invDiff[j]))
	}

	evalRows := func(rows [][]Entry) []field.Element {
		out := make([]field.Element, len(rows))
		for i, row := range rows {
			acc := f.Zero()
			for _, e := range row {
				acc = f.Add(acc, f.Mul(e.V, lambda[e.J]))
			}
			out[i] = acc
		}
		return out
	}
	evalA := evalRows(q.A)
	evalB := evalRows(q.B)
	evalC := evalRows(q.C)

	qd := make([]field.Element, nc+1)
	qd[0] = f.One()
	for j := 1; j <= nc; j++ {
		qd[j] = f.Mul(qd[j-1], tau)
	}

	dTau := f.Mul(ell, f.Inv(diffs[0]))

	return &Queries{
		Tau:    tau,
		QA:     evalA[1 : q.NZ+1],
		QB:     evalB[1 : q.NZ+1],
		QC:     evalC[1 : q.NZ+1],
		IOA:    evalA[q.NZ+1:],
		IOB:    evalB[q.NZ+1:],
		IOC:    evalC[q.NZ+1:],
		ConstA: evalA[0],
		ConstB: evalB[0],
		ConstC: evalC[0],
		QD:     qd,
		DTau:   dTau,
	}, nil
}

// IOTerms computes the instance-specific constants L_a, L_b, L_c of §3:
// the contribution of the constant row plus the bound input/output wires,
// whose values io must be given in wire order (inputs then outputs).
func (qr *Queries) IOTerms(f *field.Field, io []field.Element) (la, lb, lc field.Element) {
	if len(io) != len(qr.IOA) {
		panic("qap: IOTerms called with wrong number of input/output values")
	}
	la, lb, lc = qr.ConstA, qr.ConstB, qr.ConstC
	for k := range io {
		la = f.Add(la, f.Mul(io[k], qr.IOA[k]))
		lb = f.Add(lb, f.Mul(io[k], qr.IOB[k]))
		lc = f.Add(lc, f.Mul(io[k], qr.IOC[k]))
	}
	return la, lb, lc
}
