package qap

import (
	"math/rand"
	"testing"

	"zaatar/internal/constraint"
	"zaatar/internal/field"
	"zaatar/internal/poly"
)

// randQuadSystem builds a random satisfiable canonical quadratic-form
// system by drawing an assignment and deriving each constraint's pC from
// random pA, pB.
func randQuadSystem(f *field.Field, rng *rand.Rand, nVars, nCons int) (*constraint.QuadSystem, []field.Element) {
	w := make([]field.Element, nVars+1)
	w[0] = f.One()
	for i := 1; i <= nVars; i++ {
		w[i] = f.FromInt64(int64(rng.Intn(200) - 100))
	}
	nIn, nOut := 1, 1
	qs := &constraint.QuadSystem{NumVars: nVars}
	nz := nVars - nIn - nOut
	qs.In = []int{nz + 1}
	qs.Out = []int{nz + 2}

	randLC := func(maxTerms int) constraint.LinComb {
		var lc constraint.LinComb
		for t := 0; t < 1+rng.Intn(maxTerms); t++ {
			lc = append(lc, constraint.LinTerm{
				Coeff: f.FromInt64(int64(rng.Intn(9) - 4)),
				Var:   rng.Intn(nVars + 1),
			})
		}
		return lc
	}
	for j := 0; j < nCons; j++ {
		a := randLC(3)
		b := randLC(3)
		prod := f.Mul(a.Eval(f, w), b.Eval(f, w))
		// pC = prod as (constant) + correction through a random wire.
		v := rng.Intn(nVars + 1)
		coeff := f.FromInt64(int64(1 + rng.Intn(5)))
		cons := f.Sub(prod, f.Mul(coeff, w[v]))
		c := constraint.LinComb{
			{Coeff: coeff, Var: v},
			{Coeff: cons, Var: 0},
		}
		qs.Cons = append(qs.Cons, constraint.QuadConstraint{A: a, B: b, C: c})
	}
	return qs, w
}

// TestQAPSoundnessRandom: over random systems, BuildH succeeds exactly on
// satisfying assignments, and the divisibility identity holds at random τ.
func TestQAPSoundnessRandom(t *testing.T) {
	f := field.F128()
	rng := rand.New(rand.NewSource(99))
	rdr := testReader{rand.New(rand.NewSource(100))}
	for trial := 0; trial < 40; trial++ {
		nVars := 4 + rng.Intn(12)
		nCons := 1 + rng.Intn(10)
		qs, w := randQuadSystem(f, rng, nVars, nCons)
		if err := qs.Check(f, w); err != nil {
			t.Fatalf("trial %d: generator bug: %v", trial, err)
		}
		q, err := New(f, qs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		h, err := q.BuildH(w)
		if err != nil {
			t.Fatalf("trial %d: BuildH on satisfying assignment: %v", trial, err)
		}
		// Identity at a random point.
		tau := f.Rand(rdr)
		lhs := f.Mul(q.EvalD(tau), poly.Eval(f, h, tau))
		if !f.Equal(lhs, q.EvalPw(w, tau)) {
			t.Fatalf("trial %d: D·H != P_w", trial)
		}
		// Corrupt a wire that appears in some constraint: BuildH must fail
		// (D no longer divides P_w) unless the corruption happens to keep
		// every constraint satisfied, which random coefficients make
		// negligible.
		bad := append([]field.Element(nil), w...)
		wire := 1 + rng.Intn(nVars)
		bad[wire] = f.Add(bad[wire], f.One())
		if qs.Check(f, bad) == nil {
			continue // corruption invisible to the system; skip
		}
		if _, err := q.BuildH(bad); err == nil {
			t.Fatalf("trial %d: BuildH accepted a non-satisfying assignment", trial)
		}
	}
}

// TestQueriesConsistentAcrossTau: for a fixed satisfying assignment the
// full check passes at many independent τ draws (completeness is
// deterministic, not probabilistic — Lemma A.2).
func TestQueriesConsistentAcrossTau(t *testing.T) {
	f := field.F220()
	rng := rand.New(rand.NewSource(101))
	rdr := testReader{rand.New(rand.NewSource(102))}
	qs, w := randQuadSystem(f, rng, 10, 8)
	q, err := New(f, qs)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.BuildH(w)
	if err != nil {
		t.Fatal(err)
	}
	z := w[1 : q.NZ+1]
	io := w[q.NZ+1:]
	passes := 0
	for i := 0; i < 25; i++ {
		qr, err := q.BuildQueries(f.Rand(rdr))
		if err != nil {
			continue
		}
		la, lb, lc := qr.IOTerms(f, io)
		lhs := f.Mul(qr.DTau, f.InnerProduct(qr.QD, h))
		rhs := f.Sub(
			f.Mul(f.Add(f.InnerProduct(qr.QA, z), la), f.Add(f.InnerProduct(qr.QB, z), lb)),
			f.Add(f.InnerProduct(qr.QC, z), lc))
		if !f.Equal(lhs, rhs) {
			t.Fatalf("draw %d: completeness violated", i)
		}
		passes++
	}
	if passes < 20 {
		t.Fatalf("too many τ collisions: only %d/25 draws usable", passes)
	}
}
