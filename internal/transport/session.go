package transport

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"net"
	"strings"
	"sync"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// ClientOptions configures the verifier side of a session.
type ClientOptions struct {
	// Seed fixes the verifier's randomness; empty draws fresh randomness.
	// Under v2 keep-alive every batch after the first reseeds with a
	// counter appended to this value (or fresh randomness when empty), so a
	// fixed seed still yields deterministic — but per-batch distinct —
	// queries.
	Seed []byte
	// Group overrides the ElGamal group (tests with non-production fields).
	Group *elgamal.Group
	// Workers is the verifier's parallelism over per-instance checks;
	// 0 or 1 verifies serially.
	Workers int
	// IOTimeout, when positive, is the per-message read/write deadline on
	// every prover connection.
	IOTimeout time.Duration
	// Program, when non-nil, is the already-compiled program for
	// hello.Source over hello's field, letting a caller that compiled the
	// source to pick its backend offer (see zaatar.WithBackend's auto
	// mode) skip the second compilation. It must match the hello.
	Program *compiler.Program
	// Redial, when non-nil, opens a replacement connection to prover i
	// after a hash-first (v3) hello is rejected by a pre-v3 server — such a
	// server answers with its own version in the error ack and closes the
	// connection, so the downgrade retry (full source, the server's
	// version) needs a fresh one. With Redial nil the session fails with
	// the server's rejection instead of downgrading. zaatar.Dial wires this
	// automatically.
	Redial func(ctx context.Context, i int) (net.Conn, error)
	// Addrs, when non-empty, names the prover behind each connection
	// (index-aligned with the conns given to NewSession). The names label
	// leg failures (*FarmError.Addr) so a caller can tell which worker
	// died; legs beyond the list fall back to the connection's remote
	// address. zaatar.Dial and zaatar.DialFarm fill this in.
	Addrs []string
	// Obs receives the client's counters and spans; nil uses
	// obs.Default().
	Obs *obs.Registry
	// Logger receives structured records for the session lifecycle and each
	// batch, carrying backend/program_hash attributes plus trace correlation
	// when the caller's context carries a trace. Nil disables logging.
	Logger *slog.Logger
}

func (o ClientOptions) registry() *obs.Registry {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Default()
}

// sessionLeg is the verifier's state for one prover connection.
type sessionLeg struct {
	conn    net.Conn
	cc      *timedCodec
	version int
	addr    string // worker name for failure attribution
	idx     int    // position within Session.legs
	// mu serializes the wire exchange of one shard on this leg when the
	// farm drives legs independently (RunBatch instead holds Session.mu and
	// touches every leg from one goroutine).
	mu sync.Mutex
	// per-batch scratch
	chunk [][]*big.Int
	cms   []*vc.Commitment
	resps []*vc.Response
}

// Session is the verifier side of a (possibly distributed) prover session.
// NewSession negotiates the wire version and compiles the verifier state
// once; each RunBatch then proves and verifies one batch. Under wire v2 the
// connection, the client- and server-side compilations, and the prover's
// QAP precomputation all carry over between batches — the paper's batching
// amortization (§5.2) extended across batches. The query seed and the
// commitment key are per-batch: each decommit reveals a consistency point
// over the key's secret vector r, so the key cannot soundly outlive its
// batch. A session is not safe for concurrent use; RunBatch calls are
// serialized internally.
type Session struct {
	mu       sync.Mutex
	hello    Hello
	opts     ClientOptions
	reg      *obs.Registry
	prog     *compiler.Program
	verifier *vc.Verifier
	legs     []*sessionLeg
	version  int    // min negotiated version across legs
	backend  string // negotiated proof backend (identical across legs)
	tc       *trace.Ctx
	sessTr   *trace.Span
	obsSpan  obs.Span
	log      *slog.Logger
	batches  int
	closed   bool
	multi    bool // more than one prover connection: leg errors carry worker attribution
}

// NewSession opens a verifier session over the given prover connections:
// it validates and sends the hello (offering wire v2 unless hello.Version
// pins an older dialect), collects the acks, and builds the verifier's
// query and commitment-key state. The context bounds only the handshake;
// the session itself lives until Close.
func NewSession(ctx context.Context, conns []net.Conn, hello Hello, opts ClientOptions) (s *Session, err error) {
	if len(conns) == 0 {
		return nil, errors.New("transport: no prover connections")
	}
	if hello.Version == 0 {
		hello.Version = MaxProtocolVersion
	}
	// Hash-first under v3: stamp the digest, and — when Redial makes the
	// downgrade retry possible — omit the source from the wire copies sent
	// below, so it leaves this process only if a server asks. Without
	// Redial the source rides along: a pre-v3 server that rejects the
	// hash-first form closes the connection, and recovery needs a fresh
	// one. An empty source is left alone so validation rejects it as
	// malformed.
	hashFirst := false
	if hello.version() >= ProtocolV3 && strings.TrimSpace(hello.Source) != "" {
		sum := sha256.Sum256([]byte(hello.Source))
		hello.SourceHash = sum[:]
		hashFirst = opts.Redial != nil
	}
	if err := hello.validate(0); err != nil {
		return nil, err
	}
	reg := opts.registry()
	reg.Counter(MetricClientSessions).Inc()

	// Root the session's trace (if the caller attached one) and stamp its
	// identifiers into the hello so the provers' spans join this trace.
	sessTr, tctx := trace.Child(ctx, "transport.session")
	sessTr.WithArg("provers", int64(len(conns)))
	tc := trace.FromContext(tctx)
	hello.Trace = tc.TraceID()
	hello.TraceParent = tc.SpanID()

	sess := &Session{
		hello:   hello,
		opts:    opts,
		reg:     reg,
		multi:   len(conns) > 1,
		version: MaxProtocolVersion,
		tc:      tc,
		sessTr:  sessTr,
		obsSpan: reg.StartSpan(MetricSpanClient),
		log:     obs.OrNop(opts.Logger).With(LabelProgramHash, ProgramHash(hello.Source)),
	}
	s = sess
	defer func() {
		if err != nil {
			err = ctxErr(ctx, err)
			sess.finish()
			s = nil
		}
	}()
	for _, conn := range conns {
		defer watch(ctx, conn)()
	}

	if opts.Program != nil {
		s.prog = opts.Program
	} else {
		compileTr := trace.Start(tctx, "verifier.compile")
		s.prog, err = compiler.Compile(hello.fieldOf(), hello.Source)
		compileTr.End()
		if err != nil {
			return nil, err
		}
	}

	// Legacy fallback for servers that predate backend negotiation: they
	// derive the backend from the Ginger bool, so the client assumes the
	// same derivation when the ack carries no pick.
	legacyBackend := pcp.BackendZaatar
	if hello.Ginger {
		legacyBackend = pcp.BackendGinger
	}
	offered := hello.offered()

	helloTr := trace.Start(tctx, "wire.hello_exchange")
	for i, conn := range conns {
		addr := ""
		if i < len(opts.Addrs) {
			addr = opts.Addrs[i]
		} else if ra := conn.RemoteAddr(); ra != nil {
			addr = ra.String()
		}
		leg := &sessionLeg{conn: conn, cc: newTimedCodec(conn, opts.IOTimeout), addr: addr, idx: i}
		wire := hello
		if hashFirst {
			wire.Source = ""
		}
		if err := leg.cc.send(wire); err != nil {
			helloTr.End()
			s.legs = append(s.legs, leg)
			return nil, s.legError(len(s.legs)-1, err)
		}
		s.legs = append(s.legs, leg)
	}
	// Per-leg ack processing runs concurrently: under v3 a prover that
	// misses the program asks this leg for an upload (or, pre-v3, rejects
	// and gets a downgrade redial), and when several legs reach one server
	// the singleflight build winner — the only leg asked to upload — may be
	// any of them. Serial processing would deadlock waiting on the wrong
	// leg. Redialed connections get their own ctx watcher for the rest of
	// the handshake, stopped when NewSession returns like the originals'.
	acks := make([]HelloAck, len(s.legs))
	legErrs := make([]error, len(s.legs))
	stops := make([]func() bool, len(s.legs))
	defer func() {
		for _, stop := range stops {
			if stop != nil {
				stop()
			}
		}
	}()
	var hsWG sync.WaitGroup
	for i := range s.legs {
		hsWG.Add(1)
		go func(i int) {
			defer hsWG.Done()
			acks[i], stops[i], legErrs[i] = s.handshakeLeg(ctx, i, s.legs[i], hello, hashFirst)
		}(i)
	}
	hsWG.Wait()
	for i, err := range legErrs {
		if err != nil {
			helloTr.End()
			return nil, s.legError(i, err)
		}
	}
	for i, leg := range s.legs {
		ack := acks[i]
		leg.version = ack.Version
		if leg.version == 0 {
			leg.version = ProtocolV1 // pre-versioning server
		}
		if leg.version > hello.Version {
			helloTr.End()
			return nil, &ProtocolVersionError{Version: leg.version, Max: hello.Version}
		}
		if ack.NumInputs != s.prog.NumInputs() || ack.NumOutputs != s.prog.NumOutputs() {
			helloTr.End()
			return nil, errors.New("transport: prover disagrees on the io shape")
		}
		if leg.version < s.version {
			s.version = leg.version
		}
		picked := ack.Backend
		if picked == "" {
			picked = legacyBackend
		}
		if !slicesContains(offered, picked) {
			helloTr.End()
			return nil, fmt.Errorf("%w: server picked %q, offered %v", ErrNoCommonBackend, picked, offered)
		}
		switch s.backend {
		case "":
			s.backend = picked
		case picked:
		default:
			helloTr.End()
			return nil, fmt.Errorf("%w: provers disagree (%q vs %q); a distributed batch needs one backend",
				ErrNoCommonBackend, s.backend, picked)
		}
	}
	helloTr.End()

	// The verifier is built only now: its query state (and whether it
	// generates commitment keys at all) depends on the negotiated backend.
	cfg := hello.config(0, opts.Seed, s.backend)
	cfg.Group = opts.Group
	cfg.Obs = opts.Obs
	setupTr, setupCtx := trace.Child(tctx, "vc.setup")
	s.verifier, err = vc.NewVerifierCtx(setupCtx, s.prog, cfg)
	setupTr.End()
	if err != nil {
		return nil, err
	}
	reg.CounterVec(MetricClientSessions, LabelBackend).With(s.backend).Inc()
	s.log = s.log.With(LabelBackend, s.backend)
	s.log.InfoContext(tctx, "session negotiated", "version", s.version, "provers", int64(len(conns)))
	return s, nil
}

// handshakeLeg completes one prover's hello exchange: take the ack, answer
// a SourceNeeded with the program source, and — when a pre-v3 server
// rejected the hash-first hello — redial and retry with the full source at
// the server's version. Returns the definitive ack, plus the stop func of
// the replacement connection's ctx watcher (nil without a redial).
func (s *Session) handshakeLeg(ctx context.Context, i int, leg *sessionLeg, hello Hello, hashFirst bool) (HelloAck, func() bool, error) {
	var ack HelloAck
	rerr := leg.cc.recv(&ack)
	if rerr == nil && ack.SourceNeeded {
		// This prover holds the program in neither its memory cache nor its
		// artifact store: upload the source the hello hashed.
		if err := leg.cc.send(SourceMsg{Source: hello.Source}); err != nil {
			return ack, nil, err
		}
		ack = HelloAck{}
		if err := leg.cc.recv(&ack); err != nil {
			return ack, nil, err
		}
	}
	// A pre-v3 server cannot open a hash-first session: a versioned one
	// rejects the unknown version in an error ack reporting the highest
	// version it speaks; a pre-versioning one fails on the empty source,
	// possibly dropping the connection without a decodable ack. Either way
	// the connection is done — redial and retry with the full source at the
	// server's version (v2 on a drop: a pre-versioning server ignores the
	// field, anything newer would have acked properly).
	downgrade := hashFirst &&
		((rerr != nil && ctx.Err() == nil) || (rerr == nil && ack.Err != "" && ack.Version < ProtocolV3))
	if rerr != nil && !downgrade {
		return ack, nil, rerr
	}
	var stop func() bool
	if downgrade {
		conn, derr := s.opts.Redial(ctx, i)
		if derr != nil {
			return ack, nil, fmt.Errorf("transport: redial for wire downgrade: %w (hash-first hello failed: %v%s)",
				derr, rerr, ack.Err)
		}
		stop = watch(ctx, conn)
		_ = leg.conn.Close()
		leg.conn, leg.cc = conn, newTimedCodec(conn, s.opts.IOTimeout)
		retry := hello
		retry.SourceHash = nil
		retry.Version = ack.Version
		if retry.Version == 0 {
			retry.Version = ProtocolV2 // let the reply negotiate lower
		}
		if err := leg.cc.send(retry); err != nil {
			return ack, stop, err
		}
		ack = HelloAck{}
		if err := leg.cc.recv(&ack); err != nil {
			return ack, stop, err
		}
	}
	if ack.Err != "" {
		return ack, stop, &RemoteError{Phase: "hello", Msg: ack.Err}
	}
	return ack, stop, nil
}

func slicesContains(list []string, want string) bool {
	for _, v := range list {
		if v == want {
			return true
		}
	}
	return false
}

// WireVersion reports the wire protocol version negotiated with the
// provers (the minimum across connections).
func (s *Session) WireVersion() int { return s.version }

// Backend reports the proof backend negotiated with the provers (identical
// across connections; NewSession fails otherwise).
func (s *Session) Backend() string { return s.backend }

// Program returns the compiled program (for io shape inspection).
func (s *Session) Program() *compiler.Program { return s.prog }

// SetupDuration reports the verifier's one-time session setup cost (query
// construction plus commitment-key generation) — the amortized numerator of
// the batching argument.
func (s *Session) SetupDuration() time.Duration { return s.verifier.SetupDuration() }

// deriveSeed gives batch b its own deterministic seed from a fixed base;
// an empty base stays empty (fresh randomness every batch).
func deriveSeed(base []byte, b int) []byte {
	if len(base) == 0 {
		return nil
	}
	out := make([]byte, 0, len(base)+4)
	out = append(out, base...)
	return append(out, byte(b>>24), byte(b>>16), byte(b>>8), byte(b))
}

// RunBatch proves and verifies one batch of instances, split contiguously
// across the session's prover connections. Every batch ships its own
// commit request: under wire v2 later batches reuse the connection and the
// negotiated (server-cached) program, but redraw the query seed and the
// commitment key — reusing the key across decommits would leak the secret
// vector r. On a session negotiated down to v1, a second RunBatch fails
// with ErrSingleBatch.
func (s *Session) RunBatch(ctx context.Context, batch [][]*big.Int) (res *SessionResult, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: 0 instances", ErrBatchTooLarge)
	}
	if s.batches > 0 && s.version < ProtocolV2 {
		return nil, ErrSingleBatch
	}
	defer func() { err = ctxErr(ctx, err) }()
	for _, leg := range s.legs {
		defer watch(ctx, leg.conn)()
	}
	ctx = trace.NewContext(ctx, s.tc)
	batchTr, ctx := trace.Child(ctx, "transport.batch")
	batchTr.WithArg("batch", int64(s.batches)).WithArg("instances", int64(len(batch)))
	defer batchTr.End()

	if s.batches > 0 {
		// Fresh queries and a fresh commitment key for a fresh batch: the
		// previous batch's decommit revealed t = r + Σ αᵢqᵢ, so carrying r
		// over would let the provers solve for it across batches (see
		// Verifier.Reseed).
		reseedTr, reseedCtx := trace.Child(ctx, "vc.reseed")
		err := s.verifier.Reseed(reseedCtx, deriveSeed(s.opts.Seed, s.batches))
		reseedTr.End()
		if err != nil {
			return nil, err
		}
	}
	// Every batch ships its own commit request: the commitment key is
	// per-batch state, and attaching it to the batch also means a leg left
	// idle by earlier (smaller) batches receives the key the first time it
	// is activated.
	req := s.verifier.Setup()

	// Partition the batch into contiguous chunks, one per prover; a batch
	// smaller than the prover count leaves the tail legs idle this round.
	legs := make([]*sessionLeg, 0, len(s.legs))
	per := (len(batch) + len(s.legs) - 1) / len(s.legs)
	for i, leg := range s.legs {
		lo := i * per
		if lo >= len(batch) {
			break
		}
		leg.chunk = batch[lo:min(lo+per, len(batch))]
		legs = append(legs, leg)
	}

	// Stage 1: commit request + inputs to every prover; collect all
	// commitments before revealing anything further (the soundness
	// barrier).
	commitTr := trace.Start(ctx, "wire.commit_exchange")
	for _, leg := range legs {
		if err := leg.cc.send(BatchMsg{Req: req, Instances: leg.chunk}); err != nil {
			return nil, s.legError(leg.idx, err)
		}
	}
	for _, leg := range legs {
		var cms CommitmentsMsg
		if err := leg.cc.recv(&cms); err != nil {
			return nil, s.legError(leg.idx, err)
		}
		if cms.Err != "" {
			return nil, s.legError(leg.idx, &RemoteError{Phase: "commit", Msg: cms.Err})
		}
		if len(cms.Items) != len(leg.chunk) {
			return nil, s.legError(leg.idx, errors.New("transport: commitment count mismatch"))
		}
		leg.cms = cms.Items
	}
	commitTr.End()

	// Stage 2: decommit to every prover, collect responses.
	decommitTr := trace.Start(ctx, "vc.decommit")
	dreq, err := s.verifier.Decommit()
	decommitTr.End()
	if err != nil {
		return nil, err
	}
	respondTr := trace.Start(ctx, "wire.respond_exchange")
	for _, leg := range legs {
		if err := leg.cc.send(DecommitMsg{Req: dreq}); err != nil {
			return nil, s.legError(leg.idx, err)
		}
	}
	for _, leg := range legs {
		var resp ResponsesMsg
		if err := leg.cc.recv(&resp); err != nil {
			return nil, s.legError(leg.idx, err)
		}
		if resp.Err != "" {
			return nil, s.legError(leg.idx, &RemoteError{Phase: "respond", Msg: resp.Err})
		}
		if len(resp.Items) != len(leg.chunk) {
			return nil, s.legError(leg.idx, errors.New("transport: response count mismatch"))
		}
		leg.resps = resp.Items
		// Stitch this prover's spans into our timeline (records from any
		// other trace are dropped by Import).
		s.tc.Import(resp.Trace)
	}
	respondTr.End()

	// Stage 3: verify everything — in parallel over opts.Workers; the
	// verifier's state is read-only after Decommit.
	type flat struct {
		in   []*big.Int
		cm   *vc.Commitment
		resp *vc.Response
	}
	items := make([]flat, 0, len(batch))
	for _, leg := range legs {
		for i := range leg.chunk {
			items = append(items, flat{leg.chunk[i], leg.cms[i], leg.resps[i]})
		}
	}
	out := &SessionResult{
		Accepted: make([]bool, len(items)),
		Reasons:  make([]string, len(items)),
		Outputs:  make([][]*big.Int, len(items)),
	}
	phases := s.reg.HistogramVec(vc.MetricPhase, vc.LabelPhase, vc.LabelBackend)
	verifyTr, verifyCtx := trace.Child(ctx, "vc.verify_stage")
	defer verifyTr.End()
	if err := vc.ForEach(ctx, len(items), s.opts.Workers, func(i int) error {
		vsp := trace.Start(verifyCtx, "vc.verify").WithArg("instance", int64(i))
		defer vsp.End()
		t0 := time.Now()
		ok, reason := s.verifier.VerifyInstance(ctx, items[i].in, items[i].cm, items[i].resp)
		phases.With("verify", s.backend).Observe(time.Since(t0))
		out.Accepted[i] = ok
		out.Reasons[i] = reason
		out.Outputs[i] = items[i].cm.Output
		return nil
	}); err != nil {
		return nil, err
	}
	verifyTr.End()
	accepted := 0
	for _, ok := range out.Accepted {
		if ok {
			accepted++
		}
	}
	s.log.InfoContext(ctx, "batch verified", "batch", s.batches, "instances", len(items), "accepted", accepted)
	s.batches++
	return out, nil
}

// finish ends the session's spans exactly once; callers hold no lock.
func (s *Session) finish() {
	s.sessTr.End()
	s.obsSpan.End()
}

// Close ends the session: v2 provers get a goodbye frame so they log a
// clean end rather than a hangup, and every connection is closed. Close is
// idempotent and safe after errors.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, leg := range s.legs {
		if leg.version >= ProtocolV2 {
			_ = leg.cc.send(BatchMsg{Close: true})
		}
		_ = leg.conn.Close()
	}
	s.finish()
	return nil
}

// RunSession drives the verifier side of a single batch over an established
// connection. The protocol parameters come from hello, which both sides
// see; the verifier's secret randomness does not.
func RunSession(ctx context.Context, conn net.Conn, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	return RunSessionDistributed(ctx, []net.Conn{conn}, hello, opts, batch)
}

// RunSessionDistributed splits one batch across several prover connections —
// the paper's distributed prover (§5.1: "the prover can be distributed over
// multiple machines, with each machine computing a subset of a batch").
// Binding is preserved because the query seed is revealed only after every
// prover's commitments have arrived. Cancelling ctx closes the connections
// and returns ctx.Err(). For multiple batches on one connection, use
// NewSession directly.
func RunSessionDistributed(ctx context.Context, conns []net.Conn, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	sess, err := NewSession(ctx, conns, hello, opts)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	res, err := sess.RunBatch(ctx, batch)
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	return res, nil
}
