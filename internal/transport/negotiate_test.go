package transport

import (
	"context"
	"errors"
	"math/big"
	"net"
	"strings"
	"testing"

	"zaatar/internal/obs"
	"zaatar/internal/pcp"
)

// sessionSrc (transport_test.go) is pure arithmetic, so it stratifies and
// every registered backend can serve it.

func negotiationBatch() [][]*big.Int {
	return [][]*big.Int{{big.NewInt(10)}, {big.NewInt(-4)}}
}

func checkNegotiationOutputs(t *testing.T, res *SessionResult) {
	t.Helper()
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if res.Outputs[0][0].Int64() != 7 || res.Outputs[0][1].Int64() != 100 {
		t.Fatalf("outputs: %v", res.Outputs[0])
	}
	if res.Outputs[1][0].Int64() != -7 || res.Outputs[1][1].Int64() != 16 {
		t.Fatalf("outputs: %v", res.Outputs[1])
	}
}

// TestNegotiateSumcheck: a client offering [sumcheck, zaatar] against a
// full server lands on sumcheck — and runs the whole session without any
// ElGamal group configured, because the lane needs no commitment crypto.
func TestNegotiateSumcheck(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2})
	conn, errCh := servicePipe(svc)
	hello := Hello{
		Source:   sessionSrc,
		RhoLin:   2,
		Rho:      2,
		Backends: []string{pcp.BackendSumcheck, pcp.BackendZaatar},
	}
	sess, err := NewSession(context.Background(), []net.Conn{conn}, hello, ClientOptions{Seed: []byte("neg")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Backend(); got != pcp.BackendSumcheck {
		t.Fatalf("negotiated %q, want sumcheck", got)
	}
	res, err := sess.RunBatch(context.Background(), negotiationBatch())
	if err != nil {
		t.Fatal(err)
	}
	checkNegotiationOutputs(t, res)
	// Keep-alive second batch exercises the transcript-lane reseed path.
	res, err = sess.RunBatch(context.Background(), negotiationBatch())
	if err != nil {
		t.Fatal(err)
	}
	checkNegotiationOutputs(t, res)
	sess.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricBackendSessions + pcp.BackendSumcheck).Value(); got != 1 {
		t.Fatalf("pcp.backend.sessions.sumcheck = %d, want 1", got)
	}
}

// TestNegotiateDegrade: against a server built without the sum-check
// backend, the same offer degrades to zaatar.
func TestNegotiateDegrade(t *testing.T) {
	svc, reg := testService(ServiceOptions{
		Workers:  2,
		Backends: []string{pcp.BackendZaatar, pcp.BackendGinger},
	})
	conn, errCh := servicePipe(svc)
	hello := Hello{
		Source:       sessionSrc,
		RhoLin:       2,
		Rho:          2,
		NoCommitment: true,
		Backends:     []string{pcp.BackendSumcheck, pcp.BackendZaatar},
	}
	sess, err := NewSession(context.Background(), []net.Conn{conn}, hello, ClientOptions{Seed: []byte("deg")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Backend(); got != pcp.BackendZaatar {
		t.Fatalf("negotiated %q, want zaatar", got)
	}
	res, err := sess.RunBatch(context.Background(), negotiationBatch())
	if err != nil {
		t.Fatal(err)
	}
	checkNegotiationOutputs(t, res)
	sess.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricBackendSessions + pcp.BackendZaatar).Value(); got != 1 {
		t.Fatalf("pcp.backend.sessions.zaatar = %d, want 1", got)
	}
}

// TestNegotiateLegacyGingerHello: a legacy peer's hello (Ginger bool, no
// Backends list) still round-trips; the server treats it as an offer of
// exactly [ginger].
func TestNegotiateLegacyGingerHello(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2})
	conn, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true, Ginger: true}
	sess, err := NewSession(context.Background(), []net.Conn{conn}, hello, ClientOptions{Seed: []byte("leg")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Backend(); got != pcp.BackendGinger {
		t.Fatalf("negotiated %q, want ginger", got)
	}
	res, err := sess.RunBatch(context.Background(), negotiationBatch())
	if err != nil {
		t.Fatal(err)
	}
	checkNegotiationOutputs(t, res)
	sess.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricBackendSessions + pcp.BackendGinger).Value(); got != 1 {
		t.Fatalf("pcp.backend.sessions.ginger = %d, want 1", got)
	}
}

// TestNegotiateNoCommonBackend: an offer the server cannot meet fails the
// hello with a remote error naming the mismatch.
func TestNegotiateNoCommonBackend(t *testing.T) {
	svc, _ := testService(ServiceOptions{Workers: 2, Backends: []string{pcp.BackendGinger}})
	conn, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, Backends: []string{pcp.BackendSumcheck}}
	_, err := NewSession(context.Background(), []net.Conn{conn}, hello, ClientOptions{})
	if err == nil {
		t.Fatal("session succeeded with no common backend")
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Phase != "hello" {
		t.Fatalf("err = %v, want hello-phase RemoteError", err)
	}
	if !strings.Contains(re.Msg, "no common proof backend") {
		t.Fatalf("err = %v, want no-common-backend", err)
	}
	conn.Close()
	if err := <-errCh; err == nil {
		t.Fatal("server reported success for a failed negotiation")
	}
}

// TestNegotiateDistributedMismatch: a distributed batch needs every leg on
// the same backend; servers restricted to disjoint picks must fail the
// session at negotiation time.
func TestNegotiateDistributedMismatch(t *testing.T) {
	svcA, _ := testService(ServiceOptions{Workers: 2}) // picks sumcheck
	svcB, _ := testService(ServiceOptions{Workers: 2, Backends: []string{pcp.BackendZaatar}})
	connA, errA := servicePipe(svcA)
	connB, errB := servicePipe(svcB)
	hello := Hello{
		Source:   sessionSrc,
		RhoLin:   1,
		Rho:      1,
		Backends: []string{pcp.BackendSumcheck, pcp.BackendZaatar},
	}
	_, err := NewSession(context.Background(), []net.Conn{connA, connB}, hello, ClientOptions{})
	if err == nil {
		t.Fatal("session succeeded with disagreeing legs")
	}
	if !errors.Is(err, ErrNoCommonBackend) {
		t.Fatalf("err = %v, want ErrNoCommonBackend", err)
	}
	connA.Close()
	connB.Close()
	<-errA
	<-errB
}

// TestHelloBackendsValidation: oversized or malformed offers are rejected
// before any work happens.
func TestHelloBackendsValidation(t *testing.T) {
	base := Hello{Source: sessionSrc}
	tooMany := base
	tooMany.Backends = make([]string, maxBackends+1)
	for i := range tooMany.Backends {
		tooMany.Backends[i] = "b"
	}
	if err := tooMany.validate(0); !errors.Is(err, ErrMalformedHello) {
		t.Fatalf("oversized offer: %v", err)
	}
	empty := base
	empty.Backends = []string{""}
	if err := empty.validate(0); !errors.Is(err, ErrMalformedHello) {
		t.Fatalf("empty name: %v", err)
	}
	long := base
	long.Backends = []string{strings.Repeat("x", maxBackendBytes+1)}
	if err := long.validate(0); !errors.Is(err, ErrMalformedHello) {
		t.Fatalf("long name: %v", err)
	}
	ok := base
	ok.Backends = []string{pcp.BackendSumcheck, pcp.BackendZaatar}
	if err := ok.validate(0); err != nil {
		t.Fatalf("valid offer rejected: %v", err)
	}
}

// TestCacheKeyedByBackend: the same source negotiated under two backends
// builds two cache entries (regression for the key being derived from the
// hello's Ginger bool in one place and the config in another).
func TestCacheKeyedByBackend(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2, Obs: obs.NewRegistry()})
	for _, offer := range [][]string{
		{pcp.BackendSumcheck},
		{pcp.BackendZaatar},
		{pcp.BackendSumcheck}, // repeat: must hit, not rebuild
	} {
		conn, errCh := servicePipe(svc)
		hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true, Backends: offer}
		sess, err := NewSession(context.Background(), []net.Conn{conn}, hello, ClientOptions{Seed: []byte("ck")})
		if err != nil {
			t.Fatalf("%v: %v", offer, err)
		}
		if got := sess.Backend(); got != offer[0] {
			t.Fatalf("negotiated %q, want %q", got, offer[0])
		}
		res, err := sess.RunBatch(context.Background(), negotiationBatch())
		if err != nil {
			t.Fatalf("%v: %v", offer, err)
		}
		checkNegotiationOutputs(t, res)
		sess.Close()
		if err := <-errCh; err != nil {
			t.Fatalf("server: %v", err)
		}
	}
	if misses := reg.Counter(MetricCacheMisses).Value(); misses != 2 {
		t.Fatalf("cache misses = %d, want 2 (one per backend)", misses)
	}
	if hits := reg.Counter(MetricCacheHits).Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}
