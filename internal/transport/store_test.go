package transport

import (
	"context"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"net"
	"os"
	"sync"
	"testing"

	"zaatar/internal/pcp"
	"zaatar/internal/store"
)

// redialTo gives a client the downgrade/retry path against svc: every call
// opens a fresh pipe served by a new ServeConn goroutine.
func redialTo(svc *Service) func(context.Context, int) (net.Conn, error) {
	return func(context.Context, int) (net.Conn, error) {
		client, server := net.Pipe()
		go func() { _ = svc.ServeConn(context.Background(), server) }()
		return client, nil
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreWarmRestart is the tentpole scenario: a service compiles a
// program once and persists the bundle; a brand-new service process over
// the same directory then serves a hash-first session with no compile, no
// preprocess, and no source upload — observed through the metrics and
// through the client's own trace.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}

	svc1, reg1 := testService(ServiceOptions{Workers: 2, Store: openStore(t, dir)})
	client1, errCh1 := servicePipe(svc1)
	res, err := RunSession(context.Background(), client1, hello,
		ClientOptions{Seed: []byte("w1"), Redial: redialTo(svc1)}, instances(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if err := <-errCh1; err != nil {
		t.Fatalf("server: %v", err)
	}
	svc1.FlushStore()
	if got := reg1.Counter(MetricStoreMisses).Value(); got != 1 {
		t.Fatalf("cold store misses = %d, want 1", got)
	}
	if got := reg1.Counter(MetricHelloSourceSkipped).Value(); got != 0 {
		t.Fatalf("cold run skipped %d uploads, want 0 (server had to ask)", got)
	}
	key := store.KeyFor(sessionSrc, "F128", pcp.BackendZaatar)
	if !openStore(t, dir).Contains(key) {
		t.Fatal("no bundle written back after the cold session")
	}

	// "Restart": a fresh Service and a fresh Store handle over the same
	// directory — nothing shared in memory.
	svc2, reg2 := testService(ServiceOptions{Workers: 2, Store: openStore(t, dir)})
	ctx2, tc2 := tracedContext(t)
	client2, errCh2 := servicePipe(svc2)
	res, err = RunSession(ctx2, client2, hello,
		ClientOptions{Seed: []byte("w2"), Redial: redialTo(svc2)}, instances(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("warm restart rejected: %v", res.Reasons)
	}
	if err := <-errCh2; err != nil {
		t.Fatalf("warm server: %v", err)
	}
	if got := reg2.Counter(MetricStoreHits).Value(); got != 1 {
		t.Fatalf("store hits = %d, want 1", got)
	}
	if got := reg2.Counter(MetricStoreMisses).Value(); got != 0 {
		t.Fatalf("store misses = %d, want 0", got)
	}
	if got := reg2.Counter(MetricHelloSourceSkipped).Value(); got != 1 {
		t.Fatalf("source uploads skipped = %d, want 1", got)
	}
	if got := reg2.Counter(MetricStoreBytesSaved).Value(); got != int64(len(sessionSrc)) {
		t.Fatalf("bytes saved = %d, want %d", got, len(sessionSrc))
	}
	// The client's stitched trace is the ground truth: the warm restart ran
	// neither the compiler nor the preprocessor, and did hit the disk.
	recs := tc2.Recorder().Snapshot()
	if n := len(byName(recs, "prover.compile")); n != 0 {
		t.Fatalf("warm restart ran %d prover.compile spans", n)
	}
	if n := len(byName(recs, "prover.preprocess")); n != 0 {
		t.Fatalf("warm restart ran %d prover.preprocess spans", n)
	}
	if n := len(byName(recs, "prover.store.load")); n != 1 {
		t.Fatalf("prover.store.load spans = %d, want 1", n)
	}
}

// TestHashFirstMemoryWarm drives two hash-first sessions against one
// storeless service: the first uploads on SourceNeeded, the second opens
// off the memory tier with no upload at all.
func TestHashFirstMemoryWarm(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2})
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	for i, want := range []int64{0, 1} {
		client, errCh := servicePipe(svc)
		res, err := RunSession(context.Background(), client, hello,
			ClientOptions{Seed: []byte{byte(i)}, Redial: redialTo(svc)}, instances(5))
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if !res.AllAccepted() {
			t.Fatalf("session %d rejected: %v", i, res.Reasons)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		if got := reg.Counter(MetricHelloSourceSkipped).Value(); got != want {
			t.Fatalf("after session %d: skipped = %d, want %d", i, got, want)
		}
	}
	if got := reg.Counter(MetricCacheHits).Value(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

// TestHashFirstDowngradeInterop pins the server below v3: the hash-first
// hello is rejected exactly like an older build would, and the client's
// redial retry lands the session on the server's dialect with the full
// source.
func TestHashFirstDowngradeInterop(t *testing.T) {
	for _, pin := range []int{ProtocolV1, ProtocolV2} {
		svc, reg := testService(ServiceOptions{Workers: 2, MaxWireVersion: pin})
		client, errCh := servicePipe(svc)
		hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
		sess, err := NewSession(context.Background(), []net.Conn{client}, hello,
			ClientOptions{Seed: []byte("dg"), Redial: redialTo(svc)})
		if err != nil {
			t.Fatalf("pin v%d: %v", pin, err)
		}
		if got := sess.WireVersion(); got != pin {
			t.Fatalf("pin v%d: negotiated v%d", pin, got)
		}
		res, err := sess.RunBatch(context.Background(), instances(4))
		if err != nil {
			t.Fatalf("pin v%d: %v", pin, err)
		}
		checkBatch(t, res, []int64{4})
		sess.Close()
		// The first connection died on the version rejection — that is the
		// downgrade signal, and the server reports it as such.
		var vErr *ProtocolVersionError
		if err := <-errCh; !errors.As(err, &vErr) {
			t.Fatalf("pin v%d: first conn error %v, want *ProtocolVersionError", pin, err)
		} else if vErr.Max != pin {
			t.Fatalf("pin v%d: rejection reported max v%d", pin, vErr.Max)
		}
		if got := reg.Counter(MetricHelloSourceSkipped).Value(); got != 0 {
			t.Fatalf("pin v%d: downgraded session skipped %d uploads", pin, got)
		}
	}
}

// TestPinnedV2ClientAgainstV3Server is the reverse interop direction: a
// client pinning the pre-hash-first dialect sends the full source, the v3
// server serves it — and still writes the bundle back, so even legacy
// clients warm the store.
func TestPinnedV2ClientAgainstV3Server(t *testing.T) {
	dir := t.TempDir()
	svc, _ := testService(ServiceOptions{Workers: 2, Store: openStore(t, dir)})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true, Version: ProtocolV2}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("v2")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.WireVersion(); got != ProtocolV2 {
		t.Fatalf("negotiated v%d, want v%d", got, ProtocolV2)
	}
	res, err := sess.RunBatch(context.Background(), instances(6))
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, res, []int64{6})
	sess.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	svc.FlushStore()
	if !openStore(t, dir).Contains(store.KeyFor(sessionSrc, "F128", pcp.BackendZaatar)) {
		t.Fatal("v2 session did not warm the store")
	}
}

// TestConcurrentColdCompileSingleflight races hash-first sessions at a
// storeless cold service: exactly one session is asked to upload and
// exactly one compile runs; everyone else rides the singleflight entry.
func TestConcurrentColdCompileSingleflight(t *testing.T) {
	const n = 6
	svc, reg := testService(ServiceOptions{Workers: 2, MaxSessions: n})
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, errCh := servicePipe(svc)
			res, err := RunSession(context.Background(), client, hello,
				ClientOptions{Seed: []byte{byte(i)}, Redial: redialTo(svc)}, instances(int64(i+1)))
			if err == nil && !res.AllAccepted() {
				err = errors.New("batch rejected")
			}
			if serr := <-errCh; err == nil && serr != nil {
				err = serr
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := reg.Counter(MetricCacheMisses).Value(); got != 1 {
		t.Fatalf("cache misses = %d, want 1 (one compile for %d sessions)", got, n)
	}
	if got := reg.Counter(MetricCacheHits).Value(); got != n-1 {
		t.Fatalf("cache hits = %d, want %d", got, n-1)
	}
	if got := reg.Counter(MetricHelloSourceSkipped).Value(); got != n-1 {
		t.Fatalf("skipped uploads = %d, want %d (only the singleflight winner uploads)", got, n-1)
	}
}

// TestConcurrentColdDiskLoadSingleflight races hash-first sessions at a
// fresh service whose store already holds the bundle: the disk load runs
// exactly once, nothing compiles, and no session uploads the source.
func TestConcurrentColdDiskLoadSingleflight(t *testing.T) {
	dir := t.TempDir()
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}

	seed, _ := testService(ServiceOptions{Workers: 2, Store: openStore(t, dir)})
	client0, errCh0 := servicePipe(seed)
	if _, err := RunSession(context.Background(), client0, hello,
		ClientOptions{Seed: []byte("s"), Redial: redialTo(seed)}, instances(3)); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh0; err != nil {
		t.Fatal(err)
	}
	seed.FlushStore()

	const n = 6
	svc, reg := testService(ServiceOptions{Workers: 2, MaxSessions: n, Store: openStore(t, dir)})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, errCh := servicePipe(svc)
			res, err := RunSession(context.Background(), client, hello,
				ClientOptions{Seed: []byte{byte(i)}, Redial: redialTo(svc)}, instances(int64(i+1)))
			if err == nil && !res.AllAccepted() {
				err = errors.New("batch rejected")
			}
			if serr := <-errCh; err == nil && serr != nil {
				err = serr
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := reg.Counter(MetricStoreHits).Value(); got != 1 {
		t.Fatalf("store hits = %d, want 1 (one load for %d sessions)", got, n)
	}
	if got := reg.Counter(MetricStoreMisses).Value(); got != 0 {
		t.Fatalf("store misses = %d, want 0", got)
	}
	if got := reg.Counter(MetricHelloSourceSkipped).Value(); got != n {
		t.Fatalf("skipped uploads = %d, want %d", got, n)
	}
}

// TestStoreCorruptBundleRecompiles damages the bundle on disk: the service
// treats it as a miss, recompiles, serves the session — and its write-back
// atomically replaces the damaged file.
func TestStoreCorruptBundleRecompiles(t *testing.T) {
	dir := t.TempDir()
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	key := store.KeyFor(sessionSrc, "F128", pcp.BackendZaatar)

	seed, _ := testService(ServiceOptions{Workers: 2, Store: openStore(t, dir)})
	client0, errCh0 := servicePipe(seed)
	if _, err := RunSession(context.Background(), client0, hello,
		ClientOptions{Seed: []byte("s"), Redial: redialTo(seed)}, instances(3)); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh0; err != nil {
		t.Fatal(err)
	}
	seed.FlushStore()

	st := openStore(t, dir)
	raw, err := os.ReadFile(st.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(st.Path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	svc, reg := testService(ServiceOptions{Workers: 2, Store: st})
	client, errCh := servicePipe(svc)
	res, err := RunSession(context.Background(), client, hello,
		ClientOptions{Seed: []byte("c"), Redial: redialTo(svc)}, instances(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricStoreMisses).Value(); got != 1 {
		t.Fatalf("store misses = %d, want 1 (corrupt bundle is a miss)", got)
	}
	svc.FlushStore()
	if _, err := st.Load(key); err != nil {
		t.Fatalf("write-back did not heal the corrupt bundle: %v", err)
	}
}

// TestMaxSourceBytes covers the configurable source bound on both ingestion
// paths: the plain hello and the v3 source upload.
func TestMaxSourceBytes(t *testing.T) {
	if err := (Hello{Source: sessionSrc, Version: ProtocolV2}).validate(16); !errors.Is(err, ErrSourceTooLarge) {
		t.Fatalf("validate: %v, want ErrSourceTooLarge", err)
	}
	if err := (Hello{Source: sessionSrc, Version: ProtocolV2}).validate(0); err != nil {
		t.Fatalf("default limit rejected a tiny source: %v", err)
	}

	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	t.Run("hello", func(t *testing.T) {
		svc, _ := testService(ServiceOptions{Workers: 1, MaxSourceBytes: 16})
		client, errCh := servicePipe(svc)
		h := hello
		h.Version = ProtocolV2 // full source rides in the hello
		_, err := RunSession(context.Background(), client, h, ClientOptions{}, instances(2))
		var rErr *RemoteError
		if !errors.As(err, &rErr) || rErr.Phase != "hello" {
			t.Fatalf("client err = %v, want hello-phase RemoteError", err)
		}
		if err := <-errCh; !errors.Is(err, ErrSourceTooLarge) {
			t.Fatalf("server err = %v, want ErrSourceTooLarge", err)
		}
	})
	t.Run("upload", func(t *testing.T) {
		svc, _ := testService(ServiceOptions{Workers: 1, MaxSourceBytes: 16})
		client, errCh := servicePipe(svc)
		_, err := RunSession(context.Background(), client, hello,
			ClientOptions{Redial: redialTo(svc)}, instances(2))
		var rErr *RemoteError
		if !errors.As(err, &rErr) || rErr.Phase != "hello" {
			t.Fatalf("client err = %v, want hello-phase RemoteError", err)
		}
		if err := <-errCh; !errors.Is(err, ErrSourceTooLarge) {
			t.Fatalf("server err = %v, want ErrSourceTooLarge", err)
		}
	})
}

// TestSourceUploadHashMismatch speaks raw v3 and uploads a source that does
// not match the hello's digest; the server must refuse to compile it.
func TestSourceUploadHashMismatch(t *testing.T) {
	svc, _ := testService(ServiceOptions{Workers: 1})
	client, errCh := servicePipe(svc)
	defer client.Close()
	enc, dec := gob.NewEncoder(client), gob.NewDecoder(client)

	claimed := sha256.Sum256([]byte(sessionSrc))
	h := Hello{Version: ProtocolV3, SourceHash: claimed[:], RhoLin: 1, Rho: 1, NoCommitment: true}
	if err := enc.Encode(h); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if !ack.SourceNeeded {
		t.Fatalf("expected SourceNeeded, got %+v", ack)
	}
	if err := enc.Encode(SourceMsg{Source: sessionSrc + "\n// tampered"}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Fatal("server accepted a source that does not match the claimed hash")
	}
	if err := <-errCh; !errors.Is(err, ErrMalformedHello) {
		t.Fatalf("server err = %v, want ErrMalformedHello", err)
	}

	// Mismatch inside one hello is caught by validation directly.
	bad := Hello{Source: sessionSrc, SourceHash: make([]byte, sha256.Size), Version: ProtocolV3}
	if err := bad.validate(0); !errors.Is(err, ErrMalformedHello) {
		t.Fatalf("validate: %v, want ErrMalformedHello", err)
	}
}
