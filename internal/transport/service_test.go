package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/prg"
	"zaatar/internal/vc"
)

// servicePipe connects a client conn to svc, serving the server end in a
// goroutine; the returned channel yields the server-side error.
func servicePipe(svc *Service) (net.Conn, chan error) {
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.ServeConn(context.Background(), server) }()
	return client, errCh
}

func testService(opts ServiceOptions) (*Service, *obs.Registry) {
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	return NewService(opts), opts.Obs
}

func checkBatch(t *testing.T, res *SessionResult, inputs []int64) {
	t.Helper()
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	for i, x := range inputs {
		if res.Outputs[i][0].Int64() != x-3 || res.Outputs[i][1].Int64() != x*x {
			t.Fatalf("instance %d (x=%d): outputs %v", i, x, res.Outputs[i])
		}
	}
}

func instances(xs ...int64) [][]*big.Int {
	batch := make([][]*big.Int, len(xs))
	for i, x := range xs {
		batch[i] = []*big.Int{big.NewInt(x)}
	}
	return batch
}

// TestKeepAliveMultiBatch pushes three batches over one connection: the
// program is negotiated once, each batch redraws its queries, and the
// server counts one session but three batches.
func TestKeepAliveMultiBatch(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("ka")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.WireVersion(); got != MaxProtocolVersion {
		t.Fatalf("negotiated v%d, want v%d", got, MaxProtocolVersion)
	}
	for b, xs := range [][]int64{{10, -4}, {6}, {1, 2, 3}} {
		res, err := sess.RunBatch(context.Background(), instances(xs...))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		checkBatch(t, res, xs)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricSessions).Value(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	if got := reg.Counter(MetricServedBatches).Value(); got != 3 {
		t.Fatalf("batches = %d, want 3", got)
	}
	if got := reg.Counter(MetricServedInstance).Value(); got != 6 {
		t.Fatalf("instances = %d, want 6", got)
	}
}

// recordingProver is a hand-rolled v2 prover loop that hands each wire
// message to the callbacks (either may be nil) before handling it — tests
// use it to observe protocol-level invariants the real Service does not
// surface.
func recordingProver(server net.Conn, onBatch func(BatchMsg), onDecommit func(DecommitMsg)) error {
	defer server.Close()
	dec, enc := gob.NewDecoder(server), gob.NewEncoder(server)
	var h Hello
	if err := dec.Decode(&h); err != nil {
		return err
	}
	if h.Source == "" {
		// v3 hash-first hello: this bare prover caches nothing, so always
		// ask for the source.
		if err := enc.Encode(HelloAck{SourceNeeded: true, Version: ProtocolV2}); err != nil {
			return err
		}
		var src SourceMsg
		if err := dec.Decode(&src); err != nil {
			return err
		}
		h.Source = src.Source
	}
	prog, err := compiler.Compile(h.fieldOf(), h.Source)
	if err != nil {
		return err
	}
	prover, err := vc.NewProver(prog, h.config(1, nil, h.offered()[0]))
	if err != nil {
		return err
	}
	if err := enc.Encode(HelloAck{NumInputs: prog.NumInputs(), NumOutputs: prog.NumOutputs(), Version: ProtocolV2}); err != nil {
		return err
	}
	for {
		var b BatchMsg
		if err := dec.Decode(&b); err != nil {
			return err
		}
		if b.Close {
			return nil
		}
		if onBatch != nil {
			onBatch(b)
		}
		if b.Req != nil {
			if err := prover.HandleCommitRequest(b.Req); err != nil {
				return err
			}
		}
		n := len(b.Instances)
		states := make([]*vc.InstanceState, n)
		cms := CommitmentsMsg{Items: make([]*vc.Commitment, n)}
		for i := range b.Instances {
			if cms.Items[i], states[i], err = prover.Commit(context.Background(), b.Instances[i]); err != nil {
				return err
			}
		}
		if err := enc.Encode(cms); err != nil {
			return err
		}
		var d DecommitMsg
		if err := dec.Decode(&d); err != nil {
			return err
		}
		if onDecommit != nil {
			onDecommit(d)
		}
		if err := prover.HandleDecommit(d.Req); err != nil {
			return err
		}
		resp := ResponsesMsg{Items: make([]*vc.Response, n)}
		for i := range states {
			if resp.Items[i], err = prover.Respond(context.Background(), states[i]); err != nil {
				return err
			}
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}

// TestServiceRejectsMaliciousCommitRequest replays the crash a hostile
// client used to cause: a commit request whose ciphertext carries a
// component ≡ 0 mod P reached the Montgomery batch inversion and panicked
// the whole multi-tenant service. The server must instead answer with a
// protocol error, count a session error, and keep serving honest sessions.
func TestServiceRejectsMaliciousCommitRequest(t *testing.T) {
	g, err := elgamal.GenerateGroup(field.F128().Modulus(), 320, prg.NewFromSeed([]byte("mal-g"), 0))
	if err != nil {
		t.Fatal(err)
	}
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1}
	prog, err := compiler.Compile(hello.fieldOf(), hello.Source)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hello.config(1, []byte("mal-seed"), hello.offered()[0])
	cfg.Group = g
	ver, err := vc.NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := ver.Setup()
	req.EncR1[0].A = big.NewInt(0)

	svc, reg := testService(ServiceOptions{Workers: 2})
	client, errCh := servicePipe(svc)
	cc := newTimedCodec(client, 5*time.Second)
	if err := cc.send(hello); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := cc.recv(&ack); err != nil || ack.Err != "" {
		t.Fatalf("hello failed: %v %q", err, ack.Err)
	}
	if err := cc.send(BatchMsg{Req: req, Instances: instances(4)}); err != nil {
		t.Fatal(err)
	}
	var cms CommitmentsMsg
	if err := cc.recv(&cms); err != nil {
		t.Fatalf("server dropped the connection instead of answering: %v", err)
	}
	if cms.Err == "" {
		t.Fatal("server accepted a ciphertext component ≡ 0 mod P")
	}
	client.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("server reported success for a malicious session")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server goroutine never returned")
	}
	if got := reg.Counter(MetricSessionErrors).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSessionErrors, got)
	}

	// The same service still runs an honest committed session end to end.
	client2, errCh2 := servicePipe(svc)
	sess, err := NewSession(context.Background(), []net.Conn{client2}, hello, ClientOptions{Seed: []byte("ok"), Group: g})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunBatch(context.Background(), instances(5))
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, res, []int64{5})
	sess.Close()
	if err := <-errCh2; err != nil {
		t.Fatalf("honest follow-up session: %v", err)
	}
}

// TestKeepAliveRekeysPerBatch runs two committed batches on one kept-alive
// session and records each BatchMsg: every batch must carry its own commit
// request with fresh key material. Reusing r across batches is a soundness
// bug, not an optimization — the prover could subtract the two revealed
// consistency points t = r + Σ αᵢqᵢ and solve for r.
func TestKeepAliveRekeysPerBatch(t *testing.T) {
	g, err := elgamal.GenerateGroup(field.F128().Modulus(), 320, prg.NewFromSeed([]byte("kg"), 0))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var reqs []*vc.CommitRequest
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- recordingProver(server, func(b BatchMsg) {
			mu.Lock()
			reqs = append(reqs, b.Req)
			mu.Unlock()
		}, nil)
	}()
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("kc"), Group: g})
	if err != nil {
		t.Fatal(err)
	}
	setup := sess.SetupDuration()
	for b, xs := range [][]int64{{5}, {7, 9}} {
		res, err := sess.RunBatch(context.Background(), instances(xs...))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		checkBatch(t, res, xs)
	}
	if setup != sess.SetupDuration() {
		t.Fatal("keep-alive batches must not repeat session setup")
	}
	sess.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(reqs) != 2 || reqs[0] == nil || reqs[1] == nil {
		t.Fatalf("recorded %d commit requests (nil included?), want one per batch", len(reqs))
	}
	if reqs[0].PK.H.Cmp(reqs[1].PK.H) == 0 {
		t.Fatal("ElGamal key reused across keep-alive batches")
	}
	if reqs[0].EncR1[0].A.Cmp(reqs[1].EncR1[0].A) == 0 {
		t.Fatal("commitment vector Enc(r) reused across keep-alive batches")
	}
}

// TestKeepAliveFreshSeeds checks the per-batch reseed actually changes the
// queries: two batches on a fixed client seed decommit different seeds on
// the wire.
func TestKeepAliveFreshSeeds(t *testing.T) {
	var mu sync.Mutex
	var seeds [][]byte
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- recordingProver(server, nil, func(d DecommitMsg) {
			mu.Lock()
			seeds = append(seeds, append([]byte(nil), d.Req.Seed...))
			mu.Unlock()
		})
	}()
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("fs")})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		if res, err := sess.RunBatch(context.Background(), instances(4)); err != nil || !res.AllAccepted() {
			t.Fatalf("batch %d: %v %v", b, err, res)
		}
	}
	sess.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(seeds) != 2 {
		t.Fatalf("recorded %d seeds, want 2", len(seeds))
	}
	if string(seeds[0]) == string(seeds[1]) {
		t.Fatal("keep-alive batches reused the query seed — binding would break")
	}
}

// TestDistributedLateLegActivation keeps a second prover leg idle through
// the first batch (one instance, one chunk) and activates it on the second:
// its first BatchMsg arrives at session-batch 1, which must still carry the
// commit request the server requires on a connection's first batch.
func TestDistributedLateLegActivation(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2})
	c1, errCh1 := servicePipe(svc)
	c2, errCh2 := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{c1, c2}, hello, ClientOptions{Seed: []byte("ll")})
	if err != nil {
		t.Fatal(err)
	}
	for b, xs := range [][]int64{{5}, {1, 2, 3}} {
		res, err := sess.RunBatch(context.Background(), instances(xs...))
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		checkBatch(t, res, xs)
	}
	sess.Close()
	if err := <-errCh1; err != nil {
		t.Fatalf("leg 1 server: %v", err)
	}
	if err := <-errCh2; err != nil {
		t.Fatalf("leg 2 server: %v", err)
	}
	if got := reg.Counter(MetricSessionErrors).Value(); got != 0 {
		t.Fatalf("session errors = %d, want 0", got)
	}
}

// TestIdleTimeoutReapsConnection parks a keep-alive connection after one
// batch: the server must reap it at IdleTimeout as a clean end (nil error,
// transport.idle.closed), not a session failure.
func TestIdleTimeoutReapsConnection(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 1, IdleTimeout: 200 * time.Millisecond})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("id")})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sess.RunBatch(context.Background(), instances(7)); err != nil || !res.AllAccepted() {
		t.Fatalf("batch: %v %v", err, res)
	}
	// Park: no Close frame, no hangup — only the idle deadline can end the
	// server side.
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("server: %v, want clean idle reap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle connection was never reaped")
	}
	if got := reg.Counter(MetricIdleClosed).Value(); got != 1 {
		t.Fatalf("idle.closed = %d, want 1", got)
	}
	if got := reg.Counter(MetricSessionErrors).Value(); got != 0 {
		t.Fatalf("session errors = %d, want 0 (idle reap is clean)", got)
	}
	_ = sess.Close()
}

// TestMaxConnsRefusesExcess caps Serve at one open connection: with an idle
// keep-alive session parked on it, a second dial must be refused at accept
// (counted in transport.conns.rejected) instead of pinning another
// goroutine.
func TestMaxConnsRefusesExcess(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc, reg := testService(ServiceOptions{Workers: 1, MaxConns: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ctx, ln) }()

	conn1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{conn1}, hello, ClientOptions{Seed: []byte("mc")})
	if err != nil {
		t.Fatal(err)
	}
	// The first connection is fully established (the ack arrived), so the
	// accept loop has accounted for it; a second connection is over the cap.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(context.Background(), []net.Conn{conn2}, hello, ClientOptions{}); err == nil {
		t.Fatal("session over the MaxConns cap succeeded")
	}
	conn2.Close()
	if got := reg.Counter(MetricConnsRejected).Value(); got != 1 {
		t.Fatalf("conns.rejected = %d, want 1", got)
	}
	sess.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain after cancel")
	}
	if got := reg.Counter(MetricConnsOpen).Value(); got != 0 {
		t.Fatalf("conns.open = %d after drain, want 0", got)
	}
}

// TestMidFrameHangupIsError kills the connection inside a gob frame: unlike
// a hangup at a message boundary (clean keep-alive end), a peer dying
// mid-message believed it was mid-protocol, so the server must report a
// session error.
func TestMidFrameHangupIsError(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 1})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("mf")})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sess.RunBatch(context.Background(), instances(6)); err != nil || !res.AllAccepted() {
		t.Fatalf("batch: %v %v", err, res)
	}
	// A gob frame claiming 5 payload bytes, truncated after 2: the server's
	// next read ends in io.ErrUnexpectedEOF, not a boundary io.EOF.
	if _, err := client.Write([]byte{0x05, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := <-errCh; err == nil {
		t.Fatal("mid-frame hangup treated as clean session end")
	}
	if got := reg.Counter(MetricSessionErrors).Value(); got != 1 {
		t.Fatalf("session errors = %d, want 1", got)
	}
}

// TestV1PeerSingleBatch pins the client to wire v1: the session still
// works, but a second batch on the same connection is refused client-side
// and the server ends after one batch.
func TestV1PeerSingleBatch(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 1})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true, Version: ProtocolV1}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("v1")})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.WireVersion(); got != ProtocolV1 {
		t.Fatalf("negotiated v%d, want v%d", got, ProtocolV1)
	}
	res, err := sess.RunBatch(context.Background(), instances(10))
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, res, []int64{10})
	if _, err := sess.RunBatch(context.Background(), instances(11)); !errors.Is(err, ErrSingleBatch) {
		t.Fatalf("second v1 batch: err = %v, want ErrSingleBatch", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricServedBatches).Value(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
}

// legacyBatchMsg mirrors BatchMsg before the Close field existed.
type legacyBatchMsg struct {
	Req       *vc.CommitRequest
	Instances [][]*big.Int
}

// TestLegacyGobClient drives the v2 service with a verbatim pre-versioning
// client: hello without Version, batch without Close, responses without
// Trace. Gob's unknown-field semantics carry both directions, and the
// server treats the session as v1 (one batch, clean end).
func TestLegacyGobClient(t *testing.T) {
	svc, _ := testService(ServiceOptions{Workers: 1})
	client, errCh := servicePipe(svc)
	defer client.Close()
	enc, dec := gob.NewEncoder(client), gob.NewDecoder(client)

	if err := enc.Encode(legacyHello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err != "" {
		t.Fatalf("ack: %s", ack.Err)
	}
	if ack.Version != ProtocolV1 {
		t.Fatalf("server negotiated v%d with a pre-versioning client, want v%d", ack.Version, ProtocolV1)
	}

	prog, err := compiler.Compile(field.F128(), sessionSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vc.Config{Params: pcp.Params{RhoLin: 2, Rho: 2}, NoCommitment: true, Seed: []byte("legacy")}
	verifier, err := vc.NewVerifier(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := []*big.Int{big.NewInt(9)}
	if err := enc.Encode(legacyBatchMsg{Req: verifier.Setup(), Instances: [][]*big.Int{in}}); err != nil {
		t.Fatal(err)
	}
	var cms CommitmentsMsg
	if err := dec.Decode(&cms); err != nil {
		t.Fatal(err)
	}
	if cms.Err != "" || len(cms.Items) != 1 {
		t.Fatalf("commitments: %q, %d items", cms.Err, len(cms.Items))
	}
	dreq, err := verifier.Decommit()
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(DecommitMsg{Req: dreq}); err != nil {
		t.Fatal(err)
	}
	var resp legacyResponsesMsg
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || len(resp.Items) != 1 {
		t.Fatalf("responses: %q, %d items", resp.Err, len(resp.Items))
	}
	ok, reason := verifier.VerifyInstance(context.Background(), in, cms.Items[0], resp.Items[0])
	if !ok {
		t.Fatalf("rejected: %s", reason)
	}
	client.Close()
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestV2ClientLegacyServer is the mirror: the new Session against a
// pre-versioning prover. The missing ack.Version negotiates the session
// down to v1; the batch runs, and keep-alive is refused.
func TestV2ClientLegacyServer(t *testing.T) {
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- serveLegacy(server) }()
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{Seed: []byte("lv")})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := sess.WireVersion(); got != ProtocolV1 {
		t.Fatalf("negotiated v%d against a legacy server, want v%d", got, ProtocolV1)
	}
	res, err := sess.RunBatch(context.Background(), instances(8))
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, res, []int64{8})
	if err := <-errCh; err != nil {
		t.Fatalf("legacy server: %v", err)
	}
	if _, err := sess.RunBatch(context.Background(), instances(9)); !errors.Is(err, ErrSingleBatch) {
		t.Fatalf("err = %v, want ErrSingleBatch", err)
	}
}

// TestProtocolVersionErrorTyped covers the typed validate error on both
// ends: locally via errors.As, and over the wire where the server reports
// it in the ack and survives.
func TestProtocolVersionErrorTyped(t *testing.T) {
	h := Hello{Source: sessionSrc, Version: 99}
	var vErr *ProtocolVersionError
	if err := h.validate(0); !errors.As(err, &vErr) {
		t.Fatalf("validate: %v, want *ProtocolVersionError", err)
	} else if vErr.Version != 99 || vErr.Max != MaxProtocolVersion {
		t.Fatalf("version error: %+v", vErr)
	}

	svc, _ := testService(ServiceOptions{Workers: 1})
	client, errCh := servicePipe(svc)
	defer client.Close()
	cc := newTimedCodec(client, 5*time.Second)
	if err := cc.send(h); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := cc.recv(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Fatal("server accepted an unknown wire version")
	}
	serr := <-errCh
	if !errors.As(serr, &vErr) {
		t.Fatalf("server error: %v, want *ProtocolVersionError", serr)
	}
}

// TestCacheHitSkipsCompile runs two sessions for the same program: the
// second must be a cache hit, observable both in the counters and — the
// contract the bench leans on — by the absence of a prover.compile span in
// its trace.
func TestCacheHitSkipsCompile(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 1})
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	var traces [][]trace.Record
	for i := 0; i < 2; i++ {
		tc := trace.New(trace.NewRecorder(4096), "verifier")
		ctx := trace.NewContext(context.Background(), tc)
		client, errCh := servicePipe(svc)
		res, err := RunSession(ctx, client, hello, ClientOptions{Seed: []byte{byte(i)}}, instances(4))
		client.Close()
		if serr := <-errCh; serr != nil {
			t.Fatalf("session %d server: %v", i, serr)
		}
		if err != nil || !res.AllAccepted() {
			t.Fatalf("session %d: %v %v", i, err, res)
		}
		traces = append(traces, tc.Recorder().Snapshot())
	}
	if n := len(byName(traces[0], "prover.compile")); n != 1 {
		t.Fatalf("first session: %d prover.compile spans, want 1 (miss)", n)
	}
	if n := len(byName(traces[1], "prover.compile")); n != 0 {
		t.Fatalf("second session: %d prover.compile spans, want 0 (hit)", n)
	}
	if hits, misses := reg.Counter(MetricCacheHits).Value(), reg.Counter(MetricCacheMisses).Value(); hits != 1 || misses != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// cacheTestSrc derives a distinct tiny program per index, so tests can
// populate the LRU with controlled distinct keys.
func cacheTestSrc(i int) string {
	return fmt.Sprintf("input x : int32; output y : int32; y = x + %d;", i)
}

// TestCacheEvictionConcurrent hammers a 2-entry cache with 8 concurrent
// sessions over 4 distinct programs: every session must still verify
// (eviction never breaks an in-flight session, since entries are shared by
// pointer), and the LRU must have evicted and stayed within bounds.
func TestCacheEvictionConcurrent(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2, MaxSessions: 4, CacheSize: 2})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog := i % 4
			hello := Hello{Source: cacheTestSrc(prog), RhoLin: 1, Rho: 1, NoCommitment: true}
			client, errCh := servicePipe(svc)
			res, err := RunSession(context.Background(), client, hello, ClientOptions{Seed: []byte{byte(i)}}, instances(int64(i)))
			client.Close()
			if serr := <-errCh; serr != nil {
				errs <- fmt.Errorf("session %d server: %w", i, serr)
				return
			}
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if !res.AllAccepted() {
				errs <- fmt.Errorf("session %d rejected: %v", i, res.Reasons)
				return
			}
			if got := res.Outputs[0][0].Int64(); got != int64(i)+int64(prog) {
				errs <- fmt.Errorf("session %d output %d, want %d", i, got, int64(i)+int64(prog))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := reg.Counter(MetricCacheEntries).Value(); got > 2 {
		t.Fatalf("cache entries = %d, want ≤ 2", got)
	}
	if reg.Counter(MetricCacheEvictions).Value() == 0 {
		t.Fatal("4 programs through a 2-entry cache must evict")
	}
}

// TestAdmissionConcurrentSessions pushes 8 concurrent sessions for one
// program through a 3-slot admission semaphore: all succeed, the
// singleflight cache compiles once, and the active gauge returns to zero.
func TestAdmissionConcurrentSessions(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 4, MaxSessions: 3})
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, errCh := servicePipe(svc)
			res, err := RunSession(context.Background(), client, hello, ClientOptions{Seed: []byte{byte(i)}}, instances(int64(i), int64(i)+1))
			client.Close()
			if serr := <-errCh; serr != nil {
				errs <- fmt.Errorf("session %d server: %w", i, serr)
				return
			}
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if !res.AllAccepted() {
				errs <- fmt.Errorf("session %d rejected: %v", i, res.Reasons)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := reg.Counter(MetricSessions).Value(); got != 8 {
		t.Fatalf("sessions = %d, want 8", got)
	}
	if got := reg.Counter(MetricCacheMisses).Value(); got != 1 {
		t.Fatalf("cache misses = %d, want 1 (singleflight)", got)
	}
	if got := reg.Counter(MetricAdmissionActive).Value(); got != 0 {
		t.Fatalf("admission.active = %d after drain, want 0", got)
	}
}

// TestServeDrain runs the accept loop on a real listener, completes a
// session, then cancels: Serve must close the listener and return nil.
func TestServeDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc, _ := testService(ServiceOptions{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Serve(ctx, ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	res, err := RunSession(context.Background(), conn, hello, ClientOptions{Seed: []byte("sv")}, instances(12))
	conn.Close()
	if err != nil || !res.AllAccepted() {
		t.Fatalf("session over Serve: %v %v", err, res)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain after cancel")
	}
}

// TestCloseFrameBeforeAnyBatch opens a session and closes it immediately:
// the goodbye frame must end the server side cleanly with zero batches.
func TestCloseFrameBeforeAnyBatch(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 1})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	sess, err := NewSession(context.Background(), []net.Conn{client}, hello, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if got := reg.Counter(MetricServedBatches).Value(); got != 0 {
		t.Fatalf("batches = %d, want 0", got)
	}
	if _, err := sess.RunBatch(context.Background(), instances(1)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("err = %v, want ErrSessionClosed", err)
	}
}
