package transport

import (
	"context"
	"errors"
	"math/big"
	"net"
	"strings"
	"testing"
	"time"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/prg"
	"zaatar/internal/vc"
)

const sessionSrc = `
input x : int32;
output y : int32;
output sq : int64;
y = x - 3;
sq = x * x;
`

func runPipeSession(t *testing.T, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	t.Helper()
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- ServeConn(context.Background(), server, ServerOptions{Workers: 2}) }()
	res, err := RunSession(context.Background(), client, hello, opts, batch)
	client.Close()
	<-errCh
	return res, err
}

func TestSessionNoCrypto(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	batch := [][]*big.Int{{big.NewInt(10)}, {big.NewInt(-4)}}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("t")}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if res.Outputs[0][0].Int64() != 7 || res.Outputs[0][1].Int64() != 100 {
		t.Fatalf("outputs: %v", res.Outputs[0])
	}
	if res.Outputs[1][0].Int64() != -7 || res.Outputs[1][1].Int64() != 16 {
		t.Fatalf("outputs: %v", res.Outputs[1])
	}
}

func TestSessionWithCrypto(t *testing.T) {
	g, err := elgamal.GenerateGroup(field.F128().Modulus(), 320, prg.NewFromSeed([]byte("tg"), 0))
	if err != nil {
		t.Fatal(err)
	}
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1}
	batch := [][]*big.Int{{big.NewInt(5)}}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("c"), Group: g}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if res.Outputs[0][0].Int64() != 2 || res.Outputs[0][1].Int64() != 25 {
		t.Fatalf("outputs: %v", res.Outputs[0])
	}
}

func TestSessionGinger(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true, Ginger: true}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("g")}, [][]*big.Int{{big.NewInt(6)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() || res.Outputs[0][1].Int64() != 36 {
		t.Fatalf("ginger session failed: %v %v", res.Reasons, res.Outputs)
	}
}

func TestSessionParallelVerify(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	batch := make([][]*big.Int, 6)
	for i := range batch {
		batch[i] = []*big.Int{big.NewInt(int64(i))}
	}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("pv"), Workers: 4}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	for i := range batch {
		if res.Outputs[i][0].Int64() != int64(i)-3 {
			t.Fatalf("instance %d output %v", i, res.Outputs[i])
		}
	}
}

func TestSessionBadProgram(t *testing.T) {
	hello := Hello{Source: "not a program", RhoLin: 1, Rho: 1, NoCommitment: true}
	// The client compiles the program itself before dialing, so it fails
	// locally without touching the wire.
	if _, err := RunSession(context.Background(), nil, hello, ClientOptions{}, [][]*big.Int{{big.NewInt(1)}}); err == nil {
		t.Fatal("bad program accepted by client")
	}
	// A server fed the same hello raw reports the compile failure in its ack
	// and survives.
	client, server := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- ServeConn(context.Background(), server, ServerOptions{}) }()
	cc := newTimedCodec(client, 5*time.Second)
	if err := cc.send(hello); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := cc.recv(&ack); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if ack.Err == "" {
		t.Fatal("server compiled a bad program")
	}
	if err := <-serverErr; err == nil {
		t.Fatal("server reported success for a bad program")
	}
}

func TestSessionOversizedBatch(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	client, server := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- ServeConn(context.Background(), server, ServerOptions{MaxBatch: 1}) }()
	batch := [][]*big.Int{{big.NewInt(1)}, {big.NewInt(2)}}
	_, err := RunSession(context.Background(), client, hello, ClientOptions{Seed: []byte("x")}, batch)
	client.Close()
	// The client sees the rejection as a typed commit-phase failure naming
	// the batch bound; the server reports the sentinel and survives.
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Phase != "commit" {
		t.Fatalf("client err = %v, want *RemoteError in commit phase", err)
	}
	if !strings.Contains(remote.Msg, ErrBatchTooLarge.Error()) {
		t.Fatalf("remote msg %q does not name the batch bound", remote.Msg)
	}
	if err := <-serverErr; !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("server err = %v, want ErrBatchTooLarge", err)
	}
}

func TestSessionMalformedHello(t *testing.T) {
	cases := []struct {
		name  string
		hello Hello
	}{
		{"empty source", Hello{RhoLin: 1, Rho: 1, NoCommitment: true}},
		{"negative repetitions", Hello{Source: sessionSrc, RhoLin: -1, Rho: 1, NoCommitment: true}},
		{"huge repetitions", Hello{Source: sessionSrc, RhoLin: 1, Rho: maxRepetitions + 1, NoCommitment: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Client-side validation rejects before anything hits the wire.
			if _, err := RunSessionDistributed(context.Background(), []net.Conn{nil}, tc.hello, ClientOptions{}, nil); !errors.Is(err, ErrMalformedHello) {
				t.Fatalf("client validation err = %v, want ErrMalformedHello", err)
			}
			// A server receiving it raw reports the sentinel and survives.
			client, server := net.Pipe()
			serverErr := make(chan error, 1)
			go func() { serverErr <- ServeConn(context.Background(), server, ServerOptions{}) }()
			cc := newTimedCodec(client, time.Second)
			if err := cc.send(tc.hello); err != nil {
				t.Fatal(err)
			}
			var ack HelloAck
			if err := cc.recv(&ack); err != nil {
				t.Fatal(err)
			}
			client.Close()
			if ack.Err == "" {
				t.Fatal("server accepted a malformed hello")
			}
			if err := <-serverErr; !errors.Is(err, ErrMalformedHello) {
				t.Fatalf("server err = %v, want ErrMalformedHello", err)
			}
		})
	}
}

// A client that vanishes mid-session must not wedge or panic the server: the
// session goroutine returns an error and the server survives for the next
// connection.
func TestServerSurvivesMidSessionDisconnect(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	client, server := net.Pipe()
	serverErr := make(chan error, 1)
	reg := obs.NewRegistry()
	go func() { serverErr <- ServeConn(context.Background(), server, ServerOptions{Obs: reg}) }()

	// Speak the first half of the protocol by hand, then hang up after
	// receiving the commitments (the server is now blocked on the decommit).
	cc := newTimedCodec(client, 5*time.Second)
	if err := cc.send(hello); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	if err := cc.recv(&ack); err != nil || ack.Err != "" {
		t.Fatalf("hello failed: %v %q", err, ack.Err)
	}
	if err := cc.send(BatchMsg{Req: &vc.CommitRequest{}, Instances: [][]*big.Int{{big.NewInt(4)}}}); err != nil {
		t.Fatal(err)
	}
	var cms CommitmentsMsg
	if err := cc.recv(&cms); err != nil || cms.Err != "" {
		t.Fatalf("commit failed: %v %q", err, cms.Err)
	}
	client.Close()

	select {
	case err := <-serverErr:
		if err == nil {
			t.Fatal("server reported success for a half-finished session")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server goroutine never returned after client disconnect")
	}
	if got := reg.Counter(MetricSessionErrors).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSessionErrors, got)
	}
	// The server is still able to run a fresh, complete session.
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("again")}, [][]*big.Int{{big.NewInt(9)}})
	if err != nil || !res.AllAccepted() {
		t.Fatalf("follow-up session failed: %v", err)
	}
}

// A stalled peer must not hold a session past the IO deadline.
func TestServerIOTimeout(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- ServeConn(context.Background(), server, ServerOptions{IOTimeout: 50 * time.Millisecond})
	}()
	// Send nothing: the hello read must time out.
	select {
	case err := <-serverErr:
		if err == nil {
			t.Fatal("server returned nil for a silent client")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server ignored the IO deadline")
	}
}

// Garbage bytes (not a gob stream) must fail the session, not crash it.
func TestServerSurvivesGarbage(t *testing.T) {
	client, server := net.Pipe()
	serverErr := make(chan error, 1)
	go func() { serverErr <- ServeConn(context.Background(), server, ServerOptions{}) }()
	go func() {
		_, _ = client.Write([]byte("\x00\xffnot gob at all\x13\x37"))
		client.Close()
	}()
	select {
	case err := <-serverErr:
		if err == nil {
			t.Fatal("server decoded garbage as a session")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server hung on garbage input")
	}
}

// Cancelling the server's context mid-session unblocks its I/O and surfaces
// ctx.Err().
func TestServeConnContextCancel(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	serverErr := make(chan error, 1)
	go func() { serverErr <- ServeConn(ctx, server, ServerOptions{}) }()
	cancel()
	select {
	case err := <-serverErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled server never returned")
	}
}

// Cancelling the client's context mid-session closes its connections and
// surfaces ctx.Err().
func TestRunSessionContextCancel(t *testing.T) {
	client, server := net.Pipe()
	// No server loop: the client will block writing its hello into the pipe.
	defer server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	clientErr := make(chan error, 1)
	go func() {
		hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
		_, err := RunSession(ctx, client, hello, ClientOptions{Seed: []byte("cc")}, [][]*big.Int{{big.NewInt(1)}})
		clientErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-clientErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled client never returned")
	}
}

func TestDistributedProvers(t *testing.T) {
	// Three provers each take a slice of the batch (the paper's
	// multi-machine prover); one verifier checks everything.
	const nProvers = 3
	conns := make([]net.Conn, nProvers)
	for i := range conns {
		client, server := net.Pipe()
		conns[i] = client
		go func() { _ = ServeConn(context.Background(), server, ServerOptions{}) }()
	}
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	batch := make([][]*big.Int, 7) // uneven split: 3+3+1
	for i := range batch {
		batch[i] = []*big.Int{big.NewInt(int64(i))}
	}
	res, err := RunSessionDistributed(context.Background(), conns, hello, ClientOptions{Seed: []byte("d")}, batch)
	for _, c := range conns {
		c.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 7 || !res.AllAccepted() {
		t.Fatalf("distributed batch failed: %v", res.Reasons)
	}
	for i := range batch {
		if res.Outputs[i][0].Int64() != int64(i)-3 {
			t.Fatalf("instance %d output %v", i, res.Outputs[i])
		}
	}
}

func TestDistributedNoConns(t *testing.T) {
	if _, err := RunSessionDistributed(context.Background(), nil, Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}, ClientOptions{}, [][]*big.Int{{big.NewInt(1)}}); err == nil {
		t.Fatal("no connections accepted")
	}
}

func TestSessionOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = ServeConn(context.Background(), conn, ServerOptions{Workers: 2, IOTimeout: 30 * time.Second})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	res, err := RunSession(context.Background(), conn, hello, ClientOptions{Seed: []byte("tcp"), IOTimeout: 30 * time.Second}, [][]*big.Int{{big.NewInt(8)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() || res.Outputs[0][0].Int64() != 5 {
		t.Fatalf("tcp session failed: %v %v", res.Reasons, res.Outputs)
	}
}
