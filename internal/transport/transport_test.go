package transport

import (
	"math/big"
	"net"
	"testing"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

const sessionSrc = `
input x : int32;
output y : int32;
output sq : int64;
y = x - 3;
sq = x * x;
`

func runPipeSession(t *testing.T, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	t.Helper()
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- ServeConn(server, ServerOptions{Workers: 2}) }()
	res, err := RunSession(client, hello, opts, batch)
	client.Close()
	<-errCh
	return res, err
}

func TestSessionNoCrypto(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	batch := [][]*big.Int{{big.NewInt(10)}, {big.NewInt(-4)}}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("t")}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if res.Outputs[0][0].Int64() != 7 || res.Outputs[0][1].Int64() != 100 {
		t.Fatalf("outputs: %v", res.Outputs[0])
	}
	if res.Outputs[1][0].Int64() != -7 || res.Outputs[1][1].Int64() != 16 {
		t.Fatalf("outputs: %v", res.Outputs[1])
	}
}

func TestSessionWithCrypto(t *testing.T) {
	g, err := elgamal.GenerateGroup(field.F128().Modulus(), 320, prg.NewFromSeed([]byte("tg"), 0))
	if err != nil {
		t.Fatal(err)
	}
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1}
	batch := [][]*big.Int{{big.NewInt(5)}}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("c"), Group: g}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	if res.Outputs[0][0].Int64() != 2 || res.Outputs[0][1].Int64() != 25 {
		t.Fatalf("outputs: %v", res.Outputs[0])
	}
}

func TestSessionGinger(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true, Ginger: true}
	res, err := runPipeSession(t, hello, ClientOptions{Seed: []byte("g")}, [][]*big.Int{{big.NewInt(6)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() || res.Outputs[0][1].Int64() != 36 {
		t.Fatalf("ginger session failed: %v %v", res.Reasons, res.Outputs)
	}
}

func TestSessionBadProgram(t *testing.T) {
	hello := Hello{Source: "not a program", RhoLin: 1, Rho: 1, NoCommitment: true}
	client, server := net.Pipe()
	go func() { _ = ServeConn(server, ServerOptions{}) }()
	_, err := RunSession(client, hello, ClientOptions{}, [][]*big.Int{{big.NewInt(1)}})
	client.Close()
	if err == nil {
		t.Fatal("bad program accepted")
	}
}

func TestSessionOversizedBatch(t *testing.T) {
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	client, server := net.Pipe()
	go func() { _ = ServeConn(server, ServerOptions{MaxBatch: 1}) }()
	batch := [][]*big.Int{{big.NewInt(1)}, {big.NewInt(2)}}
	_, err := RunSession(client, hello, ClientOptions{Seed: []byte("x")}, batch)
	client.Close()
	if err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestDistributedProvers(t *testing.T) {
	// Three provers each take a slice of the batch (the paper's
	// multi-machine prover); one verifier checks everything.
	const nProvers = 3
	conns := make([]net.Conn, nProvers)
	for i := range conns {
		client, server := net.Pipe()
		conns[i] = client
		go func() { _ = ServeConn(server, ServerOptions{}) }()
	}
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	batch := make([][]*big.Int, 7) // uneven split: 3+3+1
	for i := range batch {
		batch[i] = []*big.Int{big.NewInt(int64(i))}
	}
	res, err := RunSessionDistributed(conns, hello, ClientOptions{Seed: []byte("d")}, batch)
	for _, c := range conns {
		c.Close()
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 7 || !res.AllAccepted() {
		t.Fatalf("distributed batch failed: %v", res.Reasons)
	}
	for i := range batch {
		if res.Outputs[i][0].Int64() != int64(i)-3 {
			t.Fatalf("instance %d output %v", i, res.Outputs[i])
		}
	}
}

func TestDistributedNoConns(t *testing.T) {
	if _, err := RunSessionDistributed(nil, Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}, ClientOptions{}, [][]*big.Int{{big.NewInt(1)}}); err == nil {
		t.Fatal("no connections accepted")
	}
}

func TestSessionOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_ = ServeConn(conn, ServerOptions{Workers: 2})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	res, err := RunSession(conn, hello, ClientOptions{Seed: []byte("tcp")}, [][]*big.Int{{big.NewInt(8)}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() || res.Outputs[0][0].Int64() != 5 {
		t.Fatalf("tcp session failed: %v %v", res.Reasons, res.Outputs)
	}
}
