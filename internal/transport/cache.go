package transport

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"

	"zaatar/internal/compiler"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/vc"
)

// cacheKey identifies a compiled program: the same source compiled for a
// different field or proved under a different backend is a different
// artifact (different constraint system, different precomputation). The
// backend is the session's negotiated backend name, resolved once in
// ServeConn and passed through — key derivation and entry build must agree
// by construction, not by deriving it twice.
type cacheKey struct {
	source  [sha256.Size]byte
	field   string
	backend string
}

func keyOf(h Hello, backend string) cacheKey {
	key := cacheKey{field: h.fieldOf().Name(), backend: backend}
	if h.hashFirst() {
		// v3 hash-first hello: the client sent only the digest. validate
		// guarantees that when both fields are present they agree, so keying
		// on the hash is keying on the source.
		copy(key.source[:], h.SourceHash)
		return key
	}
	key.source = sha256.Sum256([]byte(h.Source))
	return key
}

// labelHash is the metric program_hash label for a key — identical to
// ProgramHash(source), but derivable when the source never crossed the
// wire.
func (k cacheKey) labelHash() string {
	return hex.EncodeToString(k.source[:])[:ProgramHashLen]
}

// cacheEntry is one cached program plus its prover-side precomputation.
// Entries are created open (ready unclosed) so that concurrent sessions for
// the same program wait for a single build instead of compiling in
// parallel; prog/pre/err are written exactly once, before ready closes.
type cacheEntry struct {
	ready chan struct{}
	prog  *compiler.Program
	pre   *vc.Precomputation
	err   error
}

// programCache is an LRU of compiled programs keyed by source hash + field
// + protocol, shared by every session of a Service. The cached values are
// immutable (compiler.Program after compilation, vc.Precomputation by
// construction), so sessions use them concurrently without copying; this is
// what lets a repeat session skip compilation and QAP preprocessing
// entirely.
type programCache struct {
	max     int
	entries map[cacheKey]*list.Element // value: *lruItem
	order   *list.List                 // front = most recently used
	reg     *obs.Registry
}

type lruItem struct {
	key   cacheKey
	entry *cacheEntry
}

func newProgramCache(max int, reg *obs.Registry) *programCache {
	if max < 1 {
		max = 1
	}
	return &programCache{max: max, entries: make(map[cacheKey]*list.Element), order: list.New(), reg: reg}
}

// lookup returns the entry for key, and whether the caller is responsible
// for building it (miss). On a miss the open entry is already inserted, so
// every concurrent looker waits on the same build. The Service serializes
// calls with its own mutex.
func (c *programCache) lookup(key cacheKey) (*cacheEntry, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.reg.Counter(MetricCacheHits).Inc()
		return el.Value.(*lruItem).entry, false
	}
	c.reg.Counter(MetricCacheMisses).Inc()
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, entry: e})
	c.reg.Counter(MetricCacheEntries).Inc()
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruItem).key)
		c.reg.Counter(MetricCacheEvictions).Inc()
		c.reg.Counter(MetricCacheEntries).Add(-1)
	}
	return e, true
}

// drop removes a failed entry so a later session can retry the build (a
// compile error may be transient only in tests, but keeping a poisoned
// entry pinned in the LRU helps nobody).
func (c *programCache) drop(key cacheKey, e *cacheEntry) {
	if el, ok := c.entries[key]; ok && el.Value.(*lruItem).entry == e {
		c.order.Remove(el)
		delete(c.entries, key)
		c.reg.Counter(MetricCacheEntries).Add(-1)
	}
}

// finish resolves an entry without compiling — from a disk-store bundle, or
// with the error that kept the source from arriving — and closes ready.
// Exactly one of finish and build runs, by the lookup winner.
func (e *cacheEntry) finish(prog *compiler.Program, pre *vc.Precomputation, err error) {
	e.prog, e.pre, e.err = prog, pre, err
	close(e.ready)
}

// build compiles the program and its prover precomputation into e and
// closes ready. Only the lookup miss winner calls this, outside the
// Service's lock. The prover.compile span is emitted only here — a cache
// hit has no compile span in its trace, which is how callers observe the
// amortization.
func (e *cacheEntry) build(ctx context.Context, h Hello, backend string) {
	defer close(e.ready)
	compileTr := trace.Start(ctx, "prover.compile")
	e.prog, e.err = compiler.Compile(h.fieldOf(), h.Source)
	compileTr.End()
	if e.err != nil {
		return
	}
	preTr := trace.Start(ctx, "prover.preprocess")
	e.pre, e.err = vc.PreprocessBackend(e.prog, backend)
	preTr.End()
}

// await blocks until the entry is built or ctx is cancelled.
func (e *cacheEntry) await(ctx context.Context) error {
	select {
	case <-e.ready:
		return e.err
	case <-ctx.Done():
		return ctx.Err()
	}
}
