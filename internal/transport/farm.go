package transport

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"zaatar/internal/vc"
)

// FarmError attributes a session failure to one prover connection: the
// worker behind leg Leg (named by ClientOptions.Addrs, falling back to the
// connection's remote address) failed with Err. Sessions over more than one
// prover wrap every leg-level failure — I/O errors, remote phase errors,
// malformed replies — in a FarmError, so a coordinator can tell worker
// death (errors.As with *FarmError) apart from verification failure (which
// is never an error: it surfaces as SessionResult.Accepted[i] == false).
// Unwrap exposes the underlying cause, so errors.As still finds a
// *RemoteError reported by the worker itself.
type FarmError struct {
	Addr string // worker address or name
	Leg  int    // index of the failed connection within the session
	Err  error
}

func (e *FarmError) Error() string {
	return fmt.Sprintf("transport: worker %s (leg %d): %v", e.Addr, e.Leg, e.Err)
}

func (e *FarmError) Unwrap() error { return e.Err }

// legError wraps a leg-level failure in a *FarmError on multi-prover
// sessions; single-prover sessions keep their errors undressed (there is
// only one worker the failure could belong to).
func (s *Session) legError(i int, err error) error {
	if err == nil || !s.multi {
		return err
	}
	var fe *FarmError
	if errors.As(err, &fe) {
		return err
	}
	return &FarmError{Addr: s.legs[i].addr, Leg: i, Err: err}
}

// shardError always wraps: the per-leg shard operations exist for farm
// coordinators, where attribution is the point even on a one-worker farm.
func (s *Session) shardError(i int, err error) error {
	if err == nil {
		return err
	}
	var fe *FarmError
	if errors.As(err, &fe) {
		return err
	}
	return &FarmError{Addr: s.legs[i].addr, Leg: i, Err: err}
}

// NumLegs reports how many prover connections the session spans.
func (s *Session) NumLegs() int { return len(s.legs) }

// LegAddr names the worker behind leg i (ClientOptions.Addrs when given,
// otherwise the connection's remote address).
func (s *Session) LegAddr(i int) string { return s.legs[i].addr }

// LegVersion reports the wire version negotiated with leg i's worker.
func (s *Session) LegVersion(i int) int { return s.legs[i].version }

// Verifier exposes the session's verifier so a coordinator can drive the
// commit/decommit phases itself (see ShardCommit/ShardRespond) or Fork
// per-shard verifiers off its precomputation. The verifier is not safe for
// concurrent use; coordinators fork one per in-flight shard.
func (s *Session) Verifier() *vc.Verifier { return s.verifier }

// CloseLeg tears down one prover connection without ending the session —
// the farm's way of retiring a dead worker while the surviving legs keep
// serving. Operations on a closed leg fail with a *FarmError wrapping the
// connection error.
func (s *Session) CloseLeg(i int) error {
	return s.legs[i].conn.Close()
}

// ShardCommit runs the commit half of one mini-batch on leg i alone: it
// ships req (a fresh per-shard commit request — shards are independent
// batches, each with its own key and seed) together with the shard's
// instances, and collects the per-instance commitments. The caller must
// follow with ShardRespond on the same leg before starting this leg's next
// shard; distinct legs may run shards concurrently. Requires the leg to
// speak wire v2 (keep-alive): each shard is an ordinary wire batch.
func (s *Session) ShardCommit(ctx context.Context, i int, req *vc.CommitRequest, instances [][]*big.Int) ([]*vc.Commitment, error) {
	leg := s.legs[i]
	leg.mu.Lock()
	defer leg.mu.Unlock()
	defer watch(ctx, leg.conn)()
	if err := leg.cc.send(BatchMsg{Req: req, Instances: instances}); err != nil {
		return nil, s.shardError(i, ctxErr(ctx, err))
	}
	var cms CommitmentsMsg
	if err := leg.cc.recv(&cms); err != nil {
		return nil, s.shardError(i, ctxErr(ctx, err))
	}
	if cms.Err != "" {
		return nil, s.shardError(i, &RemoteError{Phase: "commit", Msg: cms.Err})
	}
	if len(cms.Items) != len(instances) {
		return nil, s.shardError(i, errors.New("transport: commitment count mismatch"))
	}
	return cms.Items, nil
}

// ShardRespond completes leg i's in-flight shard: it reveals the decommit
// (seed + consistency points) and collects the per-instance responses,
// stitching the worker's trace spans into the session's timeline. Must
// follow a successful ShardCommit on the same leg.
func (s *Session) ShardRespond(ctx context.Context, i int, dreq *vc.DecommitRequest) ([]*vc.Response, error) {
	leg := s.legs[i]
	leg.mu.Lock()
	defer leg.mu.Unlock()
	defer watch(ctx, leg.conn)()
	if err := leg.cc.send(DecommitMsg{Req: dreq}); err != nil {
		return nil, s.shardError(i, ctxErr(ctx, err))
	}
	var resp ResponsesMsg
	if err := leg.cc.recv(&resp); err != nil {
		return nil, s.shardError(i, ctxErr(ctx, err))
	}
	if resp.Err != "" {
		return nil, s.shardError(i, &RemoteError{Phase: "respond", Msg: resp.Err})
	}
	s.tc.Import(resp.Trace)
	return resp.Items, nil
}
