// Package transport runs the verified-computation protocol between a
// verifier and a prover connected by any net.Conn, with gob-encoded
// messages. This realizes the deployment picture of Figure 1: the verifier
// ships the computation Ψ and the batch of inputs; per [53] Apdx A.3 the
// query material crossing the wire is one encrypted commitment vector, a
// PRG seed, and the consistency points, rather than full query sets.
//
// Three wire dialects are spoken. v1 is the original
// one-batch-per-connection exchange. v2 adds session keep-alive: after
// version negotiation in the hello/ack, a connection carries any number of
// batches, all reusing the negotiated program (and, server-side, its cached
// compilation and QAP precomputation), so repeat batches skip compilation
// and negotiation. Each batch still carries its own commit request: the
// commitment key is per-batch — a decommit reveals a consistency point over
// the key's secret vector, so a key reused across batches would stop
// binding. v3 adds hash-first source exchange: the hello ships
// sha256(source) instead of the source, the server answers SourceNeeded
// only when neither its memory cache nor its disk artifact store
// (internal/store, ServiceOptions.Store) holds the program, and a warm
// server opens the session with the program never crossing the wire.
// Versioning rides gob's forward-compatible field semantics: a peer that
// predates the Version fields simply leaves them zero, which both ends
// treat as v1; a pre-v3 server rejects a hash-first hello with its own
// version in the error ack, and the client redials and retries with the
// full source (ClientOptions.Redial).
//
// The prover side is a long-lived multi-tenant Service: compiled programs
// and their prover precomputations live in an LRU shared across sessions,
// and a service-wide admission semaphore bounds how many sessions compute
// concurrently. The verifier side is a Session (NewSession / RunBatch /
// Close); RunSession and RunSessionDistributed remain as single-batch
// conveniences on top of it.
//
// Both ends are context-aware: cancelling the context closes the
// connection, unblocking any in-flight read or write, and per-message I/O
// deadlines bound how long a stalled peer can hold a session. Failures
// reported by the peer surface as *RemoteError; local protocol violations
// wrap the Err* sentinel errors, and version mismatches surface as
// *ProtocolVersionError.
//
// cmd/zaatar-server and cmd/zaatar-client reach this package through the
// public zaatar API (zaatar.Serve, zaatar.Client); tests drive both ends
// over net.Pipe.
package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"net"
	"strings"
	"time"

	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// Wire protocol versions. A Hello carries the highest version the client
// speaks; the ack answers with the version the server selected (never
// higher than the client's). Zero means the peer predates versioning and
// speaks v1.
const (
	// ProtocolV1 is the original dialect: one batch per connection, the
	// commit request sent with the batch.
	ProtocolV1 = 1
	// ProtocolV2 adds session keep-alive: multiple batches per connection
	// (each carrying its own commit request and a freshly reseeded query
	// set) and an explicit Close frame.
	ProtocolV2 = 2
	// ProtocolV3 adds hash-first source exchange: the hello carries only
	// sha256(source); the server answers SourceNeeded when neither its
	// memory cache nor its artifact store knows the program, and only then
	// does the client upload the source in a SourceMsg. A warm server opens
	// a session without the program ever crossing the wire.
	ProtocolV3 = 3
	// MaxProtocolVersion is the highest version this build speaks.
	MaxProtocolVersion = ProtocolV3
)

// Typed failures. Peer-reported errors are *RemoteError; local validation
// failures wrap the sentinels.
var (
	// ErrBatchTooLarge reports a batch outside the server's [1, MaxBatch]
	// window.
	ErrBatchTooLarge = errors.New("transport: batch size out of range")
	// ErrMalformedHello reports a session-opening message that fails
	// validation (empty or oversized source, out-of-range parameters).
	ErrMalformedHello = errors.New("transport: malformed hello")
	// ErrSessionClosed reports a RunBatch on a closed Session.
	ErrSessionClosed = errors.New("transport: session closed")
	// ErrSingleBatch reports a second RunBatch on a session whose negotiated
	// wire version (v1) supports only one batch per connection.
	ErrSingleBatch = errors.New("transport: negotiated wire protocol v1 supports one batch per connection")
	// ErrNoCommonBackend reports a hello whose offered proof backends share
	// no member with the server's supported set.
	ErrNoCommonBackend = errors.New("transport: no common proof backend")
	// ErrSourceTooLarge reports a program source beyond the receiving
	// side's size limit (ServiceOptions.MaxSourceBytes on the server;
	// DefaultMaxSourceBytes elsewhere).
	ErrSourceTooLarge = errors.New("transport: source exceeds the size limit")
)

// RemoteError is a failure the peer reported over the wire, tagged with the
// protocol phase ("hello", "commit", "respond") in which it occurred.
type RemoteError struct {
	Phase string
	Msg   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: prover failed in %s phase: %s", e.Phase, e.Msg)
}

// ProtocolVersionError reports a wire version this build does not speak —
// either a Hello requesting an unknown version, or an ack selecting a
// version higher than the client offered. Max names the highest version the
// reporting side supports, so a newer peer can retry with it.
type ProtocolVersionError struct {
	Version int // the version the peer asked for or selected
	Max     int // highest version this side speaks
}

func (e *ProtocolVersionError) Error() string {
	return fmt.Sprintf("transport: unsupported wire protocol version %d (max supported %d)", e.Version, e.Max)
}

// Metric names recorded into the obs registry by the transport layer.
const (
	MetricSessions       = "transport.sessions"        // counter: server sessions opened
	MetricSessionErrors  = "transport.session.errors"  // counter: server sessions failed
	MetricServedInstance = "transport.instances"       // counter: instances served
	MetricServedBatches  = "transport.batches"         // counter: batches served (≥ sessions under v2 keep-alive)
	MetricSpanSession    = "transport.session"         // histogram: server session wall
	MetricClientSessions = "transport.client.sessions" // counter: client sessions run
	MetricSpanClient     = "transport.client.session"  // histogram: client session wall

	MetricCacheHits      = "transport.cache.hits"      // counter: program-cache hits
	MetricCacheMisses    = "transport.cache.misses"    // counter: program-cache misses (compiles)
	MetricCacheEvictions = "transport.cache.evictions" // counter: program-cache LRU evictions
	MetricCacheEntries   = "transport.cache.entries"   // gauge: programs currently cached

	MetricAdmissionWait   = "transport.admission.wait"   // histogram: time a session waited for an admission slot
	MetricAdmissionActive = "transport.admission.active" // gauge: sessions currently holding an admission slot

	MetricConnsOpen     = "transport.conns.open"     // gauge: connections currently open in Serve
	MetricConnsRejected = "transport.conns.rejected" // counter: connections refused at the MaxConns cap
	MetricIdleClosed    = "transport.idle.closed"    // counter: idle keep-alive connections reaped

	MetricStoreHits        = "transport.store.hits"         // counter: programs served from the disk artifact store
	MetricStoreMisses      = "transport.store.misses"       // counter: store lookups that fell through to a compile
	MetricStoreBytesSaved  = "transport.store.bytes_saved"  // counter: source bytes never sent thanks to hash-first hellos
	MetricStoreWriteErrors = "transport.store.write_errors" // counter: failed bundle write-backs (service keeps running)

	MetricHelloSourceSkipped = "transport.hello.source_skipped" // counter: v3 sessions opened without a source upload

	// MetricBackendSessions prefixes a per-backend session counter; the
	// full series name is the prefix plus the negotiated backend name,
	// e.g. "pcp.backend.sessions.sumcheck".
	MetricBackendSessions = "pcp.backend.sessions."

	// MetricSLOPrefix prefixes the service's rolling-window SLO gauges
	// (".requests", ".error_rate", ".p99_seconds" — see obs.ExposeSLO).
	MetricSLOPrefix = "transport.slo"
)

// Label keys for the labeled (per-tenant) views of the transport metrics.
// transport.sessions breaks out by {backend}; transport.batches and
// transport.instances by {backend, program_hash}. The label schema —
// allowed keys, cardinality bounds, and the program-hash truncation rule —
// is documented in docs/PROTOCOL.md §7.1.
const (
	LabelBackend     = "backend"
	LabelProgramHash = "program_hash"
)

// ProgramHashLen is how many hex characters of the program's SHA-256 a
// metric label carries: 48 bits — enough to tell tenants' programs apart,
// short enough to keep series names readable.
const ProgramHashLen = 12

// ProgramHash derives the metric-label identity of a program source: the
// first ProgramHashLen hex characters of its SHA-256. The full digest
// remains the cache key (cache.go); the label is deliberately truncated
// since metric labels need distinguishability, not collision resistance.
func ProgramHash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])[:ProgramHashLen]
}

// Hello opens a session: the verifier ships the computation and protocol
// parameters (everything except its secret randomness).
type Hello struct {
	Source       string
	Field220     bool
	Ginger       bool
	RhoLin, Rho  int
	NoCommitment bool

	// Backends is the ordered list of proof backends the client can verify,
	// most preferred first; the server answers (in HelloAck.Backend) with
	// the first offered name it supports. Empty — what a pre-negotiation
	// peer sends, since gob omits empty fields — falls back to the legacy
	// Ginger bool: an offer of exactly [ginger] or [zaatar].
	Backends []string

	// Version is the highest wire protocol version the client speaks; the
	// server answers (in HelloAck.Version) with the version it selected,
	// never higher. Zero — what a pre-versioning peer sends, since gob omits
	// zero fields — means v1.
	Version int

	// SourceHash is sha256(Source). Under wire v3 a client may send the
	// hash alone (Source empty): a server that already holds the program —
	// in its memory cache or its on-disk artifact store — opens the session
	// without the source ever crossing the wire, and answers
	// HelloAck.SourceNeeded otherwise. When both fields are present they
	// must agree; pre-v3 peers leave the hash empty.
	SourceHash []byte

	// Trace and TraceParent propagate the verifier's trace context so the
	// prover's spans land in the same trace (under the verifier's session
	// span). Zero values — also what a pre-tracing peer sends, since gob
	// omits absent and zero fields — leave tracing off for the session.
	Trace       trace.TraceID
	TraceParent trace.SpanID
}

// DefaultMaxSourceBytes is the source-size bound applied when no explicit
// limit is configured (ServiceOptions.MaxSourceBytes).
const DefaultMaxSourceBytes = 1 << 20

// Sanity bounds on Hello fields; beyond these the message is malformed
// rather than merely expensive.
const (
	maxRepetitions  = 1 << 12
	maxBackends     = 8
	maxBackendBytes = 32
)

// hashFirst reports a v3 hash-only hello: no source, just its digest.
func (h Hello) hashFirst() bool {
	return h.Source == "" && h.version() >= ProtocolV3 && len(h.SourceHash) == sha256.Size
}

// validate checks the hello against maxSource (0 means
// DefaultMaxSourceBytes).
func (h Hello) validate(maxSource int) error {
	if maxSource <= 0 {
		maxSource = DefaultMaxSourceBytes
	}
	switch {
	case h.Version < 0 || h.Version > MaxProtocolVersion:
		return &ProtocolVersionError{Version: h.Version, Max: MaxProtocolVersion}
	case strings.TrimSpace(h.Source) == "" && !h.hashFirst():
		return fmt.Errorf("%w: empty source", ErrMalformedHello)
	case len(h.Source) > maxSource:
		return fmt.Errorf("%w: source is %d bytes (max %d)", ErrSourceTooLarge, len(h.Source), maxSource)
	case len(h.SourceHash) != 0 && len(h.SourceHash) != sha256.Size:
		return fmt.Errorf("%w: source hash is %d bytes, want %d", ErrMalformedHello, len(h.SourceHash), sha256.Size)
	case h.RhoLin < 0 || h.Rho < 0 || h.RhoLin > maxRepetitions || h.Rho > maxRepetitions:
		return fmt.Errorf("%w: PCP repetitions (ρ_lin=%d, ρ=%d) out of range [0, %d]",
			ErrMalformedHello, h.RhoLin, h.Rho, maxRepetitions)
	case len(h.Backends) > maxBackends:
		return fmt.Errorf("%w: %d backend names offered (max %d)", ErrMalformedHello, len(h.Backends), maxBackends)
	}
	for _, name := range h.Backends {
		if name == "" || len(name) > maxBackendBytes {
			return fmt.Errorf("%w: bad backend name %q", ErrMalformedHello, name)
		}
	}
	if h.Source != "" && len(h.SourceHash) == sha256.Size {
		if sum := sha256.Sum256([]byte(h.Source)); !bytes.Equal(sum[:], h.SourceHash) {
			return fmt.Errorf("%w: source hash does not match the source", ErrMalformedHello)
		}
	}
	return nil
}

// offered normalizes the hello's backend offer: an explicit list is taken
// as-is; a legacy peer's empty list means the single backend the Ginger
// bool encodes.
func (h Hello) offered() []string {
	if len(h.Backends) > 0 {
		return h.Backends
	}
	if h.Ginger {
		return []string{pcp.BackendGinger}
	}
	return []string{pcp.BackendZaatar}
}

// version normalizes the gob zero value to v1.
func (h Hello) version() int {
	if h.Version == 0 {
		return ProtocolV1
	}
	return h.Version
}

// HelloAck reports compilation results (or an error) back to the verifier.
// Under wire v3 a first ack with SourceNeeded set is an interim frame: the
// server knows neither the program nor a stored bundle for the hello's
// hash, the client answers with a SourceMsg, and the definitive ack
// follows.
type HelloAck struct {
	Err                   string
	NumInputs, NumOutputs int
	// SourceNeeded asks a hash-first client to upload the program source
	// before the session can open.
	SourceNeeded bool
	// Version is the wire version the server selected for the session
	// (≤ the client's Hello.Version). Zero means a pre-versioning server,
	// i.e. v1.
	Version int
	// Backend is the proof backend the server selected from the hello's
	// offer. Empty means a pre-negotiation server, which derives the
	// backend from the legacy Ginger bool; the client then assumes the
	// same derivation.
	Backend string
}

// SourceMsg answers a SourceNeeded ack with the program source whose hash
// the hello claimed; the server verifies the digest before compiling.
type SourceMsg struct {
	Source string
}

// BatchMsg carries one batch: the per-instance inputs plus that batch's
// commit request — the key material is per-batch, so every batch of a v2
// keep-alive session ships a fresh Req. A final Close frame ends the
// session cleanly. (The server tolerates a nil Req after the first batch
// for pre-re-keying v2 clients, whose key reuse was unsound but wire-legal.)
type BatchMsg struct {
	Req       *vc.CommitRequest
	Instances [][]*big.Int
	// Close, under v2, marks a goodbye frame: no batch follows and the
	// server ends the session with success.
	Close bool
}

// CommitmentsMsg returns the per-instance commitments (with claimed
// outputs).
type CommitmentsMsg struct {
	Err   string
	Items []*vc.Commitment
}

// DecommitMsg reveals the query seed and consistency points.
type DecommitMsg struct {
	Req *vc.DecommitRequest
}

// ResponsesMsg returns the per-instance query answers. When the session is
// traced, Trace carries the prover's completed spans back to the verifier,
// which stitches them into its own timeline; peers that predate the field
// simply leave it empty. Under v2 keep-alive the prover ships only the
// spans completed since the previous batch.
type ResponsesMsg struct {
	Err   string
	Items []*vc.Response
	Trace []trace.Record
}

// SessionResult is the verifier-side outcome of one batch.
type SessionResult struct {
	Accepted []bool
	Reasons  []string
	Outputs  [][]*big.Int
}

// AllAccepted reports whether every instance verified.
func (r *SessionResult) AllAccepted() bool {
	for _, ok := range r.Accepted {
		if !ok {
			return false
		}
	}
	return len(r.Accepted) > 0
}

func (h Hello) fieldOf() *field.Field {
	if h.Field220 {
		return field.F220()
	}
	return field.F128()
}

// config builds the vc configuration for the session's negotiated backend.
// The backend is resolved exactly once per session — by negotiateBackend on
// the server, from the acks on the client — and passed through here, so no
// later stage re-derives it from the hello.
func (h Hello) config(workers int, seed []byte, backend string) vc.Config {
	return vc.Config{
		Backend:      backend,
		Params:       pcp.Params{RhoLin: h.RhoLin, Rho: h.Rho},
		NoCommitment: h.NoCommitment,
		Workers:      workers,
		Seed:         seed,
	}
}

// negotiateBackend picks the first offered backend the server supports.
func negotiateBackend(offered, supported []string) (string, error) {
	for _, want := range offered {
		for _, have := range supported {
			if want == have {
				return want, nil
			}
		}
	}
	return "", fmt.Errorf("%w: offered %v, supported %v", ErrNoCommonBackend, offered, supported)
}

// ServerOptions configures a single-connection prover (see ServeConn). The
// long-lived, multi-tenant form is ServiceOptions.
type ServerOptions struct {
	// Workers is the prover's per-session parallelism over a batch.
	Workers int
	// MaxBatch bounds the number of instances a client may submit.
	MaxBatch int
	// IOTimeout, when positive, is the per-message read/write deadline on
	// the connection; a peer stalling longer than this fails the session.
	IOTimeout time.Duration
	// Obs receives the transport's counters and spans; nil uses
	// obs.Default().
	Obs *obs.Registry
}

// timedCodec arms a fresh connection deadline before every gob message, so
// one stalled peer cannot pin a session goroutine forever.
type timedCodec struct {
	conn    net.Conn
	timeout time.Duration
	enc     *gob.Encoder
	dec     *gob.Decoder
}

func newTimedCodec(conn net.Conn, timeout time.Duration) *timedCodec {
	return &timedCodec{conn: conn, timeout: timeout, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (c *timedCodec) arm() {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

func (c *timedCodec) send(v any) error {
	c.arm()
	return c.enc.Encode(v)
}

func (c *timedCodec) recv(v any) error {
	c.arm()
	return c.dec.Decode(v)
}

// recvTimeout is recv with an explicit deadline replacing the per-message
// timeout; d ≤ 0 falls back to the default arming.
func (c *timedCodec) recvTimeout(v any, d time.Duration) error {
	if d <= 0 {
		return c.recv(v)
	}
	_ = c.conn.SetDeadline(time.Now().Add(d))
	return c.dec.Decode(v)
}

// watch closes conn when ctx is cancelled, unblocking in-flight gob I/O;
// the returned stop func releases the watcher.
func watch(ctx context.Context, conn net.Conn) (stop func() bool) {
	return context.AfterFunc(ctx, func() { _ = conn.Close() })
}

// ctxErr maps an I/O error on a cancelled session to the context's error,
// so callers see ctx.Err() rather than "use of closed network connection".
func ctxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// ServeConn handles one verifier connection on the prover side with a
// throwaway single-session service: compile the received program, then
// serve its batches until the session ends, the context is cancelled, or
// the peer stalls past opts.IOTimeout. Long-lived deployments should hold
// one Service and call its ServeConn instead, which is what makes the
// program cache and admission control span connections.
func ServeConn(ctx context.Context, conn net.Conn, opts ServerOptions) error {
	svc := NewService(ServiceOptions{
		Workers:     opts.Workers,
		MaxSessions: 1,
		MaxBatch:    opts.MaxBatch,
		IOTimeout:   opts.IOTimeout,
		CacheSize:   1,
		Obs:         opts.Obs,
	})
	return svc.ServeConn(ctx, conn)
}
