// Package transport runs the verified-computation protocol between a
// verifier and a prover connected by any net.Conn, with gob-encoded
// messages. This realizes the deployment picture of Figure 1: the verifier
// ships the computation Ψ and the batch of inputs; per [53] Apdx A.3 the
// query material crossing the wire is one encrypted commitment vector, a
// PRG seed, and the consistency points, rather than full query sets.
//
// cmd/zaatar-server and cmd/zaatar-client are thin wrappers over ServeConn
// and RunSession; tests drive both ends over net.Pipe.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"net"

	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// Hello opens a session: the verifier ships the computation and protocol
// parameters (everything except its secret randomness).
type Hello struct {
	Source       string
	Field220     bool
	Ginger       bool
	RhoLin, Rho  int
	NoCommitment bool
}

// HelloAck reports compilation results (or an error) back to the verifier.
type HelloAck struct {
	Err                   string
	NumInputs, NumOutputs int
}

// BatchMsg carries the commit request and every instance's inputs.
type BatchMsg struct {
	Req       *vc.CommitRequest
	Instances [][]*big.Int
}

// CommitmentsMsg returns the per-instance commitments (with claimed
// outputs).
type CommitmentsMsg struct {
	Err   string
	Items []*vc.Commitment
}

// DecommitMsg reveals the query seed and consistency points.
type DecommitMsg struct {
	Req *vc.DecommitRequest
}

// ResponsesMsg returns the per-instance query answers.
type ResponsesMsg struct {
	Err   string
	Items []*vc.Response
}

// SessionResult is the verifier-side outcome.
type SessionResult struct {
	Accepted []bool
	Reasons  []string
	Outputs  [][]*big.Int
}

// AllAccepted reports whether every instance verified.
func (r *SessionResult) AllAccepted() bool {
	for _, ok := range r.Accepted {
		if !ok {
			return false
		}
	}
	return len(r.Accepted) > 0
}

func (h Hello) fieldOf() *field.Field {
	if h.Field220 {
		return field.F220()
	}
	return field.F128()
}

func (h Hello) config(workers int, seed []byte) vc.Config {
	cfg := vc.Config{
		Params:       pcp.Params{RhoLin: h.RhoLin, Rho: h.Rho},
		NoCommitment: h.NoCommitment,
		Workers:      workers,
		Seed:         seed,
	}
	if h.Ginger {
		cfg.Protocol = vc.Ginger
	}
	return cfg
}

// ServerOptions configures the prover side.
type ServerOptions struct {
	// Workers is the prover's batch parallelism.
	Workers int
	// MaxBatch bounds the number of instances a client may submit.
	MaxBatch int
}

// ServeConn handles one verifier session on the prover side: compile the
// received program, commit to every instance, answer the decommit. It
// returns when the session ends.
func ServeConn(conn net.Conn, opts ServerOptions) error {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("transport: reading hello: %w", err)
	}
	prog, err := compiler.Compile(hello.fieldOf(), hello.Source)
	if err != nil {
		_ = enc.Encode(HelloAck{Err: err.Error()})
		return err
	}
	prover, err := vc.NewProver(prog, hello.config(opts.Workers, nil))
	if err != nil {
		_ = enc.Encode(HelloAck{Err: err.Error()})
		return err
	}
	if err := enc.Encode(HelloAck{NumInputs: prog.NumInputs(), NumOutputs: prog.NumOutputs()}); err != nil {
		return err
	}

	var batch BatchMsg
	if err := dec.Decode(&batch); err != nil {
		return fmt.Errorf("transport: reading batch: %w", err)
	}
	maxBatch := opts.MaxBatch
	if maxBatch == 0 {
		maxBatch = 1 << 16
	}
	if len(batch.Instances) == 0 || len(batch.Instances) > maxBatch {
		msg := fmt.Sprintf("transport: batch size %d out of range [1, %d]", len(batch.Instances), maxBatch)
		_ = enc.Encode(CommitmentsMsg{Err: msg})
		return errors.New(msg)
	}
	prover.HandleCommitRequest(batch.Req)

	states := make([]*vc.InstanceState, len(batch.Instances))
	cms := CommitmentsMsg{Items: make([]*vc.Commitment, len(batch.Instances))}
	for i, in := range batch.Instances {
		cm, st, err := prover.Commit(in)
		if err != nil {
			_ = enc.Encode(CommitmentsMsg{Err: err.Error()})
			return err
		}
		cms.Items[i], states[i] = cm, st
	}
	if err := enc.Encode(cms); err != nil {
		return err
	}

	var decommit DecommitMsg
	if err := dec.Decode(&decommit); err != nil {
		return fmt.Errorf("transport: reading decommit: %w", err)
	}
	if err := prover.HandleDecommit(decommit.Req); err != nil {
		_ = enc.Encode(ResponsesMsg{Err: err.Error()})
		return err
	}
	resp := ResponsesMsg{Items: make([]*vc.Response, len(states))}
	for i, st := range states {
		r, err := prover.Respond(st)
		if err != nil {
			_ = enc.Encode(ResponsesMsg{Err: err.Error()})
			return err
		}
		resp.Items[i] = r
	}
	return enc.Encode(resp)
}

// ClientOptions configures the verifier side of a session.
type ClientOptions struct {
	// Seed fixes the verifier's randomness; empty draws fresh randomness.
	Seed []byte
	// Group overrides the ElGamal group (tests with non-production fields).
	Group *elgamal.Group
}

// RunSession drives the verifier side over an established connection. The
// protocol parameters come from hello, which both sides see; the verifier's
// secret randomness does not.
func RunSession(conn net.Conn, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	return RunSessionDistributed([]net.Conn{conn}, hello, opts, batch)
}

// clientLeg is the verifier's state for one prover connection.
type clientLeg struct {
	enc   *gob.Encoder
	dec   *gob.Decoder
	chunk [][]*big.Int
	cms   []*vc.Commitment
	resps []*vc.Response
}

// RunSessionDistributed splits a batch across several prover connections —
// the paper's distributed prover (§5.1: "the prover can be distributed over
// multiple machines, with each machine computing a subset of a batch").
// Binding is preserved because the query seed is revealed only after every
// prover's commitments have arrived.
func RunSessionDistributed(conns []net.Conn, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	if len(conns) == 0 {
		return nil, errors.New("transport: no prover connections")
	}
	prog, err := compiler.Compile(hello.fieldOf(), hello.Source)
	if err != nil {
		return nil, err
	}
	cfg := hello.config(0, opts.Seed)
	cfg.Group = opts.Group
	verifier, err := vc.NewVerifier(prog, cfg)
	if err != nil {
		return nil, err
	}

	// Partition the batch into contiguous chunks, one per prover.
	legs := make([]*clientLeg, 0, len(conns))
	per := (len(batch) + len(conns) - 1) / len(conns)
	for i, conn := range conns {
		lo := i * per
		if lo >= len(batch) {
			break
		}
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		legs = append(legs, &clientLeg{
			enc:   gob.NewEncoder(conn),
			dec:   gob.NewDecoder(conn),
			chunk: batch[lo:hi],
		})
	}

	// Phase 1: hello + commit request + inputs to every prover; collect all
	// commitments before revealing anything further.
	req := verifier.Setup()
	for _, leg := range legs {
		if err := leg.enc.Encode(hello); err != nil {
			return nil, err
		}
		var ack HelloAck
		if err := leg.dec.Decode(&ack); err != nil {
			return nil, err
		}
		if ack.Err != "" {
			return nil, fmt.Errorf("transport: prover rejected program: %s", ack.Err)
		}
		if ack.NumInputs != prog.NumInputs() || ack.NumOutputs != prog.NumOutputs() {
			return nil, errors.New("transport: prover disagrees on the io shape")
		}
		if err := leg.enc.Encode(BatchMsg{Req: req, Instances: leg.chunk}); err != nil {
			return nil, err
		}
	}
	for _, leg := range legs {
		var cms CommitmentsMsg
		if err := leg.dec.Decode(&cms); err != nil {
			return nil, err
		}
		if cms.Err != "" {
			return nil, fmt.Errorf("transport: prover commit failed: %s", cms.Err)
		}
		if len(cms.Items) != len(leg.chunk) {
			return nil, errors.New("transport: commitment count mismatch")
		}
		leg.cms = cms.Items
	}

	// Phase 2: decommit to every prover, collect responses.
	dreq, err := verifier.Decommit()
	if err != nil {
		return nil, err
	}
	for _, leg := range legs {
		if err := leg.enc.Encode(DecommitMsg{Req: dreq}); err != nil {
			return nil, err
		}
	}
	for _, leg := range legs {
		var resp ResponsesMsg
		if err := leg.dec.Decode(&resp); err != nil {
			return nil, err
		}
		if resp.Err != "" {
			return nil, fmt.Errorf("transport: prover respond failed: %s", resp.Err)
		}
		if len(resp.Items) != len(leg.chunk) {
			return nil, errors.New("transport: response count mismatch")
		}
		leg.resps = resp.Items
	}

	// Phase 3: verify everything.
	out := &SessionResult{
		Accepted: make([]bool, 0, len(batch)),
		Reasons:  make([]string, 0, len(batch)),
		Outputs:  make([][]*big.Int, 0, len(batch)),
	}
	for _, leg := range legs {
		for i := range leg.chunk {
			ok, reason := verifier.VerifyInstance(leg.chunk[i], leg.cms[i], leg.resps[i])
			out.Accepted = append(out.Accepted, ok)
			out.Reasons = append(out.Reasons, reason)
			out.Outputs = append(out.Outputs, leg.cms[i].Output)
		}
	}
	return out, nil
}
