// Package transport runs the verified-computation protocol between a
// verifier and a prover connected by any net.Conn, with gob-encoded
// messages. This realizes the deployment picture of Figure 1: the verifier
// ships the computation Ψ and the batch of inputs; per [53] Apdx A.3 the
// query material crossing the wire is one encrypted commitment vector, a
// PRG seed, and the consistency points, rather than full query sets.
//
// Both ends are context-aware: cancelling the context closes the
// connection, unblocking any in-flight read or write, and per-message I/O
// deadlines bound how long a stalled peer can hold a session. Failures
// reported by the peer surface as *RemoteError; local protocol violations
// wrap the Err* sentinel errors.
//
// cmd/zaatar-server and cmd/zaatar-client are thin wrappers over ServeConn
// and RunSession; tests drive both ends over net.Pipe.
package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/big"
	"net"
	"strings"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// Typed failures. Peer-reported errors are *RemoteError; local validation
// failures wrap the sentinels.
var (
	// ErrBatchTooLarge reports a batch outside the server's [1, MaxBatch]
	// window.
	ErrBatchTooLarge = errors.New("transport: batch size out of range")
	// ErrMalformedHello reports a session-opening message that fails
	// validation (empty or oversized source, out-of-range parameters).
	ErrMalformedHello = errors.New("transport: malformed hello")
)

// RemoteError is a failure the peer reported over the wire, tagged with the
// protocol phase ("hello", "commit", "respond") in which it occurred.
type RemoteError struct {
	Phase string
	Msg   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: prover failed in %s phase: %s", e.Phase, e.Msg)
}

// Metric names recorded into the obs registry by the transport layer.
const (
	MetricSessions       = "transport.sessions"        // counter: server sessions opened
	MetricSessionErrors  = "transport.session.errors"  // counter: server sessions failed
	MetricServedInstance = "transport.instances"       // counter: instances served
	MetricSpanSession    = "transport.session"         // histogram: server session wall
	MetricClientSessions = "transport.client.sessions" // counter: client sessions run
	MetricSpanClient     = "transport.client.session"  // histogram: client session wall
)

// Hello opens a session: the verifier ships the computation and protocol
// parameters (everything except its secret randomness).
type Hello struct {
	Source       string
	Field220     bool
	Ginger       bool
	RhoLin, Rho  int
	NoCommitment bool

	// Trace and TraceParent propagate the verifier's trace context so the
	// prover's spans land in the same trace (under the verifier's session
	// span). Zero values — also what a pre-tracing peer sends, since gob
	// omits absent and zero fields — leave tracing off for the session.
	Trace       trace.TraceID
	TraceParent trace.SpanID
}

// Sanity bounds on Hello fields; beyond these the message is malformed
// rather than merely expensive.
const (
	maxSourceBytes = 1 << 20
	maxRepetitions = 1 << 12
)

func (h Hello) validate() error {
	switch {
	case strings.TrimSpace(h.Source) == "":
		return fmt.Errorf("%w: empty source", ErrMalformedHello)
	case len(h.Source) > maxSourceBytes:
		return fmt.Errorf("%w: source is %d bytes (max %d)", ErrMalformedHello, len(h.Source), maxSourceBytes)
	case h.RhoLin < 0 || h.Rho < 0 || h.RhoLin > maxRepetitions || h.Rho > maxRepetitions:
		return fmt.Errorf("%w: PCP repetitions (ρ_lin=%d, ρ=%d) out of range [0, %d]",
			ErrMalformedHello, h.RhoLin, h.Rho, maxRepetitions)
	}
	return nil
}

// HelloAck reports compilation results (or an error) back to the verifier.
type HelloAck struct {
	Err                   string
	NumInputs, NumOutputs int
}

// BatchMsg carries the commit request and every instance's inputs.
type BatchMsg struct {
	Req       *vc.CommitRequest
	Instances [][]*big.Int
}

// CommitmentsMsg returns the per-instance commitments (with claimed
// outputs).
type CommitmentsMsg struct {
	Err   string
	Items []*vc.Commitment
}

// DecommitMsg reveals the query seed and consistency points.
type DecommitMsg struct {
	Req *vc.DecommitRequest
}

// ResponsesMsg returns the per-instance query answers. When the session is
// traced, Trace carries the prover's completed spans back to the verifier,
// which stitches them into its own timeline; peers that predate the field
// simply leave it empty.
type ResponsesMsg struct {
	Err   string
	Items []*vc.Response
	Trace []trace.Record
}

// SessionResult is the verifier-side outcome.
type SessionResult struct {
	Accepted []bool
	Reasons  []string
	Outputs  [][]*big.Int
}

// AllAccepted reports whether every instance verified.
func (r *SessionResult) AllAccepted() bool {
	for _, ok := range r.Accepted {
		if !ok {
			return false
		}
	}
	return len(r.Accepted) > 0
}

func (h Hello) fieldOf() *field.Field {
	if h.Field220 {
		return field.F220()
	}
	return field.F128()
}

func (h Hello) config(workers int, seed []byte) vc.Config {
	cfg := vc.Config{
		Params:       pcp.Params{RhoLin: h.RhoLin, Rho: h.Rho},
		NoCommitment: h.NoCommitment,
		Workers:      workers,
		Seed:         seed,
	}
	if h.Ginger {
		cfg.Protocol = vc.Ginger
	}
	return cfg
}

// ServerOptions configures the prover side.
type ServerOptions struct {
	// Workers is the prover's per-session parallelism over a batch.
	Workers int
	// MaxBatch bounds the number of instances a client may submit.
	MaxBatch int
	// IOTimeout, when positive, is the per-message read/write deadline on
	// the connection; a peer stalling longer than this fails the session.
	IOTimeout time.Duration
	// Obs receives the transport's counters and spans; nil uses
	// obs.Default().
	Obs *obs.Registry
}

func (o ServerOptions) registry() *obs.Registry {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Default()
}

// timedCodec arms a fresh connection deadline before every gob message, so
// one stalled peer cannot pin a session goroutine forever.
type timedCodec struct {
	conn    net.Conn
	timeout time.Duration
	enc     *gob.Encoder
	dec     *gob.Decoder
}

func newTimedCodec(conn net.Conn, timeout time.Duration) *timedCodec {
	return &timedCodec{conn: conn, timeout: timeout, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (c *timedCodec) arm() {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

func (c *timedCodec) send(v any) error {
	c.arm()
	return c.enc.Encode(v)
}

func (c *timedCodec) recv(v any) error {
	c.arm()
	return c.dec.Decode(v)
}

// watch closes conn when ctx is cancelled, unblocking in-flight gob I/O;
// the returned stop func releases the watcher.
func watch(ctx context.Context, conn net.Conn) (stop func() bool) {
	return context.AfterFunc(ctx, func() { _ = conn.Close() })
}

// ctxErr maps an I/O error on a cancelled session to the context's error,
// so callers see ctx.Err() rather than "use of closed network connection".
func ctxErr(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// ServeConn handles one verifier session on the prover side: compile the
// received program, commit to every instance (in parallel, over
// opts.Workers), answer the decommit. It returns when the session ends,
// the context is cancelled, or the peer stalls past opts.IOTimeout.
func ServeConn(ctx context.Context, conn net.Conn, opts ServerOptions) (err error) {
	defer conn.Close()
	defer watch(ctx, conn)()
	reg := opts.registry()
	reg.Counter(MetricSessions).Inc()
	span := reg.StartSpan(MetricSpanSession)
	defer func() {
		span.End()
		err = ctxErr(ctx, err)
		if err != nil {
			reg.Counter(MetricSessionErrors).Inc()
		}
	}()
	cc := newTimedCodec(conn, opts.IOTimeout)

	var hello Hello
	if err := cc.recv(&hello); err != nil {
		return fmt.Errorf("transport: reading hello: %w", err)
	}
	if err := hello.validate(); err != nil {
		_ = cc.send(HelloAck{Err: err.Error()})
		return err
	}
	// Join the verifier's trace, if it sent one, recording into a
	// per-session ring; the records go back with the final message. With a
	// zero Trace (older client, or tracing off) tc is nil and every span
	// below is a free no-op.
	var tc *trace.Ctx
	if hello.Trace != 0 {
		tc = trace.Join(trace.NewRecorder(trace.DefaultCapacity), hello.Trace, hello.TraceParent, "prover")
	}
	sessTr := tc.Start("transport.serve")
	defer sessTr.End()
	ctx = trace.NewContext(ctx, sessTr.Ctx())

	compileTr := trace.Start(ctx, "prover.compile")
	prog, err := compiler.Compile(hello.fieldOf(), hello.Source)
	compileTr.End()
	if err != nil {
		_ = cc.send(HelloAck{Err: err.Error()})
		return err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	prover, err := vc.NewProver(prog, hello.config(workers, nil))
	if err != nil {
		_ = cc.send(HelloAck{Err: err.Error()})
		return err
	}
	if err := cc.send(HelloAck{NumInputs: prog.NumInputs(), NumOutputs: prog.NumOutputs()}); err != nil {
		return err
	}

	var batch BatchMsg
	if err := cc.recv(&batch); err != nil {
		return fmt.Errorf("transport: reading batch: %w", err)
	}
	maxBatch := opts.MaxBatch
	if maxBatch == 0 {
		maxBatch = 1 << 16
	}
	if len(batch.Instances) == 0 || len(batch.Instances) > maxBatch {
		err := fmt.Errorf("%w: %d not in [1, %d]", ErrBatchTooLarge, len(batch.Instances), maxBatch)
		_ = cc.send(CommitmentsMsg{Err: err.Error()})
		return err
	}
	prover.HandleCommitRequest(batch.Req)

	n := len(batch.Instances)
	// Small batches leave pool workers idle during the commit phase; hand
	// the leftovers to each Commit's group-arithmetic kernel.
	prover.SetKernelWorkers(workers / n)
	states := make([]*vc.InstanceState, n)
	cms := CommitmentsMsg{Items: make([]*vc.Commitment, n)}
	commitTr, commitCtx := trace.Child(ctx, "vc.commit")
	defer commitTr.End()
	if err := vc.ForEach(ctx, n, workers, func(i int) error {
		isp, ictx := trace.Child(commitCtx, "prover.commit")
		isp.WithArg("instance", int64(i))
		defer isp.End()
		cm, st, err := prover.Commit(ictx, batch.Instances[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		cms.Items[i], states[i] = cm, st
		return nil
	}); err != nil {
		_ = cc.send(CommitmentsMsg{Err: err.Error()})
		return err
	}
	commitTr.End()
	if err := cc.send(cms); err != nil {
		return err
	}

	// The wait for the decommit is the verifier's barrier plus one
	// round-trip; it shows up as its own span so wire stalls are visible.
	awaitTr := trace.Start(ctx, "wire.await_decommit")
	var decommit DecommitMsg
	err = cc.recv(&decommit)
	awaitTr.End()
	if err != nil {
		return fmt.Errorf("transport: reading decommit: %w", err)
	}
	if err := prover.HandleDecommit(decommit.Req); err != nil {
		_ = cc.send(ResponsesMsg{Err: err.Error()})
		return err
	}
	resp := ResponsesMsg{Items: make([]*vc.Response, n)}
	respondTr, respondCtx := trace.Child(ctx, "vc.respond")
	defer respondTr.End()
	if err := vc.ForEach(ctx, n, workers, func(i int) error {
		isp := trace.Start(respondCtx, "prover.respond").WithArg("instance", int64(i))
		defer isp.End()
		r, err := prover.Respond(ctx, states[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		resp.Items[i] = r
		return nil
	}); err != nil {
		_ = cc.send(ResponsesMsg{Err: err.Error()})
		return err
	}
	respondTr.End()
	reg.Counter(MetricServedInstance).Add(int64(n))
	// Close the session span before snapshotting: unfinished spans are
	// never recorded, and the verifier imports exactly what we ship here.
	sessTr.End()
	if tc != nil {
		resp.Trace = tc.Recorder().Snapshot()
	}
	return cc.send(resp)
}

// ClientOptions configures the verifier side of a session.
type ClientOptions struct {
	// Seed fixes the verifier's randomness; empty draws fresh randomness.
	Seed []byte
	// Group overrides the ElGamal group (tests with non-production fields).
	Group *elgamal.Group
	// Workers is the verifier's parallelism over per-instance checks;
	// 0 or 1 verifies serially.
	Workers int
	// IOTimeout, when positive, is the per-message read/write deadline on
	// every prover connection.
	IOTimeout time.Duration
	// Obs receives the client's counters and spans; nil uses
	// obs.Default().
	Obs *obs.Registry
}

func (o ClientOptions) registry() *obs.Registry {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Default()
}

// RunSession drives the verifier side over an established connection. The
// protocol parameters come from hello, which both sides see; the verifier's
// secret randomness does not.
func RunSession(ctx context.Context, conn net.Conn, hello Hello, opts ClientOptions, batch [][]*big.Int) (*SessionResult, error) {
	return RunSessionDistributed(ctx, []net.Conn{conn}, hello, opts, batch)
}

// clientLeg is the verifier's state for one prover connection.
type clientLeg struct {
	cc    *timedCodec
	chunk [][]*big.Int
	cms   []*vc.Commitment
	resps []*vc.Response
}

// RunSessionDistributed splits a batch across several prover connections —
// the paper's distributed prover (§5.1: "the prover can be distributed over
// multiple machines, with each machine computing a subset of a batch").
// Binding is preserved because the query seed is revealed only after every
// prover's commitments have arrived. Cancelling ctx closes the connections
// and returns ctx.Err().
func RunSessionDistributed(ctx context.Context, conns []net.Conn, hello Hello, opts ClientOptions, batch [][]*big.Int) (res *SessionResult, err error) {
	if len(conns) == 0 {
		return nil, errors.New("transport: no prover connections")
	}
	if err := hello.validate(); err != nil {
		return nil, err
	}
	for _, conn := range conns {
		defer watch(ctx, conn)()
	}
	reg := opts.registry()
	reg.Counter(MetricClientSessions).Inc()
	span := reg.StartSpan(MetricSpanClient)
	defer func() {
		span.End()
		err = ctxErr(ctx, err)
	}()
	// Root the session's trace (if the caller attached one) and stamp its
	// identifiers into the hello so the provers' spans join this trace.
	sessTr, ctx := trace.Child(ctx, "transport.session")
	sessTr.WithArg("provers", int64(len(conns))).WithArg("instances", int64(len(batch)))
	defer sessTr.End()
	tc := trace.FromContext(ctx)
	hello.Trace = tc.TraceID()
	hello.TraceParent = tc.SpanID()

	compileTr := trace.Start(ctx, "verifier.compile")
	prog, err := compiler.Compile(hello.fieldOf(), hello.Source)
	compileTr.End()
	if err != nil {
		return nil, err
	}
	cfg := hello.config(0, opts.Seed)
	cfg.Group = opts.Group
	cfg.Obs = opts.Obs
	setupTr, setupCtx := trace.Child(ctx, "vc.setup")
	verifier, err := vc.NewVerifierCtx(setupCtx, prog, cfg)
	setupTr.End()
	if err != nil {
		return nil, err
	}

	// Partition the batch into contiguous chunks, one per prover.
	legs := make([]*clientLeg, 0, len(conns))
	per := (len(batch) + len(conns) - 1) / len(conns)
	for i, conn := range conns {
		lo := i * per
		if lo >= len(batch) {
			break
		}
		hi := min(lo+per, len(batch))
		legs = append(legs, &clientLeg{
			cc:    newTimedCodec(conn, opts.IOTimeout),
			chunk: batch[lo:hi],
		})
	}

	// Stage 1: hello + commit request + inputs to every prover; collect all
	// commitments before revealing anything further (the soundness
	// barrier).
	req := verifier.Setup()
	commitTr := trace.Start(ctx, "wire.commit_exchange")
	for _, leg := range legs {
		if err := leg.cc.send(hello); err != nil {
			return nil, err
		}
		var ack HelloAck
		if err := leg.cc.recv(&ack); err != nil {
			return nil, err
		}
		if ack.Err != "" {
			return nil, &RemoteError{Phase: "hello", Msg: ack.Err}
		}
		if ack.NumInputs != prog.NumInputs() || ack.NumOutputs != prog.NumOutputs() {
			return nil, errors.New("transport: prover disagrees on the io shape")
		}
		if err := leg.cc.send(BatchMsg{Req: req, Instances: leg.chunk}); err != nil {
			return nil, err
		}
	}
	for _, leg := range legs {
		var cms CommitmentsMsg
		if err := leg.cc.recv(&cms); err != nil {
			return nil, err
		}
		if cms.Err != "" {
			return nil, &RemoteError{Phase: "commit", Msg: cms.Err}
		}
		if len(cms.Items) != len(leg.chunk) {
			return nil, errors.New("transport: commitment count mismatch")
		}
		leg.cms = cms.Items
	}
	commitTr.End()

	// Stage 2: decommit to every prover, collect responses.
	decommitTr := trace.Start(ctx, "vc.decommit")
	dreq, err := verifier.Decommit()
	decommitTr.End()
	if err != nil {
		return nil, err
	}
	respondTr := trace.Start(ctx, "wire.respond_exchange")
	for _, leg := range legs {
		if err := leg.cc.send(DecommitMsg{Req: dreq}); err != nil {
			return nil, err
		}
	}
	for _, leg := range legs {
		var resp ResponsesMsg
		if err := leg.cc.recv(&resp); err != nil {
			return nil, err
		}
		if resp.Err != "" {
			return nil, &RemoteError{Phase: "respond", Msg: resp.Err}
		}
		if len(resp.Items) != len(leg.chunk) {
			return nil, errors.New("transport: response count mismatch")
		}
		leg.resps = resp.Items
		// Stitch this prover's spans into our timeline (records from any
		// other trace are dropped by Import).
		tc.Import(resp.Trace)
	}
	respondTr.End()

	// Stage 3: verify everything — in parallel over opts.Workers; the
	// verifier's state is read-only after Decommit.
	type flat struct {
		in   []*big.Int
		cm   *vc.Commitment
		resp *vc.Response
	}
	items := make([]flat, 0, len(batch))
	for _, leg := range legs {
		for i := range leg.chunk {
			items = append(items, flat{leg.chunk[i], leg.cms[i], leg.resps[i]})
		}
	}
	out := &SessionResult{
		Accepted: make([]bool, len(items)),
		Reasons:  make([]string, len(items)),
		Outputs:  make([][]*big.Int, len(items)),
	}
	verifyTr, verifyCtx := trace.Child(ctx, "vc.verify_stage")
	defer verifyTr.End()
	if err := vc.ForEach(ctx, len(items), opts.Workers, func(i int) error {
		vsp := trace.Start(verifyCtx, "vc.verify").WithArg("instance", int64(i))
		defer vsp.End()
		ok, reason := verifier.VerifyInstance(ctx, items[i].in, items[i].cm, items[i].resp)
		out.Accepted[i] = ok
		out.Reasons[i] = reason
		out.Outputs[i] = items[i].cm.Output
		return nil
	}); err != nil {
		return nil, err
	}
	verifyTr.End()
	return out, nil
}
