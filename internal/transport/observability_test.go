package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"

	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
)

// syncBuffer serializes concurrent log writes (the server logs from its
// session goroutine).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestStructuredLogsJoinTrace is the acceptance check for log↔trace
// correlation: a traced client↔server run with JSON logging on both sides
// yields log records whose trace_id equals the session's trace identifier
// in the exact %016x form the Perfetto export renders, and whose span_id
// appears among the exported spans.
func TestStructuredLogsJoinTrace(t *testing.T) {
	var serverLog, clientLog syncBuffer
	reg := obs.NewRegistry()
	svc := NewService(ServiceOptions{
		Workers: 2,
		Obs:     reg,
		Logger:  obs.NewLogger(&serverLog, "json"),
	})
	client, errCh := servicePipe(svc)

	rec := trace.NewRecorder(4096)
	tc := trace.New(rec, "verifier")
	ctx := trace.NewContext(context.Background(), tc)

	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	sess, err := NewSession(ctx, []net.Conn{client}, hello, ClientOptions{
		Seed:   []byte("corr"),
		Obs:    reg,
		Logger: obs.NewLogger(&clientLog, "json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunBatch(ctx, instances(10, -4))
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, res, []int64{10, -4})
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}

	wantTrace := obs.TraceIDString(uint64(tc.TraceID()))

	// The exported trace (what -trace writes to disk) renders the same ids;
	// collect its span set for the join.
	var exported bytes.Buffer
	if err := trace.WriteChrome(&exported, rec.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exported.String(), wantTrace) {
		t.Fatalf("exported trace does not mention trace id %s", wantTrace)
	}
	spanIDs := make(map[string]bool)
	for _, r := range rec.Snapshot() {
		spanIDs[obs.TraceIDString(uint64(r.Span))] = true
		spanIDs[obs.TraceIDString(uint64(r.Parent))] = true
	}

	for side, buf := range map[string]*syncBuffer{"server": &serverLog, "client": &clientLog} {
		lines := buf.lines()
		if len(lines) == 0 || lines[0] == "" {
			t.Fatalf("%s produced no log records", side)
		}
		joined := 0
		for _, line := range lines {
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("%s log line is not JSON: %v\n%s", side, err, line)
			}
			tid, ok := m["trace_id"].(string)
			if !ok {
				continue // records logged outside a traced context
			}
			if tid != wantTrace {
				t.Fatalf("%s log %q carries trace_id %s, want %s", side, m["msg"], tid, wantTrace)
			}
			if sid, ok := m["span_id"].(string); ok && spanIDs[sid] {
				joined++
			}
		}
		if joined == 0 {
			t.Fatalf("%s: no log record's span_id joins the exported trace:\n%s", side, strings.Join(lines, "\n"))
		}
	}

	// Server-side session records must carry the tenant attribution fields.
	var sawBatch bool
	for _, line := range serverLog.lines() {
		var m map[string]any
		_ = json.Unmarshal([]byte(line), &m)
		if m["msg"] == "batch served" {
			sawBatch = true
			if m[LabelBackend] == "" || m[LabelProgramHash] != ProgramHash(sessionSrc) {
				t.Fatalf("batch record missing tenant attribution: %v", m)
			}
			if _, ok := m["session"]; !ok {
				t.Fatalf("batch record missing session id: %v", m)
			}
		}
	}
	if !sawBatch {
		t.Fatal("server never logged a batch")
	}
}

// TestLabeledTransportMetrics is the acceptance check for the per-tenant
// metric breakdown: after a run, the Prometheus exposition shows
// transport.batches and transport.instances broken out by backend and
// program_hash, transport.sessions by backend, and the SLO gauges present.
func TestLabeledTransportMetrics(t *testing.T) {
	svc, reg := testService(ServiceOptions{Workers: 2})
	client, errCh := servicePipe(svc)
	hello := Hello{Source: sessionSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	res, err := RunSession(context.Background(), client, hello, ClientOptions{Seed: []byte("lm"), Obs: reg}, instances(10))
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, res, []int64{10})
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}

	phash := ProgramHash(sessionSrc)
	backend := "zaatar" // legacy bool hello negotiates the zaatar backend

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		// Unlabeled aggregates survive alongside the labeled series, under
		// one TYPE header per name.
		"zaatar_transport_batches_total 1",
		`zaatar_transport_batches_total{backend="` + backend + `",program_hash="` + phash + `"} 1`,
		`zaatar_transport_instances_total{backend="` + backend + `",program_hash="` + phash + `"} 1`,
		`zaatar_transport_sessions_total{backend="` + backend + `"} 1`,
		"# TYPE zaatar_transport_slo_p99_seconds gauge",
		"zaatar_transport_slo_requests 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE zaatar_transport_batches_total counter") != 1 {
		t.Fatalf("transport.batches TYPE header not merged:\n%s", out)
	}

	// The labeled vc phase histograms recorded on the client side under the
	// same registry.
	if !strings.Contains(out, `zaatar_vc_phase_seconds_count{phase="verify",backend="`+backend+`"}`) {
		t.Fatalf("vc.phase labeled histogram missing:\n%s", out)
	}

	// Error-rate accounting: a failed session ticks the SLO error gauge.
	bad, errCh2 := servicePipe(svc)
	if _, err := RunSession(context.Background(), bad, Hello{Source: "nonsense {"}, ClientOptions{Obs: reg}, instances(1)); err == nil {
		t.Fatal("malformed source unexpectedly accepted")
	}
	bad.Close() // the client fails before the hello; unblock the server's read
	<-errCh2
	if v, ok := reg.GaugeValue(MetricSLOPrefix + obs.SLOGaugeErrorRate); !ok || v <= 0 {
		t.Fatalf("SLO error rate = %v, %v; want > 0 after a failed session", v, ok)
	}
}
