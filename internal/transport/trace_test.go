package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"math/big"
	"net"
	"testing"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// tracedContext roots a fresh trace for the client side of a session.
func tracedContext(t *testing.T) (context.Context, *trace.Ctx) {
	t.Helper()
	tc := trace.New(trace.NewRecorder(4096), "verifier")
	return trace.NewContext(context.Background(), tc), tc
}

// checkNoOrphans asserts the recorded span tree is closed: every record's
// parent is either the trace root (zero) or itself a recorded span.
func checkNoOrphans(t *testing.T, recs []trace.Record) {
	t.Helper()
	ids := make(map[trace.SpanID]bool, len(recs))
	for _, r := range recs {
		ids[r.Span] = true
	}
	for _, r := range recs {
		if r.Parent != 0 && !ids[r.Parent] {
			t.Errorf("span %q (%x) has unrecorded parent %x", r.Name, r.Span, r.Parent)
		}
	}
}

func byName(recs []trace.Record, name string) []trace.Record {
	var out []trace.Record
	for _, r := range recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// TestTracePropagation runs a full traced session and checks that the
// prover's spans come back over the wire and stitch under the verifier's
// session span in one trace.
func TestTracePropagation(t *testing.T) {
	ctx, tc := tracedContext(t)
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- ServeConn(context.Background(), server, ServerOptions{Workers: 2}) }()
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	batch := [][]*big.Int{{big.NewInt(10)}, {big.NewInt(3)}}
	res, err := RunSession(ctx, client, hello, ClientOptions{Seed: []byte("tr")}, batch)
	client.Close()
	if serr := <-errCh; serr != nil {
		t.Fatalf("server: %v", serr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}

	recs := tc.Recorder().Snapshot()
	checkNoOrphans(t, recs)
	for _, r := range recs {
		if r.Trace != tc.TraceID() {
			t.Fatalf("span %q carries foreign trace %x", r.Name, r.Trace)
		}
	}
	// Both sides contributed spans.
	sessions := byName(recs, "transport.session")
	serves := byName(recs, "transport.serve")
	if len(sessions) != 1 || sessions[0].Proc != "verifier" {
		t.Fatalf("transport.session spans: %+v", sessions)
	}
	if len(serves) != 1 || serves[0].Proc != "prover" {
		t.Fatalf("transport.serve spans: %+v", serves)
	}
	// The prover's session root hangs off the verifier's session span:
	// that is the wire propagation working end to end.
	if serves[0].Parent != sessions[0].Span {
		t.Fatalf("transport.serve parent %x, want verifier session span %x", serves[0].Parent, sessions[0].Span)
	}
	// All four protocol phases appear, with the commit/respond work on the
	// prover side and setup/decommit/verify on the verifier side.
	for name, wantProc := range map[string]string{
		"vc.setup":       "verifier",
		"vc.commit":      "prover",
		"vc.decommit":    "verifier",
		"vc.respond":     "prover",
		"vc.verify":      "verifier",
		"prover.commit":  "prover",
		"prover.respond": "prover",
	} {
		got := byName(recs, name)
		if len(got) == 0 {
			t.Fatalf("no %q span in trace", name)
		}
		for _, r := range got {
			if r.Proc != wantProc {
				t.Fatalf("%q recorded by %q, want %q", name, r.Proc, wantProc)
			}
		}
	}
	if got := byName(recs, "prover.commit"); len(got) != len(batch) {
		t.Fatalf("prover.commit spans: %d, want %d", len(got), len(batch))
	}
}

// legacyHello and legacyResponsesMsg mirror the message shapes from before
// trace propagation existed.
type legacyHello struct {
	Source       string
	Field220     bool
	Ginger       bool
	RhoLin, Rho  int
	NoCommitment bool
}

type legacyResponsesMsg struct {
	Err   string
	Items []*vc.Response
}

// serveLegacy is a prover speaking the pre-tracing wire dialect: it decodes
// the hello into a struct without the trace fields (gob drops them) and
// returns responses without the Trace field.
func serveLegacy(conn net.Conn) error {
	defer conn.Close()
	dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
	var h legacyHello
	if err := dec.Decode(&h); err != nil {
		return err
	}
	prog, err := compiler.Compile(field.F128(), h.Source)
	if err != nil {
		return err
	}
	cfg := vc.Config{Params: pcp.Params{RhoLin: h.RhoLin, Rho: h.Rho}, NoCommitment: h.NoCommitment, Workers: 1}
	prover, err := vc.NewProver(prog, cfg)
	if err != nil {
		return err
	}
	if err := enc.Encode(HelloAck{NumInputs: prog.NumInputs(), NumOutputs: prog.NumOutputs()}); err != nil {
		return err
	}
	var b BatchMsg
	if err := dec.Decode(&b); err != nil {
		return err
	}
	prover.HandleCommitRequest(b.Req)
	n := len(b.Instances)
	states := make([]*vc.InstanceState, n)
	cms := CommitmentsMsg{Items: make([]*vc.Commitment, n)}
	for i := range b.Instances {
		if cms.Items[i], states[i], err = prover.Commit(context.Background(), b.Instances[i]); err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
	}
	if err := enc.Encode(cms); err != nil {
		return err
	}
	var d DecommitMsg
	if err := dec.Decode(&d); err != nil {
		return err
	}
	if err := prover.HandleDecommit(d.Req); err != nil {
		return err
	}
	resp := legacyResponsesMsg{Items: make([]*vc.Response, n)}
	for i := range states {
		if resp.Items[i], err = prover.Respond(context.Background(), states[i]); err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
	}
	return enc.Encode(resp)
}

// TestTraceLegacyPeer checks gob back-compat: a traced client against a
// prover that predates the trace fields still completes the session, and
// the client's trace simply contains no prover spans.
func TestTraceLegacyPeer(t *testing.T) {
	ctx, tc := tracedContext(t)
	client, server := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- serveLegacy(server) }()
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	res, err := RunSession(ctx, client, hello, ClientOptions{Seed: []byte("lg")}, [][]*big.Int{{big.NewInt(8)}})
	client.Close()
	if serr := <-errCh; serr != nil {
		t.Fatalf("legacy server: %v", serr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	recs := tc.Recorder().Snapshot()
	checkNoOrphans(t, recs)
	if len(recs) == 0 {
		t.Fatal("verifier recorded no spans")
	}
	for _, r := range recs {
		if r.Proc != "verifier" {
			t.Fatalf("unexpected %q span from %q — a legacy peer cannot contribute spans", r.Name, r.Proc)
		}
	}
}

// TestTraceDisconnectNoOrphans drops the connection mid-session (after the
// commitments, before the responses) and checks the client's trace is still
// a closed tree: the error paths end every started span via defer, and no
// prover spans leak in because the final message never arrived.
func TestTraceDisconnectNoOrphans(t *testing.T) {
	ctx, tc := tracedContext(t)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		dec, enc := gob.NewDecoder(server), gob.NewEncoder(server)
		var h Hello
		if err := dec.Decode(&h); err != nil {
			t.Error(err)
			return
		}
		prog, err := compiler.Compile(field.F128(), h.Source)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := vc.Config{Params: pcp.Params{RhoLin: h.RhoLin, Rho: h.Rho}, NoCommitment: true, Workers: 1}
		prover, err := vc.NewProver(prog, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if err := enc.Encode(HelloAck{NumInputs: prog.NumInputs(), NumOutputs: prog.NumOutputs()}); err != nil {
			t.Error(err)
			return
		}
		var b BatchMsg
		if err := dec.Decode(&b); err != nil {
			t.Error(err)
			return
		}
		prover.HandleCommitRequest(b.Req)
		cms := CommitmentsMsg{Items: make([]*vc.Commitment, len(b.Instances))}
		for i := range b.Instances {
			if cms.Items[i], _, err = prover.Commit(context.Background(), b.Instances[i]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := enc.Encode(cms); err != nil {
			t.Error(err)
			return
		}
		// Hang up instead of answering the decommit.
	}()
	hello := Hello{Source: sessionSrc, RhoLin: 1, Rho: 1, NoCommitment: true}
	_, err := RunSession(ctx, client, hello, ClientOptions{Seed: []byte("dc")}, [][]*big.Int{{big.NewInt(2)}})
	client.Close()
	<-done
	if err == nil {
		t.Fatal("session with a disconnecting prover should fail")
	}
	recs := tc.Recorder().Snapshot()
	checkNoOrphans(t, recs)
	if len(byName(recs, "transport.session")) != 1 {
		t.Fatalf("session root missing from %d records", len(recs))
	}
	for _, r := range recs {
		if r.Proc == "prover" {
			t.Fatalf("prover span %q leaked into an aborted session", r.Name)
		}
	}
}
