package transport

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/store"
	"zaatar/internal/vc"
)

// ServiceOptions configures a long-lived multi-tenant prover Service.
type ServiceOptions struct {
	// Workers is the service-wide kernel pool: the total parallelism shared
	// by every admitted session. Each session gets Workers divided by the
	// number of currently admitted sessions (at least 1), so N concurrent
	// clients share the machine instead of each oversubscribing it.
	// Defaults to runtime.NumCPU().
	Workers int
	// MaxSessions bounds how many sessions may compute concurrently; the
	// rest wait in admission (recorded in transport.admission.wait). A v2
	// keep-alive connection holds its slot only while a batch is in flight,
	// not while idle between batches. Defaults to 16.
	MaxSessions int
	// MaxBatch bounds the number of instances a client may submit per
	// batch. Defaults to 1<<16.
	MaxBatch int
	// MaxConns bounds how many connections Serve keeps open at once —
	// including idle keep-alive connections, which hold no admission slot
	// but still pin a goroutine and their compiled program. Connections
	// beyond the cap are refused at accept (counted in
	// transport.conns.rejected). Defaults to 16×MaxSessions; negative
	// means unlimited.
	MaxConns int
	// IOTimeout, when positive, is the per-message read/write deadline on
	// every connection.
	IOTimeout time.Duration
	// IdleTimeout bounds how long a kept-alive connection may sit idle
	// between batches before the server reaps it (a clean end, counted in
	// transport.idle.closed — not a session error). It applies even when
	// IOTimeout is zero, so idle v2 connections cannot accumulate forever.
	// Defaults to 2 minutes; negative disables the bound.
	IdleTimeout time.Duration
	// CacheSize is the number of compiled programs kept in the LRU shared
	// across sessions. Defaults to 32.
	CacheSize int
	// Store, when non-nil, is the on-disk artifact store backing the memory
	// cache: programs fall back to a bundle load before compiling, and
	// freshly compiled programs are written back asynchronously. This is
	// what makes restarts warm — a new process with the same store serves
	// known programs without a single compile or preprocess — and lets v3
	// hash-first clients open sessions without uploading the source.
	Store *store.Store
	// MaxSourceBytes bounds the program source a client may send (in the
	// hello or a v3 source upload). Zero means DefaultMaxSourceBytes.
	MaxSourceBytes int
	// MaxWireVersion caps the wire dialect this service speaks (0 means
	// MaxProtocolVersion). A pinned service behaves exactly like an older
	// build: hellos offering more are rejected with the cap in the error
	// ack, which is what triggers the client's downgrade redial. Tests use
	// this to exercise v3↔v1/v2 interop within one binary.
	MaxWireVersion int
	// Backends restricts the proof backends this service negotiates, in no
	// particular order (the client's preference order decides ties). Nil
	// means every backend registered in internal/pcp. Tests use this to
	// simulate a build without a given backend.
	Backends []string
	// Obs receives the service's counters and spans; nil uses
	// obs.Default().
	Obs *obs.Registry
	// Logf, when non-nil, receives one line per failed session from Serve's
	// accept loop.
	Logf func(format string, args ...any)
	// Logger receives structured per-session records (session start/end,
	// batches served, failures), each carrying session/backend/program_hash
	// attributes plus trace correlation when the client sent a trace. Nil
	// disables structured logging.
	Logger *slog.Logger
	// SLOWindow is the rolling window over which the service tracks its
	// error rate and latency quantiles, exposed as transport.slo.* gauges.
	// Defaults to obs.DefaultSLOWindow.
	SLOWindow time.Duration
}

// Service is a long-lived multi-tenant prover: it owns a cross-session LRU
// of compiled programs (so repeat sessions for the same Ψ skip compilation
// and QAP preprocessing) and a bounded admission semaphore (so concurrent
// sessions share the kernel pool fairly). It speaks wire protocol v2 —
// multiple batches per connection, reusing the negotiated program while
// each batch brings its own commit request — and falls back to v1
// transparently for legacy peers.
type Service struct {
	workers     int
	maxSessions int
	maxBatch    int
	maxConns    int
	maxSource   int
	maxVersion  int
	ioTimeout   time.Duration
	idleTimeout time.Duration
	backends    []string
	store       *store.Store
	storeWG     sync.WaitGroup
	logf        func(format string, args ...any)
	log         *slog.Logger

	reg     *obs.Registry
	slo     *obs.SLO
	sem     chan struct{}
	active  atomic.Int64
	conns   atomic.Int64
	sessSeq atomic.Int64

	// Labeled (per-tenant) views of the session/batch/instance counters;
	// the plain counters of the same names remain the unlabeled aggregates.
	sessionsVec  *obs.CounterVec
	batchesVec   *obs.CounterVec
	instancesVec *obs.CounterVec
	phasesVec    *obs.HistogramVec
	storeHitsVec *obs.CounterVec
	skippedVec   *obs.CounterVec

	mu    sync.Mutex
	cache *programCache
}

// NewService builds a Service; zero option fields take the documented
// defaults.
func NewService(opts ServiceOptions) *Service {
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	maxSessions := opts.MaxSessions
	if maxSessions < 1 {
		maxSessions = 16
	}
	maxBatch := opts.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1 << 16
	}
	maxConns := opts.MaxConns
	switch {
	case maxConns == 0:
		maxConns = 16 * maxSessions
	case maxConns < 0:
		maxConns = 0 // unlimited
	}
	idle := opts.IdleTimeout
	switch {
	case idle == 0:
		idle = 2 * time.Minute
	case idle < 0:
		idle = 0 // unbounded
	}
	cacheSize := opts.CacheSize
	if cacheSize < 1 {
		cacheSize = 32
	}
	backends := opts.Backends
	if backends == nil {
		backends = pcp.Names()
	}
	maxSource := opts.MaxSourceBytes
	if maxSource <= 0 {
		maxSource = DefaultMaxSourceBytes
	}
	maxVersion := opts.MaxWireVersion
	if maxVersion <= 0 || maxVersion > MaxProtocolVersion {
		maxVersion = MaxProtocolVersion
	}
	window := opts.SLOWindow
	if window <= 0 {
		window = obs.DefaultSLOWindow
	}
	slo := obs.NewSLO(window)
	obs.ExposeSLO(reg, MetricSLOPrefix, slo)
	return &Service{
		workers:      workers,
		maxSessions:  maxSessions,
		maxBatch:     maxBatch,
		maxConns:     maxConns,
		maxSource:    maxSource,
		maxVersion:   maxVersion,
		ioTimeout:    opts.IOTimeout,
		idleTimeout:  idle,
		backends:     backends,
		store:        opts.Store,
		logf:         opts.Logf,
		log:          obs.OrNop(opts.Logger),
		reg:          reg,
		slo:          slo,
		sem:          make(chan struct{}, maxSessions),
		sessionsVec:  reg.CounterVec(MetricSessions, LabelBackend),
		batchesVec:   reg.CounterVec(MetricServedBatches, LabelBackend, LabelProgramHash),
		instancesVec: reg.CounterVec(MetricServedInstance, LabelBackend, LabelProgramHash),
		phasesVec:    reg.HistogramVec(vc.MetricPhase, vc.LabelPhase, vc.LabelBackend),
		storeHitsVec: reg.CounterVec(MetricStoreHits, LabelBackend, LabelProgramHash),
		skippedVec:   reg.CounterVec(MetricHelloSourceSkipped, LabelProgramHash),
		cache:        newProgramCache(cacheSize, reg),
	}
}

// Serve accepts connections on ln and serves each in its own goroutine
// until ctx is cancelled or the listener is closed, then waits for the
// in-flight sessions to drain. Connections beyond MaxConns — open ones,
// computing or idle — are refused at accept. Per-session failures are
// reported through ServiceOptions.Logf, not returned.
func (s *Service) Serve(ctx context.Context, ln net.Listener) error {
	defer context.AfterFunc(ctx, func() { _ = ln.Close() })()
	defer s.storeWG.Wait() // drain artifact write-backs before returning
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if s.maxConns > 0 && s.conns.Add(1) > int64(s.maxConns) {
			s.conns.Add(-1)
			s.reg.Counter(MetricConnsRejected).Inc()
			if s.logf != nil {
				s.logf("conn %v: refused: %d connections already open (MaxConns)", conn.RemoteAddr(), s.maxConns)
			}
			_ = conn.Close()
			continue
		}
		s.reg.Counter(MetricConnsOpen).Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				s.conns.Add(-1)
				s.reg.Counter(MetricConnsOpen).Add(-1)
			}()
			if err := s.ServeConn(ctx, conn); err != nil && s.logf != nil {
				s.logf("session %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// admit blocks until a service-wide session slot is free (or ctx is
// cancelled) and returns the per-session worker count: the kernel pool
// divided by the sessions now computing.
func (s *Service) admit(ctx context.Context) (int, error) {
	span := s.reg.StartSpan(MetricAdmissionWait)
	tr := trace.Start(ctx, "transport.admission_wait")
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		tr.End()
		span.End()
		return 0, ctx.Err()
	}
	tr.End()
	span.End()
	active := int(s.active.Add(1))
	s.reg.Counter(MetricAdmissionActive).Inc()
	w := s.workers / active
	if w < 1 {
		w = 1
	}
	return w, nil
}

func (s *Service) releaseSlot() {
	s.active.Add(-1)
	s.reg.Counter(MetricAdmissionActive).Add(-1)
	<-s.sem
}

// storeKeyOf maps the memory cache key onto the artifact store's — they are
// the same triple by construction.
func storeKeyOf(key cacheKey) store.Key {
	return store.Key{SourceHash: key.source, Field: key.field, Backend: key.backend}
}

// program resolves the session's compiled program and prover precomputation
// through the two-tier cache: the in-memory LRU, then (on a miss) the disk
// artifact store, then a compile. Exactly one session per key runs the miss
// path — concurrent sessions wait on the same entry, so the store load and
// the compile are both collapsed by the singleflight entry. A hash-first
// hello whose program both tiers miss triggers the SourceNeeded exchange on
// cc, filling hello.Source before compiling. The prover.compile trace span
// exists only on the compile path; a disk hit has a prover.store.load span
// instead, which is how a warm restart is observed.
func (s *Service) program(ctx context.Context, cc *timedCodec, hello *Hello, key cacheKey, backend string, version int) (*cacheEntry, error) {
	s.mu.Lock()
	entry, build := s.cache.lookup(key)
	s.mu.Unlock()
	if build {
		s.buildEntry(ctx, cc, hello, key, backend, version, entry)
		if entry.err != nil {
			s.mu.Lock()
			s.cache.drop(key, entry)
			s.mu.Unlock()
		}
	}
	if err := entry.await(ctx); err != nil {
		return nil, err
	}
	return entry, nil
}

// buildEntry runs the miss path for one cache entry: disk store, then
// compile (requesting the source from a hash-first client when needed),
// then an asynchronous write-back of the fresh artifact.
func (s *Service) buildEntry(ctx context.Context, cc *timedCodec, hello *Hello, key cacheKey, backend string, version int, entry *cacheEntry) {
	if s.store != nil {
		loadTr := trace.Start(ctx, "prover.store.load")
		b, err := s.store.Load(storeKeyOf(key))
		loadTr.End()
		if err == nil {
			s.reg.Counter(MetricStoreHits).Inc()
			s.storeHitsVec.With(backend, key.labelHash()).Inc()
			entry.finish(b.Prog, b.Pre, nil)
			return
		}
		// Anything short of a clean not-found is a damaged or incompatible
		// bundle: log it, fall through to a compile (whose write-back
		// atomically replaces the bad file), never fail the session over it.
		if !errors.Is(err, store.ErrNotFound) && s.logf != nil {
			s.logf("store: %v (recompiling)", err)
		}
		s.reg.Counter(MetricStoreMisses).Inc()
	}
	if hello.Source == "" {
		src, err := s.requestSource(cc, key, version)
		if err != nil {
			entry.finish(nil, nil, err)
			return
		}
		hello.Source = src
	}
	entry.build(ctx, *hello, backend)
	if entry.err == nil && s.store != nil {
		s.writeBack(key, entry)
	}
}

// requestSource runs the v3 SourceNeeded exchange: an interim ack asking
// the client to upload, then the SourceMsg, verified against the size limit
// and the hash the hello claimed.
func (s *Service) requestSource(cc *timedCodec, key cacheKey, version int) (string, error) {
	if err := cc.send(HelloAck{SourceNeeded: true, Version: version}); err != nil {
		return "", err
	}
	var src SourceMsg
	if err := cc.recv(&src); err != nil {
		return "", fmt.Errorf("transport: reading source upload: %w", err)
	}
	switch {
	case strings.TrimSpace(src.Source) == "":
		return "", fmt.Errorf("%w: empty source upload", ErrMalformedHello)
	case len(src.Source) > s.maxSource:
		return "", fmt.Errorf("%w: source is %d bytes (max %d)", ErrSourceTooLarge, len(src.Source), s.maxSource)
	case sha256.Sum256([]byte(src.Source)) != key.source:
		return "", fmt.Errorf("%w: uploaded source does not match the hello hash", ErrMalformedHello)
	}
	return src.Source, nil
}

// writeBack persists a freshly built artifact without blocking the session;
// failures are counted and logged, never surfaced to the client.
func (s *Service) writeBack(key cacheKey, entry *cacheEntry) {
	s.storeWG.Add(1)
	go func() {
		defer s.storeWG.Done()
		if _, err := s.store.Save(storeKeyOf(key), entry.prog, entry.pre); err != nil {
			s.reg.Counter(MetricStoreWriteErrors).Inc()
			if s.logf != nil {
				s.logf("store: write-back %s: %v", storeKeyOf(key), err)
			}
		}
	}()
}

// FlushStore blocks until every pending artifact write-back has finished —
// for graceful shutdown and for tests that reopen the store directory.
func (s *Service) FlushStore() {
	s.storeWG.Wait()
}

// cleanHangup reports a peer hangup at a message boundary — gob sees a bare
// io.EOF only between frames — which after at least one completed batch is
// the clean end of a v2 keep-alive session. A peer dying mid-frame surfaces
// as io.ErrUnexpectedEOF (or a reset) and stays a session error: that peer
// believed it was mid-protocol.
func cleanHangup(err error) bool {
	return errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF)
}

// idleExpired reports a read deadline hit while waiting for the next batch.
func idleExpired(err error) bool {
	var ne net.Error
	return errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout())
}

// ServeConn handles one verifier connection: negotiate the wire version,
// resolve the program through the cache, then serve batches until the
// session ends (one batch under v1; until a Close frame or hangup under
// v2). The admission slot is held only while a batch — or the initial
// compile — is in flight; an idle keep-alive connection does not count
// against MaxSessions.
func (s *Service) ServeConn(ctx context.Context, conn net.Conn) (err error) {
	defer conn.Close()
	defer watch(ctx, conn)()
	s.reg.Counter(MetricSessions).Inc()
	logger := s.log.With("session", s.sessSeq.Add(1), "remote", fmt.Sprint(conn.RemoteAddr()))
	span := s.reg.StartSpan(MetricSpanSession)
	defer func() {
		span.End()
		err = ctxErr(ctx, err)
		if err != nil {
			s.reg.Counter(MetricSessionErrors).Inc()
			// Failed sessions count against the SLO error rate; successful
			// batches were already observed with their latency.
			s.slo.Observe(0, true)
			logger.ErrorContext(ctx, "session failed", "err", err.Error())
		} else {
			logger.InfoContext(ctx, "session closed")
		}
	}()
	cc := newTimedCodec(conn, s.ioTimeout)

	var hello Hello
	if err := cc.recv(&hello); err != nil {
		return fmt.Errorf("transport: reading hello: %w", err)
	}
	if err := hello.validate(s.maxSource); err != nil {
		_ = cc.send(HelloAck{Err: err.Error(), Version: MaxProtocolVersion})
		return err
	}
	version := hello.version() // ≤ MaxProtocolVersion after validate
	if version > s.maxVersion {
		// A service pinned below the client's offer behaves like an older
		// build: reject, reporting the cap so the client can downgrade.
		err := &ProtocolVersionError{Version: version, Max: s.maxVersion}
		_ = cc.send(HelloAck{Err: err.Error(), Version: s.maxVersion})
		return err
	}
	hashFirst := hello.hashFirst()

	// Resolve the session's proof backend once; the cache key, the
	// prover's configuration, and the ack all use this single value.
	backend, err := negotiateBackend(hello.offered(), s.backends)
	if err != nil {
		_ = cc.send(HelloAck{Err: err.Error(), Version: version})
		return err
	}

	// Join the verifier's trace, if it sent one, recording into a
	// per-session ring; completed spans ship back with every ResponsesMsg.
	// With a zero Trace (older client, or tracing off) tc is nil and every
	// span below is a free no-op.
	var tc *trace.Ctx
	if hello.Trace != 0 {
		tc = trace.Join(trace.NewRecorder(trace.DefaultCapacity), hello.Trace, hello.TraceParent, "prover")
	}
	sessTr := tc.Start("transport.serve")
	sessEnded := false
	defer sessTr.End()
	ctx = trace.NewContext(ctx, sessTr.Ctx())

	// Admission covers the compile and the first batch; between later
	// batches the slot is released so idle connections don't starve others.
	workers, err := s.admit(ctx)
	if err != nil {
		return err
	}
	admitted := true
	defer func() {
		if admitted {
			s.releaseSlot()
		}
	}()

	key := keyOf(hello, backend)
	entry, err := s.program(ctx, cc, &hello, key, backend, version)
	if err != nil {
		_ = cc.send(HelloAck{Err: err.Error(), Version: version})
		return err
	}
	prog := entry.prog
	prover, err := vc.NewProverPre(prog, hello.config(workers, nil, backend), entry.pre)
	if err != nil {
		_ = cc.send(HelloAck{Err: err.Error(), Version: version})
		return err
	}
	if hashFirst && hello.Source == "" {
		// The session opened without the source ever crossing the wire:
		// both tiers knew the program (or another session's singleflight
		// build supplied it).
		s.reg.Counter(MetricHelloSourceSkipped).Inc()
		s.skippedVec.With(key.labelHash()).Inc()
		s.reg.Counter(MetricStoreBytesSaved).Add(int64(len(prog.Source)))
	}
	s.reg.Counter(MetricBackendSessions + backend).Inc()
	phash := key.labelHash()
	s.sessionsVec.With(backend).Inc()
	logger = logger.With(LabelBackend, backend, LabelProgramHash, phash)
	logger.InfoContext(ctx, "session negotiated", "version", version, "workers", workers)
	ack := HelloAck{NumInputs: prog.NumInputs(), NumOutputs: prog.NumOutputs(), Version: version, Backend: backend}
	if err := cc.send(ack); err != nil {
		return err
	}

	// shipped indexes into the trace ring: each ResponsesMsg carries only
	// the records completed since the previous one, so the verifier never
	// imports a span twice. The serve span is closed before the first
	// snapshot — unfinished spans are never recorded, and the verifier
	// imports exactly what ships; later batches' spans still join the trace
	// under its (completed) span ID.
	shipped := 0
	ship := func() []trace.Record {
		if !sessEnded {
			sessTr.End()
			sessEnded = true
		}
		if tc == nil {
			return nil
		}
		recs := tc.Recorder().Snapshot()
		if shipped > len(recs) {
			shipped = len(recs) // ring dropped older records
		}
		out := recs[shipped:]
		shipped = len(recs)
		return out
	}

	// Waits for the next batch are bounded by the idle timeout (stretched to
	// IOTimeout when that is longer): an idle keep-alive connection holds no
	// admission slot but still pins a goroutine and its program, so with no
	// bound a public service could be drained by parked connections.
	idle := s.idleTimeout
	if s.ioTimeout > idle && idle > 0 {
		idle = s.ioTimeout
	}
	for batches := 0; ; batches++ {
		var batch BatchMsg
		if err := cc.recvTimeout(&batch, idle); err != nil {
			if ctx.Err() == nil {
				if idle > 0 && idleExpired(err) {
					s.reg.Counter(MetricIdleClosed).Inc()
					return nil // idle connection reaped: clean end, not an error
				}
				if batches > 0 && cleanHangup(err) {
					return nil // keep-alive peer hung up between batches
				}
			}
			return fmt.Errorf("transport: reading batch: %w", err)
		}
		if batch.Close {
			return nil
		}
		if !admitted {
			if workers, err = s.admit(ctx); err != nil {
				return err
			}
			admitted = true
		}
		t0 := time.Now()
		n, err := s.serveBatch(ctx, cc, prover, batch, batches, workers, ship)
		if err != nil {
			return err
		}
		dur := time.Since(t0)
		s.slo.Observe(dur, false)
		s.phasesVec.With("batch", backend).Observe(dur)
		s.reg.Counter(MetricServedBatches).Inc()
		s.reg.Counter(MetricServedInstance).Add(int64(n))
		s.batchesVec.With(backend, phash).Inc()
		s.instancesVec.With(backend, phash).Add(int64(n))
		logger.InfoContext(ctx, "batch served", "batch", batches, "instances", n, "dur_ms", dur.Milliseconds())
		if version < ProtocolV2 {
			return nil
		}
		s.releaseSlot()
		admitted = false
	}
}

// serveBatch runs the commit → decommit → respond exchange for one batch
// and returns the number of instances served. ship is called immediately
// before the final ResponsesMsg to collect the trace records to attach.
func (s *Service) serveBatch(ctx context.Context, cc *timedCodec, prover *vc.Prover, batch BatchMsg, batchIdx, workers int, ship func() []trace.Record) (int, error) {
	batchTr, ctx := trace.Child(ctx, "transport.batch")
	batchTr.WithArg("batch", int64(batchIdx))
	defer batchTr.End()
	n := len(batch.Instances)
	if n == 0 || n > s.maxBatch {
		err := fmt.Errorf("%w: %d not in [1, %d]", ErrBatchTooLarge, n, s.maxBatch)
		_ = cc.send(CommitmentsMsg{Err: err.Error()})
		return 0, err
	}
	if batch.Req != nil {
		// The request was gob-decoded from the peer: reject malformed group
		// parameters or ciphertexts here, as a protocol error the client
		// sees, rather than panicking inside the commitment kernels.
		if err := prover.HandleCommitRequest(batch.Req); err != nil {
			_ = cc.send(CommitmentsMsg{Err: err.Error()})
			return 0, err
		}
	} else if batchIdx == 0 {
		err := fmt.Errorf("%w: first batch carries no commit request", ErrMalformedHello)
		_ = cc.send(CommitmentsMsg{Err: err.Error()})
		return 0, err
	}
	// Small batches leave pool workers idle during the commit phase; hand
	// the leftovers to each Commit's group-arithmetic kernel.
	prover.SetKernelWorkers(workers / n)

	states := make([]*vc.InstanceState, n)
	cms := CommitmentsMsg{Items: make([]*vc.Commitment, n)}
	commitTr, commitCtx := trace.Child(ctx, "vc.commit")
	defer commitTr.End()
	if err := vc.ForEach(ctx, n, workers, func(i int) error {
		isp, ictx := trace.Child(commitCtx, "prover.commit")
		isp.WithArg("instance", int64(i))
		defer isp.End()
		cm, st, err := prover.Commit(ictx, batch.Instances[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		cms.Items[i], states[i] = cm, st
		return nil
	}); err != nil {
		_ = cc.send(CommitmentsMsg{Err: err.Error()})
		return 0, err
	}
	commitTr.End()
	if err := cc.send(cms); err != nil {
		return 0, err
	}

	// The wait for the decommit is the verifier's barrier plus one
	// round-trip; it shows up as its own span so wire stalls are visible.
	awaitTr := trace.Start(ctx, "wire.await_decommit")
	var decommit DecommitMsg
	err := cc.recv(&decommit)
	awaitTr.End()
	if err != nil {
		return 0, fmt.Errorf("transport: reading decommit: %w", err)
	}
	if err := prover.HandleDecommit(decommit.Req); err != nil {
		_ = cc.send(ResponsesMsg{Err: err.Error()})
		return 0, err
	}
	resp := ResponsesMsg{Items: make([]*vc.Response, n)}
	respondTr, respondCtx := trace.Child(ctx, "vc.respond")
	defer respondTr.End()
	if err := vc.ForEach(ctx, n, workers, func(i int) error {
		isp := trace.Start(respondCtx, "prover.respond").WithArg("instance", int64(i))
		defer isp.End()
		r, err := prover.Respond(ctx, states[i])
		if err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
		resp.Items[i] = r
		return nil
	}); err != nil {
		_ = cc.send(ResponsesMsg{Err: err.Error()})
		return 0, err
	}
	respondTr.End()
	batchTr.End()
	resp.Trace = ship()
	return n, cc.send(resp)
}
