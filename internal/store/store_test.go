package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

const storeSrc = `
input x, y : int32;
output z : int64;
z = x * y + x;
`

func testArtifact(t *testing.T) (*compiler.Program, *vc.Precomputation, Key) {
	t.Helper()
	prog, err := compiler.Compile(field.F128(), storeSrc)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := vc.PreprocessBackend(prog, pcp.BackendZaatar)
	if err != nil {
		t.Fatal(err)
	}
	return prog, pre, KeyFor(prog.Source, prog.Field.Name(), pre.Backend)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog, pre, key := testArtifact(t)
	if s.Contains(key) {
		t.Fatal("empty store claims to contain the key")
	}
	if _, err := s.Load(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store Load: %v, want ErrNotFound", err)
	}
	n, err := s.Save(key, prog, pre)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("Save reported %d bytes", n)
	}
	if !s.Contains(key) {
		t.Fatal("Contains false after Save")
	}
	b, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if b.Key != key {
		t.Fatalf("loaded key %s, want %s", b.Key, key)
	}
	if b.Prog.Source != prog.Source {
		t.Fatal("source changed through the bundle")
	}
	if b.Prog.Field != prog.Field {
		t.Fatal("field did not resolve to the shared instance")
	}
	if b.Pre.Backend != pre.Backend {
		t.Fatalf("backend %q after load", b.Pre.Backend)
	}
	if time.Since(b.Created) > time.Hour || time.Since(b.Created) < -time.Hour {
		t.Fatalf("implausible creation time %v", b.Created)
	}
	// No temp litter after a successful save.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("store dir has %d entries after one save", len(ents))
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog, pre, key := testArtifact(t)
	if _, err := s.Save(key, prog, pre); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(magic), len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(s.Path(key), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var ce *CorruptError
		if _, err := s.Load(key); !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: %v, want CorruptError", cut, err)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog, pre, key := testArtifact(t)
	if _, err := s.Save(key, prog, pre); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	// A flip anywhere — magic, header, payload, trailer — must surface as
	// corruption (or, for header flips that happen to hit the version
	// fields, a version error), never a successful load.
	for _, off := range []int{0, len(magic) + 1, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		if err := os.WriteFile(s.Path(key), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		var ce *CorruptError
		var ve *VersionError
		if _, err := s.Load(key); !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("flip at byte %d: %v, want corrupt or version error", off, err)
		}
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog, pre, key := testArtifact(t)
	progBytes, err := prog.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	preBytes, err := pre.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	base := header{
		FormatVersion: FormatVersion,
		CodeVersion:   CodeVersion,
		SourceHash:    key.SourceHash[:],
		Field:         key.Field,
		Backend:       key.Backend,
		ProgLen:       len(progBytes),
		PreLen:        len(preBytes),
		CreatedUnix:   time.Now().Unix(),
	}
	for name, mutate := range map[string]func(*header){
		"format": func(h *header) { h.FormatVersion = FormatVersion + 1 },
		"code":   func(h *header) { h.CodeVersion = "zb0-older-build" },
	} {
		h := base
		mutate(&h)
		raw, err := encodeBundleRaw(h, progBytes, preBytes)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.Path(key), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		// The checksum over the doctored bundle is valid: rejection must come
		// from the header version gate, proving it is checked first.
		var ve *VersionError
		if _, err := s.Load(key); !errors.As(err, &ve) {
			t.Fatalf("%s skew: %v, want VersionError", name, err)
		}
	}
}

func TestLoadRejectsRenamedBundle(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog, pre, key := testArtifact(t)
	if _, err := s.Save(key, prog, pre); err != nil {
		t.Fatal(err)
	}
	// Masquerade the bundle under a different program's canonical name: the
	// header-vs-request key check must refuse to serve it.
	other := KeyFor("input a : int32; output b : int32; b = a + a;", key.Field, key.Backend)
	raw, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(other), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := s.Load(other); !errors.As(err, &ce) {
		t.Fatalf("renamed bundle load: %v, want CorruptError", err)
	}
}

func TestWriteBundleReadBundleInstall(t *testing.T) {
	prog, pre, key := testArtifact(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "shipped.zb")
	gotKey, n, err := WriteBundle(path, prog, pre)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || n <= 0 {
		t.Fatalf("WriteBundle key %s size %d", gotKey, n)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Key != key || b.Prog.Source != prog.Source {
		t.Fatal("standalone bundle did not round trip")
	}

	// Install the shipped file into a fresh store on "another host".
	s, err := Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	ik, err := s.Install(path)
	if err != nil {
		t.Fatal(err)
	}
	if ik != key {
		t.Fatalf("Install key %s, want %s", ik, key)
	}
	if _, err := s.Load(key); err != nil {
		t.Fatalf("Load after Install: %v", err)
	}

	// Installing garbage must fail without touching the store.
	junk := filepath.Join(dir, "junk.zb")
	if err := os.WriteFile(junk, []byte("not a bundle at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Install(junk); err == nil {
		t.Fatal("garbage installed without error")
	}
}

func TestKeyString(t *testing.T) {
	k := KeyFor("src", "F128", "zaatar")
	want := sha256.Sum256([]byte("src"))
	if k.SourceHash != want {
		t.Fatal("KeyFor hash mismatch")
	}
	str := k.String()
	if len(str) < 24 || str[24] != '-' {
		t.Fatalf("unexpected key form %q", str)
	}
}
