// Package store persists compiled programs and their prover-side
// precomputations as content-addressed single-file bundles, so a restarted
// prover service serves previously-seen programs warm (no compile, no QAP
// preprocessing) and pre-baked bundles can be shipped between hosts
// (zaatar-compile -bundle). Bundles are keyed by source hash + field +
// backend — exactly the transport program-cache key — making the disk store
// a second tier under the in-memory LRU.
//
// A bundle file is:
//
//	magic (8 bytes) ─ uvarint header length ─ gob header ─ program payload
//	─ precomputation payload ─ sha256 trailer over everything before it
//
// The header carries the format and code versions, the full key, and the
// payload lengths. Readers check versions first (a bundle from a different
// build of the serialization code is rejected by the header alone), then
// the checksum, then decode. Writes go to a temp file in the same
// directory followed by an atomic rename, so readers never observe a
// partial bundle and a crashed writer leaves only a stale temp file.
//
// Every failure mode short of an I/O error on a healthy file is typed —
// ErrNotFound, *VersionError, *CorruptError — and callers (transport's
// two-tier cache) treat all of them as a miss: recompile, overwrite, never
// crash.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/vc"
)

// FormatVersion is the bundle container layout version. Bump only when the
// byte layout above changes.
const FormatVersion = 1

// CodeVersion names the build of the serialization code that produced a
// bundle's payloads (program gob schema, QAP binary layout, backend
// codecs). A reader only accepts bundles whose CodeVersion matches its own
// exactly: payload formats carry no internal versioning, so skew here would
// decode garbage with a valid checksum. Bump on any payload format change.
const CodeVersion = "zb1"

var magic = [8]byte{'z', 'a', 'a', 't', 'a', 'r', 'z', 'b'}

// Key identifies one bundle: the same source compiled for a different field
// or preprocessed for a different backend is a different artifact.
type Key struct {
	SourceHash [sha256.Size]byte
	Field      string // field name, e.g. "F128"
	Backend    string // pcp backend name, e.g. "zaatar"
}

// KeyFor derives the bundle key for a program source under a field and
// backend.
func KeyFor(source, fieldName, backend string) Key {
	return Key{SourceHash: sha256.Sum256([]byte(source)), Field: fieldName, Backend: backend}
}

// String renders the key in the canonical "hash-field-backend" form used in
// filenames and logs (hash truncated to 96 bits — full equality is always
// checked against the header, so filename collisions degrade to a miss, not
// a wrong answer).
func (k Key) String() string {
	return fmt.Sprintf("%s-%s-%s", hex.EncodeToString(k.SourceHash[:])[:24], k.Field, k.Backend)
}

// ErrNotFound reports a key with no bundle on disk.
var ErrNotFound = errors.New("store: bundle not found")

// CorruptError reports a bundle that exists but cannot be trusted: bad
// magic, checksum mismatch, truncation, undecodable payload, or a header
// key that does not match its contents. Callers treat it as a miss.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt bundle %s: %s", e.Path, e.Reason)
}

// VersionError reports a structurally-sound bundle written by an
// incompatible format or code version. Callers treat it as a miss.
type VersionError struct {
	Path      string
	GotFormat int
	GotCode   string
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: bundle %s has version (format %d, code %q), this build reads (format %d, code %q)",
		e.Path, e.GotFormat, e.GotCode, FormatVersion, CodeVersion)
}

// header is the gob-encoded bundle header. Version fields are checked
// before anything else is believed.
type header struct {
	FormatVersion int
	CodeVersion   string
	SourceHash    []byte
	Field         string
	Backend       string
	ProgLen       int
	PreLen        int
	CreatedUnix   int64
}

// Bundle is a decoded bundle: the compiled program plus the prover-side
// precomputation, both immutable and safe to share across sessions.
type Bundle struct {
	Key     Key
	Prog    *compiler.Program
	Pre     *vc.Precomputation
	Created time.Time
}

// Store is a directory of bundles. The zero value is unusable; construct
// with Open. A Store is safe for concurrent use: writes are atomic renames
// and reads never see partial files.
type Store struct {
	dir string
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the canonical bundle filename for a key.
func (s *Store) Path(k Key) string {
	return filepath.Join(s.dir, k.String()+".zb")
}

// Contains reports whether a bundle file exists for the key (without
// validating it — Load does that).
func (s *Store) Contains(k Key) bool {
	_, err := os.Stat(s.Path(k))
	return err == nil
}

// Load reads, verifies, and decodes the bundle for a key. It returns
// ErrNotFound when no file exists, *VersionError for incompatible bundles,
// and *CorruptError for everything untrustworthy; all three are misses.
func (s *Store) Load(k Key) (*Bundle, error) {
	path := s.Path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	b, err := decodeBundle(path, raw)
	if err != nil {
		return nil, err
	}
	if b.Key != k {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("header key %s does not match requested %s", b.Key, k)}
	}
	return b, nil
}

// Save encodes and atomically writes the bundle for a key, returning the
// bundle size in bytes. The temp file lives in the store directory so the
// rename never crosses filesystems.
func (s *Store) Save(k Key, prog *compiler.Program, pre *vc.Precomputation) (int64, error) {
	raw, err := encodeBundle(k, prog, pre)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(k)); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return int64(len(raw)), nil
}

// Install validates a bundle file produced elsewhere (zaatar-compile
// -bundle on another host) and copies it into the store under its canonical
// name, returning its key.
func (s *Store) Install(path string) (Key, error) {
	b, err := ReadBundle(path)
	if err != nil {
		return Key{}, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return Key{}, fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return Key{}, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return Key{}, fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return Key{}, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(b.Key)); err != nil {
		return Key{}, fmt.Errorf("store: %w", err)
	}
	return b.Key, nil
}

// WriteBundle encodes prog and pre into a standalone bundle file at path
// (atomically, via a temp file in the same directory), deriving the key
// from the program and precomputation themselves. Returns the key and the
// bundle size.
func WriteBundle(path string, prog *compiler.Program, pre *vc.Precomputation) (Key, int64, error) {
	k := KeyFor(prog.Source, prog.Field.Name(), pre.Backend)
	raw, err := encodeBundle(k, prog, pre)
	if err != nil {
		return Key{}, 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return Key{}, 0, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return Key{}, 0, fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return Key{}, 0, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return Key{}, 0, fmt.Errorf("store: %w", err)
	}
	return k, int64(len(raw)), nil
}

// ReadBundle reads and fully verifies a standalone bundle file.
func ReadBundle(path string) (*Bundle, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	return decodeBundle(path, raw)
}

func encodeBundle(k Key, prog *compiler.Program, pre *vc.Precomputation) ([]byte, error) {
	if prog == nil || pre == nil {
		return nil, errors.New("store: nil program or precomputation")
	}
	if got := KeyFor(prog.Source, prog.Field.Name(), pre.Backend); got != k {
		return nil, fmt.Errorf("store: key %s does not match contents %s", k, got)
	}
	progBytes, err := prog.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	preBytes, err := pre.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	h := header{
		FormatVersion: FormatVersion,
		CodeVersion:   CodeVersion,
		SourceHash:    k.SourceHash[:],
		Field:         k.Field,
		Backend:       k.Backend,
		ProgLen:       len(progBytes),
		PreLen:        len(preBytes),
		CreatedUnix:   time.Now().Unix(),
	}
	return encodeBundleRaw(h, progBytes, preBytes)
}

// encodeBundleRaw assembles the container around already-encoded payloads.
// Split out so tests can write bundles with doctored headers.
func encodeBundleRaw(h header, progBytes, preBytes []byte) ([]byte, error) {
	var hdr bytes.Buffer
	if err := gob.NewEncoder(&hdr).Encode(&h); err != nil {
		return nil, fmt.Errorf("store: encode header: %w", err)
	}
	out := make([]byte, 0, len(magic)+10+hdr.Len()+len(progBytes)+len(preBytes)+sha256.Size)
	out = append(out, magic[:]...)
	out = binary.AppendUvarint(out, uint64(hdr.Len()))
	out = append(out, hdr.Bytes()...)
	out = append(out, progBytes...)
	out = append(out, preBytes...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...), nil
}

func decodeBundle(path string, raw []byte) (*Bundle, error) {
	if len(raw) < len(magic)+1+sha256.Size {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("only %d bytes", len(raw))}
	}
	if !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, &CorruptError{Path: path, Reason: "bad magic"}
	}
	body := raw[:len(raw)-sha256.Size]
	rest := raw[len(magic):]
	hdrLen, used := binary.Uvarint(rest)
	if used <= 0 || hdrLen > uint64(len(rest)-used) {
		return nil, &CorruptError{Path: path, Reason: "bad header length"}
	}
	rest = rest[used:]
	var h header
	if err := gob.NewDecoder(bytes.NewReader(rest[:hdrLen])).Decode(&h); err != nil {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("undecodable header: %v", err)}
	}
	// Version gate first: a bundle from a different serialization build is a
	// version error even when its checksum is intact.
	if h.FormatVersion != FormatVersion || h.CodeVersion != CodeVersion {
		return nil, &VersionError{Path: path, GotFormat: h.FormatVersion, GotCode: h.CodeVersion}
	}
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], raw[len(raw)-sha256.Size:]) {
		return nil, &CorruptError{Path: path, Reason: "checksum mismatch"}
	}
	rest = rest[hdrLen:]
	if h.ProgLen < 0 || h.PreLen < 0 || len(rest) != h.ProgLen+h.PreLen+sha256.Size {
		return nil, &CorruptError{Path: path, Reason: "payload length mismatch"}
	}
	if len(h.SourceHash) != sha256.Size {
		return nil, &CorruptError{Path: path, Reason: "bad source hash length"}
	}
	var k Key
	copy(k.SourceHash[:], h.SourceHash)
	k.Field, k.Backend = h.Field, h.Backend

	prog, err := compiler.UnmarshalProgram(rest[:h.ProgLen])
	if err != nil {
		return nil, &CorruptError{Path: path, Reason: err.Error()}
	}
	// The program must actually be what the key claims: a bundle renamed (or
	// colliding) onto the wrong canonical name must never serve a different
	// program than the client hashed.
	if got := KeyFor(prog.Source, prog.Field.Name(), k.Backend); got != k {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("contents hash to %s, header says %s", got, k)}
	}
	pre, err := vc.UnmarshalPrecomputation(prog, k.Backend, rest[h.ProgLen:h.ProgLen+h.PreLen])
	if err != nil {
		return nil, &CorruptError{Path: path, Reason: err.Error()}
	}
	return &Bundle{Key: k, Prog: prog, Pre: pre, Created: time.Unix(h.CreatedUnix, 0)}, nil
}
