package farm

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync/atomic"
	"testing"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/prg"
	"zaatar/internal/transport"
)

const farmSrc = `
input x : int32;
output y : int32;
output sq : int64;
y = x - 3;
sq = x * x;
`

// dieAfterAck wraps the server side of a pipe so the worker completes the
// handshake (the hello ack is its first write) and then dies: once anything
// has been written, the next read fails and the connection closes. From the
// coordinator's side the worker accepted the session and vanished before
// serving its first shard — the deterministic "killed mid-batch" stand-in.
type dieAfterAck struct {
	net.Conn
	acked atomic.Bool
}

func (c *dieAfterAck) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.acked.Store(true)
	return n, err
}

func (c *dieAfterAck) Read(p []byte) (int, error) {
	if c.acked.Load() {
		c.Conn.Close()
		return 0, errors.New("worker killed")
	}
	return c.Conn.Read(p)
}

// newTestFarm dials n loopback workers (in-process transport services over
// net.Pipe) and wraps them in a Farm. wrap, when non-nil, may replace
// worker i's server-side connection (fault injection).
func newTestFarm(t *testing.T, n int, hello transport.Hello, copts transport.ClientOptions, fopts Options, wrap func(i int, conn net.Conn) net.Conn) *Farm {
	t.Helper()
	conns := make([]net.Conn, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		client, server := net.Pipe()
		if wrap != nil {
			server = wrap(i, server)
		}
		go func(server net.Conn) {
			_ = transport.ServeConn(context.Background(), server, transport.ServerOptions{Workers: 1})
		}(server)
		conns[i] = client
		addrs[i] = fmt.Sprintf("worker-%d", i)
	}
	copts.Addrs = addrs
	sess, err := transport.NewSession(context.Background(), conns, hello, copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	f, err := New(sess, fopts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func intBatch(n int) [][]*big.Int {
	batch := make([][]*big.Int, n)
	for i := range batch {
		batch[i] = []*big.Int{big.NewInt(int64(i + 2))}
	}
	return batch
}

func checkOutputs(t *testing.T, batch [][]*big.Int, res *transport.SessionResult) {
	t.Helper()
	if len(res.Accepted) != len(batch) {
		t.Fatalf("result covers %d of %d instances", len(res.Accepted), len(batch))
	}
	if !res.AllAccepted() {
		t.Fatalf("rejected: %v", res.Reasons)
	}
	for i := range batch {
		x := batch[i][0].Int64()
		if res.Outputs[i][0].Int64() != x-3 || res.Outputs[i][1].Int64() != x*x {
			t.Fatalf("instance %d outputs: %v", i, res.Outputs[i])
		}
	}
}

// TestFarmShardedMatchesSingleProver: a batch sharded across two workers
// verifies with the same per-instance verdicts and outputs a single prover
// would produce.
func TestFarmShardedMatchesSingleProver(t *testing.T) {
	reg := obs.NewRegistry()
	hello := transport.Hello{Source: farmSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	f := newTestFarm(t, 2, hello,
		transport.ClientOptions{Seed: []byte("farm"), Obs: reg},
		Options{Seed: []byte("farm"), Obs: reg}, nil)
	batch := intBatch(8)
	res, err := f.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, batch, res)
	if got := reg.CounterVec(MetricShards, LabelWorker).With("worker-0").Value() +
		reg.CounterVec(MetricShards, LabelWorker).With("worker-1").Value(); got < 2 {
		t.Fatalf("farm.shards = %d, want ≥ 2", got)
	}
	if f.LiveWorkers() != 2 {
		t.Fatalf("live workers = %d after a clean batch", f.LiveWorkers())
	}
	// A second batch reuses the session (fresh seeds per shard).
	res, err = f.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, batch, res)
}

// TestFarmWorkerDeathRequeues kills one of two workers after the handshake:
// its shards must requeue onto the survivor, the batch must still verify,
// and farm.shard.requeued must tick.
func TestFarmWorkerDeathRequeues(t *testing.T) {
	reg := obs.NewRegistry()
	hello := transport.Hello{Source: farmSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	f := newTestFarm(t, 2, hello,
		transport.ClientOptions{Seed: []byte("kill"), Obs: reg},
		Options{Seed: []byte("kill"), Obs: reg},
		func(i int, conn net.Conn) net.Conn {
			if i == 1 {
				return &dieAfterAck{Conn: conn}
			}
			return conn
		})
	batch := intBatch(6)
	res, err := f.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatalf("batch should survive one worker death: %v", err)
	}
	checkOutputs(t, batch, res)
	if got := reg.Counter(MetricShardRequeued).Value(); got < 1 {
		t.Fatalf("farm.shard.requeued = %d, want ≥ 1", got)
	}
	if got := reg.Counter(MetricWorkerFailures).Value(); got != 1 {
		t.Fatalf("farm.worker.failures = %d, want 1", got)
	}
	if f.LiveWorkers() != 1 {
		t.Fatalf("live workers = %d, want 1", f.LiveWorkers())
	}
}

// TestFarmAllWorkersDead: when every worker dies the batch fails with a
// *transport.FarmError naming a worker, never a bare I/O error.
func TestFarmAllWorkersDead(t *testing.T) {
	hello := transport.Hello{Source: farmSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	f := newTestFarm(t, 2, hello,
		transport.ClientOptions{Seed: []byte("dead")},
		Options{Seed: []byte("dead"), Obs: obs.NewRegistry()},
		func(i int, conn net.Conn) net.Conn { return &dieAfterAck{Conn: conn} })
	_, err := f.RunBatch(context.Background(), intBatch(4))
	if err == nil {
		t.Fatal("batch succeeded with every worker dead")
	}
	var fe *transport.FarmError
	if !errors.As(err, &fe) {
		t.Fatalf("want *transport.FarmError, got %T: %v", err, err)
	}
	if fe.Addr != "worker-0" && fe.Addr != "worker-1" {
		t.Fatalf("FarmError does not name a worker: %q", fe.Addr)
	}
}

// TestFarmConcurrentShards drives many single-instance shards across three
// workers; with -race this exercises concurrent shard completion into the
// shared result (the CI race job runs this package).
func TestFarmConcurrentShards(t *testing.T) {
	reg := obs.NewRegistry()
	hello := transport.Hello{Source: farmSrc, RhoLin: 2, Rho: 2, NoCommitment: true}
	f := newTestFarm(t, 3, hello,
		transport.ClientOptions{Seed: []byte("race"), Obs: reg},
		Options{Seed: []byte("race"), ShardSize: 1, Obs: reg}, nil)
	batch := intBatch(9)
	res, err := f.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, batch, res)
	if got := reg.CounterVec(MetricShards, LabelWorker).With("worker-0").Value() +
		reg.CounterVec(MetricShards, LabelWorker).With("worker-1").Value() +
		reg.CounterVec(MetricShards, LabelWorker).With("worker-2").Value(); got != 9 {
		t.Fatalf("farm.shards = %d, want 9", got)
	}
}

// TestFarmWideCommit splits single-instance commitments across two workers
// and checks the combined commitment verifies.
func TestFarmWideCommit(t *testing.T) {
	g, err := elgamal.GenerateGroup(field.F128().Modulus(), 320, prg.NewFromSeed([]byte("fg"), 0))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	hello := transport.Hello{Source: farmSrc, RhoLin: 1, Rho: 1}
	f := newTestFarm(t, 2, hello,
		transport.ClientOptions{Seed: []byte("wide"), Group: g, Obs: reg},
		Options{Seed: []byte("wide"), WideCommit: 2, Obs: reg}, nil)
	batch := [][]*big.Int{{big.NewInt(9)}}
	res, err := f.RunBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, batch, res)
	if got := reg.Counter(MetricWideSplits).Value(); got < 1 {
		t.Fatalf("farm.wide.splits = %d, want ≥ 1", got)
	}
}
