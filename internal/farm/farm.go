// Package farm coordinates one verifier over a fleet of prover workers.
//
// A Farm wraps a multi-leg transport.Session (one leg per worker) and
// shards each batch across the legs: every shard is an independent wire
// mini-batch — its own commit request, its own query seed, its own
// commitment key — driven over one leg via Session.ShardCommit and
// Session.ShardRespond. Per-shard keys are what make the scheme sound
// without a global barrier: the workers are collectively one adversary, and
// each shard's seed is revealed only after that shard's commitments are in,
// exactly the per-batch discipline of Verifier.Reseed. A requeued or stolen
// shard therefore replays on another worker with fresh randomness, never
// re-exposing a seed whose commitments the dead worker already saw.
//
// Scheduling is affinity-first with work stealing: shard i prefers the
// worker ranked i mod N in the session's leg order (zaatar.DialFarm orders
// legs by rendezvous hash of the program, so the same workers front the
// ranking across restarts and keep their program caches warm), and an idle
// worker steals any queued shard. When a worker dies mid-shard the shard is
// requeued (bounded by Options.ShardRetries) and the leg is retired; a
// worker that reports a prover-side error is healthy, so that error is
// fatal rather than retried.
//
// When a batch is narrower than the fleet and WideCommit asks for it, the
// farm instead splits each instance's commitment multiexp across k workers
// with vc.SplitCommitRequest: each worker commits against a masked share of
// Enc(r) and the partial commitments fold back into the single-prover
// commitment (vc.CombineCommitments). Only the commitment crypto splits;
// each cooperating worker still solves the constraints and builds H(t)
// itself.
package farm

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"sync"
	"time"

	"zaatar/internal/compiler"
	"zaatar/internal/obs"
	"zaatar/internal/transport"
	"zaatar/internal/vc"
)

// Farm metric names (see PROTOCOL.md §9).
const (
	// MetricShards counts shards dispatched, labeled by worker address.
	MetricShards = "farm.shards"
	// MetricShardRequeued counts shards requeued after a worker died
	// mid-shard (wide mode counts retried instances here too).
	MetricShardRequeued = "farm.shard.requeued"
	// MetricShardStolen counts shards run by a non-preferred worker.
	MetricShardStolen = "farm.shard.stolen"
	// MetricWorkerFailures counts workers retired after a leg failure.
	MetricWorkerFailures = "farm.worker.failures"
	// MetricWorkersLive gauges how many legs are still serving.
	MetricWorkersLive = "farm.workers.live"
	// MetricWideSplits counts instances whose commitment was split across
	// cooperating workers (wide mode).
	MetricWideSplits = "farm.wide.splits"
	// MetricWorkerUp is the gauge a worker process sets to 1 while serving
	// (zaatar.ServeWorker registers it).
	MetricWorkerUp = "farm.worker.up"
	// MetricSpanBatch / MetricSpanShard time one farm batch / one shard.
	MetricSpanBatch = "farm.batch"
	MetricSpanShard = "farm.shard"
	// LabelWorker is the worker-address label on MetricShards.
	LabelWorker = "worker"
)

// Options tune the coordinator. The zero value is usable.
type Options struct {
	// ShardRetries bounds how many times one shard may be requeued after a
	// worker death before the batch fails; 0 means the default (2), and a
	// negative value disables requeueing.
	ShardRetries int
	// ShardSize fixes the instances per shard; 0 sizes shards so each live
	// worker expects about two (small enough to steal, large enough to
	// amortize the per-shard key generation).
	ShardSize int
	// WideCommit, when ≥ 2, splits each instance's commitment multiexp
	// across up to that many workers whenever a batch has fewer instances
	// than the fleet has live workers (and commitments are on). Off by
	// default: wide mode trades k× solve/H(t) recomputation for 1/k of the
	// commitment crypto per worker, a good trade only when the multiexp
	// dominates.
	WideCommit int
	// Workers is the verification parallelism within one shard.
	Workers int
	// Seed fixes shard query seeds (each shard appends a counter); empty
	// draws fresh randomness per shard. Must match the seed the session was
	// dialed with for the dial-time verifier to line up.
	Seed []byte
	// Obs receives farm.* metrics and spans; nil uses obs.Default().
	Obs *obs.Registry
	// Logger receives worker-death and requeue records; nil disables.
	Logger *slog.Logger
}

// Farm drives a multi-worker prover session. Create with New; RunBatch
// then schedules each batch across the live workers. RunBatch calls are
// serialized internally, like Session.RunBatch.
type Farm struct {
	sess *transport.Session
	opts Options
	reg  *obs.Registry
	log  *slog.Logger

	runMu sync.Mutex // one batch in flight at a time

	mu    sync.Mutex
	alive []bool
	live  int
	seq   int // shard seed counter, monotone across batches

	vmu   sync.Mutex
	vmade int
	vpool chan *pooledVerifier
}

// pooledVerifier is a free-list entry; used marks state already consumed by
// a shard (or abandoned mid-shard), so the next acquire must Reseed before
// handing it out.
type pooledVerifier struct {
	v    *vc.Verifier
	used bool
}

// New wraps an open session in a coordinator. The session must have
// negotiated wire v2 or later on every leg: each shard is an extra wire
// batch on its leg, which v1 servers refuse.
func New(sess *transport.Session, opts Options) (*Farm, error) {
	if sess.NumLegs() < 1 {
		return nil, errors.New("farm: session has no workers")
	}
	if sess.WireVersion() < transport.ProtocolV2 {
		return nil, fmt.Errorf("farm: workers negotiated wire v%d; the farm needs keep-alive sessions (v2+)", sess.WireVersion())
	}
	f := &Farm{
		sess:  sess,
		opts:  opts,
		reg:   opts.Obs,
		log:   obs.OrNop(opts.Logger),
		alive: make([]bool, sess.NumLegs()),
		live:  sess.NumLegs(),
		vpool: make(chan *pooledVerifier, sess.NumLegs()),
		vmade: 1,
	}
	if f.reg == nil {
		f.reg = obs.Default()
	}
	for i := range f.alive {
		f.alive[i] = true
	}
	// The dial-time verifier is pool member #1, fresh from the handshake.
	f.vpool <- &pooledVerifier{v: sess.Verifier()}
	f.reg.RegisterGauge(MetricWorkersLive, func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.live)
	})
	return f, nil
}

// Program, WireVersion, Backend, SetupDuration and Close delegate to the
// underlying session, so a Farm serves wherever a Session does.
func (f *Farm) Program() *compiler.Program   { return f.sess.Program() }
func (f *Farm) WireVersion() int             { return f.sess.WireVersion() }
func (f *Farm) Backend() string              { return f.sess.Backend() }
func (f *Farm) SetupDuration() time.Duration { return f.sess.SetupDuration() }
func (f *Farm) Close() error                 { return f.sess.Close() }

// NumWorkers reports the fleet size; LiveWorkers how many are still serving.
func (f *Farm) NumWorkers() int { return f.sess.NumLegs() }

func (f *Farm) LiveWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.live
}

// retries resolves Options.ShardRetries (0 = default 2, negative = none).
func (f *Farm) retries() int {
	switch {
	case f.opts.ShardRetries > 0:
		return f.opts.ShardRetries
	case f.opts.ShardRetries < 0:
		return 0
	default:
		return 2
	}
}

// shardSeed derives shard n's query seed; empty base stays empty (fresh
// randomness per shard), mirroring the session's per-batch derivation.
func shardSeed(base []byte, n int) []byte {
	if len(base) == 0 {
		return nil
	}
	out := make([]byte, 0, len(base)+4)
	out = append(out, base...)
	return append(out, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
}

func (f *Farm) nextSeed() []byte {
	f.mu.Lock()
	n := f.seq
	f.seq++
	f.mu.Unlock()
	return shardSeed(f.opts.Seed, n)
}

// acquire hands out a verifier with fresh per-shard state: a pooled one
// (reseeded if its state was consumed), or a new Fork of the dial-time
// verifier while the pool is below the fleet size.
func (f *Farm) acquire(ctx context.Context) (*pooledVerifier, error) {
	var pv *pooledVerifier
	select {
	case pv = <-f.vpool:
	default:
		f.vmu.Lock()
		if f.vmade < f.sess.NumLegs() {
			f.vmade++
			f.vmu.Unlock()
			nv, err := f.sess.Verifier().Fork(ctx, f.nextSeed())
			if err != nil {
				f.vmu.Lock()
				f.vmade--
				f.vmu.Unlock()
				return nil, err
			}
			return &pooledVerifier{v: nv}, nil
		}
		f.vmu.Unlock()
		select {
		case pv = <-f.vpool:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if pv.used {
		if err := pv.v.Reseed(ctx, f.nextSeed()); err != nil {
			f.release(pv)
			return nil, err
		}
		pv.used = false
	}
	return pv, nil
}

func (f *Farm) release(pv *pooledVerifier) {
	pv.used = true
	f.vpool <- pv
}

// liveLegs snapshots the indices of legs still serving, in rank order.
func (f *Farm) liveLegs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, f.live)
	for i, ok := range f.alive {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// workerDied retires leg i: the liveness bit drops, the connection closes,
// and the failure counter ticks. Idempotent per leg.
func (f *Farm) workerDied(i int, cause error) {
	f.mu.Lock()
	wasAlive := f.alive[i]
	if wasAlive {
		f.alive[i] = false
		f.live--
	}
	f.mu.Unlock()
	if !wasAlive {
		return
	}
	f.reg.Counter(MetricWorkerFailures).Inc()
	_ = f.sess.CloseLeg(i)
	f.log.Warn("farm worker died", "worker", f.sess.LegAddr(i), "leg", i, "err", cause)
}

// isWorkerDeath classifies a shard failure: a *FarmError that is not a
// *RemoteError and not the caller's cancellation means the leg itself broke
// (connection loss, malformed frame) — the worker is gone and its shard can
// be requeued elsewhere. A RemoteError came from a live worker's prover and
// would fail identically on any worker, so it is fatal.
func isWorkerDeath(ctx context.Context, err error) (*transport.FarmError, bool) {
	var fe *transport.FarmError
	if !errors.As(err, &fe) {
		return nil, false
	}
	var re *transport.RemoteError
	if errors.As(err, &re) {
		return nil, false
	}
	if ctx.Err() != nil {
		return nil, false
	}
	return fe, true
}

// RunBatch proves and verifies one batch across the farm. The result is
// index-aligned with batch, identical in shape to Session.RunBatch. On a
// nil error every instance was proved and verified (acceptance per instance
// is in the result); a *transport.FarmError (possibly wrapped) names the
// worker behind an unrecoverable leg failure. After a non-nil error the
// session's legs may be mid-protocol — close the farm rather than reuse it.
func (f *Farm) RunBatch(ctx context.Context, batch [][]*big.Int) (*transport.SessionResult, error) {
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if len(batch) == 0 {
		return nil, errors.New("farm: empty batch")
	}
	if len(f.liveLegs()) == 0 {
		return nil, errors.New("farm: no live workers")
	}
	sp := f.reg.StartSpan(MetricSpanBatch)
	defer sp.End()
	out := &transport.SessionResult{
		Accepted: make([]bool, len(batch)),
		Reasons:  make([]string, len(batch)),
		Outputs:  make([][]*big.Int, len(batch)),
	}
	var err error
	if f.wideEligible(len(batch)) {
		err = f.runWide(ctx, batch, out)
	} else {
		err = f.runSharded(ctx, batch, out, 0, len(batch))
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// wideEligible: wide mode needs an explicit opt-in, at least two live
// workers, commitments on, and a batch narrower than the fleet (otherwise
// plain sharding keeps every worker busy without recomputing solves).
func (f *Farm) wideEligible(n int) bool {
	if f.opts.WideCommit < 2 {
		return false
	}
	live := f.LiveWorkers()
	return live >= 2 && n < live && len(f.sess.Verifier().Setup().EncR1) > 0
}

// ---- sharded mode -------------------------------------------------------

// task is one shard: instances [lo,hi) of the batch, preferring worker
// pref, requeued retries times so far.
type task struct {
	lo, hi  int
	pref    int
	retries int
}

// shardQueue is the scheduler: a mutex/cond work queue that hands each
// worker its preferred shards first and lets idle workers steal the rest.
type shardQueue struct {
	mu          sync.Mutex
	cond        *sync.Cond
	tasks       []*task
	outstanding int // tasks not yet completed
	workers     int // worker goroutines still running
	err         error
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pop blocks until a task is available for leg (preferred first, then any),
// the queue fails, or all tasks complete; nil means stop. stolen reports
// that the task preferred another worker.
func (q *shardQueue) pop(leg int) (t *task, stolen bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.err != nil || q.outstanding == 0 {
			return nil, false
		}
		for i, c := range q.tasks {
			if c.pref == leg {
				q.tasks = append(q.tasks[:i], q.tasks[i+1:]...)
				return c, false
			}
		}
		if len(q.tasks) > 0 {
			c := q.tasks[0]
			q.tasks = q.tasks[1:]
			return c, true
		}
		q.cond.Wait()
	}
}

func (q *shardQueue) done() {
	q.mu.Lock()
	q.outstanding--
	if q.outstanding == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

func (q *shardQueue) requeue(t *task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *shardQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil && err != nil {
		q.err = err
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// retire records a worker goroutine exiting; if the last worker leaves with
// shards still outstanding (every worker died), the queue fails with the
// final worker's error so blocked pops — there are none left — and the
// driver see it.
func (q *shardQueue) retire(err error) {
	q.mu.Lock()
	q.workers--
	if q.workers == 0 && q.outstanding > 0 && q.err == nil {
		if err == nil {
			err = errors.New("farm: all workers lost with shards outstanding")
		}
		q.err = err
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *shardQueue) failure() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// runSharded schedules instances [lo,hi) of batch across the live workers
// and writes verdicts into the matching positions of out.
func (f *Farm) runSharded(ctx context.Context, batch [][]*big.Int, out *transport.SessionResult, lo, hi int) error {
	live := f.liveLegs()
	if len(live) == 0 {
		return errors.New("farm: no live workers")
	}
	size := f.opts.ShardSize
	if size <= 0 {
		size = (hi - lo + 2*len(live) - 1) / (2 * len(live))
		if size < 1 {
			size = 1
		}
	}
	q := newShardQueue()
	for s, i := lo, 0; s < hi; i++ {
		e := s + size
		if e > hi {
			e = hi
		}
		q.tasks = append(q.tasks, &task{lo: s, hi: e, pref: live[i%len(live)]})
		s = e
	}
	q.outstanding = len(q.tasks)
	q.workers = len(live)
	// A cancelled caller context must wake workers parked in cond.Wait.
	stop := context.AfterFunc(ctx, func() { q.fail(ctx.Err()) })
	defer stop()
	var wg sync.WaitGroup
	for _, leg := range live {
		wg.Add(1)
		go func(leg int) {
			defer wg.Done()
			f.legWorker(ctx, leg, q, batch, out)
		}(leg)
	}
	wg.Wait()
	return q.failure()
}

// legWorker drains the queue over one leg until the queue empties, a fatal
// error lands, or this leg's worker dies.
func (f *Farm) legWorker(ctx context.Context, leg int, q *shardQueue, batch [][]*big.Int, out *transport.SessionResult) {
	for {
		t, stolen := q.pop(leg)
		if t == nil {
			q.retire(nil)
			return
		}
		if stolen {
			f.reg.Counter(MetricShardStolen).Inc()
		}
		pv, err := f.acquire(ctx)
		if err != nil {
			q.fail(err)
			q.retire(err)
			return
		}
		err = f.runShard(ctx, leg, pv.v, t, batch, out)
		f.release(pv)
		if err == nil {
			q.done()
			continue
		}
		fe, death := isWorkerDeath(ctx, err)
		if !death {
			q.fail(err)
			q.retire(err)
			return
		}
		f.workerDied(leg, fe.Err)
		if t.retries >= f.retries() {
			q.fail(fmt.Errorf("farm: shard [%d,%d) failed after %d attempts: %w", t.lo, t.hi, t.retries+1, err))
		} else {
			t.retries++
			f.reg.Counter(MetricShardRequeued).Inc()
			f.log.Info("farm shard requeued", "lo", t.lo, "hi", t.hi, "attempt", t.retries, "worker", f.sess.LegAddr(leg))
			q.requeue(t)
		}
		q.retire(err)
		return
	}
}

// runShard runs one shard as a wire mini-batch on one leg: commit, decommit,
// respond, verify, with verdicts written to the shard's slice of out.
func (f *Farm) runShard(ctx context.Context, leg int, v *vc.Verifier, t *task, batch [][]*big.Int, out *transport.SessionResult) error {
	sp := f.reg.StartSpan(MetricSpanShard)
	defer sp.End()
	f.reg.CounterVec(MetricShards, LabelWorker).With(f.sess.LegAddr(leg)).Inc()
	shard := batch[t.lo:t.hi]
	cms, err := f.sess.ShardCommit(ctx, leg, v.Setup(), shard)
	if err != nil {
		return err
	}
	dreq, err := v.Decommit()
	if err != nil {
		return err
	}
	resps, err := f.sess.ShardRespond(ctx, leg, dreq)
	if err != nil {
		return err
	}
	if len(resps) != len(shard) {
		return &transport.FarmError{Addr: f.sess.LegAddr(leg), Leg: leg,
			Err: errors.New("farm: response count mismatch")}
	}
	workers := f.opts.Workers
	if workers < 1 {
		workers = 1
	}
	return vc.ForEach(ctx, len(shard), workers, func(i int) error {
		ok, reason := v.VerifyInstance(ctx, shard[i], cms[i], resps[i])
		out.Accepted[t.lo+i] = ok
		out.Reasons[t.lo+i] = reason
		out.Outputs[t.lo+i] = cms[i].Output
		return nil
	})
}

// ---- wide mode ----------------------------------------------------------

// errNarrow asks runWide to fall back to sharded mode for the remaining
// instances (fewer than two live workers left).
var errNarrow = errors.New("farm: too few workers for wide commit")

// runWide proves the batch one instance at a time, splitting each
// instance's commitment across cooperating workers.
func (f *Farm) runWide(ctx context.Context, batch [][]*big.Int, out *transport.SessionResult) error {
	for idx := range batch {
		err := f.runWideInstance(ctx, idx, batch[idx], out)
		if errors.Is(err, errNarrow) {
			return f.runSharded(ctx, batch, out, idx, len(batch))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// runWideInstance drives one instance through a split commit: mask Enc(r)
// into k shares, commit on k legs concurrently, fold the partials, reveal
// one decommit to every leg, verify against any surviving leg's response.
// A worker death mid-cycle drains the surviving legs (their wire batch must
// finish) and retries with fresh randomness, bounded like shard requeues.
func (f *Farm) runWideInstance(ctx context.Context, idx int, inputs []*big.Int, out *transport.SessionResult) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		legs := f.liveLegs()
		if len(legs) < 2 {
			return errNarrow
		}
		if attempt > f.retries() {
			return fmt.Errorf("farm: wide commit for instance %d failed after %d attempts: %w", idx, attempt, lastErr)
		}
		if attempt > 0 {
			f.reg.Counter(MetricShardRequeued).Inc()
		}
		k := f.opts.WideCommit
		if k > len(legs) {
			k = len(legs)
		}
		group := legs[:k]
		pv, err := f.acquire(ctx)
		if err != nil {
			return err
		}
		v := pv.v
		parts := vc.SplitCommitRequest(v.Setup(), k)
		f.reg.Counter(MetricWideSplits).Inc()
		sp := f.reg.StartSpan(MetricSpanShard)

		cms := make([]*vc.Commitment, k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for j := 0; j < k; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				f.reg.CounterVec(MetricShards, LabelWorker).With(f.sess.LegAddr(group[j])).Inc()
				got, err := f.sess.ShardCommit(ctx, group[j], parts[j], [][]*big.Int{inputs})
				if err != nil {
					errs[j] = err
					return
				}
				cms[j] = got[0]
			}(j)
		}
		wg.Wait()

		// The decommit is needed either way: to finish the cycle on success,
		// and to drain the surviving legs' wire batches on failure. The seed
		// it reveals is burnt regardless — a retry reseeds.
		dreq, derr := v.Decommit()
		if derr != nil {
			f.release(pv)
			sp.End()
			return derr
		}
		if err := f.classifyWide(ctx, errs, group); err != nil {
			f.release(pv)
			sp.End()
			return err
		}
		if failed := anyErr(errs); failed != nil {
			// Drain healthy mid-cycle legs, then retry the whole instance.
			for j := 0; j < k; j++ {
				if errs[j] != nil {
					continue
				}
				if _, err := f.sess.ShardRespond(ctx, group[j], dreq); err != nil {
					if _, death := isWorkerDeath(ctx, err); !death {
						f.release(pv)
						sp.End()
						return err
					}
					var fe *transport.FarmError
					errors.As(err, &fe)
					f.workerDied(group[j], fe.Err)
				}
			}
			f.release(pv)
			sp.End()
			lastErr = failed
			f.log.Info("farm wide instance retried", "instance", idx, "attempt", attempt+1, "err", failed)
			continue
		}

		combined, err := v.CombineCommitments(cms)
		if err != nil {
			f.release(pv)
			sp.End()
			return err
		}
		// Every leg must see the decommit to close its wire batch; any one
		// leg's response verifies the combined commitment (the PCP answers
		// are a deterministic function of the proof vector and the seed).
		var resp *vc.Response
		rerrs := make([]error, k)
		var rwg sync.WaitGroup
		resps := make([]*vc.Response, k)
		for j := 0; j < k; j++ {
			rwg.Add(1)
			go func(j int) {
				defer rwg.Done()
				got, err := f.sess.ShardRespond(ctx, group[j], dreq)
				if err != nil {
					rerrs[j] = err
					return
				}
				if len(got) != 1 {
					rerrs[j] = &transport.FarmError{Addr: f.sess.LegAddr(group[j]), Leg: group[j],
						Err: errors.New("farm: response count mismatch")}
					return
				}
				resps[j] = got[0]
			}(j)
		}
		rwg.Wait()
		sp.End()
		if err := f.classifyWide(ctx, rerrs, group); err != nil {
			f.release(pv)
			return err
		}
		for j := 0; j < k; j++ {
			if rerrs[j] == nil {
				resp = resps[j]
				break
			}
		}
		if resp == nil {
			f.release(pv)
			lastErr = anyErr(rerrs)
			continue
		}
		ok, reason := v.VerifyInstance(ctx, inputs, combined, resp)
		out.Accepted[idx] = ok
		out.Reasons[idx] = reason
		out.Outputs[idx] = combined.Output
		f.release(pv)
		return nil
	}
}

// classifyWide splits a wide cycle's per-leg errors into worker deaths
// (retire the leg, recoverable) and fatal errors (returned).
func (f *Farm) classifyWide(ctx context.Context, errs []error, group []int) error {
	for j, err := range errs {
		if err == nil {
			continue
		}
		fe, death := isWorkerDeath(ctx, err)
		if !death {
			return err
		}
		f.workerDied(group[j], fe.Err)
	}
	return nil
}

func anyErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
