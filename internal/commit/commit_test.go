package commit

import (
	"testing"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

func setup(t *testing.T, n int) (*field.Field, *elgamal.Group, *Key, *prg.ChaCha) {
	t.Helper()
	f := field.FTiny()
	rnd := prg.NewFromSeed([]byte("commit-test"), 0)
	g, err := elgamal.GenerateGroup(f.Modulus(), 256, rnd)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKey(f, g, sk, n, rnd)
	if err != nil {
		t.Fatal(err)
	}
	return f, g, k, rnd
}

func TestHonestProverPasses(t *testing.T) {
	f, g, k, rnd := setup(t, 24)
	u := f.RandVector(24, rnd)

	c, err := Commit(g, f, k.EncR, u)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]field.Element{f.RandVector(24, rnd), f.RandVector(24, rnd), f.RandVector(24, rnd)}
	d, secrets, err := k.BuildDecommit(queries, rnd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Respond(f, u, d)
	if err != nil {
		t.Fatal(err)
	}
	if !k.VerifyConsistency(c, secrets, resp) {
		t.Fatal("honest prover rejected")
	}
	// The answers are the true inner products.
	for i, q := range queries {
		if !f.Equal(resp.Answers[i], f.InnerProduct(q, u)) {
			t.Fatal("answer is not the linear function value")
		}
	}
}

func TestLyingProverCaught(t *testing.T) {
	f, g, k, rnd := setup(t, 16)
	u := f.RandVector(16, rnd)
	c, _ := Commit(g, f, k.EncR, u)
	queries := [][]field.Element{f.RandVector(16, rnd), f.RandVector(16, rnd)}
	d, secrets, _ := k.BuildDecommit(queries, rnd)

	resp, _ := Respond(f, u, d)
	// Tamper with one answer after committing.
	resp.Answers[1] = f.Add(resp.Answers[1], f.One())
	if k.VerifyConsistency(c, secrets, resp) {
		t.Fatal("tampered answer accepted")
	}
}

func TestSwitchedFunctionCaught(t *testing.T) {
	// Prover commits to u but answers queries with a different u'.
	f, g, k, rnd := setup(t, 16)
	u := f.RandVector(16, rnd)
	u2 := f.RandVector(16, rnd)
	c, _ := Commit(g, f, k.EncR, u)
	queries := [][]field.Element{f.RandVector(16, rnd)}
	d, secrets, _ := k.BuildDecommit(queries, rnd)
	resp, _ := Respond(f, u2, d)
	if k.VerifyConsistency(c, secrets, resp) {
		t.Fatal("function switch accepted")
	}
}

func TestTamperedConsistencyAnswerCaught(t *testing.T) {
	f, g, k, rnd := setup(t, 8)
	u := f.RandVector(8, rnd)
	c, _ := Commit(g, f, k.EncR, u)
	d, secrets, _ := k.BuildDecommit([][]field.Element{f.RandVector(8, rnd)}, rnd)
	resp, _ := Respond(f, u, d)
	resp.AT = f.Add(resp.AT, f.One())
	if k.VerifyConsistency(c, secrets, resp) {
		t.Fatal("tampered consistency answer accepted")
	}
}

func TestQueryLengthMismatch(t *testing.T) {
	f, _, k, rnd := setup(t, 8)
	if _, _, err := k.BuildDecommit([][]field.Element{f.RandVector(9, rnd)}, rnd); err == nil {
		t.Error("BuildDecommit accepted wrong-length query")
	}
	d := Decommit{Queries: [][]field.Element{f.RandVector(8, rnd)}, T: f.RandVector(7, rnd)}
	if _, err := Respond(f, f.RandVector(8, rnd), d); err == nil {
		t.Error("Respond accepted wrong-length t")
	}
}

func TestZeroQueries(t *testing.T) {
	f, g, k, rnd := setup(t, 8)
	u := f.RandVector(8, rnd)
	c, _ := Commit(g, f, k.EncR, u)
	d, secrets, err := k.BuildDecommit(nil, rnd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Respond(f, u, d)
	if err != nil {
		t.Fatal(err)
	}
	if !k.VerifyConsistency(c, secrets, resp) {
		t.Fatal("zero-query decommit rejected for honest prover")
	}
}

func TestKeyRejectsMismatchedGroup(t *testing.T) {
	f := field.FTiny()
	rnd := prg.NewFromSeed([]byte("mismatch"), 0)
	g := elgamal.GroupF128() // order != FTiny modulus
	sk, _ := g.GenerateKey(rnd)
	if _, err := NewKey(f, g, sk, 4, rnd); err == nil {
		t.Error("NewKey accepted mismatched group/field")
	}
}
