// Package commit implements the linear commitment primitive of
// Pepper/Ginger ([52], [53] Apdx A.3; §2.2 of the Zaatar paper), which turns
// a prover holding a linear function π(·) = ⟨·, u⟩ into a bindable proof
// oracle:
//
//  1. Commit. V sends Enc(r) for a secret random vector r; P replies with
//     Enc(π(r)), computed homomorphically. Semantic security keeps r hidden,
//     so P is now bound to some fixed linear function.
//  2. Decommit. V reveals the PCP queries q_1..q_µ together with a
//     consistency point t = r + Σ α_i·q_i for secret random α_i. P answers
//     with π(q_1)..π(q_µ) and π(t).
//  3. Consistency test. V decrypts g^{π(r)} and checks
//     g^{π(t)} = g^{π(r)} · g^{Σ α_i π(q_i)} in the group — linearity of π
//     forces the revealed answers to match the committed function.
//
// A commitment key (r, Enc(r), the α's) is generated once per batch and
// reused across all instances; only Enc(π(r)) and the consistency check are
// per-instance. This is the amortization that Figure 3 charges as
// (e + …)·|u|/β.
package commit

import (
	"errors"
	"io"
	"math/big"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
)

// Key is the verifier's per-batch commitment state for one proof oracle of
// length n.
type Key struct {
	F     *field.Field
	Group *elgamal.Group
	SK    *elgamal.SecretKey

	R    []field.Element      // secret commitment vector
	EncR []elgamal.Ciphertext // Enc(R), shipped to the prover
}

// NewKey draws a fresh secret vector of length n and encrypts it.
func NewKey(f *field.Field, group *elgamal.Group, sk *elgamal.SecretKey, n int, rnd io.Reader) (*Key, error) {
	return NewKeyParallel(f, group, sk, n, rnd, 1)
}

// NewKeyParallel is NewKey with the Enc(r) setup sharded over workers
// goroutines. The random stream is consumed in element order regardless of
// worker count, so the key is deterministic for a seeded rnd.
func NewKeyParallel(f *field.Field, group *elgamal.Group, sk *elgamal.SecretKey, n int, rnd io.Reader, workers int) (*Key, error) {
	if group.Q.Cmp(f.Modulus()) != 0 {
		return nil, errors.New("commit: group order does not match field modulus")
	}
	r := f.RandVector(n, rnd)
	encR, err := sk.EncryptVectorParallel(f, r, rnd, workers)
	if err != nil {
		return nil, err
	}
	return &Key{F: f, Group: group, SK: sk, R: r, EncR: encR}, nil
}

// Commitment is the prover's response to the commit phase: Enc(π(r)).
type Commitment = elgamal.Ciphertext

// Commit is the prover side of the commit phase: it evaluates the linear
// function defined by u on the encrypted vector.
func Commit(group *elgamal.Group, f *field.Field, encR []elgamal.Ciphertext, u []field.Element) (Commitment, error) {
	return group.InnerProduct(encR, f, u)
}

// CommitParallel is Commit with the homomorphic inner product sharded over
// workers goroutines; the result is identical for every worker count.
func CommitParallel(group *elgamal.Group, f *field.Field, encR []elgamal.Ciphertext, u []field.Element, workers int) (Commitment, error) {
	return group.InnerProductParallel(encR, f, u, workers)
}

// Prepare caches the Montgomery-domain conversion and batch inverses of
// Enc(r) for a batch: every instance commits against the same encrypted
// vector, so a prover that prepares once and calls CommitPrepared per
// instance skips the per-call base conversion and gets signed-digit
// multiexp windows at no inversion cost.
func Prepare(group *elgamal.Group, encR []elgamal.Ciphertext) *elgamal.PreparedVector {
	return group.Prepare(encR)
}

// CommitPrepared is CommitParallel against a prepared Enc(r); results are
// identical to Commit for any worker count.
func CommitPrepared(group *elgamal.Group, f *field.Field, pv *elgamal.PreparedVector, u []field.Element, workers int) (Commitment, error) {
	return group.InnerProductPrepared(pv, f, u, workers)
}

// Decommit carries the revealed queries plus the consistency point t.
type Decommit struct {
	Queries [][]field.Element
	T       []field.Element
}

// Secrets holds the verifier's per-decommit secret coefficients.
type Secrets struct {
	Alphas []field.Element
}

// BuildDecommit folds the given PCP queries into a decommit message,
// drawing fresh secret α's. Each query must have length len(k.R).
func (k *Key) BuildDecommit(queries [][]field.Element, rnd io.Reader) (Decommit, Secrets, error) {
	t := append([]field.Element(nil), k.R...)
	alphas := make([]field.Element, len(queries))
	for i, q := range queries {
		if len(q) != len(k.R) {
			return Decommit{}, Secrets{}, errors.New("commit: query length mismatch")
		}
		alphas[i] = k.F.Rand(rnd)
		k.F.AddScaled(t, alphas[i], q)
	}
	return Decommit{Queries: queries, T: t}, Secrets{Alphas: alphas}, nil
}

// Response is the prover's answers: one field element per query plus the
// consistency answer π(t).
type Response struct {
	Answers []field.Element
	AT      field.Element
}

// Respond evaluates the prover's linear function ⟨·, u⟩ on every revealed
// query and the consistency point.
func Respond(f *field.Field, u []field.Element, d Decommit) (Response, error) {
	if len(d.T) != len(u) {
		return Response{}, errors.New("commit: t length mismatch")
	}
	out := Response{Answers: make([]field.Element, len(d.Queries))}
	for i, q := range d.Queries {
		if len(q) != len(u) {
			return Response{}, errors.New("commit: query length mismatch")
		}
		out.Answers[i] = f.InnerProduct(q, u)
	}
	out.AT = f.InnerProduct(d.T, u)
	return out, nil
}

// VerifyConsistency runs the verifier's consistency test against the
// commitment received in the commit phase. A false result means the prover's
// revealed answers are not explained by any single committed linear
// function, and the instance must be rejected.
func (k *Key) VerifyConsistency(c Commitment, s Secrets, resp Response) bool {
	if len(resp.Answers) != len(s.Alphas) {
		return false
	}
	// s = Σ α_i · a_i in the field; check g^{aT} == g^{π(r)}·g^{s}.
	sum := k.F.Zero()
	for i := range s.Alphas {
		sum = k.F.Add(sum, k.F.Mul(s.Alphas[i], resp.Answers[i]))
	}
	gPiR := k.SK.DecryptExp(c)
	want := new(big.Int).Mul(gPiR, k.Group.ExpOfField(k.F, sum))
	want.Mod(want, k.Group.P)
	got := k.Group.ExpOfField(k.F, resp.AT)
	return got.Cmp(want) == 0
}
