// Package par provides the repository's shared data-parallel scheduling
// primitive: a cancellable fixed-pool ForEach. It sits below every layer
// that fans work out over cores — the protocol driver (internal/vc), the
// wire layer (internal/transport), and the group-arithmetic kernels
// (internal/elgamal), which cannot import vc without a cycle.
package par

import (
	"context"
	"sync"
)

// ForEach runs fn(0..n-1) over a pool of workers goroutines and returns the
// first error. The pool is cancellable: after the first error or a context
// cancellation the feeder stops dispatching new indices and the workers
// drain promptly, so a failing batch costs one in-flight index per worker
// rather than the whole range. With workers ≤ 1 the indices run serially on
// the calling goroutine, still honoring ctx between calls.
func ForEach(ctx context.Context, n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if pctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-pctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	// firstErr is safely visible: it is written before cancel(), and every
	// path here runs after wg.Wait() observed the workers' exit.
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
