package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 33} {
		n := 100
		var hits [100]int32
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Error("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 64, workers, func(i int) error {
			if i == 13 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: got %v, want sentinel", workers, err)
		}
	}
}

func TestForEachErrorStopsFeeding(t *testing.T) {
	var ran int32
	_ = ForEach(context.Background(), 10000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return errors.New("stop")
	})
	if n := atomic.LoadInt32(&ran); n >= 10000 {
		t.Errorf("all %d items ran despite an early error", n)
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int32
		err := ForEach(ctx, 50, workers, func(int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if atomic.LoadInt32(&ran) == 50 {
			t.Errorf("workers=%d: cancelled run completed every item", workers)
		}
	}
}
