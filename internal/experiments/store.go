package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync/atomic"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/obs/trace"
	"zaatar/internal/pcp"
	"zaatar/internal/store"
	"zaatar/internal/transport"
)

// StoreResult quantifies the artifact-store tentpole: session-open latency
// across the three warmth tiers (cold compile, disk-warm restart, memory-
// warm LRU), the wire bytes a hash-first hello saves against a full-source
// one, and the span/counter evidence that the disk-warm restart really
// compiled nothing.
type StoreResult struct {
	Benchmark string `json:"benchmark"`
	Beta      int    `json:"beta"`

	// ColdOpenMs opens the first session ever: empty store, empty LRU — the
	// server asks for the source and compiles it. DiskWarmOpenMs opens the
	// first session of a *restarted* server (fresh process state, bundle on
	// disk): the program loads from the store. MemWarmOpenMs opens a repeat
	// session on a running server: the LRU serves it.
	ColdOpenMs     float64 `json:"cold_open_ms"`
	DiskWarmOpenMs float64 `json:"disk_warm_open_ms"`
	MemWarmOpenMs  float64 `json:"mem_warm_open_ms"`
	// ColdVsDiskSpeedup is ColdOpenMs / DiskWarmOpenMs — the warm-restart
	// win on the whole session-open wall (which also carries the
	// store-independent client-side compile and key generation).
	ColdVsDiskSpeedup float64 `json:"cold_vs_disk_speedup"`

	// The server-side program-acquisition path, from the session traces:
	// ColdAcquireMs sums the cold session's prover.compile and
	// prover.preprocess spans; DiskAcquireMs is the disk-warm session's
	// prover.store.load span. Their ratio isolates what the store replaces.
	ColdAcquireMs            float64 `json:"cold_acquire_ms"`
	DiskAcquireMs            float64 `json:"disk_acquire_ms"`
	ColdVsDiskAcquireSpeedup float64 `json:"cold_vs_disk_acquire_speedup"`

	// BundleBytes is the on-disk size of the program's bundle. SourceBytes
	// is the program source the v3 hello no longer carries;
	// HelloBytesHashFirst / HelloBytesFull are the measured client→server
	// bytes during session open for a hash-first and a pinned-v2 hello
	// against the same warm server.
	BundleBytes         int64 `json:"bundle_bytes"`
	SourceBytes         int   `json:"source_bytes"`
	HelloBytesHashFirst int64 `json:"hello_bytes_hash_first"`
	HelloBytesFull      int64 `json:"hello_bytes_full"`

	// DiskWarmCompileSpans / DiskWarmPreprocessSpans count the compile and
	// preprocess spans in the disk-warm session's stitched trace — both must
	// be zero for the warm-restart claim to hold. DiskWarmStoreLoadSpans
	// must be one.
	DiskWarmCompileSpans    int `json:"disk_warm_compile_spans"`
	DiskWarmPreprocessSpans int `json:"disk_warm_preprocess_spans"`
	DiskWarmStoreLoadSpans  int `json:"disk_warm_store_load_spans"`

	// StoreHits/StoreMisses are the restarted service's transport.store.*
	// counters (one hit, zero misses when the bundle served).
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
}

// countConn counts the bytes the client writes (its hello traffic during
// session open is what the hash-first exchange shrinks).
type countConn struct {
	net.Conn
	n *int64
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	atomic.AddInt64(c.n, int64(n))
	return n, err
}

// RunStore measures the content-addressed artifact store on the scale's
// first benchmark: a cold service populates the store, a second service
// over the same directory emulates a restarted server, and a third session
// measures the memory-warm tier on the running service.
func RunStore(o Options, beta int) (*StoreResult, error) {
	if beta < 1 {
		beta = 1
	}
	bench := Benchmarks(o.Scale)[0]
	rng := rand.New(rand.NewSource(o.Seed))
	batch := genBatch(bench, rng, beta)

	dir, err := os.MkdirTemp("", "zaatar-store-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	hello := transport.Hello{
		Source:       bench.Source,
		Field220:     bench.Field == field.F220(),
		RhoLin:       o.Params.RhoLin,
		Rho:          o.Params.Rho,
		NoCommitment: !o.Crypto,
	}
	baseOpts := transport.ClientOptions{Seed: []byte(fmt.Sprintf("store-%d", o.Seed))}
	if o.Crypto {
		baseOpts.Group = elgamal.GroupFor(bench.Field)
	}

	newSvc := func() (*transport.Service, *obs.Registry, error) {
		st, err := store.Open(dir)
		if err != nil {
			return nil, nil, err
		}
		reg := obs.NewRegistry()
		svc := transport.NewService(transport.ServiceOptions{
			Workers: o.Workers,
			Obs:     reg,
			Store:   st,
		})
		return svc, reg, nil
	}
	redial := func(svc *transport.Service) func(context.Context, int) (net.Conn, error) {
		return func(context.Context, int) (net.Conn, error) {
			client, server := net.Pipe()
			go func() { _ = svc.ServeConn(context.Background(), server) }()
			return client, nil
		}
	}
	// open runs one full session (open + one batch + close) against svc and
	// returns the session-open wall plus the client→server bytes of the
	// open. A nil wireHello means hash-first (the v3 default when redial is
	// available); otherwise the pinned hello is sent as given.
	open := func(ctx context.Context, svc *transport.Service, wireHello *transport.Hello) (openMs float64, wireBytes int64, err error) {
		h := hello
		if wireHello != nil {
			h = *wireHello
		}
		copts := baseOpts
		copts.Redial = redial(svc)
		client, server := net.Pipe()
		go func() { _ = svc.ServeConn(context.Background(), server) }()
		var sess *transport.Session
		ms, err := wallMs(func() (err error) {
			sess, err = transport.NewSession(ctx, []net.Conn{countConn{client, &wireBytes}}, h, copts)
			return err
		})
		if err != nil {
			return 0, 0, err
		}
		open := atomic.LoadInt64(&wireBytes)
		if _, err := sess.RunBatch(ctx, batch); err != nil {
			sess.Close()
			return 0, 0, err
		}
		if err := sess.Close(); err != nil {
			return 0, 0, err
		}
		return ms, open, nil
	}

	res := &StoreResult{Benchmark: bench.Name, Beta: beta, SourceBytes: len(bench.Source)}
	ctx := context.Background()

	// Cold: empty store, empty LRU — the hash misses twice, the server asks
	// for the source and compiles.
	cold, _, err := newSvc()
	if err != nil {
		return nil, err
	}
	coldRec := trace.NewRecorder(4096)
	coldCtx := trace.NewContext(ctx, trace.New(coldRec, "verifier"))
	res.ColdOpenMs, _, err = open(coldCtx, cold, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range coldRec.Snapshot() {
		if r.Name == "prover.compile" || r.Name == "prover.preprocess" {
			res.ColdAcquireMs += float64(r.Dur) / 1e6
		}
	}
	cold.FlushStore() // the write-back is async; a real restart would have drained it

	key := store.KeyFor(bench.Source, bench.Field.Name(), pcp.BackendZaatar)
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(st.Path(key)); err == nil {
		res.BundleBytes = fi.Size()
	}

	// Disk-warm restart: a fresh service over the same directory. The trace
	// proves what did (store load) and did not (compile, preprocess) run.
	warm, reg, err := newSvc()
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(4096)
	tctx := trace.NewContext(ctx, trace.New(rec, "verifier"))
	res.DiskWarmOpenMs, res.HelloBytesHashFirst, err = open(tctx, warm, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range rec.Snapshot() {
		switch r.Name {
		case "prover.compile":
			res.DiskWarmCompileSpans++
		case "prover.preprocess":
			res.DiskWarmPreprocessSpans++
		case "prover.store.load":
			res.DiskWarmStoreLoadSpans++
			res.DiskAcquireMs += float64(r.Dur) / 1e6
		}
	}
	res.StoreHits = reg.Counter(transport.MetricStoreHits).Value()
	res.StoreMisses = reg.Counter(transport.MetricStoreMisses).Value()
	if res.DiskWarmOpenMs > 0 {
		res.ColdVsDiskSpeedup = res.ColdOpenMs / res.DiskWarmOpenMs
	}
	if res.DiskAcquireMs > 0 {
		res.ColdVsDiskAcquireSpeedup = res.ColdAcquireMs / res.DiskAcquireMs
	}

	// Memory-warm: a repeat session on the running service (LRU hit).
	res.MemWarmOpenMs, _, err = open(ctx, warm, nil)
	if err != nil {
		return nil, err
	}

	// Full-source comparison hello: the same program pinned to the v2
	// dialect, against the same warm service — only the wire bytes differ.
	v2 := hello
	v2.Version = transport.ProtocolV2
	_, res.HelloBytesFull, err = open(ctx, warm, &v2)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RenderStore prints the artifact-store experiment: the warmth-tier
// session-open latencies, then the wire and disk footprints.
func RenderStore(w io.Writer, r *StoreResult) {
	fmt.Fprintf(w, "artifact store: warm restarts + hash-first hellos (%s, β=%d per batch)\n\n", r.Benchmark, r.Beta)
	tb := newTable("session open", "wall", "program acquisition", "compiles", "store loads")
	tb.add("cold (compile + write-back)", fmtDur(r.ColdOpenMs/1e3), fmtDur(r.ColdAcquireMs/1e3), "1", "—")
	tb.add("disk-warm (restarted server)", fmtDur(r.DiskWarmOpenMs/1e3), fmtDur(r.DiskAcquireMs/1e3),
		fmt.Sprintf("%d", r.DiskWarmCompileSpans), fmt.Sprintf("%d", r.DiskWarmStoreLoadSpans))
	tb.add("memory-warm (LRU)", fmtDur(r.MemWarmOpenMs/1e3), "—", "0", "0")
	tb.render(w)
	fmt.Fprintf(w, "\nwarm-restart speedup: %.1fx on session open, %.1fx on program acquisition (compile+preprocess %s → store load %s)\n",
		r.ColdVsDiskSpeedup, r.ColdVsDiskAcquireSpeedup, fmtDur(r.ColdAcquireMs/1e3), fmtDur(r.DiskAcquireMs/1e3))
	fmt.Fprintf(w, "store counters: %d hit / %d miss\n", r.StoreHits, r.StoreMisses)
	fmt.Fprintf(w, "bundle on disk: %d bytes for %d bytes of source\n", r.BundleBytes, r.SourceBytes)
	fmt.Fprintf(w, "hello bytes on the wire: %d hash-first vs %d full-source (%d saved)\n",
		r.HelloBytesHashFirst, r.HelloBytesFull, r.HelloBytesFull-r.HelloBytesHashFirst)
}
