// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the §5.1 microbenchmark table, the Figure 3 cost-model
// validation, and Figures 4–9. cmd/zaatar-bench is a thin CLI over this
// package.
//
// Method (mirroring §5.1):
//
//   - Zaatar numbers are measured by running the real protocol;
//   - Ginger numbers are measured where the quadratic proof fits in memory
//     and otherwise estimated from the Figure 3 cost model calibrated with
//     measured microbenchmarks — exactly the paper's own procedure ("we use
//     estimates, rather than empirics, because the computations would be
//     too expensive under Ginger");
//   - absolute times are machine-specific; the reproduction targets are the
//     shapes: who wins, by how many orders of magnitude, and the linear vs
//     quadratic scaling.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"zaatar/internal/benchprogs"
	"zaatar/internal/compiler"
	"zaatar/internal/costmodel"
	"zaatar/internal/elgamal"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// Scale selects instance sizes.
type Scale string

const (
	// ScaleSmall finishes in seconds; used by tests.
	ScaleSmall Scale = "small"
	// ScaleDefault is the harness default: minutes with crypto enabled.
	ScaleDefault Scale = "default"
	// ScalePaper matches the paper's §5.2 input sizes. Prover runs at this
	// scale take a long time (the paper's own C++ prover took minutes per
	// instance on a 2009 Xeon).
	ScalePaper Scale = "paper"
)

// Options configures a harness run.
type Options struct {
	Scale  Scale
	Params pcp.Params
	// Crypto enables the ElGamal commitment (slower, complete protocol).
	Crypto bool
	// Workers for the prover pool in measured runs.
	Workers int
	// Seed makes runs reproducible.
	Seed int64
	// CalibrationReps for the microbenchmark parameters.
	CalibrationReps int
	// BreakevenScale is the scale at which Figure 7's break-even batch
	// sizes are modeled; empty means ScalePaper (the paper's sizes).
	BreakevenScale Scale
}

// DefaultOptions returns the harness defaults: default scale, the paper's
// PCP parameters, crypto on.
func DefaultOptions() Options {
	return Options{
		Scale:           ScaleDefault,
		Params:          pcp.DefaultParams(),
		Crypto:          true,
		Workers:         1,
		Seed:            1,
		CalibrationReps: 1000,
		BreakevenScale:  ScalePaper,
	}
}

// Benchmarks returns the five §5 computations at the given scale.
func Benchmarks(s Scale) []*benchprogs.Benchmark {
	switch s {
	case ScaleSmall:
		return benchprogs.Small()
	case ScalePaper:
		return []*benchprogs.Benchmark{
			benchprogs.PAM(20, 128, 1),
			benchprogs.Bisection(256, 8),
			benchprogs.FloydWarshall(25),
			benchprogs.Fannkuch(100, 13, 12),
			benchprogs.LCS(300),
		}
	default:
		return benchprogs.Default()
	}
}

// SizesFor returns the three input sizes per benchmark used by Figure 8
// ("we double the input size twice"), scaled down from the paper's
// m={5,10,20} / {64,128,256} / {5,10,20} / {25,50,100} / {75,150,300}.
func SizesFor(s Scale) map[string][]*benchprogs.Benchmark {
	switch s {
	case ScalePaper:
		return map[string][]*benchprogs.Benchmark{
			"pam-clustering":             {benchprogs.PAM(5, 128, 1), benchprogs.PAM(10, 128, 1), benchprogs.PAM(20, 128, 1)},
			"root-finding":               {benchprogs.Bisection(64, 8), benchprogs.Bisection(128, 8), benchprogs.Bisection(256, 8)},
			"all-pairs-shortest-path":    {benchprogs.FloydWarshall(5), benchprogs.FloydWarshall(10), benchprogs.FloydWarshall(20)},
			"fannkuch":                   {benchprogs.Fannkuch(25, 13, 12), benchprogs.Fannkuch(50, 13, 12), benchprogs.Fannkuch(100, 13, 12)},
			"longest-common-subsequence": {benchprogs.LCS(75), benchprogs.LCS(150), benchprogs.LCS(300)},
		}
	case ScaleSmall:
		return map[string][]*benchprogs.Benchmark{
			"pam-clustering":             {benchprogs.PAM(3, 4, 1), benchprogs.PAM(4, 4, 1), benchprogs.PAM(6, 4, 1)},
			"root-finding":               {benchprogs.Bisection(2, 6), benchprogs.Bisection(4, 6), benchprogs.Bisection(8, 6)},
			"all-pairs-shortest-path":    {benchprogs.FloydWarshall(3), benchprogs.FloydWarshall(4), benchprogs.FloydWarshall(6)},
			"fannkuch":                   {benchprogs.Fannkuch(1, 5, 8), benchprogs.Fannkuch(2, 5, 8), benchprogs.Fannkuch(3, 5, 8)},
			"longest-common-subsequence": {benchprogs.LCS(4), benchprogs.LCS(6), benchprogs.LCS(10)},
		}
	default:
		return map[string][]*benchprogs.Benchmark{
			"pam-clustering":             {benchprogs.PAM(4, 16, 1), benchprogs.PAM(6, 16, 1), benchprogs.PAM(10, 16, 1)},
			"root-finding":               {benchprogs.Bisection(16, 8), benchprogs.Bisection(32, 8), benchprogs.Bisection(64, 8)},
			"all-pairs-shortest-path":    {benchprogs.FloydWarshall(4), benchprogs.FloydWarshall(6), benchprogs.FloydWarshall(10)},
			"fannkuch":                   {benchprogs.Fannkuch(2, 6, 10), benchprogs.Fannkuch(4, 6, 10), benchprogs.Fannkuch(8, 6, 10)},
			"longest-common-subsequence": {benchprogs.LCS(10), benchprogs.LCS(20), benchprogs.LCS(40)},
		}
	}
}

// compileBench compiles a benchmark's program.
func compileBench(b *benchprogs.Benchmark) (*compiler.Program, error) {
	return compiler.Compile(b.Field, b.Source)
}

// quantities builds the cost-model inputs from a compiled program plus a
// measured local running time.
func quantities(prog *compiler.Program, localSeconds float64, params pcp.Params) costmodel.Quantities {
	st := prog.Stats()
	return costmodel.Quantities{
		T:       localSeconds,
		ZGinger: st.GingerVars, CGinger: st.GingerConstraints,
		ZZaatar: st.ZaatarVars, CZaatar: st.ZaatarConstraints,
		K: st.K, K2: st.K2,
		NX: prog.NumInputs(), NY: prog.NumOutputs(),
		Params: params,
	}
}

// measureLocal times local execution of a benchmark (the "local" baseline
// of Figures 5 and 7), returning seconds per instance. Following the paper
// (§5.2, Figure 5: local computation "executed with the GMP library"), the
// baseline executes the computation with bignum arithmetic — here the
// compiled straight-line interpreter over big.Int — rather than raw native
// integers, which would be unfairly fast against a bignum-based verifier.
func measureLocal(b *benchprogs.Benchmark, prog *compiler.Program, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	in := b.GenInputs(rng)
	reps := 0
	start := time.Now()
	for time.Since(start) < 50*time.Millisecond {
		if _, err := prog.Execute(in); err != nil {
			panic("experiments: local execution failed: " + err.Error())
		}
		reps++
	}
	return time.Since(start).Seconds() / float64(reps)
}

// vcConfig builds the protocol config for measured runs.
func (o Options) vcConfig(protocol vc.Protocol) vc.Config {
	return vc.Config{
		Protocol:     protocol,
		Params:       o.Params,
		NoCommitment: !o.Crypto,
		Workers:      o.Workers,
		Seed:         []byte(fmt.Sprintf("experiments-%d", o.Seed)),
	}
}

// calibrated returns microbenchmark parameters for a benchmark's field,
// including crypto parameters when o.Crypto is set.
func (o Options) calibrated(b *benchprogs.Benchmark) costmodel.OpCosts {
	var g *elgamal.Group
	if o.Crypto {
		g = elgamal.GroupFor(b.Field)
	}
	reps := o.CalibrationReps
	if reps == 0 {
		reps = 1000
	}
	return costmodel.Calibrate(b.Field, g, reps)
}

// fmtDur renders seconds with engineering units.
func fmtDur(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "∞"
	case s >= 3600:
		return fmt.Sprintf("%.1f h", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1f min", s/60)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2f µs", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}

// fmtCount renders large counts compactly.
func fmtCount(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "∞"
	case v >= 1e12:
		return fmt.Sprintf("%.2g", v)
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// table is a minimal fixed-width text table writer.
type table struct {
	w      io.Writer
	widths []int
	rows   [][]string
}

func newTable(headers ...string) *table {
	t := &table{widths: make([]int, len(headers))}
	t.add(headers...)
	return t
}

func (t *table) add(cells ...string) {
	for i, c := range cells {
		if i < len(t.widths) && len([]rune(c)) > t.widths[i] {
			t.widths[i] = len([]rune(c))
		}
	}
	t.rows = append(t.rows, cells)
}

func (t *table) render(w io.Writer) {
	for r, row := range t.rows {
		for i, c := range row {
			pad := t.widths[i] - len([]rune(c))
			fmt.Fprint(w, c)
			for p := 0; p < pad+2; p++ {
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
		if r == 0 {
			total := 0
			for _, wd := range t.widths {
				total += wd + 2
			}
			for p := 0; p < total; p++ {
				fmt.Fprint(w, "-")
			}
			fmt.Fprintln(w)
		}
	}
}
