package experiments

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"zaatar/internal/commit"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/prg"
)

// The scaling experiment measures commit throughput — the homomorphic inner
// product against Enc(r), the prover's dominant cryptographic cost — as the
// kernel worker count grows. It exercises the MultiExpParallel sharding the
// prover uses via SetKernelWorkers, isolated from the rest of the protocol
// so the curve is the kernel's own. Speedups are relative to one worker on
// the same machine; a host with fewer physical cores than the largest
// worker count will show the curve flatten there (NumCPU is recorded so
// readers can tell saturation from overhead).

// ScalingResult is the measured commit-throughput curve.
type ScalingResult struct {
	N      int            `json:"n"`       // commitment vector length
	Reps   int            `json:"reps"`    // commits measured per point
	NumCPU int            `json:"num_cpu"` // cores visible to the runtime
	Points []ScalingPoint `json:"points"`
}

// ScalingPoint is one worker count's measurement.
type ScalingPoint struct {
	Workers       int     `json:"workers"`
	CommitMs      float64 `json:"commit_ms"` // mean per commit
	CommitsPerSec float64 `json:"commits_per_sec"`
	// SpeedupX is relative to the 1-worker point, which RunScaling
	// guarantees leads the curve (prepending it if not requested).
	SpeedupX float64 `json:"speedup_x"`
}

// scalingN returns the commitment vector length per scale, sized so one
// point takes seconds, not minutes.
func scalingN(s Scale) int {
	switch s {
	case ScaleSmall:
		return 256
	case ScalePaper:
		return 4096
	default:
		return 1024
	}
}

// RunScaling measures prepared commit calls over the production 128-bit
// group at each worker count. The Enc(r) key and the weight vector are
// fixed across all points, so the only variable is the sharding. The curve
// always opens with a 1-worker reference point — prepended when the
// requested counts don't start with one — so SpeedupX is genuinely the gain
// over serial commits, whatever counts the caller asked for.
func RunScaling(o Options, workerCounts []int) (*ScalingResult, error) {
	if !o.Crypto {
		return nil, errors.New("experiments: scaling requires crypto (drop -nocrypto)")
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if workerCounts[0] != 1 {
		workerCounts = append([]int{1}, workerCounts...)
	}
	f := field.F128()
	g := elgamal.GroupF128()
	rnd := prg.NewFromSeed([]byte("scaling"), uint64(o.Seed))
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		return nil, err
	}
	n := scalingN(o.Scale)
	maxW := 1
	for _, w := range workerCounts {
		if w > maxW {
			maxW = w
		}
	}
	key, err := commit.NewKeyParallel(f, g, sk, n, rnd, maxW)
	if err != nil {
		return nil, err
	}
	pv := commit.Prepare(g, key.EncR)
	u := f.RandVector(n, rnd)

	reps := 3
	if o.Scale == ScaleSmall {
		reps = 2
	}
	res := &ScalingResult{N: n, Reps: reps, NumCPU: runtime.NumCPU()}
	for _, w := range workerCounts {
		// One untimed warm-up commit settles table caches and the pool.
		if _, err := commit.CommitPrepared(g, f, pv, u, w); err != nil {
			return nil, err
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := commit.CommitPrepared(g, f, pv, u, w); err != nil {
				return nil, err
			}
		}
		el := time.Since(start)
		pt := ScalingPoint{
			Workers:       w,
			CommitMs:      msOf(el) / float64(reps),
			CommitsPerSec: float64(reps) / el.Seconds(),
		}
		if len(res.Points) > 0 && res.Points[0].CommitMs > 0 {
			pt.SpeedupX = res.Points[0].CommitMs / pt.CommitMs
		} else {
			pt.SpeedupX = 1
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RenderScaling prints the throughput curve.
func RenderScaling(w io.Writer, r *ScalingResult) {
	fmt.Fprintf(w, "commit scaling (n=%d, %d reps/point, %d cpus visible)\n", r.N, r.Reps, r.NumCPU)
	t := newTable("workers", "commit", "commits/s", "speedup")
	for _, p := range r.Points {
		t.add(fmt.Sprintf("%d", p.Workers),
			fmtDur(p.CommitMs/1e3),
			fmt.Sprintf("%.2f", p.CommitsPerSec),
			fmt.Sprintf("%.2fx", p.SpeedupX))
	}
	t.render(w)
}
