package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"

	"zaatar/internal/elgamal"
	"zaatar/internal/farm"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/transport"
)

// FarmResult measures the prover-farm coordinator against a single-prover
// session on the same in-process workload: same program, same batch, same
// machine. On a host with enough cores the farm's win is parallel shard
// proving; on a starved host (NumCPU near 1) the workers time-slice one
// core and the delta isolates the coordinator's own overhead — per-shard
// verifier key generation, scheduling, and the extra wire round trips.
type FarmResult struct {
	Benchmark string `json:"benchmark"`
	Beta      int    `json:"beta"`
	Workers   int    `json:"workers"`
	NumCPU    int    `json:"num_cpu"`

	// SingleWallMs runs the batch over one session with one prover.
	// FarmWallMs runs the identical batch through the farm coordinator over
	// Workers loopback workers. CoordinatorOverheadMs is their difference —
	// meaningful as pure overhead only when the workers share one core
	// (NumCPU ≤ Workers); with spare cores it mixes in the parallel win and
	// can go negative.
	SingleWallMs          float64 `json:"single_wall_ms"`
	FarmWallMs            float64 `json:"farm_wall_ms"`
	CoordinatorOverheadMs float64 `json:"coordinator_overhead_ms"`

	// Scheduling evidence from the farm.* counters.
	Shards   int64 `json:"shards"`
	Requeued int64 `json:"requeued"`
	Stolen   int64 `json:"stolen"`
}

// RunFarm runs the farm experiment on the scale's first benchmark: a
// single-prover reference session, then the same batch through a
// two-worker loopback farm.
func RunFarm(o Options, beta int) (*FarmResult, error) {
	if beta < 1 {
		beta = 1
	}
	const workers = 2
	bench := Benchmarks(o.Scale)[0]
	rng := rand.New(rand.NewSource(o.Seed))
	batch := genBatch(bench, rng, beta)

	hello := transport.Hello{
		Source:       bench.Source,
		Field220:     bench.Field == field.F220(),
		RhoLin:       o.Params.RhoLin,
		Rho:          o.Params.Rho,
		NoCommitment: !o.Crypto,
	}
	copts := transport.ClientOptions{Seed: []byte(fmt.Sprintf("farm-%d", o.Seed))}
	if o.Crypto {
		copts.Group = elgamal.GroupFor(bench.Field)
	}
	dial := func(n int) ([]net.Conn, error) {
		conns := make([]net.Conn, n)
		for i := range conns {
			svc := transport.NewService(transport.ServiceOptions{Workers: o.Workers, Obs: obs.NewRegistry()})
			client, server := net.Pipe()
			go func() { _ = svc.ServeConn(context.Background(), server) }()
			conns[i] = client
		}
		return conns, nil
	}
	ctx := context.Background()
	res := &FarmResult{Benchmark: bench.Name, Beta: beta, Workers: workers, NumCPU: runtime.NumCPU()}

	// Single-prover reference.
	conns, err := dial(1)
	if err != nil {
		return nil, err
	}
	sess, err := transport.NewSession(ctx, conns, hello, copts)
	if err != nil {
		return nil, err
	}
	res.SingleWallMs, err = wallMs(func() error {
		r, err := sess.RunBatch(ctx, batch)
		if err == nil && !r.AllAccepted() {
			err = fmt.Errorf("single-prover batch rejected: %v", r.Reasons)
		}
		return err
	})
	sess.Close()
	if err != nil {
		return nil, err
	}

	// The same batch through the coordinator.
	conns, err = dial(workers)
	if err != nil {
		return nil, err
	}
	fcopts := copts
	fcopts.Addrs = make([]string, workers)
	for i := range fcopts.Addrs {
		fcopts.Addrs[i] = fmt.Sprintf("worker-%d", i)
	}
	sess, err = transport.NewSession(ctx, conns, hello, fcopts)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	fm, err := farm.New(sess, farm.Options{Workers: o.Workers, Seed: fcopts.Seed, Obs: reg})
	if err != nil {
		sess.Close()
		return nil, err
	}
	res.FarmWallMs, err = wallMs(func() error {
		r, err := fm.RunBatch(ctx, batch)
		if err == nil && !r.AllAccepted() {
			err = fmt.Errorf("farm batch rejected: %v", r.Reasons)
		}
		return err
	})
	fm.Close()
	if err != nil {
		return nil, err
	}
	res.CoordinatorOverheadMs = res.FarmWallMs - res.SingleWallMs
	for i := 0; i < workers; i++ {
		res.Shards += reg.CounterVec(farm.MetricShards, farm.LabelWorker).With(fmt.Sprintf("worker-%d", i)).Value()
	}
	res.Requeued = reg.Counter(farm.MetricShardRequeued).Value()
	res.Stolen = reg.Counter(farm.MetricShardStolen).Value()
	return res, nil
}

// RenderFarm prints the farm experiment with the honesty caveat about
// core starvation spelled out.
func RenderFarm(w io.Writer, r *FarmResult) {
	fmt.Fprintf(w, "prover farm: coordinator vs single prover (%s, β=%d, %d workers, %d cpu)\n\n",
		r.Benchmark, r.Beta, r.Workers, r.NumCPU)
	tb := newTable("configuration", "batch wall", "shards", "requeued", "stolen")
	tb.add("single prover", fmtDur(r.SingleWallMs/1e3), "1", "—", "—")
	tb.add(fmt.Sprintf("farm (%d workers)", r.Workers), fmtDur(r.FarmWallMs/1e3),
		fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Requeued), fmt.Sprintf("%d", r.Stolen))
	tb.render(w)
	fmt.Fprintf(w, "\ncoordinator delta: %+.1f ms per batch\n", r.CoordinatorOverheadMs)
	if r.NumCPU <= r.Workers {
		fmt.Fprintf(w, "note: %d workers time-slice %d cpu — the delta is pure coordinator overhead (per-shard key generation, scheduling, extra round trips), not a parallelism measurement\n",
			r.Workers, r.NumCPU)
	}
}
