package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"zaatar/internal/benchprogs"
	"zaatar/internal/costmodel"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// BackendLane is one proof backend's measured batch in the backend
// comparison: the usual phase walls plus the mean per-instance prover cost
// (everything the prover does for one instance — solve, proof
// construction, crypto where the lane has any, and query answering).
type BackendLane struct {
	Backend     string  `json:"backend"`
	SetupMs     float64 `json:"setup_ms"`
	CommitMs    float64 `json:"commit_ms"`
	RespondMs   float64 `json:"respond_ms"`
	VerifyMs    float64 `json:"verify_total_ms"`
	TotalMs     float64 `json:"total_ms"`
	ProverE2EMs float64 `json:"prover_e2e_ms"`
}

// BackendResult is the backend-comparison experiment: the same layered
// batch proved under the Zaatar (commitment) lane and the sum-check
// (transcript) lane, with the cost model's pick alongside. The headline
// number is ProverSpeedup — how many times cheaper the sum-check prover is
// per instance, which is the point of the cheap-prover lane: no ciphertext
// operation appears anywhere on it.
type BackendResult struct {
	Bench         string         `json:"bench"`
	Params        map[string]int `json:"params"`
	Instances     int            `json:"instances"`
	Crypto        bool           `json:"crypto"`
	Recommended   string         `json:"recommended"`
	Lanes         []BackendLane  `json:"lanes"`
	ProverSpeedup float64        `json:"prover_speedup"`
}

// matmulFor sizes the backend experiment's matrix chain per scale. The
// paper benchmarks all branch (comparisons produce nondeterministic
// advice), so the layered workload is a dedicated pure-arithmetic chain.
func matmulFor(s Scale) *benchprogs.Benchmark {
	switch s {
	case ScaleSmall:
		return benchprogs.MatMulChain(2, 2)
	case ScalePaper:
		return benchprogs.MatMulChain(8, 4)
	default:
		return benchprogs.MatMulChain(4, 3)
	}
}

// RunBackend measures the matmul-chain batch under each lane and reports
// the per-instance prover gap.
func RunBackend(o Options, beta int) (*BackendResult, error) {
	if beta < 1 {
		beta = 1
	}
	bench := matmulFor(o.Scale)
	prog, err := compileBench(bench)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	batch := genBatch(bench, rng, beta)
	r := &BackendResult{
		Bench:       bench.Name,
		Params:      bench.Params,
		Instances:   beta,
		Crypto:      o.Crypto,
		Recommended: costmodel.RecommendBackend(prog.Field, prog.Ginger, prog.Quad),
	}
	for _, name := range []string{pcp.BackendZaatar, pcp.BackendSumcheck} {
		cfg := o.vcConfig(vc.Zaatar)
		cfg.Backend = name // takes precedence over the legacy Protocol field
		res, err := vc.RunBatch(context.Background(), prog, cfg, batch)
		if err != nil {
			return nil, fmt.Errorf("experiments: backend %s: %w", name, err)
		}
		if !res.AllAccepted() {
			return nil, fmt.Errorf("experiments: backend %s rejected honest batch: %v", name, res.Reasons)
		}
		m := res.Metrics
		var e2e time.Duration
		for _, pt := range res.ProverTimes {
			e2e += pt.E2E()
		}
		r.Lanes = append(r.Lanes, BackendLane{
			Backend:     name,
			SetupMs:     msOf(m.Setup),
			CommitMs:    msOf(m.Commit),
			RespondMs:   msOf(m.Respond),
			VerifyMs:    msOf(m.VerifyTotal),
			TotalMs:     msOf(m.Total),
			ProverE2EMs: msOf(e2e) / float64(m.Instances),
		})
	}
	if s := r.Lanes[1].ProverE2EMs; s > 0 {
		r.ProverSpeedup = r.Lanes[0].ProverE2EMs / s
	}
	return r, nil
}

// RenderBackend prints the comparison as a table plus the headline ratio.
func RenderBackend(w io.Writer, r *BackendResult) {
	fmt.Fprintf(w, "backend comparison: %s %v, β=%d, crypto=%v (cost model recommends %s)\n",
		r.Bench, r.Params, r.Instances, r.Crypto, r.Recommended)
	tb := newTable("backend", "setup", "commit", "respond", "verify", "total", "prover/inst")
	for _, l := range r.Lanes {
		tb.add(l.Backend,
			fmt.Sprintf("%.1fms", l.SetupMs),
			fmt.Sprintf("%.1fms", l.CommitMs),
			fmt.Sprintf("%.1fms", l.RespondMs),
			fmt.Sprintf("%.1fms", l.VerifyMs),
			fmt.Sprintf("%.1fms", l.TotalMs),
			fmt.Sprintf("%.3fms", l.ProverE2EMs))
	}
	tb.render(w)
	fmt.Fprintf(w, "sum-check prover is %.1f× cheaper per instance than the Zaatar commit+respond lane\n",
		r.ProverSpeedup)
}
