package experiments

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"

	"zaatar/internal/benchprogs"
	"zaatar/internal/compiler"
	"zaatar/internal/vc"
)

// genBatch draws beta instances' inputs for a benchmark.
func genBatch(b *benchprogs.Benchmark, rng *rand.Rand, beta int) [][]*big.Int {
	out := make([][]*big.Int, beta)
	for i := range out {
		out[i] = b.GenInputs(rng)
	}
	return out
}

// runZaatarBatch runs a measured Zaatar batch and verifies it end to end.
func runZaatarBatch(prog *compiler.Program, b *benchprogs.Benchmark, o Options, rng *rand.Rand, beta int) (*vc.BatchResult, error) {
	res, err := vc.RunBatch(context.Background(), prog, o.vcConfig(vc.Zaatar), genBatch(b, rng, beta))
	if err != nil {
		return nil, err
	}
	if !res.AllAccepted() {
		return nil, fmt.Errorf("experiments: honest batch rejected: %v", res.Reasons)
	}
	return res, nil
}
