package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zaatar/internal/costmodel"
)

func testBaseline() *Baseline {
	return &Baseline{
		Schema:  BaselineSchema,
		Scale:   "small",
		RhoLin:  10,
		Rho:     2,
		Crypto:  true,
		Workers: 2,
		Beta:    50,
		Calibration: costmodel.OpCosts{
			E: 100e-6, D: 250e-6, H: 2e-6, F: 80e-9, FLazy: 30e-9, FDiv: 500e-9, C: 40e-6,
		},
		Benchmarks: []BaselineBench{
			{Name: "matrix_mult", Instances: 50, SetupMs: 120, CommitMs: 40, RespondMs: 300, VerifyMs: 25, TotalMs: 480, ProverE2EMs: 9},
			{Name: "poly_eval", Instances: 50, SetupMs: 30, CommitMs: 10, RespondMs: 90, VerifyMs: 8, TotalMs: 140, ProverE2EMs: 3},
		},
		Phases: map[string]PhaseQuantile{
			"vc.verify":  {Count: 100, AvgMs: 0.5, P50Ms: 0.4, P90Ms: 0.9, P99Ms: 1.4},
			"vc.respond": {Count: 100, AvgMs: 6, P50Ms: 5, P90Ms: 9, P99Ms: 14},
		},
		Kernels: map[string]KernelStats{
			"elgamal.multiexp": {Calls: 400, Items: 40000, ItemsPerSec: 50000, AvgCallMs: 2.0},
		},
	}
}

func findRow(t *testing.T, r *CompareResult, name string) CompareRow {
	t.Helper()
	for _, row := range r.Rows {
		if row.Name == name {
			return row
		}
	}
	t.Fatalf("row %q not found in %d rows", name, len(r.Rows))
	return CompareRow{}
}

// Identical snapshots compare cleanly: every section yields rows, nothing
// regresses, and the gate would exit 0.
func TestCompareIdentical(t *testing.T) {
	old, cur := testBaseline(), testBaseline()
	r := CompareBaselines(old, cur, CompareOptions{})
	if r.Regressions != 0 || r.Improvements != 0 {
		t.Fatalf("identical snapshots: %d regressions, %d improvements", r.Regressions, r.Improvements)
	}
	sections := map[string]bool{}
	for _, row := range r.Rows {
		if row.Ratio != 1.0 {
			t.Fatalf("row %s has ratio %v on identical inputs", row.Name, row.Ratio)
		}
		sections[row.Section] = true
	}
	for _, s := range []string{"calibration", "benchmark", "phase", "kernel"} {
		if !sections[s] {
			t.Fatalf("section %q produced no rows", s)
		}
	}
	if len(r.Notes) != 0 {
		t.Fatalf("unexpected notes: %v", r.Notes)
	}
}

// A phase mean that blows past its noise allowance regresses; the same
// degradation within the allowance does not.
func TestCompareDetectsRegression(t *testing.T) {
	old, cur := testBaseline(), testBaseline()
	q := cur.Phases["vc.respond"]
	q.AvgMs = old.Phases["vc.respond"].AvgMs * 2 // 2.0× > 1.3× allowance
	cur.Phases["vc.respond"] = q

	r := CompareBaselines(old, cur, CompareOptions{})
	if r.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1", r.Regressions)
	}
	row := findRow(t, r, "vc.respond/avg")
	if !row.Regressed || row.Ratio != 2.0 {
		t.Fatalf("vc.respond/avg: %+v", row)
	}

	// Doubling the allowances (the loose CI setting) absorbs the same 2.0×.
	if r2 := CompareBaselines(old, cur, CompareOptions{Threshold: 2.0}); r2.Regressions != 0 {
		t.Fatalf("threshold 2.0: regressions = %d, want 0", r2.Regressions)
	}

	// Within-noise drift is not a regression.
	q.AvgMs = old.Phases["vc.respond"].AvgMs * 1.2
	cur.Phases["vc.respond"] = q
	if r3 := CompareBaselines(old, cur, CompareOptions{}); r3.Regressions != 0 {
		t.Fatalf("1.2× drift flagged as regression: %+v", r3.Rows)
	}
}

// Throughput metrics invert: fewer items/s is the regression direction.
func TestCompareKernelThroughput(t *testing.T) {
	old, cur := testBaseline(), testBaseline()
	k := cur.Kernels["elgamal.multiexp"]
	k.ItemsPerSec = old.Kernels["elgamal.multiexp"].ItemsPerSec / 2
	cur.Kernels["elgamal.multiexp"] = k

	r := CompareBaselines(old, cur, CompareOptions{})
	row := findRow(t, r, "elgamal.multiexp/items_per_sec")
	if !row.Regressed || row.Ratio != 2.0 {
		t.Fatalf("halved throughput not flagged: %+v", row)
	}

	// Doubled throughput counts as an improvement, never a regression.
	k.ItemsPerSec = old.Kernels["elgamal.multiexp"].ItemsPerSec * 2
	cur.Kernels["elgamal.multiexp"] = k
	r = CompareBaselines(old, cur, CompareOptions{})
	if row := findRow(t, r, "elgamal.multiexp/items_per_sec"); row.Regressed {
		t.Fatalf("doubled throughput flagged as regression: %+v", row)
	}
	if r.Improvements == 0 {
		t.Fatal("doubled throughput not counted as improvement")
	}
}

// Snapshots from different configurations only compare the
// scale-independent calibration constants, and say so.
func TestCompareConfigMismatch(t *testing.T) {
	old, cur := testBaseline(), testBaseline()
	cur.Scale = "smoke"
	cur.Beta = 10
	// Even a wild wall-clock difference must not regress across configs.
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].TotalMs *= 100
	}

	r := CompareBaselines(old, cur, CompareOptions{})
	if r.Regressions != 0 {
		t.Fatalf("cross-config comparison produced regressions: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.Section != "calibration" {
			t.Fatalf("non-calibration row %q compared across configs", row.Name)
		}
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "configs differ") {
		t.Fatalf("missing config-mismatch note: %v", r.Notes)
	}
}

// Benchmarks that disappear or change instance counts are skipped with a
// note rather than silently dropped.
func TestCompareMissingBenchmark(t *testing.T) {
	old, cur := testBaseline(), testBaseline()
	cur.Benchmarks = cur.Benchmarks[:1]
	cur.Benchmarks[0].Instances = 25

	r := CompareBaselines(old, cur, CompareOptions{})
	var sawSkip, sawAbsent bool
	for _, n := range r.Notes {
		if strings.Contains(n, "instances") {
			sawSkip = true
		}
		if strings.Contains(n, "absent") {
			sawAbsent = true
		}
	}
	if !sawSkip || !sawAbsent {
		t.Fatalf("notes = %v; want instance-mismatch and absent notes", r.Notes)
	}
	for _, row := range r.Rows {
		if row.Section == "benchmark" {
			t.Fatalf("benchmark row %q compared despite mismatch", row.Name)
		}
	}
}

func TestLoadBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	data, err := json.Marshal(testBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Scale != "small" || len(b.Benchmarks) != 2 {
		t.Fatalf("round trip mangled baseline: %+v", b)
	}

	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte(`{"hello":"world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(junk); err == nil {
		t.Fatal("junk JSON accepted as baseline")
	}
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRenderCompare(t *testing.T) {
	old, cur := testBaseline(), testBaseline()
	q := cur.Phases["vc.verify"]
	q.P99Ms *= 3
	cur.Phases["vc.verify"] = q
	r := CompareBaselines(old, cur, CompareOptions{})

	var buf bytes.Buffer
	RenderCompare(&buf, r)
	out := buf.String()
	for _, want := range []string{"REGRESSED", "vc.verify/p99", "1 regressed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}
