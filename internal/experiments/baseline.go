package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"zaatar/internal/costmodel"
	"zaatar/internal/obs"
	"zaatar/internal/vc"
)

// BaselineSchema versions the BENCH_<date>.json layout; bump it when the
// shape changes so downstream comparisons can tell files apart. Schema 2
// added the cache-amortization section (cold vs warm session setup and the
// batches-per-connection curve); schema 3 added the backend-comparison
// section (Zaatar commitment lane vs sum-check transcript lane on the
// layered matmul-chain workload); schema 4 added the commit-throughput
// scaling curve (workers → commits/s); schema 5 added the artifact-store
// section (cold vs disk-warm-restart vs memory-warm session open, and the
// hash-first hello's wire savings); schema 6 added the prover-farm section
// (coordinator overhead vs a single-prover reference, with shard counters).
const BaselineSchema = 6

// Baseline is the machine-readable benchmark snapshot zaatar-bench -json
// emits: per-phase wall times and latency percentiles for each §5
// benchmark, kernel throughputs, and the §5.1 calibration constants. One
// file per machine/date pair, checked into BENCH_<date>.json, gives later
// sessions a regression reference.
type Baseline struct {
	Schema    int    `json:"schema"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Scale     string `json:"scale"`
	RhoLin    int    `json:"rholin"`
	Rho       int    `json:"rho"`
	Crypto    bool   `json:"crypto"`
	Workers   int    `json:"workers"`
	Beta      int    `json:"beta"`

	// Calibration holds the §5.1 microbenchmark constants in seconds per
	// operation, calibrated on this machine for the 128-bit field.
	Calibration costmodel.OpCosts `json:"calibration"`

	Benchmarks []BaselineBench          `json:"benchmarks"`
	Phases     map[string]PhaseQuantile `json:"phases"`
	Kernels    map[string]KernelStats   `json:"kernels"`

	// Cache is the program-cache / keep-alive amortization experiment
	// (schema ≥ 2): cold vs warm session setup against a transport.Service
	// and the batches-per-connection curve.
	Cache *CacheResult `json:"cache,omitempty"`

	// Backend is the proof-backend comparison (schema ≥ 3): the layered
	// matmul-chain batch proved under the Zaatar and sum-check lanes.
	Backend *BackendResult `json:"backend,omitempty"`

	// Scaling is the commit-throughput curve over kernel worker counts
	// (schema ≥ 4). Interpret it against NumCPU: workers beyond the
	// visible cores measure sharding overhead, not speedup.
	Scaling *ScalingResult `json:"scaling,omitempty"`

	// Store is the artifact-store experiment (schema ≥ 5): session-open
	// latency across the cold / disk-warm-restart / memory-warm tiers and
	// the hash-first hello's wire savings.
	Store *StoreResult `json:"store,omitempty"`

	// Farm is the prover-farm experiment (schema ≥ 6): the same batch
	// through a single prover and a two-worker farm coordinator, isolating
	// the coordinator's overhead on core-starved hosts.
	Farm *FarmResult `json:"farm,omitempty"`
}

// BaselineBench is one benchmark's measured batch.
type BaselineBench struct {
	Name      string  `json:"name"`
	Instances int     `json:"instances"`
	SetupMs   float64 `json:"setup_ms"`
	CommitMs  float64 `json:"commit_ms"`
	RespondMs float64 `json:"respond_ms"`
	VerifyMs  float64 `json:"verify_total_ms"`
	TotalMs   float64 `json:"total_ms"`
	// ProverE2EMs is the mean per-instance prover cost (Figure 5's columns
	// summed).
	ProverE2EMs float64 `json:"prover_e2e_ms"`
}

// PhaseQuantile is the cross-benchmark latency distribution of one protocol
// phase histogram.
type PhaseQuantile struct {
	Count int64   `json:"count"`
	AvgMs float64 `json:"avg_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// KernelStats summarizes one group-arithmetic kernel's registry counters.
type KernelStats struct {
	Calls         int64   `json:"calls"`
	Items         int64   `json:"items"`
	ItemsPerSec   float64 `json:"items_per_sec"`
	AvgCallMs     float64 `json:"avg_call_ms"`
	P90CallMs     float64 `json:"p90_call_ms"`
	TotalSeconds  float64 `json:"total_seconds"`
	ItemsPerCall  float64 `json:"items_per_call"`
	TablesBuilt   int64   `json:"tables_built,omitempty"`
	FixedBaseExps int64   `json:"fixed_base_exps,omitempty"`
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func quantile(s obs.HistogramSnapshot) PhaseQuantile {
	return PhaseQuantile{
		Count: s.Count,
		AvgMs: msOf(s.Mean()),
		P50Ms: msOf(s.Quantile(0.50)),
		P90Ms: msOf(s.Quantile(0.90)),
		P99Ms: msOf(s.Quantile(0.99)),
	}
}

// RunBaseline measures every benchmark at the configured scale as one
// batched Zaatar run each, collecting per-phase times from the batch
// metrics and phase/kernel distributions from the process-wide registry
// (which the protocol and the elgamal kernels record into).
func RunBaseline(o Options, beta int) (*Baseline, error) {
	if beta < 1 {
		beta = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	benches := Benchmarks(o.Scale)
	b := &Baseline{
		Schema:    BaselineSchema,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     string(o.Scale),
		RhoLin:    o.Params.RhoLin,
		Rho:       o.Params.Rho,
		Crypto:    o.Crypto,
		Workers:   o.Workers,
		Beta:      beta,
		Phases:    make(map[string]PhaseQuantile),
		Kernels:   make(map[string]KernelStats),
	}
	b.Calibration = o.calibrated(benches[0])

	for _, bench := range benches {
		prog, err := compileBench(bench)
		if err != nil {
			return nil, err
		}
		res, err := runZaatarBatch(prog, bench, o, rng, beta)
		if err != nil {
			return nil, err
		}
		m := res.Metrics
		var e2e time.Duration
		for _, pt := range res.ProverTimes {
			e2e += pt.E2E()
		}
		b.Benchmarks = append(b.Benchmarks, BaselineBench{
			Name:        bench.Name,
			Instances:   m.Instances,
			SetupMs:     msOf(m.Setup),
			CommitMs:    msOf(m.Commit),
			RespondMs:   msOf(m.Respond),
			VerifyMs:    msOf(m.VerifyTotal),
			TotalMs:     msOf(m.Total),
			ProverE2EMs: msOf(e2e) / float64(m.Instances),
		})
	}

	reg := obs.Default()
	for _, name := range []string{
		vc.MetricSpanSetup, vc.MetricSpanCommit, vc.MetricSpanDecommit,
		vc.MetricSpanRespond, vc.MetricSpanVerify, vc.MetricSpanBatch,
	} {
		b.Phases[name] = quantile(reg.Histogram(name).Snapshot())
	}
	if me := reg.Histogram("elgamal.multiexp").Snapshot(); me.Count > 0 {
		items := reg.Counter("elgamal.multiexp.bases").Value()
		ks := KernelStats{
			Calls:         me.Count,
			Items:         items,
			AvgCallMs:     msOf(me.Mean()),
			P90CallMs:     msOf(me.Quantile(0.90)),
			TotalSeconds:  me.Sum.Seconds(),
			ItemsPerCall:  float64(items) / float64(me.Count),
			TablesBuilt:   reg.Counter("elgamal.fixedbase.tables").Value(),
			FixedBaseExps: reg.Counter("elgamal.fixedbase.exps").Value(),
		}
		if s := me.Sum.Seconds(); s > 0 {
			ks.ItemsPerSec = float64(items) / s
		}
		b.Kernels["elgamal.multiexp"] = ks
	}

	cache, err := RunCache(o, beta)
	if err != nil {
		return nil, err
	}
	b.Cache = cache

	backend, err := RunBackend(o, beta)
	if err != nil {
		return nil, err
	}
	b.Backend = backend

	storeRes, err := RunStore(o, beta)
	if err != nil {
		return nil, err
	}
	b.Store = storeRes

	farmRes, err := RunFarm(o, beta)
	if err != nil {
		return nil, err
	}
	b.Farm = farmRes

	if o.Crypto {
		scaling, err := RunScaling(o, nil)
		if err != nil {
			return nil, err
		}
		b.Scaling = scaling
	}
	return b, nil
}

// WriteJSON renders the baseline as indented JSON.
func (b *Baseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// RenderBaseline prints the baseline as text: per-benchmark phase walls,
// then the phase latency distributions with p50/p90/p99.
func RenderBaseline(w io.Writer, b *Baseline) {
	fmt.Fprintf(w, "baseline %s (go %s, %d cpus, β=%d, %d workers, crypto=%v)\n",
		b.Date, b.GoVersion, b.NumCPU, b.Beta, b.Workers, b.Crypto)
	fmt.Fprintf(w, "calibration (s/op): e=%.3g d=%.3g h=%.3g f=%.3g f_lazy=%.3g f_div=%.3g c=%.3g\n\n",
		b.Calibration.E, b.Calibration.D, b.Calibration.H,
		b.Calibration.F, b.Calibration.FLazy, b.Calibration.FDiv, b.Calibration.C)
	fmt.Fprintf(w, "%-28s %10s %10s %10s %10s %10s\n", "benchmark", "setup", "commit", "respond", "verify", "total")
	for _, bb := range b.Benchmarks {
		fmt.Fprintf(w, "%-28s %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms\n",
			bb.Name, bb.SetupMs, bb.CommitMs, bb.RespondMs, bb.VerifyMs, bb.TotalMs)
	}
	fmt.Fprintf(w, "\n%-28s %8s %10s %10s %10s %10s\n", "phase histogram", "count", "avg", "p50", "p90", "p99")
	for _, name := range []string{
		vc.MetricSpanSetup, vc.MetricSpanCommit, vc.MetricSpanDecommit,
		vc.MetricSpanRespond, vc.MetricSpanVerify, vc.MetricSpanBatch,
	} {
		q := b.Phases[name]
		fmt.Fprintf(w, "%-28s %8d %9.2fms %9.2fms %9.2fms %9.2fms\n",
			name, q.Count, q.AvgMs, q.P50Ms, q.P90Ms, q.P99Ms)
	}
	for name, k := range b.Kernels {
		fmt.Fprintf(w, "\nkernel %s: %d calls, %d items, %.0f items/s, avg call %.2fms (p90 %.2fms)\n",
			name, k.Calls, k.Items, k.ItemsPerSec, k.AvgCallMs, k.P90CallMs)
	}
	if b.Cache != nil {
		fmt.Fprintln(w)
		RenderCache(w, b.Cache)
	}
	if b.Backend != nil {
		fmt.Fprintln(w)
		RenderBackend(w, b.Backend)
	}
	if b.Store != nil {
		fmt.Fprintln(w)
		RenderStore(w, b.Store)
	}
	if b.Scaling != nil {
		fmt.Fprintln(w)
		RenderScaling(w, b.Scaling)
	}
	if b.Farm != nil {
		fmt.Fprintln(w)
		RenderFarm(w, b.Farm)
	}
}
