package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"zaatar/internal/pcp"
)

// quickOptions runs everything at small scale without crypto so the whole
// harness is exercised in seconds.
func quickOptions() Options {
	return Options{
		Scale:           ScaleSmall,
		Params:          pcp.TestParams(),
		Crypto:          false,
		Workers:         1,
		Seed:            7,
		CalibrationReps: 100,
		BreakevenScale:  ScaleSmall,
	}
}

func TestRunMicro(t *testing.T) {
	res := RunMicro(quickOptions())
	if len(res) != 2 {
		t.Fatalf("expected both fields, got %d", len(res))
	}
	for _, r := range res {
		if r.Costs.F <= 0 {
			t.Errorf("%s: f not measured", r.Field)
		}
	}
	var buf bytes.Buffer
	RenderMicro(&buf, res)
	if !strings.Contains(buf.String(), "paper 128-bit") {
		t.Error("rendered table missing paper reference row")
	}
}

func TestRunFig4(t *testing.T) {
	o := quickOptions()
	rows, err := RunFig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 benchmarks, got %d", len(rows))
	}
	ahead := 0
	for _, r := range rows {
		if r.ZaatarMeasured <= 0 {
			t.Errorf("%s: no measurement", r.Name)
		}
		// Deterministic half of the headline: the Ginger model must exceed
		// the Zaatar model at every size.
		if r.GingerEstimated <= r.ZaatarModel {
			t.Errorf("%s: ginger model %v not above zaatar model %v",
				r.Name, r.GingerEstimated, r.ZaatarModel)
		}
		if r.GingerEstimated > r.ZaatarMeasured {
			ahead++
		}
	}
	// Measured half: at the tiniest sizes fixed overheads and CPU noise can
	// bring one benchmark's measured Zaatar time near the Ginger estimate,
	// so require the gap on the clear majority rather than all five.
	if ahead < 4 {
		t.Errorf("ginger estimate exceeded zaatar measured on only %d/5 benchmarks", ahead)
	}
	var buf bytes.Buffer
	RenderFig4(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestRunFig5(t *testing.T) {
	rows, err := RunFig5(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.E2E <= 0 || r.Solve <= 0 || r.ConstructU <= 0 {
			t.Errorf("%s: missing decomposition: %+v", r.Name, r)
		}
		if r.E2E < r.Local {
			t.Errorf("%s: prover cheaper than local execution?!", r.Name)
		}
	}
	var buf bytes.Buffer
	RenderFig5(&buf, rows)
	if !strings.Contains(buf.String(), "construct u") {
		t.Error("render missing column")
	}
}

func TestRunFig6(t *testing.T) {
	rows, err := RunFig6(quickOptions(), 4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 benchmarks × 2 worker counts
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	var buf bytes.Buffer
	RenderFig6(&buf, rows, 4)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render missing column")
	}
}

func TestRunFig7(t *testing.T) {
	o := quickOptions()
	rows, err := RunFig7(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.IsInf(r.BreakevenZaatar, 1) {
			continue // some benchmarks may not break even without crypto context
		}
		if !math.IsInf(r.BreakevenGinger, 1) && r.BreakevenGinger < r.BreakevenZaatar {
			t.Errorf("%s: ginger breakeven %v below zaatar %v", r.Name, r.BreakevenGinger, r.BreakevenZaatar)
		}
	}
	var buf bytes.Buffer
	RenderFig7(&buf, rows)
	if !strings.Contains(buf.String(), "breakeven") {
		t.Error("render missing column")
	}
}

func TestRunFig8(t *testing.T) {
	res, err := RunFig8(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 15 {
		t.Fatalf("expected 15 points, got %d", len(res.Points))
	}
	// Scaling shape at tiny sizes is noisy; only check the relative shape:
	// Ginger's fitted exponent should exceed Zaatar's for the benchmarks
	// with a real size sweep.
	better := 0
	for name, e := range res.Exponents {
		if e[1] > e[0] {
			better++
		}
		_ = name
	}
	if better < 3 {
		t.Errorf("ginger scaled steeper than zaatar for only %d/5 benchmarks", better)
	}
	var buf bytes.Buffer
	RenderFig8(&buf, res)
	if !strings.Contains(buf.String(), "slope") {
		t.Error("render missing slope table")
	}
}

func TestRunFig9(t *testing.T) {
	rows, err := RunFig9(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("expected 15 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.UZ >= r.UG {
			t.Errorf("%s %s: |u_zaatar| = %d not below |u_ginger| = %d", r.Name, r.SizeLabel, r.UZ, r.UG)
		}
		if r.ZZ != r.ZG+r.K2 || r.CZ != r.CG+r.K2 {
			t.Errorf("%s %s: §4 size relations violated", r.Name, r.SizeLabel)
		}
	}
	var buf bytes.Buffer
	RenderFig9(&buf, rows)
	if !strings.Contains(buf.String(), "|u_zaatar|") {
		t.Error("render missing column")
	}
}

func TestRunModel(t *testing.T) {
	rows, err := RunModel(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ProverRatio <= 0 {
			t.Errorf("%s: bad ratio", r.Name)
		}
		// Loose envelope: a pure-Go prover against a model calibrated on
		// the same machine should land within roughly an order of
		// magnitude. (The paper's C++ prover achieved 1.05–1.15; at tiny
		// test sizes constant overheads and CPU contention dominate, so
		// the envelope here is deliberately generous — the meaningful
		// check at realistic sizes is done by zaatar-bench -exp model.)
		if r.ProverRatio > 30 || r.ProverRatio < 1.0/30 {
			t.Errorf("%s: measured/model ratio %v outside [1/30, 30]", r.Name, r.ProverRatio)
		}
	}
	var buf bytes.Buffer
	RenderModel(&buf, rows)
	if !strings.Contains(buf.String(), "ratio") {
		t.Error("render missing column")
	}
}

func TestRunCache(t *testing.T) {
	r, err := RunCache(quickOptions(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1 (one compile for the whole experiment)", r.CacheMisses)
	}
	if r.CacheHits < 5 {
		t.Errorf("cache hits = %d, want ≥ 5 (every session after the first)", r.CacheHits)
	}
	if r.ColdSetupMs <= 0 || r.WarmSetupMs <= 0 {
		t.Errorf("setup walls not measured: cold %v warm %v", r.ColdSetupMs, r.WarmSetupMs)
	}
	if len(r.Curve) != 4 {
		t.Fatalf("curve has %d points, want 4", len(r.Curve))
	}
	for _, pt := range r.Curve {
		if pt.AmortizedMs <= 0 || pt.FirstBatchMs <= 0 {
			t.Errorf("batches=%d: missing walls: %+v", pt.Batches, pt)
		}
		if pt.Batches > 1 && pt.MeanLaterMs <= 0 {
			t.Errorf("batches=%d: later-batch mean not measured", pt.Batches)
		}
	}
	var buf bytes.Buffer
	RenderCache(&buf, r)
	if !strings.Contains(buf.String(), "batches/conn") || !strings.Contains(buf.String(), "LRU hit") {
		t.Error("render missing amortization table")
	}
}

func TestRunScaling(t *testing.T) {
	if _, err := RunScaling(quickOptions(), []int{1, 2}); err == nil {
		t.Fatal("scaling accepted crypto=false")
	}
	o := quickOptions()
	o.Crypto = true
	r, err := RunScaling(o, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != scalingN(ScaleSmall) || len(r.Points) != 2 {
		t.Fatalf("unexpected shape: n=%d points=%d", r.N, len(r.Points))
	}
	for i, pt := range r.Points {
		if pt.CommitMs <= 0 || pt.CommitsPerSec <= 0 || pt.SpeedupX <= 0 {
			t.Errorf("point %d not measured: %+v", i, pt)
		}
	}
	if r.Points[0].Workers != 1 || r.Points[0].SpeedupX != 1 {
		t.Errorf("first point must be the 1-worker reference: %+v", r.Points[0])
	}
	// Worker lists that don't lead with 1 get the reference prepended, so
	// SpeedupX stays anchored to serial commits rather than the first entry.
	r2, err := RunScaling(o, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Points) != 2 || r2.Points[0].Workers != 1 || r2.Points[1].Workers != 2 {
		t.Fatalf("1-worker reference not prepended: %+v", r2.Points)
	}
	if r2.Points[0].SpeedupX != 1 {
		t.Errorf("reference point speedup = %v, want 1", r2.Points[0].SpeedupX)
	}
	var buf bytes.Buffer
	RenderScaling(&buf, r)
	if !strings.Contains(buf.String(), "commits/s") {
		t.Error("render missing throughput column")
	}
}

func TestScales(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleDefault, ScalePaper} {
		if got := len(Benchmarks(s)); got != 5 {
			t.Errorf("%s: %d benchmarks", s, got)
		}
		sizes := SizesFor(s)
		if len(sizes) != 5 {
			t.Errorf("%s: %d size families", s, len(sizes))
		}
		for name, bs := range sizes {
			if len(bs) != 3 {
				t.Errorf("%s/%s: %d sizes, want 3", s, name, len(bs))
			}
		}
	}
}

func TestRunBackend(t *testing.T) {
	o := quickOptions()
	o.Crypto = true // the gap only means something against the commitment lane
	r, err := RunBackend(o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recommended != pcp.BackendSumcheck {
		t.Errorf("cost model recommends %q for the layered chain, want sumcheck", r.Recommended)
	}
	if len(r.Lanes) != 2 || r.Lanes[0].Backend != pcp.BackendZaatar || r.Lanes[1].Backend != pcp.BackendSumcheck {
		t.Fatalf("lanes = %+v, want [zaatar, sumcheck]", r.Lanes)
	}
	if r.ProverSpeedup <= 1 {
		t.Errorf("prover speedup %.2f, want > 1 (sum-check lane pays no crypto)", r.ProverSpeedup)
	}
	var buf bytes.Buffer
	RenderBackend(&buf, r)
	if !strings.Contains(buf.String(), "cheaper per instance") {
		t.Error("render missing headline ratio")
	}
}
