package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Bench-regression gate: diff two baseline snapshots (zaatar-bench -json
// output) with per-metric noise thresholds, so CI can answer "did this PR
// regress the BENCH_*.json trajectory?" mechanically. The comparison is
// deliberately conservative about what it compares: wall-clock sections
// are only diffed when the two snapshots ran the same configuration
// (scale, repetitions, crypto, batch size, workers) — a smoke-scale run
// against a full-scale baseline compares only the scale-independent
// calibration constants and says so in Notes, rather than fabricating
// regressions from incomparable numbers.

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Threshold scales every per-metric noise allowance; 1.0 (the default)
	// applies the built-in allowances, 2.0 doubles them (the loose CI
	// setting for 1-vCPU runners where only a >2× blowup is signal).
	Threshold float64
}

// Per-metric noise allowances: the ratio new/old a metric may reach before
// it counts as a regression at Threshold 1.0. Wall-clock sections get 30%,
// tail quantiles 50% (they are the noisiest), calibration constants 50%
// (microbenchmarks, but per-op so comparable across scales).
const (
	noiseWall        = 1.30
	noiseTail        = 1.50
	noiseKernel      = 1.30
	noiseCalibration = 1.50
)

// CompareRow is one metric's old-vs-new verdict.
type CompareRow struct {
	Section string  `json:"section"` // calibration | benchmark | phase | kernel
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	// Ratio is new/old oriented so that >1 means worse (throughput metrics
	// are inverted before the ratio).
	Ratio     float64 `json:"ratio"`
	Limit     float64 `json:"limit"` // ratio beyond which the row regresses
	Regressed bool    `json:"regressed"`
}

// CompareResult is the full diff: every compared row, the sections that
// were skipped as incomparable, and the regression tally that decides the
// exit code.
type CompareResult struct {
	Rows         []CompareRow `json:"rows"`
	Notes        []string     `json:"notes"`
	Regressions  int          `json:"regressions"`
	Improvements int          `json:"improvements"`
}

// LoadBaseline reads one zaatar-bench -json snapshot.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("experiments: parsing baseline %s: %w", path, err)
	}
	if b.Schema == 0 || len(b.Benchmarks) == 0 && b.Calibration == (Baseline{}).Calibration {
		return nil, fmt.Errorf("experiments: %s does not look like a baseline snapshot", path)
	}
	return &b, nil
}

// configKey captures everything that makes wall-clock sections comparable
// between two snapshots.
func configKey(b *Baseline) string {
	return fmt.Sprintf("scale=%s rholin=%d rho=%d crypto=%v beta=%d workers=%d",
		b.Scale, b.RhoLin, b.Rho, b.Crypto, b.Beta, b.Workers)
}

// add appends one compared metric. Values ≤ 0 on the old side are
// uncomparable (a zero denominator is a measurement artifact, not a
// baseline) and are skipped. higherIsBetter inverts the ratio so that >1
// is always "worse".
func (r *CompareResult) add(section, name, unit string, oldV, newV, noise, threshold float64, higherIsBetter bool) {
	if oldV <= 0 || newV < 0 {
		return
	}
	ratio := newV / oldV
	if higherIsBetter {
		if newV == 0 {
			return
		}
		ratio = oldV / newV
	}
	limit := noise * threshold
	row := CompareRow{
		Section: section, Name: name, Unit: unit,
		Old: oldV, New: newV, Ratio: ratio, Limit: limit,
		Regressed: ratio > limit,
	}
	if row.Regressed {
		r.Regressions++
	} else if ratio < 1/limit {
		r.Improvements++
	}
	r.Rows = append(r.Rows, row)
}

// CompareBaselines diffs new against old. Regressions in the result count
// metrics that degraded beyond their (threshold-scaled) noise allowance;
// callers gate on Regressions > 0.
func CompareBaselines(oldB, newB *Baseline, opts CompareOptions) *CompareResult {
	thr := opts.Threshold
	if thr <= 0 {
		thr = 1.0
	}
	r := &CompareResult{}
	if oldB.Schema != newB.Schema {
		r.Notes = append(r.Notes, fmt.Sprintf("schema differs (%d vs %d); comparing shared sections only", oldB.Schema, newB.Schema))
	}

	// Calibration constants are per-operation microbenchmarks — comparable
	// across scales, though not across machines; the threshold is the only
	// guard there.
	for _, c := range []struct {
		name     string
		old, new float64
	}{
		{"e_encrypt", oldB.Calibration.E, newB.Calibration.E},
		{"d_decrypt", oldB.Calibration.D, newB.Calibration.D},
		{"h_cipher_op", oldB.Calibration.H, newB.Calibration.H},
		{"f_field_op", oldB.Calibration.F, newB.Calibration.F},
		{"f_lazy_op", oldB.Calibration.FLazy, newB.Calibration.FLazy},
		{"f_div_op", oldB.Calibration.FDiv, newB.Calibration.FDiv},
		{"c_commit_op", oldB.Calibration.C, newB.Calibration.C},
	} {
		r.add("calibration", c.name, "s/op", c.old, c.new, noiseCalibration, thr, false)
	}

	if configKey(oldB) != configKey(newB) {
		r.Notes = append(r.Notes,
			fmt.Sprintf("wall-clock sections skipped: configs differ (old %s; new %s)", configKey(oldB), configKey(newB)))
		return r
	}

	// Benchmarks, matched by name (and instance count, which the config key
	// already pins via scale+beta).
	newBench := make(map[string]BaselineBench, len(newB.Benchmarks))
	for _, b := range newB.Benchmarks {
		newBench[b.Name] = b
	}
	for _, ob := range oldB.Benchmarks {
		nb, ok := newBench[ob.Name]
		if !ok {
			r.Notes = append(r.Notes, fmt.Sprintf("benchmark %q absent from new snapshot", ob.Name))
			continue
		}
		if nb.Instances != ob.Instances {
			r.Notes = append(r.Notes, fmt.Sprintf("benchmark %q skipped: %d vs %d instances", ob.Name, ob.Instances, nb.Instances))
			continue
		}
		pre := ob.Name + "/"
		r.add("benchmark", pre+"commit", "ms", ob.CommitMs, nb.CommitMs, noiseWall, thr, false)
		r.add("benchmark", pre+"respond", "ms", ob.RespondMs, nb.RespondMs, noiseWall, thr, false)
		r.add("benchmark", pre+"verify", "ms", ob.VerifyMs, nb.VerifyMs, noiseWall, thr, false)
		r.add("benchmark", pre+"total", "ms", ob.TotalMs, nb.TotalMs, noiseWall, thr, false)
		r.add("benchmark", pre+"prover_e2e", "ms", ob.ProverE2EMs, nb.ProverE2EMs, noiseWall, thr, false)
	}

	// Phase histograms: mean and p99 per phase.
	phaseNames := make([]string, 0, len(oldB.Phases))
	for name := range oldB.Phases {
		phaseNames = append(phaseNames, name)
	}
	sort.Strings(phaseNames)
	for _, name := range phaseNames {
		oq := oldB.Phases[name]
		nq, ok := newB.Phases[name]
		if !ok {
			r.Notes = append(r.Notes, fmt.Sprintf("phase %q absent from new snapshot", name))
			continue
		}
		r.add("phase", name+"/avg", "ms", oq.AvgMs, nq.AvgMs, noiseWall, thr, false)
		r.add("phase", name+"/p99", "ms", oq.P99Ms, nq.P99Ms, noiseTail, thr, false)
	}

	// Kernels: throughput (higher is better) and mean call latency.
	kernelNames := make([]string, 0, len(oldB.Kernels))
	for name := range oldB.Kernels {
		kernelNames = append(kernelNames, name)
	}
	sort.Strings(kernelNames)
	for _, name := range kernelNames {
		ok_, found := newB.Kernels[name]
		if !found {
			r.Notes = append(r.Notes, fmt.Sprintf("kernel %q absent from new snapshot", name))
			continue
		}
		oldK := oldB.Kernels[name]
		r.add("kernel", name+"/items_per_sec", "items/s", oldK.ItemsPerSec, ok_.ItemsPerSec, noiseKernel, thr, true)
		r.add("kernel", name+"/avg_call", "ms", oldK.AvgCallMs, ok_.AvgCallMs, noiseKernel, thr, false)
	}
	return r
}

// RenderCompare prints the diff as the human table CI logs show: one row
// per compared metric, regressions flagged, then the notes and the tally.
func RenderCompare(w io.Writer, r *CompareResult) {
	fmt.Fprintf(w, "%-12s %-34s %12s %12s %7s %7s  %s\n",
		"section", "metric", "old", "new", "ratio", "limit", "verdict")
	for _, row := range r.Rows {
		verdict := "ok"
		switch {
		case row.Regressed:
			verdict = "REGRESSED"
		case row.Ratio < 1/row.Limit:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-12s %-34s %12.4g %12.4g %6.2fx %6.2fx  %s\n",
			row.Section, row.Name, row.Old, row.New, row.Ratio, row.Limit, verdict)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	fmt.Fprintf(w, "compared %d metrics: %d regressed, %d improved\n",
		len(r.Rows), r.Regressions, r.Improvements)
}
