package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"

	"zaatar/internal/benchprogs"
	"zaatar/internal/compiler"
	"zaatar/internal/costmodel"
	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/pcp"
	"zaatar/internal/vc"
)

// MicroResult is the §5.1 microbenchmark table for one field.
type MicroResult struct {
	Field string
	Costs costmodel.OpCosts
}

// RunMicro measures the §5.1 operation costs for both production fields.
func RunMicro(o Options) []MicroResult {
	var out []MicroResult
	for _, f := range []*field.Field{field.F128(), field.F220()} {
		var g *elgamal.Group
		if o.Crypto {
			g = elgamal.GroupFor(f)
		}
		reps := o.CalibrationReps
		if reps == 0 {
			reps = 1000
		}
		out = append(out, MicroResult{Field: f.Name(), Costs: costmodel.Calibrate(f, g, reps)})
	}
	return out
}

// RenderMicro prints the microbenchmark table next to the paper's values.
func RenderMicro(w io.Writer, res []MicroResult) {
	fmt.Fprintln(w, "§5.1 microbenchmarks (this machine vs. paper's 2.53 GHz Xeon E5540):")
	t := newTable("field", "e", "d", "h", "f_lazy", "f", "f_div", "c")
	for _, r := range res {
		c := r.Costs
		t.add(r.Field, fmtDur(c.E), fmtDur(c.D), fmtDur(c.H), fmtDur(c.FLazy), fmtDur(c.F), fmtDur(c.FDiv), fmtDur(c.C))
	}
	t.add("paper 128-bit", "65 µs", "170 µs", "91 µs", "68 ns", "210 ns", "2 µs", "160 ns")
	t.add("paper 220-bit", "88 µs", "170 µs", "130 µs", "90 ns", "320 ns", "3 µs", "260 ns")
	t.render(w)
}

// Fig4Row is one benchmark's per-instance prover comparison.
type Fig4Row struct {
	Name            string
	ZaatarMeasured  float64 // seconds, measured
	ZaatarModel     float64 // seconds, Figure 3 model
	GingerEstimated float64 // seconds, Figure 3 model (paper's own method)
	Local           float64 // seconds, native execution
	OrdersOfMag     float64 // log10(ginger/zaatar)
}

// RunFig4 measures Zaatar's per-instance prover time and estimates
// Ginger's, per benchmark.
func RunFig4(o Options) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, b := range Benchmarks(o.Scale) {
		row, err := proverRow(b, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func proverRow(b *benchprogs.Benchmark, o Options) (*Fig4Row, error) {
	prog, err := compileBench(b)
	if err != nil {
		return nil, err
	}
	local := measureLocal(b, prog, o.Seed)
	rng := rand.New(rand.NewSource(o.Seed))
	res, err := runZaatarBatch(prog, b, o, rng, 2)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, pt := range res.ProverTimes {
		sum += pt.E2E().Seconds()
	}
	measured := sum / float64(len(res.ProverTimes))

	p := o.calibrated(b)
	q := quantities(prog, local, o.Params)
	return &Fig4Row{
		Name:            b.Label,
		ZaatarMeasured:  measured,
		ZaatarModel:     costmodel.ProverZaatar(p, q),
		GingerEstimated: costmodel.ProverGinger(p, q),
		Local:           local,
		OrdersOfMag:     math.Log10(costmodel.ProverGinger(p, q) / measured),
	}, nil
}

// RenderFig4 prints the Figure 4 comparison.
func RenderFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: per-instance prover running time, Zaatar (measured) vs Ginger (estimated):")
	t := newTable("computation", "Zaatar (measured)", "Zaatar (model)", "Ginger (estimated)", "Ginger/Zaatar", "orders of magnitude")
	for _, r := range rows {
		ratio := r.GingerEstimated / r.ZaatarMeasured
		t.add(r.Name, fmtDur(r.ZaatarMeasured), fmtDur(r.ZaatarModel), fmtDur(r.GingerEstimated),
			fmtCount(ratio), fmt.Sprintf("%.1f", r.OrdersOfMag))
	}
	t.render(w)
}

// Fig5Row decomposes the Zaatar prover's per-instance cost.
type Fig5Row struct {
	Name                              string
	Local                             float64
	Solve, ConstructU, Crypto, Answer float64
	E2E                               float64
}

// RunFig5 reproduces the Figure 5 decomposition.
func RunFig5(o Options) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, b := range Benchmarks(o.Scale) {
		prog, err := compileBench(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		local := measureLocal(b, prog, o.Seed)
		rng := rand.New(rand.NewSource(o.Seed))
		res, err := runZaatarBatch(prog, b, o, rng, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		var solve, cons, crypto, answer float64
		for _, pt := range res.ProverTimes {
			solve += pt.Solve.Seconds()
			cons += pt.ConstructU.Seconds()
			crypto += pt.Crypto.Seconds()
			answer += pt.Answer.Seconds()
		}
		n := float64(len(res.ProverTimes))
		rows = append(rows, Fig5Row{
			Name:  b.Label,
			Local: local,
			Solve: solve / n, ConstructU: cons / n, Crypto: crypto / n, Answer: answer / n,
			E2E: (solve + cons + crypto + answer) / n,
		})
	}
	return rows, nil
}

// RenderFig5 prints the decomposition table.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5: per-instance cost of the Zaatar prover vs local computation:")
	t := newTable("computation", "local", "solve constraints", "construct u", "crypto ops", "answer queries", "e2e CPU time")
	for _, r := range rows {
		t.add(r.Name, fmtDur(r.Local), fmtDur(r.Solve), fmtDur(r.ConstructU), fmtDur(r.Crypto), fmtDur(r.Answer), fmtDur(r.E2E))
	}
	t.render(w)
}

// Fig6Row is one worker-count configuration.
type Fig6Row struct {
	Name      string
	Workers   int
	BatchWall float64
	Speedup   float64
}

// RunFig6 measures prover speedup from parallelizing over a batch.
func RunFig6(o Options, beta int, workerCounts []int) ([]Fig6Row, error) {
	var rows []Fig6Row
	benches := []*benchprogs.Benchmark{}
	switch o.Scale {
	case ScalePaper:
		benches = append(benches, benchprogs.PAM(10, 128, 1), benchprogs.FloydWarshall(15))
	case ScaleSmall:
		benches = append(benches, benchprogs.PAM(4, 4, 1), benchprogs.FloydWarshall(4))
	default:
		benches = append(benches, benchprogs.PAM(6, 16, 1), benchprogs.FloydWarshall(8))
	}
	for _, b := range benches {
		prog, err := compileBench(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		var base float64
		for _, workers := range workerCounts {
			oo := o
			oo.Workers = workers
			rng := rand.New(rand.NewSource(o.Seed))
			res, err := runZaatarBatch(prog, b, oo, rng, beta)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			wall := res.ProverWall().Seconds()
			if workers == workerCounts[0] {
				base = wall
			}
			rows = append(rows, Fig6Row{Name: b.Label, Workers: workers, BatchWall: wall, Speedup: base / wall})
		}
	}
	return rows, nil
}

// RenderFig6 prints the speedup table.
func RenderFig6(w io.Writer, rows []Fig6Row, beta int) {
	fmt.Fprintf(w, "Figure 6: prover speedup from parallelizing over a batch (β=%d; worker pool stands in for the paper's CPUs+GPUs):\n", beta)
	fmt.Fprintf(w, "(this machine exposes %d CPU core(s); speedups are bounded by that)\n", runtime.NumCPU())
	t := newTable("computation", "workers", "batch wall time", "speedup")
	for _, r := range rows {
		t.add(r.Name, fmt.Sprintf("%d", r.Workers), fmtDur(r.BatchWall), fmt.Sprintf("%.2f×", r.Speedup))
	}
	t.render(w)
}

// Fig7Row compares break-even batch sizes.
type Fig7Row struct {
	Name             string
	LocalPaperScale  float64
	BreakevenZaatar  float64
	BreakevenGinger  float64
	OrdersOfMag      float64
	MeasuredVSetup   float64 // measured verifier setup at o.Scale (context)
	MeasuredVPerInst float64
}

// RunFig7 computes break-even batch sizes at the paper's input sizes from
// the calibrated cost model (the paper's own method for Ginger; for Zaatar
// the model is validated against measurements elsewhere in the harness),
// plus measured verifier costs at the current scale for context.
func RunFig7(o Options) ([]Fig7Row, error) {
	var rows []Fig7Row
	bs := o.BreakevenScale
	if bs == "" {
		bs = ScalePaper
	}
	paper := Benchmarks(bs)
	scaled := Benchmarks(o.Scale)
	for i, b := range paper {
		progPaper, err := compileBench(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		local := measureLocal(b, progPaper, o.Seed)
		p := o.calibrated(b)
		// Break-even sizes are modeled at the paper's production soundness
		// parameters regardless of the measured runs' quick settings.
		q := quantities(progPaper, local, pcp.DefaultParams())
		bz := costmodel.BreakevenZaatar(p, q)
		bg := costmodel.BreakevenGinger(p, q)

		// Measured verifier costs at the current scale.
		progScaled, err := compileBench(scaled[i])
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(o.Seed))
		res, err := runZaatarBatch(progScaled, scaled[i], o, rng, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			Name:            b.Label,
			LocalPaperScale: local,
			BreakevenZaatar: bz,
			BreakevenGinger: bg,
			OrdersOfMag:     math.Log10(bg / bz),
			MeasuredVSetup:  res.VerifierSetup().Seconds(),
			MeasuredVPerInst: res.VerifierPerInstance().Seconds() /
				float64(len(res.ProverTimes)),
		})
	}
	return rows, nil
}

// RenderFig7 prints the break-even comparison.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: break-even batch sizes at the paper's input sizes (cost model with calibrated parameters):")
	t := newTable("computation", "local (native)", "Zaatar breakeven", "Ginger breakeven", "orders of magnitude")
	for _, r := range rows {
		t.add(r.Name, fmtDur(r.LocalPaperScale), fmtCount(r.BreakevenZaatar), fmtCount(r.BreakevenGinger),
			fmt.Sprintf("%.1f", r.OrdersOfMag))
	}
	t.render(w)
}

// Fig8Point is one (benchmark, size) measurement.
type Fig8Point struct {
	Name        string
	SizeLabel   string
	Constraints int
	Zaatar      float64 // measured prover seconds
	Ginger      float64 // measured if feasible, else model estimate
	GingerIsEst bool
}

// Fig8Result groups the scaling points with fitted exponents.
type Fig8Result struct {
	Points []Fig8Point
	// Exponents maps benchmark name to the fitted log-log slope of prover
	// time vs constraint count for (zaatar, ginger).
	Exponents map[string][2]float64
}

// RunFig8 measures prover scaling across three input sizes per benchmark.
func RunFig8(o Options) (*Fig8Result, error) {
	out := &Fig8Result{Exponents: map[string][2]float64{}}
	order := []string{"pam-clustering", "root-finding", "all-pairs-shortest-path", "fannkuch", "longest-common-subsequence"}
	sizes := SizesFor(o.Scale)
	for _, name := range order {
		var logsC, logsZ, logsG []float64
		for si, b := range sizes[name] {
			prog, err := compileBench(b)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			rng := rand.New(rand.NewSource(o.Seed))
			res, err := runZaatarBatch(prog, b, o, rng, 1)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			zSec := res.ProverTimes[0].E2E().Seconds()

			gSec, isEst, err := gingerProverTime(prog, b, o, rng)
			if err != nil {
				return nil, fmt.Errorf("%s ginger: %w", b.Name, err)
			}
			nc := prog.Quad.NumConstraints()
			out.Points = append(out.Points, Fig8Point{
				Name: b.Label, SizeLabel: sizeLabel(b), Constraints: nc,
				Zaatar: zSec, Ginger: gSec, GingerIsEst: isEst,
			})
			logsC = append(logsC, math.Log(float64(nc)))
			logsZ = append(logsZ, math.Log(zSec))
			logsG = append(logsG, math.Log(gSec))
			_ = si
		}
		out.Exponents[name] = [2]float64{slope(logsC, logsZ), slope(logsC, logsG)}
	}
	return out, nil
}

func sizeLabel(b *benchprogs.Benchmark) string {
	return fmt.Sprintf("m=%d", b.Params["m"])
}

// slope fits a least-squares line to (x, y).
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// gingerProverTime measures the Ginger prover when the quadratic proof fits
// comfortably in memory and falls back to the Figure 3 estimate otherwise —
// the paper's own approach (§5.1).
func gingerProverTime(prog *compiler.Program, b *benchprogs.Benchmark, o Options, rng *rand.Rand) (float64, bool, error) {
	nz := prog.Ginger.NumUnbound()
	p := o.Params
	queryVecs := p.Rho * (3*p.RhoLin + 2)
	memBytes := float64(nz) * float64(nz) * float64(queryVecs+2) * 32
	if nz <= pcp.MaxGingerProofVars && memBytes < 3e8 {
		cfg := o.vcConfig(vc.Ginger)
		res, err := vc.RunBatch(context.Background(), prog, cfg, genBatch(b, rng, 1))
		if err != nil {
			return 0, false, err
		}
		if !res.AllAccepted() {
			return 0, false, fmt.Errorf("ginger run rejected: %v", res.Reasons)
		}
		return res.ProverTimes[0].E2E().Seconds(), false, nil
	}
	local := measureLocal(b, prog, o.Seed)
	return costmodel.ProverGinger(o.calibrated(b), quantities(prog, local, o.Params)), true, nil
}

// RenderFig8 prints the scaling table and fitted exponents.
func RenderFig8(w io.Writer, res *Fig8Result) {
	fmt.Fprintln(w, "Figure 8: prover running time vs input size (Zaatar measured; Ginger measured where the |Z|² proof fits, estimated otherwise):")
	t := newTable("computation", "size", "|C_zaatar|", "Zaatar prover", "Ginger prover", "ginger est?")
	for _, pt := range res.Points {
		est := ""
		if pt.GingerIsEst {
			est = "model"
		}
		t.add(pt.Name, pt.SizeLabel, fmt.Sprintf("%d", pt.Constraints), fmtDur(pt.Zaatar), fmtDur(pt.Ginger), est)
	}
	t.render(w)
	fmt.Fprintln(w, "\nfitted log-log slope of prover time vs |C| (1 ≈ linear, 2 ≈ quadratic):")
	t2 := newTable("computation", "Zaatar slope", "Ginger slope")
	for name, e := range res.Exponents {
		t2.add(name, fmt.Sprintf("%.2f", e[0]), fmt.Sprintf("%.2f", e[1]))
	}
	t2.render(w)
}

// Fig9Row is one benchmark/size encoding row.
type Fig9Row struct {
	Name      string
	SizeLabel string
	OClass    string
	ZG, ZZ    int
	CG, CZ    int
	K, K2     int
	UG, UZ    int
}

// RunFig9 tabulates the computation and proof encodings of Figure 9.
func RunFig9(o Options) ([]Fig9Row, error) {
	var rows []Fig9Row
	order := []string{"pam-clustering", "root-finding", "all-pairs-shortest-path", "fannkuch", "longest-common-subsequence"}
	sizes := SizesFor(o.Scale)
	for _, name := range order {
		for _, b := range sizes[name] {
			prog, err := compileBench(b)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			st := prog.Stats()
			rows = append(rows, Fig9Row{
				Name: b.Label, SizeLabel: sizeLabel(b), OClass: b.OClass,
				ZG: st.GingerVars, ZZ: st.ZaatarVars,
				CG: st.GingerConstraints, CZ: st.ZaatarConstraints,
				K: st.K, K2: st.K2,
				UG: st.UGinger, UZ: st.UZaatar,
			})
		}
	}
	return rows, nil
}

// RenderFig9 prints the encoding table.
func RenderFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: computation and proof encodings (|Z| variables, |C| constraints, |u| proof vector):")
	t := newTable("computation", "size", "O(·)", "|Z_g|", "|Z_z|", "|C_g|", "|C_z|", "K", "K2", "|u_ginger|", "|u_zaatar|")
	for _, r := range rows {
		t.add(r.Name, r.SizeLabel, r.OClass,
			fmt.Sprintf("%d", r.ZG), fmt.Sprintf("%d", r.ZZ),
			fmt.Sprintf("%d", r.CG), fmt.Sprintf("%d", r.CZ),
			fmt.Sprintf("%d", r.K), fmt.Sprintf("%d", r.K2),
			fmt.Sprintf("%d", r.UG), fmt.Sprintf("%d", r.UZ))
	}
	t.render(w)
}

// ModelRow validates the Figure 3 cost model against measurements.
type ModelRow struct {
	Name              string
	ProverMeasured    float64
	ProverModel       float64
	ProverRatio       float64 // measured / model (the paper saw 1.05–1.15)
	VerifierSetupMeas float64
	VerifierSetupModl float64
	VerifierRatio     float64
}

// RunModel compares measured Zaatar costs to the Figure 3 predictions.
func RunModel(o Options) ([]ModelRow, error) {
	var rows []ModelRow
	for _, b := range Benchmarks(o.Scale) {
		prog, err := compileBench(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rng := rand.New(rand.NewSource(o.Seed))
		res, err := runZaatarBatch(prog, b, o, rng, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		var e2e float64
		for _, pt := range res.ProverTimes {
			e2e += pt.E2E().Seconds()
		}
		e2e /= float64(len(res.ProverTimes))

		local := measureLocal(b, prog, o.Seed)
		p := o.calibrated(b)
		q := quantities(prog, local, o.Params)
		pm := costmodel.ProverZaatar(p, q)
		vm := costmodel.VerifierSetupZaatar(p, q)
		rows = append(rows, ModelRow{
			Name:              b.Label,
			ProverMeasured:    e2e,
			ProverModel:       pm,
			ProverRatio:       e2e / pm,
			VerifierSetupMeas: res.VerifierSetup().Seconds(),
			VerifierSetupModl: vm,
			VerifierRatio:     res.VerifierSetup().Seconds() / vm,
		})
	}
	return rows, nil
}

// RenderModel prints the validation table.
func RenderModel(w io.Writer, rows []ModelRow) {
	fmt.Fprintln(w, "Figure 3 cost model vs measurements (the paper reports measured/model of 1.05–1.15 for its C++ prover):")
	t := newTable("computation", "prover measured", "prover model", "ratio", "V setup measured", "V setup model", "ratio")
	for _, r := range rows {
		t.add(r.Name, fmtDur(r.ProverMeasured), fmtDur(r.ProverModel), fmt.Sprintf("%.2f", r.ProverRatio),
			fmtDur(r.VerifierSetupMeas), fmtDur(r.VerifierSetupModl), fmt.Sprintf("%.2f", r.VerifierRatio))
	}
	t.render(w)
}
