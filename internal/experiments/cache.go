package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"zaatar/internal/elgamal"
	"zaatar/internal/field"
	"zaatar/internal/obs"
	"zaatar/internal/transport"
)

// CacheCurvePoint is one point on the batches-per-connection curve: a fresh
// (cache-warm) session carrying n batches of β instances each.
type CacheCurvePoint struct {
	Batches int `json:"batches"`
	// SetupMs is the session-open wall (hello/ack round trip; the program
	// comes from the server's cache).
	SetupMs float64 `json:"setup_ms"`
	// FirstBatchMs is the first batch's wall; MeanLaterMs is the
	// steady-state per-batch wall. Later batches skip compilation and
	// negotiation but still reseed and re-key (the commitment key is
	// per-batch for soundness), so the gap between the two measures only
	// what keep-alive legitimately amortizes.
	FirstBatchMs float64 `json:"first_batch_ms"`
	MeanLaterMs  float64 `json:"mean_later_batch_ms"`
	// AmortizedMs is (setup + all batches) / n — the quantity the keep-alive
	// protocol drives toward the steady-state batch cost.
	AmortizedMs float64 `json:"amortized_ms_per_batch"`
}

// CacheResult quantifies the tentpole's two amortizations: the server-side
// program cache (cold vs warm session open) and wire-v2 keep-alive (the
// batches-per-connection curve).
type CacheResult struct {
	Benchmark string `json:"benchmark"`
	// Beta is the number of instances per batch.
	Beta int `json:"beta"`
	// ColdSetupMs is the wall time to open the first session: the server
	// misses its cache and compiles the program before acking.
	ColdSetupMs float64 `json:"cold_setup_ms"`
	// WarmSetupMs is the same wall for a second session on the same service:
	// the server serves the compiled program and prover precomputation from
	// its LRU, so no compile span appears on its side.
	WarmSetupMs float64 `json:"warm_setup_ms"`
	// CacheHits/CacheMisses are the service's transport.cache.* counters
	// after the whole experiment; misses stays at 1.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	Curve []CacheCurvePoint `json:"curve"`
}

func wallMs(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return msOf(time.Since(start)), err
}

// RunCache measures cache amortization on the scale's first benchmark
// against an in-process transport.Service: one cold session (server
// compiles), then cache-warm sessions carrying 1, 2, 4, and 8 batches each
// over the kept-alive connection.
func RunCache(o Options, beta int) (*CacheResult, error) {
	if beta < 1 {
		beta = 1
	}
	bench := Benchmarks(o.Scale)[0]
	rng := rand.New(rand.NewSource(o.Seed))
	batch := genBatch(bench, rng, beta)

	reg := obs.NewRegistry()
	svc := transport.NewService(transport.ServiceOptions{
		Workers: o.Workers,
		Obs:     reg,
	})
	hello := transport.Hello{
		Source:       bench.Source,
		Field220:     bench.Field == field.F220(),
		RhoLin:       o.Params.RhoLin,
		Rho:          o.Params.Rho,
		NoCommitment: !o.Crypto,
	}
	copts := transport.ClientOptions{Seed: []byte(fmt.Sprintf("cache-%d", o.Seed))}
	if o.Crypto {
		copts.Group = elgamal.GroupFor(bench.Field)
	}
	ctx := context.Background()

	// open dials an in-process pipe to the service and returns the session
	// plus the session-open wall (which includes the server's cache lookup
	// and, on a miss, the compile).
	open := func() (*transport.Session, float64, error) {
		client, server := net.Pipe()
		go func() { _ = svc.ServeConn(ctx, server) }()
		var sess *transport.Session
		ms, err := wallMs(func() (err error) {
			sess, err = transport.NewSession(ctx, []net.Conn{client}, hello, copts)
			return err
		})
		return sess, ms, err
	}

	res := &CacheResult{Benchmark: bench.Name, Beta: beta}

	// Cold: first session ever — the server compiles.
	sess, ms, err := open()
	if err != nil {
		return nil, err
	}
	res.ColdSetupMs = ms
	if _, err := sess.RunBatch(ctx, batch); err != nil {
		sess.Close()
		return nil, err
	}
	if err := sess.Close(); err != nil {
		return nil, err
	}

	// Warm: same program, fresh session — served from the LRU.
	sess, ms, err = open()
	if err != nil {
		return nil, err
	}
	res.WarmSetupMs = ms
	if err := sess.Close(); err != nil {
		return nil, err
	}

	// Batches-per-connection curve, all cache-warm.
	for _, n := range []int{1, 2, 4, 8} {
		sess, setupMs, err := open()
		if err != nil {
			return nil, err
		}
		pt := CacheCurvePoint{Batches: n, SetupMs: setupMs}
		total := setupMs
		var later float64
		for b := 0; b < n; b++ {
			ms, err := wallMs(func() error {
				_, err := sess.RunBatch(ctx, batch)
				return err
			})
			if err != nil {
				sess.Close()
				return nil, err
			}
			total += ms
			if b == 0 {
				pt.FirstBatchMs = ms
			} else {
				later += ms
			}
		}
		if err := sess.Close(); err != nil {
			return nil, err
		}
		if n > 1 {
			pt.MeanLaterMs = later / float64(n-1)
		}
		pt.AmortizedMs = total / float64(n)
		res.Curve = append(res.Curve, pt)
	}

	res.CacheHits = reg.Counter(transport.MetricCacheHits).Value()
	res.CacheMisses = reg.Counter(transport.MetricCacheMisses).Value()
	return res, nil
}

// RenderCache prints the cache-amortization experiment: the cold→warm
// session-open drop, then the per-batch amortization curve.
func RenderCache(w io.Writer, r *CacheResult) {
	fmt.Fprintf(w, "program cache + keep-alive amortization (%s, β=%d per batch)\n\n", r.Benchmark, r.Beta)
	fmt.Fprintf(w, "session open   cold (server compiles): %s\n", fmtDur(r.ColdSetupMs/1e3))
	fmt.Fprintf(w, "session open   warm (LRU hit):         %s", fmtDur(r.WarmSetupMs/1e3))
	if r.WarmSetupMs > 0 {
		fmt.Fprintf(w, "   (%.1fx faster)", r.ColdSetupMs/r.WarmSetupMs)
	}
	fmt.Fprintf(w, "\ncache counters: %d hits, %d misses\n\n", r.CacheHits, r.CacheMisses)

	tb := newTable("batches/conn", "open", "first batch", "later batches (mean)", "amortized/batch")
	for _, pt := range r.Curve {
		later := "—"
		if pt.Batches > 1 {
			later = fmtDur(pt.MeanLaterMs / 1e3)
		}
		tb.add(fmt.Sprintf("%d", pt.Batches),
			fmtDur(pt.SetupMs/1e3),
			fmtDur(pt.FirstBatchMs/1e3),
			later,
			fmtDur(pt.AmortizedMs/1e3))
	}
	tb.render(w)
}
