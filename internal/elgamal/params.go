package elgamal

import (
	"math/big"
	"sync"

	"zaatar/internal/field"
)

// Production Schnorr groups: 1024-bit primes P = k·q + 1 whose order-q
// subgroups match the two production PCP fields (§5.1 of the paper uses
// 1024-bit ElGamal keys). Generated offline; the package tests verify
// primality of P, that q divides P-1, and that G generates an order-q
// subgroup.
const (
	p1024F128Hex = "c9a062f812c1692532104cc22d327428c51dffeea828455d490f26ef07465d28e02a29360dc8af239dfa65565340b3080e436d849cfbeb9fda3022f1e59724f70ea2e6c9d06de1cbed6eb4dc4de48217f9e79a4b47127eb72fc03bffe9d67b49c0bf259cd36cc2bead17bf1a0b656fe0839c58a7a9420fdfd6ab1d65b3e056d7"
	g1024F128Hex = "78255e7b16a621e76873ee496f98cb1d51e1841d70a89ff044249b1f4af1b8b391c814f333e67e8249de0d4871d3e938526fa8b8db94678aadd44a02a98fc7e1e249729b32cd1c737f7f567231cbca106996904967307ba772946941405ab5eb59deaaa5633aab77e1bb9d81efce5ef23b817397acb2679aaf5fa8c083a8298c"

	p1024F220Hex = "b2d91b60c72c4c2fe4ec096c9187e2eb0ef498338d0fc5a87c10e4f41f3fcb960c442c9194b5b6bda92a04b9b95f45a1a2e95727a635bb640ecfc1fccfd9aec4d936ac51889fa1b6aa6dd041da6a1d939136766a409fc4373682228fd795eec70fce11561fd41a449ba9d293a69493d009c1b7916704fb5a21a82102c98c7265"
	g1024F220Hex = "7804a40583922aecaf445c9c04300db256757c180e3b03cf1e9c5aa43afb6a83981c5851d6394cde2dfebbcf32133a625a6e881a4de3042fe5b54989039a0c047bbb4e5bffe331df67c3dd773c30424ee8f8ca6cdc70efd0a7bd543a0a51f520b40b8e605c24e53563a28242a282961423bff20bfcbe78c42de14632f0765f5a"
)

var (
	g128Once sync.Once
	g128     *Group
	g220Once sync.Once
	g220     *Group
)

func mustHex(h string) *big.Int {
	v, ok := new(big.Int).SetString(h, 16)
	if !ok {
		panic("elgamal: bad built-in parameter")
	}
	return v
}

// GroupF128 returns the production group whose subgroup order equals the
// F128 field modulus.
func GroupF128() *Group {
	g128Once.Do(func() {
		g128 = &Group{P: mustHex(p1024F128Hex), G: mustHex(g1024F128Hex), Q: field.F128().Modulus()}
	})
	return g128
}

// GroupF220 returns the production group whose subgroup order equals the
// F220 field modulus.
func GroupF220() *Group {
	g220Once.Do(func() {
		g220 = &Group{P: mustHex(p1024F220Hex), G: mustHex(g1024F220Hex), Q: field.F220().Modulus()}
	})
	return g220
}

// GroupFor returns the production group matching the given field, or nil if
// the field has no compiled-in group (tests generate their own).
func GroupFor(f *field.Field) *Group {
	switch f.Name() {
	case "F128":
		return GroupF128()
	case "F220":
		return GroupF220()
	}
	return nil
}
