package elgamal

import (
	"math/big"
	"math/rand"
	"testing"

	"zaatar/internal/field"
	"zaatar/internal/prg"
)

func testGroup(t *testing.T) (*Group, *field.Field) {
	t.Helper()
	f := field.FTiny()
	rnd := prg.NewFromSeed([]byte("elgamal-test-group"), 0)
	g, err := GenerateGroup(f.Modulus(), 256, rnd)
	if err != nil {
		t.Fatalf("GenerateGroup: %v", err)
	}
	return g, f
}

func checkGroup(t *testing.T, g *Group, name string) {
	t.Helper()
	if !g.P.ProbablyPrime(32) {
		t.Errorf("%s: P is not prime", name)
	}
	// q | P-1
	pm1 := new(big.Int).Sub(g.P, big.NewInt(1))
	if new(big.Int).Mod(pm1, g.Q).Sign() != 0 {
		t.Errorf("%s: q does not divide P-1", name)
	}
	// G has order exactly q (q prime): G != 1 and G^q = 1.
	if g.G.Cmp(big.NewInt(1)) == 0 {
		t.Errorf("%s: generator is 1", name)
	}
	if new(big.Int).Exp(g.G, g.Q, g.P).Cmp(big.NewInt(1)) != 0 {
		t.Errorf("%s: generator order does not divide q", name)
	}
}

func TestProductionGroups(t *testing.T) {
	checkGroup(t, GroupF128(), "F128 group")
	checkGroup(t, GroupF220(), "F220 group")
	if GroupF128().P.BitLen() != 1024 || GroupF220().P.BitLen() != 1024 {
		t.Error("production groups are not 1024-bit")
	}
	if GroupF128().Q.Cmp(field.F128().Modulus()) != 0 {
		t.Error("F128 group order != field modulus")
	}
	if GroupFor(field.F128()) != GroupF128() || GroupFor(field.F220()) != GroupF220() {
		t.Error("GroupFor mismatch")
	}
	if GroupFor(field.FTiny()) != nil {
		t.Error("GroupFor(FTiny) should be nil")
	}
}

// TestValidateAndCheckCiphertexts covers the ingest screens for
// wire-supplied material: honest output passes, every degenerate shape that
// would violate a kernel precondition is named and rejected.
func TestValidateAndCheckCiphertexts(t *testing.T) {
	g, f := testGroup(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("honest group rejected: %v", err)
	}
	badGroups := map[string]*Group{
		"nil group":     nil,
		"nil modulus":   {G: g.G, Q: g.Q},
		"even modulus":  {P: new(big.Int).Add(g.P, big.NewInt(1)), G: g.G, Q: g.Q},
		"order too big": {P: g.P, G: g.G, Q: new(big.Int).Set(g.P)},
		"order zero":    {P: g.P, G: g.G, Q: big.NewInt(0)},
		"generator 1":   {P: g.P, G: big.NewInt(1), Q: g.Q},
		"generator > P": {P: g.P, G: new(big.Int).Add(g.P, big.NewInt(5)), Q: g.Q},
	}
	for name, bg := range badGroups {
		if err := bg.Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}

	rnd := prg.NewFromSeed([]byte("check-cts"), 0)
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		t.Fatal(err)
	}
	cts, err := sk.EncryptVector(f, f.RandVector(4, rnd), rnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckCiphertexts(cts); err != nil {
		t.Fatalf("honest ciphertexts rejected: %v", err)
	}
	bad := [...]*big.Int{big.NewInt(0), new(big.Int).Set(g.P), new(big.Int).Lsh(g.P, 3), big.NewInt(-1), nil}
	for i, c := range bad {
		cs := append([]Ciphertext(nil), cts...)
		if i%2 == 0 {
			cs[i%len(cs)].A = c
		} else {
			cs[i%len(cs)].B = c
		}
		if err := g.CheckCiphertexts(cs); err == nil {
			t.Errorf("CheckCiphertexts accepted component %v", c)
		}
	}
}

func TestGeneratedGroup(t *testing.T) {
	g, f := testGroup(t)
	checkGroup(t, g, "generated group")
	if g.Q.Cmp(f.Modulus()) != 0 {
		t.Error("generated group order mismatch")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("keys"), 1)
	sk, err := g.GenerateKey(rnd)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		m := f.FromUint64(uint64(rng.Intn(12289)))
		ct, err := sk.Encrypt(f, m, rnd)
		if err != nil {
			t.Fatal(err)
		}
		if sk.DecryptExp(ct).Cmp(g.ExpOfField(f, m)) != 0 {
			t.Fatalf("decrypt mismatch for m=%v", f.ToBig(m))
		}
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("keys"), 2)
	sk, _ := g.GenerateKey(rnd)
	m := f.FromUint64(5)
	c1, _ := sk.Encrypt(f, m, rnd)
	c2, _ := sk.Encrypt(f, m, rnd)
	if c1.A.Cmp(c2.A) == 0 {
		t.Error("two encryptions share randomness")
	}
	if sk.DecryptExp(c1).Cmp(sk.DecryptExp(c2)) != 0 {
		t.Error("same plaintext decrypts differently")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("keys"), 3)
	sk, _ := g.GenerateKey(rnd)
	m1, m2 := f.FromUint64(111), f.FromUint64(222)
	c1, _ := sk.Encrypt(f, m1, rnd)
	c2, _ := sk.Encrypt(f, m2, rnd)
	sum := g.Add(c1, c2)
	if sk.DecryptExp(sum).Cmp(g.ExpOfField(f, f.Add(m1, m2))) != 0 {
		t.Error("homomorphic addition failed")
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("keys"), 4)
	sk, _ := g.GenerateKey(rnd)
	m := f.FromUint64(7)
	s := f.FromUint64(39)
	ct, _ := sk.Encrypt(f, m, rnd)
	got := sk.DecryptExp(g.ScalarMul(ct, f, s))
	if got.Cmp(g.ExpOfField(f, f.Mul(s, m))) != 0 {
		t.Error("homomorphic scalar multiplication failed")
	}
}

func TestHomomorphicInnerProduct(t *testing.T) {
	g, f := testGroup(t)
	rnd := prg.NewFromSeed([]byte("keys"), 5)
	sk, _ := g.GenerateKey(rnd)
	n := 16
	m := f.RandVector(n, rnd)
	u := f.RandVector(n, rnd)
	u[3] = f.Zero() // exercise the sparse skip
	cts, err := sk.EncryptVector(f, m, rnd)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := g.InnerProduct(cts, f, u)
	if err != nil {
		t.Fatal(err)
	}
	want := f.InnerProduct(m, u)
	if sk.DecryptExp(ct).Cmp(g.ExpOfField(f, want)) != 0 {
		t.Error("homomorphic inner product failed")
	}
}

func TestInnerProductLengthMismatch(t *testing.T) {
	g, f := testGroup(t)
	if _, err := g.InnerProduct(make([]Ciphertext, 2), f, make([]field.Element, 3)); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestProductionEncryptDecrypt(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-bit crypto in -short mode")
	}
	for _, tc := range []struct {
		g *Group
		f *field.Field
	}{{GroupF128(), field.F128()}, {GroupF220(), field.F220()}} {
		rnd := prg.NewFromSeed([]byte("prod"), 6)
		sk, err := tc.g.GenerateKey(rnd)
		if err != nil {
			t.Fatal(err)
		}
		m := tc.f.Rand(rnd)
		ct, _ := sk.Encrypt(tc.f, m, rnd)
		if sk.DecryptExp(ct).Cmp(tc.g.ExpOfField(tc.f, m)) != 0 {
			t.Errorf("%s: production encrypt/decrypt failed", tc.f.Name())
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	// This is the parameter e of Figure 3 / §5.1.
	for _, tc := range []struct {
		g *Group
		f *field.Field
	}{{GroupF128(), field.F128()}, {GroupF220(), field.F220()}} {
		b.Run(tc.f.Name(), func(b *testing.B) {
			rnd := prg.NewFromSeed([]byte("bench"), 0)
			sk, _ := tc.g.GenerateKey(rnd)
			m := tc.f.Rand(rnd)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = sk.Encrypt(tc.f, m, rnd)
			}
		})
	}
}

func BenchmarkEncryptVector(b *testing.B) {
	// The verifier's per-batch Enc(r) setup: vector encryption sharing one
	// exponent reduction, per-shard scratch, and Montgomery-domain combines
	// across the whole vector (vs. three independent table exps per element).
	g, f := GroupF128(), field.F128()
	rnd := prg.NewFromSeed([]byte("bench-vec"), 3)
	sk, _ := g.GenerateKey(rnd)
	v := f.RandVector(256, rnd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.EncryptVector(f, v, rnd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	// Parameter d.
	g, f := GroupF128(), field.F128()
	rnd := prg.NewFromSeed([]byte("bench"), 1)
	sk, _ := g.GenerateKey(rnd)
	ct, _ := sk.Encrypt(f, f.Rand(rnd), rnd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.DecryptExp(ct)
	}
}

func BenchmarkCiphertextAddMul(b *testing.B) {
	// Parameter h: one ScalarMul plus one Add.
	g, f := GroupF128(), field.F128()
	rnd := prg.NewFromSeed([]byte("bench"), 2)
	sk, _ := g.GenerateKey(rnd)
	ct, _ := sk.Encrypt(f, f.Rand(rnd), rnd)
	s := f.Rand(rnd)
	acc := g.One()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = g.Add(acc, g.ScalarMul(ct, f, s))
	}
}
